package sti

import (
	"testing"
	"time"
)

// TestStopPredictionDetachesAccessTaps: EnablePrediction installs the
// shard-access taps on every pool engine (including replicas spawned
// while prediction runs), and StopPrediction must detach every one of
// them — a stopped predictor's closure may not stay wired into engine
// IO paths, feeding observations (and retaining the predictor graph)
// forever.
func TestStopPredictionDetachesAccessTaps(t *testing.T) {
	dir := t.TempDir()
	w := NewRandomModel(TinyConfig(), 21)
	if _, err := Preprocess(dir, w, []int{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	sys, err := Load(dir, Odroid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFleet(64 << 10)
	if err := f.Add("m", sys, 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}

	engines := func() []int {
		f.mu.RLock()
		defer f.mu.RUnlock()
		attached := []int{}
		for i, eng := range f.entries["m"].pool.Engines() {
			if eng.HasAccessObserver() {
				attached = append(attached, i)
			}
		}
		return attached
	}
	count := func() int {
		f.mu.RLock()
		defer f.mu.RUnlock()
		return len(f.entries["m"].pool.Engines())
	}

	if got := engines(); len(got) != 0 {
		t.Fatalf("engines %v carry taps before EnablePrediction", got)
	}
	if err := f.EnablePrediction(PredictOptions{Interval: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if got, n := engines(), count(); len(got) != n || n == 0 {
		t.Fatalf("taps on %v of %d engines after EnablePrediction, want all", got, n)
	}
	// A replica spawned mid-prediction must come up tapped too — and be
	// detached with the rest.
	if err := f.SetReplicas("m", 2); err != nil {
		t.Fatal(err)
	}
	if got, n := engines(), count(); n != 2 || len(got) != n {
		t.Fatalf("taps on %v of %d engines after scale-up, want all of 2", got, n)
	}

	f.StopPrediction()
	if got := engines(); len(got) != 0 {
		t.Fatalf("engines %v still carry access taps after StopPrediction", got)
	}
	if _, ok := f.PredictStats("m"); ok {
		t.Fatal("PredictStats still reports after StopPrediction")
	}
	// Stop is idempotent and later stray observations are no-ops.
	f.StopPrediction()
	f.ObserveArrival("m", 200*time.Millisecond, 1, 64)
}
