// Command sti-plan runs STI's two-stage planner (§5) against a
// preprocessed store or the paper-scale BERT-base geometry, and prints
// the chosen submodel, per-shard bitwidths and the simulated pipeline
// schedule.
//
//	sti-plan -device odroid -target 200ms -preload 1MB           # paper scale
//	sti-plan -store /tmp/store -device jetson -target 150ms      # real store
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"sti"
	"sti/internal/acc"
	"sti/internal/device"
	"sti/internal/pipeline"
	"sti/internal/planner"
)

func parseBytes(s string) int64 {
	s = strings.ToUpper(strings.TrimSpace(s))
	mul := int64(1)
	switch {
	case strings.HasSuffix(s, "MB"):
		mul, s = 1<<20, strings.TrimSuffix(s, "MB")
	case strings.HasSuffix(s, "KB"):
		mul, s = 1<<10, strings.TrimSuffix(s, "KB")
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		log.Fatalf("sti-plan: bad size %q", s)
	}
	return int64(v * float64(mul))
}

func deviceByName(name string) *device.Profile {
	switch strings.ToLower(name) {
	case "odroid", "cpu":
		return device.Odroid()
	case "jetson", "gpu":
		return device.Jetson()
	}
	log.Fatalf("sti-plan: unknown device %q (odroid|jetson)", name)
	return nil
}

func main() {
	storeDir := flag.String("store", "", "preprocessed store (default: paper-scale analytic geometry)")
	devName := flag.String("device", "odroid", "device profile: odroid or jetson")
	target := flag.Duration("target", 200*time.Millisecond, "target latency T")
	preload := flag.String("preload", "1MB", "preload buffer size |S|")
	task := flag.String("task", "SST-2", "task importance profile: SST-2, RTE, QNLI, QQP")
	flag.Parse()

	dev := deviceByName(*devName)
	budget := parseBytes(*preload)

	var req planner.Request
	var sizer planner.Sizer
	if *storeDir != "" {
		sys, err := sti.Load(*storeDir, dev, budget)
		if err != nil {
			log.Fatal(err)
		}
		cfg := sys.Store.Man.Config
		sys.Imp = acc.TaskByName(*task, cfg.Layers, cfg.Heads).Imp
		req = sys.Request(*target, budget)
		sizer = pipeline.ManifestSizer{Man: sys.Store.Man}
	} else {
		cfg := sti.BERTBaseConfig()
		t := acc.TaskByName(*task, cfg.Layers, cfg.Heads)
		if t == nil {
			log.Fatalf("sti-plan: unknown task %q", *task)
		}
		sizer = planner.AnalyticSizer{Params: cfg.ShardParams()}
		req = planner.NewRequest(dev, cfg, t.Imp, sizer, *target, budget)
	}

	p, err := req.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", p)
	fmt.Printf("per-layer compute %v, initial stall %v\n\n", p.TCompLayer, p.InitialStall)
	for l := 0; l < p.Depth; l++ {
		fmt.Printf("L%02d:", l)
		for j := range p.Bits[l] {
			mark := " "
			if p.Preloaded[l][j] {
				mark = "*"
			}
			fmt.Printf(" s%d@%d%s", p.Slices[l][j], p.Bits[l][j], mark)
		}
		fmt.Printf("  (%d KB streamed)\n", p.LayerStreamBytes(l, sizer)>>10)
	}

	tl := pipeline.Simulate(dev, pipeline.PlanJobs(p, sizer))
	fmt.Printf("\nsimulated schedule (total %v, compute util %.0f%%, IO util %.0f%%):\n",
		tl.Total().Round(time.Millisecond), 100*tl.ComputeUtilization(), 100*tl.IOUtilization())
	fmt.Print(tl.Gantt().Render(64))
	if t := acc.TaskByName(*task, 12, 12); t != nil && *storeDir == "" {
		fmt.Printf("\nestimated %s accuracy: %.1f%% (gold %.1f%%)\n",
			t.Name, t.AccuracySubmodel(p.Slices, p.Bits), t.Gold)
	}
}
