// Command sti-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	sti-experiments             # run everything
//	sti-experiments -run fig7   # run one experiment
//	sti-experiments -list       # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"sti/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := experiments.IDs()
	if *runID != "" {
		ids = []string{*runID}
	}
	for _, id := range ids {
		r, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sti-experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("===== %s: %s =====\n%s\n", r.ID, r.Title, r.Output)
	}
}
