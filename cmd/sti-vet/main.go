// Command sti-vet runs the repo's invariant analyzers (see
// internal/analysis) over the module: locknoblock, ctxflow,
// budgetbalance, statatomic, hotalloc, plus lostcancel, copylocks and
// nilness passes.
//
// Usage:
//
//	go run ./cmd/sti-vet ./...
//	go run ./cmd/sti-vet -json -baseline internal/analysis/baseline.json ./...
//
// Exit status is 1 when any enforced (non-report-only) analyzer produces
// a finding that is not in the baseline; -strict promotes report-only
// findings to failures too. -writebaseline records the current findings
// as the new baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"sti/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	baselinePath := flag.String("baseline", "", "baseline file of known findings that do not fail the run")
	writeBaseline := flag.String("writebaseline", "", "write current findings to this baseline file and exit")
	strict := flag.Bool("strict", false, "report-only findings also fail the run")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sti-vet: %v\n", err)
		os.Exit(2)
	}

	fset, pkgs, err := analysis.LoadModule(modRoot, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sti-vet: %v\n", err)
		os.Exit(2)
	}

	suite := analysis.Suite()
	runner := &analysis.Runner{Fset: fset, Packages: pkgs, Analyzers: suite}
	diags, err := runner.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sti-vet: %v\n", err)
		os.Exit(2)
	}

	baseline := map[string]bool{}
	if *baselinePath != "" {
		baseline, err = analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sti-vet: baseline: %v\n", err)
			os.Exit(2)
		}
	}
	findings := analysis.ToFindings(diags, suite, modRoot, baseline)

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintf(os.Stderr, "sti-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("sti-vet: wrote %d findings to %s\n", len(findings), *writeBaseline)
		return
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "sti-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			tag := ""
			if f.Baselined {
				tag = " (baselined)"
			} else if f.ReportOnly {
				tag = " (report-only)"
			}
			fmt.Printf("%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message, tag)
		}
	}

	fail := 0
	for _, f := range findings {
		if f.Baselined {
			continue
		}
		if f.ReportOnly && !*strict {
			continue
		}
		fail++
	}
	if fail > 0 {
		fmt.Fprintf(os.Stderr, "sti-vet: %d failing finding(s)\n", fail)
		os.Exit(1)
	}
}

// moduleRoot locates the enclosing module directory.
func moduleRoot() (string, error) {
	var out bytes.Buffer
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Stdout = &out
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(out.String())
	if gomod == "" || gomod == "/dev/null" || gomod == "NUL" {
		return "", fmt.Errorf("not inside a Go module")
	}
	return strings.TrimSuffix(strings.TrimSuffix(gomod, "go.mod"), string(os.PathSeparator)), nil
}
