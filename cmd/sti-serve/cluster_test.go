package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"sti"
	"sti/internal/obs"
)

// clusterNode is one in-process cluster member: a real fleet +
// scheduler + serving mux with the /cluster endpoints mounted — the
// exact composition -mode node runs.
type clusterNode struct {
	name  string
	ts    *httptest.Server
	url   string
	fleet *sti.Fleet
	sched *sti.Scheduler
	node  *sti.ClusterNode
	hub   *obs.Hub
}

// buildModelDirs preprocesses one store per model. Every node of a
// cluster loads the same dir, so shard payloads are byte-identical
// across nodes and a peer's retained copy substitutes exactly for a
// local flash read.
func buildModelDirs(t testing.TB, names ...string) map[string]string {
	t.Helper()
	dirs := make(map[string]string, len(names))
	for i, name := range names {
		dir := t.TempDir()
		w := sti.NewRandomModel(sti.TinyConfig(), int64(i+1))
		if _, err := sti.Preprocess(dir, w, []int{2, 4}); err != nil {
			t.Fatal(err)
		}
		dirs[name] = dir
	}
	return dirs
}

func buildClusterFleet(t testing.TB, dirs map[string]string) *sti.Fleet {
	t.Helper()
	names := make([]string, 0, len(dirs))
	for name := range dirs {
		names = append(names, name)
	}
	sort.Strings(names)
	fleet := sti.NewFleet(256 << 10)
	for _, name := range names {
		sys, err := sti.Load(dirs[name], sti.Odroid(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(name, sys, 200*time.Millisecond, 1); err != nil {
			t.Fatal(err)
		}
		if err := fleet.SetSharedCacheRetain(name, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Replan(); err != nil {
		t.Fatal(err)
	}
	return fleet
}

// buildCluster stands up a router and nodeNames real nodes on loopback
// listeners and waits until the router's health poll sees every node
// up. Listeners are allocated before any node is built so the static
// peer list (identical everywhere, like -peers) can carry real URLs.
func buildCluster(t testing.TB, nodeNames []string, dirs map[string]string, opts sti.ServeOptions) (*httptest.Server, map[string]*clusterNode) {
	t.Helper()
	nodes := make(map[string]*clusterNode, len(nodeNames))
	peers := make([]sti.ClusterPeer, 0, len(nodeNames))
	for _, name := range nodeNames {
		ts := httptest.NewUnstartedServer(nil)
		cn := &clusterNode{name: name, ts: ts, url: "http://" + ts.Listener.Addr().String()}
		nodes[name] = cn
		peers = append(peers, sti.ClusterPeer{Name: name, URL: cn.url})
	}
	for _, name := range nodeNames {
		cn := nodes[name]
		cn.fleet = buildClusterFleet(t, dirs)
		// Every member runs with full observability, like -mode node:
		// traced requests, registered metrics, exemplar rings.
		cn.hub = obs.NewHub(32)
		cn.fleet.SetObservability(cn.hub)
		nopts := opts
		nopts.Obs = cn.hub
		cn.sched = sti.NewScheduler(cn.fleet, nopts)
		t.Cleanup(cn.sched.Close)
		node, err := sti.NewClusterNode(cn.fleet, name, peers, sti.ClusterNodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cn.node = node
		t.Cleanup(node.Close)
		mux := http.NewServeMux()
		mux.Handle("/cluster/", node.Handler())
		mux.Handle("/", newServer(cn.fleet, cn.sched, cn.hub))
		cn.ts.Config.Handler = mux
		cn.ts.Start()
		t.Cleanup(cn.ts.Close)
	}
	rt, err := sti.NewClusterRouter(peers, sti.ClusterRouterOptions{HealthInterval: 20 * time.Millisecond, Obs: obs.NewHub(32)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	rts := httptest.NewServer(rt)
	t.Cleanup(rts.Close)
	want := make(map[string]string, len(nodeNames))
	for _, name := range nodeNames {
		want[name] = "up"
	}
	waitForStates(t, rts.URL, want)
	return rts, nodes
}

// waitForStates polls the router's /healthz until every named node
// reports the wanted state.
func waitForStates(t testing.TB, routerURL string, want map[string]string) {
	t.Helper()
	var last map[string]string
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h struct {
			OK    bool              `json:"ok"`
			Nodes map[string]string `json:"nodes"`
		}
		resp, err := http.Get(routerURL + "/healthz")
		if err == nil {
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
		}
		if err == nil {
			ok := true
			for n, s := range want {
				if h.Nodes[n] != s {
					ok = false
				}
			}
			if ok {
				return
			}
			last = h.Nodes
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never saw states %v (last %v)", want, last)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// homeNodeOf finds which node the cluster routed a model's traffic to
// by completed-request counters after at least one request was served.
func homeNodeOf(t testing.TB, nodes map[string]*clusterNode, model string) *clusterNode {
	t.Helper()
	for _, cn := range nodes {
		for _, ms := range cn.sched.Snapshot().Models {
			if ms.Model == model && ms.Completed > 0 {
				return cn
			}
		}
	}
	t.Fatalf("no node served model %q", model)
	return nil
}

func otherNode(nodes map[string]*clusterNode, not *clusterNode) *clusterNode {
	for _, cn := range nodes {
		if cn != not {
			return cn
		}
	}
	return nil
}

// TestClusterMatchesStandalone pins the acceptance contract: a
// two-node cluster behind the router serves classify and streamed
// generate with results identical to a standalone server loaded from
// the same stores — same class, bit-identical logits, same decoded
// token sequence, tokens relayed in order.
func TestClusterMatchesStandalone(t *testing.T) {
	dirs := buildModelDirs(t, "sentiment", "nextword")
	opts := sti.ServeOptions{Slack: 1000}

	sfleet := buildClusterFleet(t, dirs)
	ssched := sti.NewScheduler(sfleet, opts)
	t.Cleanup(ssched.Close)
	standalone := httptest.NewServer(newServer(sfleet, ssched, nil))
	t.Cleanup(standalone.Close)

	router, _ := buildCluster(t, []string{"alpha", "beta"}, dirs, opts)

	for _, model := range []string{"sentiment", "nextword"} {
		body := map[string]any{"model": model, "task": "classify", "text": "wonderful gripping story"}
		st1, d1 := postJSON(t, standalone.URL+"/v2/infer", body)
		st2, d2 := postJSON(t, router.URL+"/v2/infer", body)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s: standalone %d (%s), cluster %d (%s)", model, st1, d1, st2, d2)
		}
		var r1, r2 inferResponse
		if err := json.Unmarshal(d1, &r1); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(d2, &r2); err != nil {
			t.Fatal(err)
		}
		if r2.Model != model || r2.Class != r1.Class || len(r2.Logits) != len(r1.Logits) {
			t.Fatalf("%s: cluster %+v != standalone %+v", model, r2, r1)
		}
		for i := range r1.Logits {
			if r2.Logits[i] != r1.Logits[i] {
				t.Fatalf("%s logit %d: cluster %v != standalone %v", model, i, r2.Logits[i], r1.Logits[i])
			}
		}
	}

	const maxNew = 6
	gen := map[string]any{"model": "sentiment", "task": "generate", "text": "once upon a time", "max_new_tokens": maxNew}
	st1, ct1, ev1 := postSSE(t, standalone.URL+"/v2/infer", gen)
	st2, ct2, ev2 := postSSE(t, router.URL+"/v2/infer", gen)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("generate: standalone %d, cluster %d", st1, st2)
	}
	if !strings.HasPrefix(ct2, "text/event-stream") {
		t.Fatalf("cluster content type %q, want text/event-stream (got standalone %q)", ct2, ct1)
	}
	if len(ev2) != len(ev1) || len(ev2) != maxNew+1 {
		t.Fatalf("cluster streamed %d events, standalone %d, want %d", len(ev2), len(ev1), maxNew+1)
	}
	for i := 0; i < maxNew; i++ {
		var te1, te2 tokenEvent
		if err := json.Unmarshal([]byte(ev1[i].data), &te1); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal([]byte(ev2[i].data), &te2); err != nil {
			t.Fatal(err)
		}
		if te2.Step != i {
			t.Fatalf("cluster token event %d arrived with step %d: relay reordered the stream", i, te2.Step)
		}
		if te2.Token != te1.Token {
			t.Fatalf("step %d: cluster token %d != standalone %d", i, te2.Token, te1.Token)
		}
	}
	var done1, done2 generateResult
	if err := json.Unmarshal([]byte(ev1[maxNew].data), &done1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(ev2[maxNew].data), &done2); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(done2.Tokens) != fmt.Sprint(done1.Tokens) {
		t.Fatalf("cluster decoded %v, standalone %v", done2.Tokens, done1.Tokens)
	}
}

// TestClusterPeerCacheServesSharedModel pins the two-level cache: when
// a model's traffic moves to a node whose cache is cold, that node's
// demand misses are served by the peer that has the payloads retained
// — peer-level hits > 0, donor-side serves > 0, and the cold node's
// flash reads stay at or below what a cold standalone server pays for
// the same workload.
func TestClusterPeerCacheServesSharedModel(t *testing.T) {
	dirs := buildModelDirs(t, "sentiment")
	opts := sti.ServeOptions{Slack: 1000}
	router, nodes := buildCluster(t, []string{"alpha", "beta"}, dirs, opts)

	body := map[string]any{"model": "sentiment", "task": "classify", "text": "wonderful gripping story"}
	if st, d := postJSON(t, router.URL+"/v2/infer", body); st != http.StatusOK {
		t.Fatalf("warm request: %d %s", st, d)
	}
	home := homeNodeOf(t, nodes, "sentiment")
	cold := otherNode(nodes, home)

	// Drain the home: the router reroutes to the cold holder, whose
	// misses should hit the draining peer's retained payloads instead of
	// flash. (Draining stops routing, not the /cluster donor endpoint.)
	home.sched.SetDraining(true)
	waitForStates(t, router.URL, map[string]string{home.name: "draining", cold.name: "up"})
	const rerouted = 4
	for i := 0; i < rerouted; i++ {
		if st, d := postJSON(t, router.URL+"/v2/infer", body); st != http.StatusOK {
			t.Fatalf("rerouted request %d: %d %s", i, st, d)
		}
	}

	coldStats := cold.sched.Snapshot()
	homeStats := home.sched.Snapshot()
	if coldStats.Completed < rerouted {
		t.Fatalf("cold node completed %d, want >= %d rerouted requests", coldStats.Completed, rerouted)
	}
	if coldStats.PeerHits == 0 {
		t.Fatalf("cold node reported no peer-level cache hits: %+v", coldStats.Models)
	}
	if homeStats.PeerServed == 0 {
		t.Fatal("home node donated no retained payloads")
	}

	// The same workload against a cold standalone server bounds the
	// cluster node's flash IO from above: every peer hit is a flash read
	// the cold node did not pay.
	sfleet := buildClusterFleet(t, dirs)
	ssched := sti.NewScheduler(sfleet, opts)
	t.Cleanup(ssched.Close)
	standalone := httptest.NewServer(newServer(sfleet, ssched, nil))
	t.Cleanup(standalone.Close)
	for i := 0; i < rerouted+1; i++ {
		if st, d := postJSON(t, standalone.URL+"/v2/infer", body); st != http.StatusOK {
			t.Fatalf("standalone request %d: %d %s", i, st, d)
		}
	}
	var coldFlash, aloneFlash uint64
	for _, ms := range coldStats.Models {
		coldFlash += ms.FlashReads
	}
	for _, ms := range ssched.Snapshot().Models {
		aloneFlash += ms.FlashReads
	}
	if coldFlash > aloneFlash {
		t.Fatalf("cold cluster node read flash %d times, standalone %d: peer level saved nothing", coldFlash, aloneFlash)
	}
}

// TestClusterDrainMidTrafficZeroSheds drains a node while it is
// serving a generate stream: the stream runs to completion, new
// traffic reroutes to the surviving node, draining is visible in the
// node's /healthz and /v1/stats and in the router's member table, and
// no request anywhere is shed.
func TestClusterDrainMidTrafficZeroSheds(t *testing.T) {
	dirs := buildModelDirs(t, "sentiment")
	opts := sti.ServeOptions{Slack: 1000}
	router, nodes := buildCluster(t, []string{"alpha", "beta"}, dirs, opts)

	body := map[string]any{"model": "sentiment", "task": "classify", "text": "quick check"}
	if st, d := postJSON(t, router.URL+"/v2/infer", body); st != http.StatusOK {
		t.Fatalf("probe request: %d %s", st, d)
	}
	home := homeNodeOf(t, nodes, "sentiment")
	survivor := otherNode(nodes, home)

	// Open a generate stream through the router (it lands on the home
	// node), then drain that node after the first token arrives.
	const maxNew = 24
	genBody, err := json.Marshal(map[string]any{
		"model": "sentiment", "task": "generate", "text": "once upon a time", "max_new_tokens": maxNew,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(router.URL+"/v2/infer", "application/json", bytes.NewReader(genBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("generate status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	tokens, sawDone, drained := 0, false, false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: token") {
			tokens++
		}
		if strings.HasPrefix(line, "event: done") {
			sawDone = true
		}
		if tokens == 1 && !drained {
			drained = true
			home.sched.SetDraining(true)
			waitForStates(t, router.URL, map[string]string{home.name: "draining", survivor.name: "up"})
			// New traffic reroutes to the survivor while the stream runs.
			for i := 0; i < 3; i++ {
				if st, d := postJSON(t, router.URL+"/v2/infer", body); st != http.StatusOK {
					t.Fatalf("rerouted request %d: %d %s", i, st, d)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if tokens != maxNew || !sawDone {
		t.Fatalf("in-flight stream delivered %d tokens (done=%v), want all %d: draining must not cut streams", tokens, sawDone, maxNew)
	}
	if !drained {
		t.Fatal("stream ended before the drain was ever exercised")
	}

	// Draining is visible on the node's own surfaces (the contract the
	// router's health poll relies on)...
	var hz struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	hresp, err := http.Get(home.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(hresp.Body).Decode(&hz)
	hresp.Body.Close()
	if err != nil || !hz.OK || !hz.Draining {
		t.Fatalf("draining node /healthz = %+v (err %v), want ok+draining", hz, err)
	}
	if st := home.sched.Snapshot(); !st.Draining {
		t.Fatal("draining node /v1/stats does not report draining")
	}
	if st := survivor.sched.Snapshot(); st.Draining {
		t.Fatal("survivor reports draining")
	}

	// ...and in the router's member table, while the survivor keeps the
	// model placed.
	var rstats struct {
		Nodes []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"nodes"`
		Placements map[string][]string `json:"placements"`
	}
	rresp, err := http.Get(router.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(rresp.Body).Decode(&rstats)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, n := range rstats.Nodes {
		states[n.Name] = n.State
	}
	if states[home.name] != "draining" || states[survivor.name] != "up" {
		t.Fatalf("router sees %v", states)
	}
	if p := rstats.Placements["sentiment"]; len(p) != 1 || p[0] != survivor.name {
		t.Fatalf("placement %v, want [%s]", p, survivor.name)
	}

	// Zero sheds anywhere: the whole drain cost nothing in-flight.
	for name, cn := range nodes {
		st := cn.sched.Snapshot()
		if st.Shed != 0 || st.Failed != 0 {
			t.Fatalf("node %s shed=%d failed=%d during drain, want 0/0", name, st.Shed, st.Failed)
		}
	}
}

// BenchmarkClusterServe compares classify through a 1-router/2-node
// in-process cluster against the same fleet standalone: req/s and p99
// per variant, plus the cluster's peer-cache hit rate and flash
// bytes/request in the failover case where the peer level actually
// carries traffic.
func BenchmarkClusterServe(b *testing.B) {
	body, err := json.Marshal(map[string]any{"model": "sentiment", "task": "classify", "text": "wonderful gripping story"})
	if err != nil {
		b.Fatal(err)
	}
	post := func(b *testing.B, url string) time.Duration {
		start := time.Now()
		resp, err := http.Post(url+"/v2/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			b.Fatalf("status %d", resp.StatusCode)
		}
		resp.Body.Close()
		return time.Since(start)
	}
	report := func(b *testing.B, lat []time.Duration) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(len(lat))/b.Elapsed().Seconds(), "req/s")
		if n := len(lat); n > 0 {
			b.ReportMetric(float64(lat[(n*99)/100].Microseconds())/1e3, "p99-ms")
		}
	}
	opts := sti.ServeOptions{Slack: 1000}

	b.Run("standalone", func(b *testing.B) {
		dirs := buildModelDirs(b, "sentiment")
		fleet := buildClusterFleet(b, dirs)
		sched := sti.NewScheduler(fleet, opts)
		defer sched.Close()
		ts := httptest.NewServer(newServer(fleet, sched, nil))
		defer ts.Close()
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, post(b, ts.URL))
		}
		b.StopTimer()
		report(b, lat)
		st := sched.Snapshot()
		if st.Completed > 0 {
			b.ReportMetric(float64(st.BytesRead)/float64(st.Completed), "flashB/req")
		}
	})

	b.Run("cluster-2node", func(b *testing.B) {
		dirs := buildModelDirs(b, "sentiment")
		router, _ := buildCluster(b, []string{"alpha", "beta"}, dirs, opts)
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			lat = append(lat, post(b, router.URL))
		}
		b.StopTimer()
		report(b, lat)
	})

	// Failover: the model's home drains after one warm request, so the
	// surviving node serves everything through the peer cache level.
	b.Run("cluster-failover-peercache", func(b *testing.B) {
		dirs := buildModelDirs(b, "sentiment")
		router, nodes := buildCluster(b, []string{"alpha", "beta"}, dirs, opts)
		post(b, router.URL)
		home := homeNodeOf(b, nodes, "sentiment")
		home.sched.SetDraining(true)
		waitForStates(b, router.URL, map[string]string{home.name: "draining"})
		b.ResetTimer()
		lat := make([]time.Duration, 0, b.N)
		for i := 0; i < b.N; i++ {
			lat = append(lat, post(b, router.URL))
		}
		b.StopTimer()
		report(b, lat)
		st := otherNode(nodes, home).sched.Snapshot()
		if st.Completed > 0 {
			b.ReportMetric(float64(st.BytesRead)/float64(st.Completed), "flashB/req")
		}
		var hits, flash uint64
		for _, ms := range st.Models {
			hits += ms.PeerHits
			flash += ms.FlashReads
		}
		if hits+flash > 0 {
			b.ReportMetric(float64(hits)/float64(hits+flash), "peer-hit-rate")
		}
	})
}

// getJSON fetches a URL and decodes its JSON body into out.
func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestClusterStitchedTrace pins the cross-node tracing contract: one
// generate request through the router yields ONE merged timeline on
// the router's /v1/debug/trace — the router's spans plus the serving
// node's, grafted under the route.forward hop via the Traceparent
// header — covering queue wait, materialize, at least one decode-step
// bucket, and a shard-IO span tagged with its origin. A garbage
// traceparent on a direct node request is ignored (fresh root trace),
// never an error.
func TestClusterStitchedTrace(t *testing.T) {
	dirs := buildModelDirs(t, "sentiment")
	rts, nodes := buildCluster(t, []string{"a", "b"}, dirs, sti.ServeOptions{Slack: 1000})

	resp, err := http.Post(rts.URL+"/v2/infer", "application/json",
		strings.NewReader(`{"model":"sentiment","task":"generate","tokens":[1,9,8],"max_new_tokens":6}`))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), "event: done") {
		t.Fatalf("generate via router: status=%d body=%s", resp.StatusCode, body)
	}

	// The router offers its exemplar after the relay finishes — poll
	// briefly for the ring to catch up with the response.
	var listed []obs.Exemplar
	deadline := time.Now().Add(5 * time.Second)
	for {
		listed = nil
		if getJSON(t, rts.URL+"/v1/debug/trace?format=json", &listed) == http.StatusOK && len(listed) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never retained an exemplar for the generate request")
		}
		time.Sleep(10 * time.Millisecond)
	}
	routerEx := listed[0]
	if routerEx.Model != "sentiment" || routerEx.TraceID == "" {
		t.Fatalf("unexpected router exemplar: %+v", routerEx)
	}

	// Fetch the stitched timeline; the node half may also lag the
	// response by an instant, so poll until the forward hop has a node
	// request span grafted under it.
	var stitched obs.Exemplar
	stitchedOK := func() bool {
		var ex obs.Exemplar
		if getJSON(t, rts.URL+"/v1/debug/trace?format=json&trace="+routerEx.TraceID, &ex) != http.StatusOK {
			return false
		}
		stitched = ex
		fwd := -1
		for i, s := range ex.Spans {
			if s.Name == obs.SpanForward {
				fwd = i
			}
		}
		if fwd < 0 {
			return false
		}
		for i, s := range ex.Spans {
			if i > 0 && s.Name == obs.SpanRequest && int(s.Parent) == fwd {
				return true
			}
		}
		return false
	}
	for !stitchedOK() {
		if time.Now().After(deadline) {
			t.Fatalf("never saw a stitched router+node trace; last spans: %+v", stitched.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The merged span set covers every layer of the pipeline.
	seen := map[string]bool{}
	origins := map[string]bool{}
	for _, s := range stitched.Spans {
		seen[s.Name] = true
		if s.Name == obs.SpanShardIO {
			origins[s.Detail] = true
		}
	}
	for _, want := range []string{obs.SpanRequest, obs.SpanForward, obs.SpanQueueWait,
		obs.SpanMaterialize, obs.SpanDecodeStep, obs.SpanShardIO} {
		if !seen[want] {
			t.Errorf("stitched trace is missing a %q span (have %v)", want, seen)
		}
	}
	valid := map[string]bool{obs.OriginFlash: true, obs.OriginCache: true, obs.OriginPeer: true, obs.OriginPrefetch: true}
	if len(origins) == 0 {
		t.Error("no shard-IO span carries an origin tag")
	}
	for o := range origins {
		if !valid[o] {
			t.Errorf("shard-IO span tagged with unknown origin %q", o)
		}
	}
	// The forward hop names the member that actually served.
	for _, s := range stitched.Spans {
		if s.Name == obs.SpanForward {
			if _, ok := nodes[s.Detail]; !ok {
				t.Errorf("route.forward detail %q names no cluster member", s.Detail)
			}
		}
	}

	// Garbage traceparent straight at a node: ignored, fresh root.
	req, err := http.NewRequest(http.MethodPost, nodes["a"].url+"/v2/infer",
		strings.NewReader(`{"model":"sentiment","tokens":[1,2,3]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Traceparent", "zz-garbage-not-a-traceparent-at-all")
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("garbage traceparent => %d, want 200 (ignored, not an error)", dresp.StatusCode)
	}
	freshRoot := func() bool {
		for _, m := range nodes["a"].hub.Models() {
			for _, ex := range nodes["a"].hub.Ring(m).Snapshot() {
				if ex.RemoteParent < 0 && ex.Err == "" {
					return true
				}
			}
		}
		return false
	}
	for !freshRoot() {
		if time.Now().After(deadline) {
			t.Fatal("garbage-traceparent request never produced a fresh-root exemplar")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterObservabilitySmoke drives traffic through a two-node
// cluster, then scrapes every /metrics surface (router and both
// members) through the exposition linter and checks the debug-trace
// endpoints actually retained exemplars. This is the CI observability
// smoke: a malformed metric line or a silently-empty exemplar ring
// fails here, not in a dashboard.
func TestClusterObservabilitySmoke(t *testing.T) {
	dirs := buildModelDirs(t, "sentiment")
	rts, nodes := buildCluster(t, []string{"a", "b"}, dirs, sti.ServeOptions{Slack: 1000})

	for i := 0; i < 3; i++ {
		st, body := postJSON(t, rts.URL+"/v2/infer",
			map[string]any{"model": "sentiment", "task": "classify", "tokens": []int{1, 2, 3}})
		if st != http.StatusOK {
			t.Fatalf("classify %d: status %d body %s", i, st, body)
		}
	}

	scrapes := []string{rts.URL + "/metrics"}
	for _, cn := range nodes {
		scrapes = append(scrapes, cn.url+"/metrics")
	}
	for _, u := range scrapes {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		raw := new(bytes.Buffer)
		_, err = raw.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", u, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s: content type %q", u, ct)
		}
		if err := obs.LintExposition(raw.Bytes()); err != nil {
			t.Errorf("%s: exposition lint: %v", u, err)
		}
		if !strings.Contains(raw.String(), "sti_") {
			t.Errorf("%s: no sti_ metrics in scrape", u)
		}
	}

	// After traffic the router's trace surface must list exemplars,
	// and the member that served must too. Both are offered after the
	// response completes, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var listed []obs.Exemplar
		if getJSON(t, rts.URL+"/v1/debug/trace?format=json", &listed) == http.StatusOK && len(listed) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router /v1/debug/trace empty after traffic")
		}
		time.Sleep(10 * time.Millisecond)
	}
	nodeHasTrace := func() bool {
		for _, cn := range nodes {
			var listed []obs.Exemplar
			if getJSON(t, cn.url+"/v1/debug/trace?format=json", &listed) == http.StatusOK && len(listed) > 0 {
				return true
			}
		}
		return false
	}
	for !nodeHasTrace() {
		if time.Now().After(deadline) {
			t.Fatal("no member /v1/debug/trace retained an exemplar after traffic")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
