// Command sti-serve exposes a fleet of preprocessed STI models as a
// concurrent JSON-over-HTTP inference service: per-model planned
// pipelines, bounded admission queues with load shedding, per-request
// deadlines derived from each model's latency target, and live budget
// replanning.
//
//	sti-preprocess -out /tmp/sst2 -task SST-2 -train
//	sti-serve -model sentiment=/tmp/sst2 -budget 262144 -addr :8080
//
//	# task-typed v2: classify (default) or generate (streams SSE tokens)
//	curl -s localhost:8080/v2/infer -d '{"model":"sentiment","task":"classify","text":"wonderful gripping story"}'
//	curl -sN localhost:8080/v2/infer -d '{"model":"sentiment","task":"generate","text":"once upon","max_new_tokens":8}'
//
//	# per-request SLO: target_ms rides the tightest plan tier that meets
//	# it (the response's tier_ms/fidelity report which tier served it)
//	curl -s localhost:8080/v2/infer -d '{"model":"sentiment","text":"quick check","target_ms":100}'
//
//	# v1 is served as a classify-pinned adapter over the v2 path
//	curl -s localhost:8080/v1/infer -d '{"model":"sentiment","text":"wonderful gripping story"}'
//	curl -s localhost:8080/v1/infer -d '{"model":"sentiment","inputs":[{"text":"loved it"},{"text":"dreadful"}]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/budget -d '{"budget_bytes":131072}'
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// HTTP requests drain, then the scheduler serves or sheds whatever is
// still queued before the process exits.
//
// Multi-input bodies (and any concurrent single requests for the same
// model) are drained by the scheduler's batch accumulator into one
// batched execution whose IO/decompress stream is shared by the whole
// batch: /v1/stats reports avg_batch and bytes_per_request so the
// amortization is visible. -maxbatch and -batchwindow tune it.
//
// Multiple -model flags serve multiple models from one budget; a spec
// may override the default target and weight per model:
//
//	sti-serve -model sentiment=/tmp/sst2,target=150ms,weight=2 \
//	          -model nextword=/tmp/qnli,target=300ms,weight=1
//
// -replicas N serves every model from an elastic pool of N pipeline
// engines: each replica owns a slice (grant/N) of the model's preload
// budget, requests dispatch least-loaded, and all replicas stream
// shards through one single-flight cache so concurrent executions of
// the same plan cost ~1× flash IO. Queue pressure past the high-water
// mark regrows a drained pool up to N; a sustained idle queue drains
// replicas (in-flight work finishes first) and returns their bytes.
// /v1/stats reports replicas, per-replica served counters
// (replica_served) and the dedup counters (singleflight_hits,
// flash_reads, singleflight_bytes_saved). -workers must be at least
// -replicas; when unset it defaults to 2× replicas.
//
// Generate traffic is continuously batched: each replica runs a step
// loop that admits new streams between decode steps and serves every
// in-flight sequence with one batched forward per step, with KV state
// in paged blocks charged against the model's preload grant.
// -maxstreams caps the concurrently decoding streams (scheduler-wide
// and per replica step loop); /v1/stats reports the step-loop counters
// under each model's "gen" object (gen_steps, gen_streams,
// gen_avg_streams_per_step, gen_preempted, gen_kv_bytes, ...).
//
// -mode turns one binary into a multi-node cluster. A static peer list
// (-peers "a=http://h1:8080,b=http://h2:8080") is shared by every
// process; consistent hashing places each model on ReplicationFactor
// nodes without coordination:
//
//	sti-serve -mode node -node a -peers "$PEERS" -model ... # on h1
//	sti-serve -mode node -node b -peers "$PEERS" -model ... # on h2
//	sti-serve -mode router -peers "$PEERS" -addr :9090
//
// The router terminates /v2/infer (SSE generate streams included) and
// forwards each request to a node holding its model with a per-hop
// deadline derived from the request SLO; shed or unreachable classify
// retries once on a different holder. Nodes additionally serve
// /cluster/*: a donor endpoint that lets a peer's shared cache fetch a
// retained shard payload instead of reading flash (the cache's second
// level), and the arrival-observation intake that keeps each model's
// owning predictor trained on its full arrival stream. On
// SIGINT/SIGTERM a node reports draining via /healthz for -draingrace
// before closing its listener, so the router rebalances its models away
// without shedding a single in-flight request.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sti"
	"sti/internal/obs"
)

// concurrencyFor resolves the scheduler worker count against the
// replica count. Each replica only ever receives traffic from a
// scheduler worker, so fewer workers than replicas would leave
// replicas permanently idle while their preload buffers hold budget:
// an explicit -workers below -replicas is a configuration error, and
// an unset -workers defaults to 2 workers per replica so dispatch can
// keep every replica busy and still overlap queue drains.
func concurrencyFor(workers int, workersSet bool, replicas int) (int, error) {
	if replicas < 1 {
		return 0, fmt.Errorf("-replicas %d: need at least one replica", replicas)
	}
	if !workersSet {
		if w := 2 * replicas; w > workers {
			return w, nil
		}
		return workers, nil
	}
	if workers < 1 {
		return 0, fmt.Errorf("-workers %d: need at least one worker", workers)
	}
	if workers < replicas {
		return 0, fmt.Errorf("-workers %d < -replicas %d: every replica needs at least one scheduler worker to receive traffic", workers, replicas)
	}
	return workers, nil
}

// predictConfigFor validates the predictive-subsystem flags and builds
// the fleet's prediction options. The prefetcher stages shard payloads
// in the per-model shared cache, so -prefetch with a zero-byte cache
// could never keep anything it fetched: reject the combination loudly
// instead of running a predictor whose every prefetch is wasted.
func predictConfigFor(prefetch, speculate bool, sharedCacheBytes int64) (sti.PredictOptions, bool, error) {
	if prefetch && sharedCacheBytes <= 0 {
		return sti.PredictOptions{}, false, fmt.Errorf(
			"-prefetch requires a non-zero -sharedcache: prefetched shard payloads are staged in the per-model shared cache, and a zero-byte cache discards every one")
	}
	if !prefetch && !speculate {
		return sti.PredictOptions{}, false, nil
	}
	return sti.PredictOptions{Prefetch: prefetch, Speculate: speculate}, true, nil
}

// modelSpec is one parsed -model flag: name=dir[,target=D][,weight=W].
type modelSpec struct {
	name   string
	dir    string
	target time.Duration
	weight float64
}

type modelFlags []modelSpec

func (m *modelFlags) String() string {
	var parts []string
	for _, s := range *m {
		parts = append(parts, s.name+"="+s.dir)
	}
	return strings.Join(parts, " ")
}

func (m *modelFlags) Set(v string) error {
	spec := modelSpec{target: 200 * time.Millisecond, weight: 1}
	for i, part := range strings.Split(v, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("model spec %q: want name=dir[,target=D][,weight=W]", v)
		}
		switch {
		case i == 0:
			spec.name, spec.dir = key, val
		case key == "target":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("model spec %q: %w", v, err)
			}
			spec.target = d
		case key == "weight":
			w, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("model spec %q: %w", v, err)
			}
			spec.weight = w
		default:
			return fmt.Errorf("model spec %q: unknown option %q", v, key)
		}
	}
	if spec.name == "" || spec.dir == "" {
		return fmt.Errorf("model spec %q: empty name or dir", v)
	}
	*m = append(*m, spec)
	return nil
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "model spec name=dir[,target=D][,weight=W]; repeatable (required)")
	addr := flag.String("addr", ":8080", "listen address")
	deviceName := flag.String("device", "odroid", "device profile: odroid or jetson")
	budget := flag.Int64("budget", 256<<10, "fleet-wide preload budget in bytes")
	queue := flag.Int("queue", 64, "admission queue depth per model")
	workers := flag.Int("workers", 2, "scheduler worker goroutines per model (default 2, or 2x -replicas when -replicas is set; must be >= -replicas)")
	replicas := flag.Int("replicas", 1, "pipeline-engine replicas per model: each gets its own preload-buffer slice, all share one single-flight shard cache; also the elastic ceiling queue pressure can scale up to")
	slack := flag.Float64("slack", 4, "request deadline = slack x model target")
	maxBatch := flag.Int("maxbatch", 8, "max queued requests drained into one batched execution (1 disables batching)")
	batchWindow := flag.Duration("batchwindow", 2*time.Millisecond, "how long a worker waits for a batch to fill")
	maxStreams := flag.Int("maxstreams", 64, "max concurrently decoding generate streams, scheduler-wide and per replica step loop (continuous batching admits up to this many sequences per batched decode step)")
	prefetch := flag.Bool("prefetch", false, "enable predictive shard prefetch: a sequence predictor trained on each model's shard-access order pulls predicted payloads into the shared cache ahead of the compute front (requires -sharedcache > 0)")
	speculate := flag.Bool("speculate", false, "enable speculative tier warming and pre-emptive replica scale advice driven by each model's arrival-rate trend")
	sharedCache := flag.Int64("sharedcache", 1<<20, "per-model shared shard-cache retention in bytes (single-flight dedup window + prefetch staging area; 0 keeps pure coalescing only)")
	mode := flag.String("mode", "standalone", "serving mode: standalone (default), node (cluster member; needs -node and -peers), or router (cluster frontend; needs -peers, takes no -model)")
	peersSpec := flag.String("peers", "", "static cluster membership: comma-separated name=url pairs, identical on every router and node")
	nodeName := flag.String("node", "", "this process's name in -peers (node mode)")
	drainGrace := flag.Duration("draingrace", time.Second, "node mode: how long to advertise draining via /healthz before closing the listener, so the router rebalances first")
	routerTarget := flag.Duration("target", 200*time.Millisecond, "router mode: SLO assumed for requests without target_ms when deriving per-hop deadlines")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/")
	traceRing := flag.Int("tracering", 8, "per-model exemplar traces retained for /v1/debug/trace (slowest plus all erroring)")
	noTrace := flag.Bool("notrace", false, "disable per-request span capture (metrics and /metrics stay on)")
	flag.Parse()

	// The observability hub is the process root every layer registers
	// into: /metrics exposition, runtime scrape, request tracing and
	// the exemplar rings behind /v1/debug/trace.
	hub := obs.NewHub(*traceRing)
	hub.SetTracing(!*noTrace)
	obs.RegisterRuntimeMetrics(hub.Registry())

	switch *mode {
	case "router":
		runRouter(*addr, *peersSpec, *routerTarget, hub, *pprofOn)
		return
	case "node":
		if *peersSpec == "" || *nodeName == "" {
			log.Fatal("sti-serve: -mode node requires -node and -peers")
		}
	case "standalone":
		if *peersSpec != "" || *nodeName != "" {
			log.Fatal("sti-serve: -peers/-node need -mode node or -mode router")
		}
	default:
		log.Fatalf("sti-serve: unknown -mode %q (standalone, node, or router)", *mode)
	}
	if len(models) == 0 {
		log.Fatal("sti-serve: at least one -model is required")
	}
	workersSet := false
	flag.Visit(func(fl *flag.Flag) {
		if fl.Name == "workers" {
			workersSet = true
		}
	})
	w, err := concurrencyFor(*workers, workersSet, *replicas)
	if err != nil {
		log.Fatalf("sti-serve: %v", err)
	}
	*workers = w
	popts, predictOn, err := predictConfigFor(*prefetch, *speculate, *sharedCache)
	if err != nil {
		log.Fatalf("sti-serve: %v", err)
	}

	var dev *sti.Device
	switch *deviceName {
	case "odroid":
		dev = sti.Odroid()
	case "jetson":
		dev = sti.Jetson()
	default:
		log.Fatalf("sti-serve: unknown device %q", *deviceName)
	}

	fleet := sti.NewFleet(*budget)
	for _, spec := range models {
		sys, err := sti.Load(spec.dir, dev, 0)
		if err != nil {
			log.Fatalf("sti-serve: loading %q: %v", spec.name, err)
		}
		if err := fleet.Add(spec.name, sys, spec.target, spec.weight); err != nil {
			log.Fatal(err)
		}
		if err := fleet.SetReplicas(spec.name, *replicas); err != nil {
			log.Fatal(err)
		}
		if err := fleet.ConfigureReplicas(spec.name, sti.ReplicaOptions{MaxStreams: *maxStreams}); err != nil {
			log.Fatal(err)
		}
		if err := fleet.SetSharedCacheRetain(spec.name, *sharedCache); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %q from %s (target %v, weight %v, %d replica(s))",
			spec.name, spec.dir, spec.target, spec.weight, *replicas)
	}
	if err := fleet.Replan(); err != nil {
		log.Fatalf("sti-serve: initial replan: %v", err)
	}
	for _, name := range fleet.Names() {
		e, _ := fleet.Entry(name)
		ps, _ := fleet.ReplicaStats(name)
		log.Printf("planned %q: %s (budget %d KB across %d replica(s) = %d KB each, preload %d KB)",
			name, e.Plan, e.Budget>>10, e.Replicas, ps.PerReplica>>10, e.Plan.PreloadUsed>>10)
		for _, tier := range e.Tiers {
			cfg := e.System.Store.Man.Config
			log.Printf("  tier %v: %dx%d fidelity %.2f",
				tier.Target, tier.Plan.Depth, tier.Plan.Width,
				tier.Plan.Fidelity(cfg.Layers, cfg.Heads))
		}
	}

	if predictOn {
		if err := fleet.EnablePrediction(popts); err != nil {
			log.Fatalf("sti-serve: %v", err)
		}
		r := popts.WithDefaults()
		log.Printf("prediction enabled: prefetch=%v speculate=%v interval=%v lookahead=%d minconf=%d warmtrend=%.2f rps cooldown=%v horizon=%v sharedcache=%d KB/model",
			r.Prefetch, r.Speculate, r.Interval, r.Lookahead, r.MinConfidence, r.WarmTrend, r.WarmCooldown, r.Horizon, *sharedCache>>10)
	} else {
		log.Printf("prediction disabled (enable with -prefetch and/or -speculate)")
	}

	fleet.SetObservability(hub)
	sched := sti.NewScheduler(fleet, sti.ServeOptions{
		QueueDepth: *queue, Workers: *workers, Slack: *slack,
		MaxBatch: *maxBatch, BatchWindow: *batchWindow,
		MaxStreams: *maxStreams, Obs: hub,
	})

	// In node mode the ordinary serving surface gains the /cluster/*
	// endpoints and every model's shared cache gains its peer level.
	handler := http.Handler(newServer(fleet, sched, hub))
	var node *sti.ClusterNode
	if *mode == "node" {
		peers, err := sti.ParseClusterPeers(*peersSpec)
		if err != nil {
			log.Fatalf("sti-serve: -peers: %v", err)
		}
		node, err = sti.NewClusterNode(fleet, *nodeName, peers, sti.ClusterNodeOptions{})
		if err != nil {
			log.Fatalf("sti-serve: %v", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/cluster/", node.Handler())
		mux.Handle("/", handler)
		handler = mux
		log.Printf("cluster node %q of %d peer(s); peer shard cache enabled", *nodeName, len(peers))
	}
	handler = withPprof(handler, *pprofOn)

	// Graceful shutdown: SIGINT/SIGTERM marks the scheduler draining
	// (visible in /healthz and /v1/stats; in node mode the router's
	// health poll pulls this node out of rotation within -draingrace),
	// then stops accepting connections, drains in-flight HTTP requests,
	// and finally drains the scheduler's queues — nothing dies
	// mid-pipeline and no in-flight request is shed.
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d model(s) on %s", len(models), *addr)

	select {
	case err := <-errc:
		sched.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		sched.SetDraining(true)
		log.Printf("signal received; draining in-flight requests")
		if *mode == "node" {
			time.Sleep(*drainGrace) // let the router notice before the listener closes
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("sti-serve: http shutdown: %v", err)
		}
		if node != nil {
			node.Close()
		}
		sched.Close() // serve or shed whatever is still queued
		log.Printf("drained; exiting")
	}
}

// withPprof optionally mounts the net/http/pprof endpoints in front of
// the serving surface. Opt-in: profiling handlers expose heap and CPU
// internals, so they are off unless -pprof asks for them.
func withPprof(h http.Handler, enable bool) http.Handler {
	if !enable {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// runRouter is -mode router: no fleet, no models — just the cluster
// frontend forwarding to the nodes in -peers.
func runRouter(addr, peersSpec string, target time.Duration, hub *obs.Hub, pprofOn bool) {
	peers, err := sti.ParseClusterPeers(peersSpec)
	if err != nil {
		log.Fatalf("sti-serve: -peers: %v", err)
	}
	rt, err := sti.NewClusterRouter(peers, sti.ClusterRouterOptions{DefaultTarget: target, Obs: hub})
	if err != nil {
		log.Fatalf("sti-serve: %v", err)
	}
	srv := &http.Server{Addr: addr, Handler: withPprof(rt, pprofOn)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("routing for %d node(s) on %s", len(peers), addr)

	select {
	case err := <-errc:
		rt.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop()
		log.Printf("signal received; draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("sti-serve: http shutdown: %v", err)
		}
		rt.Close()
		log.Printf("drained; exiting")
	}
}
