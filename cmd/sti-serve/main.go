// Command sti-serve exposes a fleet of preprocessed STI models as a
// concurrent JSON-over-HTTP inference service: per-model planned
// pipelines, bounded admission queues with load shedding, per-request
// deadlines derived from each model's latency target, and live budget
// replanning.
//
//	sti-preprocess -out /tmp/sst2 -task SST-2 -train
//	sti-serve -model sentiment=/tmp/sst2 -budget 262144 -addr :8080
//
//	# task-typed v2: classify (default) or generate (streams SSE tokens)
//	curl -s localhost:8080/v2/infer -d '{"model":"sentiment","task":"classify","text":"wonderful gripping story"}'
//	curl -sN localhost:8080/v2/infer -d '{"model":"sentiment","task":"generate","text":"once upon","max_new_tokens":8}'
//
//	# per-request SLO: target_ms rides the tightest plan tier that meets
//	# it (the response's tier_ms/fidelity report which tier served it)
//	curl -s localhost:8080/v2/infer -d '{"model":"sentiment","text":"quick check","target_ms":100}'
//
//	# v1 is served as a classify-pinned adapter over the v2 path
//	curl -s localhost:8080/v1/infer -d '{"model":"sentiment","text":"wonderful gripping story"}'
//	curl -s localhost:8080/v1/infer -d '{"model":"sentiment","inputs":[{"text":"loved it"},{"text":"dreadful"}]}'
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/v1/budget -d '{"budget_bytes":131072}'
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, in-flight
// HTTP requests drain, then the scheduler serves or sheds whatever is
// still queued before the process exits.
//
// Multi-input bodies (and any concurrent single requests for the same
// model) are drained by the scheduler's batch accumulator into one
// batched execution whose IO/decompress stream is shared by the whole
// batch: /v1/stats reports avg_batch and bytes_per_request so the
// amortization is visible. -maxbatch and -batchwindow tune it.
//
// Multiple -model flags serve multiple models from one budget; a spec
// may override the default target and weight per model:
//
//	sti-serve -model sentiment=/tmp/sst2,target=150ms,weight=2 \
//	          -model nextword=/tmp/qnli,target=300ms,weight=1
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"sti"
)

// modelSpec is one parsed -model flag: name=dir[,target=D][,weight=W].
type modelSpec struct {
	name   string
	dir    string
	target time.Duration
	weight float64
}

type modelFlags []modelSpec

func (m *modelFlags) String() string {
	var parts []string
	for _, s := range *m {
		parts = append(parts, s.name+"="+s.dir)
	}
	return strings.Join(parts, " ")
}

func (m *modelFlags) Set(v string) error {
	spec := modelSpec{target: 200 * time.Millisecond, weight: 1}
	for i, part := range strings.Split(v, ",") {
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("model spec %q: want name=dir[,target=D][,weight=W]", v)
		}
		switch {
		case i == 0:
			spec.name, spec.dir = key, val
		case key == "target":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("model spec %q: %w", v, err)
			}
			spec.target = d
		case key == "weight":
			w, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return fmt.Errorf("model spec %q: %w", v, err)
			}
			spec.weight = w
		default:
			return fmt.Errorf("model spec %q: unknown option %q", v, key)
		}
	}
	if spec.name == "" || spec.dir == "" {
		return fmt.Errorf("model spec %q: empty name or dir", v)
	}
	*m = append(*m, spec)
	return nil
}

func main() {
	var models modelFlags
	flag.Var(&models, "model", "model spec name=dir[,target=D][,weight=W]; repeatable (required)")
	addr := flag.String("addr", ":8080", "listen address")
	deviceName := flag.String("device", "odroid", "device profile: odroid or jetson")
	budget := flag.Int64("budget", 256<<10, "fleet-wide preload budget in bytes")
	queue := flag.Int("queue", 64, "admission queue depth per model")
	workers := flag.Int("workers", 2, "worker goroutines per model")
	slack := flag.Float64("slack", 4, "request deadline = slack x model target")
	maxBatch := flag.Int("maxbatch", 8, "max queued requests drained into one batched execution (1 disables batching)")
	batchWindow := flag.Duration("batchwindow", 2*time.Millisecond, "how long a worker waits for a batch to fill")
	flag.Parse()
	if len(models) == 0 {
		log.Fatal("sti-serve: at least one -model is required")
	}

	var dev *sti.Device
	switch *deviceName {
	case "odroid":
		dev = sti.Odroid()
	case "jetson":
		dev = sti.Jetson()
	default:
		log.Fatalf("sti-serve: unknown device %q", *deviceName)
	}

	fleet := sti.NewFleet(*budget)
	for _, spec := range models {
		sys, err := sti.Load(spec.dir, dev, 0)
		if err != nil {
			log.Fatalf("sti-serve: loading %q: %v", spec.name, err)
		}
		if err := fleet.Add(spec.name, sys, spec.target, spec.weight); err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %q from %s (target %v, weight %v)", spec.name, spec.dir, spec.target, spec.weight)
	}
	if err := fleet.Replan(); err != nil {
		log.Fatalf("sti-serve: initial replan: %v", err)
	}
	for _, name := range fleet.Names() {
		e, _ := fleet.Entry(name)
		log.Printf("planned %q: %s (budget %d KB, preload %d KB)",
			name, e.Plan, e.Budget>>10, e.Plan.PreloadUsed>>10)
		for _, tier := range e.Tiers {
			cfg := e.System.Store.Man.Config
			log.Printf("  tier %v: %dx%d fidelity %.2f",
				tier.Target, tier.Plan.Depth, tier.Plan.Width,
				tier.Plan.Fidelity(cfg.Layers, cfg.Heads))
		}
	}

	sched := sti.NewScheduler(fleet, sti.ServeOptions{
		QueueDepth: *queue, Workers: *workers, Slack: *slack,
		MaxBatch: *maxBatch, BatchWindow: *batchWindow,
	})

	// Graceful shutdown: SIGINT/SIGTERM stops accepting connections,
	// drains in-flight HTTP requests, then drains the scheduler's
	// queues — nothing dies mid-pipeline.
	srv := &http.Server{Addr: *addr, Handler: newServer(fleet, sched)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d model(s) on %s", len(models), *addr)

	select {
	case err := <-errc:
		sched.Close()
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("signal received; draining in-flight requests")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("sti-serve: http shutdown: %v", err)
		}
		sched.Close() // serve or shed whatever is still queued
		log.Printf("drained; exiting")
	}
}
