package main

import (
	"encoding/json"
	"net/http"
	"testing"

	"sti"
)

// TestServerTargetMSSelectsTier drives per-request SLOs through the
// wire: a tight target_ms rides a tighter (coarser) plan tier than a
// relaxed one against the same model, each response reports the tier
// that served it, and /v1/stats exposes plan-cache counters and
// per-tier served counts.
func TestServerTargetMSSelectsTier(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})

	post := func(targetMS float64) inferResponse {
		t.Helper()
		status, data := postJSON(t, ts.URL+"/v2/infer", map[string]any{
			"model": "sentiment", "task": "classify",
			"text": "wonderful gripping story", "target_ms": targetMS,
		})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, data)
		}
		var ir inferResponse
		if err := json.Unmarshal(data, &ir); err != nil {
			t.Fatal(err)
		}
		return ir
	}

	tight := post(100)   // the ladder's 0.5× tier (default target 200ms)
	relaxed := post(400) // the 2× tier
	if tight.TierMS != 100 || relaxed.TierMS != 400 {
		t.Fatalf("tiers %v/%v ms, want 100/400", tight.TierMS, relaxed.TierMS)
	}
	// The tiny test model saturates above ~50ms, so fidelity may tie
	// across these tiers — it must never exceed the relaxed tier's.
	if tight.Fidelity <= 0 || tight.Fidelity > relaxed.Fidelity || relaxed.Fidelity > 1 {
		t.Fatalf("fidelity tight %v vs relaxed %v, want 0 < tight <= relaxed <= 1",
			tight.Fidelity, relaxed.Fidelity)
	}
	// The default: no target_ms rides the model's own target tier.
	def := post(0)
	if def.TierMS != 200 {
		t.Fatalf("default tier %v ms, want the model's 200ms target", def.TierMS)
	}

	// An off-ladder SLO is planned on demand and served.
	odd := post(50)
	if odd.TierMS != 50 {
		t.Fatalf("off-ladder tier %v ms, want 50", odd.TierMS)
	}

	// A negative SLO is a client error.
	if status, _ := postJSON(t, ts.URL+"/v2/infer", map[string]any{
		"model": "sentiment", "text": "x", "target_ms": -1,
	}); status != http.StatusBadRequest {
		t.Fatalf("negative target_ms status %d, want 400", status)
	}

	// Stats expose the tier traffic: hits for the three ladder-served
	// requests, one miss for the on-demand tier, per-tier counts.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st sti.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 3 || st.PlanCacheMisses != 1 {
		t.Fatalf("plan cache %d hits / %d misses, want 3/1", st.PlanCacheHits, st.PlanCacheMisses)
	}
	for _, tier := range []string{"100ms", "200ms", "400ms", "50ms"} {
		if st.ServedByTier[tier] != 1 {
			t.Fatalf("served_by_tier %v, want one request per tier", st.ServedByTier)
		}
	}
}
