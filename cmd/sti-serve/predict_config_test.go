package main

import (
	"strings"
	"testing"
)

// TestPredictConfigFor covers the flag-validation matrix: prediction
// off by default, on when either actuator flag is set, and -prefetch
// with a zero-byte shared cache rejected with an explanation.
func TestPredictConfigFor(t *testing.T) {
	if _, on, err := predictConfigFor(false, false, 1<<20); err != nil || on {
		t.Fatalf("both flags off: on=%v err=%v, want disabled", on, err)
	}

	opts, on, err := predictConfigFor(true, false, 1<<20)
	if err != nil || !on || !opts.Prefetch || opts.Speculate {
		t.Fatalf("-prefetch: opts=%+v on=%v err=%v", opts, on, err)
	}
	opts, on, err = predictConfigFor(false, true, 0)
	if err != nil || !on || opts.Prefetch || !opts.Speculate {
		t.Fatalf("-speculate with zero cache is valid (no staging): opts=%+v on=%v err=%v", opts, on, err)
	}
	opts, on, err = predictConfigFor(true, true, 4096)
	if err != nil || !on || !opts.Prefetch || !opts.Speculate {
		t.Fatalf("both flags: opts=%+v on=%v err=%v", opts, on, err)
	}

	for _, bytes := range []int64{0, -1} {
		if _, on, err := predictConfigFor(true, false, bytes); err == nil || on {
			t.Fatalf("-prefetch with -sharedcache=%d: on=%v err=%v, want rejection", bytes, on, err)
		} else if !strings.Contains(err.Error(), "-sharedcache") {
			t.Fatalf("rejection should name -sharedcache: %v", err)
		}
	}
}
