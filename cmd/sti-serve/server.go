package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"sti"
	"sti/internal/tokenizer"
)

// server is the HTTP frontend over a fleet and its scheduler. It is
// split from main so tests can drive the exact handler path with
// httptest.
type server struct {
	fleet  *sti.Fleet
	sched  *sti.Scheduler
	models map[string]modelInfo
	mux    *http.ServeMux
}

// modelInfo caches what the handler needs to tokenize and validate
// input for one model.
type modelInfo struct {
	tok    *tokenizer.Tokenizer
	vocab  int
	maxSeq int
}

func newServer(fleet *sti.Fleet, sched *sti.Scheduler) *server {
	s := &server{
		fleet:  fleet,
		sched:  sched,
		models: make(map[string]modelInfo),
		mux:    http.NewServeMux(),
	}
	for _, name := range fleet.Names() {
		e, _ := fleet.Entry(name)
		cfg := e.System.Store.Man.Config
		s.models[name] = modelInfo{
			tok:    tokenizer.New(cfg.Vocab, cfg.MaxSeq),
			vocab:  cfg.Vocab,
			maxSeq: cfg.MaxSeq,
		}
	}
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/budget", s.handleBudget)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// inferInput is one sequence: raw token ids, or text to be tokenized
// with the model's own tokenizer (TextB for sentence-pair tasks).
type inferInput struct {
	Text   string `json:"text,omitempty"`
	TextB  string `json:"textb,omitempty"`
	Tokens []int  `json:"tokens,omitempty"`
	Mask   []bool `json:"mask,omitempty"`
}

// maxInputsPerBody bounds a multi-input request: each input is one
// goroutine and one admission-queue slot, so an unbounded list would
// let a single client burst past the queue's load shedding.
const maxInputsPerBody = 64

// inferRequest carries a single inline input (the original API) or a
// list of inputs that the scheduler's batch accumulator may serve with
// one shared IO/decompress stream.
type inferRequest struct {
	Model string `json:"model"`
	inferInput
	Inputs []inferInput `json:"inputs,omitempty"`
}

// inferResult is the outcome of one input. Batch is how many requests
// shared the execution stream; BytesRead is this request's amortized
// share of that stream's flash IO.
type inferResult struct {
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits,omitempty"`
	QueuedMS  float64   `json:"queued_ms"`
	TotalMS   float64   `json:"total_ms"`
	BytesRead int64     `json:"bytes_read"`
	CacheHits int       `json:"cache_hits"`
	Batch     int       `json:"batch,omitempty"`
	Error     string    `json:"error,omitempty"`
}

type inferResponse struct {
	Model string `json:"model"`
	inferResult
}

type batchResponse struct {
	Model   string        `json:"model"`
	Results []inferResult `json:"results"`
}

// encode validates one input against a model and returns its token ids
// and mask.
func (info modelInfo) encode(in inferInput) ([]int, []bool, error) {
	tokens, mask := in.Tokens, in.Mask
	if len(tokens) == 0 {
		if in.Text == "" {
			return nil, nil, errors.New("missing text or tokens")
		}
		tokens, mask = info.tok.Encode(in.Text, in.TextB)
		return tokens, mask, nil
	}
	// Raw token ids come straight from the client; reject anything
	// the embedding table cannot index.
	if len(tokens) > info.maxSeq {
		return nil, nil, fmt.Errorf("%d tokens exceed max sequence length %d", len(tokens), info.maxSeq)
	}
	for i, tk := range tokens {
		if tk < 0 || tk >= info.vocab {
			return nil, nil, fmt.Errorf("token %d out of range [0,%d) at position %d", tk, info.vocab, i)
		}
	}
	if len(mask) != 0 && len(mask) != len(tokens) {
		return nil, nil, fmt.Errorf("mask length %d != token length %d", len(mask), len(tokens))
	}
	return tokens, mask, nil
}

// resultFor converts one scheduled outcome into the wire shape.
func resultFor(res *sti.ServeResult, err error) inferResult {
	if err != nil {
		return inferResult{Class: -1, Error: err.Error()}
	}
	best := 0
	for i, v := range res.Logits {
		if v > res.Logits[best] {
			best = i
		}
	}
	out := inferResult{
		Class:    best,
		Logits:   res.Logits,
		QueuedMS: float64(res.Queued.Microseconds()) / 1e3,
		TotalMS:  float64(res.Total.Microseconds()) / 1e3,
		Batch:    res.Batch,
	}
	if res.Stats != nil {
		out.BytesRead = res.Stats.BytesRead
		out.CacheHits = res.Stats.CacheHits
		if res.Batch > 1 {
			out.BytesRead /= int64(res.Batch) // amortized share of the stream
		}
	}
	return out
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing model"))
		return
	}
	info, ok := s.models[req.Model]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
		return
	}

	// Single-input body: the original API shape.
	if len(req.Inputs) == 0 {
		tokens, mask, err := info.encode(req.inferInput)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		res, err := s.sched.Do(r.Context(), req.Model, tokens, mask)
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, inferResponse{Model: req.Model, inferResult: resultFor(res, nil)})
		return
	}

	// Multi-input body: every input is validated up front, then
	// submitted concurrently so the scheduler's batch accumulator can
	// drain them into one batched execution.
	if len(req.Inputs) > maxInputsPerBody {
		httpError(w, http.StatusBadRequest, fmt.Errorf("%d inputs exceed the per-request limit %d", len(req.Inputs), maxInputsPerBody))
		return
	}
	type encoded struct {
		tokens []int
		mask   []bool
	}
	inputs := make([]encoded, len(req.Inputs))
	for i, in := range req.Inputs {
		tokens, mask, err := info.encode(in)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("input %d: %w", i, err))
			return
		}
		inputs[i] = encoded{tokens: tokens, mask: mask}
	}
	results := make([]inferResult, len(inputs))
	errs := make([]error, len(inputs))
	var wg sync.WaitGroup
	for i, in := range inputs {
		wg.Add(1)
		go func(i int, in encoded) {
			defer wg.Done()
			res, err := s.sched.Do(r.Context(), req.Model, in.tokens, in.mask)
			results[i], errs[i] = resultFor(res, err), err
		}(i, in)
	}
	wg.Wait()
	// Mixed outcomes are 200 with per-result errors; an all-failed
	// batch surfaces the first failure's status.
	status := http.StatusOK
	allFailed := true
	for _, err := range errs {
		if err == nil {
			allFailed = false
			break
		}
	}
	if allFailed {
		status = statusFor(errs[0])
	}
	writeJSON(w, status, batchResponse{Model: req.Model, Results: results})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Snapshot())
}

// handleBudget replans the whole fleet under a new preload budget —
// §3.2's "|S| changes at any time", live. In-flight inference drains
// first (the fleet quiesces), then every model is replanned and warmed
// under its new share.
func (s *server) handleBudget(w http.ResponseWriter, r *http.Request) {
	var req struct {
		BudgetBytes int64 `json:"budget_bytes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.BudgetBytes < 0 {
		httpError(w, http.StatusBadRequest, errors.New("negative budget"))
		return
	}
	if err := s.fleet.SetBudget(req.BudgetBytes); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	type grant struct {
		Model       string `json:"model"`
		BudgetBytes int64  `json:"budget_bytes"`
		PreloadUsed int64  `json:"preload_used"`
	}
	resp := struct {
		BudgetBytes  int64   `json:"budget_bytes"`
		PreloadBytes int64   `json:"preload_bytes"`
		Grants       []grant `json:"grants"`
	}{BudgetBytes: req.BudgetBytes, PreloadBytes: s.fleet.PreloadBytes()}
	for _, name := range s.fleet.Names() {
		e, _ := s.fleet.Entry(name)
		resp.Grants = append(resp.Grants, grant{Model: name, BudgetBytes: e.Budget, PreloadUsed: e.Plan.PreloadUsed})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK     bool     `json:"ok"`
		Models []string `json:"models"`
	}{OK: true, Models: s.fleet.Names()})
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// went away while we were still working; no stdlib constant exists.
const statusClientClosedRequest = 499

// statusFor maps the scheduler's typed errors onto HTTP statuses: shed
// load is 503 (retryable), blown deadlines 504, unknown models 404.
// Context errors are the caller's own timeout or disconnect, not a
// server fault — they must not read as 500s.
func statusFor(err error) int {
	switch {
	case errors.Is(err, sti.ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, sti.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, sti.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, sti.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
