package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"sti"
	"sti/internal/obs"
	"sti/internal/tokenizer"
)

// server is the HTTP frontend over a fleet and its scheduler. It is
// split from main so tests can drive the exact handler path with
// httptest.
//
// /v2/infer is the task-typed surface: a `task` field selects classify
// (the default) or generate; generate responses stream each decoded
// token as a server-sent event the moment the pipeline produces it.
// /v1/infer is an adapter over the same path with the task pinned to
// classify, so pre-v2 clients are served byte-identically.
type server struct {
	fleet  *sti.Fleet
	sched  *sti.Scheduler
	hub    *obs.Hub
	models map[string]modelInfo
	mux    *http.ServeMux
}

// modelInfo caches what the handler needs to tokenize and validate
// input for one model.
type modelInfo struct {
	tok    *tokenizer.Tokenizer
	vocab  int
	maxSeq int
}

// newServer builds the HTTP frontend. hub is the process observability
// root (nil disables /metrics, /v1/debug/trace and request tracing —
// serving behavior is otherwise identical).
func newServer(fleet *sti.Fleet, sched *sti.Scheduler, hub *obs.Hub) *server {
	s := &server{
		fleet:  fleet,
		sched:  sched,
		hub:    hub,
		models: make(map[string]modelInfo),
		mux:    http.NewServeMux(),
	}
	for _, name := range fleet.Names() {
		e, _ := fleet.Entry(name)
		cfg := e.System.Store.Man.Config
		s.models[name] = modelInfo{
			tok:    tokenizer.New(cfg.Vocab, cfg.MaxSeq),
			vocab:  cfg.Vocab,
			maxSeq: cfg.MaxSeq,
		}
	}
	s.mux.HandleFunc("POST /v2/infer", s.handleInferV2)
	s.mux.HandleFunc("POST /v1/infer", s.handleInferV1)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/budget", s.handleBudget)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/debug/trace", s.handleDebugTrace)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// inferInput is one sequence: raw token ids, or text to be tokenized
// with the model's own tokenizer (TextB for sentence-pair tasks).
type inferInput struct {
	Text   string `json:"text,omitempty"`
	TextB  string `json:"textb,omitempty"`
	Tokens []int  `json:"tokens,omitempty"`
	Mask   []bool `json:"mask,omitempty"`
}

// maxInputsPerBody bounds a multi-input request: each input is one
// goroutine and one admission-queue slot, so an unbounded list would
// let a single client burst past the queue's load shedding.
const maxInputsPerBody = 64

// defaultMaxNewTokens bounds a generate request that did not say how
// many tokens it wants.
const defaultMaxNewTokens = 16

// maxTargetMS caps a request's target_ms at one hour: anything larger
// is a client error, and unbounded values would overflow the
// float→Duration conversion into a negative target.
const maxTargetMS = 3_600_000

// inferRequest is the v2 wire shape: a task-typed request carrying a
// single inline input or a list of classify inputs the scheduler's
// batch accumulator may serve with one shared IO/decompress stream.
// The v1 adapter decodes the same shape and pins Task to classify.
type inferRequest struct {
	Model string `json:"model"`
	// Task is "classify" (the default) or "generate".
	Task string `json:"task,omitempty"`
	// MaxNewTokens bounds greedy decoding (generate only; default 16,
	// capped by the model's max sequence length).
	MaxNewTokens int `json:"max_new_tokens,omitempty"`
	// TargetMS is the request's own latency SLO in milliseconds: the
	// fleet serves it from the tightest cached plan tier that meets
	// it, planning a new tier on demand for off-ladder targets. 0 (or
	// absent) means the model's default target.
	TargetMS float64 `json:"target_ms,omitempty"`
	// Priority < 0 marks the request best-effort: under congestion it
	// is downgraded to a coarser plan tier (and only shed once the
	// model's queue is entirely full).
	Priority int `json:"priority,omitempty"`
	inferInput
	Inputs []inferInput `json:"inputs,omitempty"`
}

// targetLatency converts the wire SLO into the request field.
func (r inferRequest) targetLatency() time.Duration {
	return time.Duration(r.TargetMS * float64(time.Millisecond))
}

// inferResult is the outcome of one classify input. Batch is how many
// requests shared the execution stream; BytesRead is this request's
// amortized share of that stream's flash IO.
type inferResult struct {
	Class     int       `json:"class"`
	Logits    []float32 `json:"logits,omitempty"`
	QueuedMS  float64   `json:"queued_ms"`
	TotalMS   float64   `json:"total_ms"`
	BytesRead int64     `json:"bytes_read"`
	CacheHits int       `json:"cache_hits"`
	Batch     int       `json:"batch,omitempty"`
	// TierMS is the latency target of the plan tier that served the
	// request; Fidelity its fidelity score in (0,1]; Downgraded whether
	// congestion demoted the request to a coarser tier than its SLO.
	TierMS     float64 `json:"tier_ms,omitempty"`
	Fidelity   float64 `json:"fidelity,omitempty"`
	Downgraded bool    `json:"downgraded,omitempty"`
	Error      string  `json:"error,omitempty"`
}

type inferResponse struct {
	Model string `json:"model"`
	inferResult
}

type batchResponse struct {
	Model   string        `json:"model"`
	Results []inferResult `json:"results"`
}

// tokenEvent is one streamed SSE "token" event of a generate request.
type tokenEvent struct {
	Step  int `json:"step"`
	Token int `json:"token"`
}

// generateResult is the final SSE "done" event: the full decoded
// sequence plus the cost of the one-time shard stream it amortized.
type generateResult struct {
	Model        string  `json:"model"`
	Tokens       []int   `json:"tokens"` // prompt + generated
	PromptTokens int     `json:"prompt_tokens"`
	NewTokens    int     `json:"new_tokens"`
	QueuedMS     float64 `json:"queued_ms"`
	TotalMS      float64 `json:"total_ms"`
	BytesRead    int64   `json:"bytes_read"`
	CacheHits    int     `json:"cache_hits"`
	TierMS       float64 `json:"tier_ms,omitempty"`
	Fidelity     float64 `json:"fidelity,omitempty"`
	Downgraded   bool    `json:"downgraded,omitempty"`
}

// encode validates one input against a model and returns its token ids
// and mask.
func (info modelInfo) encode(in inferInput) ([]int, []bool, error) {
	tokens, mask := in.Tokens, in.Mask
	if len(tokens) == 0 {
		if in.Text == "" {
			return nil, nil, errors.New("missing text or tokens")
		}
		tokens, mask = info.tok.Encode(in.Text, in.TextB)
		return tokens, mask, nil
	}
	// Raw token ids come straight from the client; reject anything
	// the embedding table cannot index.
	if len(tokens) > info.maxSeq {
		return nil, nil, fmt.Errorf("%d tokens exceed max sequence length %d", len(tokens), info.maxSeq)
	}
	for i, tk := range tokens {
		if tk < 0 || tk >= info.vocab {
			return nil, nil, fmt.Errorf("token %d out of range [0,%d) at position %d", tk, info.vocab, i)
		}
	}
	if len(mask) != 0 && len(mask) != len(tokens) {
		return nil, nil, fmt.Errorf("mask length %d != token length %d", len(mask), len(tokens))
	}
	return tokens, mask, nil
}

// validPrefix counts the leading true entries of an attention mask.
func validPrefix(mask []bool) int {
	n := 0
	for _, ok := range mask {
		if !ok {
			break
		}
		n++
	}
	return n
}

// resultFor converts one scheduled outcome into the wire shape.
func resultFor(res *sti.ServeResult, err error) inferResult {
	if err != nil {
		return inferResult{Class: -1, Error: err.Error()}
	}
	best := 0
	for i, v := range res.Logits {
		if v > res.Logits[best] {
			best = i
		}
	}
	out := inferResult{
		Class:    best,
		Logits:   res.Logits,
		QueuedMS: float64(res.Queued.Microseconds()) / 1e3,
		TotalMS:  float64(res.Total.Microseconds()) / 1e3,
		Batch:    res.Batch,
	}
	if res.Stats != nil {
		out.BytesRead = res.Stats.BytesRead
		out.CacheHits = res.Stats.CacheHits
		if res.Batch > 1 {
			out.BytesRead /= int64(res.Batch) // amortized share of the stream
		}
	}
	if res.Tier != nil {
		out.TierMS = float64(res.Tier.Target.Microseconds()) / 1e3
		out.Fidelity = res.Tier.Fidelity
		out.Downgraded = res.Tier.Downgraded
	}
	return out
}

// handleInferV2 is the task-typed inference endpoint.
func (s *server) handleInferV2(w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.serveInfer(w, r, req)
}

// handleInferV1 adapts the original positional endpoint onto the v2
// path: the same wire shape with the task pinned to classify, so v1
// clients observe exactly the pre-v2 behavior.
func (s *server) handleInferV1(w http.ResponseWriter, r *http.Request) {
	var req inferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	req.Task = "classify"
	s.serveInfer(w, r, req)
}

// serveInfer validates and dispatches one decoded request.
func (s *server) serveInfer(w http.ResponseWriter, r *http.Request, req inferRequest) {
	if req.Model == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing model"))
		return
	}
	info, ok := s.models[req.Model]
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown model %q", req.Model))
		return
	}
	if req.TargetMS < 0 || req.TargetMS > maxTargetMS {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("target_ms %v outside [0, %v]", req.TargetMS, float64(maxTargetMS)))
		return
	}
	if req.Task != "" && req.Task != "classify" && req.Task != "generate" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("unknown task %q (want classify or generate)", req.Task))
		return
	}

	// The request is routable: open its trace. An inbound Traceparent
	// header (the router hop) continues the upstream trace; anything
	// else mints a fresh root. The trace rides the request context into
	// the scheduler, fleet and pipeline, which record their own spans.
	ctx, tr := s.hub.StartRequest(r.Context(), r.Header.Get(obs.TraceparentHeader))
	if tr != nil {
		tr.Model = req.Model
		r = r.WithContext(ctx)
	}
	var errStr string
	if req.Task == "generate" {
		errStr = s.serveGenerate(w, r, req, info)
	} else {
		errStr = s.serveClassify(w, r, req, info)
	}
	s.hub.FinishRequest(tr, req.Model, "", errStr)
}

// serveClassify serves a single- or multi-input classify request. The
// returned string is the request's outcome for the trace exemplar ring
// ("" on success).
func (s *server) serveClassify(w http.ResponseWriter, r *http.Request, req inferRequest, info modelInfo) string {
	// Single-input body: the original API shape.
	if len(req.Inputs) == 0 {
		tokens, mask, err := info.encode(req.inferInput)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return err.Error()
		}
		res, err := s.sched.Submit(r.Context(), req.Model, sti.Request{
			Task: sti.TaskClassify, Tokens: tokens, Mask: mask,
			TargetLatency: req.targetLatency(), Priority: req.Priority,
		})
		if err != nil {
			httpError(w, statusFor(err), err)
			return err.Error()
		}
		writeJSON(w, http.StatusOK, inferResponse{Model: req.Model, inferResult: resultFor(res, nil)})
		return ""
	}

	// Multi-input body: every input is validated up front, then
	// submitted concurrently so the scheduler's batch accumulator can
	// drain them into one batched execution.
	if len(req.Inputs) > maxInputsPerBody {
		err := fmt.Errorf("%d inputs exceed the per-request limit %d", len(req.Inputs), maxInputsPerBody)
		httpError(w, http.StatusBadRequest, err)
		return err.Error()
	}
	encoded := make([]sti.Request, len(req.Inputs))
	for i, in := range req.Inputs {
		tokens, mask, err := info.encode(in)
		if err != nil {
			err = fmt.Errorf("input %d: %w", i, err)
			httpError(w, http.StatusBadRequest, err)
			return err.Error()
		}
		encoded[i] = sti.Request{
			Task: sti.TaskClassify, Tokens: tokens, Mask: mask,
			TargetLatency: req.targetLatency(), Priority: req.Priority,
		}
	}
	results := make([]inferResult, len(encoded))
	errs := make([]error, len(encoded))
	var wg sync.WaitGroup
	for i, sreq := range encoded {
		wg.Add(1)
		go func(i int, sreq sti.Request) {
			defer wg.Done()
			res, err := s.sched.Submit(r.Context(), req.Model, sreq)
			results[i], errs[i] = resultFor(res, err), err
		}(i, sreq)
	}
	wg.Wait()
	// Mixed outcomes are 200 with per-result errors; an all-failed
	// batch surfaces the first failure's status.
	status := http.StatusOK
	allFailed := true
	for _, err := range errs {
		if err == nil {
			allFailed = false
			break
		}
	}
	outcome := ""
	if allFailed {
		status = statusFor(errs[0])
		outcome = errs[0].Error()
	}
	writeJSON(w, status, batchResponse{Model: req.Model, Results: results})
	return outcome
}

// sseWriteTimeout bounds each SSE event write. Token events are
// written from the stream's emitter goroutine; without a per-write
// deadline a stalled-but-alive client would block that write forever
// once TCP buffers fill, pinning the emitter (and the batcher-side
// token buffer behind it) for the connection's lifetime. On a blown
// deadline the stream is marked dead and every later event is a no-op,
// so the emitter drains instantly.
const sseWriteTimeout = 5 * time.Second

// sseStream serializes server-sent events onto one response. Writes
// race between the stream's emitter goroutine (OnToken, during the
// decode) and the handler (final event, after Submit returns); the
// mutex and the closed flag guarantee no event is written after the
// handler returns and the ResponseWriter dies.
type sseStream struct {
	mu      sync.Mutex
	w       http.ResponseWriter
	started bool
	closed  bool
	dead    bool // a write blew its deadline; drop everything after
}

// event writes one named SSE event with a JSON payload, setting the
// stream headers on first use.
func (st *sseStream) event(name string, v any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.eventLocked(name, v)
}

func (st *sseStream) eventLocked(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		return
	}
	if st.closed || st.dead {
		return
	}
	if !st.started {
		st.started = true
		h := st.w.Header()
		h.Set("Content-Type", "text/event-stream")
		h.Set("Cache-Control", "no-cache")
		st.w.WriteHeader(http.StatusOK)
	}
	// Bound the write so a stalled client cannot pin the emitter; a
	// transport that cannot set deadlines (e.g. httptest recorders)
	// just writes unbounded, as before.
	rc := http.NewResponseController(st.w)
	rc.SetWriteDeadline(time.Now().Add(sseWriteTimeout))
	//sti:lockok st.mu is the SSE writer-serialization lock; holding it across this deadline-bounded write is its whole job
	if _, err := fmt.Fprintf(st.w, "event: %s\ndata: %s\n\n", name, data); err != nil {
		st.dead = true
		return
	}
	if fl, ok := st.w.(http.Flusher); ok {
		//sti:lockok same serialized, deadline-bounded SSE write as the Fprintf above
		fl.Flush()
	}
	rc.SetWriteDeadline(time.Time{})
}

// finish ends the stream: a nil err emits the final event; a non-nil
// err is delivered in-band as an SSE "error" event when tokens already
// streamed, or as a plain JSON error with the proper status code when
// nothing was written yet. No event can be written after finish
// returns, so the handler may safely return.
func (st *sseStream) finish(name string, v any, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err == nil {
		st.eventLocked(name, v)
	} else if st.started {
		st.eventLocked("error", struct {
			Error string `json:"error"`
		}{err.Error()})
	} else {
		//sti:lockok nothing streamed yet, so the emitter goroutine has never written; st.mu only excludes a late event racing this one-shot error body
		httpError(st.w, statusFor(err), err)
	}
	st.closed = true
}

// serveGenerate serves one generate request, streaming each decoded
// token as an SSE "token" event followed by a final "done" (or
// "error") event. Errors before the first token — admission control,
// validation — are plain JSON with the proper status code, exactly
// like classify. The returned string is the request's outcome for the
// trace exemplar ring ("" on success).
func (s *server) serveGenerate(w http.ResponseWriter, r *http.Request, req inferRequest, info modelInfo) string {
	if len(req.Inputs) > 0 {
		err := errors.New("generate takes a single prompt, not inputs")
		httpError(w, http.StatusBadRequest, err)
		return err.Error()
	}
	prompt, mask, err := info.encode(req.inferInput)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return err.Error()
	}
	// The tokenizer pads classify inputs to MaxSeq; a generate prompt is
	// only the valid prefix — padding would fill the decode window (and
	// a causal decode attends to everything before it, padding included).
	if n := validPrefix(mask); n > 0 && n < len(prompt) {
		prompt = prompt[:n]
	}
	maxNew := req.MaxNewTokens
	if maxNew <= 0 {
		maxNew = defaultMaxNewTokens
	}
	if maxNew > info.maxSeq {
		maxNew = info.maxSeq
	}

	st := &sseStream{w: w}
	// firstToken is the SSE delivery span's open edge: stamped once by
	// the emitter goroutine on the first token event, read after the
	// final event to record the whole delivery window.
	var firstToken atomic.Int64
	res, err := s.sched.Submit(r.Context(), req.Model, sti.Request{
		Task: sti.TaskGenerate, Tokens: prompt,
		MaxNewTokens: maxNew, Priority: req.Priority,
		TargetLatency: req.targetLatency(),
		OnToken: func(step, token int) {
			firstToken.CompareAndSwap(0, time.Now().UnixNano())
			st.event("token", tokenEvent{Step: step, Token: token})
		},
	})
	if err != nil {
		st.finish("", nil, err)
		return err.Error()
	}
	out := generateResult{
		Model:    req.Model,
		Tokens:   res.GeneratedTokens,
		QueuedMS: float64(res.Queued.Microseconds()) / 1e3,
		TotalMS:  float64(res.Total.Microseconds()) / 1e3,
	}
	if res.Gen != nil {
		out.PromptTokens = res.Gen.PromptTokens
		out.NewTokens = res.Gen.NewTokens
		out.BytesRead = res.Gen.Stream.BytesRead
		out.CacheHits = res.Gen.Stream.CacheHits
	}
	if res.Tier != nil {
		out.TierMS = float64(res.Tier.Target.Microseconds()) / 1e3
		out.Fidelity = res.Tier.Fidelity
		out.Downgraded = res.Tier.Downgraded
	}
	st.finish("done", out, nil)
	if tr := obs.FromContext(r.Context()); tr != nil {
		if first := firstToken.Load(); first != 0 {
			// Delivery window: first streamed token through the final
			// "done" event leaving the handler.
			tr.Interval(tr.Root(), obs.SpanSSE, "", time.Unix(0, first), time.Now())
		}
	}
	return ""
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Snapshot())
}

// handleMetrics serves the registry in Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		httpError(w, http.StatusNotFound, errors.New("observability disabled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.hub.Registry().WritePrometheus(w)
}

// debugGanttWidth is the column budget of rendered trace timelines.
const debugGanttWidth = 100

// handleDebugTrace serves the exemplar rings: the N slowest (plus all
// erroring) request timelines per model, rendered as ASCII Gantt
// charts. ?trace=<id> selects one exemplar; ?format=json returns the
// exemplar object(s) — the shape a cluster router stitches from.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if s.hub == nil {
		httpError(w, http.StatusNotFound, errors.New("observability disabled"))
		return
	}
	format := r.URL.Query().Get("format")
	if id := r.URL.Query().Get("trace"); id != "" {
		ex, ok := s.hub.FindTrace(id)
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("trace %q not retained", id))
			return
		}
		if format == "json" {
			writeJSON(w, http.StatusOK, ex)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, ex.Gantt(debugGanttWidth)) //nolint:errcheck — nothing to do about a gone client
		return
	}
	var exs []obs.Exemplar
	for _, m := range s.hub.Models() {
		exs = append(exs, s.hub.Ring(m).Snapshot()...)
	}
	if format == "json" {
		writeJSON(w, http.StatusOK, exs)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(exs) == 0 {
		fmt.Fprintln(w, "(no exemplars retained)")
		return
	}
	for _, ex := range exs {
		io.WriteString(w, ex.Gantt(debugGanttWidth)) //nolint:errcheck — nothing to do about a gone client
		fmt.Fprintln(w)
	}
}

// handleBudget replans the whole fleet under a new preload budget —
// §3.2's "|S| changes at any time", live. In-flight inference drains
// first (the fleet quiesces), then every model is replanned and warmed
// under its new share.
func (s *server) handleBudget(w http.ResponseWriter, r *http.Request) {
	var req struct {
		BudgetBytes int64 `json:"budget_bytes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.BudgetBytes < 0 {
		httpError(w, http.StatusBadRequest, errors.New("negative budget"))
		return
	}
	if err := s.fleet.SetBudget(req.BudgetBytes); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	type grant struct {
		Model       string `json:"model"`
		BudgetBytes int64  `json:"budget_bytes"`
		PreloadUsed int64  `json:"preload_used"`
	}
	resp := struct {
		BudgetBytes  int64   `json:"budget_bytes"`
		PreloadBytes int64   `json:"preload_bytes"`
		Grants       []grant `json:"grants"`
	}{BudgetBytes: req.BudgetBytes, PreloadBytes: s.fleet.PreloadBytes()}
	for _, name := range s.fleet.Names() {
		e, _ := s.fleet.Entry(name)
		resp.Grants = append(resp.Grants, grant{Model: name, BudgetBytes: e.Budget, PreloadUsed: e.Plan.PreloadUsed})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz reports liveness plus the draining flag a cluster
// router polls: a draining node still answers (in-flight work is
// finishing) but should receive no new traffic.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		OK       bool     `json:"ok"`
		Draining bool     `json:"draining,omitempty"`
		Models   []string `json:"models"`
	}{OK: true, Draining: s.sched.Draining(), Models: s.fleet.Names()})
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// went away while we were still working; no stdlib constant exists.
const statusClientClosedRequest = 499

// statusFor maps the scheduler's typed errors onto HTTP statuses: shed
// load is 503 (retryable), blown deadlines 504, unknown models 404.
// Context errors are the caller's own timeout or disconnect, not a
// server fault — they must not read as 500s.
func statusFor(err error) int {
	switch {
	case errors.Is(err, sti.ErrQueueFull):
		return http.StatusServiceUnavailable
	case errors.Is(err, sti.ErrDeadline):
		return http.StatusGatewayTimeout
	case errors.Is(err, sti.ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, sti.ErrServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
