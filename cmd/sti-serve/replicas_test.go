package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sti"
)

func TestConcurrencyForValidation(t *testing.T) {
	cases := []struct {
		workers    int
		workersSet bool
		replicas   int
		want       int
		wantErr    bool
	}{
		{workers: 2, workersSet: false, replicas: 1, want: 2},  // defaults untouched
		{workers: 2, workersSet: false, replicas: 4, want: 8},  // adaptive: 2x replicas
		{workers: 12, workersSet: true, replicas: 4, want: 12}, // explicit and ample
		{workers: 4, workersSet: true, replicas: 4, want: 4},   // explicit at the floor
		{workers: 2, workersSet: true, replicas: 4, wantErr: true},
		{workers: 0, workersSet: true, replicas: 1, wantErr: true},
		{workers: 2, workersSet: false, replicas: 0, wantErr: true},
	}
	for _, c := range cases {
		got, err := concurrencyFor(c.workers, c.workersSet, c.replicas)
		if c.wantErr {
			if err == nil {
				t.Errorf("concurrencyFor(%d, %v, %d) = %d, want error", c.workers, c.workersSet, c.replicas, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("concurrencyFor(%d, %v, %d): %v", c.workers, c.workersSet, c.replicas, err)
			continue
		}
		if got != c.want {
			t.Errorf("concurrencyFor(%d, %v, %d) = %d, want %d", c.workers, c.workersSet, c.replicas, got, c.want)
		}
	}
}

// buildReplicatedServer is buildServer with a replica pool per model.
func buildReplicatedServer(t *testing.T, replicas int, opts sti.ServeOptions) (*httptest.Server, *sti.Fleet) {
	t.Helper()
	fleet := sti.NewFleet(256 << 10)
	for i, name := range []string{"sentiment", "nextword"} {
		dir := t.TempDir()
		w := sti.NewRandomModel(sti.TinyConfig(), int64(i+1))
		if _, err := sti.Preprocess(dir, w, []int{2, 4}); err != nil {
			t.Fatal(err)
		}
		sys, err := sti.Load(dir, sti.Odroid(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(name, sys, 200*time.Millisecond, 1); err != nil {
			t.Fatal(err)
		}
		if err := fleet.SetReplicas(name, replicas); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Replan(); err != nil {
		t.Fatal(err)
	}
	sched := sti.NewScheduler(fleet, opts)
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(newServer(fleet, sched, nil))
	t.Cleanup(ts.Close)
	return ts, fleet
}

// TestStatsExposeReplicas: /v1/stats reports the replica count, the
// per-replica served counters and the single-flight dedup counters of
// a replicated model.
func TestStatsExposeReplicas(t *testing.T) {
	ts, _ := buildReplicatedServer(t, 2, sti.ServeOptions{Workers: 4})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body := postJSON(t, ts.URL+"/v1/infer", map[string]any{
				"model": "sentiment", "text": fmt.Sprintf("request %d", 0),
			})
			if status != http.StatusOK {
				t.Errorf("infer status %d: %s", status, body)
			}
		}()
	}
	wg.Wait()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Replicas         int    `json:"replicas"`
		SingleflightHits uint64 `json:"singleflight_hits"`
		Models           []struct {
			Model            string   `json:"model"`
			Replicas         int      `json:"replicas"`
			ReplicaServed    []uint64 `json:"replica_served"`
			SingleflightHits uint64   `json:"singleflight_hits"`
		} `json:"models"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("decoding stats %s: %v", raw, err)
	}
	var sentiment *struct {
		Model            string   `json:"model"`
		Replicas         int      `json:"replicas"`
		ReplicaServed    []uint64 `json:"replica_served"`
		SingleflightHits uint64   `json:"singleflight_hits"`
	}
	for i := range stats.Models {
		if stats.Models[i].Model == "sentiment" {
			sentiment = &stats.Models[i]
		}
	}
	if sentiment == nil {
		t.Fatalf("no sentiment model in stats: %s", raw)
	}
	if sentiment.Replicas != 2 {
		t.Fatalf("sentiment replicas %d, want 2: %s", sentiment.Replicas, raw)
	}
	if len(sentiment.ReplicaServed) != 2 {
		t.Fatalf("per-replica served %v, want 2 entries: %s", sentiment.ReplicaServed, raw)
	}
	var total uint64
	for _, s := range sentiment.ReplicaServed {
		total += s
	}
	if total != 8 {
		t.Fatalf("per-replica served sums to %d, want 8: %s", total, raw)
	}
	if stats.Replicas < 2 {
		t.Fatalf("aggregate replicas %d, want >= 2: %s", stats.Replicas, raw)
	}
	// Zero preload budget per store in this fixture is impossible (the
	// fleet grants bytes), but repeated identical plans re-stream any
	// non-preloaded shards: the shared cache must absorb repeats.
	if sentiment.SingleflightHits == 0 {
		t.Fatalf("no single-flight hits after 8 streamed requests: %s", raw)
	}
}
