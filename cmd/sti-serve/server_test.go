package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sti"
)

// buildFleet preprocesses two tiny stores and returns a planned fleet —
// the ≥2-model setting the serving layer must multiplex.
func buildFleet(t *testing.T, budget int64) *sti.Fleet {
	t.Helper()
	fleet := sti.NewFleet(budget)
	for i, name := range []string{"sentiment", "nextword"} {
		dir := t.TempDir()
		w := sti.NewRandomModel(sti.TinyConfig(), int64(i+1))
		if _, err := sti.Preprocess(dir, w, []int{2, 4}); err != nil {
			t.Fatal(err)
		}
		sys, err := sti.Load(dir, sti.Odroid(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := fleet.Add(name, sys, 200*time.Millisecond, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := fleet.Replan(); err != nil {
		t.Fatal(err)
	}
	return fleet
}

func buildServer(t *testing.T, opts sti.ServeOptions) (*httptest.Server, *sti.Fleet) {
	t.Helper()
	fleet := buildFleet(t, 256<<10)
	sched := sti.NewScheduler(fleet, opts)
	t.Cleanup(sched.Close)
	ts := httptest.NewServer(newServer(fleet, sched, nil))
	t.Cleanup(ts.Close)
	return ts, fleet
}

func postJSON(t *testing.T, url string, body any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestServerInferStatsHealthz(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})

	status, data := postJSON(t, ts.URL+"/v1/infer",
		inferRequest{Model: "sentiment", inferInput: inferInput{Text: "wonderful gripping story"}})
	if status != http.StatusOK {
		t.Fatalf("infer status %d: %s", status, data)
	}
	var ir inferResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Model != "sentiment" || len(ir.Logits) != sti.TinyConfig().Classes {
		t.Fatalf("bad infer response %+v", ir)
	}
	if ir.TotalMS <= 0 || ir.Class < 0 || ir.Class >= len(ir.Logits) {
		t.Fatalf("bad infer response %+v", ir)
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sti.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 || len(st.Models) != 1 || st.Models[0].Model != "sentiment" {
		t.Fatalf("stats %+v, want 1 completed on sentiment", st)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz struct {
		OK     bool     `json:"ok"`
		Models []string `json:"models"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || len(hz.Models) != 2 {
		t.Fatalf("healthz %+v", hz)
	}
}

func TestServerRawTokens(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})
	status, data := postJSON(t, ts.URL+"/v1/infer",
		inferRequest{Model: "nextword", inferInput: inferInput{Tokens: []int{1, 5, 6, 2}}})
	if status != http.StatusOK {
		t.Fatalf("infer status %d: %s", status, data)
	}
}

func TestServerErrorMapping(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})
	for _, tc := range []struct {
		name string
		body any
		want int
	}{
		{"unknown model", inferRequest{Model: "absent", inferInput: inferInput{Text: "hi"}}, http.StatusNotFound},
		{"missing model", inferRequest{inferInput: inferInput{Text: "hi"}}, http.StatusBadRequest},
		{"missing input", inferRequest{Model: "sentiment"}, http.StatusBadRequest},
		{"negative budget", map[string]int64{"budget_bytes": -1}, http.StatusBadRequest},
		{"token out of vocab", inferRequest{Model: "sentiment", inferInput: inferInput{Tokens: []int{999999999}}}, http.StatusBadRequest},
		{"negative token", inferRequest{Model: "sentiment", inferInput: inferInput{Tokens: []int{-5}}}, http.StatusBadRequest},
		{"oversized sequence", inferRequest{Model: "sentiment", inferInput: inferInput{Tokens: make([]int, 10000)}}, http.StatusBadRequest},
		{"mask length mismatch", inferRequest{Model: "sentiment", inferInput: inferInput{Tokens: []int{1, 2}, Mask: []bool{true}}}, http.StatusBadRequest},
	} {
		url := ts.URL + "/v1/infer"
		if tc.name == "negative budget" {
			url = ts.URL + "/v1/budget"
		}
		if status, data := postJSON(t, url, tc.body); status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.want, data)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: status %d", resp.StatusCode)
	}
}

// TestServerBatchedInfer drives a multi-input body end-to-end: per-
// input results come back in order, classes match the single-input
// path, and the scheduler's batch stats become visible in /v1/stats.
func TestServerBatchedInfer(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{
		Slack: 1000, Workers: 1, MaxBatch: 8, BatchWindow: 20 * time.Millisecond,
	})
	texts := []string{"wonderful gripping story", "dreadful boring mess", "fine either way"}

	// Reference classes via the single-input API.
	want := make([]int, len(texts))
	for i, text := range texts {
		status, data := postJSON(t, ts.URL+"/v1/infer", inferRequest{
			Model: "sentiment", inferInput: inferInput{Text: text}})
		if status != http.StatusOK {
			t.Fatalf("single infer status %d: %s", status, data)
		}
		var ir inferResponse
		if err := json.Unmarshal(data, &ir); err != nil {
			t.Fatal(err)
		}
		want[i] = ir.Class
	}

	inputs := make([]inferInput, len(texts))
	for i, text := range texts {
		inputs[i] = inferInput{Text: text}
	}
	status, data := postJSON(t, ts.URL+"/v1/infer", inferRequest{Model: "sentiment", Inputs: inputs})
	if status != http.StatusOK {
		t.Fatalf("batched infer status %d: %s", status, data)
	}
	var br batchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if br.Model != "sentiment" || len(br.Results) != len(texts) {
		t.Fatalf("batched response %+v, want %d results", br, len(texts))
	}
	for i, res := range br.Results {
		if res.Error != "" {
			t.Fatalf("result %d error: %s", i, res.Error)
		}
		if res.Class != want[i] {
			t.Fatalf("result %d class %d, want %d (batched logits must match single)", i, res.Class, want[i])
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sti.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	// The 3 singles are one execution each; the 3 batched inputs take
	// between 1 and 3 executions depending on accumulator timing, so
	// the deterministic bound is 4..6 (batch-vs-execution determinism
	// itself is pinned by the gated tests in internal/serve).
	if st.Completed != uint64(2*len(texts)) || st.Batches < 4 || st.Batches > 6 {
		t.Fatalf("stats %+v, want %d completed over 4..6 executions", st, 2*len(texts))
	}
}

func TestServerBatchedInferValidatesInputs(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000, MaxBatch: 4})
	status, data := postJSON(t, ts.URL+"/v1/infer", inferRequest{
		Model:  "sentiment",
		Inputs: []inferInput{{Text: "fine"}, {Tokens: []int{-3}}},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid batched input: status %d (want 400): %s", status, data)
	}
	// One body must not burst past the admission queue's shedding.
	huge := make([]inferInput, maxInputsPerBody+1)
	for i := range huge {
		huge[i] = inferInput{Text: "x"}
	}
	status, data = postJSON(t, ts.URL+"/v1/infer", inferRequest{Model: "sentiment", Inputs: huge})
	if status != http.StatusBadRequest {
		t.Fatalf("oversized input list: status %d (want 400): %s", status, data)
	}
}

func TestServerBudgetReplanLive(t *testing.T) {
	ts, fleet := buildServer(t, sti.ServeOptions{Slack: 1000})
	before := fleet.PreloadBytes()

	newBudget := int64(64 << 10)
	status, data := postJSON(t, ts.URL+"/v1/budget", map[string]int64{"budget_bytes": newBudget})
	if status != http.StatusOK {
		t.Fatalf("budget status %d: %s", status, data)
	}
	var resp struct {
		PreloadBytes int64 `json:"preload_bytes"`
		Grants       []struct {
			Model       string `json:"model"`
			BudgetBytes int64  `json:"budget_bytes"`
		} `json:"grants"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Grants) != 2 {
		t.Fatalf("grants %+v", resp.Grants)
	}
	var granted int64
	for _, g := range resp.Grants {
		granted += g.BudgetBytes
	}
	if granted > newBudget {
		t.Fatalf("granted %d over budget %d", granted, newBudget)
	}
	if resp.PreloadBytes > newBudget {
		t.Fatalf("preload %d over budget %d (was %d)", resp.PreloadBytes, newBudget, before)
	}

	// Inference still works under the shrunk plans.
	if status, data := postJSON(t, ts.URL+"/v1/infer",
		inferRequest{Model: "sentiment", inferInput: inferInput{Text: "still serving"}}); status != http.StatusOK {
		t.Fatalf("post-replan infer status %d: %s", status, data)
	}
}

// TestServerConcurrentClients is the acceptance race check: ≥8
// concurrent clients drive ≥2 fleet models through the real handler
// path (run with -race). Shedding (503/504) is admission control, not
// failure — but most requests must succeed, and a replan in the middle
// must not corrupt anything.
func TestServerConcurrentClients(t *testing.T) {
	ts, fleet := buildServer(t, sti.ServeOptions{QueueDepth: 64, Workers: 2, Slack: 1000})

	const clients = 8
	const perClient = 6
	models := []string{"sentiment", "nextword"}
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				status, data := postJSON(t, ts.URL+"/v1/infer", inferRequest{
					Model:      models[(c+i)%len(models)],
					inferInput: inferInput{Text: fmt.Sprintf("request %d from client %d", i, c)},
				})
				switch status {
				case http.StatusOK:
					ok.Add(1)
				case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
					shed.Add(1)
				default:
					t.Errorf("client %d: status %d: %s", c, status, data)
					return
				}
			}
		}(c)
	}
	// A live replan racing the clients — the fleet must quiesce, swap
	// plans, and keep serving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		if err := fleet.SetBudget(128 << 10); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	if ok.Load() == 0 {
		t.Fatal("no request succeeded under concurrency")
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sti.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if int64(st.Completed) != ok.Load() {
		t.Fatalf("stats completed %d, clients saw %d ok (%d shed)", st.Completed, ok.Load(), shed.Load())
	}
	if len(st.Models) != 2 {
		t.Fatalf("stats models %+v, want both driven", st.Models)
	}
}
