package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"sti"
	"sti/internal/model"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// postSSE posts a JSON body and parses the SSE response stream.
func postSSE(t *testing.T, url string, body any) (int, string, []sseEvent) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), events
}

// TestServerV2ClassifyMatchesV1 pins the adapter contract: /v1/infer
// is served over the v2 path, and a v2 classify request returns the
// same class and logits as the v1 shape for the same input.
func TestServerV2ClassifyMatchesV1(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})
	body := map[string]any{"model": "sentiment", "text": "wonderful gripping story"}

	status, data := postJSON(t, ts.URL+"/v1/infer", body)
	if status != http.StatusOK {
		t.Fatalf("v1 status %d: %s", status, data)
	}
	var v1 inferResponse
	if err := json.Unmarshal(data, &v1); err != nil {
		t.Fatal(err)
	}

	body["task"] = "classify"
	status, data = postJSON(t, ts.URL+"/v2/infer", body)
	if status != http.StatusOK {
		t.Fatalf("v2 status %d: %s", status, data)
	}
	var v2 inferResponse
	if err := json.Unmarshal(data, &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Class != v1.Class || len(v2.Logits) != len(v1.Logits) {
		t.Fatalf("v2 %+v != v1 %+v", v2, v1)
	}
	for i := range v1.Logits {
		if v2.Logits[i] != v1.Logits[i] {
			t.Fatalf("logit %d: v2 %v != v1 %v", i, v2.Logits[i], v1.Logits[i])
		}
	}

	// Omitted task defaults to classify.
	delete(body, "task")
	if status, data := postJSON(t, ts.URL+"/v2/infer", body); status != http.StatusOK {
		t.Fatalf("v2 default-task status %d: %s", status, data)
	}
	// Unknown tasks are rejected.
	body["task"] = "translate"
	if status, _ := postJSON(t, ts.URL+"/v2/infer", body); status != http.StatusBadRequest {
		t.Fatalf("unknown task status %d, want 400", status)
	}
	// The v1 adapter pins classify: a task field posted to /v1 is
	// overridden, never executed as generate.
	body["task"] = "generate"
	status, data = postJSON(t, ts.URL+"/v1/infer", body)
	if status != http.StatusOK {
		t.Fatalf("v1 with task field: status %d: %s", status, data)
	}
	var adapted inferResponse
	if err := json.Unmarshal(data, &adapted); err != nil {
		t.Fatal(err)
	}
	if adapted.Class != v1.Class {
		t.Fatalf("v1 adapter class %d, want %d (classify pinned)", adapted.Class, v1.Class)
	}
}

// TestServerV2GenerateSSE drives the acceptance curl end-to-end:
// task=generate streams one SSE token event per decoded token followed
// by a done event carrying the full sequence and stream stats.
func TestServerV2GenerateSSE(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})
	const maxNew = 6
	status, ctype, events := postSSE(t, ts.URL+"/v2/infer", map[string]any{
		"model": "sentiment", "task": "generate",
		"text": "once upon a time", "max_new_tokens": maxNew,
	})
	if status != http.StatusOK {
		t.Fatalf("generate status %d", status)
	}
	if !strings.HasPrefix(ctype, "text/event-stream") {
		t.Fatalf("content type %q, want text/event-stream", ctype)
	}
	if len(events) != maxNew+1 {
		t.Fatalf("got %d events (%v), want %d tokens + done", len(events), events, maxNew)
	}
	var streamed []int
	for i, ev := range events[:maxNew] {
		if ev.name != "token" {
			t.Fatalf("event %d is %q, want token", i, ev.name)
		}
		var te tokenEvent
		if err := json.Unmarshal([]byte(ev.data), &te); err != nil {
			t.Fatal(err)
		}
		if te.Step != i {
			t.Fatalf("token event %d has step %d", i, te.Step)
		}
		streamed = append(streamed, te.Token)
	}
	last := events[maxNew]
	if last.name != "done" {
		t.Fatalf("final event %q, want done", last.name)
	}
	var done generateResult
	if err := json.Unmarshal([]byte(last.data), &done); err != nil {
		t.Fatal(err)
	}
	if done.NewTokens != maxNew || len(done.Tokens) != done.PromptTokens+maxNew {
		t.Fatalf("done %+v, want %d new tokens", done, maxNew)
	}
	if done.BytesRead == 0 {
		t.Fatal("generate stream reported no shard IO; the elastic stream must be accounted")
	}
	// The streamed tokens are exactly the tail of the final sequence.
	for i, tok := range streamed {
		if done.Tokens[done.PromptTokens+i] != tok {
			t.Fatalf("streamed token %d = %d, done sequence has %d", i, tok, done.Tokens[done.PromptTokens+i])
		}
	}
	// A second identical request decodes the identical sequence (greedy
	// decoding from the same shards is deterministic).
	_, _, events2 := postSSE(t, ts.URL+"/v2/infer", map[string]any{
		"model": "sentiment", "task": "generate",
		"text": "once upon a time", "max_new_tokens": maxNew,
	})
	var done2 generateResult
	if err := json.Unmarshal([]byte(events2[len(events2)-1].data), &done2); err != nil {
		t.Fatal(err)
	}
	for i := range done.Tokens {
		if done.Tokens[i] != done2.Tokens[i] {
			t.Fatalf("generate is not deterministic: %v vs %v", done.Tokens, done2.Tokens)
		}
	}

	// Generated tokens are visible in the stats snapshot.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st sti.ServeStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.GeneratedTokens != 2*maxNew {
		t.Fatalf("stats generated_tokens %d, want %d", st.GeneratedTokens, 2*maxNew)
	}
}

func TestServerV2GenerateValidation(t *testing.T) {
	ts, _ := buildServer(t, sti.ServeOptions{Slack: 1000})
	for _, tc := range []struct {
		name string
		body map[string]any
		want int
	}{
		{"inputs rejected", map[string]any{"model": "sentiment", "task": "generate",
			"inputs": []map[string]any{{"text": "a"}, {"text": "b"}}}, http.StatusBadRequest},
		{"missing prompt", map[string]any{"model": "sentiment", "task": "generate"}, http.StatusBadRequest},
		{"unknown model", map[string]any{"model": "absent", "task": "generate", "text": "hi"}, http.StatusNotFound},
	} {
		if status, data := postJSON(t, ts.URL+"/v2/infer", tc.body); status != tc.want {
			t.Errorf("%s: status %d (want %d): %s", tc.name, status, tc.want, data)
		}
	}
}

// BenchmarkGenerateServe measures generate tokens/sec through the real
// /v2 HTTP path (SSE, scheduler, fleet, pipeline, KV-cached decoder)
// against naive single-pass decoding (recomputing the whole prefix per
// token) on an equivalent submodel — the speedup the Decoder's KV
// cache buys the serving path.
func BenchmarkGenerateServe(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 7)
	if _, err := sti.Preprocess(dir, w, []int{2, 4}); err != nil {
		b.Fatal(err)
	}
	sys, err := sti.Load(dir, sti.Odroid(), 0)
	if err != nil {
		b.Fatal(err)
	}
	fleet := sti.NewFleet(256 << 10)
	if err := fleet.Add("m", sys, 200*time.Millisecond, 1); err != nil {
		b.Fatal(err)
	}
	if err := fleet.Replan(); err != nil {
		b.Fatal(err)
	}
	sched := sti.NewScheduler(fleet, sti.ServeOptions{Slack: 1000})
	defer sched.Close()
	srv := newServer(fleet, sched, nil)

	const maxNew = 8
	prompt := []int{1, 17, 23}
	body, _ := json.Marshal(map[string]any{
		"model": "m", "task": "generate", "tokens": prompt, "max_new_tokens": maxNew,
	})

	b.Run("v2-kvcached", func(b *testing.B) {
		var tokens int
		for i := 0; i < b.N; i++ {
			req, err := http.NewRequest("POST", "/v2/infer", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			rec := newBenchRecorder()
			srv.ServeHTTP(rec, req)
			if rec.status != http.StatusOK {
				b.Fatalf("status %d: %s", rec.status, rec.buf.String())
			}
			tokens += maxNew
		}
		b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tok/s")
	})

	b.Run("naive-uncached", func(b *testing.B) {
		// The same geometry decoded without the KV cache: every token
		// recomputes the full prefix (O(n²) layer passes).
		sm, err := model.NewSubmodel(w, w.Cfg.Layers, w.Cfg.Heads)
		if err != nil {
			b.Fatal(err)
		}
		var tokens int
		for i := 0; i < b.N; i++ {
			if _, err := sm.Generate(prompt, maxNew); err != nil {
				b.Fatal(err)
			}
			tokens += maxNew
		}
		b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tok/s")
	})
}

// benchRecorder is a minimal flushable ResponseWriter for benchmarks
// (httptest.ResponseRecorder allocates per-flush bookkeeping we don't
// want in the measured loop).
type benchRecorder struct {
	hdr    http.Header
	buf    bytes.Buffer
	status int
}

func newBenchRecorder() *benchRecorder {
	return &benchRecorder{hdr: make(http.Header), status: http.StatusOK}
}

func (r *benchRecorder) Header() http.Header         { return r.hdr }
func (r *benchRecorder) WriteHeader(code int)        { r.status = code }
func (r *benchRecorder) Write(p []byte) (int, error) { return r.buf.Write(p) }
func (r *benchRecorder) Flush()                      {}
