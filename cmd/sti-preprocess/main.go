// Command sti-preprocess performs STI's one-time per-model
// preprocessing (§3.2): optionally fine-tune a tiny model on a
// synthetic GLUE task, then shard and quantize it into an on-disk
// store of N×M×K fidelity versions.
//
//	sti-preprocess -out /tmp/store -task SST-2 -train
//	sti-preprocess -out /tmp/store -seed 42          # random weights
package main

import (
	"flag"
	"fmt"
	"log"

	"sti"
)

func main() {
	out := flag.String("out", "", "output store directory (required)")
	task := flag.String("task", "SST-2", "GLUE task: SST-2, RTE, QNLI, QQP")
	doTrain := flag.Bool("train", false, "fine-tune the model before preprocessing")
	epochs := flag.Int("epochs", 6, "training epochs with -train")
	seed := flag.Int64("seed", 42, "weight initialization seed")
	flag.Parse()
	if *out == "" {
		log.Fatal("sti-preprocess: -out is required")
	}

	cfg := sti.TinyConfig()
	w := sti.NewRandomModel(cfg, *seed)
	if *doTrain {
		opts := sti.DefaultTrainOptions()
		opts.Epochs = *epochs
		opts.Seed = *seed
		opts.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		_, acc, err := sti.TrainModel(w, *task, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trained %s model: dev accuracy %.1f%%\n", *task, acc)
	}

	man, err := sti.Preprocess(*out, w, nil)
	if err != nil {
		log.Fatal(err)
	}
	q, f := man.TotalBytes()
	fmt.Printf("wrote store to %s\n", *out)
	fmt.Printf("  geometry: %d layers x %d heads (%d weights/shard)\n",
		man.Config.Layers, man.Config.Heads, man.Config.ShardParams())
	fmt.Printf("  fidelity versions: %v + full\n", man.Bitwidths)
	fmt.Printf("  quantized bytes: %d, full-fidelity bytes: %d\n", q, f)
}
