// Command sti-infer runs pipelined inference against a preprocessed
// store: it plans for the target latency, warms the preload buffer and
// classifies the given text.
//
//	sti-preprocess -out /tmp/store -task SST-2 -train
//	sti-infer -store /tmp/store -text "wonderful gripping story"
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sti"
	"sti/internal/tokenizer"
)

func main() {
	storeDir := flag.String("store", "", "preprocessed store directory (required)")
	text := flag.String("text", "", "input text to classify (required)")
	textB := flag.String("textb", "", "second sentence for pair tasks")
	target := flag.Duration("target", 200*time.Millisecond, "target latency T")
	preload := flag.Int64("preload", 64<<10, "preload buffer bytes")
	flag.Parse()
	if *storeDir == "" || *text == "" {
		log.Fatal("sti-infer: -store and -text are required")
	}

	sys, err := sti.Load(*storeDir, sti.Odroid(), *preload)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := sys.Plan(*target, *preload)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Warm(plan); err != nil {
		log.Fatal(err)
	}

	cfg := sys.Store.Man.Config
	tok := tokenizer.New(cfg.Vocab, cfg.MaxSeq)
	tokens, mask := tok.Encode(*text, *textB)
	resp, err := sys.Run(context.Background(), plan, sti.Request{
		Task: sti.TaskClassify, Tokens: tokens, Mask: mask,
	})
	if err != nil {
		log.Fatal(err)
	}

	best, bestV := 0, resp.Logits[0]
	for i, v := range resp.Logits {
		if v > bestV {
			best, bestV = i, v
		}
	}
	fmt.Printf("plan: %s\n", plan)
	fmt.Printf("class %d (logits %v)\n", best, resp.Logits)
	fmt.Printf("read %d KB, %d cache hits, wall %v\n",
		resp.Stats.BytesRead>>10, resp.Stats.CacheHits, resp.Stats.Total.Round(time.Microsecond))
}
