// Command sti-profile performs STI's offline profiling (§5.2) against
// a preprocessed store: it measures the local host's IO and compute
// delays (the install-time hardware capability profile) and, when a
// task is given, profiles shard importance of the stored model on a
// synthetic dev set and saves it into the store.
//
//	sti-profile -store /tmp/store
//	sti-profile -store /tmp/store -task SST-2 -save
package main

import (
	"flag"
	"fmt"
	"log"

	"sti"
	"sti/internal/profiler"
	"sti/internal/store"
)

func main() {
	storeDir := flag.String("store", "", "preprocessed store directory (required)")
	task := flag.String("task", "", "profile shard importance for this task (SST-2, RTE, QNLI, QQP)")
	save := flag.Bool("save", false, "persist the importance profile into the store")
	seqLen := flag.Int("seq", 0, "profiling sequence length (default: model MaxSeq)")
	flag.Parse()
	if *storeDir == "" {
		log.Fatal("sti-profile: -store is required")
	}

	st, err := store.Open(*storeDir)
	if err != nil {
		log.Fatal(err)
	}
	cfg := st.Man.Config
	if *seqLen == 0 {
		*seqLen = cfg.MaxSeq
	}

	dev, err := profiler.MeasureDevice(st, *seqLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware capability (measured on this host):\n")
	fmt.Printf("  flash bandwidth: %.1f MB/s, per-IO overhead: %v\n", dev.Bandwidth/1e6, dev.IOOverhead)
	for _, m := range []int{1, cfg.Heads / 2, cfg.Heads} {
		if m < 1 {
			continue
		}
		fmt.Printf("  Tcomp(l=%d, m=%d): %v\n", *seqLen, m, dev.TComp(*seqLen, m, 1.0))
	}
	for _, bits := range append(st.Man.Bitwidths, 32) {
		size, err := st.Man.ShardSize(0, 0, bits)
		if err == nil {
			fmt.Printf("  Tio(%d-bit shard): %v\n", bits, dev.TIO(size))
		}
	}

	if *task == "" {
		return
	}
	// Importance profiling needs the full-fidelity weights: rebuild them
	// from the store.
	w, err := rebuildWeights(st)
	if err != nil {
		log.Fatal(err)
	}
	ds, err := sti.GenerateDataset(*task, cfg, 0, 128, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprofiling %s shard importance (%d evaluations)...\n", *task, cfg.Layers*cfg.Heads)
	tbl := profiler.ProfileImportance(w, ds, 2, 32)
	fmt.Println(tbl.Heatmap())
	if *save {
		if err := store.SaveImportance(*storeDir, tbl); err != nil {
			log.Fatal(err)
		}
		fmt.Println("saved importance profile into the store")
	}
}

// rebuildWeights reconstructs full model weights from the store's
// resident parameters and full-fidelity shards.
func rebuildWeights(st *store.Store) (*sti.Model, error) {
	w, err := st.LoadResident()
	if err != nil {
		return nil, err
	}
	cfg := st.Man.Config
	full := sti.NewRandomModel(cfg, 0) // allocate layer matrices
	full.Emb, full.Pooler, full.PoolerB, full.Cls, full.ClsB = w.Emb, w.Pooler, w.PoolerB, w.Cls, w.ClsB
	for l := 0; l < cfg.Layers; l++ {
		misc := w.Layers[l]
		dst := full.Layers[l]
		dst.QB, dst.KB, dst.VB, dst.OB = misc.QB, misc.KB, misc.VB, misc.OB
		dst.FFN1B, dst.FFN2B = misc.FFN1B, misc.FFN2B
		dst.LN1G, dst.LN1B, dst.LN2G, dst.LN2B = misc.LN1G, misc.LN1B, misc.LN2G, misc.LN2B
		for s := 0; s < cfg.Heads; s++ {
			payload, err := st.ReadShard(l, s, 32)
			if err != nil {
				return nil, err
			}
			if err := sti.InstallShard(full, l, s, payload.Weights()); err != nil {
				return nil, err
			}
		}
	}
	return full, nil
}
