package sti_test

import (
	"context"
	"testing"
	"time"

	"sti"
)

func waitForPredict(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFleetPredictionPrefetchesAndStaysBudgetSubordinate: with
// prediction enabled, serving a repeating access pattern trains the
// sequence predictor and the prefetcher stages shard payloads in the
// shared cache — never past the cache's byte budget.
func TestFleetPredictionPrefetchesAndStaysBudgetSubordinate(t *testing.T) {
	// A small preload budget leaves most shards streaming — every
	// streamed layer is both an observation and a prefetch candidate.
	f := sti.NewFleet(8 << 10)
	if err := f.Add("m", fleetSystem(t, 11), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	const retain = 256 << 10
	if err := f.SetSharedCacheRetain("m", retain); err != nil {
		t.Fatal(err)
	}
	if err := f.EnablePrediction(sti.PredictOptions{
		Prefetch: true, Speculate: true, Interval: 2 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	defer f.StopPrediction()
	if err := f.EnablePrediction(sti.PredictOptions{}); err == nil {
		t.Fatal("double EnablePrediction must error")
	}

	ctx := context.Background()
	serve := func() {
		t.Helper()
		if _, err := f.Serve(ctx, "m", sti.Request{Task: sti.TaskClassify, Tokens: []int{1, 5, 6, 2}}); err != nil {
			t.Fatal(err)
		}
	}
	// The same tier over and over is the golden stride: layer order
	// repeats, so the predictor converges and the prefetcher engages.
	// (With everything demand-resident its lookups are cache-satisfied,
	// so this phase asserts training + issuance, not flash traffic.)
	waitForPredict(t, "trained predictor with issued prefetches", func() bool {
		serve()
		ps, ok := f.PredictStats("m")
		return ok && ps.Accesses > 0 && ps.SeqPredictions > 0 && ps.PrefetchIssued > 0
	})

	// Serve (queuing fresh access observations), then drop the retained
	// payloads before the predictor's next tick: the predicted shards
	// now land on a cold cache, so both prefetch paths — the access
	// lookahead and the arrival-trend speculative warm — come off
	// flash instead of finding everything demand-resident.
	waitForPredict(t, "flash prefetches after a cold restart", func() bool {
		for i := 0; i < 3; i++ {
			serve()
		}
		if err := f.SetSharedCacheRetain("m", 0); err != nil {
			t.Fatal(err)
		}
		if err := f.SetSharedCacheRetain("m", retain); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 8; k++ {
			f.ObserveArrival("m", 200*time.Millisecond, 2+k, 64)
		}
		time.Sleep(10 * time.Millisecond)
		cs, _ := f.SharedCacheStats("m")
		return cs.Prefetches > 0
	})

	cs, ok := f.SharedCacheStats("m")
	if !ok {
		t.Fatal("no shared cache stats")
	}
	if cs.RetainedBytes > retain {
		t.Fatalf("cache residency %d exceeds budget %d with prefetch active", cs.RetainedBytes, retain)
	}
	ps, _ := f.PredictStats("m")
	if ps.PrefetchIssued == 0 {
		t.Fatalf("predict stats %+v: prefetches issued but not counted", ps)
	}

	// Arrival observations flow through the fleet surface the
	// scheduler uses.
	f.ObserveArrival("m", 200*time.Millisecond, 3, 64)
	waitForPredict(t, "arrival ingestion", func() bool {
		ps, _ := f.PredictStats("m")
		return ps.Arrivals > 0
	})

	f.StopPrediction()
	if _, ok := f.PredictStats("m"); ok {
		t.Fatal("PredictStats still reports after StopPrediction")
	}
	// Taps are detached/no-op; serving continues unaffected.
	serve()
	f.ObserveArrival("m", 200*time.Millisecond, 1, 64) // no-op, must not panic
}

// TestFleetPredictionObserverAttachesToNewReplicas: replicas spawned
// after EnablePrediction also feed the access stream.
func TestFleetPredictionObserverAttachesToNewReplicas(t *testing.T) {
	f := sti.NewFleet(16 << 10)
	if err := f.Add("m", fleetSystem(t, 12), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	if err := f.EnablePrediction(sti.PredictOptions{Prefetch: true, Interval: 2 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer f.StopPrediction()
	// Scale to 2 replicas after enabling: the new engine must come up
	// with the access tap attached.
	if err := f.SetReplicas("m", 2); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Replicas("m"); n != 2 {
		t.Fatalf("replicas = %d, want 2", n)
	}
	ctx := context.Background()
	waitForPredict(t, "access observations from scaled pool", func() bool {
		for i := 0; i < 4; i++ {
			if _, err := f.Serve(ctx, "m", sti.Request{Task: sti.TaskClassify, Tokens: []int{1, 2, 3}}); err != nil {
				t.Fatal(err)
			}
		}
		ps, ok := f.PredictStats("m")
		return ok && ps.Accesses > 0
	})
}
