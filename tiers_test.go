package sti_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sti"
	"sti/internal/serve"
)

// tieredFleet builds a one-model fleet whose 50ms default target sits
// on the steep part of the tiny model's latency/fidelity curve, so the
// ladder's 25ms and 100ms tiers select visibly different submodels.
func tieredFleet(t *testing.T, budget int64) *sti.Fleet {
	t.Helper()
	f := sti.NewFleet(budget)
	if err := f.Add("m", fleetSystem(t, 40), 50*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFleetServesPerRequestSLOTiers is the tentpole acceptance test:
// two concurrent request classes — tight (25ms) vs relaxed (100ms)
// TargetLatency — hit the same model and must be served by different
// plan tiers, with the tight tier's coarser plan streaming fewer bytes
// per request; and under induced queue pressure a best-effort request
// is downgraded to a coarser tier (recorded in its Response) rather
// than shed.
func TestFleetServesPerRequestSLOTiers(t *testing.T) {
	f := tieredFleet(t, 0) // zero preload: every request streams its full plan

	e, _ := f.Entry("m")
	if len(e.Tiers) != 3 {
		t.Fatalf("ladder %v, want 3 graduated tiers", e.Tiers)
	}

	// Two concurrent classes at the same model.
	const perClass = 4
	type obs struct {
		tier  *sti.TierInfo
		bytes int64
	}
	tight := make(chan obs, perClass)
	relaxed := make(chan obs, perClass)
	var wg sync.WaitGroup
	serveClass := func(target time.Duration, out chan obs) {
		defer wg.Done()
		resp, err := f.Serve(context.Background(), "m", sti.Request{
			Task: sti.TaskClassify, Tokens: []int{1, 5, 6, 2},
			TargetLatency: target,
		})
		if err != nil {
			t.Error(err)
			return
		}
		out <- obs{tier: resp.Tier, bytes: resp.Stats.BytesRead}
	}
	for i := 0; i < perClass; i++ {
		wg.Add(2)
		go serveClass(25*time.Millisecond, tight)
		go serveClass(100*time.Millisecond, relaxed)
	}
	wg.Wait()
	close(tight)
	close(relaxed)

	var tightBytes, relaxedBytes int64
	for o := range tight {
		if o.tier == nil || o.tier.Target != 25*time.Millisecond {
			t.Fatalf("tight request served by tier %+v, want the 25ms tier", o.tier)
		}
		if !o.tier.CacheHit || o.tier.Downgraded {
			t.Fatalf("tight tier %+v, want an undowngraded ladder hit", o.tier)
		}
		tightBytes += o.bytes
	}
	for o := range relaxed {
		if o.tier == nil || o.tier.Target != 100*time.Millisecond {
			t.Fatalf("relaxed request served by tier %+v, want the 100ms tier", o.tier)
		}
		relaxedBytes += o.bytes
	}
	// The elastic trade (§4): a tighter target buys a coarser plan, so
	// the tight tier streams strictly fewer bytes per request than the
	// relaxed tier's higher-fidelity submodel.
	if tightBytes/perClass >= relaxedBytes/perClass {
		t.Fatalf("tight tier streams %d bytes/request, relaxed %d — the tiers must trade bytes for latency",
			tightBytes/perClass, relaxedBytes/perClass)
	}

	// Induced queue pressure: a gated backend holds the single worker
	// so the queue fills to its high-water mark, then a best-effort
	// request must be admitted downgraded — served by a coarser tier —
	// rather than shed.
	gb := &gatedBackend{Fleet: f, gate: make(chan struct{})}
	releaseGate := sync.OnceFunc(func() { close(gb.gate) })
	defer releaseGate()
	s := serve.New(gb, serve.Options{QueueDepth: 2, Workers: 1, Slack: 1000})
	defer s.Close()

	normal := func(out chan error) {
		_, err := s.Submit(context.Background(), "m", sti.Request{
			Task: sti.TaskClassify, Tokens: []int{1, 2, 3},
		})
		out <- err
	}
	results := make(chan error, 2)
	go normal(results)
	waitFor(t, "worker pickup", func() bool { return gb.calls.Load() > 0 })
	go normal(results)
	waitFor(t, "one queued", func() bool { return queueDepth(s, "m") == 1 })

	// Queue at the high-water mark: best-effort is demoted, not shed.
	bestEffort := make(chan *serve.Result, 1)
	bestEffortErr := make(chan error, 1)
	go func() {
		res, err := s.Submit(context.Background(), "m", sti.Request{
			Task: sti.TaskClassify, Tokens: []int{1, 2, 3}, Priority: -1,
		})
		bestEffort <- res
		bestEffortErr <- err
	}()
	waitFor(t, "best-effort queued", func() bool { return queueDepth(s, "m") == 2 })
	// The queue is now truly full: only here does anything shed.
	if _, err := s.Submit(context.Background(), "m", sti.Request{
		Task: sti.TaskClassify, Tokens: []int{1}, Priority: -1,
	}); !errors.Is(err, serve.ErrQueueFull) {
		t.Fatalf("full queue got %v, want ErrQueueFull", err)
	}
	releaseGate()

	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	res := <-bestEffort
	if err := <-bestEffortErr; err != nil {
		t.Fatalf("congested best-effort request got %v, want a downgraded result", err)
	}
	if res.Tier == nil || !res.Tier.Downgraded {
		t.Fatalf("best-effort tier %+v, want the downgrade recorded in the response", res.Tier)
	}
	// Downgrade = one rung coarser than the model's 50ms default.
	if res.Tier.Target != 25*time.Millisecond {
		t.Fatalf("downgraded request served by tier %v, want the coarser 25ms tier", res.Tier.Target)
	}
	st := s.Snapshot()
	if st.Downgraded != 1 || st.Shed != 1 || st.Completed != 3 {
		t.Fatalf("snapshot %+v, want 1 downgraded + 1 shed + 3 completed", st)
	}
}

// gatedBackend wraps a Fleet so a test can hold the scheduler's worker
// mid-execution and fill its queue deterministically.
type gatedBackend struct {
	*sti.Fleet
	gate  chan struct{}
	calls atomic.Int64
}

func (g *gatedBackend) Serve(ctx context.Context, name string, req sti.Request) (*sti.Response, error) {
	g.calls.Add(1)
	<-g.gate
	return g.Fleet.Serve(ctx, name, req)
}

// queueDepth reads a model's queue depth from the scheduler snapshot.
func queueDepth(s *serve.Scheduler, model string) int {
	for _, ms := range s.Snapshot().Models {
		if ms.Model == model {
			return ms.QueueDepth
		}
	}
	return 0
}

// waitFor polls cond for up to 5s, failing the test on timeout.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFleetOffLadderSLOPlansTierOnDemand: an SLO no ladder tier meets
// is planned and cached on first use (a plan-cache miss), then served
// from the cache (a hit) — and the entry's tier list grows by one.
func TestFleetOffLadderSLOPlansTierOnDemand(t *testing.T) {
	f := tieredFleet(t, 64<<10)
	before, _ := f.Entry("m")

	req := sti.Request{
		Task: sti.TaskClassify, Tokens: []int{1, 2, 3},
		TargetLatency: 12 * time.Millisecond, // tighter than the 25ms rung
	}
	first, err := f.Serve(context.Background(), "m", req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tier == nil || first.Tier.CacheHit || first.Tier.Target != 12*time.Millisecond {
		t.Fatalf("first off-ladder serve tier %+v, want a 12ms miss", first.Tier)
	}
	second, err := f.Serve(context.Background(), "m", req)
	if err != nil {
		t.Fatal(err)
	}
	if second.Tier == nil || !second.Tier.CacheHit {
		t.Fatalf("second off-ladder serve tier %+v, want a cache hit", second.Tier)
	}
	after, _ := f.Entry("m")
	if len(after.Tiers) != len(before.Tiers)+1 {
		t.Fatalf("ladder grew %d -> %d tiers, want +1 on-demand tier",
			len(before.Tiers), len(after.Tiers))
	}
	// A replan (here: a budget change) rebuilds the pinned ladder and
	// drops on-demand tiers planned under the old grants.
	if err := f.SetBudget(32 << 10); err != nil {
		t.Fatal(err)
	}
	rebuilt, _ := f.Entry("m")
	if len(rebuilt.Tiers) != 3 {
		t.Fatalf("ladder holds %d tiers after replan, want the 3 pinned rungs", len(rebuilt.Tiers))
	}
}

// TestFleetSetBudgetDuringServeKeepsGrants is the regression for the
// replan/serve race: SetBudget storms concurrent with in-flight Serve
// traffic (run under -race) must leave every engine inside its
// committed grant — PreloadBytes never exceeds the sum of grants, and
// the grants never exceed the fleet budget.
func TestFleetSetBudgetDuringServeKeepsGrants(t *testing.T) {
	f := sti.NewFleet(400 << 10)
	if err := f.Add("a", fleetSystem(t, 41), 50*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("b", fleetSystem(t, 42), 200*time.Millisecond, 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}

	targets := []time.Duration{0, 25 * time.Millisecond, 100 * time.Millisecond, 60 * time.Millisecond}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := "a"
			if c%2 == 1 {
				name = "b"
			}
			for i := 0; i < 8; i++ {
				_, err := f.Serve(context.Background(), name, sti.Request{
					Task: sti.TaskClassify, Tokens: []int{1, 2, 3},
					TargetLatency: targets[(c+i)%len(targets)],
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, budget := range []int64{150 << 10, 400 << 10, 80 << 10, 400 << 10} {
			if err := f.SetBudget(budget); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// Every engine sits inside its committed grant, and the grants sum
	// to no more than the fleet budget.
	var grantSum int64
	for _, name := range f.Names() {
		e, _ := f.Entry(name)
		grantSum += e.Budget
		if held := e.System.Engine.CacheBytes(); held > e.Budget {
			t.Fatalf("%s holds %d preload bytes over its %d grant", name, held, e.Budget)
		}
	}
	if grantSum > f.Budget() {
		t.Fatalf("grants sum to %d over the fleet budget %d", grantSum, f.Budget())
	}
	if held := f.PreloadBytes(); held > grantSum {
		t.Fatalf("fleet holds %d preload bytes over the committed grants %d", held, grantSum)
	}
}
