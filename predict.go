package sti

import (
	"errors"
	"fmt"
	"time"

	"sti/internal/planner"
	"sti/internal/predict"
)

// errFleetBusy reports that a predictive actuation was skipped because
// a writer held the fleet. Prediction is advisory: a skipped actuation
// costs only a missed optimization, never correctness.
var errFleetBusy = errors.New("sti: fleet busy; speculative actuation skipped")

// EnablePrediction starts the predictive subsystem (internal/predict)
// over every managed model: arrival observations flow in from the
// scheduler via ObserveArrival, shard-access observations from every
// replica engine via per-layer taps installed here (and on replicas
// spawned later), and the predictor's actuators prefetch shards into
// each model's shared cache, speculatively warm downgrade rungs, and
// feed pre-emptive scale advice into Pressure. All actuation is
// budget-subordinate and off the serving path. Returns an error if
// prediction is already enabled.
func (f *Fleet) EnablePrediction(opts PredictOptions) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.predictor.Load() != nil {
		return fmt.Errorf("sti: prediction already enabled")
	}
	f.predictor.Store(predict.New(&fleetActuator{f: f}, opts))
	for name, e := range f.entries {
		obs := f.accessObserver(name)
		for _, eng := range e.pool.Engines() {
			eng.SetAccessObserver(obs)
		}
	}
	return nil
}

// StopPrediction stops the predictive subsystem and detaches the
// engine access taps. Safe to call when prediction is not enabled.
func (f *Fleet) StopPrediction() {
	f.mu.Lock()
	p := f.predictor.Swap(nil)
	for _, e := range f.entries {
		for _, eng := range e.pool.Engines() {
			eng.SetAccessObserver(nil)
		}
	}
	f.mu.Unlock()
	// Close outside the lock: it waits for the actuation loop, which
	// may itself be try-locking the fleet.
	if p != nil {
		p.Close()
	}
}

// ObserveArrival feeds one admission (model, SLO class, and the
// admission queue's depth/capacity at that moment) into the predictive
// subsystem. A lock-free no-op while prediction is disabled — safe on
// every enqueue.
func (f *Fleet) ObserveArrival(model string, class time.Duration, depth, capacity int) {
	if p := f.predictor.Load(); p != nil {
		p.ObserveArrival(model, class, depth, capacity)
	}
}

// PredictStats snapshots a model's predictor state. ok is false while
// prediction is disabled or before the model's first observation.
func (f *Fleet) PredictStats(name string) (predict.ModelStats, bool) {
	if p := f.predictor.Load(); p != nil {
		return p.Stats(name)
	}
	return predict.ModelStats{}, false
}

// accessObserver builds the per-model closure replica engines invoke
// as each layer's IO starts. It indirects through the predictor
// pointer at call time, so a stopped predictor turns any tap still
// attached to an in-flight stream into a cheap no-op.
func (f *Fleet) accessObserver(name string) func(tier time.Duration, layer int) {
	return func(tier time.Duration, layer int) {
		if p := f.predictor.Load(); p != nil {
			p.ObserveAccess(name, tier, layer)
		}
	}
}

// fleetActuator adapts the fleet to predict.Actuator. Every method
// runs on the predictor's actuation loop, never the serving path, and
// none may block on the fleet: lookups try-lock and give up while a
// writer (replan, scale, remove) holds it.
type fleetActuator struct{ f *Fleet }

// TierPlans snapshots the model's cached plan ladder. Plans are
// immutable once planned, so the slice stays valid after the lock is
// released.
func (a *fleetActuator) TierPlans(model string) []predict.TierPlan {
	if !a.f.mu.TryRLock() {
		return nil
	}
	defer a.f.mu.RUnlock()
	e, ok := a.f.entries[model]
	if !ok || e.Plan == nil {
		return nil
	}
	targets, plans := e.cache.Entries()
	tiers := make([]predict.TierPlan, len(targets))
	for i := range targets {
		tiers[i] = predict.TierPlan{Target: targets[i], Plan: plans[i]}
	}
	return tiers
}

// PrefetchShard pulls one shard payload into the model's shared cache
// second-class segment. The flash read happens after the fleet lock is
// released — the shared cache is internally synchronized and
// budget-subordinate (it evicts only other prefetched entries, never
// demand-retained payloads, and reports kept=false when the payload
// does not fit).
func (a *fleetActuator) PrefetchShard(model string, layer, slice, bits int) (bool, error) {
	if !a.f.mu.TryRLock() {
		return false, errFleetBusy
	}
	e, ok := a.f.entries[model]
	a.f.mu.RUnlock()
	if !ok {
		return false, fmt.Errorf("sti: fleet has no model %q", model)
	}
	return e.shared.PrefetchShardPayload(layer, slice, bits)
}

// SpeculateWarm stages the rung below the model's default tier — the
// one congestion downgrades land on — ahead of need. Its streamed
// shards are pulled into the shared cache's second-class segment
// (stopping the moment the budget is full), and the pool's warm set is
// re-asserted through the existing WarmSet machinery when the fleet is
// uncontended, trimming any stale extra-tier preload bytes back to the
// live ladder before the downgrade burst arrives.
func (a *fleetActuator) SpeculateWarm(model string) error {
	if !a.f.mu.TryRLock() {
		return errFleetBusy
	}
	e, ok := a.f.entries[model]
	var plan *Plan
	if ok && e.Plan != nil {
		if _, below, okBelow := e.cache.ResolveBelow(planner.TierKey(e.Target)); okBelow {
			plan = below
		}
	}
	a.f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("sti: fleet has no model %q", model)
	}
	if plan != nil {
		for l := range plan.Slices {
			for j, s := range plan.Slices[l] {
				if plan.Preloaded[l][j] {
					continue
				}
				kept, err := e.shared.PrefetchShardPayload(l, s, plan.Bits[l][j])
				if err != nil {
					return err
				}
				if !kept {
					return nil // cache budget full — strictly subordinate
				}
			}
		}
	}
	if a.f.mu.TryLock() {
		defer a.f.mu.Unlock()
		if a.f.entries[model] != e {
			return nil // model removed or replaced while unlocked
		}
		//sti:lockok quiesce-and-swap: the speculative re-warm runs only when the fleet is uncontended (TryLock) and at WarmCooldown pace; holding the write lock across the warm is the same barrier every ladder commit uses
		return e.pool.Warm(e.cache.Plans())
	}
	return nil
}

// AdvisePressure feeds a projected queue depth into the pool's scale
// governor — the same advisory path the scheduler's reactive pressure
// signal uses, so high-water marks, cooldowns, and ceilings all apply
// to speculative scale-ups too.
func (a *fleetActuator) AdvisePressure(model string, depth, capacity int) {
	a.f.Pressure(model, depth, capacity)
}
