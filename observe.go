package sti

import (
	"sti/internal/obs"
	"sti/internal/pipeline"
	"sti/internal/predict"
	"sti/internal/replica"
	"sti/internal/store"
)

// SetObservability bridges the fleet's authoritative counters — shard
// cache, replica pools, generation step loops, predictor — into the
// hub's metrics registry as scrape-time collector functions. Nothing
// is double-counted and no instrument is recorded on a serving path:
// every value is read from the existing stats surfaces when /metrics
// is scraped. Safe to call once per hub; re-registration of the same
// names returns the existing instruments.
func (f *Fleet) SetObservability(h *obs.Hub) {
	if f == nil || h == nil {
		return
	}
	reg := h.Registry()

	cache := func(pick func(store.CacheStats) float64) func() float64 {
		return f.sumEntries(func(e *FleetEntry) float64 { return pick(e.shared.Stats()) })
	}
	pool := func(pick func(replica.PoolStats) float64) func() float64 {
		return f.sumEntries(func(e *FleetEntry) float64 { return pick(e.pool.Stats()) })
	}
	gen := func(pick func(pipeline.StepLoopStats) float64) func() float64 {
		return f.sumEntries(func(e *FleetEntry) float64 { return pick(e.pool.GenStats()) })
	}

	reg.NewGaugeFunc("sti_fleet_models", "Models managed by the fleet.", nil,
		func() float64 {
			f.mu.RLock()
			defer f.mu.RUnlock()
			return float64(len(f.entries))
		})
	reg.NewGaugeFunc("sti_fleet_budget_bytes", "Total preload-memory budget.", nil,
		func() float64 {
			f.mu.RLock()
			defer f.mu.RUnlock()
			return float64(f.budget)
		})

	reg.NewCounterFunc("sti_shard_cache_requests_total", "Shard payload reads through the single-flight caches.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.Requests) }))
	reg.NewCounterFunc("sti_shard_cache_hits_total", "Reads absorbed without local flash IO (retained, coalesced, prefetched, peer).", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.Hits()) }))
	reg.NewCounterFunc("sti_shard_cache_flash_reads_total", "Reads that reached local flash.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.FlashReads) }))
	reg.NewCounterFunc("sti_shard_cache_bytes_read_total", "Bytes read from local flash.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.BytesRead) }))
	reg.NewCounterFunc("sti_shard_cache_bytes_saved_total", "Bytes of IO the caches absorbed.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.BytesSaved) }))
	reg.NewGaugeFunc("sti_shard_cache_retained_bytes", "Payload bytes currently retained across caches.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.RetainedBytes) }))
	reg.NewCounterFunc("sti_shard_cache_prefetches_total", "Speculative prefetch flash reads issued.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.Prefetches) }))
	reg.NewCounterFunc("sti_shard_cache_prefetch_hits_total", "Prefetched payloads later consumed by demand.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.PrefetchHits) }))
	reg.NewCounterFunc("sti_shard_cache_peer_hits_total", "Demand misses served by a peer node's retained copy.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.PeerHits) }))
	reg.NewCounterFunc("sti_shard_cache_peer_served_total", "Retained payloads this node served to peers.", nil,
		cache(func(s store.CacheStats) float64 { return float64(s.PeerServed) }))

	reg.NewGaugeFunc("sti_replicas", "Live replica engines across models.", nil,
		pool(func(s replica.PoolStats) float64 { return float64(s.Replicas) }))
	reg.NewGaugeFunc("sti_replicas_draining", "Replicas draining toward removal.", nil,
		pool(func(s replica.PoolStats) float64 { return float64(s.Draining) }))
	reg.NewCounterFunc("sti_replica_scale_ups_total", "Replica pool scale-up events.", nil,
		pool(func(s replica.PoolStats) float64 { return float64(s.ScaleUps) }))
	reg.NewCounterFunc("sti_replica_scale_downs_total", "Replica pool scale-down events.", nil,
		pool(func(s replica.PoolStats) float64 { return float64(s.ScaleDowns) }))
	reg.NewGaugeFunc("sti_preload_cache_bytes", "Preload buffer bytes held across replicas.", nil,
		pool(func(s replica.PoolStats) float64 { return float64(s.CacheBytes) }))
	reg.NewGaugeFunc("sti_kv_bytes", "Paged decode KV bytes held live.", nil,
		pool(func(s replica.PoolStats) float64 { return float64(s.KVBytes) }))

	reg.NewCounterFunc("sti_gen_steps_total", "Batched decode forwards executed.", nil,
		gen(func(s pipeline.StepLoopStats) float64 { return float64(s.Steps) }))
	reg.NewCounterFunc("sti_gen_step_sequences_total", "Sequences summed over decode forwards.", nil,
		gen(func(s pipeline.StepLoopStats) float64 { return float64(s.StepSequences) }))
	reg.NewGaugeFunc("sti_gen_streams", "Generate streams decoding right now.", nil,
		gen(func(s pipeline.StepLoopStats) float64 { return float64(s.Streams) }))
	reg.NewCounterFunc("sti_gen_tokens_out_total", "Tokens decoded by the continuous batchers.", nil,
		gen(func(s pipeline.StepLoopStats) float64 { return float64(s.TokensOut) }))
	reg.NewCounterFunc("sti_gen_preempted_total", "Streams whose KV was evicted under budget pressure.", nil,
		gen(func(s pipeline.StepLoopStats) float64 { return float64(s.Preempted) }))
	reg.NewCounterFunc("sti_gen_recomputed_tokens_total", "Tokens replayed to restore evicted KV.", nil,
		gen(func(s pipeline.StepLoopStats) float64 { return float64(s.RecomputedTokens) }))

	reg.NewCounterFunc("sti_predict_prefetch_issued_total", "Prefetches issued by the predictive subsystem.", nil,
		f.sumPredict(func(s predict.ModelStats) float64 { return float64(s.PrefetchIssued) }))
	reg.NewCounterFunc("sti_predict_seq_hits_total", "Sequence-predictor hits.", nil,
		f.sumPredict(func(s predict.ModelStats) float64 { return float64(s.SeqHits) }))
	reg.NewCounterFunc("sti_predict_seq_predictions_total", "Sequence-predictor predictions issued.", nil,
		f.sumPredict(func(s predict.ModelStats) float64 { return float64(s.SeqPredictions) }))
	reg.NewCounterFunc("sti_predict_warms_total", "Speculative tier warms performed.", nil,
		f.sumPredict(func(s predict.ModelStats) float64 { return float64(s.SpeculativeWarms) }))
}

// sumEntries builds a scrape-time reader that folds one per-entry
// value across the fleet under the read lock.
func (f *Fleet) sumEntries(pick func(e *FleetEntry) float64) func() float64 {
	return func() float64 {
		f.mu.RLock()
		defer f.mu.RUnlock()
		var total float64
		for _, e := range f.entries {
			total += pick(e)
		}
		return total
	}
}

// sumPredict folds one predictor stat across the fleet's models; zero
// when prediction is disabled.
func (f *Fleet) sumPredict(pick func(predict.ModelStats) float64) func() float64 {
	return func() float64 {
		var total float64
		for _, name := range f.Names() {
			if s, ok := f.PredictStats(name); ok {
				total += pick(s)
			}
		}
		return total
	}
}
