package sti_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sti"
)

// prefixOf reports whether got is a (possibly complete) prefix of want.
func prefixOf(got, want []int) bool {
	if len(got) > len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// TestFleetGenerateStress hammers the continuous batcher through the
// full fleet path under -race: concurrent admissions, mid-stream
// cancellations (which must free KV blocks and surface partial
// responses), and replica scale-downs draining while step loops run.
// Greedy decode is deterministic, so every response — complete or
// cancelled partial — must be a byte prefix of its single-stream
// reference: no lost and no invented tokens. Afterwards no KV bytes
// may remain charged anywhere.
func TestFleetGenerateStress(t *testing.T) {
	f := sti.NewFleet(256 << 10)
	if err := f.Add("m", fleetSystem(t, 7), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas("m", 2); err != nil {
		t.Fatal(err)
	}
	if err := f.ConfigureReplicas("m", sti.ReplicaOptions{MaxStreams: 8}); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}

	shapes := []sti.Request{
		{Task: sti.TaskGenerate, Tokens: []int{1, 9, 8}, MaxNewTokens: 7},
		{Task: sti.TaskGenerate, Tokens: []int{4, 2}, MaxNewTokens: 5},
		{Task: sti.TaskGenerate, Tokens: []int{11, 3, 5, 6}, MaxNewTokens: 6, Priority: -1},
		{Task: sti.TaskGenerate, Tokens: []int{30, 1}, MaxNewTokens: 9},
	}
	// Single-stream references, served before the storm: every replica
	// runs the same plan, so these are the ground truth for all of it.
	refs := make([][]int, len(shapes))
	for i, req := range shapes {
		resp, err := f.Serve(context.Background(), "m", req)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		refs[i] = resp.GeneratedTokens
	}

	// Resizer: scale-downs drain replicas (and close their batchers)
	// while clients are mid-stream; scale-ups race admissions.
	stop := make(chan struct{})
	var resizerWG sync.WaitGroup
	resizerWG.Add(1)
	go func() {
		defer resizerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.SetReplicas("m", 1); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
			if err := f.SetReplicas("m", 2); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const workers = 8
	const perWorker = 15
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				i := (w + j) % len(shapes)
				req := shapes[i]
				ctx := context.Background()
				cancelled := false
				if j%3 == 2 {
					// Cancel from inside the stream after its first
					// token: the batcher must retire it with a partial
					// response within one step and free its KV.
					cctx, cancel := context.WithCancel(ctx)
					defer cancel()
					req.OnToken = func(step, token int) {
						if step == 0 {
							cancel()
						}
					}
					ctx, cancelled = cctx, true
				}
				resp, err := f.Serve(ctx, "m", req)
				switch {
				case err == nil:
					if resp == nil {
						t.Errorf("worker %d req %d: nil response", w, j)
						return
					}
					if len(resp.GeneratedTokens) != len(refs[i]) || !prefixOf(resp.GeneratedTokens, refs[i]) {
						t.Errorf("worker %d req %d: tokens %v, want %v", w, j, resp.GeneratedTokens, refs[i])
						return
					}
				case cancelled && errors.Is(err, context.Canceled):
					if resp == nil || !prefixOf(resp.GeneratedTokens, refs[i]) {
						t.Errorf("worker %d req %d: cancelled partial %+v not a prefix of %v", w, j, resp, refs[i])
						return
					}
				default:
					t.Errorf("worker %d req %d: %v", w, j, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	resizerWG.Wait()

	// Quiesce: no stream live anywhere, no KV byte still charged
	// against any engine grant, and the step loops actually batched.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gs, ok := f.GenerateStats("m")
		if !ok {
			t.Fatal("no generate stats")
		}
		if gs.Streams == 0 && gs.Pending == 0 && gs.KVBytes == 0 {
			if gs.Steps == 0 || gs.TokensOut == 0 {
				t.Fatalf("step loops never ran: %+v", gs)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams or KV bytes did not quiesce: %+v", gs)
		}
		time.Sleep(10 * time.Millisecond)
	}
	ps, ok := f.ReplicaStats("m")
	if !ok {
		t.Fatal("no replica stats")
	}
	if ps.KVBytes != 0 {
		t.Fatalf("replica pool still charges %d KV bytes after drain", ps.KVBytes)
	}
}
