// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7). Each benchmark runs the corresponding experiment
// harness; the first iteration logs the full report so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's result tables alongside the cost of producing
// them. Micro-benchmarks of the substrates (matmul, quantization,
// packing, pipeline engine) live in their packages.
package sti_test

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sti"
	"sti/internal/device"
	"sti/internal/experiments"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/pipeline"
	"sti/internal/planner"
)

// reportOnce ensures each experiment's full report is printed exactly
// once per `go test -bench` invocation. Printing to stdout (rather
// than b.Log) keeps the regenerated tables complete in the benchmark
// output — the testing framework truncates repeated BENCH logs.
var reportOnce sync.Map

// benchExperiment runs one experiment under the benchmark loop and
// prints its full report the first time it runs.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, seen := reportOnce.LoadOrStore(id, true); !seen {
			fmt.Printf("\n===== %s: %s =====\n%s\n", r.ID, r.Title, r.Output)
		}
	}
}

// §2.2 motivation numbers (IO/compute skew, cold-start delays).
func BenchmarkMotivation_IOSkew(b *testing.B) { benchExperiment(b, "motiv") }

// Figure 1: execution-method comparison with timelines.
func BenchmarkFigure1_ExecutionMethods(b *testing.B) { benchExperiment(b, "fig1") }

// Figure 5: shard-importance heatmaps for SST-2 vs RTE.
func BenchmarkFigure5_ImportanceMaps(b *testing.B) { benchExperiment(b, "fig5") }

// Figure 6: the AIB mini example (plans A/B valid, C invalid).
func BenchmarkFigure6_AIBExample(b *testing.B) { benchExperiment(b, "fig6") }

// Figure 7: accuracy/memory tradeoff at T=200ms.
func BenchmarkFigure7_AccuracyMemory(b *testing.B) { benchExperiment(b, "fig7") }

// Figure 8: submodel comparison between Ours and StdPL-6bit.
func BenchmarkFigure8_SubmodelComparison(b *testing.B) { benchExperiment(b, "fig8") }

// Table 5: the full accuracy grid (2 platforms × 4 tasks × 3 targets ×
// 8 methods).
func BenchmarkTable5_Accuracy(b *testing.B) { benchExperiment(b, "table5") }

// Table 6: submodel sizes selected per method and target.
func BenchmarkTable6_SubmodelSizes(b *testing.B) { benchExperiment(b, "table6") }

// Table 7: importance-guided vs random IO budget allocation.
func BenchmarkTable7_ImportanceAllocation(b *testing.B) { benchExperiment(b, "table7") }

// §7.2 storage overhead of the N×M×K shard versions.
func BenchmarkStorageOverhead(b *testing.B) { benchExperiment(b, "storage") }

// §7.4 sensitivity sweeps.
func BenchmarkSensitivity_TargetLatency(b *testing.B) { benchExperiment(b, "sens-t") }
func BenchmarkSensitivity_PreloadBuffer(b *testing.B) { benchExperiment(b, "sens-s") }

// Ablations of DESIGN.md's called-out choices (IO granularity,
// deeper-tie rule, two-pass allocation, eviction order).
func BenchmarkAblation_DesignChoices(b *testing.B) { benchExperiment(b, "ablate") }

// BenchmarkPlanner measures one full two-stage planning run at paper
// scale — §5.3 argues enumeration is constant-complexity and cheap
// enough to run on every T or |S| change.
func BenchmarkPlanner(b *testing.B) {
	cfg := model.BERTBase()
	imp := importance.Synthetic("QQP", cfg.Layers, cfg.Heads)
	sizer := planner.AnalyticSizer{Params: cfg.ShardParams()}
	req := planner.NewRequest(device.Odroid(), cfg, imp, sizer, 200*time.Millisecond, 1<<20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := req.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineSimulation measures the discrete-event schedule
// computation used by every experiment cell.
func BenchmarkPipelineSimulation(b *testing.B) {
	cfg := model.BERTBase()
	imp := importance.Synthetic("SST-2", cfg.Layers, cfg.Heads)
	sizer := planner.AnalyticSizer{Params: cfg.ShardParams()}
	req := planner.NewRequest(device.Jetson(), cfg, imp, sizer, 400*time.Millisecond, 5<<20)
	p, err := req.Plan()
	if err != nil {
		b.Fatal(err)
	}
	jobs := pipeline.PlanJobs(p, sizer)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipeline.Simulate(device.Jetson(), jobs)
	}
}

// BenchmarkEngineExecute measures a real pipelined inference (store
// reads + decompression + forward pass) on a tiny model.
func BenchmarkEngineExecute(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 77)
	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		b.Fatal(err)
	}
	sys, err := sti.Load(dir, sti.Odroid(), 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.Plan(200*time.Millisecond, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Warm(p); err != nil {
		b.Fatal(err)
	}
	tokens := []int{1, 9, 8, 7, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Infer(p, tokens, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchedServe compares B sequential pipelined inferences
// against one ExecuteBatch of the same B inputs. The batched path
// streams and decompresses each layer's shards once for the whole
// batch, so completed-requests/sec rises and per-request layer IO
// drops to ≈1/B (reported as the bytes/req metric).
func BenchmarkBatchedServe(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 77)
	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		b.Fatal(err)
	}
	sys, err := sti.Load(dir, sti.Odroid(), 0) // zero preload: every layer streams
	if err != nil {
		b.Fatal(err)
	}
	p, err := sys.Plan(200*time.Millisecond, 0)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 8
	inputs := make([]sti.BatchInput, batch)
	for i := range inputs {
		inputs[i] = sti.BatchInput{Tokens: []int{1, 9, 8, 7, 2}}
	}

	b.Run("sequential", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				_, stats, err := sys.Infer(p, in.Tokens, in.Mask)
				if err != nil {
					b.Fatal(err)
				}
				bytes += stats.BytesRead
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "req/s")
		b.ReportMetric(float64(bytes)/float64(b.N*batch), "bytes/req")
	})
	b.Run("batched", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			_, stats, err := sys.InferBatch(p, inputs)
			if err != nil {
				b.Fatal(err)
			}
			bytes += stats.BytesRead
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "req/s")
		b.ReportMetric(float64(bytes)/float64(b.N*batch), "bytes/req")
	})

	// Traced variants of both modes: every request runs with a live
	// span slab on its context and finishes into an exemplar ring, so
	// the smoke compares req/s with observability on vs off (the
	// tracing overhead budget is ≤ ~3%).
	hub := sti.NewObsHub(4)
	b.Run("sequential-traced", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			for _, in := range inputs {
				ctx, tr := hub.StartRequest(context.Background(), "")
				resp, err := sys.Run(ctx, p, sti.Request{
					Task: sti.TaskClassify, Tokens: in.Tokens, Mask: in.Mask,
				})
				if err != nil {
					b.Fatal(err)
				}
				hub.FinishRequest(tr, "m", "", "")
				bytes += resp.Stats.BytesRead
			}
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "req/s")
		b.ReportMetric(float64(bytes)/float64(b.N*batch), "bytes/req")
	})
	b.Run("batched-traced", func(b *testing.B) {
		var bytes int64
		for i := 0; i < b.N; i++ {
			ctx, tr := hub.StartRequest(context.Background(), "")
			_, stats, err := sys.Engine.ExecuteBatch(ctx, p, inputs)
			if err != nil {
				b.Fatal(err)
			}
			hub.FinishRequest(tr, "m", "", "")
			bytes += stats.BytesRead
		}
		b.ReportMetric(float64(b.N*batch)/b.Elapsed().Seconds(), "req/s")
		b.ReportMetric(float64(bytes)/float64(b.N*batch), "bytes/req")
	})
}

// BenchmarkTieredServe drives a mixed-SLO workload through the full
// scheduler→fleet→tier-ladder path: a tight class (25ms SLO), a
// relaxed class (100ms SLO) and a best-effort class (model default,
// Priority < 0) hammer one model through a deliberately shallow queue
// so congestion downgrades occur. Reported metrics: p50/p99 latency
// per tier class and the downgrade rate across completed requests.
func BenchmarkTieredServe(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 77)
	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		b.Fatal(err)
	}
	sys, err := sti.Load(dir, sti.Odroid(), 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	fleet := sti.NewFleet(64 << 10)
	if err := fleet.Add("m", sys, 50*time.Millisecond, 1); err != nil {
		b.Fatal(err)
	}
	if err := fleet.Replan(); err != nil {
		b.Fatal(err)
	}
	sched := sti.NewScheduler(fleet, sti.ServeOptions{
		QueueDepth: 4, Workers: 1, Slack: 1000, MaxBatch: 4,
	})
	defer sched.Close()

	classes := []struct {
		name     string
		target   time.Duration
		priority int
	}{
		{"tight", 25 * time.Millisecond, 0},
		{"relaxed", 100 * time.Millisecond, 0},
		{"besteffort", 0, -1},
	}
	var mu sync.Mutex
	latencies := make(map[string][]time.Duration)
	var completed, downgraded, shed int64

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for c := 0; c < 6; c++ {
			cl := classes[c%len(classes)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < 4; k++ {
					start := time.Now()
					res, err := sched.Submit(context.Background(), "m", sti.Request{
						Task: sti.TaskClassify, Tokens: []int{1, 9, 8, 7, 2},
						TargetLatency: cl.target, Priority: cl.priority,
					})
					mu.Lock()
					if err != nil {
						shed++
					} else {
						completed++
						latencies[cl.name] = append(latencies[cl.name], time.Since(start))
						if res.Tier != nil && res.Tier.Downgraded {
							downgraded++
						}
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()

	quantile := func(lat []time.Duration, q float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		i := int(math.Ceil(q*float64(len(lat)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(lat[i].Microseconds()) / 1e3
	}
	for _, cl := range classes {
		b.ReportMetric(quantile(latencies[cl.name], 0.50), cl.name+"_p50_ms")
		b.ReportMetric(quantile(latencies[cl.name], 0.99), cl.name+"_p99_ms")
	}
	if completed > 0 {
		b.ReportMetric(float64(downgraded)/float64(completed), "downgrade_rate")
	}
	b.ReportMetric(float64(shed), "shed")
}

// BenchmarkReplicatedServe measures elastic multi-engine serving: the
// same classify workload hammers one model through the full
// scheduler→fleet path at replicas ∈ {1, 2, 4}, with scheduler
// workers scaled 2× the replica count (the sti-serve default) and
// batching disabled so every request is one dispatch. Reported
// metrics: completed req/s, real flash bytes per request (reads the
// single-flight shard cache did NOT absorb — flat as replicas grow is
// the win), and the cache's dedup hit rate.
func BenchmarkReplicatedServe(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 77)
	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		b.Fatal(err)
	}
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			sys, err := sti.Load(dir, sti.Odroid(), 0)
			if err != nil {
				b.Fatal(err)
			}
			fleet := sti.NewFleet(96 << 10)
			if err := fleet.Add("m", sys, 100*time.Millisecond, 1); err != nil {
				b.Fatal(err)
			}
			if err := fleet.SetReplicas("m", replicas); err != nil {
				b.Fatal(err)
			}
			if err := fleet.Replan(); err != nil {
				b.Fatal(err)
			}
			sched := sti.NewScheduler(fleet, sti.ServeOptions{
				QueueDepth: 64, Workers: 2 * replicas, Slack: 1000, MaxBatch: 1,
			})
			defer sched.Close()

			before, _ := fleet.SharedCacheStats("m")
			var completed int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				const submitters = 8
				var wg sync.WaitGroup
				for c := 0; c < submitters; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for k := 0; k < 2; k++ {
							_, err := sched.Submit(context.Background(), "m", sti.Request{
								Task: sti.TaskClassify, Tokens: []int{1, 9, 8, 7, 2},
							})
							if err == nil {
								atomic.AddInt64(&completed, 1)
							}
						}
					}()
				}
				wg.Wait()
			}
			b.StopTimer()

			after, _ := fleet.SharedCacheStats("m")
			if completed > 0 {
				b.ReportMetric(float64(completed)/b.Elapsed().Seconds(), "req/s")
				b.ReportMetric(float64(after.BytesRead-before.BytesRead)/float64(completed), "flashbytes/req")
			}
			if reads := after.Requests - before.Requests; reads > 0 {
				b.ReportMetric(float64(after.Hits()-before.Hits())/float64(reads), "sf_hit_rate")
			}
		})
	}
}

// BenchmarkContinuousGenerate measures the continuous batcher's
// iteration-level scheduling at 1/8/64 concurrent generate streams on
// one replica: aggregate decoded tokens per second, p99 inter-token
// latency across all streams, and flash bytes per decode step (which
// must not scale with stream count — every stream rides one
// materialized submodel).
func BenchmarkContinuousGenerate(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 77)
	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		b.Fatal(err)
	}
	const newTokens = 12
	for _, streams := range []int{1, 8, 64} {
		// traced=true runs the same workload with the observability hub
		// live: fleet metrics registered, every request carrying a span
		// slab, exemplar rings fed. The two modes bracket the tracing
		// overhead budget (≤ ~3% tok/s).
		for _, traced := range []bool{false, true} {
			name := fmt.Sprintf("streams=%d", streams)
			if traced {
				name += "-traced"
			}
			b.Run(name, func(b *testing.B) {
				sys, err := sti.Load(dir, sti.Odroid(), 0)
				if err != nil {
					b.Fatal(err)
				}
				// The grant must hold every stream's KV pages alongside the
				// preload set, or high stream counts measure KV starvation
				// instead of scheduling (§3.2: one budget arbitrates both).
				fleet := sti.NewFleet(4 << 20)
				if err := fleet.Add("m", sys, 100*time.Millisecond, 1); err != nil {
					b.Fatal(err)
				}
				if err := fleet.SetReplicas("m", 1); err != nil {
					b.Fatal(err)
				}
				if err := fleet.ConfigureReplicas("m", sti.ReplicaOptions{MaxStreams: streams}); err != nil {
					b.Fatal(err)
				}
				if err := fleet.Replan(); err != nil {
					b.Fatal(err)
				}
				var hub *sti.ObsHub
				if traced {
					hub = sti.NewObsHub(4)
					fleet.SetObservability(hub)
				}

				var tokens int64
				var mu sync.Mutex
				var gaps []time.Duration
				before, _ := fleet.SharedCacheStats("m")
				stepsBefore, _ := fleet.GenerateStats("m")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var wg sync.WaitGroup
					for s := 0; s < streams; s++ {
						wg.Add(1)
						go func(s int) {
							defer wg.Done()
							var last time.Time
							var local []time.Duration
							ctx, tr := hub.StartRequest(context.Background(), "")
							_, err := fleet.Serve(ctx, "m", sti.Request{
								Task:         sti.TaskGenerate,
								Tokens:       []int{1 + s%30, 9, 8},
								MaxNewTokens: newTokens,
								OnToken: func(step, token int) {
									// Gaps between tokens only: the first
									// token's wait is TTFT (admission +
									// prefill), a different metric.
									now := time.Now()
									if step > 0 {
										local = append(local, now.Sub(last))
									}
									last = now
									atomic.AddInt64(&tokens, 1)
								},
							})
							hub.FinishRequest(tr, "m", "", "")
							if err != nil {
								b.Error(err)
								return
							}
							mu.Lock()
							gaps = append(gaps, local...)
							mu.Unlock()
						}(s)
					}
					wg.Wait()
				}
				b.StopTimer()

				if tokens > 0 {
					b.ReportMetric(float64(tokens)/b.Elapsed().Seconds(), "tok/s")
				}
				if len(gaps) > 0 {
					sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
					p99 := gaps[len(gaps)*99/100]
					b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99_intertoken_ms")
				}
				after, _ := fleet.SharedCacheStats("m")
				stepsAfter, _ := fleet.GenerateStats("m")
				if steps := stepsAfter.Steps - stepsBefore.Steps; steps > 0 {
					b.ReportMetric(float64(after.BytesRead-before.BytesRead)/float64(steps), "flashbytes/step")
					b.ReportMetric(stepsAfter.AvgStreamsPerStep, "streams/step")
				}
			})
		}
	}
}

// BenchmarkColdTierFirstToken measures the first token of a generate
// request landing on a cold plan tier — the rung below the default,
// where congestion downgrades land — with prediction off vs on. Each
// iteration cold-starts the shared cache, serves a ramping burst at the
// default tier (the warmable arrival pattern), and idles briefly; with
// prediction on, the burst trends the arrival predictor upward and the
// speculative warmer stages the downgrade rung's streamed shards into
// the cache's second-class segment during the gap, so the timed
// request's materialization finds its payloads resident instead of
// paying cold flash reads on the first-token path.
func BenchmarkColdTierFirstToken(b *testing.B) {
	dir := b.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 77)
	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		b.Fatal(err)
	}
	const retain = 1 << 20
	for _, predictOn := range []bool{false, true} {
		b.Run(fmt.Sprintf("predict=%v", predictOn), func(b *testing.B) {
			sys, err := sti.Load(dir, sti.Odroid(), 0)
			if err != nil {
				b.Fatal(err)
			}
			fleet := sti.NewFleet(96 << 10)
			if err := fleet.Add("m", sys, 100*time.Millisecond, 1); err != nil {
				b.Fatal(err)
			}
			if err := fleet.Replan(); err != nil {
				b.Fatal(err)
			}
			if err := fleet.SetSharedCacheRetain("m", retain); err != nil {
				b.Fatal(err)
			}
			if predictOn {
				err := fleet.EnablePrediction(sti.PredictOptions{
					Prefetch:     true,
					Speculate:    true,
					Interval:     time.Millisecond,
					WarmTrend:    0.05,
					WarmCooldown: 5 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer fleet.StopPrediction()
			}

			ctx := context.Background()
			var ttft time.Duration
			measured := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// Displace the measured tier's batcher group (idle
				// groups are evicted when another plan arrives), so
				// every iteration pays a full cold materialization on
				// the first-token path, not just the first.
				if _, err := fleet.Serve(ctx, "m", sti.Request{
					Task: sti.TaskGenerate, Tokens: []int{2, 7}, MaxNewTokens: 1,
					TargetLatency: 200 * time.Millisecond,
				}); err != nil {
					b.Fatal(err)
				}
				// Cold-start: drop every retained payload (the trained
				// predictor survives).
				if err := fleet.SetSharedCacheRetain("m", 0); err != nil {
					b.Fatal(err)
				}
				if err := fleet.SetSharedCacheRetain("m", retain); err != nil {
					b.Fatal(err)
				}
				// Ramping arrival burst at the default tier — queue
				// depth climbing, no requests admitted yet (the moment
				// before a downgrade burst lands). No demand reads
				// happen here, so the tier's payloads stay cold unless
				// the speculative warmer stages them.
				for k := 0; k < 6; k++ {
					fleet.ObserveArrival("m", 100*time.Millisecond, 2+k, 64)
				}
				// Idle gap before the burst's requests arrive — the
				// window the predictor has to stage the rung below.
				// Slept on both sides of the comparison.
				time.Sleep(15 * time.Millisecond)

				start := time.Now()
				b.StartTimer()
				var first time.Duration
				_, err := fleet.Serve(ctx, "m", sti.Request{
					Task:          sti.TaskGenerate,
					Tokens:        []int{3, 1, 4},
					MaxNewTokens:  1,
					TargetLatency: 50 * time.Millisecond,
					OnToken: func(step, token int) {
						if step == 0 {
							first = time.Since(start)
						}
					},
				})
				b.StopTimer()
				if err != nil {
					b.Fatal(err)
				}
				ttft += first
				measured++
				b.StartTimer()
			}
			b.StopTimer()

			if measured > 0 {
				b.ReportMetric(float64(ttft.Nanoseconds())/float64(measured)/1e6, "first_token_ms")
			}
			if cs, ok := fleet.SharedCacheStats("m"); ok && predictOn {
				b.ReportMetric(float64(cs.Prefetches)/float64(b.N), "prefetches/op")
				b.ReportMetric(float64(cs.PrefetchHits)/float64(b.N), "prefetch_hits/op")
			}
			if ps, ok := fleet.PredictStats("m"); ok && predictOn {
				b.ReportMetric(float64(ps.SpeculativeWarms)/float64(b.N), "warms/op")
				b.ReportMetric(float64(ps.PrefetchIssued)/float64(b.N), "issued/op")
			}
		})
	}
}

// §7.2 energy overhead and the §2.1-2.2 lifetime simulation.
func BenchmarkEnergyOverhead(b *testing.B)     { benchExperiment(b, "energy") }
func BenchmarkLifetimeSimulation(b *testing.B) { benchExperiment(b, "lifetime") }

// Extension sweeps: input sequence length and DVFS operating point.
func BenchmarkSensitivity_SeqLen(b *testing.B) { benchExperiment(b, "sens-l") }
func BenchmarkSensitivity_DVFS(b *testing.B)   { benchExperiment(b, "sens-f") }
