package sti_test

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"sti"
)

// TestFleetReplicatedServeIdenticalLogits: a replicated model serves
// every request with logits byte-identical to a single-replica fleet
// planned under the same per-replica grant — replicas are pure
// capacity, never a correctness change. (The grant arbitration is
// per-replica, so the apples-to-apples single fleet gets one replica's
// slice of the replicated fleet's budget: both plan the same ladder.)
func TestFleetReplicatedServeIdenticalLogits(t *testing.T) {
	req := sti.Request{Task: sti.TaskClassify, Tokens: []int{1, 9, 8, 7, 2}}

	single := sti.NewFleet(32 << 10) // == (96 << 10) / 3 replicas
	if err := single.Add("m", fleetSystem(t, 5), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := single.Replan(); err != nil {
		t.Fatal(err)
	}
	want, err := single.Serve(context.Background(), "m", req)
	if err != nil {
		t.Fatal(err)
	}

	f := sti.NewFleet(96 << 10)
	if err := f.Add("m", fleetSystem(t, 5), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas("m", 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Replicas("m"); n != 3 {
		t.Fatalf("replicas = %d, want 3", n)
	}

	// Concurrent requests spread across replicas; every logit vector
	// must match the single-replica fleet bit for bit.
	const requests = 9
	var wg sync.WaitGroup
	resps := make([]*sti.Response, requests)
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resps[i], errs[i] = f.Serve(context.Background(), "m", req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < requests; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		for j := range resps[i].Logits {
			if math.Float32bits(resps[i].Logits[j]) != math.Float32bits(want.Logits[j]) {
				t.Fatalf("request %d logit %d: %v != single-replica %v",
					i, j, resps[i].Logits[j], want.Logits[j])
			}
		}
	}

	// Dispatch reached more than one replica and every request is
	// accounted to exactly one of them.
	ps, ok := f.ReplicaStats("m")
	if !ok {
		t.Fatal("no replica stats for managed model")
	}
	var total uint64
	busy := 0
	for _, served := range ps.Served {
		total += served
		if served > 0 {
			busy++
		}
	}
	if total != requests {
		t.Fatalf("per-replica served sums to %d, want %d", total, requests)
	}
	if busy < 2 {
		t.Fatalf("only %d replica(s) served traffic; want least-loaded dispatch to spread %d concurrent requests", busy, requests)
	}
}

// TestFleetReplicaBudgetArbitration: the fleet-wide byte budget still
// bounds total preload residency when a model's grant is split across
// replicas, and each replica's buffer runs under its own slice.
func TestFleetReplicaBudgetArbitration(t *testing.T) {
	const budget = 120 << 10
	f := sti.NewFleet(budget)
	if err := f.Add("a", fleetSystem(t, 6), 200*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("b", fleetSystem(t, 7), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas("a", 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}

	a, _ := f.Entry("a")
	if a.Budget != 80<<10 {
		t.Fatalf("a granted %d, want 2/3 of %d", a.Budget, budget)
	}
	if a.Replicas != 4 {
		t.Fatalf("a has %d replicas, want 4", a.Replicas)
	}
	ps, _ := f.ReplicaStats("a")
	if ps.PerReplica != a.Budget/4 {
		t.Fatalf("per-replica slice %d, want %d", ps.PerReplica, a.Budget/4)
	}
	if a.Plan.PreloadUsed > ps.PerReplica {
		t.Fatalf("default plan preloads %d bytes into a %d-byte replica buffer", a.Plan.PreloadUsed, ps.PerReplica)
	}
	if got := f.PreloadBytes(); got == 0 || got > budget {
		t.Fatalf("fleet holds %d preload bytes, want within (0, %d]", got, budget)
	}

	// Shrinking the fleet budget re-arbitrates across models AND
	// replicas; residency follows.
	if err := f.SetBudget(budget / 2); err != nil {
		t.Fatal(err)
	}
	if got := f.PreloadBytes(); got > budget/2 {
		t.Fatalf("fleet holds %d preload bytes over the reduced budget %d", got, budget/2)
	}
}

// TestFleetSingleflightDedupesReplicaIO: concurrent requests on a
// replicated model dedupe their shard reads through the model's shared
// cache — flash IO stays ~1× while request concurrency grows.
func TestFleetSingleflightDedupesReplicaIO(t *testing.T) {
	f := sti.NewFleet(0) // zero preload: every execution streams all shards
	if err := f.Add("m", fleetSystem(t, 8), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas("m", 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}

	req := sti.Request{Task: sti.TaskClassify, Tokens: []int{3, 1, 4, 1, 5}}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := f.Serve(context.Background(), "m", req); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	cs, ok := f.SharedCacheStats("m")
	if !ok {
		t.Fatal("no shared-cache stats for managed model")
	}
	if cs.Requests == 0 {
		t.Fatal("no payload reads went through the shared cache")
	}
	// 8 streaming executions of one plan: without the shared cache
	// that is 8× the plan's shards in flash reads. With it, each shard
	// is read once (ladder warms read nothing at budget 0).
	if cs.Hits() == 0 {
		t.Fatalf("stats %+v: expected dedup hits across replicas", cs)
	}
	if cs.FlashReads > cs.Requests/2 {
		t.Fatalf("stats %+v: %d of %d reads hit flash; want the shared cache to absorb most", cs, cs.FlashReads, cs.Requests)
	}
}

// TestFleetPressureScalesUpAndDrains drives the scheduler's
// queue-pressure signal by hand: congestion grows the pool toward the
// SetReplicas ceiling, a sustained idle stretch drains it back and the
// reclaimed bytes return to the survivors.
func TestFleetPressureScalesUpAndDrains(t *testing.T) {
	f := sti.NewFleet(96 << 10)
	if err := f.Add("m", fleetSystem(t, 9), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas("m", 2); err != nil {
		t.Fatal(err)
	}
	if err := f.ConfigureReplicas("m", sti.ReplicaOptions{
		Min: 1, Max: 2,
		HighWater: 0.5,
		IdleAfter: 5 * time.Millisecond,
		Cooldown:  time.Nanosecond,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}

	// Drain first: idle observations shrink the pool to one replica.
	f.Pressure("m", 0, 64) // arms the idle clock
	deadline := time.Now().Add(5 * time.Second)
	for {
		f.Pressure("m", 0, 64)
		if n, _ := f.Replicas("m"); n == 1 {
			break
		}
		if time.Now().After(deadline) {
			n, _ := f.Replicas("m")
			t.Fatalf("pool still at %d replicas after sustained idle pressure", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The retired replica's bytes were reclaimed; the survivor owns the
	// whole model grant again.
	ps, _ := f.ReplicaStats("m")
	if ps.PerReplica != ps.Budget {
		t.Fatalf("survivor slice %d, want the whole grant %d", ps.PerReplica, ps.Budget)
	}
	if got := f.PreloadBytes(); got > 96<<10 {
		t.Fatalf("fleet holds %d bytes over budget after drain", got)
	}

	// Congestion: depth at the high-water mark regrows the pool.
	deadline = time.Now().Add(5 * time.Second)
	for {
		f.Pressure("m", 32, 64)
		if n, _ := f.Replicas("m"); n == 2 {
			break
		}
		if time.Now().After(deadline) {
			n, _ := f.Replicas("m")
			t.Fatalf("pool still at %d replicas under sustained congestion", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Scale-up re-splits the grant and the fleet-wide bound holds.
	ps, _ = f.ReplicaStats("m")
	if ps.PerReplica != ps.Budget/2 {
		t.Fatalf("per-replica slice %d after scale-up, want %d", ps.PerReplica, ps.Budget/2)
	}
	if got := f.PreloadBytes(); got > 96<<10 {
		t.Fatalf("fleet holds %d bytes over budget after scale-up", got)
	}
	// Serving still works mid-elasticity.
	if _, err := f.Serve(context.Background(), "m",
		sti.Request{Task: sti.TaskClassify, Tokens: []int{2, 7, 1, 8}}); err != nil {
		t.Fatal(err)
	}
}

// TestFleetRemoveRetiresReplicas: removing a replicated model releases
// every replica's preload bytes, not just replica zero's.
func TestFleetRemoveRetiresReplicas(t *testing.T) {
	f := sti.NewFleet(128 << 10)
	drop := fleetSystem(t, 10)
	if err := f.Add("keep", fleetSystem(t, 11), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("drop", drop, 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.SetReplicas("drop", 3); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	ps, _ := f.ReplicaStats("drop")
	if ps.CacheBytes == 0 {
		t.Fatal("replicated model warmed nothing")
	}
	if err := f.Remove("drop"); err != nil {
		t.Fatal(err)
	}
	if got := drop.Engine.CacheBytes(); got != 0 {
		t.Fatalf("removed model's replica 0 still holds %d bytes", got)
	}
	keep, _ := f.Entry("keep")
	if got := f.PreloadBytes(); got > keep.Budget {
		t.Fatalf("fleet holds %d bytes after remove, want ≤ survivor grant %d", got, keep.Budget)
	}
}
