package sti_test

import (
	"testing"
	"time"

	"sti"
)

// TestEndToEndWorkflow walks the full public API: build → train →
// preprocess → load → profile importance → plan → warm → infer →
// retain → infer again.
func TestEndToEndWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end training run")
	}
	dir := t.TempDir()
	cfg := sti.TinyConfig()
	w := sti.NewRandomModel(cfg, 1001)

	opts := sti.DefaultTrainOptions()
	opts.Epochs = 3
	ds, acc, err := sti.TrainModel(w, "SST-2", opts)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("trained accuracy %.1f too low", acc)
	}

	if _, err := sti.Preprocess(dir, w, nil); err != nil {
		t.Fatal(err)
	}

	sys, err := sti.Load(dir, sti.Odroid(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	sys.Imp = sti.ProfileImportance(w, ds, 2, 32)

	plan, err := sys.Plan(200*time.Millisecond, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Depth < 1 || plan.Width < 1 {
		t.Fatalf("degenerate plan %v", plan)
	}
	if err := sys.Warm(plan); err != nil {
		t.Fatal(err)
	}

	tokens, mask := ds.Encode(ds.Dev[0])
	logits, stats, err := sys.Infer(plan, tokens, mask)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != cfg.Classes {
		t.Fatalf("logits %v", logits)
	}
	if stats.Total <= 0 {
		t.Fatal("no stats recorded")
	}

	// Back-to-back engagement: retain, then re-run with cache hits.
	if err := sys.Retain(plan); err != nil {
		t.Fatal(err)
	}
	_, stats2, err := sys.Infer(plan, tokens, mask)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits == 0 {
		t.Fatal("retained execution produced no cache hits")
	}

	// The pipelined engine must agree with direct evaluation: measure
	// dev accuracy through the engine and require it above chance.
	correct := 0
	for _, ex := range ds.Dev {
		toks, m := ds.Encode(ex)
		lg, _, err := sys.Infer(plan, toks, m)
		if err != nil {
			t.Fatal(err)
		}
		pred := 0
		if lg[1] > lg[0] {
			pred = 1
		}
		if pred == ex.Label {
			correct++
		}
	}
	devAcc := 100 * float64(correct) / float64(len(ds.Dev))
	if devAcc < 65 {
		t.Fatalf("pipelined dev accuracy %.1f%%; quantized submodel should stay usable", devAcc)
	}
	t.Logf("trained %.1f%%, pipelined submodel %dx%d %.1f%%", acc, plan.Depth, plan.Width, devAcc)
}

func TestPublicConstructors(t *testing.T) {
	if sti.Odroid().Name == "" || sti.Jetson().Name == "" {
		t.Fatal("device constructors broken")
	}
	if sti.BERTBaseConfig().Layers != 12 || sti.TinyConfig().Layers == 0 {
		t.Fatal("config constructors broken")
	}
	if _, err := sti.GenerateDataset("SST-2", sti.TinyConfig(), 4, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := sti.GenerateDataset("nope", sti.TinyConfig(), 4, 2, 1); err == nil {
		t.Fatal("unknown task must error")
	}
}

func TestLoadMissingStore(t *testing.T) {
	if _, err := sti.Load(t.TempDir()+"/missing", sti.Odroid(), 0); err == nil {
		t.Fatal("expected error")
	}
}

func TestPlanAblationKnobs(t *testing.T) {
	dir := t.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), 5)
	if _, err := sti.Preprocess(dir, w, []int{2, 6}); err != nil {
		t.Fatal(err)
	}
	sys, err := sti.Load(dir, sti.Jetson(), 0)
	if err != nil {
		t.Fatal(err)
	}
	req := sys.Request(150*time.Millisecond, 0)
	req.TwoPass = false
	req.PreferDeeper = false
	if _, err := req.Plan(); err != nil {
		t.Fatal(err)
	}
}
