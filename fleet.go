package sti

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sti/internal/pipeline"
)

// Fleet manages several expected models at once — the paper's
// multi-model setting (§2.1: co-running apps invoke separate fine-tuned
// instances per task; §3.2: "For each expected model, STI plans a
// separate execution pipeline with separate preload model shards").
//
// The fleet owns one total preload-memory budget and splits it across
// models in proportion to their expected engagement weights, replanning
// each model's pipeline whenever the budget or membership changes —
// exactly the replanning rule of §3.2 (only T or |S| changes require
// replanning).
//
// A Fleet is safe for concurrent use: Infer calls run in parallel
// (including on the same model), while Add, Remove, SetBudget and
// Replan take exclusive ownership — an in-flight replan quiesces
// inference so a plan is never swapped out from under an execution.
type Fleet struct {
	mu      sync.RWMutex
	budget  int64
	entries map[string]*FleetEntry
}

// FleetEntry is one managed model with its planning inputs and current
// plan. The snapshot returned by Entry is immutable; the fleet's live
// entry is updated by Replan.
type FleetEntry struct {
	System *System
	Target time.Duration
	Weight float64 // expected engagement share (relative)

	Budget int64 // preload bytes granted by the last Replan
	Plan   *Plan
}

// NewFleet creates a fleet with a total preload budget in bytes.
func NewFleet(totalPreloadBudget int64) *Fleet {
	return &Fleet{budget: totalPreloadBudget, entries: make(map[string]*FleetEntry)}
}

// Add registers a model under a name. Weight must be positive; call
// Replan afterwards to allocate budgets and build plans.
func (f *Fleet) Add(name string, sys *System, target time.Duration, weight float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.entries[name]; ok {
		return fmt.Errorf("sti: fleet already has model %q", name)
	}
	if weight <= 0 {
		return fmt.Errorf("sti: non-positive weight %v for %q", weight, name)
	}
	f.entries[name] = &FleetEntry{System: sys, Target: target, Weight: weight}
	return nil
}

// Remove drops a model and immediately rebalances the fleet: the
// removed model's engine releases every preloaded byte it held (its
// budget drops to zero, evicting the cache), and the survivors are
// replanned under their regrown shares — so PreloadBytes reflects the
// new grants the moment Remove returns, instead of leaving sibling
// grants stale and the removed engine's shards warm until someone
// happens to call Replan. Removing an unknown name is a no-op.
func (f *Fleet) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[name]
	if !ok {
		return nil
	}
	delete(f.entries, name)
	e.System.Engine.SetCacheBudget(0)
	if err := f.replanLocked(); err != nil {
		return fmt.Errorf("sti: replanning after removing %q: %w", name, err)
	}
	return nil
}

// Entry returns a snapshot of the managed entry for a model name.
func (f *Fleet) Entry(name string) (*FleetEntry, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return nil, false
	}
	snap := *e
	return &snap, true
}

// Target returns the latency target of a managed model.
func (f *Fleet) Target(name string) (time.Duration, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return 0, false
	}
	return e.Target, true
}

// Names lists managed models in a stable order.
func (f *Fleet) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.namesLocked()
}

func (f *Fleet) namesLocked() []string {
	names := make([]string, 0, len(f.entries))
	for n := range f.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetBudget changes the fleet-wide preload budget (e.g. on OS memory
// pressure) and replans every pipeline.
func (f *Fleet) SetBudget(budget int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = budget
	return f.replanLocked()
}

// Budget returns the fleet-wide preload budget.
func (f *Fleet) Budget() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.budget
}

// Replan splits the budget across models proportionally to their
// weights, plans each model's pipeline, resizes each engine's buffer,
// and warms it. In-flight Infer calls finish first; inference admitted
// afterwards sees the new plans.
func (f *Fleet) Replan() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replanLocked()
}

// replanLocked replans the whole fleet atomically: every model's grant
// and plan is staged before any entry or engine is touched, so a
// planning failure for one model leaves every entry on its previous
// consistent plan and budget (no partial commit whose grants no longer
// sum to f.budget). A warming failure rolls already-warmed engines back
// to their previous plans (best-effort — the caches are a performance
// artifact, the entries stay untouched either way).
func (f *Fleet) replanLocked() error {
	var totalWeight float64
	for _, e := range f.entries {
		totalWeight += e.Weight
	}
	names := f.namesLocked()

	// Stage: compute all grants and plans without side effects.
	grants := make([]int64, len(names))
	plans := make([]*Plan, len(names))
	for i, name := range names {
		e := f.entries[name]
		grants[i] = int64(float64(f.budget) * e.Weight / totalWeight)
		plan, err := e.System.Plan(e.Target, grants[i])
		if err != nil {
			return fmt.Errorf("sti: replanning %q: %w", name, err)
		}
		plans[i] = plan
	}

	// Warm the engines under their new budgets; on failure, restore the
	// engines already touched to their committed plans.
	for i, name := range names {
		e := f.entries[name]
		e.System.Engine.SetCacheBudget(grants[i])
		if err := e.System.Warm(plans[i]); err != nil {
			for k := i; k >= 0; k-- {
				prev := f.entries[names[k]]
				prev.System.Engine.SetCacheBudget(prev.Budget)
				if prev.Plan != nil {
					_ = prev.System.Warm(prev.Plan)
				}
			}
			return fmt.Errorf("sti: warming %q: %w", name, err)
		}
	}

	// Commit: every Plan and Warm succeeded.
	for i, name := range names {
		e := f.entries[name]
		e.Budget, e.Plan = grants[i], plans[i]
	}
	return nil
}

// entryForServe snapshots a planned entry under the read lock.
func (f *Fleet) entryForServe(name string) (*FleetEntry, error) {
	e, ok := f.entries[name]
	if !ok {
		return nil, fmt.Errorf("sti: fleet has no model %q", name)
	}
	if e.Plan == nil {
		return nil, fmt.Errorf("sti: model %q not planned; call Replan", name)
	}
	return e, nil
}

// Serve runs one task-typed request (classify or generate) on the
// named model using its current plan — the fleet's primary entry
// point. Concurrent Serve calls proceed in parallel; a concurrent
// Replan blocks until they drain. Cancelling ctx aborts the shard
// stream between layers and a generate decode between tokens.
//
// The read lock — which a Replan must wait out — is held only for the
// plan's one shard-stream pass, never for a generate's many decode
// steps: the decode runs on the materialized submodel, which is
// immutable and needs no synchronization with replans, so one long
// generation cannot stall budget changes (or, behind a pending
// writer, every other model's traffic).
func (f *Fleet) Serve(ctx context.Context, name string, req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Task != TaskGenerate {
		f.mu.RLock()
		defer f.mu.RUnlock()
		e, err := f.entryForServe(name)
		if err != nil {
			return nil, err
		}
		return e.System.Run(ctx, e.Plan, req)
	}

	f.mu.RLock()
	e, err := f.entryForServe(name)
	if err != nil {
		f.mu.RUnlock()
		return nil, err
	}
	sm, stream, err := e.System.Engine.Materialize(ctx, e.Plan)
	f.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return pipeline.DecodeGenerate(ctx, sm, stream, req)
}

// ServeBatch runs one batched classify on the named model: the model's
// shard stream is read and decompressed once and fanned out across all
// requests, so per-request IO is 1/len(reqs) of sequential Serve
// calls. Per-request logits are byte-identical to separate Serves.
// Every request must be TaskClassify — generate decodes are stateful
// per sequence and run singly through Serve.
func (f *Fleet) ServeBatch(ctx context.Context, name string, reqs []Request) ([]*Response, *BatchStats, error) {
	inputs := make([]BatchInput, len(reqs))
	for i, r := range reqs {
		if r.Task != TaskClassify {
			return nil, nil, fmt.Errorf("sti: ServeBatch request %d has task %v; only classify batches", i, r.Task)
		}
		inputs[i] = BatchInput{Tokens: r.Tokens, Mask: r.Mask}
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, err := f.entryForServe(name)
	if err != nil {
		return nil, nil, err
	}
	logits, bs, err := e.System.Engine.ExecuteBatch(ctx, e.Plan, inputs)
	if err != nil {
		return nil, nil, err
	}
	resps := make([]*Response, len(logits))
	for i := range logits {
		resps[i] = &Response{Logits: logits[i], Stats: &bs.ExecStats}
	}
	return resps, bs, nil
}

// Infer runs one pipelined classification on the named model using its
// current plan.
//
// Deprecated: Infer is the positional classify-only API; use Serve
// with a task-typed Request.
func (f *Fleet) Infer(name string, tokens []int, mask []bool) ([]float32, *ExecStats, error) {
	resp, err := f.Serve(context.Background(), name, Request{Task: TaskClassify, Tokens: tokens, Mask: mask})
	if err != nil {
		return nil, nil, err
	}
	return resp.Logits, resp.Stats, nil
}

// InferBatch runs one batched pipelined classification on the named
// model.
//
// Deprecated: InferBatch is the positional classify-only API; use
// ServeBatch with task-typed Requests.
func (f *Fleet) InferBatch(name string, inputs []BatchInput) ([][]float32, *BatchStats, error) {
	reqs := make([]Request, len(inputs))
	for i, in := range inputs {
		reqs[i] = Request{Task: TaskClassify, Tokens: in.Tokens, Mask: in.Mask}
	}
	resps, bs, err := f.ServeBatch(context.Background(), name, reqs)
	if err != nil {
		return nil, nil, err
	}
	logits := make([][]float32, len(resps))
	for i, r := range resps {
		logits[i] = r.Logits
	}
	return logits, bs, nil
}

// PreloadBytes reports the total preload memory currently held across
// all managed engines.
func (f *Fleet) PreloadBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int64
	for _, e := range f.entries {
		total += e.System.Engine.CacheBytes()
	}
	return total
}
