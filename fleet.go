package sti

import (
	"fmt"
	"sort"
	"time"
)

// Fleet manages several expected models at once — the paper's
// multi-model setting (§2.1: co-running apps invoke separate fine-tuned
// instances per task; §3.2: "For each expected model, STI plans a
// separate execution pipeline with separate preload model shards").
//
// The fleet owns one total preload-memory budget and splits it across
// models in proportion to their expected engagement weights, replanning
// each model's pipeline whenever the budget or membership changes —
// exactly the replanning rule of §3.2 (only T or |S| changes require
// replanning).
type Fleet struct {
	budget  int64
	entries map[string]*FleetEntry
}

// FleetEntry is one managed model with its planning inputs and current
// plan.
type FleetEntry struct {
	System *System
	Target time.Duration
	Weight float64 // expected engagement share (relative)

	Budget int64 // preload bytes granted by the last Replan
	Plan   *Plan
}

// NewFleet creates a fleet with a total preload budget in bytes.
func NewFleet(totalPreloadBudget int64) *Fleet {
	return &Fleet{budget: totalPreloadBudget, entries: make(map[string]*FleetEntry)}
}

// Add registers a model under a name. Weight must be positive; call
// Replan afterwards to allocate budgets and build plans.
func (f *Fleet) Add(name string, sys *System, target time.Duration, weight float64) error {
	if _, ok := f.entries[name]; ok {
		return fmt.Errorf("sti: fleet already has model %q", name)
	}
	if weight <= 0 {
		return fmt.Errorf("sti: non-positive weight %v for %q", weight, name)
	}
	f.entries[name] = &FleetEntry{System: sys, Target: target, Weight: weight}
	return nil
}

// Remove drops a model; its budget is redistributed at the next Replan.
func (f *Fleet) Remove(name string) {
	delete(f.entries, name)
}

// Entry returns the managed entry for a model name.
func (f *Fleet) Entry(name string) (*FleetEntry, bool) {
	e, ok := f.entries[name]
	return e, ok
}

// Names lists managed models in a stable order.
func (f *Fleet) Names() []string {
	names := make([]string, 0, len(f.entries))
	for n := range f.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetBudget changes the fleet-wide preload budget (e.g. on OS memory
// pressure) and replans every pipeline.
func (f *Fleet) SetBudget(budget int64) error {
	f.budget = budget
	return f.Replan()
}

// Replan splits the budget across models proportionally to their
// weights, plans each model's pipeline, resizes each engine's buffer,
// and warms it.
func (f *Fleet) Replan() error {
	var totalWeight float64
	for _, e := range f.entries {
		totalWeight += e.Weight
	}
	for _, name := range f.Names() {
		e := f.entries[name]
		e.Budget = int64(float64(f.budget) * e.Weight / totalWeight)
		plan, err := e.System.Plan(e.Target, e.Budget)
		if err != nil {
			return fmt.Errorf("sti: replanning %q: %w", name, err)
		}
		e.Plan = plan
		e.System.Engine.SetCacheBudget(e.Budget)
		if err := e.System.Warm(plan); err != nil {
			return fmt.Errorf("sti: warming %q: %w", name, err)
		}
	}
	return nil
}

// Infer runs one pipelined inference on the named model using its
// current plan.
func (f *Fleet) Infer(name string, tokens []int, mask []bool) ([]float32, *ExecStats, error) {
	e, ok := f.entries[name]
	if !ok {
		return nil, nil, fmt.Errorf("sti: fleet has no model %q", name)
	}
	if e.Plan == nil {
		return nil, nil, fmt.Errorf("sti: model %q not planned; call Replan", name)
	}
	return e.System.Infer(e.Plan, tokens, mask)
}

// PreloadBytes reports the total preload memory currently held across
// all managed engines.
func (f *Fleet) PreloadBytes() int64 {
	var total int64
	for _, e := range f.entries {
		total += e.System.Engine.CacheBytes()
	}
	return total
}
