package sti

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sti/internal/model"
	"sti/internal/pipeline"
	"sti/internal/planner"
)

// Fleet manages several expected models at once — the paper's
// multi-model setting (§2.1: co-running apps invoke separate fine-tuned
// instances per task; §3.2: "For each expected model, STI plans a
// separate execution pipeline with separate preload model shards").
//
// The fleet owns one total preload-memory budget and splits it across
// models in proportion to their expected engagement weights, replanning
// each model's pipeline whenever the budget or membership changes —
// exactly the replanning rule of §3.2 (only T or |S| changes require
// replanning).
//
// A Fleet is safe for concurrent use: Infer calls run in parallel
// (including on the same model), while Add, Remove, SetBudget and
// Replan take exclusive ownership — an in-flight replan quiesces
// inference so a plan is never swapped out from under an execution.
type Fleet struct {
	mu      sync.RWMutex
	budget  int64
	entries map[string]*FleetEntry
}

// PlanTier is one rung of a model's plan ladder: an executable plan at
// a graduated latency target. Tiers ascend by target; a larger target
// buys a higher-fidelity plan.
type PlanTier struct {
	Target time.Duration
	Plan   *Plan
}

// FleetEntry is one managed model with its planning inputs and current
// plan ladder. The snapshot returned by Entry is immutable; the
// fleet's live entry is updated by Replan.
type FleetEntry struct {
	System *System
	Target time.Duration // default latency target (requests with TargetLatency 0)
	Weight float64       // expected engagement share (relative)

	Budget int64 // preload bytes granted by the last Replan
	// Plan is the default tier's plan — what a request with no
	// TargetLatency of its own is served by.
	Plan *Plan
	// Tiers snapshots the entry's plan ladder (pinned graduated tiers
	// plus any tiers planned on demand for off-ladder SLOs), ascending
	// by target. Populated on Entry snapshots only.
	Tiers []PlanTier

	// cache is the live tier ladder: pinned graduated targets rebuilt
	// by every replan plus an LRU-bounded set of on-demand tiers.
	cache *planner.PlanCache
}

// tierCacheLimit bounds how many on-demand (off-ladder) plan tiers one
// model may cache beyond its pinned ladder.
const tierCacheLimit = 8

// NewFleet creates a fleet with a total preload budget in bytes.
func NewFleet(totalPreloadBudget int64) *Fleet {
	return &Fleet{budget: totalPreloadBudget, entries: make(map[string]*FleetEntry)}
}

// Add registers a model under a name. target is the model's *default*
// latency target — the tier requests ride when they carry no
// TargetLatency of their own; per-request SLOs resolve against a
// ladder of plans at graduated targets around it. Weight must be
// positive; call Replan afterwards to allocate budgets and build the
// ladders.
func (f *Fleet) Add(name string, sys *System, target time.Duration, weight float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.entries[name]; ok {
		return fmt.Errorf("sti: fleet already has model %q", name)
	}
	if weight <= 0 {
		return fmt.Errorf("sti: non-positive weight %v for %q", weight, name)
	}
	f.entries[name] = &FleetEntry{
		System: sys, Target: target, Weight: weight,
		cache: planner.NewPlanCache(tierCacheLimit),
	}
	return nil
}

// Remove drops a model and immediately rebalances the fleet: the
// removed model's engine releases every preloaded byte it held (its
// budget drops to zero, evicting the cache), and the survivors are
// replanned under their regrown shares — so PreloadBytes reflects the
// new grants the moment Remove returns, instead of leaving sibling
// grants stale and the removed engine's shards warm until someone
// happens to call Replan. Removing an unknown name is a no-op.
func (f *Fleet) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[name]
	if !ok {
		return nil
	}
	delete(f.entries, name)
	e.System.Engine.SetCacheBudget(0)
	if err := f.replanLocked(); err != nil {
		return fmt.Errorf("sti: replanning after removing %q: %w", name, err)
	}
	return nil
}

// Entry returns a snapshot of the managed entry for a model name,
// including the current plan ladder in Tiers.
func (f *Fleet) Entry(name string) (*FleetEntry, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return nil, false
	}
	snap := *e
	targets, plans := e.cache.Entries()
	snap.Tiers = make([]PlanTier, len(targets))
	for i := range targets {
		snap.Tiers[i] = PlanTier{Target: targets[i], Plan: plans[i]}
	}
	return &snap, true
}

// Target returns the latency target of a managed model.
func (f *Fleet) Target(name string) (time.Duration, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return 0, false
	}
	return e.Target, true
}

// Names lists managed models in a stable order.
func (f *Fleet) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.namesLocked()
}

func (f *Fleet) namesLocked() []string {
	names := make([]string, 0, len(f.entries))
	for n := range f.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetBudget changes the fleet-wide preload budget (e.g. on OS memory
// pressure) and replans every pipeline.
func (f *Fleet) SetBudget(budget int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = budget
	return f.replanLocked()
}

// Budget returns the fleet-wide preload budget.
func (f *Fleet) Budget() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.budget
}

// Replan splits the budget across models proportionally to their
// weights, plans each model's pipeline, resizes each engine's buffer,
// and warms it. In-flight Infer calls finish first; inference admitted
// afterwards sees the new plans.
func (f *Fleet) Replan() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.replanLocked()
}

// replanLocked replans the whole fleet atomically: every model's grant
// and plan *ladder* (graduated tier targets around its default, all
// sharing the model's one preload grant) is staged before any entry or
// engine is touched, so a planning failure for one model leaves every
// entry on its previous consistent ladder and budget (no partial
// commit whose grants no longer sum to f.budget). A warming failure
// rolls already-warmed engines back to their previous ladders
// (best-effort — the caches are a performance artifact, the entries
// stay untouched either way).
func (f *Fleet) replanLocked() error {
	var totalWeight float64
	for _, e := range f.entries {
		totalWeight += e.Weight
	}
	names := f.namesLocked()

	// Stage: compute all grants and tier ladders without side effects.
	grants := make([]int64, len(names))
	targets := make([][]time.Duration, len(names))
	ladders := make([][]*Plan, len(names))
	for i, name := range names {
		e := f.entries[name]
		grants[i] = int64(float64(f.budget) * e.Weight / totalWeight)
		targets[i] = planner.Ladder(e.Target)
		for _, target := range targets[i] {
			plan, err := e.System.Plan(target, grants[i])
			if err != nil {
				return fmt.Errorf("sti: replanning %q tier %v: %w", name, target, err)
			}
			ladders[i] = append(ladders[i], plan)
		}
	}

	// Warm the engines under their new budgets — each model's tiers
	// share its one grant, so the engine warms the bottom-up union of
	// the ladder's preload sets. On failure, restore the engines
	// already touched to their committed ladders.
	for i, name := range names {
		e := f.entries[name]
		e.System.Engine.SetCacheBudget(grants[i])
		if err := e.System.Engine.WarmSet(ladders[i]); err != nil {
			for k := i; k >= 0; k-- {
				prev := f.entries[names[k]]
				prev.System.Engine.SetCacheBudget(prev.Budget)
				if plans := prev.cache.Plans(); len(plans) > 0 {
					_ = prev.System.Engine.WarmSet(plans)
				}
			}
			return fmt.Errorf("sti: warming %q: %w", name, err)
		}
	}

	// Commit: every tier planned and every engine warmed. The old
	// ladder (including on-demand tiers, which were planned under the
	// old grants) is dropped; the new graduated tiers are pinned.
	for i, name := range names {
		e := f.entries[name]
		e.Budget = grants[i]
		e.cache.Clear()
		def := planner.TierKey(e.Target)
		for j, target := range targets[i] {
			e.cache.Pin(target, ladders[i][j])
			if target == def {
				e.Plan = ladders[i][j]
			}
		}
	}
	return nil
}

// planTierLocked plans and warms one on-demand tier for an off-ladder
// SLO, caching it LRU-bounded. Callers hold the write lock (a tier
// plan is a replan-class mutation: it resizes the shared warm set).
func (f *Fleet) planTierLocked(name string, want time.Duration) error {
	e, err := f.entryForServe(name)
	if err != nil {
		return err
	}
	if _, _, ok := e.cache.Resolve(want); ok {
		return nil // another miss raced us here and already planned it
	}
	plan, err := e.System.Plan(want, e.Budget)
	if err != nil {
		return fmt.Errorf("sti: planning tier %v for %q: %w", want, name, err)
	}
	// Warm first, cache second (the same stage-then-commit rule as
	// replanLocked): a tier whose warm failed must not sit in the
	// cache masquerading as served-and-warmed.
	if err := e.System.Engine.WarmSet(append(e.cache.Plans(), plan)); err != nil {
		return fmt.Errorf("sti: warming tier %v for %q: %w", want, name, err)
	}
	e.cache.Put(want, plan)
	return nil
}

// entryForServe snapshots a planned entry under the read lock.
func (f *Fleet) entryForServe(name string) (*FleetEntry, error) {
	e, ok := f.entries[name]
	if !ok {
		return nil, fmt.Errorf("sti: fleet has no model %q", name)
	}
	if e.Plan == nil {
		return nil, fmt.Errorf("sti: model %q not planned; call Replan", name)
	}
	return e, nil
}

// effectiveTarget resolves a request's SLO against the entry: zero
// falls back to the model default.
func (e *FleetEntry) effectiveTarget(req Request) time.Duration {
	want := req.TargetLatency
	if want <= 0 {
		want = e.Target
	}
	return planner.TierKey(want)
}

// tierInfo builds the tier record a served response carries.
func (e *FleetEntry) tierInfo(target time.Duration, p *Plan, cacheHit, downgraded bool) *pipeline.TierInfo {
	cfg := e.System.Store.Man.Config
	return &pipeline.TierInfo{
		Target:     target,
		Fidelity:   p.Fidelity(cfg.Layers, cfg.Heads),
		CacheHit:   cacheHit,
		Downgraded: downgraded,
	}
}

// resolvedTier is the outcome of resolving one request (or one
// batch's tightest member) against a model's plan ladder.
type resolvedTier struct {
	entry *FleetEntry
	tier  time.Duration
	plan  *Plan
	// demoted reports that a congestion downgrade actually landed one
	// rung coarser — false when the request already rode the coarsest
	// cached tier, so responses never claim a demotion that didn't
	// happen.
	demoted  bool
	cacheHit bool // resolved on the first attempt, without planning
}

// info builds the tier record responses carry.
func (r resolvedTier) info() *pipeline.TierInfo {
	return r.entry.tierInfo(r.tier, r.plan, r.cacheHit, r.demoted)
}

// resolveForServe is the resolve-or-plan loop shared by Serve and
// ServeBatch: under the read lock it picks the tier-selecting request
// via pick (which may consult the entry's default target), resolves
// its effective target to the tightest cached tier that meets it, and
// applies a congestion demotion one rung down the cached ladder. A
// cache miss releases the lock, plans and warms the missing tier
// under the write lock, and retries — bounded, so a replan storm
// evicting freshly planned tiers degrades into an error instead of a
// livelock.
//
// On success the read lock is HELD so the resolved plan cannot be
// swapped mid-execution: the caller must f.mu.RUnlock() when done
// with it. On error the lock is released.
func (f *Fleet) resolveForServe(name string, pick func(*FleetEntry) Request) (resolvedTier, error) {
	const maxAttempts = 3
	for attempt := 0; ; attempt++ {
		f.mu.RLock()
		e, err := f.entryForServe(name)
		if err != nil {
			f.mu.RUnlock()
			return resolvedTier{}, err
		}
		req := pick(e)
		want := e.effectiveTarget(req)
		tier, plan, ok := e.cache.Resolve(want)
		if ok {
			r := resolvedTier{entry: e, tier: tier, plan: plan, cacheHit: attempt == 0}
			if req.Downgraded {
				if below, coarser, okBelow := e.cache.ResolveBelow(tier); okBelow {
					r.tier, r.plan, r.demoted = below, coarser, true
				}
			}
			return r, nil
		}
		f.mu.RUnlock()
		if attempt+1 >= maxAttempts {
			return resolvedTier{}, fmt.Errorf("sti: model %q: plan tier %v evicted before serving (%d attempts)",
				name, want, attempt+1)
		}
		f.mu.Lock()
		err = f.planTierLocked(name, want)
		f.mu.Unlock()
		if err != nil {
			return resolvedTier{}, err
		}
	}
}

// Serve runs one task-typed request (classify or generate) on the
// named model — the fleet's primary entry point. The request's
// TargetLatency (0 = the model default) is resolved to the tightest
// cached plan tier that meets it; an off-ladder SLO plans and warms a
// new tier on the miss (LRU-bounded per model), and the response's
// Tier records the target, fidelity and cache outcome that actually
// served it. Concurrent Serve calls proceed in parallel; a concurrent
// Replan blocks until they drain. Cancelling ctx aborts the shard
// stream between layers and a generate decode between tokens.
//
// The read lock — which a Replan must wait out — is held only for the
// plan's one shard-stream pass, never for a generate's many decode
// steps: the decode runs on the materialized submodel, which is
// immutable and needs no synchronization with replans, so one long
// generation cannot stall budget changes (or, behind a pending
// writer, every other model's traffic).
func (f *Fleet) Serve(ctx context.Context, name string, req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	r, err := f.resolveForServe(name, func(*FleetEntry) Request { return req })
	if err != nil {
		return nil, err
	}
	// resolveForServe returned with the read lock held. The locked
	// stretch runs inside a closure whose defer releases it even if
	// the engine panics on a poisoned request — a leaked read lock
	// would wedge the next replan and, behind that pending writer,
	// every model's traffic.
	info := r.info()

	if req.Task != TaskGenerate {
		resp, err := func() (*Response, error) {
			defer f.mu.RUnlock()
			return r.entry.System.Run(ctx, r.plan, req)
		}()
		if resp != nil {
			resp.Tier = info
		}
		return resp, err
	}
	sm, stream, err := func() (*model.Submodel, *ExecStats, error) {
		defer f.mu.RUnlock()
		return r.entry.System.Engine.Materialize(ctx, r.plan)
	}()
	if err != nil {
		return nil, err
	}
	resp, err := pipeline.DecodeGenerate(ctx, sm, stream, req)
	if resp != nil {
		resp.Tier = info
	}
	return resp, err
}

// ServeBatch runs one batched classify on the named model: the model's
// shard stream is read and decompressed once and fanned out across all
// requests, so per-request IO is 1/len(reqs) of sequential Serve
// calls. Per-request logits are byte-identical to separate Serves.
// The batch executes on one plan tier — the tightest member's SLO
// resolved against the ladder, so no request is served past its
// target — and every response's Tier records it. Every request must
// be TaskClassify: generate decodes are stateful per sequence and run
// singly through Serve.
func (f *Fleet) ServeBatch(ctx context.Context, name string, reqs []Request) ([]*Response, *BatchStats, error) {
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("sti: ServeBatch with no requests")
	}
	inputs := make([]BatchInput, len(reqs))
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, nil, fmt.Errorf("sti: ServeBatch request %d: %w", i, err)
		}
		if r.Task != TaskClassify {
			return nil, nil, fmt.Errorf("sti: ServeBatch request %d has task %v; only classify batches", i, r.Task)
		}
		inputs[i] = BatchInput{Tokens: r.Tokens, Mask: r.Mask}
	}
	// The whole batch rides one stream, so it executes on the tier of
	// its tightest member (the min effective target meets every SLO),
	// and is demoted only when *every* member was downgraded — a mixed
	// batch must not serve undemoted requests a rung coarser than they
	// asked for. (The scheduler's accumulator only groups jobs of one
	// SLO class, so its batches are always homogeneous.)
	r, err := f.resolveForServe(name, func(e *FleetEntry) Request {
		tightest := reqs[0]
		for _, req := range reqs[1:] {
			if e.effectiveTarget(req) < e.effectiveTarget(tightest) {
				tightest = req
			}
		}
		for _, req := range reqs {
			if !req.Downgraded {
				tightest.Downgraded = false
				break
			}
		}
		return tightest
	})
	if err != nil {
		return nil, nil, err
	}
	// resolveForServe returned with the read lock held.
	defer f.mu.RUnlock()
	logits, bs, err := r.entry.System.Engine.ExecuteBatch(ctx, r.plan, inputs)
	if err != nil {
		return nil, nil, err
	}
	info := r.info() // one tier served the whole batch
	resps := make([]*Response, len(logits))
	for i := range logits {
		resps[i] = &Response{Logits: logits[i], Stats: &bs.ExecStats, Tier: info}
	}
	return resps, bs, nil
}

// Infer runs one pipelined classification on the named model using its
// current plan.
//
// Deprecated: Infer is the positional classify-only API; use Serve
// with a task-typed Request.
func (f *Fleet) Infer(name string, tokens []int, mask []bool) ([]float32, *ExecStats, error) {
	resp, err := f.Serve(context.Background(), name, Request{Task: TaskClassify, Tokens: tokens, Mask: mask})
	if err != nil {
		return nil, nil, err
	}
	return resp.Logits, resp.Stats, nil
}

// InferBatch runs one batched pipelined classification on the named
// model.
//
// Deprecated: InferBatch is the positional classify-only API; use
// ServeBatch with task-typed Requests.
func (f *Fleet) InferBatch(name string, inputs []BatchInput) ([][]float32, *BatchStats, error) {
	reqs := make([]Request, len(inputs))
	for i, in := range inputs {
		reqs[i] = Request{Task: TaskClassify, Tokens: in.Tokens, Mask: in.Mask}
	}
	resps, bs, err := f.ServeBatch(context.Background(), name, reqs)
	if err != nil {
		return nil, nil, err
	}
	logits := make([][]float32, len(resps))
	for i, r := range resps {
		logits[i] = r.Logits
	}
	return logits, bs, nil
}

// PreloadBytes reports the total preload memory currently held across
// all managed engines.
func (f *Fleet) PreloadBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int64
	for _, e := range f.entries {
		total += e.System.Engine.CacheBytes()
	}
	return total
}
