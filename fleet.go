package sti

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sti/internal/pipeline"
	"sti/internal/planner"
	"sti/internal/predict"
	"sti/internal/replica"
	"sti/internal/store"
)

// Fleet manages several expected models at once — the paper's
// multi-model setting (§2.1: co-running apps invoke separate fine-tuned
// instances per task; §3.2: "For each expected model, STI plans a
// separate execution pipeline with separate preload model shards").
//
// The fleet owns one total preload-memory budget and splits it across
// models in proportion to their expected engagement weights, replanning
// each model's pipeline whenever the budget or membership changes —
// exactly the replanning rule of §3.2 (only T or |S| changes require
// replanning).
//
// Each managed model is served by an elastic pool of replica engines
// (internal/replica): N pipeline engines, each with its own preload
// buffer carved from the model's grant (Budget/N), dispatched
// least-loaded. All replicas of a model stream shard payloads through
// one single-flight cache (store.SharedCache), so concurrent replicas
// executing the same plan cost ~1× flash IO. SetReplicas provisions
// the pool; Pressure lets a scheduler's queue-pressure signal scale it
// up under congestion and drain it when idle.
//
// A Fleet is safe for concurrent use: Serve calls run in parallel
// (including on the same model), while Add, Remove, SetBudget and
// Replan take exclusive ownership — an in-flight replan quiesces
// inference so a plan is never swapped out from under an execution.
type Fleet struct {
	mu      sync.RWMutex
	budget  int64
	entries map[string]*FleetEntry

	// predictor, when non-nil, is the fleet's predictive subsystem
	// (internal/predict): arrival and shard-access observations train
	// it and its actuators prefetch, speculatively warm, and advise
	// scale-ups. An atomic pointer so the serving-path taps
	// (ObserveArrival, the per-engine access observers) load it
	// lock-free. See EnablePrediction.
	predictor atomic.Pointer[predict.Predictor]
}

// PlanTier is one rung of a model's plan ladder: an executable plan at
// a graduated latency target. Tiers ascend by target; a larger target
// buys a higher-fidelity plan.
type PlanTier struct {
	Target time.Duration
	Plan   *Plan
}

// FleetEntry is one managed model with its planning inputs and current
// plan ladder. The snapshot returned by Entry is immutable; the
// fleet's live entry is updated by Replan.
type FleetEntry struct {
	System *System
	Target time.Duration // default latency target (requests with TargetLatency 0)
	Weight float64       // expected engagement share (relative)

	Budget int64 // preload bytes granted to this model by the last Replan
	// Plan is the default tier's plan — what a request with no
	// TargetLatency of its own is served by.
	Plan *Plan
	// Tiers snapshots the entry's plan ladder (pinned graduated tiers
	// plus any tiers planned on demand for off-ladder SLOs), ascending
	// by target. Populated on Entry snapshots only.
	Tiers []PlanTier
	// Replicas is the model's live replica count. Populated on Entry
	// snapshots only.
	Replicas int

	// cache is the live tier ladder: pinned graduated targets rebuilt
	// by every replan plus an LRU-bounded set of on-demand tiers.
	cache *planner.PlanCache

	// pool is the model's elastic replica set: N pipeline engines, each
	// holding a per-replica slice (Budget/N) of the model grant, with
	// least-loaded dispatch. Replica 0 is System.Engine.
	pool *replica.Pool
	// shared is the model's single-flight payload cache — every replica
	// streams shards through it, so K replicas executing the same plan
	// cost ~1× flash IO.
	shared *store.SharedCache
}

// tierCacheLimit bounds how many on-demand (off-ladder) plan tiers one
// model may cache beyond its pinned ladder.
const tierCacheLimit = 8

// sharedRetainBytes bounds each model's single-flight payload cache:
// beyond coalescing truly concurrent reads, completed payloads are
// retained LRU up to this many bytes so replicas whose layer streams
// run a few layers apart still dedupe their flash IO.
const sharedRetainBytes = 1 << 20

// NewFleet creates a fleet with a total preload budget in bytes.
func NewFleet(totalPreloadBudget int64) *Fleet {
	return &Fleet{budget: totalPreloadBudget, entries: make(map[string]*FleetEntry)}
}

// Add registers a model under a name. target is the model's *default*
// latency target — the tier requests ride when they carry no
// TargetLatency of their own; per-request SLOs resolve against a
// ladder of plans at graduated targets around it. Weight must be
// positive; call Replan afterwards to allocate budgets and build the
// ladders.
func (f *Fleet) Add(name string, sys *System, target time.Duration, weight float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.entries[name]; ok {
		return fmt.Errorf("sti: fleet already has model %q", name)
	}
	if weight <= 0 {
		return fmt.Errorf("sti: non-positive weight %v for %q", weight, name)
	}
	shared := store.NewSharedCache(sys.Store, sharedRetainBytes)
	sys.Engine.SetPayloadSource(shared)
	pool, err := replica.New(func(id int) (*pipeline.Engine, error) {
		if id == 0 {
			if f.predictor.Load() != nil {
				sys.Engine.SetAccessObserver(f.accessObserver(name))
			}
			return sys.Engine, nil
		}
		// Later replicas share the loaded resident weights (read-only
		// during execution) and the single-flight cache; each owns its
		// own preload buffer, granted by the next replan.
		eng := pipeline.NewReplicaEngine(sys.Store, sys.Engine.Resident, shared, 0)
		if f.predictor.Load() != nil {
			eng.SetAccessObserver(f.accessObserver(name))
		}
		return eng, nil
	}, replica.Options{Min: 1, Max: 1})
	if err != nil {
		return fmt.Errorf("sti: building replica pool for %q: %w", name, err)
	}
	f.entries[name] = &FleetEntry{
		System: sys, Target: target, Weight: weight,
		cache:  planner.NewPlanCache(tierCacheLimit),
		pool:   pool,
		shared: shared,
	}
	return nil
}

// SetReplicas provisions a model's replica pool: n engines serve the
// model immediately (each granted Budget/n preload bytes once planned)
// and n becomes the pool's elastic ceiling — queue pressure can regrow
// a drained pool up to it, idleness can shrink it back toward the
// pool's Min floor (1 unless raised via ConfigureReplicas).
// Call before Replan for a fresh model, or any time after: the model's
// plan ladder is restaged under the new per-replica grant.
func (f *Fleet) SetReplicas(name string, n int) error {
	if n < 1 {
		return fmt.Errorf("sti: SetReplicas(%q, %d): need at least one replica", name, n)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[name]
	if !ok {
		return fmt.Errorf("sti: fleet has no model %q", name)
	}
	// Raise the ceiling without stomping a Min floor the operator set
	// via ConfigureReplicas (clamped to n — a floor above the ceiling
	// is meaningless).
	min, _ := e.pool.Limits()
	if min > n {
		min = n
	}
	e.pool.SetLimits(min, n)
	//sti:lockok quiesce-and-swap: provisioning holds the write lock across replica teardown/warm so no reader sees a half-scaled pool
	return f.scaleEntryLocked(name, e, n)
}

// ConfigureReplicas overrides a model's replica-pool tuning (bounds,
// drain wait, pressure thresholds). Zero-valued fields keep their
// current setting, so tuning one knob never resets the others — in
// particular, it never collapses a SetReplicas ceiling.
func (f *Fleet) ConfigureReplicas(name string, opts ReplicaOptions) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[name]
	if !ok {
		return fmt.Errorf("sti: fleet has no model %q", name)
	}
	e.pool.Configure(opts)
	return nil
}

// SetSharedCacheRetain bounds a model's single-flight payload cache:
// beyond coalescing concurrent reads it retains up to bytes of
// completed payloads (LRU) as the cross-replica dedup window. 0 keeps
// pure single-flight coalescing only. The default is sharedRetainBytes
// (1 MiB) per model — dedup memory distinct from (and reported
// separately to) the preload budget, via ShardCacheStats.RetainedBytes.
func (f *Fleet) SetSharedCacheRetain(name string, bytes int64) error {
	f.mu.RLock()
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("sti: fleet has no model %q", name)
	}
	e.shared.SetRetain(bytes)
	return nil
}

// SetPeerFetch installs (or, with nil, removes) the peer level on one
// model's shared cache: a demand miss consults fn — wired by
// internal/cluster to the peers holding the model — before touching
// flash. The fetch runs inside the cache's single flight, outside
// every fleet and cache lock.
func (f *Fleet) SetPeerFetch(name string, fn store.PeerFetch) error {
	f.mu.RLock()
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return fmt.Errorf("sti: fleet has no model %q", name)
	}
	e.shared.SetPeerFetch(fn)
	return nil
}

// PeekShardPayload reports a shard payload retained in one model's
// shared cache without any flash IO or retention churn — the donor
// side of the cluster peer-cache level. ok is false when the model is
// unknown or the payload is not currently retained.
func (f *Fleet) PeekShardPayload(name string, layer, slice, bits int) ([]byte, bool) {
	f.mu.RLock()
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return e.shared.Peek(layer, slice, bits)
}

// Replicas returns a model's live replica count.
func (f *Fleet) Replicas(name string) (int, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return 0, false
	}
	return e.pool.Size(), true
}

// ReplicaStats snapshots a model's replica pool.
func (f *Fleet) ReplicaStats(name string) (replica.PoolStats, bool) {
	f.mu.RLock()
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return replica.PoolStats{}, false
	}
	return e.pool.Stats(), true
}

// SharedCacheStats snapshots a model's single-flight payload cache.
func (f *Fleet) SharedCacheStats(name string) (store.CacheStats, bool) {
	f.mu.RLock()
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return store.CacheStats{}, false
	}
	return e.shared.Stats(), true
}

// Pressure consumes the scheduler's queue-pressure signal for one
// model: depth and capacity of its admission queue at an observation.
// Past the pool's high-water mark an extra replica is brought up (to
// the SetReplicas ceiling); after a sustained idle stretch one is
// drained — its in-flight work finishes, then its preload bytes are
// reclaimed and re-granted to the survivors. Scaling runs on a
// background goroutine behind the fleet's write lock, and the entry
// lookup itself only try-locks, so Pressure never blocks the serving
// path — an observation arriving while a replan or scale holds the
// fleet is simply dropped (the signal is advisory and periodic).
func (f *Fleet) Pressure(name string, depth, capacity int) {
	if !f.mu.TryRLock() {
		return
	}
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return
	}
	delta := e.pool.Advise(depth, capacity)
	if delta == 0 || !e.pool.BeginScale() {
		return
	}
	go func() {
		defer e.pool.EndScale()
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.entries[name] != e {
			return // model removed or replaced while we queued for the lock
		}
		// Best-effort: a failed elastic scale leaves the pool at its
		// previous size, and re-arms the cooldown so sustained pressure
		// retries at Cooldown pace — not on every observation, each of
		// which would stall serving behind this write lock.
		//sti:lockok quiesce-and-swap: elastic scaling runs on its own goroutine and holds the write lock across the resize deliberately; Cooldown bounds how often serving pays this
		if err := f.scaleEntryLocked(name, e, e.pool.Size()+delta); err != nil {
			e.pool.NoteScaleFailure()
		}
	}()
}

// scaleEntryLocked resizes one model's pool and restages its plan
// ladder under the new per-replica grant (§3.2's budget arbitration,
// extended per-replica). The ladder is staged against the target size
// BEFORE the pool is touched — a planning failure must leave both the
// pool and the committed ladder exactly as they were, never a resized
// pool whose cached plans assume the old buffer slices. f.mu must be
// held for writing — no new work can be admitted, so a scale-down's
// drain only has to wait out already-running generate streams (their
// acquisitions are held to the terminal token; classify work never
// outlives the read lock), bounded by the pool's DrainWait.
func (f *Fleet) scaleEntryLocked(name string, e *FleetEntry, n int) error {
	n = e.pool.Clamp(n)
	if e.Plan == nil {
		// Not planned yet; just provision — the first Replan arbitrates.
		if err := e.pool.ScaleTo(n); err != nil {
			return fmt.Errorf("sti: scaling %q: %w", name, err)
		}
		return nil
	}
	targets, ladder, err := f.stageLadderLocked(name, e, replica.PerReplica(e.Budget, n))
	if err != nil {
		return err
	}
	// Resize (membership only — the single warm happens in the commit's
	// Apply, never twice), then commit the staged ladder. If the warm
	// fails, undo the resize too: pool size and committed ladder must
	// agree, whichever way the scale ends, and the rollback warm runs
	// once, at the restored size.
	prev := e.pool.Size()
	if _, err := e.pool.Resize(n); err != nil {
		return fmt.Errorf("sti: scaling %q: %w", name, err)
	}
	if err := f.commitLadderLocked(name, e, targets, ladder); err != nil {
		if _, backErr := e.pool.Resize(prev); backErr == nil {
			_ = e.pool.Apply(e.Budget, e.cache.Plans()) // restore the committed ladder's warm set
		}
		return err
	}
	return nil
}

// replanEntryLocked restages one model's plan ladder under its current
// grant and replica count; a warming failure rolls the pool back onto
// the committed ladder.
func (f *Fleet) replanEntryLocked(name string, e *FleetEntry) error {
	targets, ladder, err := f.stageLadderLocked(name, e, replica.PerReplica(e.Budget, e.pool.Size()))
	if err != nil {
		return err
	}
	if err := f.commitLadderLocked(name, e, targets, ladder); err != nil {
		_ = e.pool.Apply(e.Budget, e.cache.Plans()) // best-effort rollback
		return err
	}
	return nil
}

// stageLadderLocked plans one model's graduated tier ladder against a
// per-replica buffer slice, without side effects.
func (f *Fleet) stageLadderLocked(name string, e *FleetEntry, per int64) ([]time.Duration, []*Plan, error) {
	targets := planner.Ladder(e.Target)
	ladder := make([]*Plan, 0, len(targets))
	for _, target := range targets {
		plan, err := e.System.Plan(target, per)
		if err != nil {
			return nil, nil, fmt.Errorf("sti: replanning %q tier %v: %w", name, target, err)
		}
		ladder = append(ladder, plan)
	}
	return targets, ladder, nil
}

// commitLadderLocked warms the pool with a staged ladder and, on
// success, commits it as the model's pinned tiers. It does NOT roll
// back on failure — each caller restores the consistent prior state
// itself (replanEntry re-applies the committed ladder; scaleEntry
// additionally undoes the resize first, so the rollback warm runs once
// at the right pool size).
func (f *Fleet) commitLadderLocked(name string, e *FleetEntry, targets []time.Duration, ladder []*Plan) error {
	if err := e.pool.Apply(e.Budget, ladder); err != nil {
		return fmt.Errorf("sti: warming %q: %w", name, err)
	}
	e.cache.Clear()
	def := planner.TierKey(e.Target)
	for i, target := range targets {
		e.cache.Pin(target, ladder[i])
		if target == def {
			e.Plan = ladder[i]
		}
	}
	return nil
}

// Remove drops a model and immediately rebalances the fleet: the
// removed model's engine releases every preloaded byte it held (its
// budget drops to zero, evicting the cache), and the survivors are
// replanned under their regrown shares — so PreloadBytes reflects the
// new grants the moment Remove returns, instead of leaving sibling
// grants stale and the removed engine's shards warm until someone
// happens to call Replan. Removing an unknown name is a no-op.
func (f *Fleet) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	e, ok := f.entries[name]
	if !ok {
		return nil
	}
	delete(f.entries, name)
	//sti:lockok quiesce-and-swap: the removed pool must finish draining before survivors are replanned under regrown grants
	e.pool.Retire()
	e.shared.Drop() // retained dedup payloads go with the model
	//sti:lockok quiesce-and-swap: rebalancing warms survivor engines under the write lock so PreloadBytes is consistent the moment Remove returns
	if err := f.replanLocked(); err != nil {
		return fmt.Errorf("sti: replanning after removing %q: %w", name, err)
	}
	return nil
}

// Entry returns a snapshot of the managed entry for a model name,
// including the current plan ladder in Tiers.
func (f *Fleet) Entry(name string) (*FleetEntry, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return nil, false
	}
	snap := *e
	targets, plans := e.cache.Entries()
	snap.Tiers = make([]PlanTier, len(targets))
	for i := range targets {
		snap.Tiers[i] = PlanTier{Target: targets[i], Plan: plans[i]}
	}
	snap.Replicas = e.pool.Size()
	return &snap, true
}

// Target returns the latency target of a managed model.
func (f *Fleet) Target(name string) (time.Duration, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	e, ok := f.entries[name]
	if !ok {
		return 0, false
	}
	return e.Target, true
}

// Names lists managed models in a stable order.
func (f *Fleet) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.namesLocked()
}

func (f *Fleet) namesLocked() []string {
	names := make([]string, 0, len(f.entries))
	for n := range f.entries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SetBudget changes the fleet-wide preload budget (e.g. on OS memory
// pressure) and replans every pipeline.
func (f *Fleet) SetBudget(budget int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = budget
	//sti:lockok quiesce-and-swap: a budget change must not race admission; the warm IO runs under the write lock so no request decodes against a half-evicted buffer
	return f.replanLocked()
}

// Budget returns the fleet-wide preload budget.
func (f *Fleet) Budget() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.budget
}

// Replan splits the budget across models proportionally to their
// weights, plans each model's pipeline, resizes each engine's buffer,
// and warms it. In-flight Infer calls finish first; inference admitted
// afterwards sees the new plans.
func (f *Fleet) Replan() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	//sti:lockok quiesce-and-swap: Replan's contract is that in-flight Infer calls finish first and new admissions see the new plans; the write lock held across the warm IS that barrier
	return f.replanLocked()
}

// replanLocked replans the whole fleet atomically: every model's grant
// and plan *ladder* (graduated tier targets around its default, all
// sharing the model's one preload grant) is staged before any entry or
// engine is touched, so a planning failure for one model leaves every
// entry on its previous consistent ladder and budget (no partial
// commit whose grants no longer sum to f.budget). A warming failure
// rolls already-warmed engines back to their previous ladders
// (best-effort — the caches are a performance artifact, the entries
// stay untouched either way).
func (f *Fleet) replanLocked() error {
	var totalWeight float64
	for _, e := range f.entries {
		totalWeight += e.Weight
	}
	names := f.namesLocked()

	// Stage: compute all grants and tier ladders without side effects.
	// Each model's plans are built against its *per-replica* buffer
	// slice — the grant arbitration of §3.2 extended one level down, so
	// every replica's preload set fits the buffer it actually owns.
	grants := make([]int64, len(names))
	targets := make([][]time.Duration, len(names))
	ladders := make([][]*Plan, len(names))
	for i, name := range names {
		e := f.entries[name]
		grants[i] = int64(float64(f.budget) * e.Weight / totalWeight)
		per := replica.PerReplica(grants[i], e.pool.Size())
		targets[i] = planner.Ladder(e.Target)
		for _, target := range targets[i] {
			plan, err := e.System.Plan(target, per)
			if err != nil {
				return fmt.Errorf("sti: replanning %q tier %v: %w", name, target, err)
			}
			ladders[i] = append(ladders[i], plan)
		}
	}

	// Warm every model's replica pool under its new grant — each
	// replica gets its slice of the grant and warms the bottom-up union
	// of the ladder's preload sets. On failure, restore the pools
	// already touched to their committed ladders.
	for i, name := range names {
		e := f.entries[name]
		if err := e.pool.Apply(grants[i], ladders[i]); err != nil {
			for k := i; k >= 0; k-- {
				prev := f.entries[names[k]]
				_ = prev.pool.Apply(prev.Budget, prev.cache.Plans())
			}
			return fmt.Errorf("sti: warming %q: %w", name, err)
		}
	}

	// Commit: every tier planned and every engine warmed. The old
	// ladder (including on-demand tiers, which were planned under the
	// old grants) is dropped; the new graduated tiers are pinned.
	for i, name := range names {
		e := f.entries[name]
		e.Budget = grants[i]
		e.cache.Clear()
		def := planner.TierKey(e.Target)
		for j, target := range targets[i] {
			e.cache.Pin(target, ladders[i][j])
			if target == def {
				e.Plan = ladders[i][j]
			}
		}
	}
	return nil
}

// planTierLocked plans and warms one on-demand tier for an off-ladder
// SLO, caching it LRU-bounded. Callers hold the write lock (a tier
// plan is a replan-class mutation: it resizes the shared warm set).
func (f *Fleet) planTierLocked(name string, want time.Duration) error {
	e, err := f.entryForServe(name)
	if err != nil {
		return err
	}
	if _, _, ok := e.cache.Resolve(want); ok {
		return nil // another miss raced us here and already planned it
	}
	plan, err := e.System.Plan(want, replica.PerReplica(e.Budget, e.pool.Size()))
	if err != nil {
		return fmt.Errorf("sti: planning tier %v for %q: %w", want, name, err)
	}
	// Warm first, cache second (the same stage-then-commit rule as
	// replanLocked): a tier whose warm failed must not sit in the
	// cache masquerading as served-and-warmed. Every replica's buffer
	// absorbs the new tier's preload set.
	if err := e.pool.Warm(append(e.cache.Plans(), plan)); err != nil {
		return fmt.Errorf("sti: warming tier %v for %q: %w", want, name, err)
	}
	e.cache.Put(want, plan)
	return nil
}

// entryForServe snapshots a planned entry under the read lock.
func (f *Fleet) entryForServe(name string) (*FleetEntry, error) {
	e, ok := f.entries[name]
	if !ok {
		return nil, fmt.Errorf("sti: fleet has no model %q", name)
	}
	if e.Plan == nil {
		return nil, fmt.Errorf("sti: model %q not planned; call Replan", name)
	}
	return e, nil
}

// effectiveTarget resolves a request's SLO against the entry: zero
// falls back to the model default.
func (e *FleetEntry) effectiveTarget(req Request) time.Duration {
	want := req.TargetLatency
	if want <= 0 {
		want = e.Target
	}
	return planner.TierKey(want)
}

// tierInfo builds the tier record a served response carries.
func (e *FleetEntry) tierInfo(target time.Duration, p *Plan, cacheHit, downgraded bool) *pipeline.TierInfo {
	cfg := e.System.Store.Man.Config
	return &pipeline.TierInfo{
		Target:     target,
		Fidelity:   p.Fidelity(cfg.Layers, cfg.Heads),
		CacheHit:   cacheHit,
		Downgraded: downgraded,
	}
}

// resolvedTier is the outcome of resolving one request (or one
// batch's tightest member) against a model's plan ladder.
type resolvedTier struct {
	entry *FleetEntry
	tier  time.Duration
	plan  *Plan
	// demoted reports that a congestion downgrade actually landed one
	// rung coarser — false when the request already rode the coarsest
	// cached tier, so responses never claim a demotion that didn't
	// happen.
	demoted  bool
	cacheHit bool // resolved on the first attempt, without planning
}

// info builds the tier record responses carry.
func (r resolvedTier) info() *pipeline.TierInfo {
	return r.entry.tierInfo(r.tier, r.plan, r.cacheHit, r.demoted)
}

// resolveForServe is the resolve-or-plan loop shared by Serve and
// ServeBatch: under the read lock it picks the tier-selecting request
// via pick (which may consult the entry's default target), resolves
// its effective target to the tightest cached tier that meets it, and
// applies a congestion demotion one rung down the cached ladder. A
// cache miss releases the lock, plans and warms the missing tier
// under the write lock, and retries — bounded, so a replan storm
// evicting freshly planned tiers degrades into an error instead of a
// livelock.
//
// On success the read lock is HELD so the resolved plan cannot be
// swapped mid-execution: the caller must f.mu.RUnlock() when done
// with it. On error the lock is released.
func (f *Fleet) resolveForServe(name string, pick func(*FleetEntry) Request) (resolvedTier, error) {
	const maxAttempts = 3
	for attempt := 0; ; attempt++ {
		f.mu.RLock()
		e, err := f.entryForServe(name)
		if err != nil {
			f.mu.RUnlock()
			return resolvedTier{}, err
		}
		req := pick(e)
		want := e.effectiveTarget(req)
		tier, plan, ok := e.cache.Resolve(want)
		if ok {
			r := resolvedTier{entry: e, tier: tier, plan: plan, cacheHit: attempt == 0}
			if req.Downgraded {
				if below, coarser, okBelow := e.cache.ResolveBelow(tier); okBelow {
					r.tier, r.plan, r.demoted = below, coarser, true
				}
			}
			return r, nil
		}
		f.mu.RUnlock()
		if attempt+1 >= maxAttempts {
			return resolvedTier{}, fmt.Errorf("sti: model %q: plan tier %v evicted before serving (%d attempts)",
				name, want, attempt+1)
		}
		f.mu.Lock()
		//sti:lockok quiesce-and-swap: restaging an evicted tier warms the engine under the write lock so the retry loop cannot observe another half-staged ladder
		err = f.planTierLocked(name, want)
		f.mu.Unlock()
		if err != nil {
			return resolvedTier{}, err
		}
	}
}

// Serve runs one task-typed request (classify or generate) on the
// named model — the fleet's primary entry point. The request's
// TargetLatency (0 = the model default) is resolved to the tightest
// cached plan tier that meets it; an off-ladder SLO plans and warms a
// new tier on the miss (LRU-bounded per model), and the response's
// Tier records the target, fidelity and cache outcome that actually
// served it. Concurrent Serve calls proceed in parallel; a concurrent
// Replan blocks until they drain. Cancelling ctx aborts the shard
// stream between layers and a generate decode between tokens.
//
// The read lock — which a Replan must wait out — is held only long
// enough to enqueue the work, never for a generate's many decode
// steps: a generate request joins the acquired replica's
// continuous-batching step loop (one batched forward per step across
// every in-flight stream, over the plan's once-materialized immutable
// submodel), so one long generation cannot stall budget changes (or,
// behind a pending writer, every other model's traffic).
func (f *Fleet) Serve(ctx context.Context, name string, req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	r, err := f.resolveForServe(name, func(*FleetEntry) Request { return req })
	if err != nil {
		return nil, err
	}
	// resolveForServe returned with the read lock held. The locked
	// stretch runs inside a closure whose defer releases it even if
	// the engine panics on a poisoned request — a leaked read lock
	// would wedge the next replan and, behind that pending writer,
	// every model's traffic. The request executes on the least-loaded
	// replica of the model's pool; the replica is released before the
	// read lock (defer order), so whenever a writer holds the fleet no
	// replica has work in flight and scale-downs drain instantly.
	info := r.info()

	if req.Task != TaskGenerate {
		resp, err := func() (*Response, error) {
			defer f.mu.RUnlock()
			rep, err := r.entry.pool.Acquire()
			if err != nil {
				return nil, err
			}
			served := 0
			defer func() { r.entry.pool.Release(rep, served) }()
			resp, err := rep.Engine.Run(ctx, r.plan, req)
			if err == nil {
				served = 1
			}
			return resp, err
		}()
		if resp != nil {
			resp.Tier = info
		}
		return resp, err
	}
	// Generate joins the acquired replica's continuous-batching step
	// loop: Submit only enqueues (the loop admits between decode steps
	// and shares one batched forward — and one shard stream per plan —
	// across every in-flight sequence), so the read lock is released
	// the moment the stream is queued. The replica acquisition, by
	// contrast, is held until the stream's terminal result: it is what
	// makes least-loaded dispatch count live decodes and what a
	// scale-down's drain waits on, so a draining replica never has its
	// batcher closed under an active stream.
	var rep *replica.Replica
	ch, err := func() (<-chan pipeline.StreamResult, error) {
		defer f.mu.RUnlock()
		var err error
		rep, err = r.entry.pool.Acquire()
		if err != nil {
			return nil, err
		}
		ch, err := rep.Batcher.Submit(ctx, r.plan, req)
		if err != nil {
			r.entry.pool.Release(rep, 0)
			return nil, err
		}
		return ch, nil
	}()
	if err != nil {
		return nil, err
	}
	out := <-ch
	served := 0
	if out.Resp != nil {
		served = 1 // partial decodes served tokens too
	}
	r.entry.pool.Release(rep, served)
	if out.Resp != nil {
		out.Resp.Tier = info
	}
	return out.Resp, out.Err
}

// GenerateStats aggregates a model's continuous-batching step loops
// (one per replica) into a single snapshot.
func (f *Fleet) GenerateStats(name string) (pipeline.StepLoopStats, bool) {
	f.mu.RLock()
	e, ok := f.entries[name]
	f.mu.RUnlock()
	if !ok {
		return pipeline.StepLoopStats{}, false
	}
	return e.pool.GenStats(), true
}

// ServeBatch runs one batched classify on the named model: the model's
// shard stream is read and decompressed once and fanned out across all
// requests, so per-request IO is 1/len(reqs) of sequential Serve
// calls. Per-request logits are byte-identical to separate Serves.
// The batch executes on one plan tier — the tightest member's SLO
// resolved against the ladder, so no request is served past its
// target — and every response's Tier records it. Every request must
// be TaskClassify: generate decodes are stateful per sequence and run
// singly through Serve.
func (f *Fleet) ServeBatch(ctx context.Context, name string, reqs []Request) ([]*Response, *BatchStats, error) {
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("sti: ServeBatch with no requests")
	}
	inputs := make([]BatchInput, len(reqs))
	for i, r := range reqs {
		if err := r.Validate(); err != nil {
			return nil, nil, fmt.Errorf("sti: ServeBatch request %d: %w", i, err)
		}
		if r.Task != TaskClassify {
			return nil, nil, fmt.Errorf("sti: ServeBatch request %d has task %v; only classify batches", i, r.Task)
		}
		inputs[i] = BatchInput{Tokens: r.Tokens, Mask: r.Mask}
	}
	// The whole batch rides one stream, so it executes on the tier of
	// its tightest member (the min effective target meets every SLO),
	// and is demoted only when *every* member was downgraded — a mixed
	// batch must not serve undemoted requests a rung coarser than they
	// asked for. (The scheduler's accumulator only groups jobs of one
	// SLO class, so its batches are always homogeneous.)
	r, err := f.resolveForServe(name, func(e *FleetEntry) Request {
		tightest := reqs[0]
		for _, req := range reqs[1:] {
			if e.effectiveTarget(req) < e.effectiveTarget(tightest) {
				tightest = req
			}
		}
		for _, req := range reqs {
			if !req.Downgraded {
				tightest.Downgraded = false
				break
			}
		}
		return tightest
	})
	if err != nil {
		return nil, nil, err
	}
	// resolveForServe returned with the read lock held. The whole
	// batch rides one replica — its single shared IO/decompress stream
	// is the point — released before the read lock (defer order).
	defer f.mu.RUnlock()
	rep, err := r.entry.pool.Acquire()
	if err != nil {
		return nil, nil, err
	}
	served := 0
	defer func() { r.entry.pool.Release(rep, served) }()
	logits, bs, err := rep.Engine.ExecuteBatch(ctx, r.plan, inputs)
	if err != nil {
		return nil, nil, err
	}
	served = len(inputs)
	info := r.info() // one tier served the whole batch
	resps := make([]*Response, len(logits))
	for i := range logits {
		resps[i] = &Response{Logits: logits[i], Stats: &bs.ExecStats, Tier: info}
	}
	return resps, bs, nil
}

// Infer runs one pipelined classification on the named model using its
// current plan.
//
// Deprecated: Infer is the positional classify-only API; use Serve
// with a task-typed Request.
//
//sti:ctxok deprecated compatibility shim; Serve(ctx, ...) is the context-threading API
func (f *Fleet) Infer(name string, tokens []int, mask []bool) ([]float32, *ExecStats, error) {
	resp, err := f.Serve(context.Background(), name, Request{Task: TaskClassify, Tokens: tokens, Mask: mask})
	if err != nil {
		return nil, nil, err
	}
	return resp.Logits, resp.Stats, nil
}

// InferBatch runs one batched pipelined classification on the named
// model.
//
// Deprecated: InferBatch is the positional classify-only API; use
// ServeBatch with task-typed Requests.
//
//sti:ctxok deprecated compatibility shim; ServeBatch(ctx, ...) is the context-threading API
func (f *Fleet) InferBatch(name string, inputs []BatchInput) ([][]float32, *BatchStats, error) {
	reqs := make([]Request, len(inputs))
	for i, in := range inputs {
		reqs[i] = Request{Task: TaskClassify, Tokens: in.Tokens, Mask: in.Mask}
	}
	resps, bs, err := f.ServeBatch(context.Background(), name, reqs)
	if err != nil {
		return nil, nil, err
	}
	logits := make([][]float32, len(resps))
	for i, r := range resps {
		logits[i] = r.Logits
	}
	return logits, bs, nil
}

// PreloadBytes reports the total preload memory currently held across
// all managed engines — every replica of every model.
func (f *Fleet) PreloadBytes() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var total int64
	for _, e := range f.entries {
		total += e.pool.CacheBytes()
	}
	return total
}
