package sti_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"sti"
)

func fleetSystem(t *testing.T, seed int64) *sti.System {
	t.Helper()
	dir := t.TempDir()
	w := sti.NewRandomModel(sti.TinyConfig(), seed)
	if _, err := sti.Preprocess(dir, w, []int{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	sys, err := sti.Load(dir, sti.Odroid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFleetSplitsBudgetByWeight(t *testing.T) {
	f := sti.NewFleet(300 << 10)
	if err := f.Add("sentiment", fleetSystem(t, 1), 200*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("nextword", fleetSystem(t, 2), 150*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	a, _ := f.Entry("sentiment")
	b, _ := f.Entry("nextword")
	if a.Budget != 200<<10 || b.Budget != 100<<10 {
		t.Fatalf("budget split %d/%d, want 2:1 of 300KB", a.Budget, b.Budget)
	}
	if a.Plan == nil || b.Plan == nil {
		t.Fatal("models not planned")
	}
	if a.Plan.PreloadUsed > a.Budget || b.Plan.PreloadUsed > b.Budget {
		t.Fatal("plans exceed granted budgets")
	}
}

func TestFleetInferBothModels(t *testing.T) {
	f := sti.NewFleet(200 << 10)
	if err := f.Add("m1", fleetSystem(t, 3), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("m2", fleetSystem(t, 4), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	for _, name := range f.Names() {
		logits, stats, err := f.Infer(name, []int{1, 5, 6, 2}, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(logits) != sti.TinyConfig().Classes || stats == nil {
			t.Fatalf("%s: bad inference result", name)
		}
	}
	if _, _, err := f.Infer("absent", []int{1}, nil); err == nil {
		t.Fatal("unknown model must error")
	}
}

func TestFleetMemoryPressureShrink(t *testing.T) {
	f := sti.NewFleet(400 << 10)
	if err := f.Add("m", fleetSystem(t, 5), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	before := f.PreloadBytes()
	if before == 0 {
		t.Fatal("nothing warmed at the large budget")
	}
	// OS pressure: shrink well below current holdings; held bytes must
	// drop under the new budget.
	newBudget := before / 2
	if err := f.SetBudget(newBudget); err != nil {
		t.Fatal(err)
	}
	if f.PreloadBytes() > newBudget {
		t.Fatalf("fleet holds %d bytes over the reduced budget %d", f.PreloadBytes(), newBudget)
	}
	// Inference still works with the smaller plan.
	if _, _, err := f.Infer("m", []int{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFleetValidation(t *testing.T) {
	f := sti.NewFleet(1 << 20)
	sys := fleetSystem(t, 6)
	if err := f.Add("dup", sys, time.Second, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("dup", sys, time.Second, 1); err == nil {
		t.Fatal("duplicate name must error")
	}
	if err := f.Add("bad", sys, time.Second, 0); err == nil {
		t.Fatal("zero weight must error")
	}
	if _, _, err := f.Infer("dup", []int{1}, nil); err == nil {
		t.Fatal("inference before Replan must error")
	}
	f.Remove("dup")
	if _, ok := f.Entry("dup"); ok {
		t.Fatal("Remove did not remove")
	}
}

func TestFleetRemoveThenReplanRedistributes(t *testing.T) {
	f := sti.NewFleet(200 << 10)
	if err := f.Add("keep", fleetSystem(t, 7), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("drop", fleetSystem(t, 8), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	before, _ := f.Entry("keep")
	if before.Budget != 100<<10 {
		t.Fatalf("keep granted %d, want half of 200KB", before.Budget)
	}
	f.Remove("drop")
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	after, _ := f.Entry("keep")
	if after.Budget != 200<<10 {
		t.Fatalf("keep granted %d after Remove, want the whole 200KB", after.Budget)
	}
	if _, _, err := f.Infer("drop", []int{1}, nil); err == nil {
		t.Fatal("removed model must not serve")
	}
	if _, _, err := f.Infer("keep", []int{1, 2}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFleetTarget(t *testing.T) {
	f := sti.NewFleet(100 << 10)
	if err := f.Add("m", fleetSystem(t, 9), 150*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if target, ok := f.Target("m"); !ok || target != 150*time.Millisecond {
		t.Fatalf("Target = %v, %v", target, ok)
	}
	if _, ok := f.Target("absent"); ok {
		t.Fatal("unknown model must not have a target")
	}
}

func TestFleetShrinkThenGrowRewarm(t *testing.T) {
	f := sti.NewFleet(400 << 10)
	if err := f.Add("m", fleetSystem(t, 10), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	large := f.PreloadBytes()
	if err := f.SetBudget(large / 4); err != nil {
		t.Fatal(err)
	}
	shrunk := f.PreloadBytes()
	if shrunk > large/4 {
		t.Fatalf("holds %d over the shrunk budget %d", shrunk, large/4)
	}
	// Growing back re-warms toward the original working set.
	if err := f.SetBudget(400 << 10); err != nil {
		t.Fatal(err)
	}
	if regrown := f.PreloadBytes(); regrown <= shrunk {
		t.Fatalf("budget growth did not re-warm: %d <= %d", regrown, shrunk)
	}
	if _, _, err := f.Infer("m", []int{3, 2, 1}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFleetReplanFailureIsAtomic is the regression for the partial-
// commit bug: when planning one model fails mid-replan, models that
// were already processed must keep their previous plans and budgets —
// not a mix of new grants that no longer sums to the fleet budget.
func TestFleetReplanFailureIsAtomic(t *testing.T) {
	f := sti.NewFleet(200 << 10)
	// "alpha" sorts before "zz-bad", so the buggy in-place loop commits
	// alpha's new half-budget grant before zz-bad's planning fails.
	if err := f.Add("alpha", fleetSystem(t, 20), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	before, _ := f.Entry("alpha")
	if before.Budget != 200<<10 || before.Plan == nil {
		t.Fatalf("alpha not planned at full budget: %+v", before)
	}
	// A model whose target can never be planned (non-positive).
	if err := f.Add("zz-bad", fleetSystem(t, 21), 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err == nil {
		t.Fatal("replanning an unplannable model must fail")
	}
	after, _ := f.Entry("alpha")
	if after.Budget != before.Budget {
		t.Fatalf("failed replan changed alpha's budget: %d -> %d", before.Budget, after.Budget)
	}
	if after.Plan != before.Plan {
		t.Fatalf("failed replan swapped alpha's plan: %p -> %p", before.Plan, after.Plan)
	}
	// The fleet still serves on the committed plan.
	if _, _, err := f.Infer("alpha", []int{1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	// Dropping the bad model makes replanning whole again.
	f.Remove("zz-bad")
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetInferBatchMatchesInfer drives the batched path through the
// fleet: per-input logits must be byte-identical to sequential Infers
// and the shared stream's per-request IO must shrink with batch size.
func TestFleetInferBatchMatchesInfer(t *testing.T) {
	f := sti.NewFleet(0) // zero preload: every execution streams all IO
	if err := f.Add("m", fleetSystem(t, 22), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	inputs := []sti.BatchInput{
		{Tokens: []int{1, 9, 8, 7, 2}},
		{Tokens: []int{1, 5, 2}},
		{Tokens: []int{1, 2}},
		{Tokens: []int{1, 3, 3, 3, 2}},
	}
	var singleBytes int64
	single := make([][]float32, len(inputs))
	for i, in := range inputs {
		logits, stats, err := f.Infer("m", in.Tokens, in.Mask)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = logits
		singleBytes += stats.BytesRead
	}
	batched, bs, err := f.InferBatch("m", inputs)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Batch != len(inputs) {
		t.Fatalf("batch %d, want %d", bs.Batch, len(inputs))
	}
	for i := range inputs {
		for c := range single[i] {
			if batched[i][c] != single[i][c] {
				t.Fatalf("input %d logit %d: batched %v != single %v", i, c, batched[i][c], single[i][c])
			}
		}
	}
	if bs.BytesRead*int64(len(inputs)) != singleBytes {
		t.Fatalf("batch read %d bytes for %d inputs; sequential read %d — the stream must run once",
			bs.BytesRead, len(inputs), singleBytes)
	}
	if _, _, err := f.InferBatch("absent", inputs); err == nil {
		t.Fatal("unknown model must error")
	}
}

// TestFleetRemoveReleasesPreloadAndReplans is the regression for the
// stale-removal bug: Remove used to delete the entry but leave the
// removed engine's preload shards warm and the siblings' grants stale
// until someone happened to call Replan. Remove must release the
// removed engine's cached bytes and rebalance immediately, so
// PreloadBytes matches the surviving grants the moment it returns.
func TestFleetRemoveReleasesPreloadAndReplans(t *testing.T) {
	f := sti.NewFleet(200 << 10)
	keep, drop := fleetSystem(t, 30), fleetSystem(t, 31)
	if err := f.Add("keep", keep, 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("drop", drop, 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	if drop.Engine.CacheBytes() == 0 {
		t.Fatal("test premise broken: dropped model warmed nothing")
	}

	if err := f.Remove("drop"); err != nil {
		t.Fatal(err)
	}
	// The removed engine holds nothing.
	if got := drop.Engine.CacheBytes(); got != 0 {
		t.Fatalf("removed engine still holds %d preload bytes", got)
	}
	// The survivor was replanned under the whole budget, without an
	// explicit Replan call.
	e, ok := f.Entry("keep")
	if !ok || e.Budget != 200<<10 {
		t.Fatalf("survivor grant %d, want the whole 200KB", e.Budget)
	}
	if e.Plan == nil || e.Plan.PreloadUsed > e.Budget {
		t.Fatalf("survivor plan %+v inconsistent with grant %d", e.Plan, e.Budget)
	}
	// PreloadBytes now reflects exactly the new grants: only the
	// survivor's engine holds bytes, within its grant.
	if got := f.PreloadBytes(); got != keep.Engine.CacheBytes() || got > e.Budget {
		t.Fatalf("fleet holds %d bytes after removal; survivor holds %d under grant %d",
			got, keep.Engine.CacheBytes(), e.Budget)
	}
	// The survivor's warm set is the union of its tier ladder's
	// preloads: at least the default tier's set, never past the grant.
	if got := keep.Engine.CacheBytes(); got < e.Plan.PreloadUsed || got > e.Budget {
		t.Fatalf("survivor warmed %d bytes; default tier preloads %d under grant %d",
			got, e.Plan.PreloadUsed, e.Budget)
	}
	// Removing an unknown name stays a no-op.
	if err := f.Remove("absent"); err != nil {
		t.Fatal(err)
	}
}

// TestFleetServeTasks drives both tasks through the fleet's unified
// Serve entry point: classify matches the deprecated Infer adapter
// byte for byte, and generate decodes deterministically.
func TestFleetServeTasks(t *testing.T) {
	f := sti.NewFleet(100 << 10)
	if err := f.Add("m", fleetSystem(t, 32), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	tokens := []int{1, 5, 6, 2}
	resp, err := f.Serve(context.Background(), "m", sti.Request{Task: sti.TaskClassify, Tokens: tokens})
	if err != nil {
		t.Fatal(err)
	}
	legacy, _, err := f.Infer("m", tokens, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range legacy {
		if resp.Logits[i] != legacy[i] {
			t.Fatalf("Serve logits %v != Infer logits %v", resp.Logits, legacy)
		}
	}

	var streamed []int
	gresp, err := f.Serve(context.Background(), "m", sti.Request{
		Task: sti.TaskGenerate, Tokens: []int{1, 9}, MaxNewTokens: 4,
		OnToken: func(step, token int) { streamed = append(streamed, token) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if gresp.Gen == nil || gresp.Gen.NewTokens != 4 || len(gresp.GeneratedTokens) != 6 {
		t.Fatalf("generate response %+v", gresp)
	}
	if len(streamed) != 4 {
		t.Fatalf("OnToken streamed %d tokens, want 4", len(streamed))
	}
	// Generate on an unplanned or unknown model errors like classify.
	if _, err := f.Serve(context.Background(), "absent", sti.Request{Task: sti.TaskGenerate, Tokens: []int{1}}); err == nil {
		t.Fatal("unknown model must error")
	}
	// ServeBatch refuses generate requests — decodes are stateful and
	// run singly.
	if _, _, err := f.ServeBatch(context.Background(), "m", []sti.Request{
		{Task: sti.TaskGenerate, Tokens: []int{1}},
	}); err == nil {
		t.Fatal("ServeBatch must reject generate requests")
	}
}

// TestFleetConcurrentInferAndReplan races parallel inference on two
// models against budget replans; run under -race this validates the
// fleet's quiesce-and-swap locking.
func TestFleetConcurrentInferAndReplan(t *testing.T) {
	f := sti.NewFleet(300 << 10)
	if err := f.Add("a", fleetSystem(t, 11), 200*time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	if err := f.Add("b", fleetSystem(t, 12), 200*time.Millisecond, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Replan(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := "a"
			if c%2 == 1 {
				name = "b"
			}
			for i := 0; i < 5; i++ {
				if _, _, err := f.Infer(name, []int{1, 2, 3}, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, budget := range []int64{150 << 10, 300 << 10} {
			if err := f.SetBudget(budget); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
