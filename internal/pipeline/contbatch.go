package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sti/internal/model"
	"sti/internal/obs"
	"sti/internal/planner"
)

// Continuous batching for generation (ROADMAP item 1): instead of each
// generate request running its own decode loop, a per-model Batcher
// owns one step loop that admits new requests between decode steps,
// runs a single batched forward per step across every in-flight
// sequence (model.StepLogits over ragged per-sequence positions), and
// retires finished sequences without stalling the rest — the
// iteration-level scheduling of Orca/vLLM, applied to STI's elastic
// submodels. Each plan's shard stream is materialized once — off the
// loop goroutine, so admitting a cold plan never stalls in-flight
// decodes — and shared by every stream riding it, so flash bytes per
// step do not scale with stream count; KV state lives in paged blocks
// charged against the engine's §3.2 grant, with best-effort streams
// preempted (KV evicted, resumable via recompute) before any tiered
// stream is starved.
//
// The loop goroutine never runs caller code and never blocks on a
// caller: OnToken callbacks fire from a per-stream emitter goroutine
// fed by a bounded token buffer, so one slow token consumer stalls
// only its own stream (which skips steps while its buffer is full),
// never the step loop or the other sequences.

// ErrBatcherClosed is returned for streams rejected or cut off because
// the batcher shut down.
var ErrBatcherClosed = errors.New("pipeline: batcher closed")

// ErrKVBudget fails a stream the KV budget cannot serve: either it
// cannot reserve its first page with nothing held anywhere, or the
// loop has been starved with zero progress for kvStarveFailPolls and
// this was the newest starved stream — shedding it lets the rest make
// progress instead of every stream hanging to its deadline.
var ErrKVBudget = errors.New("pipeline: kv budget exhausted")

// DefaultMaxStreams bounds a batcher's concurrently decoding sequences
// when BatcherOptions leaves MaxStreams zero.
const DefaultMaxStreams = 64

// DefaultTokenBuffer is the per-stream token buffer depth when
// BatcherOptions leaves TokenBuffer zero: how many decoded-but-not-yet
// -delivered tokens a stream may accumulate before the loop stops
// advancing it.
const DefaultTokenBuffer = 1024

// Starvation escape thresholds, in consecutive zero-progress polls of
// the 1ms starvation loop. After kvStarvePreemptPolls a KV-starved
// stream may preempt a holder of its own priority class (normally
// tiered never preempts tiered and best-effort preempts nobody);
// after kvStarveFailPolls with still no progress the newest starved
// stream is failed with ErrKVBudget so the rest can move.
const (
	kvStarvePreemptPolls = 10
	kvStarveFailPolls    = 100
)

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// MaxStreams caps concurrently decoding sequences; admissions
	// beyond it queue until a stream retires. <= 0 means
	// DefaultMaxStreams.
	MaxStreams int
	// BlockTokens is the KV page size in positions; <= 0 means
	// model.DefaultBlockTokens.
	BlockTokens int
	// TokenBuffer bounds each stream's decoded-but-undelivered tokens:
	// the step loop stops advancing a stream whose OnToken consumer
	// has fallen this many tokens behind, and resumes when the
	// consumer catches up. <= 0 means DefaultTokenBuffer.
	TokenBuffer int
}

// StreamResult is the single terminal outcome of one submitted stream,
// delivered on the channel Submit returns. Mirrors the
// (Response, error) contract of ExecuteGenerate: a cancelled stream
// carries its partial Response alongside ctx.Err().
type StreamResult struct {
	Resp *Response
	Err  error
}

// StepLoopStats is a point-in-time snapshot of a batcher's step loop.
type StepLoopStats struct {
	// Steps counts batched forwards executed; StepSequences sums their
	// batch sizes, so AvgStreamsPerStep = StepSequences/Steps is the
	// decode amortization factor.
	Steps             uint64  `json:"gen_steps"`
	StepSequences     uint64  `json:"gen_step_sequences"`
	AvgStreamsPerStep float64 `json:"gen_avg_streams_per_step"`

	Streams     int `json:"gen_streams"`      // decoding right now
	PeakStreams int `json:"gen_peak_streams"` // high-water mark
	Pending     int `json:"gen_pending"`      // admitted queue depth
	MaxStreams  int `json:"gen_max_streams"`

	Admitted  uint64 `json:"gen_admitted"`
	Finished  uint64 `json:"gen_finished"`
	Cancelled uint64 `json:"gen_cancelled"`
	// Preempted counts streams whose KV was evicted under budget
	// pressure (best-effort victims, plus same-class victims under
	// sustained starvation); RecomputedTokens the tokens replayed to
	// restore evicted KV on readmission.
	Preempted        uint64 `json:"gen_preempted"`
	RecomputedTokens uint64 `json:"gen_recomputed_tokens"`
	TokensOut        uint64 `json:"gen_tokens_out"`
	// KVBytes is the paged KV cache held live by this batcher, charged
	// against the engine's preload grant.
	KVBytes int64 `json:"gen_kv_bytes"`
}

// emitEvent is one unit of a stream's delivery queue: a decoded token
// for OnToken, or the stream's terminal result (final non-nil), which
// is always the last event.
type emitEvent struct {
	step, token int
	final       *StreamResult
}

// stream is one in-flight generate request's decode state. seq is the
// full decoded sequence (prompt + generated); consumed counts tokens
// fed through the decoder, so consumed == len(seq) is the emission
// point — exactly the loop head of DecodeGenerate. A preempted stream
// keeps seq and NewTokens but resets consumed to 0 over a fresh
// decoder: greedy decode is deterministic, so the replay regenerates
// identical KV bytes, and emission never repeats because it only
// happens at consumed == len(seq).
//
// emit, when non-nil (OnToken set), is the stream's bounded delivery
// queue, drained by its own emitter goroutine; the loop is its only
// sender and never sends a token unless at least two slots are free,
// so the terminal event always fits without blocking.
type stream struct {
	ctx  context.Context
	req  Request
	plan *planner.Plan
	res  chan StreamResult

	gen  *GenStats
	resp *Response

	emit chan emitEvent

	emitMu  sync.Mutex
	emitErr error

	dec         *model.Decoder
	seq         []int
	consumed    int
	logits      []float32
	decodeStart time.Time
	admitSeq    uint64

	// Tracing state. tr is the request's trace (nil when tracing is
	// off); spans are recorded only on the loop goroutine outside
	// b.mu — admission (which runs under the lock) just stashes
	// timestamps here and recordAdmitted flushes them at the next step.
	tr       *obs.Trace
	steps    obs.StepBuckets // decode-step aggregation; zero value no-ops
	parked   time.Time       // parked on a materializing plan
	kvWait   time.Time       // first failed KV reserve of the current stint
	matSpans []obs.Span      // materialize-stream spans owed to this rider
	pend     bool            // admission span work waiting for recordAdmitted
}

// recordAdmitted flushes span work stashed at admission: the
// materialize-wait interval, the adopted materialize-stream spans (for
// the one rider that took the group's ExecStats), and the decode-step
// recorder. It runs on the loop goroutine with no lock held.
func (s *stream) recordAdmitted() {
	if !s.pend {
		return
	}
	s.pend = false
	if s.tr == nil {
		s.matSpans = nil
		return
	}
	root := s.tr.Root()
	if !s.parked.IsZero() {
		s.tr.Interval(root, obs.SpanMatWait, "", s.parked, s.decodeStart)
		s.parked = time.Time{}
	}
	if s.matSpans != nil {
		s.tr.AdoptIntervals(root, s.matSpans)
		s.matSpans = nil
	}
	s.steps = obs.NewStepBuckets(s.tr, root)
}

func (s *stream) finishTotal() {
	s.gen.Total = s.gen.Stream.Total
	if !s.decodeStart.IsZero() {
		s.gen.Total += time.Since(s.decodeStart)
	}
}

// emitFailure returns the error a panicking OnToken left behind, if
// any. The loop checks it each step and retires the stream with it.
func (s *stream) emitFailure() error {
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	return s.emitErr
}

// emitter drains one stream's delivery queue: OnToken per token event,
// then the terminal result — so every token a caller will ever see via
// OnToken has been delivered before the terminal StreamResult lands.
// Caller code runs only here, never on the loop goroutine: a slow or
// panicking callback stalls (or fails) this stream alone. Once the
// stream's ctx is done or a callback panicked, remaining token events
// are dropped — the consumer is gone — and only the terminal result is
// delivered.
func (s *stream) emitter() {
	failed := false
	for ev := range s.emit {
		if ev.final != nil {
			s.res <- *ev.final
			return
		}
		if failed || s.ctx.Err() != nil {
			continue
		}
		if err := callOnToken(s.req.OnToken, ev.step, ev.token); err != nil {
			failed = true
			s.emitMu.Lock()
			s.emitErr = err
			s.emitMu.Unlock()
		}
	}
}

// planGroup is the per-plan share of a batcher: the submodel its shard
// stream materialized once, ridden by every stream decoding that plan.
// Materialization runs off the loop goroutine; streams arriving before
// it completes park in waiters and are admitted when it finishes.
type planGroup struct {
	plan          *planner.Plan
	sm            *model.Submodel
	es            *ExecStats // one-time stream cost; first admitted rider takes it
	matSpans      []obs.Span // the stream's trace spans; same rider adopts them
	matErr        error
	materializing bool
	waiters       []*stream
	streams       []*stream
}

// Batcher is a per-model continuous-batching step loop over one
// engine. Submit enqueues a generate request; the loop admits it
// between decode steps and delivers its terminal StreamResult when it
// finishes, is cancelled, or fails.
type Batcher struct {
	eng   *Engine
	alloc *model.BlockAllocator

	// matCtx bounds plan materializations; Close cancels it so
	// in-flight shard streams stop promptly.
	matCtx    context.Context
	matCancel context.CancelFunc

	mu         sync.Mutex
	cond       *sync.Cond
	pending    []*stream
	maxStreams int
	tokenBuf   int
	closed     bool

	// Owned by the loop goroutine; never touched elsewhere.
	groups       map[*planner.Plan]*planGroup
	active       int
	starvedPolls int
	// inStep is stepOnce's per-group reservation scratch, reused across
	// steps so the hot loop does not allocate a map per plan group.
	inStep map[*stream]bool

	// Counters, under mu.
	nSteps      uint64
	nStepSeqs   uint64
	nAdmitted   uint64
	nFinished   uint64
	nCancelled  uint64
	nPreempted  uint64
	nRecomputed uint64
	nTokens     uint64
	peak        int

	loopDone chan struct{}
}

// NewBatcher starts a step loop over the engine. The engine itself is
// the KV charger: paged blocks and preload shards arbitrate for one
// §3.2 grant.
func NewBatcher(eng *Engine, opt BatcherOptions) *Batcher {
	if opt.MaxStreams <= 0 {
		opt.MaxStreams = DefaultMaxStreams
	}
	if opt.TokenBuffer <= 0 {
		opt.TokenBuffer = DefaultTokenBuffer
	}
	b := &Batcher{
		eng:        eng,
		alloc:      model.NewBlockAllocator(eng, opt.BlockTokens),
		maxStreams: opt.MaxStreams,
		tokenBuf:   opt.TokenBuffer,
		groups:     make(map[*planner.Plan]*planGroup),
		inStep:     make(map[*stream]bool),
		loopDone:   make(chan struct{}),
	}
	b.matCtx, b.matCancel = context.WithCancel(context.Background())
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// SetMaxStreams resizes the concurrency cap; lowering it below the
// live count stops admissions but evicts nothing.
func (b *Batcher) SetMaxStreams(n int) {
	if n <= 0 {
		n = DefaultMaxStreams
	}
	b.mu.Lock()
	b.maxStreams = n
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Submit enqueues a generate request for the plan and returns the
// channel its single terminal StreamResult will arrive on. The request
// joins the step loop at the next inter-step admission point; OnToken
// fires from the stream's own emitter goroutine as tokens decode, and
// every token event is delivered before the terminal result.
// Cancelling ctx retires the stream within one step, freeing its KV
// blocks, and delivers the partial Response with ctx.Err() — the
// ExecuteGenerate contract.
func (b *Batcher) Submit(ctx context.Context, p *planner.Plan, req Request) (<-chan StreamResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Task != TaskGenerate {
		return nil, fmt.Errorf("pipeline: batcher submit with task %v", req.Task)
	}
	if p == nil {
		return nil, fmt.Errorf("pipeline: batcher submit with nil plan")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gen := &GenStats{PromptTokens: len(req.Tokens)}
	seq := append([]int(nil), req.Tokens...)
	s := &stream{
		ctx: ctx, req: req, plan: p,
		res:  make(chan StreamResult, 1),
		gen:  gen,
		resp: &Response{Gen: gen, Stats: &gen.Stream, GeneratedTokens: seq},
		seq:  seq,
		tr:   obs.FromContext(ctx),
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBatcherClosed
	}
	if req.OnToken != nil {
		// Buffer TokenBuffer tokens plus one slot the loop keeps free
		// for the terminal event, so delivery never blocks the loop.
		s.emit = make(chan emitEvent, b.tokenBuf+1)
		go s.emitter()
	}
	b.pending = append(b.pending, s)
	b.cond.Broadcast()
	b.mu.Unlock()
	return s.res, nil
}

// deliver hands a stream its terminal result. Streams with an emitter
// route it through the delivery queue — behind any still-undelivered
// token events, so OnToken ordering is preserved — using the slot the
// loop always keeps free; bare streams get it directly on the result
// channel (capacity 1). Never blocks.
func (b *Batcher) deliver(s *stream, r StreamResult) {
	if s.emit != nil {
		s.emit <- emitEvent{final: &r}
		return
	}
	s.res <- r
}

// Close shuts the loop down: pending and in-flight streams are failed
// with ErrBatcherClosed (in-flight ones deliver their partial
// Response), KV blocks are freed, in-flight materializations are
// cancelled, and the loop goroutine exits before Close returns.
// Callers drain in-flight work first (replica pools already do, via
// their drain protocol).
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.loopDone
		return
	}
	b.closed = true
	b.matCancel()
	b.cond.Broadcast()
	b.mu.Unlock()
	<-b.loopDone
}

// Stats snapshots the step loop.
func (b *Batcher) Stats() StepLoopStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := StepLoopStats{
		Steps:            b.nSteps,
		StepSequences:    b.nStepSeqs,
		Streams:          b.active,
		PeakStreams:      b.peak,
		Pending:          len(b.pending),
		MaxStreams:       b.maxStreams,
		Admitted:         b.nAdmitted,
		Finished:         b.nFinished,
		Cancelled:        b.nCancelled,
		Preempted:        b.nPreempted,
		RecomputedTokens: b.nRecomputed,
		TokensOut:        b.nTokens,
		KVBytes:          b.alloc.LiveBytes(),
	}
	if st.Steps > 0 {
		st.AvgStreamsPerStep = float64(st.StepSequences) / float64(st.Steps)
	}
	return st
}

// KVBytes returns the live paged KV bytes held by this batcher.
func (b *Batcher) KVBytes() int64 { return b.alloc.LiveBytes() }

func (b *Batcher) loop() {
	defer close(b.loopDone)
	for {
		b.mu.Lock()
		for !b.closed && len(b.pending) == 0 && b.active == 0 {
			// Streams parked on a materializing plan don't hold the
			// loop awake: the materializer flushes them back to pending
			// and broadcasts when the submodel is ready.
			b.cond.Wait()
		}
		if b.closed {
			pending := b.pending
			b.pending = nil
			b.mu.Unlock()
			for _, s := range pending {
				b.deliver(s, StreamResult{Err: ErrBatcherClosed})
			}
			for _, g := range b.groups {
				// Waiters of a still-materializing group are failed by
				// the materializer when it observes closed.
				for _, s := range g.streams {
					s.dec.Release()
					s.finishTotal()
					b.deliver(s, StreamResult{Resp: s.resp, Err: ErrBatcherClosed})
				}
				g.streams = nil
			}
			return
		}
		culled := b.admitLocked()
		b.mu.Unlock()
		// Terminal results for streams culled during admission go out
		// after the lock drops: deliver is non-blocking by invariant
		// today, but nothing about admission needs it to happen under
		// b.mu, and sending there couples the lock to the delivery
		// queues' capacity story.
		for _, d := range culled {
			b.deliver(d.s, d.r)
		}

		// Yield once per step so waiting submitters get scheduled: on
		// a single-P runtime the compute-bound loop would otherwise
		// monopolize the CPU and decode whole streams serially —
		// admitting "between decode steps" has to include handing the
		// scheduler a chance to run the goroutines doing the admitting.
		runtime.Gosched()

		progress, starved := b.stepOnce(b.starvedPolls >= kvStarvePreemptPolls)
		switch {
		case progress:
			b.starvedPolls = 0
		case len(starved) > 0:
			// Every reservation failed and nothing was preemptable:
			// count the zero-progress poll, and once the loop has been
			// starved past the hard threshold shed the newest starved
			// stream so the budget can serve the rest (a lone stream
			// whose next page exceeds the whole grant sheds itself).
			b.starvedPolls++
			if b.starvedPolls >= kvStarveFailPolls {
				newest := 0
				for i, gs := range starved {
					if gs.s.admitSeq > starved[newest].s.admitSeq {
						newest = i
					}
				}
				b.retire(starved[newest].g, starved[newest].s, nil, ErrKVBudget, false)
				b.starvedPolls = 0
			}
		default:
			b.starvedPolls = 0
		}
		if !progress && b.liveStreams() > 0 {
			// Nothing could step this round: streams are KV-starved
			// (budget held elsewhere) or waiting on slow token
			// consumers. Poll until bytes or buffer space free up, or
			// contexts cancel.
			time.Sleep(time.Millisecond)
		}
	}
}

func (b *Batcher) liveStreams() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// delivery is a terminal result admitLocked owes a culled stream; the
// loop performs it after releasing b.mu.
type delivery struct {
	s *stream
	r StreamResult
}

// admitLocked moves pending streams into the step loop up to
// maxStreams. A stream for a plan with no materialized submodel parks
// as a waiter while a separate goroutine runs the one-time shard
// stream — the loop keeps decoding in-flight sequences through the IO
// pass — and is flushed back to pending when it completes. Cancelled
// pending streams and waiters are culled regardless of capacity; their
// terminal deliveries are returned for the caller to send once b.mu is
// released, so no channel send happens under the lock.
func (b *Batcher) admitLocked() []delivery {
	var culled []delivery
	// Cull cancelled waiters so a departed client is answered while
	// its plan's materialization is still in flight.
	for _, g := range b.groups {
		if len(g.waiters) == 0 {
			continue
		}
		kept := g.waiters[:0]
		for _, s := range g.waiters {
			if err := s.ctx.Err(); err != nil {
				s.finishTotal()
				b.nCancelled++
				culled = append(culled, delivery{s, StreamResult{Resp: s.resp, Err: err}})
				continue
			}
			kept = append(kept, s)
		}
		g.waiters = kept
	}
	work := b.pending
	b.pending = nil
	var kept []*stream
	for i, s := range work {
		if err := s.ctx.Err(); err != nil {
			s.finishTotal()
			b.nCancelled++
			culled = append(culled, delivery{s, StreamResult{Resp: s.resp, Err: err}})
			continue
		}
		if b.active >= b.maxStreams {
			kept = append(kept, work[i:]...)
			break
		}
		plan := s.plan
		g := b.groups[plan]
		if g == nil {
			// A new plan displaces idle groups (replans leave stale
			// plan pointers behind; their materialized submodels are
			// only worth keeping while streams ride them or the plan
			// may recur — keep the newest idle one as a warm cache).
			// Groups still materializing, or with parked waiters, are
			// not idle.
			for p, old := range b.groups {
				if p != plan && len(old.streams) == 0 && len(old.waiters) == 0 && !old.materializing {
					delete(b.groups, p)
				}
			}
			g = &planGroup{plan: plan}
			b.groups[plan] = g
		}
		if g.sm == nil {
			// Park until the submodel is ready. A previous attempt's
			// error was delivered to its waiters; this stream retries.
			if !g.materializing {
				g.matErr = nil
				g.materializing = true
				go b.materialize(g, s.tr != nil)
			}
			if s.parked.IsZero() {
				s.parked = time.Now()
			}
			g.waiters = append(g.waiters, s)
			continue
		}
		s.dec = model.NewPagedDecoder(g.sm, b.alloc)
		s.decodeStart = time.Now()
		if g.es != nil {
			// The one-time shard stream's cost lands on exactly one
			// rider — the cohort pays a single materialization.
			s.gen.Stream = *g.es
			s.resp.Stats = &s.gen.Stream
			g.es = nil
			s.matSpans = g.matSpans
			g.matSpans = nil
		}
		// Span recording happens on the loop goroutine outside b.mu
		// (recordAdmitted); admission only flags the stashed state.
		s.pend = true
		g.streams = append(g.streams, s)
		b.active++
		b.nAdmitted++
		s.admitSeq = b.nAdmitted
		if b.active > b.peak {
			b.peak = b.active
		}
	}
	// Leftovers keep their place ahead of anything Submit enqueued
	// while admission ran.
	b.pending = append(kept, b.pending...)
	return culled
}

// materialize runs one plan's shard stream off the loop goroutine and
// flushes the group's waiters back to the pending queue when the
// submodel is ready — the loop keeps decoding every in-flight sequence
// (and retiring cancelled ones) through the whole IO/decompress pass.
// On failure the waiters are failed with the error; on a batcher
// already closed, with ErrBatcherClosed.
func (b *Batcher) materialize(g *planGroup, traced bool) {
	// The materializer has no single request context (its cost is
	// shared by every waiter), so when the triggering stream was traced
	// it records into a detached trace whose spans — the materialize
	// interval plus the shard stream's per-layer IO spans — are adopted
	// by the rider that takes the group's ExecStats.
	ctx := b.matCtx
	var mtr *obs.Trace
	if traced {
		mtr = obs.NewTrace([16]byte{}, -1)
		ctx = obs.WithTrace(ctx, mtr)
	}
	matStart := time.Now()
	sm, es, err := b.eng.Materialize(ctx, g.plan)
	var matSpans []obs.Span
	if mtr != nil {
		mtr.Interval(mtr.Root(), obs.SpanMaterialize, "", matStart, time.Now())
		matSpans = mtr.Spans()
		mtr.Release()
	}
	b.mu.Lock()
	g.materializing = false
	waiters := g.waiters
	g.waiters = nil
	if b.closed {
		b.mu.Unlock()
		for _, s := range waiters {
			b.deliver(s, StreamResult{Err: ErrBatcherClosed})
		}
		return
	}
	if err != nil {
		g.matErr = err
		b.mu.Unlock()
		for _, s := range waiters {
			b.deliver(s, StreamResult{Err: err})
		}
		return
	}
	g.sm = sm
	g.es = es
	g.matSpans = matSpans
	// Waiters keep their place at the head of the queue; the loop may
	// be asleep with nothing else live, so wake it.
	b.pending = append(waiters, b.pending...)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// starvedStream records a stream that failed to reserve KV this step
// with nothing preemptable, and the group it belongs to.
type starvedStream struct {
	g *planGroup
	s *stream
}

// byTier orders tiered streams (Priority >= 0) ahead of best-effort
// ones. A named sort.Interface instead of sort.SliceStable keeps the
// per-step comparison closure off the heap in the hot loop.
type byTier []*stream

func (t byTier) Len() int           { return len(t) }
func (t byTier) Swap(i, j int)      { t[i], t[j] = t[j], t[i] }
func (t byTier) Less(i, j int) bool { return t[i].req.Priority >= 0 && t[j].req.Priority < 0 }

// stepOnce runs one iteration of the step loop: per plan group, retire
// cancelled streams, advance each live stream's DecodeGenerate state
// machine by one token (emit at the loop head, then feed), reserve KV
// for every participant — preempting best-effort KV (or, when the
// loop has been starved long enough, same-class KV) before letting a
// stream starve — and run one batched forward for the group. Reports
// whether any stream made progress, plus the streams left KV-starved.
func (b *Batcher) stepOnce(desperate bool) (bool, []starvedStream) {
	progress := false
	var starved []starvedStream
	for _, g := range b.groups {
		if len(g.streams) == 0 {
			continue
		}
		maxSeq := g.sm.Cfg.MaxSeq
		// Phase 1: advance each stream's emission state and collect the
		// ones that want to feed a token this step.
		var cands []*stream
		for _, s := range append([]*stream(nil), g.streams...) {
			// Flush span state stashed at admission before anything can
			// retire the stream — outside b.mu, on this goroutine only.
			s.recordAdmitted()
			// Mirrors DecodeGenerate's per-iteration ctx check: a
			// cancelled stream retires with its partial Response and
			// frees its KV blocks before the next forward.
			if err := s.ctx.Err(); err != nil {
				b.retire(g, s, s.resp, err, true)
				progress = true
				continue
			}
			// A panicked OnToken fails its stream alone; the loop never
			// ran the callback, the emitter just reports it.
			if err := s.emitFailure(); err != nil {
				b.retire(g, s, nil, err, false)
				progress = true
				continue
			}
			if s.consumed == len(s.seq) {
				// Emission point — the head of DecodeGenerate's decode
				// loop, byte for byte.
				if s.gen.NewTokens >= s.req.MaxNewTokens || len(s.seq) >= maxSeq {
					s.resp.Logits = s.logits
					b.retire(g, s, s.resp, nil, false)
					progress = true
					continue
				}
				if s.emit != nil && len(s.emit) >= cap(s.emit)-1 {
					// Token consumer has fallen TokenBuffer behind: park
					// the stream (skip its step; its KV stays) until the
					// emitter drains. Only the loop sends on emit, so
					// this check guarantees the send below cannot block
					// and one slot stays free for the terminal event.
					continue
				}
				best := 0
				for i, v := range s.logits {
					if v > s.logits[best] {
						best = i
					}
				}
				s.seq = append(s.seq, best)
				s.resp.GeneratedTokens = s.seq
				s.gen.NewTokens++
				b.mu.Lock()
				b.nTokens++
				b.mu.Unlock()
				if s.emit != nil {
					s.emit <- emitEvent{step: s.gen.NewTokens - 1, token: best}
				}
				if len(s.seq) >= maxSeq {
					s.resp.Logits = s.logits
					b.retire(g, s, s.resp, nil, false)
					progress = true
					continue
				}
			}
			if s.dec.Len() >= maxSeq {
				// Prompt longer than the model window; DecodeGenerate
				// surfaces the decoder's error the same way.
				b.retire(g, s, nil, fmt.Errorf("model: decoder exceeded MaxSeq %d", maxSeq), false)
				progress = true
				continue
			}
			cands = append(cands, s)
		}
		// Phase 2: reserve KV, tiered streams first — a tiered stream
		// may preempt a best-effort holder, and ordering the reserves
		// this way guarantees the victim has not yet joined this step
		// (preempting a stream already in parts would corrupt the
		// batch). inStep protects only streams committed to the
		// forward about to run.
		sort.Stable(byTier(cands))
		var parts []*stream
		var decs []*model.Decoder
		var toks []int
		clear(b.inStep)
		inStep := b.inStep
		for _, s := range cands {
			if !s.dec.Reserve() {
				if s.kvWait.IsZero() {
					s.kvWait = time.Now()
				}
				preStart := time.Now()
				if !b.preemptFor(s, inStep, desperate) {
					// Starved. A stream holding nothing, with no KV
					// anywhere to wait on, can never start — fail it;
					// otherwise record the starvation and retry after the
					// poll (the loop preempts same-class holders, then
					// sheds, if this persists).
					if s.dec.KVBytes() == 0 && b.alloc.LiveBytes() == 0 {
						b.retire(g, s, nil, ErrKVBudget, false)
						progress = true
					} else {
						starved = append(starved, starvedStream{g, s})
					}
					continue
				}
				s.tr.Interval(s.tr.Root(), obs.SpanKVPreempt, "", preStart, time.Now())
			}
			if !s.kvWait.IsZero() {
				// The stream's KV grant arrived after at least one
				// starved poll: record how long decode stalled on it.
				s.tr.Interval(s.tr.Root(), obs.SpanKVReserve, "", s.kvWait, time.Now())
				s.kvWait = time.Time{}
			}
			inStep[s] = true
			parts = append(parts, s)
			decs = append(decs, s.dec)
			toks = append(toks, s.seq[s.consumed])
		}
		if len(parts) == 0 {
			continue
		}
		stepStart := time.Now()
		logits, err := model.StepLogits(decs, toks)
		if err != nil {
			for _, s := range parts {
				b.retire(g, s, nil, err, false)
			}
			progress = true
			continue
		}
		stepEnd := time.Now()
		dur := stepEnd.Sub(stepStart)
		for i, s := range parts {
			s.logits = logits.Row(i)
			s.gen.StepCompute = append(s.gen.StepCompute, dur)
			s.steps.StepDone(len(s.gen.StepCompute)-1, stepStart, stepEnd)
			s.consumed++
		}
		b.mu.Lock()
		b.nSteps++
		b.nStepSeqs += uint64(len(parts))
		b.mu.Unlock()
		progress = true
	}
	return progress, starved
}

// preemptFor evicts other streams' KV to make room for a starved one:
// victims' pages are freed and their decode state rewinds to
// replay-from-zero — resumable because greedy decode recomputes
// identical KV bytes, and OnToken never re-fires because emission only
// happens once per position. A victim already stepping this round is
// never touched.
//
// Normally only best-effort (Priority<0) holders are preemptable, and
// only for tiered beneficiaries — evicting one best-effort stream for
// another just thrashes. When sameClass is set (the loop has been
// starved of all progress for kvStarvePreemptPolls), a beneficiary may
// also evict the largest holder of its own class, so a cohort that
// collectively exhausted the budget cannot livelock with every stream
// one page short. Best-effort beneficiaries never evict tiered
// holders. Victims are taken largest-KV-first, best-effort before
// tiered. Reports whether the reserve now succeeds.
func (b *Batcher) preemptFor(s *stream, inStep map[*stream]bool, sameClass bool) bool {
	tiered := s.req.Priority >= 0
	if !tiered && !sameClass {
		return false
	}
	for {
		var victim *stream
		var victimGroup *planGroup
		victimBest := false
		for _, g := range b.groups {
			for _, v := range g.streams {
				if v == s || inStep[v] || v.dec.KVBytes() == 0 {
					continue
				}
				vBest := v.req.Priority < 0
				if !vBest && !(tiered && sameClass) {
					continue
				}
				if victim == nil || (vBest && !victimBest) ||
					(vBest == victimBest && v.dec.KVBytes() > victim.dec.KVBytes()) {
					victim, victimGroup, victimBest = v, g, vBest
				}
			}
		}
		if victim == nil {
			return false
		}
		victim.dec.Release()
		victim.dec = model.NewPagedDecoder(victimGroup.sm, b.alloc)
		b.mu.Lock()
		b.nPreempted++
		b.nRecomputed += uint64(victim.consumed)
		b.mu.Unlock()
		victim.consumed = 0
		victim.logits = nil
		if s.dec.Reserve() {
			return true
		}
	}
}

func callOnToken(fn func(step, token int), step, token int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: OnToken panicked: %v", r)
		}
	}()
	fn(step, token)
	return nil
}

// retire removes a stream from its group, frees its KV pages, and
// delivers its terminal result exactly once (behind any undelivered
// token events, via the stream's emitter).
func (b *Batcher) retire(g *planGroup, s *stream, resp *Response, err error, cancelled bool) {
	s.steps.Flush()
	s.dec.Release()
	for i, v := range g.streams {
		if v == s {
			g.streams = append(g.streams[:i], g.streams[i+1:]...)
			break
		}
	}
	s.finishTotal()
	b.mu.Lock()
	b.active--
	if cancelled {
		b.nCancelled++
	} else if err == nil {
		b.nFinished++
	}
	b.mu.Unlock()
	b.deliver(s, StreamResult{Resp: resp, Err: err})
}
