package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"sti/internal/model"
	"sti/internal/planner"
)

// Continuous batching for generation (ROADMAP item 1): instead of each
// generate request running its own decode loop, a per-model Batcher
// owns one step loop that admits new requests between decode steps,
// runs a single batched forward per step across every in-flight
// sequence (model.StepLogits over ragged per-sequence positions), and
// retires finished sequences without stalling the rest — the
// iteration-level scheduling of Orca/vLLM, applied to STI's elastic
// submodels. Each plan's shard stream is materialized once and shared
// by every stream riding it, so flash bytes per step do not scale with
// stream count; KV state lives in paged blocks charged against the
// engine's §3.2 grant, with best-effort streams preempted (KV evicted,
// resumable via recompute) before any tiered stream is starved.

// ErrBatcherClosed is returned for streams rejected or cut off because
// the batcher shut down.
var ErrBatcherClosed = errors.New("pipeline: batcher closed")

// ErrKVBudget fails a tiered stream that cannot reserve even its first
// KV page with nothing left to preempt or wait for — the engine grant
// is too small to decode at all.
var ErrKVBudget = errors.New("pipeline: kv budget exhausted")

// DefaultMaxStreams bounds a batcher's concurrently decoding sequences
// when BatcherOptions leaves MaxStreams zero.
const DefaultMaxStreams = 64

// BatcherOptions configures a Batcher.
type BatcherOptions struct {
	// MaxStreams caps concurrently decoding sequences; admissions
	// beyond it queue until a stream retires. <= 0 means
	// DefaultMaxStreams.
	MaxStreams int
	// BlockTokens is the KV page size in positions; <= 0 means
	// model.DefaultBlockTokens.
	BlockTokens int
}

// StreamResult is the single terminal outcome of one submitted stream,
// delivered on the channel Submit returns. Mirrors the
// (Response, error) contract of ExecuteGenerate: a cancelled stream
// carries its partial Response alongside ctx.Err().
type StreamResult struct {
	Resp *Response
	Err  error
}

// StepLoopStats is a point-in-time snapshot of a batcher's step loop.
type StepLoopStats struct {
	// Steps counts batched forwards executed; StepSequences sums their
	// batch sizes, so AvgStreamsPerStep = StepSequences/Steps is the
	// decode amortization factor.
	Steps             uint64  `json:"gen_steps"`
	StepSequences     uint64  `json:"gen_step_sequences"`
	AvgStreamsPerStep float64 `json:"gen_avg_streams_per_step"`

	Streams     int `json:"gen_streams"`      // decoding right now
	PeakStreams int `json:"gen_peak_streams"` // high-water mark
	Pending     int `json:"gen_pending"`      // admitted queue depth
	MaxStreams  int `json:"gen_max_streams"`

	Admitted  uint64 `json:"gen_admitted"`
	Finished  uint64 `json:"gen_finished"`
	Cancelled uint64 `json:"gen_cancelled"`
	// Preempted counts best-effort streams whose KV was evicted under
	// budget pressure; RecomputedTokens the tokens replayed to restore
	// evicted KV on readmission.
	Preempted        uint64 `json:"gen_preempted"`
	RecomputedTokens uint64 `json:"gen_recomputed_tokens"`
	TokensOut        uint64 `json:"gen_tokens_out"`
	// KVBytes is the paged KV cache held live by this batcher, charged
	// against the engine's preload grant.
	KVBytes int64 `json:"gen_kv_bytes"`
}

// stream is one in-flight generate request's decode state. seq is the
// full decoded sequence (prompt + generated); consumed counts tokens
// fed through the decoder, so consumed == len(seq) is the emission
// point — exactly the loop head of DecodeGenerate. A preempted stream
// keeps seq and NewTokens but resets consumed to 0 over a fresh
// decoder: greedy decode is deterministic, so the replay regenerates
// identical KV bytes, and emission (OnToken) never repeats because it
// only happens at consumed == len(seq).
type stream struct {
	ctx  context.Context
	req  Request
	plan *planner.Plan
	res  chan StreamResult

	gen  *GenStats
	resp *Response

	dec         *model.Decoder
	seq         []int
	consumed    int
	logits      []float32
	decodeStart time.Time
}

func (s *stream) finishTotal() {
	s.gen.Total = s.gen.Stream.Total
	if !s.decodeStart.IsZero() {
		s.gen.Total += time.Since(s.decodeStart)
	}
}

// planGroup is the per-plan share of a batcher: the submodel its shard
// stream materialized once, ridden by every stream decoding that plan.
type planGroup struct {
	plan    *planner.Plan
	sm      *model.Submodel
	streams []*stream
}

// Batcher is a per-model continuous-batching step loop over one
// engine. Submit enqueues a generate request; the loop admits it
// between decode steps and delivers its terminal StreamResult when it
// finishes, is cancelled, or fails.
type Batcher struct {
	eng   *Engine
	alloc *model.BlockAllocator

	mu         sync.Mutex
	cond       *sync.Cond
	pending    []*stream
	maxStreams int
	closed     bool

	// Owned by the loop goroutine; never touched elsewhere.
	groups map[*planner.Plan]*planGroup
	active int

	// Counters, under mu.
	nSteps      uint64
	nStepSeqs   uint64
	nAdmitted   uint64
	nFinished   uint64
	nCancelled  uint64
	nPreempted  uint64
	nRecomputed uint64
	nTokens     uint64
	peak        int

	loopDone chan struct{}
}

// NewBatcher starts a step loop over the engine. The engine itself is
// the KV charger: paged blocks and preload shards arbitrate for one
// §3.2 grant.
func NewBatcher(eng *Engine, opt BatcherOptions) *Batcher {
	if opt.MaxStreams <= 0 {
		opt.MaxStreams = DefaultMaxStreams
	}
	b := &Batcher{
		eng:        eng,
		alloc:      model.NewBlockAllocator(eng, opt.BlockTokens),
		maxStreams: opt.MaxStreams,
		groups:     make(map[*planner.Plan]*planGroup),
		loopDone:   make(chan struct{}),
	}
	b.cond = sync.NewCond(&b.mu)
	go b.loop()
	return b
}

// SetMaxStreams resizes the concurrency cap; lowering it below the
// live count stops admissions but evicts nothing.
func (b *Batcher) SetMaxStreams(n int) {
	if n <= 0 {
		n = DefaultMaxStreams
	}
	b.mu.Lock()
	b.maxStreams = n
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Submit enqueues a generate request for the plan and returns the
// channel its single terminal StreamResult will arrive on. The request
// joins the step loop at the next inter-step admission point; OnToken
// fires from the loop as tokens decode. Cancelling ctx retires the
// stream within one step, freeing its KV blocks, and delivers the
// partial Response with ctx.Err() — the ExecuteGenerate contract.
func (b *Batcher) Submit(ctx context.Context, p *planner.Plan, req Request) (<-chan StreamResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Task != TaskGenerate {
		return nil, fmt.Errorf("pipeline: batcher submit with task %v", req.Task)
	}
	if p == nil {
		return nil, fmt.Errorf("pipeline: batcher submit with nil plan")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	gen := &GenStats{PromptTokens: len(req.Tokens)}
	seq := append([]int(nil), req.Tokens...)
	s := &stream{
		ctx: ctx, req: req, plan: p,
		res:  make(chan StreamResult, 1),
		gen:  gen,
		resp: &Response{Gen: gen, Stats: &gen.Stream, GeneratedTokens: seq},
		seq:  seq,
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBatcherClosed
	}
	b.pending = append(b.pending, s)
	b.cond.Broadcast()
	b.mu.Unlock()
	return s.res, nil
}

// Close shuts the loop down: pending and in-flight streams are failed
// with ErrBatcherClosed (in-flight ones deliver their partial
// Response), KV blocks are freed, and the loop goroutine exits before
// Close returns. Callers drain in-flight work first (replica pools
// already do, via their drain protocol).
func (b *Batcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.loopDone
		return
	}
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
	<-b.loopDone
}

// Stats snapshots the step loop.
func (b *Batcher) Stats() StepLoopStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := StepLoopStats{
		Steps:            b.nSteps,
		StepSequences:    b.nStepSeqs,
		Streams:          b.active,
		PeakStreams:      b.peak,
		Pending:          len(b.pending),
		MaxStreams:       b.maxStreams,
		Admitted:         b.nAdmitted,
		Finished:         b.nFinished,
		Cancelled:        b.nCancelled,
		Preempted:        b.nPreempted,
		RecomputedTokens: b.nRecomputed,
		TokensOut:        b.nTokens,
		KVBytes:          b.alloc.LiveBytes(),
	}
	if st.Steps > 0 {
		st.AvgStreamsPerStep = float64(st.StepSequences) / float64(st.Steps)
	}
	return st
}

// KVBytes returns the live paged KV bytes held by this batcher.
func (b *Batcher) KVBytes() int64 { return b.alloc.LiveBytes() }

func (b *Batcher) loop() {
	defer close(b.loopDone)
	for {
		b.mu.Lock()
		for !b.closed && len(b.pending) == 0 && b.active == 0 {
			b.cond.Wait()
		}
		if b.closed {
			pending := b.pending
			b.pending = nil
			b.mu.Unlock()
			for _, s := range pending {
				s.res <- StreamResult{Err: ErrBatcherClosed}
			}
			for _, g := range b.groups {
				for _, s := range g.streams {
					s.dec.Release()
					s.finishTotal()
					s.res <- StreamResult{Resp: s.resp, Err: ErrBatcherClosed}
				}
				g.streams = nil
			}
			return
		}
		b.admitLocked()
		b.mu.Unlock()

		// Yield once per step so waiting submitters get scheduled: on
		// a single-P runtime the compute-bound loop would otherwise
		// monopolize the CPU and decode whole streams serially —
		// admitting "between decode steps" has to include handing the
		// scheduler a chance to run the goroutines doing the admitting.
		runtime.Gosched()

		progress := b.stepOnce()
		if !progress && b.liveStreams() > 0 {
			// Every live stream is KV-starved: budget held elsewhere
			// (preload warming, another batcher's engine sharing the
			// host). Poll until bytes free up or contexts cancel.
			time.Sleep(time.Millisecond)
		}
	}
}

func (b *Batcher) liveStreams() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.active
}

// admitLocked moves pending streams into the step loop up to
// maxStreams, materializing each plan's shard stream once (the first
// rider pays — and records — the one-time IO; joiners ride for free).
// Cancelled pending streams are culled regardless of capacity. b.mu is
// held; materialization drops it (the shard stream is long and needs
// no batcher state).
func (b *Batcher) admitLocked() {
	// Detach the pending queue first: materialization below drops the
	// lock, and Submit must be free to append new arrivals meanwhile.
	work := b.pending
	b.pending = nil
	var kept []*stream
	for i, s := range work {
		if err := s.ctx.Err(); err != nil {
			s.finishTotal()
			b.nCancelled++
			s.res <- StreamResult{Resp: s.resp, Err: err}
			continue
		}
		if b.active >= b.maxStreams {
			kept = append(kept, work[i:]...)
			break
		}
		plan := s.plan
		g := b.groups[plan]
		if g == nil {
			// A new plan displaces idle groups (replans leave stale
			// plan pointers behind; their materialized submodels are
			// only worth keeping while streams ride them or the plan
			// may recur — keep the newest idle one as a warm cache).
			for p, old := range b.groups {
				if len(old.streams) == 0 && p != plan {
					delete(b.groups, p)
				}
			}
			g = &planGroup{plan: plan}
			b.groups[plan] = g
		}
		if g.sm == nil {
			b.mu.Unlock()
			sm, es, err := b.eng.Materialize(s.ctx, plan)
			b.mu.Lock()
			if err != nil {
				if len(g.streams) == 0 {
					delete(b.groups, plan)
				}
				s.res <- StreamResult{Err: err}
				continue
			}
			g.sm = sm
			s.gen.Stream = *es
			s.resp.Stats = &s.gen.Stream
		}
		s.dec = model.NewPagedDecoder(g.sm, b.alloc)
		s.decodeStart = time.Now()
		g.streams = append(g.streams, s)
		b.active++
		b.nAdmitted++
		if b.active > b.peak {
			b.peak = b.active
		}
	}
	// Leftovers keep their place ahead of anything Submit enqueued
	// while the lock was down.
	b.pending = append(kept, b.pending...)
}

// stepOnce runs one iteration of the step loop: per plan group, retire
// cancelled streams, advance each live stream's DecodeGenerate state
// machine by one token (emit at the loop head, then feed), reserve KV
// for every participant — preempting best-effort KV before letting a
// tiered stream starve — and run one batched forward for the group.
// Reports whether any stream made progress.
func (b *Batcher) stepOnce() bool {
	progress := false
	for _, g := range b.groups {
		if len(g.streams) == 0 {
			continue
		}
		maxSeq := g.sm.Cfg.MaxSeq
		// Phase 1: advance each stream's emission state and collect the
		// ones that want to feed a token this step.
		var cands []*stream
		for _, s := range append([]*stream(nil), g.streams...) {
			// Mirrors DecodeGenerate's per-iteration ctx check: a
			// cancelled stream retires with its partial Response and
			// frees its KV blocks before the next forward.
			if err := s.ctx.Err(); err != nil {
				b.retire(g, s, s.resp, err, true)
				progress = true
				continue
			}
			if s.consumed == len(s.seq) {
				// Emission point — the head of DecodeGenerate's decode
				// loop, byte for byte.
				if s.gen.NewTokens >= s.req.MaxNewTokens || len(s.seq) >= maxSeq {
					s.resp.Logits = s.logits
					b.retire(g, s, s.resp, nil, false)
					progress = true
					continue
				}
				best := 0
				for i, v := range s.logits {
					if v > s.logits[best] {
						best = i
					}
				}
				s.seq = append(s.seq, best)
				s.resp.GeneratedTokens = s.seq
				s.gen.NewTokens++
				b.mu.Lock()
				b.nTokens++
				b.mu.Unlock()
				if s.req.OnToken != nil {
					// The callback is caller code running on the shared
					// step loop; a panic must fail this stream alone,
					// not take down every other in-flight sequence.
					if err := callOnToken(s.req.OnToken, s.gen.NewTokens-1, best); err != nil {
						b.retire(g, s, nil, err, false)
						progress = true
						continue
					}
				}
				if len(s.seq) >= maxSeq {
					s.resp.Logits = s.logits
					b.retire(g, s, s.resp, nil, false)
					progress = true
					continue
				}
			}
			if s.dec.Len() >= maxSeq {
				// Prompt longer than the model window; DecodeGenerate
				// surfaces the decoder's error the same way.
				b.retire(g, s, nil, fmt.Errorf("model: decoder exceeded MaxSeq %d", maxSeq), false)
				progress = true
				continue
			}
			cands = append(cands, s)
		}
		// Phase 2: reserve KV, tiered streams first — a tiered stream
		// may preempt a best-effort holder, and ordering the reserves
		// this way guarantees the victim has not yet joined this step
		// (preempting a stream already in parts would corrupt the
		// batch). inStep protects only streams committed to the
		// forward about to run.
		sort.SliceStable(cands, func(i, j int) bool {
			ti, tj := cands[i].req.Priority >= 0, cands[j].req.Priority >= 0
			return ti && !tj
		})
		var parts []*stream
		var decs []*model.Decoder
		var toks []int
		inStep := make(map[*stream]bool)
		for _, s := range cands {
			if !s.dec.Reserve() && !b.preemptFor(s, inStep) {
				// Starved. A tiered stream holding nothing, with no KV
				// anywhere to wait on, can never start — fail it;
				// otherwise skip this step and retry after the poll.
				if s.dec.KVBytes() == 0 && b.alloc.LiveBytes() == 0 {
					b.retire(g, s, nil, ErrKVBudget, false)
					progress = true
				}
				continue
			}
			inStep[s] = true
			parts = append(parts, s)
			decs = append(decs, s.dec)
			toks = append(toks, s.seq[s.consumed])
		}
		if len(parts) == 0 {
			continue
		}
		stepStart := time.Now()
		logits, err := model.StepLogits(decs, toks)
		if err != nil {
			for _, s := range parts {
				b.retire(g, s, nil, err, false)
			}
			progress = true
			continue
		}
		dur := time.Since(stepStart)
		for i, s := range parts {
			s.logits = logits.Row(i)
			s.gen.StepCompute = append(s.gen.StepCompute, dur)
			s.consumed++
		}
		b.mu.Lock()
		b.nSteps++
		b.nStepSeqs += uint64(len(parts))
		b.mu.Unlock()
		progress = true
	}
	return progress
}

// preemptFor evicts best-effort KV to make room for a tiered stream:
// victims are Priority<0 streams (largest KV footprint first, never
// one already stepping this round), whose pages are freed and whose
// decode state rewinds to replay-from-zero — resumable because greedy
// decode recomputes identical KV bytes, and OnToken never re-fires
// because emission only happens once per position. Best-effort
// beneficiaries preempt nobody (evicting one best-effort stream for
// another just thrashes). Reports whether the reserve now succeeds.
func (b *Batcher) preemptFor(s *stream, inStep map[*stream]bool) bool {
	if s.req.Priority >= 0 {
		for {
			var victim *stream
			var victimGroup *planGroup
			for _, g := range b.groups {
				for _, v := range g.streams {
					if v == s || v.req.Priority >= 0 || inStep[v] || v.dec.KVBytes() == 0 {
						continue
					}
					if victim == nil || v.dec.KVBytes() > victim.dec.KVBytes() {
						victim, victimGroup = v, g
					}
				}
			}
			if victim == nil {
				return false
			}
			victim.dec.Release()
			victim.dec = model.NewPagedDecoder(victimGroup.sm, b.alloc)
			b.mu.Lock()
			b.nPreempted++
			b.nRecomputed += uint64(victim.consumed)
			b.mu.Unlock()
			victim.consumed = 0
			victim.logits = nil
			if s.dec.Reserve() {
				return true
			}
		}
	}
	return false
}

func callOnToken(fn func(step, token int), step, token int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pipeline: OnToken panicked: %v", r)
		}
	}()
	fn(step, token)
	return nil
}

// retire removes a stream from its group, frees its KV pages, and
// delivers its terminal result exactly once.
func (b *Batcher) retire(g *planGroup, s *stream, resp *Response, err error, cancelled bool) {
	s.dec.Release()
	for i, v := range g.streams {
		if v == s {
			g.streams = append(g.streams[:i], g.streams[i+1:]...)
			break
		}
	}
	s.finishTotal()
	b.mu.Lock()
	b.active--
	if cancelled {
		b.nCancelled++
	} else if err == nil {
		b.nFinished++
	}
	b.mu.Unlock()
	s.res <- StreamResult{Resp: resp, Err: err}
}
