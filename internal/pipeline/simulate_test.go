package pipeline

import (
	"math/rand"
	"testing"
	"time"

	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/planner"
)

func TestSimulateHandSchedule(t *testing.T) {
	// Two layers on a synthetic device: 10 MB/s bandwidth, no overhead,
	// 100 ms compute per layer, 1 MB per layer ⇒ IO 100 ms per layer.
	dev := &device.Profile{Bandwidth: 10e6}
	jobs := []LayerJob{
		{IOBytes: 1e6, Compute: 100 * time.Millisecond},
		{IOBytes: 1e6, Compute: 100 * time.Millisecond},
	}
	tl := Simulate(dev, jobs)
	if tl.IOEnd[0] != 100*time.Millisecond || tl.IOEnd[1] != 200*time.Millisecond {
		t.Fatalf("IO schedule %v", tl.IOEnd)
	}
	// Layer 0 computes 100–200 ms; layer 1's IO finishes at 200 ms, so
	// it computes 200–300 ms with zero bubble.
	if tl.CompStart[0] != 100*time.Millisecond || tl.CompStart[1] != 200*time.Millisecond {
		t.Fatalf("compute schedule %v", tl.CompStart)
	}
	if tl.Total() != 300*time.Millisecond {
		t.Fatalf("total %v", tl.Total())
	}
	if tl.ComputeStall() != 100*time.Millisecond { // only the cold start
		t.Fatalf("stall %v", tl.ComputeStall())
	}
}

func TestSimulateSequentialMatchesSum(t *testing.T) {
	dev := &device.Profile{Bandwidth: 10e6}
	jobs := []LayerJob{
		{IOBytes: 2e6, Compute: 50 * time.Millisecond},
		{IOBytes: 1e6, Compute: 70 * time.Millisecond},
	}
	tl := SimulateSequential(dev, jobs)
	want := 300*time.Millisecond + 120*time.Millisecond
	if tl.Total() != want {
		t.Fatalf("sequential total %v, want %v", tl.Total(), want)
	}
	// No overlap: first compute starts after last IO.
	if tl.CompStart[0] != 300*time.Millisecond {
		t.Fatalf("compute started at %v during IO", tl.CompStart[0])
	}
}

func TestStandardPipelineStallsLikePaper(t *testing.T) {
	// §2.2: a DistilBERT layer needs 339 ms IO but only 95 ms compute,
	// so the standard layerwise pipeline stalls >72% of the time.
	dev := device.Odroid()
	jobs := make([]LayerJob, 6)
	for i := range jobs {
		jobs[i] = LayerJob{IOBytes: 7077888 * 4, Compute: dev.TComp(128, 12, 1.0)}
	}
	tl := Simulate(dev, jobs)
	stallFrac := float64(tl.ComputeStall()) / float64(tl.Total())
	if stallFrac < 0.6 {
		t.Fatalf("stall fraction %.2f; paper reports computation stalls >72%% of the time", stallFrac)
	}
	if tl.IOUtilization() < 0.9 {
		t.Fatalf("IO should be nearly saturated, got %.2f", tl.IOUtilization())
	}
}

func TestSTIPlanSimulatesWithoutExtraStalls(t *testing.T) {
	// End-to-end invariant: a plan the AIBs declared valid must run on
	// the simulator with no stall beyond the planner's reported
	// compulsory InitialStall. Property-checked over targets, buffers
	// and platforms.
	cfg := model.BERTBase()
	imp := importance.Synthetic("QQP", cfg.Layers, cfg.Heads)
	sizer := planner.AnalyticSizer{Params: cfg.ShardParams()}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		dev := device.Platforms()[rng.Intn(2)]
		target := time.Duration(120+rng.Intn(500)) * time.Millisecond
		preload := int64(rng.Intn(6 << 20))
		req := planner.NewRequest(dev, cfg, imp, sizer, target, preload)
		p, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		tl := Simulate(dev, PlanJobs(p, sizer))
		slack := tl.ComputeStall() - p.InitialStall
		if slack > 50*time.Microsecond || slack < -50*time.Microsecond {
			t.Fatalf("%s T=%v S=%d: simulated stall %v != planned %v (plan %dx%d)",
				dev.Name, target, preload, tl.ComputeStall(), p.InitialStall, p.Depth, p.Width)
		}
		wantTotal := p.InitialStall + time.Duration(p.Depth)*p.TCompLayer
		if diff := tl.Total() - wantTotal; diff > 50*time.Microsecond || diff < -50*time.Microsecond {
			t.Fatalf("total %v != planned %v", tl.Total(), wantTotal)
		}
	}
}

func TestTimelineUtilizationBounds(t *testing.T) {
	dev := device.Odroid()
	jobs := []LayerJob{{IOBytes: 1e6, Compute: 30 * time.Millisecond}}
	tl := Simulate(dev, jobs)
	for _, u := range []float64{tl.ComputeUtilization(), tl.IOUtilization()} {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %v out of [0,1]", u)
		}
	}
	empty := Simulate(dev, nil)
	if empty.Total() != 0 || empty.ComputeUtilization() != 0 {
		t.Fatal("empty schedule must be all zeros")
	}
}

func TestTimelineGanttRenders(t *testing.T) {
	dev := device.Odroid()
	jobs := []LayerJob{
		{IOBytes: 5e6, Compute: 40 * time.Millisecond},
		{IOBytes: 2e6, Compute: 40 * time.Millisecond},
	}
	g := Simulate(dev, jobs).Gantt()
	out := g.Render(60)
	if out == "" || g.Span() == 0 {
		t.Fatal("empty gantt render")
	}
	if g.Utilization("Compute") <= 0 || g.Utilization("IO") <= 0 {
		t.Fatal("gantt utilization must be positive")
	}
}
