package pipeline

import (
	"context"
	"fmt"
	"time"

	"sti/internal/model"
	"sti/internal/planner"
)

// Run executes one task-typed request against a plan — the engine's
// unified entry point. TaskClassify runs the layer-pipelined encoder
// pass; TaskGenerate materializes a causal submodel from the plan's
// shard stream and decodes through a KV cache.
func (e *Engine) Run(ctx context.Context, p *planner.Plan, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	switch req.Task {
	case TaskClassify:
		logits, stats, err := e.Execute(ctx, p, req.Tokens, req.Mask)
		if err != nil {
			return nil, err
		}
		return &Response{Logits: logits, Stats: stats}, nil
	default: // Validate admitted it, so it is TaskGenerate
		return e.ExecuteGenerate(ctx, p, req)
	}
}

// Materialize runs the plan's IO/decompress stream once and assembles
// the full submodel it describes — the same shard versions, cache hits
// and layer IO jobs as one classify execution, but retaining every
// assembled sub-layer instead of discarding it after compute. The
// returned stats describe that single stream.
func (e *Engine) Materialize(ctx context.Context, p *planner.Plan) (*model.Submodel, *ExecStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := e.Resident.Cfg
	if p.Depth > cfg.Layers || p.Width > cfg.Heads {
		return nil, nil, fmt.Errorf("pipeline: plan %dx%d exceeds model %dx%d", p.Depth, p.Width, cfg.Layers, cfg.Heads)
	}
	start := time.Now()
	stats := &ExecStats{
		LayerIO:      make([]time.Duration, p.Depth),
		LayerCompute: make([]time.Duration, p.Depth),
	}
	sm := &model.Submodel{Cfg: cfg, Parent: e.Resident}
	err := e.streamLayers(ctx, p, stats, func(l int, sub *model.SubLayer) error {
		sm.Layers = append(sm.Layers, sub)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	stats.Total = time.Since(start)
	return sm, stats, nil
}

// ExecuteGenerate serves a TaskGenerate request: the plan's shard
// stream is warmed exactly once (Materialize), a KV-cached decoder is
// built over the assembled causal submodel, and the one-time elastic IO
// is amortized across every decode step. The decoded sequence is
// byte-identical to model.Submodel.GenerateCached on the same submodel
// — the decode loop below mirrors it step for step.
//
// Cancellation is checked before every decode step, so a cancelled ctx
// stops within one token; the partial Response (tokens decoded so far,
// with stats) is returned alongside ctx.Err() because streaming callers
// have already observed those tokens via Request.OnToken.
func (e *Engine) ExecuteGenerate(ctx context.Context, p *planner.Plan, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if req.Task != TaskGenerate {
		return nil, fmt.Errorf("pipeline: ExecuteGenerate called with task %v", req.Task)
	}
	sm, stream, err := e.Materialize(ctx, p)
	if err != nil {
		return nil, err
	}
	return DecodeGenerate(ctx, sm, stream, req)
}

// DecodeGenerate runs the KV-cached decode phase of a generate request
// over an already-materialized submodel. It is split from
// ExecuteGenerate so callers that hold a lock for the shard stream
// (e.g. a fleet quiescing replans) can release it before the
// many-token decode: the submodel is immutable, so the decode needs no
// synchronization with the engine. stream is the cost of the
// materialization, folded into the returned GenStats. Both callers
// (ExecuteGenerate, Fleet.Serve) have already validated the request.
func DecodeGenerate(ctx context.Context, sm *model.Submodel, stream *ExecStats, req Request) (*Response, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	gen := &GenStats{PromptTokens: len(req.Tokens)}
	if stream != nil {
		gen.Stream = *stream
	}
	resp := &Response{Gen: gen, Stats: &gen.Stream}
	// Total spans the whole execution: the one-time stream plus decode.
	finish := func() { gen.Total = gen.Stream.Total + time.Since(start) }

	dec := model.NewDecoder(sm)
	step := func(tok int) ([]float32, error) {
		stepStart := time.Now()
		logits, err := dec.NextLogits(tok)
		gen.StepCompute = append(gen.StepCompute, time.Since(stepStart))
		return logits, err
	}

	var logits []float32
	var err error
	seq := append([]int(nil), req.Tokens...)
	resp.GeneratedTokens = seq
	for _, tok := range req.Tokens {
		if err := ctx.Err(); err != nil {
			finish()
			return resp, err
		}
		if logits, err = step(tok); err != nil {
			return nil, err
		}
	}
	for s := 0; s < req.MaxNewTokens && len(seq) < sm.Cfg.MaxSeq; s++ {
		if err := ctx.Err(); err != nil {
			finish()
			return resp, err
		}
		best := 0
		for i, v := range logits {
			if v > logits[best] {
				best = i
			}
		}
		seq = append(seq, best)
		resp.GeneratedTokens = seq
		gen.NewTokens++
		if req.OnToken != nil {
			req.OnToken(s, best)
		}
		if len(seq) >= sm.Cfg.MaxSeq {
			break
		}
		if logits, err = step(best); err != nil {
			return nil, err
		}
	}
	resp.Logits = logits
	finish()
	return resp, nil
}
