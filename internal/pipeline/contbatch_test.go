package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sti/internal/model"
)

// refGenerate runs one request through the single-stream path on a
// fresh cold engine and returns its response. Model weights are
// seeded, so every engine over the same store decodes identically —
// the batcher must be byte-for-byte equal to these references.
func refGenerate(t *testing.T, reqs []Request) []*Response {
	t.Helper()
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	out := make([]*Response, len(reqs))
	for i, req := range reqs {
		resp, err := eng.ExecuteGenerate(ctxbg, p, req)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		out[i] = resp
	}
	return out
}

func sameTokens(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: token %d = %d, want %d (%v vs %v)",
				label, i, got[i], want[i], got, want)
		}
	}
}

// TestBatcherMatchesSingleStream pins the equivalence claim: N
// concurrent generate requests pushed through the continuous batcher —
// including two admitted only after the first streams have started
// decoding — produce byte-identical token sequences to singly-run
// ExecuteGenerate, and the whole cohort pays for exactly one shard
// materialization (flash bytes do not scale with stream count).
func TestBatcherMatchesSingleStream(t *testing.T) {
	prompts := [][]int{
		{1, 17, 23},
		{4, 9},
		{2, 2, 7, 11},
		{30, 5, 1},
		{8, 19, 3, 12, 6},
		{13},
	}
	steps := []int{8, 6, 5, 7, 4, 9}
	reqs := make([]Request, len(prompts))
	for i := range prompts {
		reqs[i] = Request{Task: TaskGenerate, Tokens: prompts[i], MaxNewTokens: steps[i]}
	}
	want := refGenerate(t, reqs)

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 8})
	defer b.Close()

	// Streams 0..3 enter together; 4..5 are admitted late, only after
	// stream 0 has demonstrably produced a token mid-flight.
	started := make(chan struct{})
	var once sync.Once
	onTok := make([][]int, len(reqs))
	chans := make([]<-chan StreamResult, len(reqs))
	for i := range reqs {
		i := i
		reqs[i].OnToken = func(step, token int) {
			onTok[i] = append(onTok[i], token)
			if i == 0 {
				once.Do(func() { close(started) })
			}
		}
		if i == 4 {
			<-started
		}
		ch, err := b.Submit(ctxbg, p, reqs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}

	var totalBytes int64
	paid := 0
	for i, ch := range chans {
		out := <-ch
		if out.Err != nil {
			t.Fatalf("stream %d: %v", i, out.Err)
		}
		sameTokens(t, "stream tokens", out.Resp.GeneratedTokens, want[i].GeneratedTokens)
		sameTokens(t, "OnToken stream", onTok[i], want[i].GeneratedTokens[len(prompts[i]):])
		if out.Resp.Gen.NewTokens != steps[i] {
			t.Fatalf("stream %d: NewTokens %d, want %d", i, out.Resp.Gen.NewTokens, steps[i])
		}
		if out.Resp.Stats.BytesRead > 0 {
			paid++
		}
		totalBytes += out.Resp.Stats.BytesRead
	}
	// One materialization serves the whole cohort: exactly one stream
	// carries the shard stream's cost, and it matches a single cold
	// run's BytesRead — late admits ride the same submodel for free.
	if paid != 1 {
		t.Fatalf("%d streams paid for materialization, want exactly 1", paid)
	}
	if ref := want[0].Stats.BytesRead; totalBytes != ref {
		t.Fatalf("cohort read %d bytes, single cold run reads %d", totalBytes, ref)
	}

	st2 := b.Stats()
	if st2.Finished != uint64(len(reqs)) || st2.Admitted != uint64(len(reqs)) {
		t.Fatalf("stats %+v, want %d admitted+finished", st2, len(reqs))
	}
	if st2.Steps == 0 || st2.AvgStreamsPerStep <= 1 {
		t.Fatalf("no batching happened: %+v", st2)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherBestEffortPreemption pins the eviction order fix: when KV
// pages run out, a best-effort (Priority<0) stream is preempted — its
// KV evicted and later recomputed — rather than a tiered stream being
// starved or downgraded; both streams still finish byte-identical to
// their single-stream references.
func TestBatcherBestEffortPreemption(t *testing.T) {
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{5, 11, 2, 9}, MaxNewTokens: 6, Priority: -1},
		{Task: TaskGenerate, Tokens: []int{7, 3, 14}, MaxNewTokens: 5},
	}
	want := refGenerate(t, reqs)

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	// Measure one KV page for this plan's submodel, then pin the
	// engine grant to exactly that: only one stream can hold KV at a
	// time, so the tiered arrival must preempt the best-effort holder.
	sm, _, err := eng.Materialize(ctxbg, p)
	if err != nil {
		t.Fatal(err)
	}
	probe := model.NewPagedDecoder(sm, model.NewBlockAllocator(nil, 0))
	if !probe.Reserve() {
		t.Fatal("probe reserve failed")
	}
	pageBytes := probe.KVBytes()
	probe.Release()
	if pageBytes == 0 {
		t.Fatal("page bytes = 0")
	}
	eng.SetCacheBudget(pageBytes)

	b := NewBatcher(eng, BatcherOptions{MaxStreams: 4})
	defer b.Close()

	// The first OnToken blocks the step loop until the tiered stream is
	// staged: the best-effort stream is then provably mid-decode,
	// holding the only KV page, when the tiered stream is admitted.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	var bestTok []int
	reqs[0].OnToken = func(step, token int) {
		bestTok = append(bestTok, token)
		once.Do(func() {
			close(started)
			<-gate
		})
	}
	ch0, err := b.Submit(ctxbg, p, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	<-started // best-effort stream holds the only KV page mid-decode
	ch1, err := b.Submit(ctxbg, p, reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	out1 := <-ch1
	if out1.Err != nil {
		t.Fatalf("tiered stream: %v", out1.Err)
	}
	sameTokens(t, "tiered tokens", out1.Resp.GeneratedTokens, want[1].GeneratedTokens)
	out0 := <-ch0
	if out0.Err != nil {
		t.Fatalf("best-effort stream: %v", out0.Err)
	}
	sameTokens(t, "best-effort tokens", out0.Resp.GeneratedTokens, want[0].GeneratedTokens)
	// OnToken must not re-fire for replayed positions after eviction.
	sameTokens(t, "best-effort OnToken", bestTok, want[0].GeneratedTokens[len(reqs[0].Tokens):])

	stats := b.Stats()
	if stats.Preempted == 0 {
		t.Fatalf("no preemption recorded: %+v", stats)
	}
	if stats.RecomputedTokens == 0 {
		t.Fatalf("preemption without recompute: %+v", stats)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherCancelMidStream pins cancellation semantics: a ctx cancel
// mid-decode retires the stream with its partial response and ctx.Err,
// frees its KV blocks before the next step, and never disturbs the
// other in-flight sequences.
func TestBatcherCancelMidStream(t *testing.T) {
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{1, 17, 23}, MaxNewTokens: 12},
		{Task: TaskGenerate, Tokens: []int{4, 9, 2}, MaxNewTokens: 8},
	}
	want := refGenerate(t, []Request{reqs[1]})

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 4})
	defer b.Close()

	// The first OnToken parks the step loop until cancel() has landed,
	// so the stream is provably cancelled mid-decode with KV held.
	cctx, cancel := context.WithCancel(ctxbg)
	defer cancel()
	fired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	reqs[0].OnToken = func(step, token int) {
		once.Do(func() {
			close(fired)
			<-gate
		})
	}
	ch0, err := b.Submit(cctx, p, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := b.Submit(ctxbg, p, reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	<-fired
	cancel()
	close(gate)

	out0 := <-ch0
	if !errors.Is(out0.Err, context.Canceled) {
		t.Fatalf("cancelled stream err = %v, want context.Canceled", out0.Err)
	}
	if out0.Resp == nil || out0.Resp.Gen.NewTokens == 0 {
		t.Fatalf("cancelled stream lost its partial response: %+v", out0.Resp)
	}
	out1 := <-ch1
	if out1.Err != nil {
		t.Fatalf("survivor: %v", out1.Err)
	}
	sameTokens(t, "survivor tokens", out1.Resp.GeneratedTokens, want[0].GeneratedTokens)

	stats := b.Stats()
	if stats.Cancelled != 1 || stats.Finished != 1 {
		t.Fatalf("stats %+v, want 1 cancelled + 1 finished", stats)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherCloseDeliversTerminalResults pins shutdown: pending
// streams fail with ErrBatcherClosed, in-flight streams get their
// partial responses, and no KV bytes remain charged.
func TestBatcherCloseDeliversTerminalResults(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 2})

	// The first OnToken parks the step loop so the stream is still
	// mid-decode when Close lands; pending probes submitted while the
	// loop is parked must also fail with ErrBatcherClosed.
	fired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	req := Request{Task: TaskGenerate, Tokens: []int{1, 2, 3}, MaxNewTokens: 20,
		OnToken: func(step, token int) {
			once.Do(func() {
				close(fired)
				<-gate
			})
		}}
	ch, err := b.Submit(ctxbg, p, req)
	if err != nil {
		t.Fatal(err)
	}
	<-fired
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	// Submit probes until Close has marked the batcher closed; earlier
	// probes queue behind the parked loop and get failed on shutdown.
	var pendingChans []<-chan StreamResult
	probe := Request{Task: TaskGenerate, Tokens: []int{4, 5}, MaxNewTokens: 2}
	for {
		pch, err := b.Submit(ctxbg, p, probe)
		if errors.Is(err, ErrBatcherClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pendingChans = append(pendingChans, pch)
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-closed
	out := <-ch
	if !errors.Is(out.Err, ErrBatcherClosed) {
		t.Fatalf("err = %v, want ErrBatcherClosed", out.Err)
	}
	if out.Resp == nil || out.Resp.Gen.NewTokens == 0 {
		t.Fatalf("in-flight stream lost its partial response on close: %+v", out.Resp)
	}
	for i, pch := range pendingChans {
		if pout := <-pch; !errors.Is(pout.Err, ErrBatcherClosed) {
			t.Fatalf("pending probe %d: err = %v, want ErrBatcherClosed", i, pout.Err)
		}
	}
	if _, err := b.Submit(ctxbg, p, req); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("submit after close = %v, want ErrBatcherClosed", err)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}
