package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sti/internal/model"
	"sti/internal/planner"
	"sti/internal/store"
)

// refGenerate runs one request through the single-stream path on a
// fresh cold engine and returns its response. Model weights are
// seeded, so every engine over the same store decodes identically —
// the batcher must be byte-for-byte equal to these references.
func refGenerate(t *testing.T, reqs []Request) []*Response {
	t.Helper()
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	out := make([]*Response, len(reqs))
	for i, req := range reqs {
		resp, err := eng.ExecuteGenerate(ctxbg, p, req)
		if err != nil {
			t.Fatalf("reference %d: %v", i, err)
		}
		out[i] = resp
	}
	return out
}

func sameTokens(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: token %d = %d, want %d (%v vs %v)",
				label, i, got[i], want[i], got, want)
		}
	}
}

// TestBatcherMatchesSingleStream pins the equivalence claim: N
// concurrent generate requests pushed through the continuous batcher —
// including two admitted only after the first streams have started
// decoding — produce byte-identical token sequences to singly-run
// ExecuteGenerate, and the whole cohort pays for exactly one shard
// materialization (flash bytes do not scale with stream count).
func TestBatcherMatchesSingleStream(t *testing.T) {
	prompts := [][]int{
		{1, 17, 23},
		{4, 9},
		{2, 2, 7, 11},
		{30, 5, 1},
		{8, 19, 3, 12, 6},
		{13},
	}
	steps := []int{8, 6, 5, 7, 4, 9}
	reqs := make([]Request, len(prompts))
	for i := range prompts {
		reqs[i] = Request{Task: TaskGenerate, Tokens: prompts[i], MaxNewTokens: steps[i]}
	}
	want := refGenerate(t, reqs)

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 8})
	defer b.Close()

	// Streams 0..3 enter together; 4..5 are admitted late, only after
	// stream 0 has demonstrably produced a token mid-flight.
	started := make(chan struct{})
	var once sync.Once
	onTok := make([][]int, len(reqs))
	chans := make([]<-chan StreamResult, len(reqs))
	for i := range reqs {
		i := i
		reqs[i].OnToken = func(step, token int) {
			onTok[i] = append(onTok[i], token)
			if i == 0 {
				once.Do(func() { close(started) })
			}
		}
		if i == 4 {
			<-started
		}
		ch, err := b.Submit(ctxbg, p, reqs[i])
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}

	var totalBytes int64
	paid := 0
	for i, ch := range chans {
		out := <-ch
		if out.Err != nil {
			t.Fatalf("stream %d: %v", i, out.Err)
		}
		sameTokens(t, "stream tokens", out.Resp.GeneratedTokens, want[i].GeneratedTokens)
		sameTokens(t, "OnToken stream", onTok[i], want[i].GeneratedTokens[len(prompts[i]):])
		if out.Resp.Gen.NewTokens != steps[i] {
			t.Fatalf("stream %d: NewTokens %d, want %d", i, out.Resp.Gen.NewTokens, steps[i])
		}
		if out.Resp.Stats.BytesRead > 0 {
			paid++
		}
		totalBytes += out.Resp.Stats.BytesRead
	}
	// One materialization serves the whole cohort: exactly one stream
	// carries the shard stream's cost, and it matches a single cold
	// run's BytesRead — late admits ride the same submodel for free.
	if paid != 1 {
		t.Fatalf("%d streams paid for materialization, want exactly 1", paid)
	}
	if ref := want[0].Stats.BytesRead; totalBytes != ref {
		t.Fatalf("cohort read %d bytes, single cold run reads %d", totalBytes, ref)
	}

	st2 := b.Stats()
	if st2.Finished != uint64(len(reqs)) || st2.Admitted != uint64(len(reqs)) {
		t.Fatalf("stats %+v, want %d admitted+finished", st2, len(reqs))
	}
	if st2.Steps == 0 || st2.AvgStreamsPerStep <= 1 {
		t.Fatalf("no batching happened: %+v", st2)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherBestEffortPreemption pins the eviction order fix: when KV
// pages run out, a best-effort (Priority<0) stream is preempted — its
// KV evicted and later recomputed — rather than a tiered stream being
// starved or downgraded; both streams still finish byte-identical to
// their single-stream references.
func TestBatcherBestEffortPreemption(t *testing.T) {
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{5, 11, 2, 9}, MaxNewTokens: 6, Priority: -1},
		{Task: TaskGenerate, Tokens: []int{7, 3, 14}, MaxNewTokens: 5},
	}
	want := refGenerate(t, reqs)

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	// Measure one KV page for this plan's submodel, then pin the
	// engine grant to exactly that: only one stream can hold KV at a
	// time, so the tiered arrival must preempt the best-effort holder.
	sm, _, err := eng.Materialize(ctxbg, p)
	if err != nil {
		t.Fatal(err)
	}
	probe := model.NewPagedDecoder(sm, model.NewBlockAllocator(nil, 0))
	if !probe.Reserve() {
		t.Fatal("probe reserve failed")
	}
	pageBytes := probe.KVBytes()
	probe.Release()
	if pageBytes == 0 {
		t.Fatal("page bytes = 0")
	}
	eng.SetCacheBudget(pageBytes)

	// TokenBuffer 1: the step loop parks the best-effort stream (KV
	// held, not stepping) as soon as its gated OnToken consumer falls
	// one token behind — so it is provably mid-decode, holding the only
	// KV page, when the tiered stream is admitted. The loop itself
	// never blocks on the callback.
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 4, TokenBuffer: 1})
	defer b.Close()

	// The first OnToken parks the emitter until the tiered stream is
	// staged, which parks the stream via buffer backpressure.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	var bestTok []int
	reqs[0].OnToken = func(step, token int) {
		bestTok = append(bestTok, token)
		once.Do(func() {
			close(started)
			<-gate
		})
	}
	ch0, err := b.Submit(ctxbg, p, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	<-started // best-effort stream holds the only KV page mid-decode
	ch1, err := b.Submit(ctxbg, p, reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	close(gate)

	out1 := <-ch1
	if out1.Err != nil {
		t.Fatalf("tiered stream: %v", out1.Err)
	}
	sameTokens(t, "tiered tokens", out1.Resp.GeneratedTokens, want[1].GeneratedTokens)
	out0 := <-ch0
	if out0.Err != nil {
		t.Fatalf("best-effort stream: %v", out0.Err)
	}
	sameTokens(t, "best-effort tokens", out0.Resp.GeneratedTokens, want[0].GeneratedTokens)
	// OnToken must not re-fire for replayed positions after eviction.
	sameTokens(t, "best-effort OnToken", bestTok, want[0].GeneratedTokens[len(reqs[0].Tokens):])

	stats := b.Stats()
	if stats.Preempted == 0 {
		t.Fatalf("no preemption recorded: %+v", stats)
	}
	if stats.RecomputedTokens == 0 {
		t.Fatalf("preemption without recompute: %+v", stats)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherCancelMidStream pins cancellation semantics: a ctx cancel
// mid-decode retires the stream with its partial response and ctx.Err,
// frees its KV blocks before the next step, and never disturbs the
// other in-flight sequences.
func TestBatcherCancelMidStream(t *testing.T) {
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{1, 17, 23}, MaxNewTokens: 12},
		{Task: TaskGenerate, Tokens: []int{4, 9, 2}, MaxNewTokens: 8},
	}
	want := refGenerate(t, []Request{reqs[1]})

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	// TokenBuffer 1: the gated OnToken below parks its own stream (via
	// buffer backpressure) a couple of tokens in, so the stream is
	// provably still mid-decode with KV held when cancel() lands; the
	// survivor keeps decoding meanwhile.
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 4, TokenBuffer: 1})
	defer b.Close()

	// The first OnToken parks the stream's emitter until cancel() has
	// landed.
	cctx, cancel := context.WithCancel(ctxbg)
	defer cancel()
	fired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	reqs[0].OnToken = func(step, token int) {
		once.Do(func() {
			close(fired)
			<-gate
		})
	}
	ch0, err := b.Submit(cctx, p, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := b.Submit(ctxbg, p, reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	<-fired
	cancel()
	close(gate)

	out0 := <-ch0
	if !errors.Is(out0.Err, context.Canceled) {
		t.Fatalf("cancelled stream err = %v, want context.Canceled", out0.Err)
	}
	if out0.Resp == nil || out0.Resp.Gen.NewTokens == 0 {
		t.Fatalf("cancelled stream lost its partial response: %+v", out0.Resp)
	}
	out1 := <-ch1
	if out1.Err != nil {
		t.Fatalf("survivor: %v", out1.Err)
	}
	sameTokens(t, "survivor tokens", out1.Resp.GeneratedTokens, want[0].GeneratedTokens)

	stats := b.Stats()
	if stats.Cancelled != 1 || stats.Finished != 1 {
		t.Fatalf("stats %+v, want 1 cancelled + 1 finished", stats)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherCloseDeliversTerminalResults pins shutdown: pending
// streams fail with ErrBatcherClosed, in-flight streams get their
// partial responses, and no KV bytes remain charged.
func TestBatcherCloseDeliversTerminalResults(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	// MaxStreams 1 + TokenBuffer 1: the gated stream occupies the only
	// slot and parks on buffer backpressure, so it is still mid-decode
	// when Close lands and every probe stays pending until shutdown.
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 1, TokenBuffer: 1})

	// The first OnToken parks the stream via its emitter; probes
	// submitted meanwhile queue behind the occupied slot and get failed
	// on shutdown.
	fired := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	req := Request{Task: TaskGenerate, Tokens: []int{1, 2, 3}, MaxNewTokens: 20,
		OnToken: func(step, token int) {
			once.Do(func() {
				close(fired)
				<-gate
			})
		}}
	ch, err := b.Submit(ctxbg, p, req)
	if err != nil {
		t.Fatal(err)
	}
	<-fired
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	// Submit probes until Close has marked the batcher closed; earlier
	// probes queue behind the parked loop and get failed on shutdown.
	var pendingChans []<-chan StreamResult
	probe := Request{Task: TaskGenerate, Tokens: []int{4, 5}, MaxNewTokens: 2}
	for {
		pch, err := b.Submit(ctxbg, p, probe)
		if errors.Is(err, ErrBatcherClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pendingChans = append(pendingChans, pch)
		time.Sleep(time.Millisecond)
	}
	close(gate)
	<-closed
	out := <-ch
	if !errors.Is(out.Err, ErrBatcherClosed) {
		t.Fatalf("err = %v, want ErrBatcherClosed", out.Err)
	}
	if out.Resp == nil || out.Resp.Gen.NewTokens == 0 {
		t.Fatalf("in-flight stream lost its partial response on close: %+v", out.Resp)
	}
	for i, pch := range pendingChans {
		if pout := <-pch; !errors.Is(pout.Err, ErrBatcherClosed) {
			t.Fatalf("pending probe %d: err = %v, want ErrBatcherClosed", i, pout.Err)
		}
	}
	if _, err := b.Submit(ctxbg, p, req); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("submit after close = %v, want ErrBatcherClosed", err)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherSlowConsumerDoesNotStallOthers pins the delivery
// decoupling: OnToken runs on a per-stream emitter goroutine behind a
// bounded token buffer, so one stalled token consumer parks only its
// own stream — every other in-flight sequence keeps decoding and
// finishing. Under the old inline-callback design this test deadlocks:
// the stalled callback held the shared step loop, so the fast stream
// could never complete.
func TestBatcherSlowConsumerDoesNotStallOthers(t *testing.T) {
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{3, 8, 1}, MaxNewTokens: 6},
		{Task: TaskGenerate, Tokens: []int{9, 4}, MaxNewTokens: 8},
	}
	want := refGenerate(t, reqs)

	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 4, TokenBuffer: 1})
	defer b.Close()

	// Stream 0's consumer stalls inside its first OnToken until the
	// fast stream has fully finished — a slow SSE client, in effect.
	started := make(chan struct{})
	gate := make(chan struct{})
	var once sync.Once
	var slowTok []int
	reqs[0].OnToken = func(step, token int) {
		slowTok = append(slowTok, token)
		once.Do(func() {
			close(started)
			<-gate
		})
	}
	ch0, err := b.Submit(ctxbg, p, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	<-started // consumer now stuck mid-callback
	ch1, err := b.Submit(ctxbg, p, reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	// The fast stream must run to completion while stream 0's consumer
	// is still parked.
	out1 := <-ch1
	if out1.Err != nil {
		t.Fatalf("fast stream: %v", out1.Err)
	}
	sameTokens(t, "fast stream tokens", out1.Resp.GeneratedTokens, want[1].GeneratedTokens)

	close(gate)
	out0 := <-ch0
	if out0.Err != nil {
		t.Fatalf("slow stream: %v", out0.Err)
	}
	sameTokens(t, "slow stream tokens", out0.Resp.GeneratedTokens, want[0].GeneratedTokens)
	// Every token event is delivered before the terminal result, none
	// dropped and none repeated.
	sameTokens(t, "slow OnToken stream", slowTok, want[0].GeneratedTokens[len(reqs[0].Tokens):])

	stats := b.Stats()
	if stats.Finished != 2 {
		t.Fatalf("stats %+v, want 2 finished", stats)
	}
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}

// TestBatcherSameClassStarvation pins the livelock escape: when live
// streams of one priority class collectively exhaust the KV budget and
// each needs one more page, the loop must not poll forever — after
// sustained starvation it preempts a same-class holder (resumable via
// recompute), and a stream the grant can never serve is failed with
// ErrKVBudget instead of hanging to its deadline.
func TestBatcherSameClassStarvation(t *testing.T) {
	// Both streams cross one page boundary (18 positions > 16), so each
	// eventually needs two pages.
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{5, 11, 2, 9}, MaxNewTokens: 14},
		{Task: TaskGenerate, Tokens: []int{7, 3, 14}, MaxNewTokens: 15},
	}
	want := refGenerate(t, reqs)

	pageOf := func(t *testing.T, eng *Engine, p *planner.Plan) int64 {
		t.Helper()
		sm, _, err := eng.Materialize(ctxbg, p)
		if err != nil {
			t.Fatal(err)
		}
		probe := model.NewPagedDecoder(sm, model.NewBlockAllocator(nil, 0))
		if !probe.Reserve() {
			t.Fatal("probe reserve failed")
		}
		defer probe.Release()
		return probe.KVBytes()
	}

	t.Run("tiered cohort preempts itself", func(t *testing.T) {
		eng, _, st := buildTinyEngine(t, 1<<20)
		p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
		pageBytes := pageOf(t, eng, p)
		// Two pages total: both streams hold one page each, then both
		// need a second — no best-effort victim anywhere. Without
		// same-class preemption every step starves forever.
		eng.SetCacheBudget(2 * pageBytes)
		b := NewBatcher(eng, BatcherOptions{MaxStreams: 4})
		defer b.Close()

		ch0, err := b.Submit(ctxbg, p, reqs[0])
		if err != nil {
			t.Fatal(err)
		}
		ch1, err := b.Submit(ctxbg, p, reqs[1])
		if err != nil {
			t.Fatal(err)
		}
		out0, out1 := <-ch0, <-ch1
		if out0.Err != nil || out1.Err != nil {
			t.Fatalf("streams failed: %v / %v", out0.Err, out1.Err)
		}
		sameTokens(t, "stream 0", out0.Resp.GeneratedTokens, want[0].GeneratedTokens)
		sameTokens(t, "stream 1", out1.Resp.GeneratedTokens, want[1].GeneratedTokens)
		stats := b.Stats()
		if stats.Preempted == 0 || stats.RecomputedTokens == 0 {
			t.Fatalf("no same-class preemption recorded: %+v", stats)
		}
		if eng.KVBytes() != 0 || b.KVBytes() != 0 {
			t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
		}
	})

	t.Run("oversized stream sheds with ErrKVBudget", func(t *testing.T) {
		eng, _, st := buildTinyEngine(t, 1<<20)
		p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
		pageBytes := pageOf(t, eng, p)
		// One page: a lone stream needing a second page has nothing to
		// preempt and nothing to wait for — it must be failed, not
		// polled at 1ms forever.
		eng.SetCacheBudget(pageBytes)
		b := NewBatcher(eng, BatcherOptions{MaxStreams: 4})
		defer b.Close()

		ch, err := b.Submit(ctxbg, p, reqs[0])
		if err != nil {
			t.Fatal(err)
		}
		out := <-ch
		if !errors.Is(out.Err, ErrKVBudget) {
			t.Fatalf("err = %v, want ErrKVBudget", out.Err)
		}
		if eng.KVBytes() != 0 || b.KVBytes() != 0 {
			t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
		}
	})
}

// gatedReader wraps a PayloadReader; while held, the first read parks
// (signalling entered) until the gate opens — a stand-in for a slow
// flash/IO pass during shard materialization.
type gatedReader struct {
	inner   store.PayloadReader
	hold    atomic.Bool
	once    sync.Once
	entered chan struct{}
	gate    chan struct{}
}

func (g *gatedReader) ReadShardPayload(layer, slice, bits int) ([]byte, error) {
	if g.hold.Load() {
		g.once.Do(func() { close(g.entered) })
		<-g.gate
	}
	return g.inner.ReadShardPayload(layer, slice, bits)
}

// TestBatcherMaterializeOffLoop pins the async-materialization fix:
// admitting the first stream of a new plan kicks off Engine.Materialize
// on its own goroutine, so a multi-second shard-stream IO pass neither
// stalls decoding of in-flight streams on other plans nor delays
// retirement of ctx-cancelled streams parked behind the same IO.
func TestBatcherMaterializeOffLoop(t *testing.T) {
	reqs := []Request{
		{Task: TaskGenerate, Tokens: []int{3, 8, 1}, MaxNewTokens: 6},
		{Task: TaskGenerate, Tokens: []int{9, 4}, MaxNewTokens: 8},
	}
	want := refGenerate(t, reqs)

	eng, _, st := buildTinyEngine(t, 1<<20)
	src := &gatedReader{inner: st, entered: make(chan struct{}), gate: make(chan struct{})}
	eng.SetPayloadSource(src)
	// Two distinct plan pointers → two batcher groups, each with its own
	// materialization.
	pA, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	pB, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	b := NewBatcher(eng, BatcherOptions{MaxStreams: 4, TokenBuffer: 1})
	defer b.Close()

	// Stream A materializes plan A ungated, then parks mid-decode via
	// token-buffer backpressure — live, holding KV, not finished.
	started := make(chan struct{})
	aGate := make(chan struct{})
	var once sync.Once
	reqs[0].OnToken = func(step, token int) {
		once.Do(func() {
			close(started)
			<-aGate
		})
	}
	chA, err := b.Submit(ctxbg, pA, reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	<-started

	// Plan B's materialization now blocks in IO.
	src.hold.Store(true)
	chB, err := b.Submit(ctxbg, pB, reqs[1])
	if err != nil {
		t.Fatal(err)
	}
	<-src.entered // loop admitted B and the IO pass is parked off-loop

	// A ctx-cancelled stream waiting on the same materialization must
	// retire immediately, not after the IO pass finishes.
	cctx, cancel := context.WithCancel(context.Background())
	chC, err := b.Submit(cctx, pB, Request{Task: TaskGenerate, Tokens: []int{1, 2}, MaxNewTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	outC := <-chC
	if !errors.Is(outC.Err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", outC.Err)
	}

	// Stream A must decode to completion while plan B's IO is still
	// parked — the step loop cannot be inside Materialize.
	close(aGate)
	outA := <-chA
	if outA.Err != nil {
		t.Fatalf("stream A: %v", outA.Err)
	}
	sameTokens(t, "stream A tokens", outA.Resp.GeneratedTokens, want[0].GeneratedTokens)
	select {
	case <-src.gate:
		t.Fatal("materialization gate opened early")
	default:
	}

	close(src.gate)
	outB := <-chB
	if outB.Err != nil {
		t.Fatalf("stream B: %v", outB.Err)
	}
	sameTokens(t, "stream B tokens", outB.Resp.GeneratedTokens, want[1].GeneratedTokens)
	if eng.KVBytes() != 0 || b.KVBytes() != 0 {
		t.Fatalf("leaked KV: engine %d, allocator %d", eng.KVBytes(), b.KVBytes())
	}
}
