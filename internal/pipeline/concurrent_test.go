package pipeline

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEngineExecuteBatchConcurrent is the replica-safety regression
// test: two goroutines hammering ExecuteBatch on ONE engine must (a)
// produce logits byte-identical to a sequential run, and (b) never
// corrupt the preload-buffer accounting — CacheBytes stays within the
// byte budget throughout, while a third goroutine watches. Run under
// -race (CI does) this also proves the engine's execution path shares
// no unsynchronized state, which is what lets a pool dispatch many
// in-flight requests across replicas without a per-engine lock.
func TestEngineExecuteBatchConcurrent(t *testing.T) {
	const budget = 32 << 10
	eng, _, st := buildTinyEngine(t, budget)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, budget)
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}

	inputs := [][]BatchInput{
		{{Tokens: []int{1, 2, 3, 4, 5}}, {Tokens: []int{9, 8, 7}}},
		{{Tokens: []int{4, 4, 4, 4}}},
	}
	// Sequential reference, one per goroutine's input set.
	want := make([][][]float32, len(inputs))
	for i, in := range inputs {
		logits, _, err := eng.ExecuteBatch(ctxbg, p, in)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = logits
	}

	const iters = 8
	var stop atomic.Bool
	watcherDone := make(chan struct{})
	go func() {
		// Accounting watcher: the budget invariant must hold at every
		// instant, not just at rest.
		defer close(watcherDone)
		for !stop.Load() {
			if got := eng.CacheBytes(); got > budget {
				t.Errorf("CacheBytes %d exceeded budget %d mid-execution", got, budget)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := range inputs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < iters; k++ {
				logits, _, err := eng.ExecuteBatch(ctxbg, p, inputs[g])
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, k, err)
					return
				}
				for b := range logits {
					for j := range logits[b] {
						if math.Float32bits(logits[b][j]) != math.Float32bits(want[g][b][j]) {
							t.Errorf("goroutine %d iter %d input %d logit %d: %v != sequential %v",
								g, k, b, j, logits[b][j], want[g][b][j])
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	<-watcherDone

	if got := eng.CacheBytes(); got > budget {
		t.Fatalf("CacheBytes %d over budget %d after concurrent executions", got, budget)
	}
}

// TestEngineConcurrentExecuteWithRetain interleaves executions with the
// cache-mutating Retain path: accounting must stay within budget and
// executions must keep succeeding (Retain and ExecuteBatch synchronize
// on the engine's internal lock, not on the caller).
func TestEngineConcurrentExecuteWithRetain(t *testing.T) {
	const budget = 16 << 10
	eng, _, st := buildTinyEngine(t, budget)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, budget)
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for k := 0; k < 6; k++ {
			if _, _, err := eng.ExecuteBatch(ctxbg, p, []BatchInput{{Tokens: []int{1, 2, 3}}}); err != nil {
				t.Errorf("execute %d: %v", k, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for k := 0; k < 6; k++ {
			if err := eng.Retain(p); err != nil {
				t.Errorf("retain %d: %v", k, err)
				return
			}
			if got := eng.CacheBytes(); got > budget {
				t.Errorf("CacheBytes %d over budget %d after retain", got, budget)
				return
			}
		}
	}()
	wg.Wait()
}
