package pipeline

import (
	"context"
	"math"
	"testing"
	"time"

	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/planner"
	"sti/internal/quant"
	"sti/internal/store"
)

// ctxbg is the background context test call sites that don't exercise
// cancellation pass to Execute/ExecuteBatch.
var ctxbg = context.Background()

// buildTinyEngine preprocesses a tiny random model into a temp store
// and returns an engine plus the original weights.
func buildTinyEngine(t *testing.T, cacheBudget int64) (*Engine, *model.Weights, *store.Store) {
	t.Helper()
	dir := t.TempDir()
	cfg := model.Tiny()
	w := model.NewRandom(cfg, 99)
	if _, err := store.Preprocess(dir, w, []int{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(st, cacheBudget)
	if err != nil {
		t.Fatal(err)
	}
	return eng, w, st
}

// tinyPlan builds a plan against the tiny store's manifest.
func tinyPlan(t *testing.T, st *store.Store, target time.Duration, preload int64) (*planner.Plan, planner.Request) {
	t.Helper()
	cfg := st.Man.Config
	imp := importance.Synthetic("SST-2", cfg.Layers, cfg.Heads)
	req := planner.NewRequest(device.Odroid(), cfg, imp, ManifestSizer{Man: st.Man}, target, preload)
	req.Bitwidths = []int{2, 4, 6}
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return p, req
}

func TestEngineExecutesPlanMatchesDirectAssembly(t *testing.T) {
	eng, w, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	tokens := []int{1, 2, 3, 4, 5, 6, 7, 8}

	logits, stats, err := eng.Execute(ctxbg, p, tokens, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != w.Cfg.Classes {
		t.Fatalf("logits %v", logits)
	}
	if stats.BytesRead == 0 || stats.CacheHits != 0 {
		t.Fatalf("cold run stats %+v", stats)
	}

	// Reference: assemble the same submodel directly from the original
	// weights with identical quantization.
	ref := &model.Submodel{Cfg: w.Cfg, Parent: w}
	for l := 0; l < p.Depth; l++ {
		shards := make([]*model.ShardWeights, p.Width)
		for j, s := range p.Slices[l] {
			flat := w.ExtractShard(l, s).Flatten()
			if b := p.Bits[l][j]; b != 32 {
				flat = quant.Quantize(flat, b).Dequantize()
			}
			sw, err := model.UnflattenShard(w.Cfg, l, s, flat)
			if err != nil {
				t.Fatal(err)
			}
			shards[j] = sw
		}
		sl, err := model.AssembleSubLayer(w.Cfg, w.Layers[l], shards)
		if err != nil {
			t.Fatal(err)
		}
		ref.Layers = append(ref.Layers, sl)
	}
	want := ref.Logits(tokens, nil)
	for i := range want {
		if math.Abs(float64(logits[i]-want[i])) > 1e-4 {
			t.Fatalf("engine logits %v != direct %v", logits, want)
		}
	}
}

func TestEngineWarmProducesCacheHits(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 64<<10)
	preloadCount := 0
	for l := range p.Preloaded {
		for _, pre := range p.Preloaded[l] {
			if pre {
				preloadCount++
			}
		}
	}
	if preloadCount == 0 {
		t.Fatal("test plan has no preloads; raise the budget")
	}
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}
	if eng.CacheBytes() == 0 {
		t.Fatal("warm loaded nothing")
	}
	_, stats, err := eng.Execute(ctxbg, p, []int{1, 2, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != preloadCount {
		t.Fatalf("cache hits %d, want %d preloaded shards", stats.CacheHits, preloadCount)
	}
}

func TestEngineRetainServesBackToBack(t *testing.T) {
	// §3.3 "a few back-to-back executions": after Retain, a repeated
	// execution reads fewer bytes.
	eng, _, st := buildTinyEngine(t, 256<<10)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	_, cold, err := eng.Execute(ctxbg, p, []int{5, 4, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Retain(p); err != nil {
		t.Fatal(err)
	}
	if eng.CacheBytes() == 0 || eng.CacheBytes() > eng.Budget() {
		t.Fatalf("cache %d outside (0, %d]", eng.CacheBytes(), eng.Budget())
	}
	_, warm, err := eng.Execute(ctxbg, p, []int{5, 4, 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.BytesRead >= cold.BytesRead {
		t.Fatalf("retained run read %d bytes, cold read %d", warm.BytesRead, cold.BytesRead)
	}
	if warm.CacheHits == 0 {
		t.Fatal("retained run hit nothing")
	}
}

func TestEngineRetainKeepsBottomLayers(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 200<<10)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	if err := eng.Retain(p); err != nil {
		t.Fatal(err)
	}
	// Everything cached must be from the bottom of the plan: find the
	// deepest cached layer and check all plan shards below it are
	// cached too.
	cachedLayers := map[int]int{}
	eng.mu.Lock()
	for v := range eng.cache {
		cachedLayers[v.Layer]++
	}
	eng.mu.Unlock()
	if len(cachedLayers) == 0 {
		t.Fatal("nothing retained")
	}
	if _, ok := cachedLayers[0]; !ok {
		t.Fatal("layer 0 not retained; eviction must keep bottom layers")
	}
	for l := 1; l < p.Depth; l++ {
		if cachedLayers[l] > 0 && cachedLayers[l-1] != p.Width {
			t.Fatalf("layer %d partially cached while layer %d cached", l-1, l)
		}
	}
}

func TestEngineDeterministicLogits(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 150*time.Millisecond, 0)
	a, _, err := eng.Execute(ctxbg, p, []int{9, 8, 7, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := eng.Execute(ctxbg, p, []int{9, 8, 7, 6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("pipelined execution not deterministic")
		}
	}
}

func TestEngineRejectsOversizedPlan(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	p.Depth = st.Man.Config.Layers + 5
	if _, _, err := eng.Execute(ctxbg, p, []int{1}, nil); err == nil {
		t.Fatal("expected depth rejection")
	}
}

func TestEngineSetCacheBudgetEvictsTopDown(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	if err := eng.Retain(p); err != nil {
		t.Fatal(err)
	}
	full := eng.CacheBytes()
	if full == 0 {
		t.Fatal("nothing retained")
	}
	// Shrink to half: must stay under budget and keep layer 0 entries.
	eng.SetCacheBudget(full / 2)
	if eng.CacheBytes() > full/2 {
		t.Fatalf("cache %d exceeds new budget %d", eng.CacheBytes(), full/2)
	}
	eng.mu.Lock()
	hasL0, maxLayer := false, 0
	for v := range eng.cache {
		if v.Layer == 0 {
			hasL0 = true
		}
		if v.Layer > maxLayer {
			maxLayer = v.Layer
		}
	}
	eng.mu.Unlock()
	if !hasL0 {
		t.Fatal("shrinking evicted layer 0 before top layers")
	}
	// Shrink to zero: everything goes.
	eng.SetCacheBudget(0)
	if eng.CacheBytes() != 0 {
		t.Fatalf("cache %d after zero budget", eng.CacheBytes())
	}
	// Growing the budget never evicts.
	eng.SetCacheBudget(1 << 20)
	if eng.CacheBytes() != 0 {
		t.Fatal("growing budget must not load anything")
	}
	_ = maxLayer
}
