package pipeline

import (
	"fmt"

	"sti/internal/planner"
	"sti/internal/store"
)

// ManifestSizer adapts a store manifest's exact payload sizes to the
// planner's Sizer interface, so plans against a real store charge the
// IO budgets with true byte counts.
type ManifestSizer struct {
	Man *store.Manifest
}

var _ planner.Sizer = ManifestSizer{}

func (m ManifestSizer) ShardSize(layer, slice, bits int) int {
	size, err := m.Man.ShardSize(layer, slice, bits)
	if err != nil {
		// The planner only asks for shards/bitwidths it was configured
		// with; a miss is a programming error, not a data condition.
		panic(fmt.Sprintf("pipeline: %v", err))
	}
	return size
}
