package pipeline

import (
	"testing"
	"time"
)

// batchTestInputs returns varied-length sequences with mixed masks —
// what a serving batch actually looks like.
func batchTestInputs() []BatchInput {
	padded := []int{1, 4, 4, 4, 4, 4, 2, 0}
	mask := make([]bool, len(padded))
	for i := range mask {
		mask[i] = padded[i] != 0
	}
	return []BatchInput{
		{Tokens: []int{1, 9, 8, 7, 2}},
		{Tokens: []int{1, 5, 2}},
		{Tokens: padded, Mask: mask},
		{Tokens: []int{1, 2}},
		{Tokens: []int{1, 3, 3, 2}},
		{Tokens: []int{1, 6, 7, 8, 9, 2}},
		{Tokens: []int{1, 1, 1, 2}},
		{Tokens: []int{1, 9, 2}},
	}
}

// TestExecuteBatchByteIdenticalToSequential is the batched-path
// acceptance check: B=8 ExecuteBatch returns logits byte-identical to
// 8 single Executes.
func TestExecuteBatchByteIdenticalToSequential(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	inputs := batchTestInputs()

	single := make([][]float32, len(inputs))
	for i, in := range inputs {
		logits, _, err := eng.Execute(ctxbg, p, in.Tokens, in.Mask)
		if err != nil {
			t.Fatal(err)
		}
		single[i] = logits
	}
	batched, bs, err := eng.ExecuteBatch(ctxbg, p, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Batch != len(inputs) {
		t.Fatalf("batch %d, want %d", bs.Batch, len(inputs))
	}
	for i := range inputs {
		if len(batched[i]) != len(single[i]) {
			t.Fatalf("seq %d: %d logits, want %d", i, len(batched[i]), len(single[i]))
		}
		for c := range single[i] {
			if batched[i][c] != single[i][c] {
				t.Fatalf("seq %d logit %d: batched %v != single %v", i, c, batched[i][c], single[i][c])
			}
		}
	}
}

// TestExecuteBatchAmortizesIO pins the tentpole's point: one batched
// execution performs each layer's shard IO exactly once, so per-request
// bytes are 1/B of sequential execution.
func TestExecuteBatchAmortizesIO(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0) // zero cache: every layer streams
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	inputs := batchTestInputs()
	b := int64(len(inputs))

	_, singleStats, err := eng.Execute(ctxbg, p, inputs[0].Tokens, inputs[0].Mask)
	if err != nil {
		t.Fatal(err)
	}
	if singleStats.BytesRead == 0 {
		t.Fatal("cold single execution read nothing")
	}
	_, bs, err := eng.ExecuteBatch(ctxbg, p, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if bs.BytesRead != singleStats.BytesRead {
		t.Fatalf("batch stream read %d bytes, single read %d; the batch must stream each layer exactly once",
			bs.BytesRead, singleStats.BytesRead)
	}
	perRequest := bs.BytesRead / int64(bs.Batch)
	if want := singleStats.BytesRead / b; perRequest != want {
		t.Fatalf("amortized %d bytes/request, want %d (1/%d of sequential)", perRequest, want, b)
	}
}

func TestExecuteBatchRejectsEmptyAndOversized(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	if _, _, err := eng.ExecuteBatch(ctxbg, p, nil); err == nil {
		t.Fatal("empty batch must error")
	}
	// An empty sequence inside a batch would silently read its
	// neighbor's logits from the stacked activations.
	withEmpty := append(batchTestInputs(), BatchInput{})
	if _, _, err := eng.ExecuteBatch(ctxbg, p, withEmpty); err == nil {
		t.Fatal("empty batch input must error")
	}
	p.Depth = st.Man.Config.Layers + 1
	if _, _, err := eng.ExecuteBatch(ctxbg, p, batchTestInputs()); err == nil {
		t.Fatal("oversized plan must error")
	}
}

// TestWarmAfterShrinkRespectsBudget is the regression for the put()
// budget bug: Warm with a plan whose preload set exceeds a freshly
// shrunk budget must not overfill the buffer.
func TestWarmAfterShrinkRespectsBudget(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 64<<10)
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}
	full := eng.CacheBytes()
	if full == 0 {
		t.Fatal("plan preloaded nothing; raise the budget")
	}
	shrunk := full / 2
	eng.SetCacheBudget(shrunk)
	// Re-warm the old (now oversized) plan: the buffer must stay within
	// the shrunk budget, holding the bottom-most prefix that fits.
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheBytes(); got > shrunk {
		t.Fatalf("warm overfilled the buffer: %d bytes > budget %d", got, shrunk)
	}
	// Bottom layers win the tight buffer: nothing cached above a gap.
	eng.mu.Lock()
	cachedLayers := map[int]bool{}
	for v := range eng.cache {
		cachedLayers[v.Layer] = true
	}
	eng.mu.Unlock()
	maxCached := -1
	for l := range cachedLayers {
		if l > maxCached {
			maxCached = l
		}
	}
	if maxCached > 0 && !cachedLayers[0] {
		t.Fatalf("layer %d cached while layer 0 evicted; bottom layers must win", maxCached)
	}
}

// TestPutRefusesOverBudgetPayload pins put's refusal path: a payload
// larger than the whole budget is never inserted.
func TestPutRefusesOverBudgetPayload(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 16)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 64<<10)
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheBytes(); got > 16 {
		t.Fatalf("cache %d bytes exceeds 16-byte budget", got)
	}
	_ = st
}
