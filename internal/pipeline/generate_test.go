package pipeline

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestExecuteGenerateMatchesGenerateCached pins the acceptance claim:
// the engine's generate path is byte-identical to
// model.Submodel.GenerateCached over the same materialized submodel —
// the elastic stream changes where the weights come from, never what
// they decode.
func TestExecuteGenerateMatchesGenerateCached(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)

	sm, streamStats, err := eng.Materialize(ctxbg, p)
	if err != nil {
		t.Fatal(err)
	}
	if streamStats.BytesRead == 0 {
		t.Fatal("materialize streamed nothing")
	}
	prompt := []int{1, 17, 23}
	const steps = 8
	want, err := sm.GenerateCached(prompt, steps)
	if err != nil {
		t.Fatal(err)
	}

	var streamed []int
	resp, err := eng.ExecuteGenerate(ctxbg, p, Request{
		Task: TaskGenerate, Tokens: prompt, MaxNewTokens: steps,
		OnToken: func(step, token int) { streamed = append(streamed, token) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.GeneratedTokens) != len(want) {
		t.Fatalf("generated %v, want %v", resp.GeneratedTokens, want)
	}
	for i := range want {
		if resp.GeneratedTokens[i] != want[i] {
			t.Fatalf("token %d: engine %d != GenerateCached %d (%v vs %v)",
				i, resp.GeneratedTokens[i], want[i], resp.GeneratedTokens, want)
		}
	}
	if len(streamed) != resp.Gen.NewTokens {
		t.Fatalf("OnToken saw %d tokens, stats say %d", len(streamed), resp.Gen.NewTokens)
	}
	for i, tok := range streamed {
		if tok != want[len(prompt)+i] {
			t.Fatalf("streamed token %d = %d, want %d", i, tok, want[len(prompt)+i])
		}
	}
	if resp.Gen.PromptTokens != len(prompt) || resp.Gen.NewTokens != steps {
		t.Fatalf("gen stats %+v, want %d prompt + %d new", resp.Gen, len(prompt), steps)
	}
	// One stream amortized across all steps: the generate stream reads
	// exactly what one classify execution reads, not once per token.
	if resp.Stats.BytesRead != streamStats.BytesRead {
		t.Fatalf("generate stream read %d bytes, one materialization reads %d",
			resp.Stats.BytesRead, streamStats.BytesRead)
	}
	if got := len(resp.Gen.StepCompute); got != len(prompt)+steps {
		t.Fatalf("%d step timings, want %d", got, len(prompt)+steps)
	}
}

// TestEngineRunDispatchesTasks drives both tasks through the unified
// Run entry point.
func TestEngineRunDispatchesTasks(t *testing.T) {
	eng, w, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)

	tokens := []int{1, 2, 3, 4}
	resp, err := eng.Run(ctxbg, p, Request{Task: TaskClassify, Tokens: tokens})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Logits) != w.Cfg.Classes || resp.Gen != nil || resp.GeneratedTokens != nil {
		t.Fatalf("classify response %+v", resp)
	}
	want, _, err := eng.Execute(ctxbg, p, tokens, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if resp.Logits[i] != want[i] {
			t.Fatalf("Run logits %v != Execute logits %v", resp.Logits, want)
		}
	}

	gresp, err := eng.Run(ctxbg, p, Request{Task: TaskGenerate, Tokens: []int{1, 5}, MaxNewTokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	if gresp.Gen == nil || len(gresp.GeneratedTokens) != 5 {
		t.Fatalf("generate response %+v", gresp)
	}
}

func TestRequestValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		req  Request
		ok   bool
	}{
		{"classify ok", Request{Task: TaskClassify, Tokens: []int{1}}, true},
		{"classify empty", Request{Task: TaskClassify}, false},
		{"classify mask mismatch", Request{Task: TaskClassify, Tokens: []int{1, 2}, Mask: []bool{true}}, false},
		{"generate ok", Request{Task: TaskGenerate, Tokens: []int{1}, MaxNewTokens: 4}, true},
		{"generate empty prompt", Request{Task: TaskGenerate, MaxNewTokens: 4}, false},
		{"generate negative steps", Request{Task: TaskGenerate, Tokens: []int{1}, MaxNewTokens: -1}, false},
		{"unknown task", Request{Task: Task(42), Tokens: []int{1}}, false},
	} {
		if err := tc.req.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestExecuteGenerateCancelMidDecode cancels the context from the
// OnToken callback: the decode must stop within one token, returning
// the partial sequence alongside ctx.Err().
func TestExecuteGenerateCancelMidDecode(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	prompt := []int{1, 17, 23}
	resp, err := eng.ExecuteGenerate(ctx, p, Request{
		Task: TaskGenerate, Tokens: prompt, MaxNewTokens: 8,
		OnToken: func(step, token int) { cancel() }, // cancel after the first token
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if resp == nil {
		t.Fatal("cancelled generate must return the partial response")
	}
	if resp.Gen.NewTokens != 1 || len(resp.GeneratedTokens) != len(prompt)+1 {
		t.Fatalf("decoded %d new tokens (%v), want exactly 1 after cancel",
			resp.Gen.NewTokens, resp.GeneratedTokens)
	}
}

// TestExecuteCancelStopsIOWithinOneLayer is the acceptance test for
// mid-flight cancellation: a context cancelled while the shard stream
// is running stops flash IO within one layer — later layers are never
// read.
func TestExecuteCancelStopsIOWithinOneLayer(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 0)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 0)
	if p.Depth < 3 {
		t.Fatalf("plan depth %d too shallow to observe a mid-stream abort", p.Depth)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Execute can return on its own ctx check before the IO goroutine
	// exits, so the hook's record is read under a lock after settling.
	var mu sync.Mutex
	var ioLayers []int
	eng.ioHook = func(layer int) {
		mu.Lock()
		ioLayers = append(ioLayers, layer)
		mu.Unlock()
		if layer == 1 {
			cancel() // cancelled while layer 1's IO job is about to start
		}
	}
	_, _, err := eng.Execute(ctx, p, []int{1, 2, 3}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	// The IO worker saw layer 0 (read) and layer 1 (cancel observed);
	// layers 2..Depth-1 must never start their IO jobs.
	seen := func() []int {
		mu.Lock()
		defer mu.Unlock()
		return append([]int(nil), ioLayers...)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(seen()) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // would-be layer 2 IO had ample time to run
	if got := seen(); len(got) != 2 || got[1] != 1 {
		t.Fatalf("IO jobs ran for layers %v after cancel at layer 1, want [0 1]", got)
	}

	// Cancellation before execution never touches the stream at all.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	eng.ioHook = nil
	if _, _, err := eng.Execute(pre, p, []int{1, 2, 3}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled execute: err %v, want context.Canceled", err)
	}
}

// TestExecuteGenerateUsesPreloadCache: a warmed plan serves the
// generate stream from the preload buffer exactly like classify.
func TestExecuteGenerateUsesPreloadCache(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 1<<20)
	p, _ := tinyPlan(t, st, 100*time.Millisecond, 64<<10)
	if err := eng.Warm(p); err != nil {
		t.Fatal(err)
	}
	resp, err := eng.ExecuteGenerate(ctxbg, p, Request{Task: TaskGenerate, Tokens: []int{1, 2}, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.CacheHits == 0 {
		t.Fatal("warmed generate saw no cache hits")
	}
}
