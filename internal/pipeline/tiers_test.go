package pipeline

import (
	"testing"
	"time"

	"sti/internal/planner"
)

func TestRequestValidateTargetLatency(t *testing.T) {
	bad := Request{Task: TaskClassify, Tokens: []int{1}, TargetLatency: -time.Millisecond}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative TargetLatency must be rejected")
	}
	ok := Request{Task: TaskClassify, Tokens: []int{1}, TargetLatency: 150 * time.Millisecond}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestWarmSetUnionRespectsBudget warms a two-tier ladder from one
// shared budget: the buffer must hold preloads usable by both tiers,
// never exceed the byte budget, and keep serving cache hits to an
// execution of either tier's plan.
func TestWarmSetUnionRespectsBudget(t *testing.T) {
	eng, _, st := buildTinyEngine(t, 96<<10)
	tight, _ := tinyPlan(t, st, 100*time.Millisecond, 96<<10)
	relaxed, _ := tinyPlan(t, st, 400*time.Millisecond, 96<<10)

	if err := eng.WarmSet([]*planner.Plan{tight, relaxed}); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheBytes(); got == 0 || got > eng.Budget() {
		t.Fatalf("warm set holds %d bytes of %d budget", got, eng.Budget())
	}

	// Both tiers execute against the shared buffer; the bottom-up fill
	// means at least the tight tier's bottom-layer preloads hit.
	for _, p := range []*planner.Plan{tight, relaxed} {
		if _, _, err := eng.Execute(ctxbg, p, []int{1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.CacheBytes(); got > eng.Budget() {
		t.Fatalf("buffer grew past budget after executions: %d > %d", got, eng.Budget())
	}

	// A nil entry in the set is ignored (an unplanned tier slot).
	if err := eng.WarmSet([]*planner.Plan{nil, tight}); err != nil {
		t.Fatal(err)
	}
	if got := eng.CacheBytes(); got > eng.Budget() {
		t.Fatalf("re-warm overfilled: %d > %d", got, eng.Budget())
	}
}
