// Package pipeline executes and simulates STI's layerwise IO/compute
// pipeline (§3.1, §5.5): one IO job per layer streams that layer's
// selected shard versions from flash while earlier layers compute; a
// layer's computation starts once its own IO (and the previous layer's
// computation) has finished.
//
// Two engines live here:
//
//   - Simulate/SimulateSequential: deterministic analytic schedules
//     over a device profile's delay model. All paper-scale experiments
//     (Tables 5–7, Figures 1, 7, 8) run on these, mirroring how the
//     paper itself plans against recorded, replayed delays (§5.2).
//   - Engine: a real concurrent executor (goroutines + channels) that
//     reads shard payloads from a store, decompresses them, assembles
//     sub-layers and runs actual forward passes. Integration tests and
//     the examples run real (tiny) models through it.
package pipeline

import (
	"time"

	"sti/internal/device"
	"sti/internal/planner"
	"sti/internal/trace"
)

// LayerJob describes one pipeline stage pair: the bytes the layer
// streams from flash (0 when fully preloaded/in memory) and its
// computation delay.
type LayerJob struct {
	IOBytes int
	Compute time.Duration
}

// Timeline is a simulated schedule. Index i covers layer i.
type Timeline struct {
	IOStart, IOEnd     []time.Duration
	CompStart, CompEnd []time.Duration
}

// Total returns end-to-end latency.
func (t *Timeline) Total() time.Duration {
	if n := len(t.CompEnd); n > 0 {
		return t.CompEnd[n-1]
	}
	return 0
}

// ComputeStall returns the total time computation sat idle waiting for
// IO — the pipeline "bubbles" of Figure 1.
func (t *Timeline) ComputeStall() time.Duration {
	var stall time.Duration
	prevEnd := time.Duration(0)
	for i := range t.CompStart {
		stall += t.CompStart[i] - prevEnd
		prevEnd = t.CompEnd[i]
	}
	return stall
}

// IOBusy returns total IO transfer time.
func (t *Timeline) IOBusy() time.Duration {
	var busy time.Duration
	for i := range t.IOStart {
		busy += t.IOEnd[i] - t.IOStart[i]
	}
	return busy
}

// ComputeUtilization returns compute busy time over total latency.
func (t *Timeline) ComputeUtilization() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	var busy time.Duration
	for i := range t.CompStart {
		busy += t.CompEnd[i] - t.CompStart[i]
	}
	return float64(busy) / float64(total)
}

// IOUtilization returns IO busy time over total latency.
func (t *Timeline) IOUtilization() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return float64(t.IOBusy()) / float64(total)
}

// Gantt converts the timeline into a renderable chart.
func (t *Timeline) Gantt() *trace.Gantt {
	g := &trace.Gantt{}
	for i := range t.IOStart {
		if t.IOEnd[i] > t.IOStart[i] {
			g.Add("IO", itoa(i), t.IOStart[i], t.IOEnd[i])
		}
	}
	for i := range t.CompStart {
		g.Add("Compute", itoa(i), t.CompStart[i], t.CompEnd[i])
	}
	return g
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// Simulate computes the pipelined schedule: IO jobs run back to back in
// layer order; layer i's computation starts at
// max(IOEnd[i], CompEnd[i-1]).
func Simulate(dev *device.Profile, jobs []LayerJob) *Timeline {
	n := len(jobs)
	t := &Timeline{
		IOStart: make([]time.Duration, n), IOEnd: make([]time.Duration, n),
		CompStart: make([]time.Duration, n), CompEnd: make([]time.Duration, n),
	}
	ioCursor := time.Duration(0)
	compCursor := time.Duration(0)
	for i, j := range jobs {
		t.IOStart[i] = ioCursor
		t.IOEnd[i] = ioCursor + dev.TIO(j.IOBytes)
		ioCursor = t.IOEnd[i]
		start := compCursor
		if t.IOEnd[i] > start {
			start = t.IOEnd[i]
		}
		t.CompStart[i] = start
		t.CompEnd[i] = start + j.Compute
		compCursor = t.CompEnd[i]
	}
	return t
}

// SimulateSequential computes the load-before-execute schedule (the
// paper's Load&Exec baseline): all IO completes before any computation
// starts.
func SimulateSequential(dev *device.Profile, jobs []LayerJob) *Timeline {
	n := len(jobs)
	t := &Timeline{
		IOStart: make([]time.Duration, n), IOEnd: make([]time.Duration, n),
		CompStart: make([]time.Duration, n), CompEnd: make([]time.Duration, n),
	}
	cursor := time.Duration(0)
	for i, j := range jobs {
		t.IOStart[i] = cursor
		t.IOEnd[i] = cursor + dev.TIO(j.IOBytes)
		cursor = t.IOEnd[i]
	}
	for i, j := range jobs {
		t.CompStart[i] = cursor
		t.CompEnd[i] = cursor + j.Compute
		cursor = t.CompEnd[i]
	}
	return t
}

// PlanJobs converts an STI plan into simulator jobs under a sizer:
// per-layer streamed bytes and the profiled per-layer compute delay.
func PlanJobs(p *planner.Plan, sizer planner.Sizer) []LayerJob {
	jobs := make([]LayerJob, p.Depth)
	for l := 0; l < p.Depth; l++ {
		jobs[l] = LayerJob{IOBytes: p.LayerStreamBytes(l, sizer), Compute: p.TCompLayer}
	}
	return jobs
}
