package pipeline

import (
	"fmt"
	"time"
)

// Task selects which inference workload a Request drives through the
// engine. STI's machinery (§3) is task-agnostic — it streams
// resource-elastic shards under a latency target — so the same plan,
// preload buffer and IO/decompress stream serve both tasks; only the
// attention mask and the output head differ.
type Task int

const (
	// TaskClassify is the paper's workload: a BERT-style encoder pass
	// producing class logits from the CLS pooler head.
	TaskClassify Task = iota
	// TaskGenerate is §3.4's declared future work: GPT-style greedy
	// decoding over a causal submodel assembled from the very same
	// shards, with the weight-tied language-model head.
	TaskGenerate
)

func (t Task) String() string {
	switch t {
	case TaskClassify:
		return "classify"
	case TaskGenerate:
		return "generate"
	default:
		return fmt.Sprintf("task(%d)", int(t))
	}
}

// Request is the unified inference request every layer of the system
// passes down: HTTP → scheduler → fleet → pipeline → model. Tokens and
// Mask describe the input sequence for both tasks (Mask is ignored by
// generation, whose attention is causal).
type Request struct {
	Task   Task
	Tokens []int
	Mask   []bool // classify: valid positions, nil = all valid

	// MaxNewTokens bounds greedy decoding for TaskGenerate (the decode
	// also stops at the model's MaxSeq). Must be >= 0; ignored by
	// TaskClassify.
	MaxNewTokens int

	// TargetLatency is this request's own SLO: serving layers resolve
	// it to the tightest cached plan tier that meets it, so interactive
	// and batch callers of the same model ride different
	// fidelity/latency points. Zero means the model's default target.
	// Must be >= 0. The pipeline itself executes whatever plan it is
	// handed; resolution happens above it.
	TargetLatency time.Duration

	// Priority is admission-control advice for schedulers: requests
	// with Priority < 0 are best-effort and are demoted to a coarser
	// plan tier (or shed) earlier under load. The pipeline itself
	// ignores it.
	Priority int

	// Downgraded marks a request a congestion-aware scheduler has
	// demoted: tier resolution serves it one rung coarser down the
	// already-cached plan ladder instead of shedding it, and the tier
	// record in the Response carries the flag so callers can see the
	// degraded fidelity. The pipeline itself ignores it.
	Downgraded bool

	// OnToken, when non-nil, is called synchronously from the decode
	// loop after each generated token (step counts from 0). It is how
	// serving layers stream tokens to clients before the request
	// completes. Ignored by TaskClassify.
	OnToken func(step, token int)
}

// Validate rejects requests no engine could execute.
func (r Request) Validate() error {
	if r.TargetLatency < 0 {
		return fmt.Errorf("pipeline: negative TargetLatency %v", r.TargetLatency)
	}
	switch r.Task {
	case TaskClassify:
		if len(r.Tokens) == 0 {
			return fmt.Errorf("pipeline: classify request has no tokens")
		}
		if len(r.Mask) != 0 && len(r.Mask) != len(r.Tokens) {
			return fmt.Errorf("pipeline: mask length %d != token length %d", len(r.Mask), len(r.Tokens))
		}
	case TaskGenerate:
		if len(r.Tokens) == 0 {
			return fmt.Errorf("pipeline: generate request has empty prompt")
		}
		if r.MaxNewTokens < 0 {
			return fmt.Errorf("pipeline: negative MaxNewTokens %d", r.MaxNewTokens)
		}
	default:
		return fmt.Errorf("pipeline: unknown task %v", r.Task)
	}
	return nil
}

// GenStats reports what one generate execution did: the one-time
// elastic shard stream that materialized the causal submodel, plus the
// per-step decode costs it amortizes.
type GenStats struct {
	// Stream is the cost of the single IO/decompress pass that
	// assembled the submodel — incurred once no matter how many tokens
	// are decoded, so each token's amortized IO is
	// Stream.BytesRead/(PromptTokens+NewTokens).
	Stream ExecStats

	PromptTokens int // prompt tokens consumed through the KV cache
	NewTokens    int // tokens actually generated (≤ MaxNewTokens)

	// StepCompute is the wall time of each decode step (prompt steps
	// first, then generated steps).
	StepCompute []time.Duration

	Total time.Duration
}

// TierInfo identifies the plan tier that served a request — how the
// serving layer resolved the request's TargetLatency against the
// model's plan ladder.
type TierInfo struct {
	// Target is the tier's planned latency target (≤ the request's
	// effective target: the tightest cached tier that meets the SLO).
	Target time.Duration `json:"target_ns"`
	// Fidelity is the served plan's fidelity score in (0, 1]: the
	// fraction of the full model's weight bits the submodel executes.
	Fidelity float64 `json:"fidelity"`
	// CacheHit reports whether the tier came from the plan cache;
	// false means it was planned (and warmed) on demand for this SLO.
	CacheHit bool `json:"cache_hit"`
	// Downgraded reports that congestion demoted the request to a
	// coarser tier than its SLO asked for — served degraded, not shed.
	Downgraded bool `json:"downgraded"`
}

// Response is the unified outcome of one Request.
type Response struct {
	// Logits are class logits for TaskClassify, and the language-model
	// logits of the final decode step for TaskGenerate (nil when the
	// decode was cut short by cancellation).
	Logits []float32

	// GeneratedTokens is the full decoded sequence (prompt + new
	// tokens) for TaskGenerate; nil for TaskClassify.
	GeneratedTokens []int

	// Stats describes the execution stream that served the request.
	// For TaskGenerate it aliases &Gen.Stream.
	Stats *ExecStats

	// Gen holds per-step decoding stats; non-nil only for TaskGenerate.
	Gen *GenStats

	// Tier records the plan tier that served the request. Nil when the
	// caller executed an explicit plan (System.Run) rather than
	// resolving an SLO through a fleet's plan ladder.
	Tier *TierInfo
}
