package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"sti/internal/model"
	"sti/internal/planner"
	"sti/internal/shard"
	"sti/internal/store"
)

// Engine is the real concurrent pipeline executor: an IO goroutine
// streams each layer's shard payloads from the store while the main
// goroutine decompresses (in parallel across a layer's shards, like the
// paper's OpenMP decompressor) and computes the previous layers.
//
// The engine owns the preload buffer (§3.1): a byte-budgeted cache of
// compressed shard payloads that survives across executions. Warm fills
// it per a plan before user engagement; Retain implements §5.5's
// eviction (keep bottom layers, evict from the top) after an execution.
type Engine struct {
	Store    *store.Store
	Resident *model.Weights

	mu          sync.Mutex
	cache       map[shard.Version][]byte
	cacheBytes  int64
	cacheBudget int64
}

// NewEngine opens the resident parameters of a preprocessed store.
func NewEngine(st *store.Store, cacheBudget int64) (*Engine, error) {
	res, err := st.LoadResident()
	if err != nil {
		return nil, err
	}
	return &Engine{
		Store: st, Resident: res,
		cache: make(map[shard.Version][]byte), cacheBudget: cacheBudget,
	}, nil
}

// CacheBytes returns the bytes currently held in the preload buffer.
func (e *Engine) CacheBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheBytes
}

// Budget returns the preload buffer's byte budget.
func (e *Engine) Budget() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheBudget
}

// SetCacheBudget resizes the preload buffer (§3.2: the app or OS can
// change |S| at any time). When shrinking, cached shards are evicted
// from the top layers down — bottom layers are needed earliest on the
// next engagement (§5.5).
func (e *Engine) SetCacheBudget(budget int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheBudget = budget
	if e.cacheBytes <= budget {
		return
	}
	versions := make([]shard.Version, 0, len(e.cache))
	for v := range e.cache {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool {
		if versions[i].Layer != versions[j].Layer {
			return versions[i].Layer > versions[j].Layer // top layers first
		}
		return versions[i].Slice > versions[j].Slice
	})
	for _, v := range versions {
		if e.cacheBytes <= budget {
			break
		}
		e.cacheBytes -= int64(len(e.cache[v]))
		delete(e.cache, v)
	}
}

// Warm brings the buffer to exactly the plan's preload set: shard
// versions the plan does not preload are evicted (a replanned pipeline
// owns the buffer — §3.2), then missing preloads are read in. After
// Warm, the buffer holds PreloadUsed bytes, so it respects any budget
// the plan was given.
func (e *Engine) Warm(p *planner.Plan) error {
	wanted := make(map[shard.Version]bool)
	for l := 0; l < p.Depth; l++ {
		for j, s := range p.Slices[l] {
			if p.Preloaded[l][j] {
				wanted[shard.Version{ID: shard.ID{Layer: l, Slice: s}, Bits: p.Bits[l][j]}] = true
			}
		}
	}
	e.mu.Lock()
	for v := range e.cache {
		if !wanted[v] {
			e.cacheBytes -= int64(len(e.cache[v]))
			delete(e.cache, v)
		}
	}
	e.mu.Unlock()
	for v := range wanted {
		if e.cached(v) != nil {
			continue
		}
		payload, err := e.Store.ReadShardPayload(v.Layer, v.Slice, v.Bits)
		if err != nil {
			return fmt.Errorf("pipeline: warm %v: %w", v, err)
		}
		e.put(v, payload)
	}
	return nil
}

func (e *Engine) cached(v shard.Version) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache[v]
}

func (e *Engine) put(v shard.Version, payload []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[v]; ok {
		return
	}
	e.cache[v] = payload
	e.cacheBytes += int64(len(payload))
}

// ExecStats reports what one pipelined execution did.
type ExecStats struct {
	LayerIO      []time.Duration // wall time of each layer's IO job
	LayerCompute []time.Duration // wall time of each layer's compute job
	Stall        time.Duration   // compute time spent waiting on IO
	BytesRead    int64
	CacheHits    int
	Total        time.Duration
}

type layerDelivery struct {
	layer    int
	payloads [][]byte // indexed like plan.Slices[layer]
	ioTime   time.Duration
	read     int64
	hits     int
	err      error
}

// Execute runs the plan through the IO/compute pipeline on one input
// and returns the class logits.
func (e *Engine) Execute(p *planner.Plan, tokens []int, mask []bool) ([]float32, *ExecStats, error) {
	cfg := e.Resident.Cfg
	if p.Depth > cfg.Layers || p.Width > cfg.Heads {
		return nil, nil, fmt.Errorf("pipeline: plan %dx%d exceeds model %dx%d", p.Depth, p.Width, cfg.Layers, cfg.Heads)
	}
	start := time.Now()
	deliveries := make(chan layerDelivery, p.Depth)
	go e.ioWorker(p, deliveries)

	stats := &ExecStats{
		LayerIO:      make([]time.Duration, p.Depth),
		LayerCompute: make([]time.Duration, p.Depth),
	}
	sm := &model.Submodel{Cfg: cfg, Parent: e.Resident}
	x := sm.Embed(tokens)
	for l := 0; l < p.Depth; l++ {
		waitStart := time.Now()
		d := <-deliveries
		stats.Stall += time.Since(waitStart)
		if d.err != nil {
			return nil, nil, d.err
		}
		if d.layer != l {
			return nil, nil, fmt.Errorf("pipeline: layer %d delivered out of order (want %d)", d.layer, l)
		}
		stats.LayerIO[l] = d.ioTime
		stats.BytesRead += d.read
		stats.CacheHits += d.hits

		compStart := time.Now()
		sub, err := e.assemble(p, l, d.payloads)
		if err != nil {
			return nil, nil, err
		}
		x = model.ForwardLayer(cfg, sub, x, mask)
		stats.LayerCompute[l] = time.Since(compStart)
	}
	logits := sm.Classify(x)
	stats.Total = time.Since(start)
	return logits, stats, nil
}

// ioWorker streams each layer's non-cached shard payloads in layer
// order, one IO job per layer (§3.1).
func (e *Engine) ioWorker(p *planner.Plan, out chan<- layerDelivery) {
	for l := 0; l < p.Depth; l++ {
		d := layerDelivery{layer: l, payloads: make([][]byte, p.Width)}
		ioStart := time.Now()
		for j, s := range p.Slices[l] {
			v := shard.Version{ID: shard.ID{Layer: l, Slice: s}, Bits: p.Bits[l][j]}
			if payload := e.cached(v); payload != nil {
				d.payloads[j] = payload
				d.hits++
				continue
			}
			payload, err := e.Store.ReadShardPayload(l, s, v.Bits)
			if err != nil {
				d.err = fmt.Errorf("pipeline: layer %d shard %v: %w", l, v, err)
				out <- d
				return
			}
			d.payloads[j] = payload
			d.read += int64(len(payload))
		}
		d.ioTime = time.Since(ioStart)
		out <- d
	}
}

// assemble decompresses a layer's payloads concurrently and builds the
// executable sub-layer with the resident miscellaneous parameters.
func (e *Engine) assemble(p *planner.Plan, l int, payloads [][]byte) (*model.SubLayer, error) {
	cfg := e.Resident.Cfg
	shards := make([]*model.ShardWeights, p.Width)
	errs := make([]error, p.Width)
	var wg sync.WaitGroup
	for j := range payloads {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			payload, err := store.DecodePayload(payloads[j])
			if err != nil {
				errs[j] = err
				return
			}
			shards[j], errs[j] = model.UnflattenShard(cfg, l, p.Slices[l][j], payload.Weights())
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return model.AssembleSubLayer(cfg, e.Resident.Layers[l], shards)
}

// Retain implements the post-execution eviction policy (§5.5): cache
// the executed plan's shards from the bottom layer up until the budget
// is full, evicting everything else. Bottom layers are needed earliest
// next time, so preserving them avoids compulsory stalls.
func (e *Engine) Retain(p *planner.Plan) error {
	// Hold the lock across the whole keep-set build and refill so a
	// concurrent SetCacheBudget shrink cannot be overfilled against a
	// stale budget read.
	e.mu.Lock()
	defer e.mu.Unlock()
	keep := make(map[shard.Version]bool)
	var used int64
retain:
	for l := 0; l < p.Depth; l++ {
		for j, s := range p.Slices[l] {
			v := shard.Version{ID: shard.ID{Layer: l, Slice: s}, Bits: p.Bits[l][j]}
			size, err := e.Store.Man.ShardSize(l, s, v.Bits)
			if err != nil {
				return err
			}
			if used+int64(size) > e.cacheBudget {
				break retain
			}
			keep[v] = true
			used += int64(size)
		}
	}
	for v := range e.cache {
		if !keep[v] {
			e.cacheBytes -= int64(len(e.cache[v]))
			delete(e.cache, v)
		}
	}
	// Fill any kept-but-missing entries synchronously (they were just
	// streamed; re-reading is the offline refill of the buffer).
	for v := range keep {
		if _, ok := e.cache[v]; ok {
			continue
		}
		payload, err := e.Store.ReadShardPayload(v.Layer, v.Slice, v.Bits)
		if err != nil {
			return err
		}
		e.cache[v] = payload
		e.cacheBytes += int64(len(payload))
	}
	return nil
}
