package pipeline

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sti/internal/model"
	"sti/internal/obs"
	"sti/internal/planner"
	"sti/internal/shard"
	"sti/internal/store"
)

// Engine is the real concurrent pipeline executor: an IO goroutine
// streams each layer's shard payloads from the store while the main
// goroutine decompresses (in parallel across a layer's shards, like the
// paper's OpenMP decompressor) and computes the previous layers.
//
// The engine owns the preload buffer (§3.1): a byte-budgeted cache of
// compressed shard payloads that survives across executions. Warm fills
// it per a plan before user engagement; Retain implements §5.5's
// eviction (keep bottom layers, evict from the top) after an execution.
type Engine struct {
	Store    *store.Store
	Resident *model.Weights

	// src is where shard payloads are read from: the store itself by
	// default, or a store.SharedCache when many replica engines of one
	// model dedupe their flash reads through a single-flight cache.
	// osrc is src's origin-tagged surface when it has one — the IO
	// worker reads through it so shard-IO trace spans carry a
	// flash/cache/peer/prefetch origin.
	src  store.PayloadReader
	osrc store.OriginReader

	mu          sync.Mutex
	cache       map[shard.Version][]byte
	cacheBytes  int64
	cacheBudget int64
	// kvBytes is decode KV-cache memory charged against the same §3.2
	// grant as the preload buffer: preload shards and KV blocks
	// arbitrate for one budget (cacheBytes + kvBytes ≤ cacheBudget).
	kvBytes int64

	// ioHook, when non-nil, is called at the top of every layer's IO
	// job — before the cancellation check — so tests can cancel a
	// context at an exact layer and assert the stream stops there.
	ioHook func(layer int)

	// obs, when non-nil, observes the shard-access sequence: one
	// (plan target, layer) event as each layer's IO job starts, on
	// every execution path (classify, materialize, warm refills are
	// excluded — they are not demand accesses). It feeds the
	// internal/predict sequence predictor and must be cheap and
	// non-blocking; it is invoked with no engine lock held.
	obs func(target time.Duration, layer int)
}

// NewEngine opens the resident parameters of a preprocessed store.
func NewEngine(st *store.Store, cacheBudget int64) (*Engine, error) {
	res, err := st.LoadResident()
	if err != nil {
		return nil, err
	}
	return NewReplicaEngine(st, res, st, cacheBudget), nil
}

// NewReplicaEngine builds an engine over an already-loaded resident
// weight set, streaming shard payloads through src. This is the
// constructor replica pools use: N engines of one model share a single
// resident copy (it is read-only during execution) and one
// store.SharedCache, so concurrent replicas cost ~1× flash IO instead
// of N×. Each engine still owns its own preload buffer under its own
// byte budget.
func NewReplicaEngine(st *store.Store, res *model.Weights, src store.PayloadReader, cacheBudget int64) *Engine {
	if src == nil {
		src = st
	}
	osrc, _ := src.(store.OriginReader)
	return &Engine{
		Store: st, Resident: res, src: src, osrc: osrc,
		cache: make(map[shard.Version][]byte), cacheBudget: cacheBudget,
	}
}

// SetPayloadSource redirects the engine's shard reads (e.g. through a
// shared single-flight cache). It must be called before the engine
// serves traffic — the source is not synchronized with executions.
func (e *Engine) SetPayloadSource(src store.PayloadReader) {
	if src == nil {
		src = e.Store
	}
	e.src = src
	e.osrc, _ = src.(store.OriginReader)
}

// SetAccessObserver installs (or, with nil, removes) the engine's
// shard-access observer: fn is called with the executing plan's latency
// target and the layer index as each layer's IO job starts. fn must be
// cheap and non-blocking — it runs on the IO goroutine of every
// execution. Installation is synchronized (unlike SetPayloadSource, an
// observer may be attached while streams are in flight: in-flight
// executions pick it up on their next layer boundary or execution).
func (e *Engine) SetAccessObserver(fn func(target time.Duration, layer int)) {
	e.mu.Lock()
	e.obs = fn
	e.mu.Unlock()
}

// observer snapshots the access observer for one execution's stream.
func (e *Engine) observer() func(target time.Duration, layer int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.obs
}

// HasAccessObserver reports whether an access observer is currently
// attached — the lifecycle hook fleets assert on when attaching taps
// at EnablePrediction and detaching them at StopPrediction.
func (e *Engine) HasAccessObserver() bool {
	return e.observer() != nil
}

// CacheBytes returns the bytes currently held in the preload buffer.
func (e *Engine) CacheBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheBytes
}

// Budget returns the preload buffer's byte budget.
func (e *Engine) Budget() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheBudget
}

// KVBytes returns the decode KV-cache bytes charged to the engine.
func (e *Engine) KVBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.kvBytes
}

// ReserveKV charges bytes of decode KV cache against the engine's
// budget, evicting preload shards top-layers-first to make room (KV for
// in-flight streams beats speculative preloads — the stream is live
// now). It reports false, charging nothing, if the budget cannot fit
// the bytes even with the preload buffer emptied. Implements
// model.KVCharger.
func (e *Engine) ReserveKV(bytes int64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evictForLocked(bytes, nil)
	if e.cacheBytes+e.kvBytes+bytes > e.cacheBudget {
		return false
	}
	e.kvBytes += bytes
	return true
}

// ReleaseKV returns previously reserved KV bytes to the budget.
// Implements model.KVCharger.
func (e *Engine) ReleaseKV(bytes int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.kvBytes -= bytes
}

// SetCacheBudget resizes the preload buffer (§3.2: the app or OS can
// change |S| at any time). When shrinking, cached shards are evicted
// from the top layers down — bottom layers are needed earliest on the
// next engagement (§5.5).
func (e *Engine) SetCacheBudget(budget int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cacheBudget = budget
	e.evictForLocked(0, nil)
}

// evictForLocked frees space top-layers-first until need more bytes fit
// within the budget (it may fail to free enough; callers re-check).
// When floor is non-nil only shards strictly above it are eligible —
// bottom layers are needed earliest on the next engagement (§5.5).
// e.mu must be held.
func (e *Engine) evictForLocked(need int64, floor *shard.Version) {
	if e.cacheBytes+e.kvBytes+need <= e.cacheBudget {
		return
	}
	victims := make([]shard.Version, 0, len(e.cache))
	for c := range e.cache {
		if floor != nil && !(c.Layer > floor.Layer || (c.Layer == floor.Layer && c.Slice > floor.Slice)) {
			continue
		}
		victims = append(victims, c)
	}
	sort.Slice(victims, func(i, j int) bool {
		if victims[i].Layer != victims[j].Layer {
			return victims[i].Layer > victims[j].Layer // top layers first
		}
		return victims[i].Slice > victims[j].Slice
	})
	for _, c := range victims {
		if e.cacheBytes+e.kvBytes+need <= e.cacheBudget {
			break
		}
		e.cacheBytes -= int64(len(e.cache[c]))
		delete(e.cache, c)
	}
}

// Warm brings the buffer to exactly the plan's preload set: shard
// versions the plan does not preload are evicted (a replanned pipeline
// owns the buffer — §3.2), then missing preloads are read in. Preloads
// are filled bottom layer first, so if the plan's preload set exceeds
// the engine's current byte budget (e.g. the budget shrank after the
// plan was made), the buffer holds the bottom-most prefix that fits —
// never more than the budget.
func (e *Engine) Warm(p *planner.Plan) error { return e.WarmSet([]*planner.Plan{p}) }

// WarmSet warms the union of several plans' preload sets from one
// shared byte budget — the warm-set management of a plan-tier ladder,
// where a model keeps plans at graduated latency targets and every
// tier's preloads compete for the same buffer. Versions no plan
// preloads are evicted; the union is filled bottom layer first (then
// slice, then ascending bitwidth), so under a tight budget the bottom
// layers — needed earliest by every tier (§5.5) — win the buffer and
// the engine never holds more than its budget.
func (e *Engine) WarmSet(plans []*planner.Plan) error {
	wanted := make(map[shard.Version]bool)
	for _, p := range plans {
		if p == nil {
			continue
		}
		for l := 0; l < p.Depth; l++ {
			for j, s := range p.Slices[l] {
				if p.Preloaded[l][j] {
					wanted[shard.Version{ID: shard.ID{Layer: l, Slice: s}, Bits: p.Bits[l][j]}] = true
				}
			}
		}
	}
	e.mu.Lock()
	for v := range e.cache {
		if !wanted[v] {
			e.cacheBytes -= int64(len(e.cache[v]))
			delete(e.cache, v)
		}
	}
	e.mu.Unlock()
	// Fill bottom-up: with a tight budget the bottom layers — needed
	// earliest on the next engagement (§5.5) — win the buffer.
	versions := make([]shard.Version, 0, len(wanted))
	for v := range wanted {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool {
		if versions[i].Layer != versions[j].Layer {
			return versions[i].Layer < versions[j].Layer
		}
		if versions[i].Slice != versions[j].Slice {
			return versions[i].Slice < versions[j].Slice
		}
		return versions[i].Bits < versions[j].Bits
	})
	for _, v := range versions {
		if e.cached(v) != nil {
			continue
		}
		payload, err := e.src.ReadShardPayload(v.Layer, v.Slice, v.Bits)
		if err != nil {
			return fmt.Errorf("pipeline: warm %v: %w", v, err)
		}
		if !e.put(v, payload) {
			// Budget full: everything after this point is a higher
			// layer the policy would refuse too — stop streaming.
			break
		}
	}
	return nil
}

func (e *Engine) cached(v shard.Version) []byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cache[v]
}

// put inserts a payload into the preload buffer, enforcing the byte
// budget (the ARCHITECTURE.md invariant: the buffer never holds more
// than its budget). If the payload does not fit, cached shards from
// layers strictly above the incoming one are evicted top-first; if it
// still does not fit the insert is refused — bottom layers win ties
// because they are needed earliest on the next engagement (§5.5). It
// reports whether the payload is cached on return.
func (e *Engine) put(v shard.Version, payload []byte) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.cache[v]; ok {
		return true
	}
	need := int64(len(payload))
	e.evictForLocked(need, &v)
	if e.cacheBytes+e.kvBytes+need > e.cacheBudget {
		return false
	}
	e.cache[v] = payload
	e.cacheBytes += need
	return true
}

// ExecStats reports what one pipelined execution did.
type ExecStats struct {
	LayerIO      []time.Duration // wall time of each layer's IO job
	LayerCompute []time.Duration // wall time of each layer's compute job
	Stall        time.Duration   // compute time spent waiting on IO
	BytesRead    int64
	CacheHits    int
	Total        time.Duration
}

type layerDelivery struct {
	layer    int
	payloads [][]byte // indexed like plan.Slices[layer]
	ioTime   time.Duration
	read     int64
	hits     int
	err      error
}

// BatchInput is one sequence of a batched execution.
type BatchInput struct {
	Tokens []int
	Mask   []bool // valid positions; nil = all valid
}

// BatchStats reports what one batched pipelined execution did. The
// embedded ExecStats describes the single shared IO/decompress stream:
// BytesRead and CacheHits are incurred once for the whole batch, so
// each request's amortized IO is BytesRead/Batch.
type BatchStats struct {
	ExecStats
	Batch int // number of sequences served by the one stream
}

// Execute runs the plan through the IO/compute pipeline on one input
// and returns the class logits. Cancelling ctx aborts between layers:
// the IO stream stops within one layer and staged payloads are
// released.
func (e *Engine) Execute(ctx context.Context, p *planner.Plan, tokens []int, mask []bool) ([]float32, *ExecStats, error) {
	logits, bs, err := e.ExecuteBatch(ctx, p, []BatchInput{{Tokens: tokens, Mask: mask}})
	if err != nil {
		return nil, nil, err
	}
	return logits[0], &bs.ExecStats, nil
}

// ExecuteBatch runs the plan's IO/decompress stream once and fans every
// assembled sub-layer out across B stacked sequences: each layer's
// shards are read from flash and decompressed exactly once no matter
// how many sequences ride the batch, so per-request IO is 1/B of
// sequential execution. Per-sequence logits are byte-identical to B
// separate Execute calls (the stacked kernels compute rows
// independently).
//
// Cancellation is checked between layers on both sides of the
// pipeline: the IO goroutine stops streaming within one layer of ctx
// being cancelled, and the compute loop returns ctx.Err() instead of
// starting the next layer. Payloads already staged for unexecuted
// layers are dropped (released to the GC) — only the preload buffer,
// which the plan owns, survives an aborted execution.
func (e *Engine) ExecuteBatch(ctx context.Context, p *planner.Plan, inputs []BatchInput) ([][]float32, *BatchStats, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("pipeline: empty batch")
	}
	for i, in := range inputs {
		// An empty sequence has no CLS row; in a stacked batch it would
		// silently read its neighbor's logits.
		if len(in.Tokens) == 0 {
			return nil, nil, fmt.Errorf("pipeline: batch input %d has no tokens", i)
		}
	}
	cfg := e.Resident.Cfg
	if p.Depth > cfg.Layers || p.Width > cfg.Heads {
		return nil, nil, fmt.Errorf("pipeline: plan %dx%d exceeds model %dx%d", p.Depth, p.Width, cfg.Layers, cfg.Heads)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	stats := &BatchStats{
		ExecStats: ExecStats{
			LayerIO:      make([]time.Duration, p.Depth),
			LayerCompute: make([]time.Duration, p.Depth),
		},
		Batch: len(inputs),
	}
	sm := &model.Submodel{Cfg: cfg, Parent: e.Resident}
	batch := make([][]int, len(inputs))
	masks := make([][]bool, len(inputs))
	for i, in := range inputs {
		batch[i] = in.Tokens
		masks[i] = in.Mask
	}
	x, seqLens := sm.EmbedBatch(batch)
	err := e.streamLayers(ctx, p, &stats.ExecStats, func(l int, sub *model.SubLayer) error {
		x = model.ForwardLayerBatch(cfg, sub, x, seqLens, masks)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	logits := sm.ClassifyBatch(x, seqLens)
	stats.Total = time.Since(start)
	return logits, stats, nil
}

// streamLayers runs the plan's IO/decompress stream once: the IO
// goroutine streams each layer's shards while this goroutine
// decompresses and assembles them, handing each sub-layer to visit in
// layer order. stats (whose per-layer slices the caller sizes to
// p.Depth) accumulates the stream's costs; visit's time is part of the
// layer's compute. Cancellation is checked between layers on both
// sides.
func (e *Engine) streamLayers(ctx context.Context, p *planner.Plan, stats *ExecStats, visit func(l int, sub *model.SubLayer) error) error {
	deliveries := make(chan layerDelivery, p.Depth)
	go e.ioWorker(ctx, p, deliveries)
	for l := 0; l < p.Depth; l++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		waitStart := time.Now()
		d := <-deliveries
		stats.Stall += time.Since(waitStart)
		if d.err != nil {
			return d.err
		}
		if d.layer != l {
			return fmt.Errorf("pipeline: layer %d delivered out of order (want %d)", d.layer, l)
		}
		stats.LayerIO[l] = d.ioTime
		stats.BytesRead += d.read
		stats.CacheHits += d.hits

		compStart := time.Now()
		sub, err := e.assemble(p, l, d.payloads)
		if err != nil {
			return err
		}
		if err := visit(l, sub); err != nil {
			return err
		}
		stats.LayerCompute[l] = time.Since(compStart)
	}
	return nil
}

// ioWorker streams each layer's non-cached shard payloads in layer
// order, one IO job per layer (§3.1). The out channel is buffered to
// the plan's depth so the worker never blocks on a departed consumer;
// cancellation is checked at every layer boundary so flash IO stops
// within one layer of ctx being cancelled.
func (e *Engine) ioWorker(ctx context.Context, p *planner.Plan, out chan<- layerDelivery) {
	observe := e.observer()
	tr := obs.FromContext(ctx)
	for l := 0; l < p.Depth; l++ {
		if e.ioHook != nil {
			e.ioHook(l)
		}
		if err := ctx.Err(); err != nil {
			out <- layerDelivery{layer: l, err: err}
			return
		}
		if observe != nil {
			// The access event fires as the layer's IO starts — the
			// earliest point the (tier, layer) coordinate is certain —
			// so a prefetcher trained on these events runs ahead of the
			// compute front, not behind it.
			observe(p.Target, l)
		}
		d := layerDelivery{layer: l, payloads: make([][]byte, p.Width)}
		origin := ""
		ioStart := time.Now()
		for j, s := range p.Slices[l] {
			v := shard.Version{ID: shard.ID{Layer: l, Slice: s}, Bits: p.Bits[l][j]}
			if payload := e.cached(v); payload != nil {
				d.payloads[j] = payload
				d.hits++
				origin = worseOrigin(origin, store.OriginCache)
				continue
			}
			var payload []byte
			var err error
			if e.osrc != nil {
				var o string
				payload, o, err = e.osrc.ReadShardPayloadOrigin(l, s, v.Bits)
				origin = worseOrigin(origin, o)
			} else {
				payload, err = e.src.ReadShardPayload(l, s, v.Bits)
				origin = worseOrigin(origin, store.OriginFlash)
			}
			if err != nil {
				d.err = fmt.Errorf("pipeline: layer %d shard %v: %w", l, v, err)
				out <- d
				return
			}
			d.payloads[j] = payload
			d.read += int64(len(payload))
		}
		d.ioTime = time.Since(ioStart)
		if tr != nil && origin != "" {
			// One span per layer, tagged with the most expensive origin
			// any of its shards hit — per-shard spans would overflow the
			// slab on wide plans without adding timeline signal.
			tr.Interval(tr.Root(), obs.SpanShardIO, origin, ioStart, time.Now())
		}
		out <- d
	}
}

// originRank orders shard-read origins by cost; a layer's span is
// tagged with the most expensive origin among its shards.
func originRank(o string) int {
	switch o {
	case store.OriginFlash:
		return 4
	case store.OriginPeer:
		return 3
	case store.OriginPrefetch:
		return 2
	case store.OriginCache:
		return 1
	}
	return 0
}

func worseOrigin(a, b string) string {
	if originRank(b) > originRank(a) {
		return b
	}
	return a
}

// assemble decompresses a layer's payloads concurrently and builds the
// executable sub-layer with the resident miscellaneous parameters.
func (e *Engine) assemble(p *planner.Plan, l int, payloads [][]byte) (*model.SubLayer, error) {
	cfg := e.Resident.Cfg
	shards := make([]*model.ShardWeights, p.Width)
	errs := make([]error, p.Width)
	var wg sync.WaitGroup
	for j := range payloads {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			payload, err := store.DecodePayload(payloads[j])
			if err != nil {
				errs[j] = err
				return
			}
			shards[j], errs[j] = model.UnflattenShard(cfg, l, p.Slices[l][j], payload.Weights())
		}(j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return model.AssembleSubLayer(cfg, e.Resident.Layers[l], shards)
}

// Retain implements the post-execution eviction policy (§5.5): cache
// the executed plan's shards from the bottom layer up until the budget
// is full, evicting everything else. Bottom layers are needed earliest
// next time, so preserving them avoids compulsory stalls.
func (e *Engine) Retain(p *planner.Plan) error {
	// Build the keep set and evict under the lock so a concurrent
	// SetCacheBudget shrink cannot be overfilled against a stale budget
	// read — but only collect the kept-but-missing versions there. The
	// flash reads that refill them run unlocked: IO under e.mu would
	// stall every concurrent decode step for the duration of the refill.
	e.mu.Lock()
	keep := make(map[shard.Version]bool)
	used := e.kvBytes // live decode KV is not evictable by Retain
retain:
	for l := 0; l < p.Depth; l++ {
		for j, s := range p.Slices[l] {
			v := shard.Version{ID: shard.ID{Layer: l, Slice: s}, Bits: p.Bits[l][j]}
			size, err := e.Store.Man.ShardSize(l, s, v.Bits)
			if err != nil {
				e.mu.Unlock()
				return err
			}
			if used+int64(size) > e.cacheBudget {
				break retain
			}
			keep[v] = true
			used += int64(size)
		}
	}
	var missing []shard.Version
	for v := range e.cache {
		if !keep[v] {
			e.cacheBytes -= int64(len(e.cache[v]))
			delete(e.cache, v)
		}
	}
	for v := range keep {
		if _, ok := e.cache[v]; !ok {
			missing = append(missing, v)
		}
	}
	e.mu.Unlock()
	// Refill the missing entries synchronously (they were just streamed;
	// re-reading is the offline refill of the buffer). Each insert
	// re-checks the budget under the lock: a shrink or KV reservation may
	// have landed while the payload was being read, and inserting anyway
	// would overfill.
	for _, v := range missing {
		payload, err := e.src.ReadShardPayload(v.Layer, v.Slice, v.Bits)
		if err != nil {
			return err
		}
		e.mu.Lock()
		if _, ok := e.cache[v]; !ok && e.cacheBytes+e.kvBytes+int64(len(payload)) <= e.cacheBudget {
			e.cache[v] = payload
			e.cacheBytes += int64(len(payload))
		}
		e.mu.Unlock()
	}
	return nil
}
