// Package experiments regenerates every table and figure of the
// paper's evaluation (§7) plus the motivation measurements (§2.2) and
// ablations of STI's design choices. Each experiment is a named runner
// producing a formatted report; cmd/sti-experiments and the repository
// benchmarks call into this package.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"sti/internal/acc"
	"sti/internal/device"
	"sti/internal/model"
	"sti/internal/planner"
)

// Result is one regenerated experiment.
type Result struct {
	ID     string
	Title  string
	Output string
}

// runner produces one experiment report.
type runner struct {
	title string
	run   func() (string, error)
}

var registry = map[string]runner{
	"motiv":    {"§2.2 motivation: IO/compute skew on the edge", Motivation},
	"fig1":     {"Figure 1: execution method comparison", Figure1},
	"fig5":     {"Figure 5: shard importance heatmaps (SST-2 vs RTE)", Figure5},
	"fig6":     {"Figure 6: AIB mini example", Figure6},
	"fig7":     {"Figure 7: accuracy/memory tradeoff at T=200ms", Figure7},
	"fig8":     {"Figure 8: submodel comparison, Ours vs StdPL-6bit", Figure8},
	"table5":   {"Table 5: accuracy under target latencies", Table5},
	"table6":   {"Table 6: selected submodel sizes", Table6},
	"table7":   {"Table 7: importance-guided IO budget allocation", Table7},
	"storage":  {"§7.2: storage overhead of shard versions", Storage},
	"sens-t":   {"§7.4: sensitivity to target latency", SensitivityTarget},
	"sens-s":   {"§7.4: sensitivity to preload buffer size", SensitivityPreload},
	"ablate":   {"Ablations: IO granularity, deeper-tie, two-pass", Ablations},
	"energy":   {"§7.2: energy overhead comparison", Energy},
	"lifetime": {"§2.1-2.2: engagement lifetime under the memory killer", Lifetime},
	"sens-l":   {"extension: sensitivity to input sequence length", SensitivitySeqLen},
	"sens-f":   {"extension: sensitivity to DVFS operating point", SensitivityFreq},
}

// IDs lists experiment identifiers in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	out, err := r.run()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	return &Result{ID: id, Title: r.title, Output: out}, nil
}

// Shared setup helpers.

// paperTargets are the target latencies of §7.1.
var paperTargets = []time.Duration{150 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}

// preloadFor returns the paper's preload buffer size per platform
// (Table 5: 1 MB on Odroid, 5 MB on Jetson).
func preloadFor(dev *device.Profile) int64 {
	if dev.Kind == device.GPU {
		return 5 << 20
	}
	return 1 << 20
}

func paperTasks() []*acc.Task {
	cfg := model.BERTBase()
	return acc.Tasks(cfg.Layers, cfg.Heads)
}

func table(write func(w *tabwriter.Writer)) string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	write(w)
	w.Flush()
	return b.String()
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
}

// submodelBits builds the bit matrix of an n×m uniform-bits submodel
// over a task's top slices.
func submodelBits(task *acc.Task, n, m, bits int) ([][]int, [][]int) {
	slices := make([][]int, n)
	bb := make([][]int, n)
	for l := 0; l < n; l++ {
		slices[l] = task.Imp.TopSlices(l, m)
		bb[l] = make([]int, m)
		for j := range bb[l] {
			bb[l][j] = bits
		}
	}
	return slices, bb
}

// planFor runs STI's planner for one experiment cell.
func planFor(dev *device.Profile, task *acc.Task, target time.Duration, preload int64) (*planner.Plan, planner.Request, error) {
	cfg := model.BERTBase()
	req := planner.NewRequest(dev, cfg, task.Imp, planner.AnalyticSizer{Params: cfg.ShardParams()}, target, preload)
	p, err := req.Plan()
	return p, req, err
}
