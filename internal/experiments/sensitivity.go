package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"sti/internal/acc"
	"sti/internal/baselines"
	"sti/internal/device"
	"sti/internal/model"
	"sti/internal/pipeline"
	"sti/internal/planner"
)

// SensitivityTarget sweeps the target latency and reports STI's
// accuracy against the strongest pipeline baseline (StdPL-6bit),
// reproducing §7.4's observation that STI's advantage is largest at
// tight targets and diminishes as T relaxes.
func SensitivityTarget() (string, error) {
	var b strings.Builder
	sweep := []time.Duration{100, 150, 200, 300, 400, 600, 800}
	for _, dev := range device.Platforms() {
		task := acc.TaskByName("SST-2", 12, 12)
		fmt.Fprintf(&b, "== %s / SST-2 ==\n", dev.Name)
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "T\tOurs\tStdPL-6bit\tgain\tsubmodel")
			for _, t := range sweep {
				s := baselines.NewSetup(dev, task, t*time.Millisecond)
				ours, err := baselines.STI(s, preloadFor(dev))
				if err != nil {
					return
				}
				std := baselines.StdPL(s, 6)
				fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%+.1f\t%dx%d\n",
					t*time.Millisecond, ours.Accuracy, std.Accuracy,
					ours.Accuracy-std.Accuracy, ours.Depth, ours.Width)
			}
		}))
		b.WriteByte('\n')
	}
	b.WriteString("paper: advantage most pronounced below 200ms (Odroid) / 400ms (Jetson),\n")
	b.WriteString("diminishing as deeper submodels hit the accuracy plateau.\n")
	return b.String(), nil
}

// SensitivityPreload sweeps the preload buffer size at T=200ms,
// reproducing §7.4 and the Table 7 trend: a few MBs of preload buffer
// buy a consistent accuracy gain, then returns flatten.
func SensitivityPreload() (string, error) {
	var b strings.Builder
	sizes := []int64{0, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20}
	dev := device.Odroid()
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "|S|")
		for _, task := range paperTasks() {
			fmt.Fprintf(w, "\t%s", task.Name)
		}
		fmt.Fprintln(w, "\tstall")
		for _, size := range sizes {
			fmt.Fprintf(w, "%s", baselines.FormatBytes(size))
			var stall time.Duration
			for _, task := range paperTasks() {
				p, _, err := planFor(dev, task, 200*time.Millisecond, size)
				if err != nil {
					return
				}
				stall = p.InitialStall
				fmt.Fprintf(w, "\t%.1f", task.AccuracySubmodel(p.Slices, p.Bits))
			}
			fmt.Fprintf(w, "\t%s\n", ms(stall))
		}
	}))
	b.WriteString("\npaper: a few MBs of preload buffer yield a noticeable, consistent gain\n")
	b.WriteString("(up to +3.7pp QNLI/QQP on Odroid); growth beyond that flattens.\n")
	return b.String(), nil
}

// Ablations quantifies the design choices DESIGN.md calls out:
// layer-grained IO jobs, the deeper-tie rule, and two-pass allocation.
func Ablations() (string, error) {
	var b strings.Builder
	cfg := model.BERTBase()
	dev := device.Odroid()
	task := acc.TaskByName("QQP", 12, 12)
	sizer := planner.AnalyticSizer{Params: cfg.ShardParams()}
	target := 200 * time.Millisecond

	// (1) IO granularity: shard-grained jobs pay the issue overhead per
	// shard instead of per layer (§3.1 explains why STI loads a layer
	// as one IO job).
	p, req, err := planFor(dev, task, target, preloadFor(dev))
	if err != nil {
		return "", err
	}
	layerJobs := pipeline.PlanJobs(p, sizer)
	layerTL := pipeline.Simulate(dev, layerJobs)
	var shardJobs []pipeline.LayerJob
	for l := 0; l < p.Depth; l++ {
		// One job per shard: same bytes, overhead per shard, compute
		// attached to the layer's last shard.
		for j, s := range p.Slices[l] {
			if p.Preloaded[l][j] {
				continue
			}
			job := pipeline.LayerJob{IOBytes: sizer.ShardSize(l, s, p.Bits[l][j])}
			if j == len(p.Slices[l])-1 {
				job.Compute = p.TCompLayer
			}
			shardJobs = append(shardJobs, job)
		}
	}
	shardTL := pipeline.Simulate(dev, shardJobs)
	fmt.Fprintf(&b, "IO granularity (QQP/Odroid/T=200ms): layer-grained total %s vs shard-grained %s (+%s overheads)\n",
		ms(layerTL.Total()), ms(shardTL.Total()), ms(shardTL.Total()-layerTL.Total()))

	// (2) Deeper-tie rule (§5.3).
	req.PreferDeeper = false
	pWide, err := req.Plan()
	if err != nil {
		return "", err
	}
	req.PreferDeeper = true
	pDeep, err := req.Plan()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "deeper-tie rule: prefer-deeper %dx%d acc %.1f vs widest %dx%d acc %.1f\n",
		pDeep.Depth, pDeep.Width, task.AccuracySubmodel(pDeep.Slices, pDeep.Bits),
		pWide.Depth, pWide.Width, task.AccuracySubmodel(pWide.Slices, pWide.Bits))

	// (3) Two-pass allocation (§5.4.3).
	req.TwoPass = false
	pGreedy, err := req.Plan()
	if err != nil {
		return "", err
	}
	req.TwoPass = true
	pTwo, err := req.Plan()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "two-pass allocation: uniform+upgrades acc %.1f vs importance-greedy-only acc %.1f\n",
		task.AccuracySubmodel(pTwo.Slices, pTwo.Bits),
		task.AccuracySubmodel(pGreedy.Slices, pGreedy.Bits))

	// (4) Eviction order (§5.5): retaining bottom layers avoids the
	// cold-start stall on the next engagement; retaining top layers
	// does not.
	budget := preloadFor(dev)
	minBits := 2
	bottomCovered := int64(0)
	remaining := budget
	// Bottom-first retention covers layer 0 upward within the budget.
	for l := 0; l < p.Depth && remaining > 0; l++ {
		for _, s := range p.Slices[l] {
			sz := int64(sizer.ShardSize(l, s, minBits))
			if sz > remaining {
				remaining = 0
				break
			}
			remaining -= sz
			bottomCovered++
		}
	}
	// Top-first retention caches the same byte budget but leaves layer 0
	// on flash, so the next engagement stalls for its whole IO job.
	l0Bytes := 0
	for _, s := range p.Slices[0] {
		l0Bytes += sizer.ShardSize(0, s, minBits)
	}
	topStall := dev.TIO(l0Bytes)
	fmt.Fprintf(&b, "eviction order: bottom-first retention stalls 0ms on next run vs top-first %s (%d shards cached either way)\n",
		ms(topStall), bottomCovered)
	return b.String(), nil
}
