package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"sti/internal/acc"
	"sti/internal/device"
	"sti/internal/model"
	"sti/internal/planner"
)

// SensitivitySeqLen sweeps the padded input length. The paper fixes
// l = 128 for planning (§5.2–5.3) but profiles Tcomp(l, m, freq);
// this experiment shows how the chosen submodel and accuracy shrink as
// inputs grow (attention's quadratic term bites past the reference
// length).
func SensitivitySeqLen() (string, error) {
	var b strings.Builder
	cfg := model.BERTBase()
	task := acc.TaskByName("SST-2", cfg.Layers, cfg.Heads)
	sizer := planner.AnalyticSizer{Params: cfg.ShardParams()}
	dev := device.Odroid()
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "seq len\tTcomp(m=12)\tsubmodel\taccuracy")
		for _, l := range []int{32, 64, 128, 192, 256} {
			req := planner.NewRequest(dev, cfg, task.Imp, sizer, 200*time.Millisecond, 1<<20)
			req.SeqLen = l
			p, err := req.Plan()
			if err != nil {
				return
			}
			fmt.Fprintf(w, "%d\t%s\t%dx%d\t%.1f\n",
				l, ms(dev.TComp(l, 12, 1.0)), p.Depth, p.Width,
				task.AccuracySubmodel(p.Slices, p.Bits))
		}
	}))
	b.WriteString("\nshorter inputs leave compute headroom for deeper submodels; the\n")
	b.WriteString("quadratic attention term shrinks feasible submodels past l=128.\n")
	return b.String(), nil
}

// SensitivityFreq sweeps DVFS operating points at a fixed target. Lower
// frequencies stretch Tcomp, shrinking the feasible submodel but also
// granting each layer more overlap-able IO time — so the fidelity floor
// rises even as FLOPs fall.
func SensitivityFreq() (string, error) {
	var b strings.Builder
	cfg := model.BERTBase()
	task := acc.TaskByName("QQP", cfg.Layers, cfg.Heads)
	sizer := planner.AnalyticSizer{Params: cfg.ShardParams()}
	dev := device.Odroid()
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "freq\tsubmodel\tmin bits\taccuracy")
		for _, f := range dev.Freqs {
			req := planner.NewRequest(dev, cfg, task.Imp, sizer, 200*time.Millisecond, 1<<20)
			req.Freq = f
			p, err := req.Plan()
			if err != nil {
				return
			}
			min := 99
			for l := range p.Bits {
				for _, bits := range p.Bits[l] {
					if bits < min {
						min = bits
					}
				}
			}
			fmt.Fprintf(w, "%.2f\t%dx%d\t%d\t%.1f\n",
				float64(f), p.Depth, p.Width, min,
				task.AccuracySubmodel(p.Slices, p.Bits))
		}
	}))
	b.WriteString("\nthrottled silicon runs smaller submodels but affords higher-fidelity\n")
	b.WriteString("shards per layer (slower compute = more bonus IO per AIB).\n")
	return b.String(), nil
}
