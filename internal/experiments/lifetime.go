package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"sti/internal/acc"
	"sti/internal/baselines"
	"sti/internal/device"
	"sti/internal/lifetime"
	"sti/internal/shard"
)

// Energy reproduces §7.2's qualitative energy analysis: STI draws
// notably more than the low-accuracy pipelines (it keeps both units
// busy) but only moderately more than hold-in-memory at the same
// accuracy, because active compute dominates and the extra IO rides an
// already-hot SoC.
func Energy() (string, error) {
	var b strings.Builder
	dev := device.Odroid()
	task := acc.TaskByName("SST-2", 12, 12)
	s := baselines.NewSetup(dev, task, 200*time.Millisecond)
	outs, err := baselines.All(s, preloadFor(dev))
	if err != nil {
		return "", err
	}
	pm := dev.Power()
	var sti, preloadFull, stdFull float64
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "method\taccuracy\tenergy/inference\tcompute busy\tIO busy")
		for _, o := range outs {
			var compBusy time.Duration
			for i := range o.Timeline.CompStart {
				compBusy += o.Timeline.CompEnd[i] - o.Timeline.CompStart[i]
			}
			e := pm.EnergyJ(o.Timeline.Total(), compBusy, o.Timeline.IOBusy())
			switch o.Method {
			case "Ours":
				sti = e
			case "Preload-full":
				preloadFull = e
			case "StdPL-full":
				stdFull = e
			}
			fmt.Fprintf(w, "%s\t%.1f\t%.2fJ\t%s\t%s\n",
				o.Method, o.Accuracy, e, ms(compBusy), ms(o.Timeline.IOBusy()))
		}
	}))
	fmt.Fprintf(&b, "\nSTI vs StdPL-full: %.2fx energy (more useful work per inference)\n", sti/stdFull)
	fmt.Fprintf(&b, "STI vs Preload-full: %.2fx energy (IO rides the already-active SoC)\n", sti/preloadFull)
	b.WriteString("paper: notably more than low-accuracy baselines; moderately but not\n")
	b.WriteString("significantly more than similar-accuracy PreloadModel-full.\n")
	return b.String(), nil
}

// Lifetime simulates a day of bursty engagements (§2.1 [9,10]) under
// the mobile low-memory killer (§2.2 [6,30]) for the three execution
// strategies of Figure 1, using latencies and IO volumes measured from
// this repository's own pipeline.
func Lifetime() (string, error) {
	var b strings.Builder
	dev := device.Odroid()
	task := acc.TaskByName("SST-2", 12, 12)
	s := baselines.NewSetup(dev, task, 200*time.Millisecond)

	// Derive each strategy's lifetime profile from the simulated
	// pipeline at T=200ms.
	pre := baselines.PreloadModel(s, shard.FullBits)
	std := baselines.StdPL(s, shard.FullBits)
	ours, err := baselines.STI(s, preloadFor(dev))
	if err != nil {
		return "", err
	}
	ours0, err := baselines.STI(s, 0)
	if err != nil {
		return "", err
	}
	coldLoad := dev.TIO(int(pre.MemoryBytes)) + pre.Latency

	apps := []lifetime.App{
		{
			Name: "HoldInMemory", ResidentBytes: pre.MemoryBytes,
			ColdLatency: coldLoad, WarmLatency: pre.Latency,
			ColdBytes: pre.MemoryBytes, WarmBytes: 0,
		},
		{
			Name: "StdPipeline", ResidentBytes: 0,
			ColdLatency: std.Latency, WarmLatency: std.Latency,
			ColdBytes: streamBytes(std), WarmBytes: streamBytes(std),
		},
		{
			Name: "STI", ResidentBytes: ours.MemoryBytes,
			ColdLatency: ours0.Latency + ours0.Plan.InitialStall, WarmLatency: ours.Latency,
			ColdBytes: streamBytes(ours0), WarmBytes: streamBytes(ours),
		},
	}
	w := lifetime.GenerateWorkload(300, 30*time.Minute, 42)
	os := lifetime.DefaultOS()
	b.WriteString("300 engagements, exponential gaps (mean 30min), 1-3 turns each:\n\n")
	for _, app := range apps {
		st := lifetime.Simulate(app, w, os, 7)
		fmt.Fprintf(&b, "%s\n", st)
	}
	b.WriteString("\npaper motivation: an in-memory model is the OS's likely victim and\n")
	b.WriteString("\"benefits no more than 2 executions\" before reclaim; STI's MB-scale\n")
	b.WriteString("buffer survives and keeps every first turn near T.\n")
	return b.String(), nil
}

// streamBytes estimates flash bytes per execution from the outcome's
// timeline IO busy time and the platform bandwidth.
func streamBytes(o baselines.Outcome) int64 {
	dev := device.Odroid()
	return int64(o.Timeline.IOBusy().Seconds() * dev.Bandwidth)
}
