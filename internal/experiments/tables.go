package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"text/tabwriter"

	"sti/internal/acc"
	"sti/internal/baselines"
	"sti/internal/device"
	"sti/internal/model"
	"sti/internal/shard"
)

// Table5 regenerates the full accuracy grid: per platform, per GLUE
// benchmark, per target latency, one row per method.
func Table5() (string, error) {
	var b strings.Builder
	methods := []string{
		"Load&Exec", "StdPL-full", "StdPL-2bit", "StdPL-6bit",
		"Preload-full", "Preload-6bit", "Ours-0MB", "Ours",
	}
	sums := map[string]float64{}
	cells := 0
	for _, dev := range device.Platforms() {
		fmt.Fprintf(&b, "== %s (|S| = %s) ==\n", dev.Name, baselines.FormatBytes(preloadFor(dev)))
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprint(w, "method")
			for _, task := range paperTasks() {
				for _, t := range paperTargets {
					fmt.Fprintf(w, "\t%s@%d", task.Name, t.Milliseconds())
				}
			}
			fmt.Fprintln(w)
			rows := map[string][]string{}
			for _, task := range paperTasks() {
				for _, t := range paperTargets {
					s := baselines.NewSetup(dev, task, t)
					outs, err := baselines.All(s, preloadFor(dev))
					if err != nil {
						continue
					}
					for _, o := range outs {
						rows[o.Method] = append(rows[o.Method], fmt.Sprintf("%.1f", o.Accuracy))
						sums[o.Method] += o.Accuracy
					}
					cells++
				}
			}
			for _, m := range methods {
				fmt.Fprintf(w, "%s\t%s\n", m, strings.Join(rows[m], "\t"))
			}
		}))
		// Gold row for reference.
		var golds []string
		for _, task := range paperTasks() {
			golds = append(golds, fmt.Sprintf("%s %.1f", task.Name, task.Gold))
		}
		fmt.Fprintf(&b, "gold (DistilBERT): %s\n\n", strings.Join(golds, ", "))
	}
	fmt.Fprintf(&b, "average accuracy over all cells:\n")
	for _, m := range methods {
		fmt.Fprintf(&b, "  %-13s %.2f\n", m, sums[m]/float64(cells))
	}
	fmt.Fprintf(&b, "average gain of Ours: vs Load&Exec %+.2f, StdPL-full %+.2f, StdPL-2bit %+.2f, StdPL-6bit %+.2f\n",
		(sums["Ours"]-sums["Load&Exec"])/float64(cells),
		(sums["Ours"]-sums["StdPL-full"])/float64(cells),
		(sums["Ours"]-sums["StdPL-2bit"])/float64(cells),
		(sums["Ours"]-sums["StdPL-6bit"])/float64(cells))
	fmt.Fprintf(&b, "paper (Odroid): +21.05 / +21.05 / +17.13 / +5.83; (Jetson): +18.77 / +18.77 / +6.53 / +3.15\n")
	return b.String(), nil
}

// Table6 reports the submodel sizes each method selects per target
// latency — STI should consistently run the largest (most FLOPs), with
// CPUs choosing deeper/narrower and GPUs shallower/wider shapes.
func Table6() (string, error) {
	var b strings.Builder
	task := acc.TaskByName("SST-2", 12, 12)
	for _, dev := range device.Platforms() {
		fmt.Fprintf(&b, "== %s ==\n", dev.Name)
		b.WriteString(table(func(w *tabwriter.Writer) {
			fmt.Fprintln(w, "T\tLoad&Exec\tStdPL-full\tStdPL-6bit\tPreload-6bit\tOurs")
			for _, t := range paperTargets {
				s := baselines.NewSetup(dev, task, t)
				ours, err := baselines.STI(s, preloadFor(dev))
				if err != nil {
					return
				}
				le := baselines.LoadExec(s)
				sf := baselines.StdPL(s, shard.FullBits)
				s6 := baselines.StdPL(s, 6)
				p6 := baselines.PreloadModel(s, 6)
				fmt.Fprintf(w, "%v\t%dx%d\t%dx%d\t%dx%d\t%dx%d\t%dx%d\n", t,
					le.Depth, le.Width, sf.Depth, sf.Width, s6.Depth, s6.Width,
					p6.Depth, p6.Width, ours.Depth, ours.Width)
			}
		}))
	}
	b.WriteString("paper: STI runs the largest submodel (≈7x the FLOPs of Load&Exec/StdPL-full,\n")
	b.WriteString("1.3x StdPL-2/6bit); CPU favours deep/narrow, GPU shallow/wide submodels.\n")
	return b.String(), nil
}

// Table7 reproduces the importance-allocation case study: a 5×3
// submodel of 2-bit shards receives extra IO budget; shards upgraded to
// 6-bit are picked randomly versus by profiled importance.
func Table7() (string, error) {
	var b strings.Builder
	cfg := model.BERTBase()
	budgets := []int64{400 << 10, 2 << 20, 4 << 20} // 0.4, 2, 4 MB
	upgradeCost := int64(shard.EstimateSizeBytes(cfg.ShardParams(), 6) - shard.EstimateSizeBytes(cfg.ShardParams(), 2))

	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "benchmark\tbudget\trandom\tours\tgain")
		for _, task := range paperTasks() {
			// The paper's case study uses "an intermediate state of
			// planning": a fixed 5×3 submodel of 2-bit shards (slices
			// 0-2 of layers 0-4), before any importance-driven slice
			// selection.
			slices := make([][]int, 5)
			baseBits := make([][]int, 5)
			for l := range slices {
				slices[l] = []int{0, 1, 2}
				baseBits[l] = []int{2, 2, 2}
			}
			// Shards of the submodel in importance order.
			type pos struct{ l, j int }
			var ranked []pos
			for _, id := range task.Imp.Ranked() {
				if id.Layer >= 5 {
					continue
				}
				for j, s := range slices[id.Layer] {
					if s == id.Slice {
						ranked = append(ranked, pos{id.Layer, j})
					}
				}
			}
			for _, budget := range budgets {
				nUp := int(budget / upgradeCost)
				if nUp > len(ranked) {
					nUp = len(ranked)
				}
				// Ours: upgrade the most important shards.
				oursBits := cloneBits(baseBits)
				for _, p := range ranked[:nUp] {
					oursBits[p.l][p.j] = 6
				}
				oursAcc := task.AccuracySubmodel(slices, oursBits)
				// Random: mean over seeded trials.
				var randAcc float64
				const trials = 20
				rng := rand.New(rand.NewSource(1234))
				for t := 0; t < trials; t++ {
					bits := cloneBits(baseBits)
					perm := rng.Perm(len(ranked))
					for _, i := range perm[:nUp] {
						bits[ranked[i].l][ranked[i].j] = 6
					}
					randAcc += task.AccuracySubmodel(slices, bits)
				}
				randAcc /= trials
				fmt.Fprintf(w, "%s\t%.1fMB\t%.1f\t%.1f\t%+.1f\n",
					task.Name, float64(budget)/(1<<20), randAcc, oursAcc, oursAcc-randAcc)
			}
		}
	}))
	b.WriteString("\npaper (Table 7): ours beats random by up to 23.1pp, 8.19pp on average;\n")
	b.WriteString("e.g. QQP 0.4/2/4MB: random 39.2/40.2/59.8 vs ours 56.3/63.3/75.5.\n")
	return b.String(), nil
}

func cloneBits(bits [][]int) [][]int {
	out := make([][]int, len(bits))
	for i := range bits {
		out[i] = append([]int(nil), bits[i]...)
	}
	return out
}

// Storage reports the on-disk cost of storing five quantized fidelity
// versions next to the full model (§7.2).
func Storage() (string, error) {
	var b strings.Builder
	cfg := model.BERTBase()
	shards := cfg.Layers * cfg.Heads
	var quantTotal int64
	b.WriteString(table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "bitwidth\tper shard\tper model")
		for _, bits := range shard.AllBitwidths() {
			size := int64(shard.EstimateSizeBytes(cfg.ShardParams(), bits))
			total := size * int64(shards)
			if bits != shard.FullBits {
				quantTotal += total
			}
			fmt.Fprintf(w, "%d\t%s\t%s\n", bits,
				baselines.FormatBytes(size), baselines.FormatBytes(total))
		}
	}))
	full := int64(shard.EstimateSizeBytes(cfg.ShardParams(), shard.FullBits)) * int64(shards)
	fmt.Fprintf(&b, "\nfive quantized versions {2..6}: %s total (paper: 215 MB)\n", baselines.FormatBytes(quantTotal))
	fmt.Fprintf(&b, "full 32-bit transformer weights: %s (paper: 418 MB incl. embeddings)\n", baselines.FormatBytes(full))
	fmt.Fprintf(&b, "overhead ratio quantized/full: %.2f\n", float64(quantTotal)/float64(full))
	return b.String(), nil
}
