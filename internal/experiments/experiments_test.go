package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	for _, id := range IDs() {
		r, err := Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.Output == "" || r.Title == "" {
			t.Fatalf("%s: empty result", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope"); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestMotivationReproducesSkew(t *testing.T) {
	out, err := Motivation()
	if err != nil {
		t.Fatal(err)
	}
	// The calibrated numbers of §2.2 must appear: ≈339ms IO vs ≈95ms
	// compute on the CPU platform, and a >60% stall fraction.
	if !strings.Contains(out, "341.1ms") || !strings.Contains(out, "97.0ms") {
		t.Fatalf("motivation numbers drifted:\n%s", out)
	}
	if !strings.Contains(out, "stalls 73%") {
		t.Fatalf("stall fraction drifted:\n%s", out)
	}
}

func TestFigure1STIDominates(t *testing.T) {
	out, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// STI must show full compute utilization and zero stall; the
	// load-before-exec method must show a large stall.
	sti := section(out, "(d) STI")
	if !strings.Contains(sti, "compute util 100%") || !strings.Contains(sti, "stall 0.0ms") {
		t.Fatalf("STI timeline not stall-free:\n%s", sti)
	}
	le := section(out, "(b) Load before exec")
	if !strings.Contains(le, "stall 3") && !strings.Contains(le, "stall 2") {
		t.Fatalf("Load&Exec should stall hundreds of ms:\n%s", le)
	}
}

// section extracts the text from a marker to the next blank-line-delimited
// header.
func section(out, marker string) string {
	i := strings.Index(out, marker)
	if i < 0 {
		return ""
	}
	rest := out[i:]
	if j := strings.Index(rest, "\n\n"); j > 0 {
		return rest[:j]
	}
	return rest
}

func TestFigure5Shapes(t *testing.T) {
	out, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	// RTE's top-quartile shards must concentrate in layers 0–5 more
	// than SST-2's.
	sstLine := lineAfter(out, "SST-2", "top-25% shards in layers 0-5:")
	rteLine := lineAfter(out, "RTE", "top-25% shards in layers 0-5:")
	sst := countOf(t, sstLine)
	rte := countOf(t, rteLine)
	if rte <= sst {
		t.Fatalf("RTE concentration %d not above SST-2 %d", rte, sst)
	}
	if rte < 30 {
		t.Fatalf("RTE should be heavily bottom-concentrated, got %d/36", rte)
	}
}

func lineAfter(out, anchor, prefix string) string {
	i := strings.Index(out, anchor)
	if i < 0 {
		return ""
	}
	j := strings.Index(out[i:], prefix)
	if j < 0 {
		return ""
	}
	rest := out[i+j+len(prefix):]
	if k := strings.IndexByte(rest, '\n'); k > 0 {
		rest = rest[:k]
	}
	return strings.TrimSpace(rest)
}

func countOf(t *testing.T, s string) int {
	t.Helper()
	parts := strings.Split(s, "/")
	n, err := strconv.Atoi(strings.TrimSpace(parts[0]))
	if err != nil {
		t.Fatalf("cannot parse concentration %q", s)
	}
	return n
}

func TestFigure6Verdicts(t *testing.T) {
	out, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "candidate A [2 2 2] -> AIB(0)=0s AIB(1)=400ms: VALID") {
		t.Fatalf("candidate A wrong:\n%s", out)
	}
	if !strings.Contains(out, "candidate B [3 3 3] -> AIB(0)=0s AIB(1)=100ms: VALID") {
		t.Fatalf("candidate B wrong:\n%s", out)
	}
	if !strings.Contains(out, "candidate C [5 2 4] -> AIB(0)=0s AIB(1)=-100ms: INVALID") {
		t.Fatalf("candidate C wrong:\n%s", out)
	}
}

func TestFigure7MemoryReduction(t *testing.T) {
	out, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// Every platform/task block must report a ≥20x memory reduction
	// versus Preload-full.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "memory vs Preload-full:") {
			continue
		}
		fields := strings.Fields(line)
		ratio, err := strconv.ParseFloat(strings.TrimSuffix(fields[3], "x"), 64)
		if err != nil {
			t.Fatalf("cannot parse %q", line)
		}
		if ratio < 20 {
			t.Fatalf("memory reduction only %.0fx (paper: 1-2 orders of magnitude): %s", ratio, line)
		}
	}
}

func TestFigure8OursWins(t *testing.T) {
	out, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FLOPs ratio Ours/StdPL-6bit:") {
		t.Fatalf("missing FLOPs ratio:\n%s", out)
	}
	// The accuracy gain must be positive.
	i := strings.Index(out, "accuracy gain ")
	if i < 0 || out[i+len("accuracy gain ")] != '+' {
		t.Fatalf("Ours must gain accuracy over StdPL-6bit:\n%s", out)
	}
}

func TestTable7OursBeatsRandomEverywhere(t *testing.T) {
	out, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 || fields[0] == "benchmark" {
			continue
		}
		if !strings.HasSuffix(fields[1], "MB") {
			continue
		}
		gain, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			continue
		}
		rows++
		if gain < 0 {
			t.Fatalf("importance-guided allocation lost to random: %s", line)
		}
	}
	if rows != 12 {
		t.Fatalf("expected 12 Table 7 rows, parsed %d:\n%s", rows, out)
	}
}

func TestStorageMatchesPaperScale(t *testing.T) {
	out, err := Storage()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "five quantized versions {2..6}: 207.4MB") {
		t.Fatalf("storage accounting drifted (paper: 215 MB):\n%s", out)
	}
}

func TestSensitivityPreloadMonotone(t *testing.T) {
	out, err := SensitivityPreload()
	if err != nil {
		t.Fatal(err)
	}
	// The SST-2 column must be non-decreasing in |S|.
	var prev float64 = -1
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 6 || fields[0] == "|S|" {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		if v < prev-1e-9 {
			t.Fatalf("SST-2 accuracy decreased as |S| grew: %s", line)
		}
		prev = v
	}
}

func TestEnergyOrdering(t *testing.T) {
	out, err := Energy()
	if err != nil {
		t.Fatal(err)
	}
	// STI must cost more than the stalling pipeline (it does more
	// work) but stay within ~1.5x of the similar-accuracy preload
	// baseline.
	var vsStd, vsPre float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "STI vs StdPL-full:") {
			fmt.Sscanf(strings.Fields(line)[3], "%f", &vsStd)
		}
		if strings.HasPrefix(line, "STI vs Preload-full:") {
			fmt.Sscanf(strings.Fields(line)[3], "%f", &vsPre)
		}
	}
	if vsStd <= 1.0 {
		t.Fatalf("STI should consume notably more than StdPL-full, got %.2fx", vsStd)
	}
	if vsPre <= 1.0 || vsPre > 1.5 {
		t.Fatalf("STI vs Preload-full should be moderately above 1x, got %.2fx", vsPre)
	}
}

func TestLifetimeMotivation(t *testing.T) {
	out, err := Lifetime()
	if err != nil {
		t.Fatal(err)
	}
	kills := func(app string) int {
		line := lineAfter(out, app, "kills=")
		var n int
		fmt.Sscanf(line, "%d", &n)
		return n
	}
	if kills("HoldInMemory") < 150 {
		t.Fatalf("hold-in-memory must be the usual memory-killer victim:\n%s", out)
	}
	if kills("STI") > 30 {
		t.Fatalf("STI's MB-scale buffer should survive:\n%s", out)
	}
}

func TestSeqLenSweepShrinksSubmodels(t *testing.T) {
	out, err := SensitivitySeqLen()
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy at l=32 must exceed accuracy at l=256 (more compute
	// headroom at short inputs).
	var accs []float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] == "seq" {
			continue
		}
		if v, err := strconv.ParseFloat(fields[3], 64); err == nil {
			accs = append(accs, v)
		}
	}
	if len(accs) != 5 {
		t.Fatalf("parsed %d rows:\n%s", len(accs), out)
	}
	if accs[0] <= accs[len(accs)-1] {
		t.Fatalf("short inputs should score higher: %v", accs)
	}
}

func TestFreqSweepRuns(t *testing.T) {
	out, err := SensitivityFreq()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "0.50") || !strings.Contains(out, "1.00") {
		t.Fatalf("DVFS sweep missing operating points:\n%s", out)
	}
}
