package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"sti/internal/acc"
	"sti/internal/baselines"
	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/pipeline"
	"sti/internal/planner"
	"sti/internal/shard"
)

// Motivation reproduces the §2.2 measurements that motivate STI: the
// skew between a transformer layer's IO and compute delays, and the
// end-to-end cost of loading DistilBERT before executing it.
func Motivation() (string, error) {
	var b strings.Builder
	cfg := model.BERTBase()
	layerBytes := cfg.LayerParams() * 4
	for _, dev := range device.Platforms() {
		io := dev.TIO(layerBytes)
		comp := dev.TComp(128, cfg.Heads, 1.0)
		fmt.Fprintf(&b, "%s: one 12-head layer: IO %s vs compute %s (skew %.1fx)\n",
			dev.Name, ms(io), ms(comp), float64(io)/float64(comp))
	}
	// DistilBERT (6 layers) load-then-execute.
	od := device.Odroid()
	distilParams := int64(6 * cfg.LayerParams() * 4)
	load := od.TIO(int(distilParams))
	exec := 6 * od.TComp(128, cfg.Heads, 1.0)
	fmt.Fprintf(&b, "\nDistilBERT on %s: load %.1fs (%d MB params) + execute %.1fs = %.1fs total\n",
		od.Name, load.Seconds(), distilParams/1e6, exec.Seconds(), (load + exec).Seconds())
	fmt.Fprintf(&b, "paper §2.2: 3.1s load of a 240MB file, 3.6s total; §1: 2.1s for 170MB of parameters\n")

	// Stall fraction of the standard pipeline.
	jobs := make([]pipeline.LayerJob, 6)
	for i := range jobs {
		jobs[i] = pipeline.LayerJob{IOBytes: layerBytes, Compute: od.TComp(128, cfg.Heads, 1.0)}
	}
	tl := pipeline.Simulate(od, jobs)
	fmt.Fprintf(&b, "standard layerwise pipeline: compute stalls %.0f%% of total latency (paper: >72%%)\n",
		100*float64(tl.ComputeStall())/float64(tl.Total()))
	return b.String(), nil
}

// Figure1 contrasts the four execution methods on timeline, memory and
// accuracy, mirroring the paper's opening figure.
func Figure1() (string, error) {
	var b strings.Builder
	dev := device.Odroid()
	task := acc.TaskByName("SST-2", 12, 12)
	target := 400 * time.Millisecond
	s := baselines.NewSetup(dev, task, target)

	outs := []baselines.Outcome{
		baselines.PreloadModel(s, shard.FullBits), // (a) hold in memory
		baselines.LoadExec(s),                     // (b) load before execute
		baselines.StdPL(s, shard.FullBits),        // (c) standard pipeline
	}
	ours, err := baselines.STI(s, preloadFor(dev))
	if err != nil {
		return "", err
	}
	outs = append(outs, ours) // (d) STI
	labels := []string{"(a) Hold in memory", "(b) Load before exec", "(c) Standard pipeline", "(d) STI (ours)"}

	fmt.Fprintf(&b, "SST-2 on %s, T=%v\n\n", dev.Name, target)
	for i, o := range outs {
		fmt.Fprintf(&b, "%s — %s\n", labels[i], o.String())
		g := o.Timeline.Gantt()
		b.WriteString(g.Render(64))
		fmt.Fprintf(&b, "compute util %.0f%%  IO util %.0f%%  stall %s\n\n",
			100*o.Timeline.ComputeUtilization(), 100*o.Timeline.IOUtilization(), ms(o.Timeline.ComputeStall()))
	}
	fmt.Fprintf(&b, "paper: STI ≈170× smaller memory than hold-in-memory at similar accuracy,\n")
	fmt.Fprintf(&b, "and much higher accuracy than load-on-demand methods.\n")
	return b.String(), nil
}

// Figure5 profiles shard importance for SST-2 and RTE against the
// accuracy surface using the paper's procedure and renders the
// heatmaps.
func Figure5() (string, error) {
	var b strings.Builder
	for _, name := range []string{"SST-2", "RTE"} {
		task := acc.TaskByName(name, 12, 12)
		profiled := importance.Profile(task, 12, 12, 2, 32)
		fmt.Fprintf(&b, "%s (profiled against dev accuracy; lighter = more important):\n", name)
		b.WriteString(profiled.Heatmap())
		// Concentration summary: share of top-36 shards in layers 0–5.
		rank := profiled.Ranked()
		bottom := 0
		for _, id := range rank[:36] {
			if id.Layer < 6 {
				bottom++
			}
		}
		fmt.Fprintf(&b, "top-25%% shards in layers 0-5: %d/36\n\n", bottom)
	}
	b.WriteString("paper: SST-2 importance spreads across layers; RTE concentrates on layers 0-5.\n")
	return b.String(), nil
}

// Figure6 walks the paper's AIB example: a 2×3 submodel, T=2s,
// Tcomp=1s, three preloaded 2-bit shards, and candidates A/B/C.
func Figure6() (string, error) {
	var b strings.Builder
	tio := func(bits int) time.Duration { return time.Duration(bits) * 100 * time.Millisecond }
	base := func() *planner.AIB {
		a := planner.NewAIB(2, 600*time.Millisecond, time.Second)
		for i := 0; i < 3; i++ {
			a.Charge(0, tio(2)) // the preloaded shards fill S'
		}
		return a
	}
	fmt.Fprintf(&b, "2x3 submodel, T=2s, Tcomp=1s, preload: three 2-bit shards of L0\n")
	fmt.Fprintf(&b, "initial: AIB(0)=0.6s (bonus IO), AIB(1)=1.6s; after preload charges: %v\n\n", base())
	for _, cand := range []struct {
		name string
		bits []int
	}{
		{"A", []int{2, 2, 2}},
		{"B", []int{3, 3, 3}},
		{"C", []int{5, 2, 4}},
	} {
		a := base()
		for _, bits := range cand.bits {
			a.Charge(1, tio(bits))
		}
		verdict := "VALID"
		if !a.Valid() {
			verdict = "INVALID (stalls the pipeline)"
		}
		fmt.Fprintf(&b, "candidate %s %v -> %v: %s\n", cand.name, cand.bits, a, verdict)
	}
	b.WriteString("\npaper: A and B valid; C invalid with AIB(1) = -0.1s.\n")
	return b.String(), nil
}

// Figure7 reports the accuracy/memory tradeoff of every method at
// T=200ms on SST-2 and QQP for both platforms.
func Figure7() (string, error) {
	var b strings.Builder
	for _, dev := range device.Platforms() {
		for _, taskName := range []string{"SST-2", "QQP"} {
			task := acc.TaskByName(taskName, 12, 12)
			s := baselines.NewSetup(dev, task, 200*time.Millisecond)
			outs, err := baselines.All(s, preloadFor(dev))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%s / %s (T=200ms):\n", dev.Name, taskName)
			b.WriteString(table(func(w *tabwriter.Writer) {
				fmt.Fprintln(w, "method\tmemory\taccuracy\tsubmodel")
				for _, o := range outs {
					fmt.Fprintf(w, "%s\t%s\t%.1f\t%dx%d\n",
						o.Method, baselines.FormatBytes(o.MemoryBytes), o.Accuracy, o.Depth, o.Width)
				}
			}))
			// Headline ratios.
			var ours, full, six baselines.Outcome
			for _, o := range outs {
				switch o.Method {
				case "Ours":
					ours = o
				case "Preload-full":
					full = o
				case "Preload-6bit":
					six = o
				}
			}
			fmt.Fprintf(&b, "memory vs Preload-full: %.0fx lower; vs Preload-6bit: %.0fx lower; accuracy gap to full: %+.1fpp\n\n",
				float64(full.MemoryBytes)/float64(max64(ours.MemoryBytes, 1)),
				float64(six.MemoryBytes)/float64(max64(ours.MemoryBytes, 1)),
				ours.Accuracy-full.Accuracy)
		}
	}
	b.WriteString("paper: 204x lower memory than Preload-full at <1pp average accuracy loss; 41x vs Preload-6bit.\n")
	return b.String(), nil
}

// Figure8 compares the submodels executed by StdPL-6bit and STI on
// SST-2/Odroid at T=200ms, including the per-shard bitwidth layout and
// the FLOPs ratio.
func Figure8() (string, error) {
	var b strings.Builder
	dev := device.Odroid()
	task := acc.TaskByName("SST-2", 12, 12)
	s := baselines.NewSetup(dev, task, 200*time.Millisecond)

	std := baselines.StdPL(s, 6)
	ours, err := baselines.STI(s, preloadFor(dev))
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "SST-2 on %s, T=200ms\n\n", dev.Name)
	fmt.Fprintf(&b, "(a) StdPL-6bit: %dx%d uniform 6-bit, accuracy %.1f\n", std.Depth, std.Width, std.Accuracy)
	for l := 0; l < std.Depth; l++ {
		fmt.Fprintf(&b, "  L%02d:", l)
		for j := 0; j < std.Width; j++ {
			fmt.Fprintf(&b, " %3d", 6)
		}
		fmt.Fprintln(&b)
	}
	p := ours.Plan
	fmt.Fprintf(&b, "\n(b) Ours: %dx%d mixed bitwidths, accuracy %.1f (preloaded marked *)\n", p.Depth, p.Width, ours.Accuracy)
	for l := 0; l < p.Depth; l++ {
		fmt.Fprintf(&b, "  L%02d:", l)
		for j := range p.Bits[l] {
			star := " "
			if p.Preloaded[l][j] {
				star = "*"
			}
			fmt.Fprintf(&b, " %3d%s", p.Bits[l][j], star)
		}
		fmt.Fprintln(&b)
	}
	cfg := model.BERTBase()
	fOurs := model.FLOPs(cfg, p.Depth, p.Width, 128)
	fStd := model.FLOPs(cfg, std.Depth, std.Width, 128)
	fmt.Fprintf(&b, "\nFLOPs ratio Ours/StdPL-6bit: %.2fx; accuracy gain %+.1fpp\n",
		float64(fOurs)/float64(fStd), ours.Accuracy-std.Accuracy)
	fmt.Fprintf(&b, "paper: 1.25x FLOPs and +9.2pp via the preload buffer warming the pipeline.\n")
	return b.String(), nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
