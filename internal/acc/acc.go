// Package acc is the paper-scale accuracy surface: an analytic model of
// dev-set accuracy as a function of which shards a submodel executes
// and at what fidelity.
//
// The paper measures accuracy by running real 110M-parameter DynaBERT
// checkpoints on real GLUE dev sets. Those checkpoints (and the compute
// to fine-tune replacements) are unavailable offline, so — per the
// reproduction's substitution rule — experiments at paper scale score
// plans with this surface instead, while the "real path"
// (internal/train + internal/glue) measures genuine accuracy on tiny
// trained models.
//
// The surface is built from first principles the literature supports
// and is anchored to the paper's published numbers:
//
//   - every executed shard contributes importance-weighted capacity,
//     with deeper layers contributing with geometric decay (depth has
//     diminishing returns — §7.4, [19, 26]);
//   - fidelity scales a shard's contribution by g(bits)^γ, with γ a
//     per-task sensitivity (QQP/QNLI degrade sharply at 2 bits, SST-2
//     is robust — visible in Table 7's spread);
//   - total capacity maps to accuracy through a saturating exponential
//     between the task's floor (majority-class/chance) and gold
//     (DistilBERT, Table 5) accuracy.
//
// The same per-shard weights drive importance.Synthetic's Figure 5
// maps, so profiling this surface (importance.Profile) recovers a
// ranking consistent with the true contributions — exactly the
// assumption STI's planner relies on.
package acc

import (
	"fmt"
	"math"

	"sti/internal/importance"
)

// Fidelity factors g(bits): the fraction of a shard's contribution that
// survives quantization to the given bitwidth (before per-task
// sensitivity). Calibrated against GOBO's reported degradation profile:
// 3 bits nearly lossless on BERT, 2 bits noticeably lossy.
var fidelity = map[int]float64{
	0:  0, // shard not executed
	1:  0.35,
	2:  0.55,
	3:  0.72,
	4:  0.82,
	5:  0.89,
	6:  0.95,
	8:  0.98,
	32: 1.0,
}

// Task is one GLUE benchmark's accuracy surface at a given model
// geometry.
type Task struct {
	Name  string
	Gold  float64 // DistilBERT accuracy (Table 5 "gold")
	Floor float64 // chance / degenerate-classifier accuracy

	Alpha      float64 // saturation rate of capacity → quality
	DepthDecay float64 // ρ: geometric decay of layer contribution
	Sens       float64 // fidelity sensitivity: loss multiplier on (1−g)

	Layers, Slices int
	Imp            *importance.Table // shard weights (Figure 5 shape)

	weights [][]float64 // ρ^l · normalized importance, summing to 1
}

// NewTask builds a task surface over an N×M geometry using the named
// synthetic importance distribution.
func NewTask(name string, gold, floor, alpha, depthDecay, sens float64, layers, slices int) *Task {
	t := &Task{
		Name: name, Gold: gold, Floor: floor,
		Alpha: alpha, DepthDecay: depthDecay, Sens: sens,
		Layers: layers, Slices: slices,
		Imp: importance.Synthetic(name, layers, slices),
	}
	u := t.Imp.Normalized()
	t.weights = make([][]float64, layers)
	var z float64
	for l := 0; l < layers; l++ {
		t.weights[l] = make([]float64, slices)
		decay := math.Pow(depthDecay, float64(l))
		for s := 0; s < slices; s++ {
			t.weights[l][s] = decay * u[l][s]
			z += t.weights[l][s]
		}
	}
	for l := range t.weights {
		for s := range t.weights[l] {
			t.weights[l][s] /= z
		}
	}
	return t
}

// Tasks returns the four GLUE benchmarks of Table 3 at the given
// geometry, with gold accuracies from DistilBERT and per-task
// sensitivity calibrated to the paper's anchors (Table 7, Table 5
// averages).
func Tasks(layers, slices int) []*Task {
	return []*Task{
		NewTask("SST-2", 91.3, 50.9, 4.5, 0.80, 0.60, layers, slices),
		NewTask("RTE", 59.9, 47.3, 3.0, 0.70, 1.55, layers, slices),
		NewTask("QNLI", 89.2, 50.5, 2.6, 0.82, 2.11, layers, slices),
		NewTask("QQP", 88.5, 31.6, 2.8, 0.80, 1.90, layers, slices),
	}
}

// TaskByName returns the named task surface or nil.
func TaskByName(name string, layers, slices int) *Task {
	for _, t := range Tasks(layers, slices) {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Fidelity returns the task-adjusted fidelity factor for a bitwidth:
// the task scales the base quantization loss (1−g) by its sensitivity,
// clamped to [0, 1]. A multiplier keeps the high-fidelity end (5/6 bits
// vs full) close together — matching the paper's observation that
// bitwidths beyond 6 add little — while spreading the low end where
// sensitive tasks collapse (Table 7's QNLI/QQP near-floor rows).
func (t *Task) Fidelity(bits int) float64 {
	g, ok := fidelity[bits]
	if !ok {
		panic(fmt.Sprintf("acc: no fidelity factor for %d bits", bits))
	}
	if bits == 0 {
		return 0
	}
	f := 1 - (1-g)*t.Sens
	if f < 0 {
		return 0
	}
	return f
}

// Capacity returns the importance-weighted, fidelity-scaled fraction of
// the full model's capacity that the given bit assignment executes.
// bits[l][s] = 0 means shard (l, s) is not part of the submodel.
func (t *Task) Capacity(bits [][]int) float64 {
	if len(bits) != t.Layers {
		panic(fmt.Sprintf("acc: bit matrix has %d layers, task has %d", len(bits), t.Layers))
	}
	var c float64
	for l, row := range bits {
		if len(row) != t.Slices {
			panic(fmt.Sprintf("acc: layer %d has %d slices, task has %d", l, len(row), t.Slices))
		}
		for s, b := range row {
			if b == 0 {
				continue
			}
			c += t.weights[l][s] * t.Fidelity(b)
		}
	}
	return c
}

// AccuracyWithBits maps a full-model bit assignment to dev accuracy in
// percent. It implements importance.Evaluator, so the paper's profiling
// procedure runs against this surface unchanged.
func (t *Task) AccuracyWithBits(bits [][]int) float64 {
	c := t.Capacity(bits)
	q := (1 - math.Exp(-t.Alpha*c)) / (1 - math.Exp(-t.Alpha))
	return t.Floor + (t.Gold-t.Floor)*q
}

// AccuracySubmodel scores an n×m submodel where slices[l] lists the
// slice indexes used in layer l and bits[l][j] the bitwidth of
// slices[l][j].
func (t *Task) AccuracySubmodel(slices [][]int, bits [][]int) float64 {
	full := make([][]int, t.Layers)
	for l := range full {
		full[l] = make([]int, t.Slices)
	}
	for l := range slices {
		for j, s := range slices[l] {
			full[l][s] = bits[l][j]
		}
	}
	return t.AccuracyWithBits(full)
}

var _ importance.Evaluator = (*Task)(nil)
