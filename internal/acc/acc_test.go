package acc

import (
	"math"
	"testing"

	"sti/internal/importance"
)

func fullBits(layers, slices, b int) [][]int {
	m := make([][]int, layers)
	for l := range m {
		m[l] = make([]int, slices)
		for s := range m[l] {
			m[l][s] = b
		}
	}
	return m
}

// submodel5x3 returns a 5×3 submodel bit matrix at the given bitwidth,
// using each layer's top-3 important slices (as the planner would).
func submodel5x3(t *Task, b int) [][]int {
	m := fullBits(t.Layers, t.Slices, 0)
	for l := 0; l < 5; l++ {
		for _, s := range t.Imp.TopSlices(l, 3) {
			m[l][s] = b
		}
	}
	return m
}

func TestFullModelReachesGold(t *testing.T) {
	for _, task := range Tasks(12, 12) {
		got := task.AccuracyWithBits(fullBits(12, 12, 32))
		if math.Abs(got-task.Gold) > 1e-9 {
			t.Errorf("%s: full model = %.2f, gold %.2f", task.Name, got, task.Gold)
		}
	}
}

func TestEmptyModelAtFloor(t *testing.T) {
	for _, task := range Tasks(12, 12) {
		got := task.AccuracyWithBits(fullBits(12, 12, 0))
		if math.Abs(got-task.Floor) > 1e-9 {
			t.Errorf("%s: empty model = %.2f, floor %.2f", task.Name, got, task.Floor)
		}
	}
}

func TestAccuracyMonotoneInBits(t *testing.T) {
	for _, task := range Tasks(12, 12) {
		prev := 0.0
		for _, b := range []int{2, 3, 4, 5, 6, 32} {
			got := task.AccuracyWithBits(fullBits(12, 12, b))
			if got <= prev {
				t.Fatalf("%s: accuracy not increasing at %d bits: %.3f <= %.3f", task.Name, b, got, prev)
			}
			prev = got
		}
	}
}

func TestAccuracyMonotoneInDepthAndWidth(t *testing.T) {
	task := TaskByName("SST-2", 12, 12)
	accFor := func(n, m int) float64 {
		bits := fullBits(12, 12, 0)
		for l := 0; l < n; l++ {
			for _, s := range task.Imp.TopSlices(l, m) {
				bits[l][s] = 6
			}
		}
		return task.AccuracyWithBits(bits)
	}
	for n := 1; n < 12; n++ {
		if accFor(n+1, 6) <= accFor(n, 6) {
			t.Fatalf("accuracy not increasing in depth at n=%d", n)
		}
	}
	for m := 1; m < 12; m++ {
		if accFor(6, m+1) <= accFor(6, m) {
			t.Fatalf("accuracy not increasing in width at m=%d", m)
		}
	}
}

func TestDepthDiminishingReturns(t *testing.T) {
	// §7.4: accuracy sees diminishing returns as depth grows.
	task := TaskByName("SST-2", 12, 12)
	accFor := func(n int) float64 {
		bits := fullBits(12, 12, 0)
		for l := 0; l < n; l++ {
			for s := 0; s < 12; s++ {
				bits[l][s] = 32
			}
		}
		return task.AccuracyWithBits(bits)
	}
	gainEarly := accFor(4) - accFor(2)
	gainLate := accFor(12) - accFor(10)
	if gainLate >= gainEarly {
		t.Fatalf("no diminishing returns: early gain %.2f, late gain %.2f", gainEarly, gainLate)
	}
}

func TestTaskSensitivityOrdering(t *testing.T) {
	// QNLI and QQP must lose much more at 2 bits than SST-2 (Table 7:
	// QNLI/QQP sit near floor for a 2-bit 5×3 submodel).
	loss := func(name string) float64 {
		task := TaskByName(name, 12, 12)
		full := task.AccuracyWithBits(fullBits(12, 12, 32))
		low := task.AccuracyWithBits(fullBits(12, 12, 2))
		return (full - low) / (task.Gold - task.Floor)
	}
	if loss("QNLI") <= loss("SST-2") || loss("QQP") <= loss("SST-2") {
		t.Fatalf("sensitivity ordering wrong: SST-2 %.3f QNLI %.3f QQP %.3f",
			loss("SST-2"), loss("QNLI"), loss("QQP"))
	}
}

func TestProfilingRecoversImportanceRanking(t *testing.T) {
	// Running the paper's profiling procedure against the surface must
	// produce a ranking strongly correlated with the true contribution
	// weights — the planner's core assumption.
	task := TaskByName("RTE", 12, 12)
	profiled := importance.Profile(task, 12, 12, 2, 32)
	rank := profiled.Ranked()
	// The top profiled shard must be among the truly heaviest shards.
	top := rank[0]
	var heavier int
	for l := 0; l < 12; l++ {
		for s := 0; s < 12; s++ {
			if task.weights[l][s] > task.weights[top.Layer][top.Slice] {
				heavier++
			}
		}
	}
	if heavier > 3 {
		t.Fatalf("top profiled shard is only rank %d by true weight", heavier+1)
	}
}

func TestRTEBottomHeavy(t *testing.T) {
	// Figure 5b: RTE importance concentrates on layers 0–5.
	task := TaskByName("RTE", 12, 12)
	var bottom, top float64
	for l := 0; l < 6; l++ {
		for s := 0; s < 12; s++ {
			bottom += task.weights[l][s]
			top += task.weights[l+6][s]
		}
	}
	if bottom < 2*top {
		t.Fatalf("RTE weights not bottom-heavy: bottom %.3f vs top %.3f", bottom, top)
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// Loose anchors against Table 7's "Ours" row trend: a 5×3 submodel
	// of 2-bit shards sits well below gold; SST-2 retains most of its
	// range while QNLI/QQP sit near their floors.
	for _, c := range []struct {
		name   string
		lo, hi float64 // acceptable accuracy band for 5×3 @ 2 bits
	}{
		{"SST-2", 70, 85},
		{"RTE", 47, 54},
		{"QNLI", 50, 58},
		{"QQP", 31, 50},
	} {
		task := TaskByName(c.name, 12, 12)
		got := task.AccuracyWithBits(submodel5x3(task, 2))
		t.Logf("%s 5x3@2bit = %.1f (paper Table 7 base around %v)", c.name, got, c)
		if got < c.lo || got > c.hi {
			t.Errorf("%s: 5×3@2bit = %.1f outside [%v, %v]", c.name, got, c.lo, c.hi)
		}
	}
}

func TestCalibrationLogSurface(t *testing.T) {
	// Informational: print the surface at a few operating points so
	// EXPERIMENTS.md numbers can be cross-checked.
	for _, task := range Tasks(12, 12) {
		t.Logf("%-6s floor=%.1f gold=%.1f  12x12@2=%.1f  12x12@6=%.1f  5x3@2=%.1f  5x3@6=%.1f  2x12@32=%.1f  6x4@32=%.1f",
			task.Name, task.Floor, task.Gold,
			task.AccuracyWithBits(fullBits(12, 12, 2)),
			task.AccuracyWithBits(fullBits(12, 12, 6)),
			task.AccuracyWithBits(submodel5x3(task, 2)),
			task.AccuracyWithBits(submodel5x3(task, 6)),
			accNM(task, 2, 12, 32),
			accNM(task, 6, 4, 32))
	}
}

func accNM(task *Task, n, m, b int) float64 {
	bits := fullBits(task.Layers, task.Slices, 0)
	for l := 0; l < n; l++ {
		for _, s := range task.Imp.TopSlices(l, m) {
			bits[l][s] = b
		}
	}
	return task.AccuracyWithBits(bits)
}

func TestAccuracySubmodelMatchesExpanded(t *testing.T) {
	task := TaskByName("QQP", 12, 12)
	slices := [][]int{{0, 3, 7}, {1, 2, 11}}
	bits := [][]int{{2, 6, 32}, {4, 4, 4}}
	got := task.AccuracySubmodel(slices, bits)
	full := fullBits(12, 12, 0)
	full[0][0], full[0][3], full[0][7] = 2, 6, 32
	full[1][1], full[1][2], full[1][11] = 4, 4, 4
	want := task.AccuracyWithBits(full)
	if got != want {
		t.Fatalf("AccuracySubmodel %.4f != expanded %.4f", got, want)
	}
}

func TestFidelityUnknownBitsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TaskByName("SST-2", 12, 12).Fidelity(7)
}

func TestCapacityValidation(t *testing.T) {
	task := TaskByName("SST-2", 12, 12)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong layer count")
		}
	}()
	task.Capacity(make([][]int, 3))
}

func TestCapacityRowValidation(t *testing.T) {
	task := TaskByName("SST-2", 12, 12)
	bits := fullBits(12, 12, 2)
	bits[4] = bits[4][:5]
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong slice count")
		}
	}()
	task.Capacity(bits)
}

func TestTaskByNameUnknown(t *testing.T) {
	if TaskByName("MNLI", 12, 12) != nil {
		t.Fatal("unknown task must be nil")
	}
}

func TestFidelityMonotoneAndClamped(t *testing.T) {
	for _, task := range Tasks(12, 12) {
		prev := -1.0
		for _, b := range []int{0, 1, 2, 3, 4, 5, 6, 8, 32} {
			f := task.Fidelity(b)
			if f < 0 || f > 1 {
				t.Fatalf("%s: fidelity(%d) = %v outside [0,1]", task.Name, b, f)
			}
			if f < prev {
				t.Fatalf("%s: fidelity not monotone at %d bits", task.Name, b)
			}
			prev = f
		}
		if task.Fidelity(32) != 1 {
			t.Fatalf("%s: full fidelity must be 1", task.Name)
		}
		if task.Fidelity(0) != 0 {
			t.Fatalf("%s: unexecuted shard must contribute 0", task.Name)
		}
	}
}
