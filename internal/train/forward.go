package train

import (
	"math"

	"sti/internal/model"
	"sti/internal/tensor"
)

// layerCache stores everything a layer's backward pass needs.
type layerCache struct {
	xin     *tensor.Matrix   // layer input (L×d)
	q, k, v *tensor.Matrix   // projections after bias (L×d)
	probs   []*tensor.Matrix // per-head attention softmax (L×L); nil for dropped heads
	concat  *tensor.Matrix   // concatenated head outputs (L×d)

	r1              *tensor.Matrix // xin + attention output (pre-LN1)
	ln1Mean, ln1Inv []float32
	y1              *tensor.Matrix // LN1 output

	f1 *tensor.Matrix // FFN inner pre-activation (L×dff)
	g  *tensor.Matrix // GELU output with dropped slices zeroed (L×dff)

	r2              *tensor.Matrix // y1 + FFN output (pre-LN2)
	ln2Mean, ln2Inv []float32
	y2              *tensor.Matrix // LN2 output = next layer input
}

// cache holds the full forward trace of one example.
type cache struct {
	tokens  []int
	mask    []bool
	active  []bool         // heads trained on this example
	embSum  *tensor.Matrix // token+pos embedding (pre-LN)
	embMean []float32
	embInv  []float32
	x0      *tensor.Matrix // embedding LN output
	layers  []*layerCache
	cls     *tensor.Matrix // final CLS row (1×d)
	pooled  *tensor.Matrix // tanh pooler output (1×d)
	logits  []float32
	probs   []float32 // softmax over logits
}

// forward runs a cached training pass. active[h] selects the heads (and
// FFN slices) used for this example; all true = full width.
func forward(w *model.Weights, tokens []int, mask []bool, active []bool) *cache {
	cfg := w.Cfg
	L := len(tokens)
	c := &cache{tokens: tokens, mask: mask, active: active}

	c.embSum = tensor.New(L, cfg.Hidden)
	for i, id := range tokens {
		row := c.embSum.Row(i)
		copy(row, w.Emb.Token.Row(id))
		pos := w.Emb.Position.Row(i)
		for j := range row {
			row[j] += pos[j]
		}
	}
	c.embMean = make([]float32, L)
	c.embInv = make([]float32, L)
	c.x0 = c.embSum.Clone()
	tensor.LayerNormRows(c.x0, w.Emb.LNG, w.Emb.LNB, c.embMean, c.embInv)

	x := c.x0
	hd, fs := cfg.HeadDim(), cfg.FFNSlice()
	scale := float32(1 / math.Sqrt(float64(hd)))
	for l := 0; l < cfg.Layers; l++ {
		lw := w.Layers[l]
		lc := &layerCache{xin: x, probs: make([]*tensor.Matrix, cfg.Heads)}

		lc.q = tensor.New(L, cfg.Hidden)
		lc.k = tensor.New(L, cfg.Hidden)
		lc.v = tensor.New(L, cfg.Hidden)
		tensor.MatMul(lc.q, x, lw.Q)
		tensor.AddBias(lc.q, lw.QB)
		tensor.MatMul(lc.k, x, lw.K)
		tensor.AddBias(lc.k, lw.KB)
		tensor.MatMul(lc.v, x, lw.V)
		tensor.AddBias(lc.v, lw.VB)

		lc.concat = tensor.New(L, cfg.Hidden)
		for h := 0; h < cfg.Heads; h++ {
			if !active[h] {
				continue
			}
			qh := lc.q.ColSlice(h*hd, (h+1)*hd)
			kh := lc.k.ColSlice(h*hd, (h+1)*hd)
			vh := lc.v.ColSlice(h*hd, (h+1)*hd)
			s := tensor.New(L, L)
			tensor.MatMulBT(s, qh, kh)
			tensor.Scale(s, scale)
			if mask != nil {
				for i := 0; i < L; i++ {
					row := s.Row(i)
					for j := range row {
						if !mask[j] {
							row[j] = -1e9
						}
					}
				}
			}
			tensor.SoftmaxRows(s)
			lc.probs[h] = s
			head := tensor.New(L, hd)
			tensor.MatMul(head, s, vh)
			lc.concat.SetColSlice(h*hd, head)
		}

		attn := tensor.New(L, cfg.Hidden)
		tensor.MatMul(attn, lc.concat, lw.O)
		tensor.AddBias(attn, lw.OB)
		lc.r1 = tensor.New(L, cfg.Hidden)
		tensor.Add(lc.r1, attn, x)
		lc.ln1Mean = make([]float32, L)
		lc.ln1Inv = make([]float32, L)
		lc.y1 = lc.r1.Clone()
		tensor.LayerNormRows(lc.y1, lw.LN1G, lw.LN1B, lc.ln1Mean, lc.ln1Inv)

		lc.f1 = tensor.New(L, cfg.FFN)
		tensor.MatMul(lc.f1, lc.y1, lw.FFN1)
		tensor.AddBias(lc.f1, lw.FFN1B)
		lc.g = lc.f1.Clone()
		tensor.GELU(lc.g)
		// Width elasticity: zero the FFN slices of dropped heads.
		for h := 0; h < cfg.Heads; h++ {
			if active[h] {
				continue
			}
			for i := 0; i < L; i++ {
				row := lc.g.Row(i)
				for j := h * fs; j < (h+1)*fs; j++ {
					row[j] = 0
				}
			}
		}

		f2 := tensor.New(L, cfg.Hidden)
		tensor.MatMul(f2, lc.g, lw.FFN2)
		tensor.AddBias(f2, lw.FFN2B)
		lc.r2 = tensor.New(L, cfg.Hidden)
		tensor.Add(lc.r2, f2, lc.y1)
		lc.ln2Mean = make([]float32, L)
		lc.ln2Inv = make([]float32, L)
		lc.y2 = lc.r2.Clone()
		tensor.LayerNormRows(lc.y2, lw.LN2G, lw.LN2B, lc.ln2Mean, lc.ln2Inv)

		c.layers = append(c.layers, lc)
		x = lc.y2
	}

	c.cls = tensor.FromSlice(1, cfg.Hidden, append([]float32(nil), x.Row(0)...))
	c.pooled = tensor.New(1, cfg.Hidden)
	tensor.MatMul(c.pooled, c.cls, w.Pooler)
	tensor.AddBias(c.pooled, w.PoolerB)
	tensor.Tanh(c.pooled)
	logits := tensor.New(1, cfg.Classes)
	tensor.MatMul(logits, c.pooled, w.Cls)
	tensor.AddBias(logits, w.ClsB)
	c.logits = logits.Row(0)

	c.probs = make([]float32, cfg.Classes)
	var max float32 = c.logits[0]
	for _, v := range c.logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range c.logits {
		e := math.Exp(float64(v - max))
		c.probs[i] = float32(e)
		sum += e
	}
	for i := range c.probs {
		c.probs[i] = float32(float64(c.probs[i]) / sum)
	}
	return c
}

// Loss returns the cross-entropy of the cached pass against the label.
func (c *cache) Loss(label int) float64 {
	p := float64(c.probs[label])
	if p < 1e-12 {
		p = 1e-12
	}
	return -math.Log(p)
}

// Predicted returns the argmax class.
func (c *cache) Predicted() int {
	best := 0
	for i, v := range c.logits {
		if v > c.logits[best] {
			best = i
		}
	}
	return best
}
