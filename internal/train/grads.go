// Package train fine-tunes the tiny transformer models of the real
// path: a hand-rolled backpropagation trainer with Adam, replacing the
// cloud fine-tuning that produced the paper's DynaBERT checkpoints.
//
// The trainer supports DynaBERT-style width elasticity: each training
// example runs through a randomly sampled subset of attention heads
// (and their FFN slices), so trained models degrade gracefully when STI
// executes narrow submodels — the property §4.2 borrows from dynamic
// transformers.
package train

import (
	"math"

	"sti/internal/model"
	"sti/internal/tensor"
)

// layerGrads accumulates gradients for one transformer layer.
type layerGrads struct {
	Q, K, V, O, FFN1, FFN2       *tensor.Matrix
	QB, KB, VB, OB, FFN1B, FFN2B []float32
	LN1G, LN1B, LN2G, LN2B       []float32
}

// Grads accumulates gradients for a whole model.
type Grads struct {
	Cfg      model.Config
	TokenEmb *tensor.Matrix
	PosEmb   *tensor.Matrix
	EmbLNG   []float32
	EmbLNB   []float32
	Layers   []*layerGrads
	Pooler   *tensor.Matrix
	PoolerB  []float32
	Cls      *tensor.Matrix
	ClsB     []float32
}

// NewGrads allocates a zeroed gradient accumulator shaped like w.
func NewGrads(w *model.Weights) *Grads {
	cfg := w.Cfg
	g := &Grads{
		Cfg:      cfg,
		TokenEmb: tensor.New(cfg.Vocab, cfg.Hidden),
		PosEmb:   tensor.New(cfg.MaxSeq, cfg.Hidden),
		EmbLNG:   make([]float32, cfg.Hidden),
		EmbLNB:   make([]float32, cfg.Hidden),
		Pooler:   tensor.New(cfg.Hidden, cfg.Hidden),
		PoolerB:  make([]float32, cfg.Hidden),
		Cls:      tensor.New(cfg.Hidden, cfg.Classes),
		ClsB:     make([]float32, cfg.Classes),
	}
	for l := 0; l < cfg.Layers; l++ {
		g.Layers = append(g.Layers, &layerGrads{
			Q: tensor.New(cfg.Hidden, cfg.Hidden), K: tensor.New(cfg.Hidden, cfg.Hidden),
			V: tensor.New(cfg.Hidden, cfg.Hidden), O: tensor.New(cfg.Hidden, cfg.Hidden),
			FFN1: tensor.New(cfg.Hidden, cfg.FFN), FFN2: tensor.New(cfg.FFN, cfg.Hidden),
			QB: make([]float32, cfg.Hidden), KB: make([]float32, cfg.Hidden),
			VB: make([]float32, cfg.Hidden), OB: make([]float32, cfg.Hidden),
			FFN1B: make([]float32, cfg.FFN), FFN2B: make([]float32, cfg.Hidden),
			LN1G: make([]float32, cfg.Hidden), LN1B: make([]float32, cfg.Hidden),
			LN2G: make([]float32, cfg.Hidden), LN2B: make([]float32, cfg.Hidden),
		})
	}
	return g
}

// Zero clears all accumulated gradients.
func (g *Grads) Zero() {
	for _, p := range g.params(nil) {
		for i := range p.grad {
			p.grad[i] = 0
		}
	}
}

// GlobalNorm returns the L2 norm over all accumulated gradients.
func (g *Grads) GlobalNorm() float64 {
	var ss float64
	for _, p := range g.params(nil) {
		for _, v := range p.grad {
			ss += float64(v) * float64(v)
		}
	}
	return math.Sqrt(ss)
}

// ClipGlobalNorm rescales all gradients so their global L2 norm does
// not exceed max. A no-op when already within bounds.
func (g *Grads) ClipGlobalNorm(max float64) {
	norm := g.GlobalNorm()
	if norm <= max || norm == 0 {
		return
	}
	scale := float32(max / norm)
	for _, p := range g.params(nil) {
		for i := range p.grad {
			p.grad[i] *= scale
		}
	}
}

// paramPair couples a parameter slice with its gradient slice.
type paramPair struct {
	param []float32
	grad  []float32
}

// params enumerates every (parameter, gradient) pair. With w == nil the
// param fields are nil (used by Zero).
func (g *Grads) params(w *model.Weights) []paramPair {
	var out []paramPair
	add := func(p, gr []float32) { out = append(out, paramPair{p, gr}) }
	mat := func(pm, gm *tensor.Matrix) {
		if pm == nil {
			add(nil, gm.Data)
			return
		}
		add(pm.Data, gm.Data)
	}
	if w == nil {
		mat(nil, g.TokenEmb)
		mat(nil, g.PosEmb)
		add(nil, g.EmbLNG)
		add(nil, g.EmbLNB)
		for _, lg := range g.Layers {
			for _, m := range []*tensor.Matrix{lg.Q, lg.K, lg.V, lg.O, lg.FFN1, lg.FFN2} {
				mat(nil, m)
			}
			for _, v := range [][]float32{lg.QB, lg.KB, lg.VB, lg.OB, lg.FFN1B, lg.FFN2B, lg.LN1G, lg.LN1B, lg.LN2G, lg.LN2B} {
				add(nil, v)
			}
		}
		mat(nil, g.Pooler)
		add(nil, g.PoolerB)
		mat(nil, g.Cls)
		add(nil, g.ClsB)
		return out
	}
	mat(w.Emb.Token, g.TokenEmb)
	mat(w.Emb.Position, g.PosEmb)
	add(w.Emb.LNG, g.EmbLNG)
	add(w.Emb.LNB, g.EmbLNB)
	for l, lg := range g.Layers {
		lw := w.Layers[l]
		mat(lw.Q, lg.Q)
		mat(lw.K, lg.K)
		mat(lw.V, lg.V)
		mat(lw.O, lg.O)
		mat(lw.FFN1, lg.FFN1)
		mat(lw.FFN2, lg.FFN2)
		add(lw.QB, lg.QB)
		add(lw.KB, lg.KB)
		add(lw.VB, lg.VB)
		add(lw.OB, lg.OB)
		add(lw.FFN1B, lg.FFN1B)
		add(lw.FFN2B, lg.FFN2B)
		add(lw.LN1G, lg.LN1G)
		add(lw.LN1B, lg.LN1B)
		add(lw.LN2G, lg.LN2G)
		add(lw.LN2B, lg.LN2B)
	}
	mat(w.Pooler, g.Pooler)
	add(w.PoolerB, g.PoolerB)
	mat(w.Cls, g.Cls)
	add(w.ClsB, g.ClsB)
	return out
}
