package train

import (
	"sti/internal/glue"
	"sti/internal/model"
)

// Metrics bundles the two GLUE scores the paper reports (Table 3:
// accuracy for SST-2/RTE/QNLI, accuracy/F1 for QQP).
type Metrics struct {
	Accuracy float64 // percent
	F1       float64 // percent, positive class = 1
}

// F1Score computes the binary F1 (percent) of predictions against
// labels with class 1 as positive. A degenerate all-negative predictor
// scores 0, which is why the paper's QQP numbers can sit far below
// 50% at low fidelity.
func F1Score(preds, labels []int) float64 {
	if len(preds) != len(labels) {
		panic("train: F1Score length mismatch")
	}
	var tp, fp, fn float64
	for i := range preds {
		switch {
		case preds[i] == 1 && labels[i] == 1:
			tp++
		case preds[i] == 1 && labels[i] == 0:
			fp++
		case preds[i] == 0 && labels[i] == 1:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := tp / (tp + fp)
	recall := tp / (tp + fn)
	return 100 * 2 * precision * recall / (precision + recall)
}

// EvaluateMetrics measures dev accuracy and F1 of a submodel.
func EvaluateMetrics(sm *model.Submodel, ds *glue.Dataset) Metrics {
	if len(ds.Dev) == 0 {
		return Metrics{}
	}
	preds := make([]int, len(ds.Dev))
	labels := make([]int, len(ds.Dev))
	correct := 0
	for i, ex := range ds.Dev {
		tokens, mask := ds.Encode(ex)
		preds[i] = sm.Predict(tokens, mask)
		labels[i] = ex.Label
		if preds[i] == ex.Label {
			correct++
		}
	}
	return Metrics{
		Accuracy: 100 * float64(correct) / float64(len(ds.Dev)),
		F1:       F1Score(preds, labels),
	}
}
