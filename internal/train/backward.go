package train

import (
	"math"

	"sti/internal/model"
	"sti/internal/tensor"
)

// backward accumulates ∂loss/∂θ for one cached example into g.
func backward(w *model.Weights, c *cache, label int, g *Grads) {
	cfg := w.Cfg
	L := len(c.tokens)
	hd, fs := cfg.HeadDim(), cfg.FFNSlice()

	// Classification head: dlogits = softmax − one-hot.
	dlogits := tensor.New(1, cfg.Classes)
	for i := range c.probs {
		dlogits.Data[i] = c.probs[i]
	}
	dlogits.Data[label] -= 1

	accumulateATB(g.Cls, c.pooled, dlogits)
	addRow(g.ClsB, dlogits.Row(0))
	dpooled := tensor.New(1, cfg.Hidden)
	tensor.MatMulBT(dpooled, dlogits, w.Cls)

	// tanh pooler.
	for i, p := range c.pooled.Data {
		dpooled.Data[i] *= 1 - p*p
	}
	accumulateATB(g.Pooler, c.cls, dpooled)
	addRow(g.PoolerB, dpooled.Row(0))
	dcls := tensor.New(1, cfg.Hidden)
	tensor.MatMulBT(dcls, dpooled, w.Pooler)

	// Gradient w.r.t. the final activations: only the CLS row receives
	// signal from the head.
	dx := tensor.New(L, cfg.Hidden)
	copy(dx.Row(0), dcls.Row(0))

	scale := float32(1 / math.Sqrt(float64(hd)))
	for l := cfg.Layers - 1; l >= 0; l-- {
		lw := w.Layers[l]
		lg := g.Layers[l]
		lc := c.layers[l]

		// LN2 backward: dx is ∂/∂y2.
		dr2 := layerNormBackward(dx, lc.r2, lc.ln2Mean, lc.ln2Inv, lw.LN2G, lg.LN2G, lg.LN2B)

		// Residual: r2 = y1 + f2.
		dy1 := dr2.Clone()
		df2 := dr2

		// FFN2.
		accumulateATB(lg.FFN2, lc.g, df2)
		addColSums(lg.FFN2B, df2)
		dg := tensor.New(L, cfg.FFN)
		tensor.MatMulBT(dg, df2, lw.FFN2)

		// GELU (dropped slices carry zero gradient: their g was zeroed,
		// so we zero dg there too).
		df1 := tensor.New(L, cfg.FFN)
		for i := 0; i < L; i++ {
			dgRow, f1Row, dfRow := dg.Row(i), lc.f1.Row(i), df1.Row(i)
			for j := range dfRow {
				h := j / fs
				if !c.active[h] {
					continue
				}
				dfRow[j] = dgRow[j] * tensor.GELUGrad(f1Row[j])
			}
		}

		// FFN1.
		accumulateATB(lg.FFN1, lc.y1, df1)
		addColSums(lg.FFN1B, df1)
		dy1ffn := tensor.New(L, cfg.Hidden)
		tensor.MatMulBT(dy1ffn, df1, lw.FFN1)
		tensor.Add(dy1, dy1, dy1ffn)

		// LN1 backward.
		dr1 := layerNormBackward(dy1, lc.r1, lc.ln1Mean, lc.ln1Inv, lw.LN1G, lg.LN1G, lg.LN1B)

		// Residual: r1 = xin + attn.
		dxin := dr1.Clone()
		dattn := dr1

		// Output projection.
		accumulateATB(lg.O, lc.concat, dattn)
		addColSums(lg.OB, dattn)
		dconcat := tensor.New(L, cfg.Hidden)
		tensor.MatMulBT(dconcat, dattn, lw.O)

		// Attention heads.
		dq := tensor.New(L, cfg.Hidden)
		dk := tensor.New(L, cfg.Hidden)
		dv := tensor.New(L, cfg.Hidden)
		for h := 0; h < cfg.Heads; h++ {
			if !c.active[h] {
				continue
			}
			p := lc.probs[h]
			dhead := dconcat.ColSlice(h*hd, (h+1)*hd)
			vh := lc.v.ColSlice(h*hd, (h+1)*hd)
			qh := lc.q.ColSlice(h*hd, (h+1)*hd)
			kh := lc.k.ColSlice(h*hd, (h+1)*hd)

			// head = P·vh
			dp := tensor.New(L, L)
			tensor.MatMulBT(dp, dhead, vh)
			dvh := tensor.New(L, hd)
			tensor.MatMulAT(dvh, p, dhead)

			// Softmax backward: ds = P ⊙ (dp − rowsum(dp ⊙ P)).
			ds := tensor.New(L, L)
			for i := 0; i < L; i++ {
				pRow, dpRow, dsRow := p.Row(i), dp.Row(i), ds.Row(i)
				var dot float32
				for j := range pRow {
					dot += dpRow[j] * pRow[j]
				}
				for j := range pRow {
					dsRow[j] = pRow[j] * (dpRow[j] - dot)
				}
			}
			tensor.Scale(ds, scale)

			// s = qh·khᵀ
			dqh := tensor.New(L, hd)
			tensor.MatMul(dqh, ds, kh)
			dkh := tensor.New(L, hd)
			tensor.MatMulAT(dkh, ds, qh)

			dq.SetColSlice(h*hd, dqh)
			dk.SetColSlice(h*hd, dkh)
			dv.SetColSlice(h*hd, dvh)
		}

		// Q/K/V projections.
		accumulateATB(lg.Q, lc.xin, dq)
		addColSums(lg.QB, dq)
		accumulateATB(lg.K, lc.xin, dk)
		addColSums(lg.KB, dk)
		accumulateATB(lg.V, lc.xin, dv)
		addColSums(lg.VB, dv)

		tmp := tensor.New(L, cfg.Hidden)
		tensor.MatMulBT(tmp, dq, lw.Q)
		tensor.Add(dxin, dxin, tmp)
		tensor.MatMulBT(tmp, dk, lw.K)
		tensor.Add(dxin, dxin, tmp)
		tensor.MatMulBT(tmp, dv, lw.V)
		tensor.Add(dxin, dxin, tmp)

		dx = dxin
	}

	// Embedding layernorm and tables.
	demb := layerNormBackward(dx, c.embSum, c.embMean, c.embInv, w.Emb.LNG, g.EmbLNG, g.EmbLNB)
	for i, id := range c.tokens {
		row := demb.Row(i)
		tok := g.TokenEmb.Row(id)
		pos := g.PosEmb.Row(i)
		for j, v := range row {
			tok[j] += v
			pos[j] += v
		}
	}
}

// layerNormBackward computes dx for y = γ·x̂ + β given dy, the pre-norm
// input x and its row statistics, accumulating dγ/dβ.
func layerNormBackward(dy, x *tensor.Matrix, mean, inv []float32, gamma []float32, dGamma, dBeta []float32) *tensor.Matrix {
	dx := tensor.New(x.Rows, x.Cols)
	n := float32(x.Cols)
	for i := 0; i < x.Rows; i++ {
		xRow, dyRow, dxRow := x.Row(i), dy.Row(i), dx.Row(i)
		mu, is := mean[i], inv[i]
		var meanDxHat, meanDxHatXHat float32
		for j := range dyRow {
			xhat := (xRow[j] - mu) * is
			dGamma[j] += dyRow[j] * xhat
			dBeta[j] += dyRow[j]
			dxhat := dyRow[j] * gamma[j]
			meanDxHat += dxhat
			meanDxHatXHat += dxhat * xhat
		}
		meanDxHat /= n
		meanDxHatXHat /= n
		for j := range dxRow {
			xhat := (xRow[j] - mu) * is
			dxhat := dyRow[j] * gamma[j]
			dxRow[j] = is * (dxhat - meanDxHat - xhat*meanDxHatXHat)
		}
	}
	return dx
}

// accumulateATB adds aᵀ·b into dst without overwriting it.
func accumulateATB(dst, a, b *tensor.Matrix) {
	tmp := tensor.New(dst.Rows, dst.Cols)
	tensor.MatMulAT(tmp, a, b)
	tensor.Add(dst, dst, tmp)
}

func addRow(dst []float32, row []float32) {
	for i, v := range row {
		dst[i] += v
	}
}

func addColSums(dst []float32, m *tensor.Matrix) {
	for r := 0; r < m.Rows; r++ {
		addRow(dst, m.Row(r))
	}
}
