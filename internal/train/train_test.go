package train

import (
	"math"
	"math/rand"
	"testing"

	"sti/internal/glue"
	"sti/internal/model"
)

func microConfig() model.Config {
	return model.Config{Layers: 2, Heads: 2, Hidden: 8, FFN: 16, Vocab: 24, MaxSeq: 6, Classes: 2}
}

// TestGradientsMatchFiniteDifferences is the correctness anchor for the
// whole trainer: analytic gradients must match central finite
// differences of the loss for a sample of parameters in every
// parameter group.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	cfg := microConfig()
	w := model.NewRandom(cfg, 3)
	tokens := []int{1, 5, 9, 13, 2, 0}
	mask := []bool{true, true, true, true, true, false}
	active := []bool{true, true}
	label := 1

	g := NewGrads(w)
	c := forward(w, tokens, mask, active)
	backward(w, c, label, g)

	loss := func() float64 {
		return forward(w, tokens, mask, active).Loss(label)
	}

	pairs := g.params(w)
	rng := rand.New(rand.NewSource(4))
	const h = 1e-2
	checked := 0
	for gi, p := range pairs {
		if len(p.param) == 0 {
			continue
		}
		// Sample up to 4 coordinates per parameter group.
		for trial := 0; trial < 4; trial++ {
			j := rng.Intn(len(p.param))
			orig := p.param[j]
			p.param[j] = orig + h
			up := loss()
			p.param[j] = orig - h
			down := loss()
			p.param[j] = orig
			fd := (up - down) / (2 * h)
			got := float64(p.grad[j])
			tol := 1e-2*math.Max(math.Abs(fd), math.Abs(got)) + 2e-3
			if math.Abs(fd-got) > tol {
				t.Errorf("group %d coord %d: analytic %.6f vs finite-diff %.6f", gi, j, got, fd)
			}
			checked++
		}
	}
	if checked < 40 {
		t.Fatalf("only %d coordinates checked", checked)
	}
}

func TestGradientsWithDroppedHeads(t *testing.T) {
	// Width-elastic training: gradients must stay consistent when a
	// head is dropped, and the dropped head's Q/K/V columns must get
	// zero gradient.
	cfg := microConfig()
	w := model.NewRandom(cfg, 5)
	tokens := []int{2, 3, 4, 5}
	active := []bool{true, false}
	g := NewGrads(w)
	c := forward(w, tokens, nil, active)
	backward(w, c, 0, g)

	hd := cfg.HeadDim()
	for r := 0; r < cfg.Hidden; r++ {
		for col := hd; col < 2*hd; col++ {
			if g.Layers[0].Q.At(r, col) != 0 {
				t.Fatalf("dropped head received Q gradient at (%d,%d)", r, col)
			}
		}
	}
	// Spot-check finite differences still agree on an active-head param.
	loss := func() float64 { return forward(w, tokens, nil, active).Loss(0) }
	p := w.Layers[0].Q
	const h = 1e-2
	orig := p.At(0, 0)
	p.Set(0, 0, orig+h)
	up := loss()
	p.Set(0, 0, orig-h)
	down := loss()
	p.Set(0, 0, orig)
	fd := (up - down) / (2 * h)
	got := float64(g.Layers[0].Q.At(0, 0))
	if math.Abs(fd-got) > 1e-2*math.Max(math.Abs(fd), 1)+2e-3 {
		t.Fatalf("dropped-head run: analytic %.6f vs fd %.6f", got, fd)
	}
}

func TestLossDecreasesOverTraining(t *testing.T) {
	cfg := model.Config{Layers: 2, Heads: 2, Hidden: 16, FFN: 32, Vocab: 128, MaxSeq: 16, Classes: 2}
	w := model.NewRandom(cfg, 11)
	ds, err := glue.Generate("SST-2", 128, 64, cfg.Vocab, cfg.MaxSeq, 1)
	if err != nil {
		t.Fatal(err)
	}
	before := avgLoss(w, ds)
	if _, err := Run(w, ds, Options{Epochs: 3, BatchSize: 8, LR: 2e-3, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	after := avgLoss(w, ds)
	if after >= before {
		t.Fatalf("loss did not decrease: %.3f -> %.3f", before, after)
	}
}

func avgLoss(w *model.Weights, ds *glue.Dataset) float64 {
	full := make([]bool, w.Cfg.Heads)
	for i := range full {
		full[i] = true
	}
	var total float64
	for _, ex := range ds.Dev {
		tokens, mask := ds.Encode(ex)
		total += forward(w, tokens, mask, full).Loss(ex.Label)
	}
	return total / float64(len(ds.Dev))
}

func TestTrainedModelBeatsChance(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := model.Config{Layers: 2, Heads: 4, Hidden: 32, FFN: 64, Vocab: 256, MaxSeq: 20, Classes: 2}
	w := model.NewRandom(cfg, 21)
	ds, err := glue.Generate("SST-2", 512, 128, cfg.Vocab, cfg.MaxSeq, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := Run(w, ds, Options{Epochs: 5, BatchSize: 8, LR: 1.5e-3, Seed: 4, WidthElastic: true})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 80 {
		t.Fatalf("trained accuracy %.1f%%, want ≥80%%", acc)
	}
	// Width elasticity: a half-width submodel should stay well above
	// chance.
	if half := Evaluate(w, ds, cfg.Layers, cfg.Heads/2); half < 65 {
		t.Fatalf("half-width accuracy %.1f%%, elastic training should keep it usable", half)
	}
}

func TestEvaluateAgainstMajorityBaseline(t *testing.T) {
	cfg := microConfig()
	cfg.Vocab = 128
	cfg.MaxSeq = 16
	w := model.NewRandom(cfg, 31)
	ds, err := glue.Generate("RTE", 16, 64, cfg.Vocab, cfg.MaxSeq, 5)
	if err != nil {
		t.Fatal(err)
	}
	acc := Evaluate(w, ds, cfg.Layers, cfg.Heads)
	// Untrained model ≈ chance; also sanity-check the majority floor.
	if acc < 20 || acc > 85 {
		t.Fatalf("untrained accuracy %.1f%% implausible", acc)
	}
	if mb := ds.MajorityBaseline(); mb < 40 || mb > 75 {
		t.Fatalf("majority baseline %.1f%% implausible for balanced labels", mb)
	}
}

func TestAdamStepMovesParameters(t *testing.T) {
	cfg := microConfig()
	w := model.NewRandom(cfg, 41)
	g := NewGrads(w)
	c := forward(w, []int{1, 2, 3}, nil, []bool{true, true})
	backward(w, c, 0, g)
	before := w.Cls.Clone()
	NewAdam(1e-2).Step(w, g, 1)
	if w.Cls.Equal(before) {
		t.Fatal("Adam step did not move classifier weights")
	}
}

func TestSampleActiveAlwaysNonEmpty(t *testing.T) {
	cfg := model.Tiny()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		active := sampleActive(cfg, rng, true)
		count := 0
		for _, a := range active {
			if a {
				count++
			}
		}
		if count == 0 {
			t.Fatal("sampled an empty head set")
		}
	}
}

func TestClipGlobalNorm(t *testing.T) {
	cfg := microConfig()
	w := model.NewRandom(cfg, 51)
	g := NewGrads(w)
	c := forward(w, []int{1, 2, 3}, nil, []bool{true, true})
	backward(w, c, 0, g)
	norm := g.GlobalNorm()
	if norm <= 0 {
		t.Fatal("zero gradient norm after backward")
	}
	// Clipping above the norm is a no-op.
	g.ClipGlobalNorm(norm * 2)
	if math.Abs(g.GlobalNorm()-norm) > 1e-6*norm {
		t.Fatal("clip above norm changed gradients")
	}
	// Clipping below rescales to the cap.
	g.ClipGlobalNorm(norm / 4)
	if got := g.GlobalNorm(); math.Abs(got-norm/4) > 1e-4*norm {
		t.Fatalf("clipped norm %v, want %v", got, norm/4)
	}
}

func TestTrainingWithClippingStillLearns(t *testing.T) {
	cfg := model.Config{Layers: 2, Heads: 2, Hidden: 16, FFN: 32, Vocab: 128, MaxSeq: 16, Classes: 2}
	w := model.NewRandom(cfg, 52)
	ds, err := glue.Generate("SST-2", 128, 64, cfg.Vocab, cfg.MaxSeq, 6)
	if err != nil {
		t.Fatal(err)
	}
	before := avgLoss(w, ds)
	if _, err := Run(w, ds, Options{Epochs: 3, BatchSize: 8, LR: 2e-3, Seed: 2, ClipNorm: 1.0}); err != nil {
		t.Fatal(err)
	}
	if after := avgLoss(w, ds); after >= before {
		t.Fatalf("clipped training did not learn: %.3f -> %.3f", before, after)
	}
}
