package train

import (
	"math"
	"testing"

	"sti/internal/glue"
	"sti/internal/model"
)

func TestF1ScoreHandValues(t *testing.T) {
	// tp=2, fp=1, fn=1 → precision 2/3, recall 2/3, F1 = 2/3.
	preds := []int{1, 1, 1, 0, 0}
	labels := []int{1, 1, 0, 1, 0}
	if got := F1Score(preds, labels); math.Abs(got-66.666) > 0.01 {
		t.Fatalf("F1 = %v, want 66.67", got)
	}
	// Perfect predictions.
	if got := F1Score([]int{1, 0, 1}, []int{1, 0, 1}); got != 100 {
		t.Fatalf("perfect F1 = %v", got)
	}
	// Degenerate all-negative predictor: F1 = 0 even though accuracy
	// could be high — the behaviour behind the paper's low QQP cells.
	if got := F1Score([]int{0, 0, 0, 0}, []int{0, 0, 0, 1}); got != 0 {
		t.Fatalf("all-negative F1 = %v", got)
	}
}

func TestF1ScoreLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	F1Score([]int{1}, []int{1, 0})
}

func TestEvaluateMetricsConsistent(t *testing.T) {
	cfg := model.Config{Layers: 2, Heads: 2, Hidden: 16, FFN: 32, Vocab: 128, MaxSeq: 16, Classes: 2}
	w := model.NewRandom(cfg, 53)
	ds, err := glue.Generate("QQP", 8, 64, cfg.Vocab, cfg.MaxSeq, 8)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := model.NewSubmodel(w, cfg.Layers, cfg.Heads)
	if err != nil {
		t.Fatal(err)
	}
	m := EvaluateMetrics(sm, ds)
	if m.Accuracy != Evaluate(w, ds, cfg.Layers, cfg.Heads) {
		t.Fatalf("metrics accuracy %.1f != Evaluate", m.Accuracy)
	}
	if m.F1 < 0 || m.F1 > 100 {
		t.Fatalf("F1 %v out of range", m.F1)
	}
	if (EvaluateMetrics(sm, &glue.Dataset{Tok: ds.Tok}) != Metrics{}) {
		t.Fatal("empty dev set must give zero metrics")
	}
}
