package train

import (
	"fmt"
	"math"
	"math/rand"

	"sti/internal/glue"
	"sti/internal/model"
)

// Adam is a standard Adam optimizer over a model's parameters.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	step                  int
	m, v                  [][]float64
}

// NewAdam returns an optimizer with conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update of accumulated gradients (divided by
// batchSize) to the weights.
func (a *Adam) Step(w *model.Weights, g *Grads, batchSize int) {
	pairs := g.params(w)
	if a.m == nil {
		a.m = make([][]float64, len(pairs))
		a.v = make([][]float64, len(pairs))
		for i, p := range pairs {
			a.m[i] = make([]float64, len(p.grad))
			a.v[i] = make([]float64, len(p.grad))
		}
	}
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	inv := 1 / float64(batchSize)
	for i, p := range pairs {
		m, v := a.m[i], a.v[i]
		for j := range p.grad {
			grad := float64(p.grad[j]) * inv
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*grad
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*grad*grad
			update := a.LR * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.Eps)
			p.param[j] -= float32(update)
		}
	}
}

// Options configures a training run.
type Options struct {
	Epochs    int
	BatchSize int
	LR        float64
	Seed      int64
	// WidthElastic trains each example on a random head subset
	// (DynaBERT-style), so narrow submodels stay accurate.
	WidthElastic bool
	// ClipNorm caps the global L2 norm of each batch's gradient before
	// the optimizer step (0 = no clipping). Standard BERT fine-tuning
	// uses 1.0.
	ClipNorm float64
	// Quiet suppresses per-epoch progress output.
	Logf func(format string, args ...any)
}

// DefaultOptions returns settings that train the Tiny config to high
// accuracy on the synthetic tasks in a few seconds.
func DefaultOptions() Options {
	return Options{Epochs: 6, BatchSize: 8, LR: 1e-3, Seed: 7, WidthElastic: true}
}

// widths samples the active-head mask for one example: full width most
// of the time, a uniformly drawn narrower width otherwise.
func sampleActive(cfg model.Config, rng *rand.Rand, elastic bool) []bool {
	active := make([]bool, cfg.Heads)
	for i := range active {
		active[i] = true
	}
	if !elastic || rng.Float64() < 0.5 {
		return active
	}
	m := 1 + rng.Intn(cfg.Heads) // 1..M heads
	perm := rng.Perm(cfg.Heads)
	for i := range active {
		active[i] = false
	}
	for _, h := range perm[:m] {
		active[h] = true
	}
	return active
}

// Run fine-tunes w on the dataset and returns the final dev accuracy
// (percent, full-width model).
func Run(w *model.Weights, ds *glue.Dataset, opts Options) (float64, error) {
	cfg := w.Cfg
	if ds.Tok.Vocab > cfg.Vocab || ds.Tok.MaxSeq > cfg.MaxSeq {
		return 0, fmt.Errorf("train: dataset (vocab %d, seq %d) exceeds model (%d, %d)",
			ds.Tok.Vocab, ds.Tok.MaxSeq, cfg.Vocab, cfg.MaxSeq)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	g := NewGrads(w)
	opt := NewAdam(opts.LR)
	order := rng.Perm(len(ds.Train))
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var loss float64
		inBatch := 0
		for _, idx := range order {
			ex := ds.Train[idx]
			tokens, mask := ds.Encode(ex)
			active := sampleActive(cfg, rng, opts.WidthElastic)
			c := forward(w, tokens, mask, active)
			loss += c.Loss(ex.Label)
			backward(w, c, ex.Label, g)
			inBatch++
			if inBatch == opts.BatchSize {
				if opts.ClipNorm > 0 {
					g.ClipGlobalNorm(opts.ClipNorm * float64(inBatch))
				}
				opt.Step(w, g, inBatch)
				g.Zero()
				inBatch = 0
			}
		}
		if inBatch > 0 {
			if opts.ClipNorm > 0 {
				g.ClipGlobalNorm(opts.ClipNorm * float64(inBatch))
			}
			opt.Step(w, g, inBatch)
			g.Zero()
		}
		acc := Evaluate(w, ds, cfg.Layers, cfg.Heads)
		logf("epoch %d: loss %.3f dev acc %.1f%%", epoch, loss/float64(len(order)), acc)
	}
	return Evaluate(w, ds, cfg.Layers, cfg.Heads), nil
}

// Evaluate measures dev accuracy (percent) of the n×m submodel of w.
func Evaluate(w *model.Weights, ds *glue.Dataset, n, m int) float64 {
	sm, err := model.NewSubmodel(w, n, m)
	if err != nil {
		panic(err)
	}
	return EvaluateSubmodel(sm, ds)
}

// EvaluateSubmodel measures dev accuracy of an assembled submodel.
func EvaluateSubmodel(sm *model.Submodel, ds *glue.Dataset) float64 {
	if len(ds.Dev) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range ds.Dev {
		tokens, mask := ds.Encode(ex)
		if sm.Predict(tokens, mask) == ex.Label {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(ds.Dev))
}
