// Package replica implements per-model elastic pools of pipeline
// engines — the scaling layer between the fleet's budget arbitration
// and the paper's single-engagement execution machinery.
//
// STI plans one IO/compute pipeline per model (§3.2); a Pool runs N of
// them as replicas of one model, each with its own preload buffer
// carved from the model's byte grant (the §3.2 budget arbitration
// extended from per-tier to per-replica: a grant of B over n replicas
// gives each ⌊B/n⌋). Requests dispatch to the least-loaded live
// replica; all replicas of a model stream shard payloads through one
// store.SharedCache, so n replicas executing the same plan cost ~1×
// flash IO, not n×.
//
// The pool is elastic: Advise consumes the scheduler's queue-pressure
// signal and recommends scaling up past the high-water mark or
// draining down when the queue has been idle. Scale-down retires a
// replica gracefully — it stops receiving new work, its in-flight
// requests finish (bounded wait, never shed), and only then are its
// preload bytes reclaimed and re-granted to the survivors.
//
// Concurrency contract: Acquire/Release/CacheBytes/Stats/Advise are
// safe for concurrent use at any time. The mutating operations —
// Apply, Warm, ScaleTo, Retire — re-split budgets and warm engines and
// must be externally serialized with each other and with executions on
// the pool's engines (the fleet runs them under its write lock, which
// quiesces serving).
package replica

import (
	"fmt"
	"sync"
	"time"

	"sti/internal/pipeline"
	"sti/internal/planner"
)

// Replica is one pipeline engine of a pool plus its dispatch state.
// Every replica owns a continuous-batching step loop (Batcher) for
// generate traffic: acquired generate requests join the replica's loop
// and decode batched with its other streams, while the acquisition's
// inflight count keeps the drain protocol honest — a draining replica
// waits for its streams like any other in-flight work.
type Replica struct {
	ID      int
	Engine  *pipeline.Engine
	Batcher *pipeline.Batcher

	// Guarded by the pool's mutex.
	inflight int
	served   uint64
	draining bool
}

// Options tunes a pool.
type Options struct {
	// Min and Max bound the live replica count. Defaults 1 and 1 —
	// a pool is inelastic until given headroom.
	Min, Max int
	// DrainWait bounds how long a scale-down waits for a retiring
	// replica's in-flight requests. On timeout the retirement is
	// aborted (the replica returns to service) — in-flight work is
	// never shed. Default 5s.
	DrainWait time.Duration
	// HighWater is the queue-pressure fraction (depth/capacity) at or
	// above which Advise recommends scaling up. Default 0.5.
	HighWater float64
	// IdleAfter is how long the queue must stay empty before Advise
	// recommends draining a replica. Default 2s.
	IdleAfter time.Duration
	// Cooldown spaces scaling actions so bursty pressure cannot thrash
	// the pool up and down. Default 250ms.
	Cooldown time.Duration
	// MaxStreams caps each replica's concurrently decoding generate
	// streams (its continuous batcher's admission bound). Default
	// pipeline.DefaultMaxStreams.
	MaxStreams int
}

func (o Options) withDefaults() Options {
	if o.Min <= 0 {
		o.Min = 1
	}
	if o.Max < o.Min {
		o.Max = o.Min
	}
	if o.DrainWait <= 0 {
		o.DrainWait = 5 * time.Second
	}
	if o.HighWater <= 0 {
		o.HighWater = 0.5
	}
	if o.IdleAfter <= 0 {
		o.IdleAfter = 2 * time.Second
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 250 * time.Millisecond
	}
	return o
}

// PoolStats is a point-in-time snapshot of a pool's replicas.
type PoolStats struct {
	Replicas int   `json:"replicas"`
	Draining int   `json:"draining"`
	Min      int   `json:"min"`
	Max      int   `json:"max"`
	IDs      []int `json:"ids"`
	// Served[i] counts requests completed by replica IDs[i].
	Served   []uint64 `json:"served"`
	Inflight []int    `json:"inflight"`
	// Budget is the model grant split across replicas; PerReplica the
	// slice each live replica's preload buffer runs under.
	Budget     int64 `json:"budget"`
	PerReplica int64 `json:"per_replica"`
	CacheBytes int64 `json:"cache_bytes"`
	// KVBytes is the paged decode KV cache held live across replicas,
	// charged against the same per-replica grants as CacheBytes.
	KVBytes    int64  `json:"kv_bytes"`
	ScaleUps   uint64 `json:"scale_ups"`
	ScaleDowns uint64 `json:"scale_downs"`
}

// Pool is an elastic set of replica engines for one model.
type Pool struct {
	factory func(id int) (*pipeline.Engine, error)
	opts    Options

	mu       sync.Mutex
	cond     *sync.Cond // signalled on Release, for drain waits
	replicas []*Replica
	nextID   int
	budget   int64           // model grant, split across live replicas
	plans    []*planner.Plan // current warm set (ladder + on-demand tiers)

	lastScale  time.Time
	idleSince  time.Time
	scaling    bool // a background scale decision is in progress
	scaleUps   uint64
	scaleDowns uint64
}

// New creates a pool with opts.Min replicas built by factory (engines
// should start with a zero budget; Apply grants bytes after planning).
// The factory is retained for elastic scale-ups.
func New(factory func(id int) (*pipeline.Engine, error), opts Options) (*Pool, error) {
	p := &Pool{factory: factory, opts: opts.withDefaults()}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < p.opts.Min; i++ {
		if err := p.spawnLocked(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// spawnLocked builds one replica and appends it. p.mu need not be held
// during New (no concurrency yet); ScaleTo calls it with mu held only
// for the slice append.
func (p *Pool) spawnLocked() error {
	eng, err := p.factory(p.nextID)
	if err != nil {
		return fmt.Errorf("replica: building replica %d: %w", p.nextID, err)
	}
	b := pipeline.NewBatcher(eng, pipeline.BatcherOptions{MaxStreams: p.opts.MaxStreams})
	p.replicas = append(p.replicas, &Replica{ID: p.nextID, Engine: eng, Batcher: b})
	p.nextID++
	return nil
}

// Size returns the number of live (non-draining) replicas.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.liveLocked()
}

// Engines snapshots the engines of all live replicas — used to attach
// observers (e.g. the predictive subsystem's access taps) to replicas
// that already existed when the observer was installed.
func (p *Pool) Engines() []*pipeline.Engine {
	p.mu.Lock()
	defer p.mu.Unlock()
	engines := make([]*pipeline.Engine, 0, len(p.replicas))
	for _, r := range p.replicas {
		if !r.draining {
			engines = append(engines, r.Engine)
		}
	}
	return engines
}

func (p *Pool) liveLocked() int {
	n := 0
	for _, r := range p.replicas {
		if !r.draining {
			n++
		}
	}
	return n
}

// Acquire picks the least-loaded live replica and marks one request in
// flight on it. Callers must Release it exactly once.
func (p *Pool) Acquire() (*Replica, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var best *Replica
	for _, r := range p.replicas {
		if r.draining {
			continue
		}
		if best == nil || r.inflight < best.inflight {
			best = r
		}
	}
	if best == nil {
		return nil, fmt.Errorf("replica: pool has no live replicas")
	}
	best.inflight++
	return best, nil
}

// Release returns a replica after served completed requests rode the
// acquisition (0 for a failed execution; a batch counts each member).
func (p *Pool) Release(r *Replica, served int) {
	p.mu.Lock()
	r.inflight--
	if served > 0 {
		r.served += uint64(served)
	}
	p.mu.Unlock()
	p.cond.Broadcast() // wake any drain waiting on this replica
}

// Apply re-arbitrates the model grant across the live replicas and
// warms every replica's preload buffer with the given plan set: each
// replica's budget becomes ⌊budget/n⌋ and its buffer the bottom-up
// union of the plans' preload sets that fits it. Part of the mutating
// API — callers serialize it with executions.
func (p *Pool) Apply(budget int64, plans []*planner.Plan) error {
	p.mu.Lock()
	p.budget = budget
	p.plans = plans
	live := p.liveReplicasLocked()
	p.mu.Unlock()
	return warmAll(live, PerReplica(budget, len(live)), plans)
}

// Warm re-warms every live replica with a new plan set under the
// already-granted budget (e.g. after an on-demand tier joined the
// ladder). Part of the mutating API.
func (p *Pool) Warm(plans []*planner.Plan) error {
	p.mu.Lock()
	budget := p.budget
	p.plans = plans
	live := p.liveReplicasLocked()
	p.mu.Unlock()
	return warmAll(live, PerReplica(budget, len(live)), plans)
}

func (p *Pool) liveReplicasLocked() []*Replica {
	live := make([]*Replica, 0, len(p.replicas))
	for _, r := range p.replicas {
		if !r.draining {
			live = append(live, r)
		}
	}
	return live
}

// PerReplica is the §3.2 grant arbitration extended one level down: a
// model grant of budget over n replicas gives each ⌊budget/n⌋ (0 for
// an empty pool — no replicas, no bytes). The fleet stages plan
// ladders against this same split, so the two layers can never
// disagree about a replica's buffer slice.
func PerReplica(budget int64, n int) int64 {
	if n <= 0 {
		return 0
	}
	return budget / int64(n)
}

func warmAll(live []*Replica, per int64, plans []*planner.Plan) error {
	for _, r := range live {
		r.Engine.SetCacheBudget(per)
		if err := r.Engine.WarmSet(plans); err != nil {
			return fmt.Errorf("replica: warming replica %d: %w", r.ID, err)
		}
	}
	return nil
}

// Budget returns the model grant the pool currently splits.
func (p *Pool) Budget() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.budget
}

// Clamp returns n bounded to the pool's [Min, Max] — the size ScaleTo
// would actually land on, so callers can stage plans against the real
// target before committing a resize.
func (p *Pool) Clamp(n int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n < p.opts.Min {
		return p.opts.Min
	}
	if n > p.opts.Max {
		return p.opts.Max
	}
	return n
}

// ScaleTo grows or shrinks the pool to n live replicas (clamped to
// [Min, Max]) and re-arbitrates the grant across the new count. Growth
// warms the new replicas; shrinkage retires the youngest replicas
// gracefully — each stops receiving new work, its in-flight requests
// finish (bounded by DrainWait; on timeout the retirement aborts and
// the replica returns to service), and only then are its preload bytes
// reclaimed. Part of the mutating API.
func (p *Pool) ScaleTo(n int) error {
	resized, err := p.Resize(n)
	if err != nil || !resized {
		return err
	}
	p.mu.Lock()
	budget, plans := p.budget, p.plans
	p.mu.Unlock()
	return p.Apply(budget, plans)
}

// Resize changes the live replica count WITHOUT re-warming buffers —
// the membership half of ScaleTo, for callers that immediately Apply a
// freshly staged plan set and must not pay (or observe) an interim
// warm against the old one. Shrinkage drains and reclaims retirees
// exactly as ScaleTo; growth leaves newcomers budget-less until the
// following Apply, and survivors keep their old slices meanwhile (the
// sum stays within the model grant either way). It reports whether the
// count actually changed. Part of the mutating API.
func (p *Pool) Resize(n int) (bool, error) {
	if n < p.opts.Min {
		n = p.opts.Min
	}
	if n > p.opts.Max {
		n = p.opts.Max
	}
	p.mu.Lock()
	cur := p.liveLocked()
	switch {
	case n == cur:
		p.mu.Unlock()
		return false, nil
	case n > cur:
		before := len(p.replicas)
		for cur < n {
			if err := p.spawnLocked(); err != nil {
				// Unwind the replicas this call already spawned: a
				// failed growth must leave the pool exactly as it was,
				// never holding live but budget-less, never-warmed
				// engines that Acquire would dispatch to.
				spawned := append([]*Replica(nil), p.replicas[before:]...)
				p.replicas = p.replicas[:before]
				p.mu.Unlock()
				for _, r := range spawned {
					r.Batcher.Close()
				}
				return false, err
			}
			cur++
		}
		p.lastScale = time.Now()
		p.scaleUps++
		p.mu.Unlock()
		return true, nil
	default:
		victims := p.markDrainingLocked(cur - n)
		if err := p.awaitDrainLocked(victims); err != nil {
			p.mu.Unlock()
			return false, err
		}
		p.removeLocked(victims)
		p.lastScale = time.Now()
		p.scaleDowns++
		p.mu.Unlock()
		// Reclaim the retirees' bytes; survivors regrow on the next
		// Apply/Warm. The drain above waited out every in-flight
		// acquisition — generate streams hold theirs until their
		// terminal result — so each victim's step loop is idle and
		// Close is immediate.
		for _, v := range victims {
			v.Batcher.Close()
			v.Engine.SetCacheBudget(0)
		}
		return true, nil
	}
}

// markDrainingLocked excludes the k youngest live replicas from
// dispatch and returns them.
func (p *Pool) markDrainingLocked(k int) []*Replica {
	var victims []*Replica
	for i := len(p.replicas) - 1; i >= 0 && len(victims) < k; i-- {
		if !p.replicas[i].draining {
			p.replicas[i].draining = true
			victims = append(victims, p.replicas[i])
		}
	}
	return victims
}

// awaitDrainLocked waits (bounded by DrainWait) for every victim's
// in-flight work to finish. On timeout the victims are un-drained and
// an error returned: a retirement never sheds running requests.
//
// The deadline is enforced by a periodic broadcaster, not a one-shot
// timer: a single wakeup can fire in the window where this goroutine
// holds the lock between its deadline check and cond.Wait — lost, with
// no later Release to rescue the wait — whereas a periodic one always
// re-delivers.
func (p *Pool) awaitDrainLocked(victims []*Replica) error {
	busyCount := func() int {
		busy := 0
		for _, v := range victims {
			busy += v.inflight
		}
		return busy
	}
	// Fast path: under the fleet's write lock no replica ever has work
	// in flight, so every fleet-driven drain completes here without
	// spawning the waker.
	if busyCount() == 0 {
		return nil
	}
	deadline := time.Now().Add(p.opts.DrainWait)
	stopWake := make(chan struct{})
	defer close(stopWake)
	interval := p.opts.DrainWait / 10
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stopWake:
				return
			case <-tick.C:
				p.cond.Broadcast()
			}
		}
	}()
	for {
		busy := busyCount()
		if busy == 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			for _, v := range victims {
				v.draining = false
			}
			return fmt.Errorf("replica: %d request(s) still in flight after %v drain wait; retirement aborted",
				busy, p.opts.DrainWait)
		}
		//sti:ctxok bounded park: the ticker goroutine above broadcasts every interval and the DrainWait deadline aborts the wait
		p.cond.Wait()
	}
}

func (p *Pool) removeLocked(victims []*Replica) {
	dead := make(map[*Replica]bool, len(victims))
	for _, v := range victims {
		dead[v] = true
	}
	kept := p.replicas[:0]
	for _, r := range p.replicas {
		if !dead[r] {
			kept = append(kept, r)
		}
	}
	p.replicas = kept
}

// Configure overrides the pool's tuning (count bounds, drain wait,
// pressure thresholds). Zero-valued fields keep their current setting,
// so callers can adjust one knob without re-stating — or accidentally
// resetting — the rest (e.g. tuning DrainWait must not collapse a
// SetLimits ceiling back to 1). It does not scale by itself.
func (p *Pool) Configure(opts Options) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if opts.Min <= 0 {
		opts.Min = p.opts.Min
	}
	if opts.Max <= 0 {
		opts.Max = p.opts.Max
	}
	if opts.DrainWait <= 0 {
		opts.DrainWait = p.opts.DrainWait
	}
	if opts.HighWater <= 0 {
		opts.HighWater = p.opts.HighWater
	}
	if opts.IdleAfter <= 0 {
		opts.IdleAfter = p.opts.IdleAfter
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = p.opts.Cooldown
	}
	if opts.MaxStreams <= 0 {
		opts.MaxStreams = p.opts.MaxStreams
	}
	changed := opts.MaxStreams != p.opts.MaxStreams
	p.opts = opts.withDefaults()
	if changed {
		for _, r := range p.replicas {
			r.Batcher.SetMaxStreams(p.opts.MaxStreams)
		}
	}
}

// Limits returns the pool's current replica-count bounds.
func (p *Pool) Limits() (min, max int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.opts.Min, p.opts.Max
}

// SetLimits changes the pool's replica-count bounds (e.g. the
// -replicas flag raising Max). It does not scale by itself.
func (p *Pool) SetLimits(min, max int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if min <= 0 {
		min = 1
	}
	if max < min {
		max = min
	}
	p.opts.Min, p.opts.Max = min, max
}

// Retire zeroes every replica's budget, releasing all preload bytes —
// the pool's shutdown when its model leaves the fleet. Part of the
// mutating API.
func (p *Pool) Retire() {
	p.mu.Lock()
	replicas := append([]*Replica(nil), p.replicas...)
	p.budget = 0
	p.plans = nil
	p.mu.Unlock()
	for _, r := range replicas {
		r.Batcher.Close()
		r.Engine.SetCacheBudget(0)
	}
}

// Advise consumes one queue-pressure observation (current depth and
// capacity of the model's admission queue) and returns the recommended
// replica delta: +1 past the high-water mark, -1 after a sustained
// idle stretch, 0 otherwise. It is cheap and safe to call on every
// scheduler event; cooldown and the [Min, Max] bounds are applied
// here so callers can act on any non-zero answer.
func (p *Pool) Advise(depth, capacity int) int {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if depth > 0 {
		p.idleSince = time.Time{}
	} else if p.idleSince.IsZero() {
		p.idleSince = now
	}
	if p.scaling || now.Sub(p.lastScale) < p.opts.Cooldown {
		return 0
	}
	live := p.liveLocked()
	if capacity > 0 && float64(depth) >= p.opts.HighWater*float64(capacity) && live < p.opts.Max {
		return 1
	}
	if depth == 0 && live > p.opts.Min && !p.idleSince.IsZero() && now.Sub(p.idleSince) >= p.opts.IdleAfter {
		return -1
	}
	return 0
}

// NoteScaleFailure re-arms the scaling cooldown after a failed scale
// attempt, so sustained pressure retries at Cooldown pace instead of
// re-acquiring the fleet write lock (and re-planning a ladder) on
// every queue observation while the failure persists.
func (p *Pool) NoteScaleFailure() {
	p.mu.Lock()
	p.lastScale = time.Now()
	p.mu.Unlock()
}

// BeginScale claims the single background-scaling slot; the caller
// must EndScale when its scaling action (or decision not to) is done.
// It keeps one pressure observation from spawning many concurrent
// scalers.
func (p *Pool) BeginScale() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.scaling {
		return false
	}
	p.scaling = true
	return true
}

// EndScale releases the background-scaling slot.
func (p *Pool) EndScale() {
	p.mu.Lock()
	p.scaling = false
	p.mu.Unlock()
}

// CacheBytes sums the preload bytes currently held across all
// replicas (draining ones included — their bytes are reclaimed only
// when retirement completes).
func (p *Pool) CacheBytes() int64 {
	p.mu.Lock()
	replicas := append([]*Replica(nil), p.replicas...)
	p.mu.Unlock()
	var total int64
	for _, r := range replicas {
		total += r.Engine.CacheBytes()
	}
	return total
}

// Stats snapshots the pool.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	st := PoolStats{
		Min: p.opts.Min, Max: p.opts.Max,
		Budget:   p.budget,
		ScaleUps: p.scaleUps, ScaleDowns: p.scaleDowns,
	}
	replicas := append([]*Replica(nil), p.replicas...)
	for _, r := range replicas {
		st.IDs = append(st.IDs, r.ID)
		st.Served = append(st.Served, r.served)
		st.Inflight = append(st.Inflight, r.inflight)
		if r.draining {
			st.Draining++
		} else {
			st.Replicas++
		}
	}
	st.PerReplica = PerReplica(p.budget, st.Replicas)
	p.mu.Unlock()
	for _, r := range replicas {
		st.CacheBytes += r.Engine.CacheBytes()
		st.KVBytes += r.Engine.KVBytes()
	}
	return st
}

// KVBytes sums the live paged decode KV bytes across all replicas.
func (p *Pool) KVBytes() int64 {
	p.mu.Lock()
	replicas := append([]*Replica(nil), p.replicas...)
	p.mu.Unlock()
	var total int64
	for _, r := range replicas {
		total += r.Engine.KVBytes()
	}
	return total
}

// GenStats aggregates every replica's continuous-batching step loop
// into one pool-level snapshot: counters sum; MaxStreams is the pool's
// total admission capacity; PeakStreams sums per-replica peaks (an
// upper bound on the pool-wide instantaneous peak).
func (p *Pool) GenStats() pipeline.StepLoopStats {
	p.mu.Lock()
	replicas := append([]*Replica(nil), p.replicas...)
	p.mu.Unlock()
	var agg pipeline.StepLoopStats
	for _, r := range replicas {
		st := r.Batcher.Stats()
		agg.Steps += st.Steps
		agg.StepSequences += st.StepSequences
		agg.Streams += st.Streams
		agg.PeakStreams += st.PeakStreams
		agg.Pending += st.Pending
		agg.MaxStreams += st.MaxStreams
		agg.Admitted += st.Admitted
		agg.Finished += st.Finished
		agg.Cancelled += st.Cancelled
		agg.Preempted += st.Preempted
		agg.RecomputedTokens += st.RecomputedTokens
		agg.TokensOut += st.TokensOut
		agg.KVBytes += st.KVBytes
	}
	if agg.Steps > 0 {
		agg.AvgStreamsPerStep = float64(agg.StepSequences) / float64(agg.Steps)
	}
	return agg
}
