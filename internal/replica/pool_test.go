package replica

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/pipeline"
	"sti/internal/planner"
	"sti/internal/store"
)

// poolFixture builds a tiny preprocessed store, a shared payload cache
// and a pool factory over them.
type poolFixture struct {
	st     *store.Store
	shared *store.SharedCache
	plan   *planner.Plan
}

func newFixture(t *testing.T, preload int64) *poolFixture {
	t.Helper()
	dir := t.TempDir()
	cfg := model.Tiny()
	w := model.NewRandom(cfg, 7)
	if _, err := store.Preprocess(dir, w, []int{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	imp := importance.Synthetic("SST-2", cfg.Layers, cfg.Heads)
	req := planner.NewRequest(device.Odroid(), cfg, imp,
		pipeline.ManifestSizer{Man: st.Man}, 100*time.Millisecond, preload)
	req.Bitwidths = []int{2, 4, 6}
	plan, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	return &poolFixture{st: st, shared: store.NewSharedCache(st, 1<<20), plan: plan}
}

func (fx *poolFixture) factory(t *testing.T) func(id int) (*pipeline.Engine, error) {
	res, err := fx.st.LoadResident()
	if err != nil {
		t.Fatal(err)
	}
	return func(id int) (*pipeline.Engine, error) {
		return pipeline.NewReplicaEngine(fx.st, res, fx.shared, 0), nil
	}
}

func (fx *poolFixture) newPool(t *testing.T, opts Options) *Pool {
	t.Helper()
	p, err := New(fx.factory(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolLeastLoadedDispatch(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 3, Max: 3})

	a, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == b.ID || b.ID == c.ID || a.ID == c.ID {
		t.Fatalf("three acquisitions landed on replicas %d,%d,%d; want three distinct", a.ID, b.ID, c.ID)
	}
	p.Release(b, 1)
	d, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != b.ID {
		t.Fatalf("fourth acquisition landed on %d; want the idle replica %d", d.ID, b.ID)
	}
	st := p.Stats()
	if st.Replicas != 3 || st.Served[indexOf(t, st.IDs, b.ID)] != 1 {
		t.Fatalf("stats %+v: want 3 replicas and 1 served on replica %d", st, b.ID)
	}
}

func indexOf(t *testing.T, ids []int, id int) int {
	t.Helper()
	for i, v := range ids {
		if v == id {
			return i
		}
	}
	t.Fatalf("replica %d not in %v", id, ids)
	return -1
}

func TestPoolBudgetSplitAcrossReplicas(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 4, Max: 4})

	const grant = 32 << 10
	if err := p.Apply(grant, []*planner.Plan{fx.plan}); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.PerReplica != grant/4 {
		t.Fatalf("per-replica grant %d, want %d", st.PerReplica, grant/4)
	}
	if st.CacheBytes == 0 || st.CacheBytes > grant {
		t.Fatalf("pool holds %d preload bytes; want within (0, %d]", st.CacheBytes, grant)
	}
	for _, r := range p.replicas {
		if got := r.Engine.CacheBytes(); got > grant/4 {
			t.Fatalf("replica %d holds %d bytes over its %d slice", r.ID, got, grant/4)
		}
		if got := r.Engine.Budget(); got != grant/4 {
			t.Fatalf("replica %d budget %d, want %d", r.ID, got, grant/4)
		}
	}
}

// TestPoolScaleDownDrains is the graceful-retirement regression test:
// a replica retired mid-request finishes its in-flight work before its
// preload bytes are reclaimed — the retirement waits (bounded), never
// sheds, and the survivors regrow into the reclaimed grant.
func TestPoolScaleDownDrains(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 1, Max: 2, DrainWait: 5 * time.Second})
	if err := p.ScaleTo(2); err != nil {
		t.Fatal(err)
	}
	const grant = 32 << 10
	if err := p.Apply(grant, []*planner.Plan{fx.plan}); err != nil {
		t.Fatal(err)
	}

	// Occupy both replicas; the youngest (the scale-down victim) runs a
	// real execution mid-retirement.
	first, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	victim := second
	if first.ID > second.ID {
		victim = first
	}
	other := first
	if victim == first {
		other = second
	}

	release := make(chan struct{})
	execDone := make(chan error, 1)
	go func() {
		<-release
		// The retiring replica's in-flight request executes to
		// completion — retirement must not have reclaimed its engine.
		_, _, err := victim.Engine.ExecuteBatch(context.Background(), fx.plan,
			[]pipeline.BatchInput{{Tokens: []int{1, 2, 3}}})
		p.Release(victim, 1)
		execDone <- err
	}()

	scaleDone := make(chan error, 1)
	go func() { scaleDone <- p.ScaleTo(1) }()

	// The drain must wait for the in-flight request: ScaleTo cannot
	// return while the victim is busy.
	select {
	case err := <-scaleDone:
		t.Fatalf("ScaleTo returned %v with a request still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}
	if got := victim.Engine.CacheBytes(); got == 0 {
		t.Fatal("victim's preload bytes reclaimed before its in-flight work finished")
	}
	// New work must not land on the draining replica.
	extra, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if extra.ID == victim.ID {
		t.Fatalf("draining replica %d still receives new work", victim.ID)
	}
	p.Release(extra, 0)
	p.Release(other, 1)

	close(release)
	if err := <-execDone; err != nil {
		t.Fatalf("in-flight execution on the retiring replica: %v", err)
	}
	if err := <-scaleDone; err != nil {
		t.Fatalf("scale-down after drain: %v", err)
	}
	if got := victim.Engine.CacheBytes(); got != 0 {
		t.Fatalf("retired replica still holds %d preload bytes", got)
	}
	st := p.Stats()
	if st.Replicas != 1 || st.Draining != 0 {
		t.Fatalf("pool %+v after scale-down, want 1 live replica", st)
	}
	if st.PerReplica != grant {
		t.Fatalf("survivor grant %d, want the whole %d", st.PerReplica, grant)
	}
	if st.CacheBytes == 0 || st.CacheBytes > grant {
		t.Fatalf("survivor holds %d bytes, want within (0, %d]", st.CacheBytes, grant)
	}
}

// TestPoolScaleDownBoundedWait: a drain that outlives DrainWait aborts
// the retirement instead of shedding the in-flight request — the
// replica returns to service with its bytes intact.
func TestPoolScaleDownBoundedWait(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 1, Max: 2, DrainWait: 30 * time.Millisecond})
	if err := p.ScaleTo(2); err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(32<<10, []*planner.Plan{fx.plan}); err != nil {
		t.Fatal(err)
	}

	a, _ := p.Acquire()
	b, _ := p.Acquire()
	err := p.ScaleTo(1) // both busy: the victim can never drain in time
	if err == nil || !strings.Contains(err.Error(), "retirement aborted") {
		t.Fatalf("ScaleTo err %v, want aborted retirement", err)
	}
	if got := p.Size(); got != 2 {
		t.Fatalf("pool size %d after aborted retirement, want 2", got)
	}
	// The would-be victim is back in service.
	p.Release(a, 1)
	p.Release(b, 1)
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		r, err := p.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		seen[r.ID] = true
	}
	if len(seen) != 2 {
		t.Fatalf("acquisitions reach %d replicas, want both after aborted retirement", len(seen))
	}
}

func TestPoolAdviseElasticity(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{
		Min: 1, Max: 3,
		HighWater: 0.5,
		IdleAfter: 10 * time.Millisecond,
		Cooldown:  time.Nanosecond,
	})
	if err := p.Apply(32<<10, []*planner.Plan{fx.plan}); err != nil {
		t.Fatal(err)
	}

	if d := p.Advise(1, 8); d != 0 {
		t.Fatalf("Advise(1/8) = %+d below high water, want 0", d)
	}
	if d := p.Advise(4, 8); d != 1 {
		t.Fatalf("Advise(4/8) = %+d at high water, want +1", d)
	}
	if err := p.ScaleTo(p.Size() + 1); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 2 {
		t.Fatalf("pool size %d after scale-up, want 2", got)
	}

	// Idle: first observation arms the idle clock, a later one fires.
	if d := p.Advise(0, 8); d != 0 {
		t.Fatalf("Advise(idle) = %+d immediately, want 0 until IdleAfter", d)
	}
	time.Sleep(15 * time.Millisecond)
	if d := p.Advise(0, 8); d != -1 {
		t.Fatalf("Advise(idle past IdleAfter) = %+d, want -1", d)
	}
	if err := p.ScaleTo(p.Size() - 1); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 1 {
		t.Fatalf("pool size %d after idle scale-down, want 1", got)
	}
	st := p.Stats()
	if st.ScaleUps != 1 || st.ScaleDowns != 1 {
		t.Fatalf("scale counters %d up / %d down, want 1/1", st.ScaleUps, st.ScaleDowns)
	}

	// At Max the pool never over-advises.
	if err := p.ScaleTo(3); err != nil {
		t.Fatal(err)
	}
	if d := p.Advise(8, 8); d != 0 {
		t.Fatalf("Advise at Max = %+d, want 0", d)
	}
}

// TestPoolResizeUnwindsFailedGrowth: a factory error mid-growth must
// leave the pool exactly as it was — no live, never-warmed replicas
// for Acquire to dispatch to.
func TestPoolResizeUnwindsFailedGrowth(t *testing.T) {
	fx := newFixture(t, 8<<10)
	inner := fx.factory(t)
	calls := 0
	p, err := New(func(id int) (*pipeline.Engine, error) {
		calls++
		if calls == 3 { // replica 0 at New, first growth ok, second fails
			return nil, context.DeadlineExceeded
		}
		return inner(id)
	}, Options{Min: 1, Max: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Apply(16<<10, []*planner.Plan{fx.plan}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Resize(3); err == nil {
		t.Fatal("Resize(3) succeeded despite the factory failing")
	}
	if got := p.Size(); got != 1 {
		t.Fatalf("pool size %d after failed growth, want 1 (partial spawns unwound)", got)
	}
	r, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine.Budget() == 0 {
		t.Fatal("Acquire returned a never-granted replica after failed growth")
	}
	p.Release(r, 0)
}

// TestPoolConfigureMergesUnsetFields: tuning one knob must not reset
// the others — in particular, Configure with an unset Max must not
// collapse a raised replica ceiling back to 1.
func TestPoolConfigureMergesUnsetFields(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 1, Max: 4, HighWater: 0.25})
	p.Configure(Options{DrainWait: 10 * time.Second})
	if p.opts.Max != 4 {
		t.Fatalf("Configure(DrainWait only) reset Max to %d, want 4 kept", p.opts.Max)
	}
	if p.opts.HighWater != 0.25 {
		t.Fatalf("Configure(DrainWait only) reset HighWater to %v, want 0.25 kept", p.opts.HighWater)
	}
	if p.opts.DrainWait != 10*time.Second {
		t.Fatalf("DrainWait %v, want the 10s override", p.opts.DrainWait)
	}
	if err := p.ScaleTo(4); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 4 {
		t.Fatalf("size %d after Configure + ScaleTo(4), want 4", got)
	}
}

func TestPoolScaleToClampsAndMax(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 1, Max: 2})
	if err := p.ScaleTo(10); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 2 {
		t.Fatalf("size %d after ScaleTo(10) with Max 2, want 2", got)
	}
	p.SetLimits(1, 4)
	if err := p.ScaleTo(10); err != nil {
		t.Fatal(err)
	}
	if got := p.Size(); got != 4 {
		t.Fatalf("size %d after raising Max to 4, want 4", got)
	}
}

func TestPoolSharedCacheDedupesAcrossReplicas(t *testing.T) {
	fx := newFixture(t, 0) // no preload: every execution streams all shards
	p := fx.newPool(t, Options{Min: 4, Max: 4})
	if err := p.Apply(0, nil); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := p.Acquire()
			if err != nil {
				t.Error(err)
				return
			}
			_, _, execErr := r.Engine.ExecuteBatch(context.Background(), fx.plan,
				[]pipeline.BatchInput{{Tokens: []int{5, 6, 7}}})
			p.Release(r, 1)
			if execErr != nil {
				t.Error(execErr)
			}
		}()
	}
	wg.Wait()

	cs := fx.shared.Stats()
	shards := uint64(0)
	for l := 0; l < fx.plan.Depth; l++ {
		shards += uint64(len(fx.plan.Slices[l]))
	}
	if cs.FlashReads != shards {
		t.Fatalf("4 replicas cost %d flash reads for %d plan shards; want exactly 1x (shared cache)",
			cs.FlashReads, shards)
	}
	if cs.Hits() != 3*shards {
		t.Fatalf("dedup hits %d, want %d (3 of 4 replicas served without flash)", cs.Hits(), 3*shards)
	}
	if cs.BytesSaved == 0 {
		t.Fatal("no bytes saved despite shared-cache hits")
	}
}

func TestPoolRetireReleasesEverything(t *testing.T) {
	fx := newFixture(t, 8<<10)
	p := fx.newPool(t, Options{Min: 2, Max: 2})
	if err := p.Apply(32<<10, []*planner.Plan{fx.plan}); err != nil {
		t.Fatal(err)
	}
	if p.CacheBytes() == 0 {
		t.Fatal("pool warmed nothing")
	}
	p.Retire()
	if got := p.CacheBytes(); got != 0 {
		t.Fatalf("retired pool still holds %d bytes", got)
	}
}
