package store

import (
	"container/list"
	"sync"
)

// PayloadReader is the read surface execution engines stream shard
// payloads through. *Store implements it by reading flash directly;
// SharedCache implements it by deduplicating reads across many engines
// of the same store.
type PayloadReader interface {
	// ReadShardPayload reads the serialized payload of one shard
	// version. The returned bytes are shared and must be treated as
	// immutable by every caller.
	ReadShardPayload(layer, slice, bits int) ([]byte, error)
}

var (
	_ PayloadReader = (*Store)(nil)
	_ PayloadReader = (*SharedCache)(nil)
)

// payloadKey addresses one shard payload. A store directory is
// immutable after Preprocess (every payload carries a CRC32 and the
// manifest records its exact size), so the (layer, slice, bits)
// coordinate is a stable content address within one store.
type payloadKey struct {
	Layer, Slice, Bits int
}

// flight is one in-progress flash read that concurrent callers of the
// same key coalesce onto.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// CacheStats is a point-in-time snapshot of a SharedCache's
// deduplication counters. BytesRead is actual flash IO; BytesSaved is
// IO the cache absorbed (coalesced or retained hits).
//
// The Prefetch* counters account the speculative second-class segment
// separately from demand retention, so wasted prefetch is measurable:
// Prefetches is speculative flash reads issued, PrefetchHits is
// prefetched payloads a demand read later consumed (promoted to the
// demand segment), PrefetchWasted is prefetched payloads evicted or
// dropped without ever being demanded, and PrefetchedBytes is the
// segment's current residency (within RetainedBytes' budget, never in
// addition to it).
type CacheStats struct {
	Requests         uint64 `json:"requests"`
	FlashReads       uint64 `json:"flash_reads"`
	SingleflightHits uint64 `json:"singleflight_hits"` // coalesced onto an in-flight read
	RetainedHits     uint64 `json:"retained_hits"`     // served from the retained-payload LRU
	BytesRead        int64  `json:"bytes_read"`
	BytesSaved       int64  `json:"bytes_saved"`
	RetainedBytes    int64  `json:"retained_bytes"` // current residency, both segments
	Evictions        uint64 `json:"evictions"`

	Prefetches      uint64 `json:"prefetches"`       // speculative flash reads issued
	PrefetchHits    uint64 `json:"prefetch_hits"`    // prefetched payloads demand later consumed
	PrefetchWasted  uint64 `json:"prefetch_wasted"`  // prefetched payloads never demanded
	PrefetchedBytes int64  `json:"prefetched_bytes"` // current second-class segment residency

	PeerFetches     uint64 `json:"peer_fetches"`      // peer-level lookups attempted on demand misses
	PeerHits        uint64 `json:"peer_hits"`         // demand misses a peer's retained copy satisfied
	PeerBytes       int64  `json:"peer_bytes"`        // bytes served by peers instead of local flash
	PeerServed      uint64 `json:"peer_served"`       // retained payloads this cache served to peers
	PeerServedBytes int64  `json:"peer_served_bytes"` // bytes this cache served to peers
}

// Hits is the total number of reads the cache absorbed without
// touching local flash.
func (s CacheStats) Hits() uint64 {
	return s.SingleflightHits + s.RetainedHits + s.PrefetchHits + s.PeerHits
}

// SharedCache is a read-through, content-addressed payload cache that
// fronts one store for many concurrent readers — the replica pools of
// internal/replica all stream through one SharedCache so K engines
// executing the same plan cost ~1× flash IO, not K×.
//
// Two mechanisms stack:
//
//   - Single-flight: concurrent ReadShardPayload calls for the same
//     shard version coalesce onto one flash read; every waiter gets the
//     same (shared, immutable) byte slice.
//   - Retention: completed payloads are kept in a byte-bounded LRU so
//     near-concurrent readers — replicas whose layer streams are a few
//     layers apart — still dedupe. retainBytes 0 disables retention,
//     leaving pure single-flight semantics.
//
// An optional third mechanism (SetPeerFetch) turns the cache into the
// first level of a cluster-wide two-level cache: a demand miss asks a
// peer node holding the payload retained before touching flash. The
// peer lookup rides inside the single flight and its result is
// retained under the same byte budget, so the peer level inherits both
// disciplines for free; Peek is the donor-side read peers use.
//
// A SharedCache is safe for concurrent use. Failed reads are never
// cached: every waiter of a failed flight observes the error and the
// next call retries the flash.
//
// Retention is segmented in two classes sharing the one retain budget.
// Demand-retained payloads (completed ReadShardPayload results) live on
// the primary LRU. Speculatively prefetched payloads
// (PrefetchShardPayload) live on a second-class LRU: they are always
// evicted before any demand entry, a prefetch insert never displaces a
// demand entry (it is refused instead), and a demand read that finds a
// prefetched payload promotes it into the demand segment (counting a
// PrefetchHit). Mispredicted prefetch therefore costs only its own
// flash read and the budget slack demand was not using.
type SharedCache struct {
	src PayloadReader

	mu        sync.Mutex
	peer      PeerFetch // optional second level, consulted on demand miss before src
	retain    int64
	flights   map[payloadKey]*flight
	cache     map[payloadKey]*list.Element
	lru       *list.List // of *cacheEntry, demand segment; front = least recently used
	pref      *list.List // of *cacheEntry, second-class prefetch segment; front = LRU
	bytes     int64      // demand-segment residency
	prefBytes int64      // prefetch-segment residency
	stats     CacheStats
}

// cacheEntry is one retained payload on either LRU list.
type cacheEntry struct {
	key        payloadKey
	payload    []byte
	prefetched bool // lives on the second-class prefetch list
}

// NewSharedCache fronts src with a single-flight payload cache
// retaining up to retainBytes of completed payloads (0 = coalesce
// concurrent reads only, retain nothing).
func NewSharedCache(src PayloadReader, retainBytes int64) *SharedCache {
	if retainBytes < 0 {
		retainBytes = 0
	}
	return &SharedCache{
		src:     src,
		retain:  retainBytes,
		flights: make(map[payloadKey]*flight),
		cache:   make(map[payloadKey]*list.Element),
		lru:     list.New(),
		pref:    list.New(),
	}
}

// SetRetain resizes the retention budget, evicting least recently used
// payloads to fit. 0 drops every retained payload, leaving pure
// single-flight coalescing.
func (c *SharedCache) SetRetain(retainBytes int64) {
	if retainBytes < 0 {
		retainBytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retain = retainBytes
	c.evictToLocked(c.retain)
}

// Drop releases every retained payload (the cache's shutdown when its
// model leaves a fleet); in-flight coalescing keeps working.
func (c *SharedCache) Drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictToLocked(0)
}

// evictToLocked evicts retained payloads until at most limit bytes
// remain across both segments. The second-class prefetch segment is
// drained first (LRU order); demand entries are touched only once no
// prefetched payload remains — speculation never outlives demand.
func (c *SharedCache) evictToLocked(limit int64) {
	for c.bytes+c.prefBytes > limit {
		el := c.pref.Front()
		if el == nil {
			break
		}
		c.removeLocked(el)
	}
	for c.bytes > limit {
		el := c.lru.Front()
		if el == nil {
			return
		}
		c.removeLocked(el)
	}
}

func (c *SharedCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	if e.prefetched {
		c.pref.Remove(el)
		c.prefBytes -= int64(len(e.payload))
		c.stats.PrefetchWasted++ // evicted without ever being demanded
	} else {
		c.lru.Remove(el)
		c.bytes -= int64(len(e.payload))
	}
	delete(c.cache, e.key)
	c.stats.Evictions++
}

// PeerFetch is the optional second cache level: given a shard's
// content address it returns the payload if some peer has it retained,
// or ok=false when no peer can serve it (the caller then falls through
// to flash). Implementations do network IO and are always invoked
// outside the cache lock, within the single flight for the key — so a
// peer is asked at most once per miss no matter how many readers pile
// onto the shard.
type PeerFetch func(layer, slice, bits int) (payload []byte, ok bool)

// SetPeerFetch installs (or, with nil, removes) the peer level. Safe
// to call concurrently with reads; in-progress flights keep whatever
// fetcher they started with.
func (c *SharedCache) SetPeerFetch(fn PeerFetch) {
	c.mu.Lock()
	c.peer = fn
	c.mu.Unlock()
}

// Peek reports a retained payload without any IO or retention churn:
// no flash fallthrough, no LRU reordering, no prefetch promotion. It
// is the donor side of the peer level — a peer's miss must not
// reshuffle this node's eviction order or trigger flash reads on the
// peer's behalf.
func (c *SharedCache) Peek(layer, slice, bits int) ([]byte, bool) {
	k := payloadKey{Layer: layer, Slice: slice, Bits: bits}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.cache[k]
	if !ok {
		return nil, false
	}
	p := el.Value.(*cacheEntry).payload
	c.stats.PeerServed++
	c.stats.PeerServedBytes += int64(len(p))
	return p, true
}

// ReadShardPayload serves one shard payload: from the retained LRU,
// by joining an in-flight read of the same shard, by asking a peer
// that has it retained (when a peer level is installed), or by reading
// the backing store (becoming the flight others join).
func (c *SharedCache) ReadShardPayload(layer, slice, bits int) ([]byte, error) {
	p, _, err := c.ReadShardPayloadOrigin(layer, slice, bits)
	return p, err
}

// ReadShardPayloadOrigin is ReadShardPayload plus where the bytes came
// from (OriginCache for retained or coalesced hits, OriginPrefetch for
// a speculatively prefetched payload consumed by demand, OriginPeer,
// OriginFlash) — the tag execution engines stamp on shard-IO trace
// spans. Implements OriginReader.
func (c *SharedCache) ReadShardPayloadOrigin(layer, slice, bits int) ([]byte, string, error) {
	k := payloadKey{Layer: layer, Slice: slice, Bits: bits}
	c.mu.Lock()
	c.stats.Requests++
	if el, ok := c.cache[k]; ok {
		e := el.Value.(*cacheEntry)
		p := e.payload
		origin := OriginCache
		if e.prefetched {
			// A demanded prefetch graduates to the demand segment: the
			// speculation paid off, so the payload is no longer
			// first-to-evict.
			c.pref.Remove(el)
			e.prefetched = false
			c.cache[k] = c.lru.PushBack(e)
			c.prefBytes -= int64(len(p))
			c.bytes += int64(len(p))
			c.stats.PrefetchHits++
			origin = OriginPrefetch
		} else {
			c.lru.MoveToBack(el)
			c.stats.RetainedHits++
		}
		c.stats.BytesSaved += int64(len(p))
		c.mu.Unlock()
		return p, origin, nil
	}
	if f, ok := c.flights[k]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			// A failed flight is not a dedup win: every waiter saw the
			// error and nothing was read on their behalf, so counting
			// it would overstate the hit rate under IO errors.
			return nil, "", f.err
		}
		c.mu.Lock()
		c.stats.SingleflightHits++
		c.stats.BytesSaved += int64(len(f.payload))
		c.mu.Unlock()
		return f.payload, OriginCache, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	peer := c.peer
	c.mu.Unlock()

	// Second level: within the flight (so a peer is asked once per miss,
	// however many readers coalesced) and outside the lock (a slow or
	// dead peer stalls only this shard's readers, never the cache). A
	// peer answers purely from its own retained set — the miss falls
	// through to local flash, never to a peer's flash.
	fromPeer := false
	if peer != nil {
		if p, ok := peer(layer, slice, bits); ok && len(p) > 0 {
			f.payload, fromPeer = p, true
		}
	}
	if !fromPeer {
		f.payload, f.err = c.src.ReadShardPayload(layer, slice, bits)
	}
	close(f.done)

	c.mu.Lock()
	delete(c.flights, k)
	if f.err == nil {
		if fromPeer {
			c.stats.PeerHits++
			c.stats.PeerBytes += int64(len(f.payload))
		} else {
			c.stats.FlashReads++
			c.stats.BytesRead += int64(len(f.payload))
		}
		// Either way the payload was demanded: retain it in the demand
		// segment under the same byte budget (peer-fetched bytes never
		// overshoot it — exactly as subordinate as prefetch).
		c.insertLocked(k, f.payload)
	}
	if peer != nil {
		c.stats.PeerFetches++
	}
	c.mu.Unlock()
	origin := OriginFlash
	if fromPeer {
		origin = OriginPeer
	}
	return f.payload, origin, f.err
}

// insertLocked retains one completed payload in the demand segment,
// evicting least recently used entries (prefetched first) until it
// fits. Payloads larger than the whole retention budget are not
// retained (they would evict everything for one entry).
func (c *SharedCache) insertLocked(k payloadKey, p []byte) {
	need := int64(len(p))
	if need == 0 || need > c.retain {
		return
	}
	if el, ok := c.cache[k]; ok {
		// A racing flight or prefetch of the same key already retained
		// it; if speculation got there first, the demand completion
		// promotes it out of the second-class segment.
		if e := el.Value.(*cacheEntry); e.prefetched {
			c.pref.Remove(el)
			e.prefetched = false
			c.cache[k] = c.lru.PushBack(e)
			c.prefBytes -= int64(len(e.payload))
			c.bytes += int64(len(e.payload))
			c.stats.PrefetchHits++
		}
		return
	}
	c.evictToLocked(c.retain - need)
	c.cache[k] = c.lru.PushBack(&cacheEntry{key: k, payload: p})
	c.bytes += need
}

// PrefetchShardPayload speculatively pulls one shard payload into the
// cache's second-class segment ahead of demand. It is strictly budget-
// subordinate: the payload is retained only if it fits the retain
// budget after evicting other *prefetched* entries — demand-retained
// payloads are never displaced, and an oversized or unfittable payload
// is simply dropped (its read still primed nothing, counted
// PrefetchWasted). Already-retained and already-in-flight keys are
// no-ops, so a prefetcher racing the compute front never duplicates
// IO; a concurrent demand read coalesces onto the prefetch's flight
// exactly like any other reader. It reports whether the payload is
// retained on return.
func (c *SharedCache) PrefetchShardPayload(layer, slice, bits int) (bool, error) {
	k := payloadKey{Layer: layer, Slice: slice, Bits: bits}
	c.mu.Lock()
	if c.retain == 0 {
		c.mu.Unlock()
		return false, nil // nothing can be retained; don't touch flash
	}
	if _, ok := c.cache[k]; ok {
		c.mu.Unlock()
		return true, nil // already retained (either segment)
	}
	if _, ok := c.flights[k]; ok {
		c.mu.Unlock()
		return false, nil // demand is already reading it
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	f.payload, f.err = c.src.ReadShardPayload(layer, slice, bits)
	close(f.done)

	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.flights, k)
	if f.err != nil {
		return false, f.err
	}
	c.stats.FlashReads++
	c.stats.BytesRead += int64(len(f.payload))
	c.stats.Prefetches++
	need := int64(len(f.payload))
	if need == 0 || need > c.retain {
		c.stats.PrefetchWasted++
		return false, nil
	}
	if _, ok := c.cache[k]; ok {
		return true, nil // a racing demand flight retained it meanwhile
	}
	// Make room with other prefetched payloads only; if demand retention
	// alone already fills the budget, the speculation loses.
	for c.bytes+c.prefBytes+need > c.retain {
		el := c.pref.Front()
		if el == nil {
			break
		}
		c.removeLocked(el)
	}
	if c.bytes+c.prefBytes+need > c.retain {
		c.stats.PrefetchWasted++
		return false, nil
	}
	c.cache[k] = c.pref.PushBack(&cacheEntry{key: k, payload: f.payload, prefetched: true})
	c.prefBytes += need
	return true, nil
}

// Stats snapshots the cache's counters.
func (c *SharedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.RetainedBytes = c.bytes + c.prefBytes
	s.PrefetchedBytes = c.prefBytes
	return s
}
