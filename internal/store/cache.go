package store

import (
	"container/list"
	"sync"
)

// PayloadReader is the read surface execution engines stream shard
// payloads through. *Store implements it by reading flash directly;
// SharedCache implements it by deduplicating reads across many engines
// of the same store.
type PayloadReader interface {
	// ReadShardPayload reads the serialized payload of one shard
	// version. The returned bytes are shared and must be treated as
	// immutable by every caller.
	ReadShardPayload(layer, slice, bits int) ([]byte, error)
}

var (
	_ PayloadReader = (*Store)(nil)
	_ PayloadReader = (*SharedCache)(nil)
)

// payloadKey addresses one shard payload. A store directory is
// immutable after Preprocess (every payload carries a CRC32 and the
// manifest records its exact size), so the (layer, slice, bits)
// coordinate is a stable content address within one store.
type payloadKey struct {
	Layer, Slice, Bits int
}

// flight is one in-progress flash read that concurrent callers of the
// same key coalesce onto.
type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// CacheStats is a point-in-time snapshot of a SharedCache's
// deduplication counters. BytesRead is actual flash IO; BytesSaved is
// IO the cache absorbed (coalesced or retained hits).
type CacheStats struct {
	Requests         uint64 `json:"requests"`
	FlashReads       uint64 `json:"flash_reads"`
	SingleflightHits uint64 `json:"singleflight_hits"` // coalesced onto an in-flight read
	RetainedHits     uint64 `json:"retained_hits"`     // served from the retained-payload LRU
	BytesRead        int64  `json:"bytes_read"`
	BytesSaved       int64  `json:"bytes_saved"`
	RetainedBytes    int64  `json:"retained_bytes"` // current LRU residency
	Evictions        uint64 `json:"evictions"`
}

// Hits is the total number of reads the cache absorbed without
// touching flash.
func (s CacheStats) Hits() uint64 { return s.SingleflightHits + s.RetainedHits }

// SharedCache is a read-through, content-addressed payload cache that
// fronts one store for many concurrent readers — the replica pools of
// internal/replica all stream through one SharedCache so K engines
// executing the same plan cost ~1× flash IO, not K×.
//
// Two mechanisms stack:
//
//   - Single-flight: concurrent ReadShardPayload calls for the same
//     shard version coalesce onto one flash read; every waiter gets the
//     same (shared, immutable) byte slice.
//   - Retention: completed payloads are kept in a byte-bounded LRU so
//     near-concurrent readers — replicas whose layer streams are a few
//     layers apart — still dedupe. retainBytes 0 disables retention,
//     leaving pure single-flight semantics.
//
// A SharedCache is safe for concurrent use. Failed reads are never
// cached: every waiter of a failed flight observes the error and the
// next call retries the flash.
type SharedCache struct {
	src PayloadReader

	mu      sync.Mutex
	retain  int64
	flights map[payloadKey]*flight
	cache   map[payloadKey]*list.Element
	lru     *list.List // of *cacheEntry; front = least recently used
	bytes   int64
	stats   CacheStats
}

// cacheEntry is one retained payload on the LRU list.
type cacheEntry struct {
	key     payloadKey
	payload []byte
}

// NewSharedCache fronts src with a single-flight payload cache
// retaining up to retainBytes of completed payloads (0 = coalesce
// concurrent reads only, retain nothing).
func NewSharedCache(src PayloadReader, retainBytes int64) *SharedCache {
	if retainBytes < 0 {
		retainBytes = 0
	}
	return &SharedCache{
		src:     src,
		retain:  retainBytes,
		flights: make(map[payloadKey]*flight),
		cache:   make(map[payloadKey]*list.Element),
		lru:     list.New(),
	}
}

// SetRetain resizes the retention budget, evicting least recently used
// payloads to fit. 0 drops every retained payload, leaving pure
// single-flight coalescing.
func (c *SharedCache) SetRetain(retainBytes int64) {
	if retainBytes < 0 {
		retainBytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.retain = retainBytes
	c.evictToLocked(c.retain)
}

// Drop releases every retained payload (the cache's shutdown when its
// model leaves a fleet); in-flight coalescing keeps working.
func (c *SharedCache) Drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictToLocked(0)
}

// evictToLocked evicts least-recently-used payloads until at most
// limit bytes remain retained.
func (c *SharedCache) evictToLocked(limit int64) {
	for c.bytes > limit {
		el := c.lru.Front()
		if el == nil {
			return
		}
		c.removeLocked(el)
	}
}

func (c *SharedCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.cache, e.key)
	c.bytes -= int64(len(e.payload))
	c.stats.Evictions++
}

// ReadShardPayload serves one shard payload: from the retained LRU,
// by joining an in-flight read of the same shard, or by reading the
// backing store (becoming the flight others join).
func (c *SharedCache) ReadShardPayload(layer, slice, bits int) ([]byte, error) {
	k := payloadKey{Layer: layer, Slice: slice, Bits: bits}
	c.mu.Lock()
	c.stats.Requests++
	if el, ok := c.cache[k]; ok {
		c.lru.MoveToBack(el)
		p := el.Value.(*cacheEntry).payload
		c.stats.RetainedHits++
		c.stats.BytesSaved += int64(len(p))
		c.mu.Unlock()
		return p, nil
	}
	if f, ok := c.flights[k]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			// A failed flight is not a dedup win: every waiter saw the
			// error and nothing was read on their behalf, so counting
			// it would overstate the hit rate under IO errors.
			return nil, f.err
		}
		c.mu.Lock()
		c.stats.SingleflightHits++
		c.stats.BytesSaved += int64(len(f.payload))
		c.mu.Unlock()
		return f.payload, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	f.payload, f.err = c.src.ReadShardPayload(layer, slice, bits)
	close(f.done)

	c.mu.Lock()
	delete(c.flights, k)
	if f.err == nil {
		c.stats.FlashReads++
		c.stats.BytesRead += int64(len(f.payload))
		c.insertLocked(k, f.payload)
	}
	c.mu.Unlock()
	return f.payload, f.err
}

// insertLocked retains one completed payload, evicting least recently
// used entries until it fits. Payloads larger than the whole retention
// budget are not retained (they would evict everything for one entry).
func (c *SharedCache) insertLocked(k payloadKey, p []byte) {
	need := int64(len(p))
	if need == 0 || need > c.retain {
		return
	}
	if _, ok := c.cache[k]; ok {
		return // a racing flight of the same key already retained it
	}
	c.evictToLocked(c.retain - need)
	c.cache[k] = c.lru.PushBack(&cacheEntry{key: k, payload: p})
	c.bytes += need
}

// Stats snapshots the cache's counters.
func (c *SharedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.RetainedBytes = c.bytes
	return s
}
