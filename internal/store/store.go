// Package store persists and serves the N×M×K shard versions of a
// preprocessed model (§4.2 "storing shards per version", §6).
//
// Layout of a store directory:
//
//	manifest.json            — geometry, bitwidths, exact per-shard sizes
//	resident.gob             — always-resident parameters (embeddings,
//	                           biases, layernorms, classifier head)
//	layer_LL_bits_BB.bin     — all M shards of layer LL at bitwidth BB,
//	                           co-located for access locality (§6)
//
// Each layer file carries an index so a subset of shards can be read
// with one contiguous scan per shard; STI loads one layer's selected
// shards as a single IO job (§3.1).
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sti/internal/model"
	"sti/internal/quant"
	"sti/internal/shard"
	"sti/internal/tensor"
)

const (
	manifestName = "manifest.json"
	residentName = "resident.gob"
	fileMagic    = 0x5354494C // "STIL"
)

// Manifest records what a store contains. Sizes are exact serialized
// bytes per shard version, which the planner uses for IO budgeting when
// planning against a real store.
type Manifest struct {
	Config    model.Config
	Bitwidths []int // quantized widths; FullBits is always also stored
	// Sizes[layer][slice][i] is the payload size at Bitwidths[i];
	// the last entry (index len(Bitwidths)) is the full-fidelity size.
	Sizes [][][]int
}

// bitIndex maps a bitwidth to its column in Manifest.Sizes.
func (m *Manifest) bitIndex(bits int) (int, error) {
	if bits == shard.FullBits {
		return len(m.Bitwidths), nil
	}
	for i, b := range m.Bitwidths {
		if b == bits {
			return i, nil
		}
	}
	return 0, fmt.Errorf("store: bitwidth %d not in store (have %v + full)", bits, m.Bitwidths)
}

// ShardSize returns the exact on-disk payload size of a shard version.
func (m *Manifest) ShardSize(layer, slice, bits int) (int, error) {
	if layer < 0 || layer >= m.Config.Layers || slice < 0 || slice >= m.Config.Heads {
		return 0, fmt.Errorf("store: shard (%d,%d) outside %dx%d", layer, slice, m.Config.Layers, m.Config.Heads)
	}
	bi, err := m.bitIndex(bits)
	if err != nil {
		return 0, err
	}
	return m.Sizes[layer][slice][bi], nil
}

// TotalBytes returns the cumulative size of all stored fidelity
// versions, split into quantized versions and the full model — the
// storage-overhead numbers of §7.2.
func (m *Manifest) TotalBytes() (quantized, full int64) {
	for _, layer := range m.Sizes {
		for _, sizes := range layer {
			for i, s := range sizes {
				if i == len(m.Bitwidths) {
					full += int64(s)
				} else {
					quantized += int64(s)
				}
			}
		}
	}
	return quantized, full
}

// resident is the gob-serialized always-in-memory parameter set.
type resident struct {
	Cfg     model.Config
	Emb     *model.Embeddings
	Misc    []layerMisc
	Pooler  *tensor.Matrix
	PoolerB []float32
	Cls     *tensor.Matrix
	ClsB    []float32
}

type layerMisc struct {
	QB, KB, VB, OB, FFN1B, FFN2B, LN1G, LN1B, LN2G, LN2B []float32
}

// Preprocess shards, quantizes and persists a model into dir, returning
// the manifest. This is STI's one-time per-model preprocessing (§3.2),
// normally done in the cloud before deployment.
func Preprocess(dir string, w *model.Weights, bitwidths []int) (*Manifest, error) {
	if len(bitwidths) == 0 {
		bitwidths = shard.Bitwidths
	}
	for _, b := range bitwidths {
		if b == shard.FullBits || b < quant.MinBits || b > quant.MaxBits {
			return nil, fmt.Errorf("store: cannot preprocess bitwidth %d", b)
		}
	}
	cfg := w.Cfg
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man := &Manifest{Config: cfg, Bitwidths: append([]int(nil), bitwidths...)}
	man.Sizes = make([][][]int, cfg.Layers)

	allBits := append(append([]int(nil), bitwidths...), shard.FullBits)
	for l := 0; l < cfg.Layers; l++ {
		man.Sizes[l] = make([][]int, cfg.Heads)
		for s := range man.Sizes[l] {
			man.Sizes[l][s] = make([]int, len(allBits))
		}
		flats := make([][]float32, cfg.Heads)
		for s := 0; s < cfg.Heads; s++ {
			flats[s] = w.ExtractShard(l, s).Flatten()
		}
		for bi, bits := range allBits {
			payloads := make([][]byte, cfg.Heads)
			for s := 0; s < cfg.Heads; s++ {
				if bits == shard.FullBits {
					payloads[s] = EncodeRawPayload(flats[s])
				} else {
					payloads[s] = EncodePayload(quant.Quantize(flats[s], bits))
				}
				man.Sizes[l][s][bi] = len(payloads[s])
			}
			if err := writeLayerFile(layerPath(dir, l, bits), l, bits, payloads); err != nil {
				return nil, err
			}
		}
	}

	if err := writeResident(filepath.Join(dir, residentName), w); err != nil {
		return nil, err
	}
	manData, err := json.MarshalIndent(man, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, manifestName), manData, 0o644); err != nil {
		return nil, err
	}
	return man, nil
}

func layerPath(dir string, layer, bits int) string {
	return filepath.Join(dir, fmt.Sprintf("layer_%02d_bits_%02d.bin", layer, bits))
}

// writeLayerFile co-locates all shards of (layer, bits) in one file:
// header, index table, then payloads.
func writeLayerFile(path string, layer, bits int, payloads [][]byte) error {
	var buf bytes.Buffer
	w32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w64 := func(v uint64) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	w32(fileMagic)
	w32(uint32(layer))
	w32(uint32(bits))
	w32(uint32(len(payloads)))
	offset := uint64(16 + 16*len(payloads))
	for _, p := range payloads {
		w64(offset)
		w64(uint64(len(p)))
		offset += uint64(len(p))
	}
	for _, p := range payloads {
		buf.Write(p)
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

func writeResident(path string, w *model.Weights) error {
	r := resident{
		Cfg: w.Cfg, Emb: w.Emb,
		Pooler: w.Pooler, PoolerB: w.PoolerB, Cls: w.Cls, ClsB: w.ClsB,
	}
	for _, l := range w.Layers {
		r.Misc = append(r.Misc, layerMisc{
			QB: l.QB, KB: l.KB, VB: l.VB, OB: l.OB,
			FFN1B: l.FFN1B, FFN2B: l.FFN2B,
			LN1G: l.LN1G, LN1B: l.LN1B, LN2G: l.LN2G, LN2B: l.LN2B,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(&r)
}

// Store serves shard payloads from a preprocessed directory.
type Store struct {
	Dir string
	Man *Manifest
}

// Open loads a store's manifest.
func Open(dir string) (*Store, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	man := &Manifest{}
	if err := json.Unmarshal(data, man); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	return &Store{Dir: dir, Man: man}, nil
}

// ReadShardPayload reads the serialized payload of one shard version.
// The returned byte count is exactly what an IO planner should charge.
func (s *Store) ReadShardPayload(layer, slice, bits int) ([]byte, error) {
	if _, err := s.Man.ShardSize(layer, slice, bits); err != nil {
		return nil, err
	}
	f, err := os.Open(layerPath(s.Dir, layer, bits))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	offset, length, err := readIndexEntry(f, slice)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, length)
	if _, err := f.ReadAt(payload, int64(offset)); err != nil {
		return nil, fmt.Errorf("store: shard (%d,%d)@%d: %w", layer, slice, bits, err)
	}
	return payload, nil
}

// ReadShard reads and decodes one shard version.
func (s *Store) ReadShard(layer, slice, bits int) (*Payload, error) {
	raw, err := s.ReadShardPayload(layer, slice, bits)
	if err != nil {
		return nil, err
	}
	return DecodePayload(raw)
}

func readIndexEntry(f *os.File, slice int) (offset, length uint64, err error) {
	header := make([]byte, 16)
	if _, err := f.ReadAt(header, 0); err != nil {
		return 0, 0, err
	}
	if binary.LittleEndian.Uint32(header) != fileMagic {
		return 0, 0, fmt.Errorf("store: bad layer file magic")
	}
	n := binary.LittleEndian.Uint32(header[12:])
	if slice < 0 || uint32(slice) >= n {
		return 0, 0, fmt.Errorf("store: slice %d outside %d shards", slice, n)
	}
	entry := make([]byte, 16)
	if _, err := f.ReadAt(entry, int64(16+16*slice)); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(entry), binary.LittleEndian.Uint64(entry[8:]), nil
}

// LoadResident reconstructs a Weights skeleton holding the resident
// parameters; layer weight matrices are zeroed and get populated from
// shards by the execution engine.
func (s *Store) LoadResident() (*model.Weights, error) {
	f, err := os.Open(filepath.Join(s.Dir, residentName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r resident
	if err := gob.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("store: resident: %w", err)
	}
	w := &model.Weights{
		Cfg: r.Cfg, Emb: r.Emb,
		Pooler: r.Pooler, PoolerB: r.PoolerB, Cls: r.Cls, ClsB: r.ClsB,
	}
	for _, m := range r.Misc {
		w.Layers = append(w.Layers, &model.LayerWeights{
			QB: m.QB, KB: m.KB, VB: m.VB, OB: m.OB,
			FFN1B: m.FFN1B, FFN2B: m.FFN2B,
			LN1G: m.LN1G, LN1B: m.LN1B, LN2G: m.LN2G, LN2B: m.LN2B,
		})
	}
	return w, nil
}
