package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sti/internal/importance"
)

// importanceName is the optional per-model importance profile shipped
// alongside the shards. The paper profiles importance per fine-tuned
// model in the cloud (§3.2, §5.2) and deploys the result with the
// model; persisting it in the store mirrors that flow.
const importanceName = "importance.json"

// SaveImportance writes a profiled importance table into the store
// directory.
func SaveImportance(dir string, tbl *importance.Table) error {
	data, err := json.MarshalIndent(tbl, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, importanceName), data, 0o644)
}

// LoadImportance reads the store's importance profile. It returns
// (nil, nil) when none was shipped — callers fall back to a uniform or
// synthetic table.
func (s *Store) LoadImportance() (*importance.Table, error) {
	data, err := os.ReadFile(filepath.Join(s.Dir, importanceName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	tbl := &importance.Table{}
	if err := json.Unmarshal(data, tbl); err != nil {
		return nil, fmt.Errorf("store: importance profile: %w", err)
	}
	if tbl.Layers != s.Man.Config.Layers || tbl.Slices != s.Man.Config.Heads {
		return nil, fmt.Errorf("store: importance profile is %dx%d, model is %dx%d",
			tbl.Layers, tbl.Slices, s.Man.Config.Layers, s.Man.Config.Heads)
	}
	return tbl, nil
}
