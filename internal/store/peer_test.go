package store

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

// TestSharedCachePeerLevelHitAvoidsFlash: a demand miss with a peer
// level installed is served from the peer's retained set without
// touching local flash, and the fetched payload is retained locally
// like any demanded read.
func TestSharedCachePeerLevelHitAvoidsFlash(t *testing.T) {
	donorSrc := &countingReader{}
	donor := NewSharedCache(donorSrc, 1<<20)
	if _, err := donor.ReadShardPayload(1, 2, 4); err != nil {
		t.Fatal(err)
	}

	localSrc := &countingReader{}
	local := NewSharedCache(localSrc, 1<<20)
	local.SetPeerFetch(func(layer, slice, bits int) ([]byte, bool) {
		return donor.Peek(layer, slice, bits)
	})

	p, err := local.ReadShardPayload(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, []byte{1, 2, 4}) {
		t.Fatalf("payload %v", p)
	}
	if got := localSrc.reads.Load(); got != 0 {
		t.Fatalf("local flash read %d times on a peer hit, want 0", got)
	}
	st := local.Stats()
	if st.PeerFetches != 1 || st.PeerHits != 1 || st.PeerBytes != 3 || st.FlashReads != 0 {
		t.Fatalf("local stats %+v: want 1 peer fetch = 1 hit, 3 bytes, 0 flash reads", st)
	}
	ds := donor.Stats()
	if ds.PeerServed != 1 || ds.PeerServedBytes != 3 {
		t.Fatalf("donor stats %+v: want 1 payload / 3 bytes served to peers", ds)
	}

	// The peer-fetched payload was demanded, so it is retained: the
	// next read is a local retained hit, no second peer round-trip.
	if _, err := local.ReadShardPayload(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	st = local.Stats()
	if st.RetainedHits != 1 || st.PeerFetches != 1 {
		t.Fatalf("stats %+v: want retained hit without a second peer fetch", st)
	}

	// A key the peer does not hold falls through to local flash.
	if _, err := local.ReadShardPayload(9, 9, 4); err != nil {
		t.Fatal(err)
	}
	if got := localSrc.reads.Load(); got != 1 {
		t.Fatalf("local flash reads %d, want 1 after peer miss", got)
	}
	st = local.Stats()
	if st.PeerFetches != 2 || st.PeerHits != 1 || st.FlashReads != 1 {
		t.Fatalf("stats %+v: want attempted-but-missed peer fetch then flash", st)
	}
}

// TestSharedCachePeerLevelSingleFlight: concurrent demand readers of
// one shard coalesce onto a single peer lookup — the peer is asked
// once per miss, not once per reader.
func TestSharedCachePeerLevelSingleFlight(t *testing.T) {
	local := NewSharedCache(&countingReader{}, 0) // retention off: every read is a miss
	gate := make(chan struct{})
	var fetches sync.Map
	var nfetch int
	var mu sync.Mutex
	local.SetPeerFetch(func(layer, slice, bits int) ([]byte, bool) {
		mu.Lock()
		nfetch++
		mu.Unlock()
		fetches.Store([3]int{layer, slice, bits}, true)
		<-gate
		return []byte{7, 7, 7}, true
	})

	const callers = 6
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = local.ReadShardPayload(3, 0, 4)
		}(i)
	}
	for local.Stats().Requests < callers {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	mu.Lock()
	got := nfetch
	mu.Unlock()
	if got != 1 {
		t.Fatalf("peer asked %d times for %d concurrent readers, want 1", got, callers)
	}
	for i := range results {
		if !bytes.Equal(results[i], []byte{7, 7, 7}) {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
	st := local.Stats()
	if st.PeerHits != 1 || st.SingleflightHits != callers-1 {
		t.Fatalf("stats %+v: want 1 peer hit, %d coalesced readers", st, callers-1)
	}
}

// TestSharedCachePeerLevelBudgetSubordinate: peer-fetched payloads are
// retained under the same byte budget as everything else — a payload
// larger than the budget is served but never retained past it.
func TestSharedCachePeerLevelBudgetSubordinate(t *testing.T) {
	big := make([]byte, 128)
	local := NewSharedCache(&countingReader{}, 64)
	local.SetPeerFetch(func(layer, slice, bits int) ([]byte, bool) { return big, true })

	p, err := local.ReadShardPayload(0, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != len(big) {
		t.Fatalf("payload %d bytes, want %d", len(p), len(big))
	}
	st := local.Stats()
	if st.RetainedBytes != 0 {
		t.Fatalf("retained %d bytes with a 64-byte budget: peer bytes overshot the budget", st.RetainedBytes)
	}
	if st.PeerHits != 1 {
		t.Fatalf("stats %+v: oversized peer payload must still serve the read", st)
	}
}

// TestSharedCachePeekIsInert: the donor-side Peek neither promotes
// prefetched entries nor reorders the demand LRU nor falls through to
// flash — a peer's traffic cannot reshape this node's cache.
func TestSharedCachePeekIsInert(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 1<<20)
	if kept, err := c.PrefetchShardPayload(5, 0, 4); err != nil || !kept {
		t.Fatalf("prefetch kept=%v err=%v", kept, err)
	}
	reads := src.reads.Load()

	p, ok := c.Peek(5, 0, 4)
	if !ok || !bytes.Equal(p, []byte{5, 0, 4}) {
		t.Fatalf("Peek = %v, %v", p, ok)
	}
	if src.reads.Load() != reads {
		t.Fatal("Peek touched flash")
	}
	st := c.Stats()
	if st.PrefetchHits != 0 || st.PrefetchedBytes == 0 {
		t.Fatalf("stats %+v: Peek must not promote a prefetched entry", st)
	}
	if _, ok := c.Peek(8, 8, 8); ok {
		t.Fatal("Peek invented a payload it does not retain")
	}
}
