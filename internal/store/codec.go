package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"sti/internal/quant"
	"sti/internal/shard"
)

// payloadMagic guards each serialized shard payload.
const payloadMagic = 0x53544950 // "STIP"

// finishPayload appends the CRC32 trailer over everything written so
// far. Flash on cheap edge devices corrupts; a shard substituted with
// garbage weights would silently destroy accuracy, so every payload is
// integrity-checked on decode.
func finishPayload(buf *bytes.Buffer) []byte {
	sum := crc32.ChecksumIEEE(buf.Bytes())
	_ = binary.Write(buf, binary.LittleEndian, sum)
	return buf.Bytes()
}

// verifyPayload checks and strips the CRC32 trailer.
func verifyPayload(data []byte) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("store: payload too short for checksum")
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("store: payload checksum mismatch (%#x != %#x)", got, want)
	}
	return body, nil
}

// Payload is one decoded shard fidelity version: either a quantized
// block or raw float32 weights.
type Payload struct {
	Bits  int
	Count int
	Block *quant.Block // nil when Bits == shard.FullBits
	Raw   []float32    // nil when quantized
}

// Weights returns the full-fidelity float32 weights of the payload,
// dequantizing if necessary. This is the decompression step of the
// pipeline (§5.5): dictionary substitution back to FP32.
func (p *Payload) Weights() []float32 {
	if p.Bits == shard.FullBits {
		return p.Raw
	}
	return p.Block.Dequantize()
}

// WeightsInto decompresses into dst (length ≥ Count), reusing the
// pipeline's working buffer.
func (p *Payload) WeightsInto(dst []float32) []float32 {
	if p.Bits == shard.FullBits {
		copy(dst, p.Raw)
		return dst[:p.Count]
	}
	return p.Block.DequantizeInto(dst)
}

// EncodePayload serializes a quantized block into the store's on-disk
// format.
func EncodePayload(b *quant.Block) []byte {
	var buf bytes.Buffer
	writeU32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	writeU32(payloadMagic)
	writeU32(uint32(b.Bits))
	writeU32(uint32(b.Count))
	writeU32(uint32(len(b.Centroids)))
	for _, c := range b.Centroids {
		writeU32(math.Float32bits(c))
	}
	writeU32(uint32(len(b.OutlierPos)))
	for _, p := range b.OutlierPos {
		writeU32(p)
	}
	for _, v := range b.OutlierVal {
		writeU32(math.Float32bits(v))
	}
	writeU32(uint32(len(b.Packed)))
	buf.Write(b.Packed)
	return finishPayload(&buf)
}

// EncodeRawPayload serializes full-fidelity weights.
func EncodeRawPayload(weights []float32) []byte {
	var buf bytes.Buffer
	writeU32 := func(v uint32) { _ = binary.Write(&buf, binary.LittleEndian, v) }
	writeU32(payloadMagic)
	writeU32(uint32(shard.FullBits))
	writeU32(uint32(len(weights)))
	for _, w := range weights {
		writeU32(math.Float32bits(w))
	}
	return finishPayload(&buf)
}

// DecodePayload parses a serialized shard payload, verifying its
// integrity checksum first.
func DecodePayload(data []byte) (*Payload, error) {
	body, err := verifyPayload(data)
	if err != nil {
		return nil, err
	}
	r := &byteReader{data: body}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != payloadMagic {
		return nil, fmt.Errorf("store: bad payload magic %#x", magic)
	}
	bits, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.u32()
	if err != nil {
		return nil, err
	}
	p := &Payload{Bits: int(bits), Count: int(count)}
	if p.Bits == shard.FullBits {
		raw := make([]float32, count)
		for i := range raw {
			v, err := r.u32()
			if err != nil {
				return nil, err
			}
			raw[i] = math.Float32frombits(v)
		}
		p.Raw = raw
		return p, nil
	}
	if p.Bits < quant.MinBits || p.Bits > quant.MaxBits {
		return nil, fmt.Errorf("store: payload bitwidth %d invalid", p.Bits)
	}
	nc, err := r.u32()
	if err != nil {
		return nil, err
	}
	blk := &quant.Block{Bits: p.Bits, Count: p.Count, Centroids: make([]float32, nc)}
	for i := range blk.Centroids {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		blk.Centroids[i] = math.Float32frombits(v)
	}
	no, err := r.u32()
	if err != nil {
		return nil, err
	}
	blk.OutlierPos = make([]uint32, no)
	blk.OutlierVal = make([]float32, no)
	for i := range blk.OutlierPos {
		if blk.OutlierPos[i], err = r.u32(); err != nil {
			return nil, err
		}
	}
	for i := range blk.OutlierVal {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		blk.OutlierVal[i] = math.Float32frombits(v)
	}
	np, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(np) > len(r.data)-r.off {
		return nil, fmt.Errorf("store: truncated packed section (%d of %d bytes)", len(r.data)-r.off, np)
	}
	blk.Packed = append([]byte(nil), r.data[r.off:r.off+int(np)]...)
	p.Block = blk
	return p, nil
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) u32() (uint32, error) {
	if r.off+4 > len(r.data) {
		return 0, fmt.Errorf("store: truncated payload at offset %d", r.off)
	}
	v := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v, nil
}
