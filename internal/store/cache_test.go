package store

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sti/internal/model"
)

// countingReader is a PayloadReader that counts real reads and can
// block them so tests control flight overlap.
type countingReader struct {
	reads   atomic.Int64
	gate    chan struct{} // when non-nil, reads block until closed
	err     error
	payload []byte
}

func (r *countingReader) ReadShardPayload(layer, slice, bits int) ([]byte, error) {
	r.reads.Add(1)
	if r.gate != nil {
		<-r.gate
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.payload != nil {
		return r.payload, nil
	}
	// Distinct payload per key so callers can verify routing.
	return []byte{byte(layer), byte(slice), byte(bits)}, nil
}

func TestSharedCacheSingleFlightCoalesces(t *testing.T) {
	src := &countingReader{gate: make(chan struct{})}
	c := NewSharedCache(src, 0) // retention off: pure single-flight

	const callers = 8
	results := make([][]byte, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.ReadShardPayload(1, 2, 4)
		}(i)
	}
	// Release the gate only once every follower has registered on the
	// leader's flight (the leader is parked inside the store, so the
	// flight cannot complete underneath them). Requests is counted at
	// entry, before a follower parks on the flight.
	for c.Stats().Requests < callers {
		runtime.Gosched()
	}
	close(src.gate)
	wg.Wait()

	if got := src.reads.Load(); got != 1 {
		t.Fatalf("store read %d times for %d concurrent callers, want 1", got, callers)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !bytes.Equal(results[i], []byte{1, 2, 4}) {
			t.Fatalf("caller %d got %v", i, results[i])
		}
	}
	st := c.Stats()
	if st.FlashReads != 1 || st.SingleflightHits != callers-1 {
		t.Fatalf("stats %+v: want 1 flash read, %d singleflight hits", st, callers-1)
	}
	if st.BytesSaved != int64((callers-1)*3) {
		t.Fatalf("BytesSaved %d, want %d", st.BytesSaved, (callers-1)*3)
	}

	// Retention is off: a later read goes back to the store.
	if _, err := c.ReadShardPayload(1, 2, 4); err != nil {
		t.Fatal(err)
	}
	if got := src.reads.Load(); got != 2 {
		t.Fatalf("zero-retention cache re-read %d times, want 2", got)
	}
}

func TestSharedCacheRetainsWithinBudget(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 8) // room for two 3-byte payloads, not three

	read := func(l int) {
		t.Helper()
		if _, err := c.ReadShardPayload(l, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	read(0)
	read(0) // retained hit
	if got := src.reads.Load(); got != 1 {
		t.Fatalf("store read %d times, want 1 (second read retained)", got)
	}
	read(1)
	read(2) // evicts the LRU entry (layer 0)
	st := c.Stats()
	if st.RetainedBytes > 8 {
		t.Fatalf("retained %d bytes over budget 8", st.RetainedBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected an LRU eviction past the retention budget")
	}
	read(0) // evicted: back to the store
	if got := src.reads.Load(); got != 4 {
		t.Fatalf("store read %d times, want 4 (layer 0 was evicted)", got)
	}
}

func TestSharedCacheLRUTouchOnHit(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 6) // exactly two 3-byte payloads

	mustRead := func(l int) {
		t.Helper()
		if _, err := c.ReadShardPayload(l, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	mustRead(0)
	mustRead(1)
	mustRead(0) // touch: layer 0 becomes most recent
	mustRead(2) // must evict layer 1, not layer 0
	before := src.reads.Load()
	mustRead(0)
	if src.reads.Load() != before {
		t.Fatal("layer 0 was evicted despite being most recently used")
	}
}

// TestSharedCacheSetRetainAndDrop: the retention window is resizable
// downward (evicting to fit) and Drop releases every retained byte
// while coalescing keeps working.
func TestSharedCacheSetRetainAndDrop(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 1<<10)
	for l := 0; l < 4; l++ {
		if _, err := c.ReadShardPayload(l, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.RetainedBytes != 12 {
		t.Fatalf("retained %d bytes, want 12 (4x3)", st.RetainedBytes)
	}
	c.SetRetain(6)
	if st := c.Stats(); st.RetainedBytes > 6 {
		t.Fatalf("retained %d bytes after SetRetain(6)", st.RetainedBytes)
	}
	c.Drop()
	if st := c.Stats(); st.RetainedBytes != 0 {
		t.Fatalf("retained %d bytes after Drop, want 0", st.RetainedBytes)
	}
	// Still serves (and re-retains under the smaller window).
	if _, err := c.ReadShardPayload(0, 0, 4); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.RetainedBytes != 3 {
		t.Fatalf("retained %d bytes after post-Drop read, want 3", st.RetainedBytes)
	}
}

func TestSharedCacheErrorNotCached(t *testing.T) {
	boom := errors.New("flash died")
	src := &countingReader{err: boom}
	c := NewSharedCache(src, 1<<10)

	if _, err := c.ReadShardPayload(0, 0, 4); !errors.Is(err, boom) {
		t.Fatalf("err %v, want %v", err, boom)
	}
	src.err = nil
	p, err := c.ReadShardPayload(0, 0, 4)
	if err != nil {
		t.Fatalf("retry after transient error: %v", err)
	}
	if !bytes.Equal(p, []byte{0, 0, 4}) {
		t.Fatalf("retry payload %v", p)
	}
	if got := src.reads.Load(); got != 2 {
		t.Fatalf("store read %d times, want 2 (error must not be cached)", got)
	}
}

// TestSharedCacheServesRealStore is the integration check: payloads
// through the cache are byte-identical to direct store reads.
func TestSharedCacheServesRealStore(t *testing.T) {
	dir := t.TempDir()
	w := model.NewRandom(model.Tiny(), 11)
	if _, err := Preprocess(dir, w, []int{2, 4}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewSharedCache(st, 1<<20)
	for pass := 0; pass < 2; pass++ {
		for l := 0; l < st.Man.Config.Layers; l++ {
			for s := 0; s < st.Man.Config.Heads; s++ {
				direct, err := st.ReadShardPayload(l, s, 4)
				if err != nil {
					t.Fatal(err)
				}
				cached, err := c.ReadShardPayload(l, s, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(direct, cached) {
					t.Fatalf("pass %d shard (%d,%d): cached payload differs from store", pass, l, s)
				}
			}
		}
	}
	stats := c.Stats()
	shards := uint64(st.Man.Config.Layers * st.Man.Config.Heads)
	if stats.FlashReads != shards || stats.RetainedHits != shards {
		t.Fatalf("stats %+v: want %d flash reads and %d retained hits", stats, shards, shards)
	}
}
