package store

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/quant"
	"sti/internal/shard"
)

func TestPayloadCodecQuantizedRoundTrip(t *testing.T) {
	w := make([]float32, 5000)
	for i := range w {
		w[i] = float32(math.Sin(float64(i))) * 0.05
	}
	blk := quant.Quantize(w, 3)
	data := EncodePayload(blk)
	p, err := DecodePayload(data)
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits != 3 || p.Count != len(w) {
		t.Fatalf("decoded %d bits %d count", p.Bits, p.Count)
	}
	want := blk.Dequantize()
	got := p.Weights()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("weight %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestPayloadCodecRawRoundTrip(t *testing.T) {
	w := []float32{1.5, -2.25, 0, 3.14159}
	p, err := DecodePayload(EncodeRawPayload(w))
	if err != nil {
		t.Fatal(err)
	}
	if p.Bits != shard.FullBits {
		t.Fatalf("bits %d", p.Bits)
	}
	got := p.Weights()
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("raw weight %d: %v vs %v", i, got[i], w[i])
		}
	}
}

func TestDecodePayloadRejectsGarbage(t *testing.T) {
	if _, err := DecodePayload([]byte{1, 2, 3}); err == nil {
		t.Fatal("expected truncation error")
	}
	if _, err := DecodePayload(make([]byte, 64)); err == nil {
		t.Fatal("expected magic error")
	}
	// Truncating a valid payload must be detected.
	valid := EncodePayload(quant.Quantize(make([]float32, 100), 2))
	if _, err := DecodePayload(valid[:len(valid)-5]); err == nil {
		t.Fatal("expected truncated packed section error")
	}
}

func buildStore(t *testing.T) (*Store, *model.Weights, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := model.Tiny()
	w := model.NewRandom(cfg, 77)
	man, err := Preprocess(dir, w, []int{2, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if man.Config != cfg {
		t.Fatalf("manifest config %+v", man.Config)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, w, dir
}

func TestPreprocessAndOpen(t *testing.T) {
	st, _, dir := buildStore(t)
	cfg := st.Man.Config
	// All layer files present: layers × (3 quantized + full).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var layerFiles int
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".bin" {
			layerFiles++
		}
	}
	if want := cfg.Layers * 4; layerFiles != want {
		t.Fatalf("layer files %d, want %d", layerFiles, want)
	}
}

func TestShardSizes(t *testing.T) {
	st, _, _ := buildStore(t)
	cfg := st.Man.Config
	s2, err := st.Man.ShardSize(0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	s6, err := st.Man.ShardSize(0, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	sf, err := st.Man.ShardSize(0, 0, shard.FullBits)
	if err != nil {
		t.Fatal(err)
	}
	if !(s2 < s6 && s6 < sf) {
		t.Fatalf("sizes not increasing: %d, %d, %d", s2, s6, sf)
	}
	if sf < 4*cfg.ShardParams() {
		t.Fatalf("full size %d below raw weight bytes", sf)
	}
	if _, err := st.Man.ShardSize(0, 0, 5); err == nil {
		t.Fatal("bitwidth 5 not stored; expected error")
	}
	if _, err := st.Man.ShardSize(99, 0, 2); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestReadShardMatchesOriginal(t *testing.T) {
	st, w, _ := buildStore(t)
	cfg := st.Man.Config
	// Full fidelity must round-trip exactly.
	p, err := st.ReadShard(1, 2, shard.FullBits)
	if err != nil {
		t.Fatal(err)
	}
	want := w.ExtractShard(1, 2).Flatten()
	got := p.Weights()
	if len(got) != cfg.ShardParams() {
		t.Fatalf("payload count %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("full shard mismatch at %d", i)
		}
	}
	// Quantized version must match an independent quantization of the
	// same flattened weights (the process is deterministic).
	p4, err := st.ReadShard(1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref := quant.Quantize(want, 4).Dequantize()
	got4 := p4.Weights()
	for i := range ref {
		if got4[i] != ref[i] {
			t.Fatalf("4-bit shard mismatch at %d", i)
		}
	}
}

func TestReadShardPayloadSizeMatchesManifest(t *testing.T) {
	st, _, _ := buildStore(t)
	for _, bits := range []int{2, 4, 6, shard.FullBits} {
		raw, err := st.ReadShardPayload(2, 1, bits)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := st.Man.ShardSize(2, 1, bits)
		if len(raw) != want {
			t.Fatalf("bits=%d payload %d bytes, manifest says %d", bits, len(raw), want)
		}
	}
}

func TestLoadResident(t *testing.T) {
	st, w, _ := buildStore(t)
	res, err := st.LoadResident()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cfg != w.Cfg {
		t.Fatalf("resident config %+v", res.Cfg)
	}
	if !res.Emb.Token.Equal(w.Emb.Token) || !res.Pooler.Equal(w.Pooler) {
		t.Fatal("resident embeddings/pooler differ")
	}
	if len(res.Layers) != w.Cfg.Layers {
		t.Fatalf("resident layers %d", len(res.Layers))
	}
	for l, lm := range res.Layers {
		for i, b := range lm.QB {
			if b != w.Layers[l].QB[i] {
				t.Fatalf("layer %d QB[%d] differs", l, i)
			}
		}
		if lm.Q != nil {
			t.Fatal("resident skeleton must not carry shard weight matrices")
		}
	}
}

func TestTotalBytesAccounting(t *testing.T) {
	st, _, _ := buildStore(t)
	q, f := st.Man.TotalBytes()
	if q <= 0 || f <= 0 {
		t.Fatalf("TotalBytes = %d, %d", q, f)
	}
	// Quantized versions {2,4,6} sum to ~12/32 of full + overhead: the
	// ratio must be well under 1.
	if float64(q)/float64(f) > 0.6 {
		t.Fatalf("quantized/full ratio %.2f unexpectedly high", float64(q)/float64(f))
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("expected error for missing store")
	}
}

func TestPreprocessRejectsFullBits(t *testing.T) {
	dir := t.TempDir()
	w := model.NewRandom(model.Tiny(), 1)
	if _, err := Preprocess(dir, w, []int{32}); err == nil {
		t.Fatal("expected error: full fidelity is always stored implicitly")
	}
}

func TestOpenCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestReadShardUnknownBits(t *testing.T) {
	st, _, _ := buildStore(t)
	if _, err := st.ReadShard(0, 0, 3); err == nil {
		t.Fatal("unstored bitwidth accepted")
	}
	if _, err := st.ReadShard(0, 99, 2); err == nil {
		t.Fatal("out-of-range slice accepted")
	}
}

func TestImportancePersistence(t *testing.T) {
	st, _, dir := buildStore(t)
	cfg := st.Man.Config
	// No profile shipped: nil, nil.
	tbl, err := st.LoadImportance()
	if err != nil || tbl != nil {
		t.Fatalf("expected absent profile, got %v %v", tbl, err)
	}
	want := importance.Synthetic("QQP", cfg.Layers, cfg.Heads)
	if err := SaveImportance(dir, want); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadImportance()
	if err != nil {
		t.Fatal(err)
	}
	for l := range want.Score {
		for s := range want.Score[l] {
			if got.Score[l][s] != want.Score[l][s] {
				t.Fatal("importance profile round trip lost data")
			}
		}
	}
	// Mismatched geometry must be rejected.
	if err := SaveImportance(dir, importance.NewTable(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadImportance(); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}
