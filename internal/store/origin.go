package store

// Read origins, as reported by ReadShardPayloadOrigin: where a shard
// payload's bytes actually came from. Execution engines stamp these on
// shard-IO trace spans so a request timeline shows which reads hit
// flash and which the cache hierarchy absorbed.
const (
	OriginFlash    = "flash"    // read from the local backing store
	OriginCache    = "cache"    // retained or coalesced SharedCache hit
	OriginPeer     = "peer"     // served by a peer node's retained copy
	OriginPrefetch = "prefetch" // speculative prefetch consumed by demand
)

// OriginReader is the optional tagged read surface: ReadShardPayload
// plus the payload's origin. Both *Store and *SharedCache implement
// it; engines type-assert their PayloadReader to record origins and
// fall back to the untagged read when the source does not support it.
type OriginReader interface {
	PayloadReader
	ReadShardPayloadOrigin(layer, slice, bits int) (payload []byte, origin string, err error)
}

var (
	_ OriginReader = (*Store)(nil)
	_ OriginReader = (*SharedCache)(nil)
)

// ReadShardPayloadOrigin implements OriginReader; a bare store always
// reads flash.
func (s *Store) ReadShardPayloadOrigin(layer, slice, bits int) ([]byte, string, error) {
	p, err := s.ReadShardPayload(layer, slice, bits)
	return p, OriginFlash, err
}
