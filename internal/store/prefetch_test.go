package store

import (
	"sync"
	"testing"
)

// TestSharedCachePrefetchEvictsBeforeDemand: prefetched entries form a
// second-class segment — a SetRetain shrink (and any other eviction)
// drains them before touching a single demand-retained payload.
func TestSharedCachePrefetchEvictsBeforeDemand(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 12) // four 3-byte payloads

	demand := func(l int) {
		t.Helper()
		if _, err := c.ReadShardPayload(l, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	prefetch := func(l int) bool {
		t.Helper()
		kept, err := c.PrefetchShardPayload(l, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		return kept
	}

	demand(0)
	demand(1)
	if !prefetch(2) || !prefetch(3) {
		t.Fatal("prefetches within budget were not kept")
	}
	st := c.Stats()
	if st.PrefetchedBytes != 6 || st.RetainedBytes != 12 {
		t.Fatalf("segments: prefetched=%d retained=%d, want 6/12", st.PrefetchedBytes, st.RetainedBytes)
	}

	// Shrink by one payload: a prefetched entry must go, never demand.
	c.SetRetain(9)
	st = c.Stats()
	if st.PrefetchedBytes != 3 {
		t.Fatalf("after shrink to 9: prefetched=%d, want 3 (one prefetch evicted)", st.PrefetchedBytes)
	}
	if st.PrefetchWasted != 1 {
		t.Fatalf("PrefetchWasted=%d, want 1", st.PrefetchWasted)
	}
	before := src.reads.Load()
	demand(0)
	demand(1)
	if src.reads.Load() != before {
		t.Fatal("demand-retained payloads were evicted while prefetched entries remained")
	}

	// Shrink below the demand residency: remaining prefetch drains
	// first, then demand LRU order applies.
	c.SetRetain(3)
	st = c.Stats()
	if st.PrefetchedBytes != 0 {
		t.Fatalf("after shrink to 3: prefetched=%d, want 0", st.PrefetchedBytes)
	}
	if st.RetainedBytes > 3 {
		t.Fatalf("RetainedBytes=%d over budget 3", st.RetainedBytes)
	}
	before = src.reads.Load()
	demand(1) // most recently used demand entry must have survived
	if src.reads.Load() != before {
		t.Fatal("MRU demand entry evicted before LRU one")
	}
}

// TestSharedCachePrefetchPromoteOnDemandHit: a demand read that lands
// on a prefetched entry counts a PrefetchHit, costs no flash read, and
// promotes the entry to the demand segment (first-class from then on).
func TestSharedCachePrefetchPromoteOnDemandHit(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 12)

	if kept, err := c.PrefetchShardPayload(5, 0, 4); err != nil || !kept {
		t.Fatalf("prefetch kept=%v err=%v", kept, err)
	}
	before := src.reads.Load()
	if _, err := c.ReadShardPayload(5, 0, 4); err != nil {
		t.Fatal(err)
	}
	if src.reads.Load() != before {
		t.Fatal("demand read of a prefetched payload hit flash")
	}
	st := c.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("PrefetchHits=%d, want 1", st.PrefetchHits)
	}
	if st.PrefetchedBytes != 0 {
		t.Fatalf("PrefetchedBytes=%d after promotion, want 0", st.PrefetchedBytes)
	}
	// Now first-class: a later prefetched entry must evict before it.
	if kept, err := c.PrefetchShardPayload(6, 0, 4); err != nil || !kept {
		t.Fatalf("prefetch kept=%v err=%v", kept, err)
	}
	c.SetRetain(3)
	before = src.reads.Load()
	if _, err := c.ReadShardPayload(5, 0, 4); err != nil {
		t.Fatal(err)
	}
	if src.reads.Load() != before {
		t.Fatal("promoted entry evicted before the prefetched one")
	}
}

// TestSharedCachePrefetchNeverDisplacesDemand: with the budget held by
// demand-retained payloads, a prefetch is refused (kept=false, counted
// wasted) rather than evicting demand state or overshooting the byte
// budget — the strict subordination the predictor relies on.
func TestSharedCachePrefetchNeverDisplacesDemand(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 6) // exactly two 3-byte payloads

	for l := 0; l < 2; l++ {
		if _, err := c.ReadShardPayload(l, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	kept, err := c.PrefetchShardPayload(2, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if kept {
		t.Fatal("prefetch claimed to be kept with the budget full of demand payloads")
	}
	st := c.Stats()
	if st.RetainedBytes > 6 {
		t.Fatalf("RetainedBytes=%d exceeds budget 6 after refused prefetch", st.RetainedBytes)
	}
	if st.PrefetchWasted == 0 {
		t.Fatal("refused prefetch not counted as wasted")
	}
	before := src.reads.Load()
	for l := 0; l < 2; l++ {
		if _, err := c.ReadShardPayload(l, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if src.reads.Load() != before {
		t.Fatal("a demand-retained payload was displaced by a prefetch")
	}

	// With retention off entirely, prefetch must not even touch flash.
	c.SetRetain(0)
	flash := src.reads.Load()
	if kept, err := c.PrefetchShardPayload(3, 0, 4); err != nil || kept {
		t.Fatalf("zero-retention prefetch kept=%v err=%v", kept, err)
	}
	if src.reads.Load() != flash {
		t.Fatal("zero-retention prefetch read flash for a payload it could never keep")
	}
}

// TestSharedCacheStatsRace hammers Stats against concurrent demand
// reads, prefetches, Drop and SetRetain — the serve-layer snapshot
// path races all of these in production (run under -race).
func TestSharedCacheStatsRace(t *testing.T) {
	src := &countingReader{}
	c := NewSharedCache(src, 64)

	const iters = 2000
	var wg sync.WaitGroup
	wg.Add(5)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			st := c.Stats()
			if st.RetainedBytes < 0 {
				t.Error("negative residency")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := c.ReadShardPayload(i%8, 0, 4); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := c.PrefetchShardPayload(i%16, 1, 4); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			c.Drop()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			c.SetRetain(int64(16 + (i%4)*16))
		}
	}()
	wg.Wait()

	st := c.Stats()
	if st.RetainedBytes > 64 {
		t.Fatalf("RetainedBytes=%d exceeded the largest budget 64", st.RetainedBytes)
	}
}
