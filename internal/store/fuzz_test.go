package store

import (
	"math/rand"
	"testing"

	"sti/internal/quant"
)

// FuzzDecodePayload ensures arbitrary bytes never panic the decoder —
// a corrupted flash block must surface as an error, not a crash.
func FuzzDecodePayload(f *testing.F) {
	w := make([]float32, 500)
	rng := rand.New(rand.NewSource(1))
	for i := range w {
		w[i] = float32(rng.NormFloat64()) * 0.05
	}
	f.Add(EncodePayload(quant.Quantize(w, 3)))
	f.Add(EncodeRawPayload(w[:16]))
	f.Add([]byte{})
	f.Add([]byte{0x50, 0x49, 0x54, 0x53})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return
		}
		// A successfully decoded payload must be internally consistent.
		got := p.Weights()
		if len(got) != p.Count {
			t.Fatalf("decoded %d weights, header says %d", len(got), p.Count)
		}
	})
}

func TestDecodeDetectsBitflips(t *testing.T) {
	w := make([]float32, 2000)
	rng := rand.New(rand.NewSource(2))
	for i := range w {
		w[i] = float32(rng.NormFloat64()) * 0.02
	}
	valid := EncodePayload(quant.Quantize(w, 4))
	if _, err := DecodePayload(valid); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	// Flip one bit anywhere: the checksum must catch it.
	for _, pos := range []int{0, 10, len(valid) / 2, len(valid) - 5} {
		corrupted := append([]byte(nil), valid...)
		corrupted[pos] ^= 0x40
		if _, err := DecodePayload(corrupted); err == nil {
			t.Fatalf("bit flip at %d not detected", pos)
		}
	}
}
