// Package device models the edge hardware STI runs on: the compute
// throughput of a mobile CPU/GPU executing transformer layers, and the
// flash storage bandwidth available for streaming model shards.
//
// The paper evaluates on an Odroid-N2+ (hexa-core ARM CPU) and a Jetson
// Nano (Maxwell GPU), Table 2. We have neither; per the substitution
// rule we replace the physical boards with analytic delay models
// calibrated against every measurement the paper publishes (§2.2, §7.1,
// Table 5 captions):
//
//   - DistilBERT layer on the ARM board: 339 ms parameter IO vs 95 ms
//     compute, whole-model load ≈ 2.1 s for 170 MB of parameters.
//   - Jetson end-to-end DistilBERT: 3.36 s total, 3.0 s IO ⇒ ≈ 60 ms
//     compute per layer.
//   - GPU non-proportionality: a 12-shard layer is only ~0.7% slower
//     than a 3-shard layer (§7.3) because the GPU pays a fixed cost per
//     kernel launch regardless of width.
//
// STI itself records delays offline and replays them at planning time
// (§5.2, the delays are data-independent and deterministic), so an
// analytic replay exercises exactly the same planner and pipeline code
// paths that measured delays would.
package device

import (
	"fmt"
	"math"
	"time"
)

// Kind distinguishes the compute-unit families the paper evaluates.
type Kind int

const (
	CPU Kind = iota
	GPU
)

func (k Kind) String() string {
	if k == GPU {
		return "GPU"
	}
	return "CPU"
}

// Freq is a DVFS operating point, expressed as a fraction of peak
// compute throughput in (0, 1].
type Freq float64

// Profile describes one platform: its compute delay model, flash IO
// model, and memory budget. All delay model parameters are exported so
// experiments can build ablated variants.
type Profile struct {
	Name string
	Kind Kind

	// Compute: executing one transformer layer of m shards on an input
	// of RefSeqLen tokens at peak frequency costs
	// ComputeFixed + ComputeIncr·m^WidthExp. CPUs scale slightly
	// superlinearly with width (wider weight matrices fall out of
	// cache, the effect DynaBERT exploits when narrowing models);
	// GPUs are dominated by the fixed term (kernel launch + poor
	// occupancy on single-example inference, §7.3).
	ComputeFixed time.Duration // per-layer fixed cost
	ComputeIncr  time.Duration // cost per shard (at m=1)
	WidthExp     float64       // exponent on m for the incremental term

	// SeqLinear/SeqQuad split layer compute between the parts that scale
	// linearly with sequence length (all the matmuls against weights)
	// and quadratically (attention score/value products). They must sum
	// to 1; at RefSeqLen the model reproduces ComputeFixed+Incr·m.
	RefSeqLen int
	SeqLinear float64
	SeqQuad   float64

	// Decompress is the per-shard dictionary-substitution cost. The
	// paper measures <1 ms per shard and conservatively charges the
	// 6-bit cost regardless of actual bitwidth (§5.2); we do the same.
	Decompress time.Duration

	// IO: streaming from flash at Bandwidth with a fixed per-IO-job
	// overhead (issue + seek). STI issues one IO job per layer (§3.1).
	Bandwidth   float64       // bytes per second
	IOOverhead  time.Duration // per IO job
	MemoryBytes int64         // total device memory (Table 2: 4 GB)

	// Freqs lists the DVFS operating points available, peak last.
	Freqs []Freq
}

// Odroid returns the calibrated Odroid-N2+ CPU profile.
// Tcomp(12 shards) = 2 + 7.75·12 = 95 ms — the paper's measured
// DistilBERT layer compute; flash at 83.5 MB/s makes a 28.3 MB layer
// take 339 ms — the paper's measured layer IO.
func Odroid() *Profile {
	return &Profile{
		Name: "Odroid-N2+", Kind: CPU,
		ComputeFixed: 500 * time.Microsecond,
		ComputeIncr:  5330 * time.Microsecond,
		WidthExp:     1.15,
		RefSeqLen:    128, SeqLinear: 0.7, SeqQuad: 0.3,
		Decompress:  300 * time.Microsecond,
		Bandwidth:   83.5e6,
		IOOverhead:  2 * time.Millisecond,
		MemoryBytes: 4 << 30,
		Freqs:       []Freq{0.5, 0.75, 1.0},
	}
}

// Jetson returns the calibrated Jetson Nano GPU profile.
// Tcomp ≈ 59.5 + 0.035·m ms: 6 layers ≈ 0.36 s (= 3.36 s total − 3.0 s
// IO), and a 12-shard layer is ~0.5% slower than a 3-shard layer,
// reproducing the GPU's lack of width proportionality (§7.3).
func Jetson() *Profile {
	return &Profile{
		Name: "Jetson Nano", Kind: GPU,
		ComputeFixed: 59500 * time.Microsecond,
		ComputeIncr:  35 * time.Microsecond,
		WidthExp:     1.0,
		RefSeqLen:    128, SeqLinear: 0.7, SeqQuad: 0.3,
		Decompress:  150 * time.Microsecond,
		Bandwidth:   80e6,
		IOOverhead:  2 * time.Millisecond,
		MemoryBytes: 4 << 30,
		Freqs:       []Freq{0.5, 0.75, 1.0},
	}
}

// Platforms returns the two evaluation platforms of Table 2.
func Platforms() []*Profile { return []*Profile{Odroid(), Jetson()} }

// TComp returns the delay of computing one transformer layer of m
// shards on an input of seqLen tokens at the given frequency, including
// the per-shard decompression charge. This mirrors the paper's profiled
// Tcomp(l, m, freq) (§5.2).
func (p *Profile) TComp(seqLen, m int, freq Freq) time.Duration {
	if m <= 0 {
		return 0
	}
	if freq <= 0 || freq > 1 {
		panic(fmt.Sprintf("device: frequency %v outside (0,1]", freq))
	}
	exp := p.WidthExp
	if exp == 0 {
		exp = 1
	}
	base := p.ComputeFixed + time.Duration(float64(p.ComputeIncr)*math.Pow(float64(m), exp))
	r := float64(seqLen) / float64(p.RefSeqLen)
	scaled := float64(base) * (p.SeqLinear*r + p.SeqQuad*r*r)
	d := time.Duration(scaled/float64(freq)) + time.Duration(m)*p.Decompress
	return d
}

// TIO returns the delay of loading one IO job of the given size from
// flash: bandwidth-limited transfer plus fixed issue overhead.
func (p *Profile) TIO(sizeBytes int) time.Duration {
	if sizeBytes <= 0 {
		return 0
	}
	return p.IOOverhead + time.Duration(float64(sizeBytes)/p.Bandwidth*float64(time.Second))
}

// PeakFreq returns the highest DVFS operating point. The paper plans at
// peak frequency because the SoC runs at peak during active inference
// (§5.3).
func (p *Profile) PeakFreq() Freq {
	if len(p.Freqs) == 0 {
		return 1.0
	}
	return p.Freqs[len(p.Freqs)-1]
}
