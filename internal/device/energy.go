package device

import "time"

// Energy model (§7.2 "Storage & energy overhead"). The paper argues
// qualitatively: (1) the dominant consumer is active compute, so
// similar accuracies (≈ similar FLOPs) mean similar energy; (2) STI's
// added IO contributes marginally because the SoC is already in a high
// power state during inference. We model exactly those three terms:
// a baseline SoC-active power over the whole inference, plus
// incremental compute and IO power while each unit is busy.
//
// Power figures are representative published measurements for the two
// boards (Odroid-N2+ ≈ 1.9 W idle-active / +3.2 W CPU load; Jetson
// Nano 5–10 W envelope), not paper numbers — the paper reports no
// absolute energy, only the ordering, which is what the experiment
// checks.

// PowerModel holds the platform's power draw per activity.
type PowerModel struct {
	SoCActiveW float64 // whole-SoC power while an inference is in flight
	ComputeW   float64 // additional power while CPU/GPU computes
	IOW        float64 // additional power while flash streams
}

// Power returns the platform's power model.
func (p *Profile) Power() PowerModel {
	if p.Kind == GPU {
		return PowerModel{SoCActiveW: 2.5, ComputeW: 5.5, IOW: 1.0}
	}
	return PowerModel{SoCActiveW: 1.9, ComputeW: 3.2, IOW: 1.2}
}

// EnergyJ returns the energy (joules) of one inference given its total
// latency and the busy times of compute and IO.
func (pm PowerModel) EnergyJ(total, computeBusy, ioBusy time.Duration) float64 {
	return pm.SoCActiveW*total.Seconds() +
		pm.ComputeW*computeBusy.Seconds() +
		pm.IOW*ioBusy.Seconds()
}
