package device

import (
	"testing"
	"time"
)

// distilBERTLayerBytes is the parameter size of one BERT/DistilBERT
// layer: 7.08M float32 weights ≈ 28.3 MB.
const distilBERTLayerBytes = 7077888 * 4

func TestOdroidCalibrationMatchesPaper(t *testing.T) {
	p := Odroid()
	// §2.2: a DistilBERT layer needs 339 ms for parameter load...
	io := p.TIO(distilBERTLayerBytes)
	if io < 330*time.Millisecond || io > 350*time.Millisecond {
		t.Fatalf("layer IO = %v, paper measured 339 ms", io)
	}
	// ...and 95 ms to compute (12 heads, l=128, peak freq). Allow the
	// small decompression charge on top.
	comp := p.TComp(128, 12, 1.0)
	if comp < 90*time.Millisecond || comp > 105*time.Millisecond {
		t.Fatalf("layer compute = %v, paper measured 95 ms", comp)
	}
	// §1: loading DistilBERT's 170 MB of parameters takes ≈2.1 s.
	load := p.TIO(170e6)
	if load < 1900*time.Millisecond || load > 2200*time.Millisecond {
		t.Fatalf("whole-model load = %v, paper measured ≈2.1 s", load)
	}
}

func TestJetsonCalibrationMatchesPaper(t *testing.T) {
	p := Jetson()
	// Table 5 caption: DistilBERT on Jetson: 3.36 s total, IO = 3.0 s,
	// so compute ≈ 0.36 s over 6 layers ⇒ ≈ 60 ms/layer.
	comp := p.TComp(128, 12, 1.0)
	if comp < 55*time.Millisecond || comp > 66*time.Millisecond {
		t.Fatalf("Jetson layer compute = %v, want ≈60 ms", comp)
	}
	// §7.3: executing a layer of 12 shards is only ≈0.7% longer than a
	// layer of 3 shards (GPU non-proportionality). Compare raw kernel
	// time without the per-shard decompression charge.
	noDecomp := *p
	noDecomp.Decompress = 0
	w12 := noDecomp.TComp(128, 12, 1.0)
	w3 := noDecomp.TComp(128, 3, 1.0)
	ratio := float64(w12)/float64(w3) - 1
	if ratio <= 0 || ratio > 0.01 {
		t.Fatalf("GPU width penalty = %.4f, want (0, 0.01]", ratio)
	}
}

func TestCPUProportionalGPUNot(t *testing.T) {
	cpu, gpu := Odroid(), Jetson()
	cpuRatio := float64(cpu.TComp(128, 12, 1.0)) / float64(cpu.TComp(128, 3, 1.0))
	gpuRatio := float64(gpu.TComp(128, 12, 1.0)) / float64(gpu.TComp(128, 3, 1.0))
	if cpuRatio < 3 {
		t.Fatalf("CPU should scale near-linearly with width, got ratio %.2f", cpuRatio)
	}
	if gpuRatio > 1.1 {
		t.Fatalf("GPU should barely scale with width, got ratio %.2f", gpuRatio)
	}
}

func TestTCompScalesWithFrequency(t *testing.T) {
	p := Odroid()
	peak := p.TComp(128, 6, 1.0)
	half := p.TComp(128, 6, 0.5)
	// Kernel time doubles; decompression (CPU-side memcpy) is charged
	// flat, so the ratio is slightly under 2.
	if r := float64(half) / float64(peak); r < 1.8 || r > 2.05 {
		t.Fatalf("half-frequency ratio %.2f, want ≈2", r)
	}
}

func TestTCompScalesWithSequenceLength(t *testing.T) {
	p := Odroid()
	short := p.TComp(64, 12, 1.0)
	ref := p.TComp(128, 12, 1.0)
	long := p.TComp(256, 12, 1.0)
	if !(short < ref && ref < long) {
		t.Fatalf("sequence scaling broken: %v, %v, %v", short, ref, long)
	}
	// Quadratic attention term: doubling l more than doubles cost.
	if float64(long) < 2*float64(ref)*0.95 {
		t.Fatalf("long sequence %v not ≥ ~2× reference %v", long, ref)
	}
}

func TestTCompMonotoneInShards(t *testing.T) {
	for _, p := range Platforms() {
		prev := time.Duration(0)
		for m := 1; m <= 12; m++ {
			d := p.TComp(128, m, 1.0)
			if d <= prev {
				t.Fatalf("%s: TComp not strictly increasing at m=%d", p.Name, m)
			}
			prev = d
		}
	}
}

func TestTCompZeroShards(t *testing.T) {
	if d := Odroid().TComp(128, 0, 1.0); d != 0 {
		t.Fatalf("zero-shard layer cost %v", d)
	}
}

func TestTCompBadFreqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Odroid().TComp(128, 1, 1.5)
}

func TestTIO(t *testing.T) {
	p := Odroid()
	if p.TIO(0) != 0 {
		t.Fatal("zero-size IO must cost nothing")
	}
	small := p.TIO(1)
	if small < p.IOOverhead {
		t.Fatal("IO must include fixed overhead")
	}
	// Doubling size roughly doubles transfer time (minus overhead).
	a := p.TIO(10e6) - p.IOOverhead
	b := p.TIO(20e6) - p.IOOverhead
	if r := float64(b) / float64(a); r < 1.99 || r > 2.01 {
		t.Fatalf("bandwidth not linear: ratio %.3f", r)
	}
}

func TestPeakFreq(t *testing.T) {
	if Odroid().PeakFreq() != 1.0 {
		t.Fatalf("peak freq %v", Odroid().PeakFreq())
	}
	empty := &Profile{}
	if empty.PeakFreq() != 1.0 {
		t.Fatal("default peak freq must be 1.0")
	}
}

func TestPlatformsTable2(t *testing.T) {
	ps := Platforms()
	if len(ps) != 2 {
		t.Fatalf("want 2 platforms, got %d", len(ps))
	}
	if ps[0].Kind != CPU || ps[1].Kind != GPU {
		t.Fatal("platform kinds do not match Table 2 (CPU benchmarked on Odroid, GPU on Jetson)")
	}
	for _, p := range ps {
		if p.MemoryBytes != 4<<30 {
			t.Fatalf("%s memory %d, Table 2 says 4 GB", p.Name, p.MemoryBytes)
		}
	}
}

func TestEnergyModelOrdering(t *testing.T) {
	// §7.2's qualitative claims: with equal latency, more busy time
	// means more energy; IO adds less than compute.
	pm := Odroid().Power()
	total := 200 * time.Millisecond
	idle := pm.EnergyJ(total, 0, 0)
	busyIO := pm.EnergyJ(total, 0, total)
	busyComp := pm.EnergyJ(total, total, 0)
	both := pm.EnergyJ(total, total, total)
	if !(idle < busyIO && busyIO < busyComp && busyComp < both) {
		t.Fatalf("energy ordering broken: %v %v %v %v", idle, busyIO, busyComp, both)
	}
	// Compute must dominate IO in incremental power (the paper's
	// "major energy consumer is active compute").
	if pm.ComputeW <= pm.IOW {
		t.Fatal("compute power must exceed IO power")
	}
	if Jetson().Power().ComputeW <= 0 {
		t.Fatal("GPU power model degenerate")
	}
}
