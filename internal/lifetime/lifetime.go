// Package lifetime simulates a day of bursty user engagements against
// the mobile OS's memory management — the setting that motivates STI
// (§1, §2.1–2.2): engagements are impromptu and comprise 1–3 model
// executions [9]; between engagements the OS's low-memory killer
// reclaims apps roughly in proportion to their memory footprint [6,30],
// so a hundreds-of-MB in-memory model "likely benefits no more than 2
// executions before its large memory is reclaimed".
//
// The simulation compares execution methods end to end over the same
// engagement trace: how often the app survives in the background, what
// latency the user sees on each turn, and how many bytes stream from
// flash.
package lifetime

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Engagement is one user session: a gap since the previous session and
// a few back-to-back executions.
type Engagement struct {
	Gap   time.Duration // background time before this engagement
	Turns int           // model executions in this engagement (1–3)
}

// Workload is a day-scale engagement trace.
type Workload struct {
	Engagements []Engagement
}

// GenerateWorkload draws a deterministic bursty trace: exponential
// inter-engagement gaps (mean meanGap) and 1–3 turns per engagement,
// matching the usage statistics the paper cites [9, 10].
func GenerateWorkload(n int, meanGap time.Duration, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{}
	for i := 0; i < n; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(meanGap))
		w.Engagements = append(w.Engagements, Engagement{
			Gap:   gap,
			Turns: 1 + rng.Intn(3),
		})
	}
	return w
}

// OSModel is the low-memory-killer abstraction: during a background
// gap, an app holding memBytes is reclaimed with probability
// 1 − exp(−gapMinutes·memMB/Kappa). Larger footprints and longer gaps
// make the app a likelier victim, the qualitative behaviour of
// Android's lmkd the paper describes.
type OSModel struct {
	Kappa float64 // MB·minutes scale; smaller = more aggressive
}

// DefaultOS returns a killer calibrated so a ~100 MB app backgrounded
// for tens of minutes is at serious risk (the paper notes app
// footprints are "often less than 100 MB" and big apps are prime
// victims).
func DefaultOS() OSModel { return OSModel{Kappa: 3000} }

// KillProbability returns the chance the app is reclaimed during a gap.
func (o OSModel) KillProbability(memBytes int64, gap time.Duration) float64 {
	memMB := float64(memBytes) / (1 << 20)
	return 1 - math.Exp(-gap.Minutes()*memMB/o.Kappa)
}

// App describes one execution method's lifetime profile.
type App struct {
	Name string
	// ResidentBytes is the parameter memory held between engagements
	// (the whole model for hold-in-memory, the preload buffer for STI,
	// ~0 for load-on-demand).
	ResidentBytes int64
	// ColdLatency is the first-turn latency when nothing is resident
	// (model load or cold pipeline).
	ColdLatency time.Duration
	// WarmLatency is the per-turn latency when the resident state
	// survived (or after the first turn of an engagement).
	WarmLatency time.Duration
	// ColdBytes / WarmBytes are flash bytes streamed per cold / warm
	// execution.
	ColdBytes, WarmBytes int64
}

// Stats summarizes one simulated trace.
type Stats struct {
	App         string
	Engagements int
	Turns       int
	Kills       int           // background reclaims
	ColdStarts  int           // executions paying ColdLatency
	MeanFirst   time.Duration // mean first-turn latency per engagement
	WorstFirst  time.Duration
	TotalIO     int64 // bytes streamed over the whole trace
}

func (s Stats) String() string {
	return fmt.Sprintf("%-16s kills=%3d coldstarts=%3d meanFirstTurn=%8v worst=%8v totalIO=%dMB",
		s.App, s.Kills, s.ColdStarts, s.MeanFirst.Round(time.Millisecond),
		s.WorstFirst.Round(time.Millisecond), s.TotalIO>>20)
}

// Simulate runs the workload for one app configuration under the OS
// model. Deterministic for a given seed.
func Simulate(app App, w *Workload, os OSModel, seed int64) Stats {
	rng := rand.New(rand.NewSource(seed))
	stats := Stats{App: app.Name, Engagements: len(w.Engagements)}
	resident := false // whether the app's model state survived so far
	var firstSum time.Duration
	for _, e := range w.Engagements {
		if resident && rng.Float64() < os.KillProbability(app.ResidentBytes, e.Gap) {
			resident = false
			stats.Kills++
		}
		for turn := 0; turn < e.Turns; turn++ {
			stats.Turns++
			cold := !resident && turn == 0
			if cold {
				stats.ColdStarts++
				if turn == 0 {
					firstSum += app.ColdLatency
					if app.ColdLatency > stats.WorstFirst {
						stats.WorstFirst = app.ColdLatency
					}
				}
				stats.TotalIO += app.ColdBytes
				resident = app.ResidentBytes > 0
				continue
			}
			if turn == 0 {
				firstSum += app.WarmLatency
				if app.WarmLatency > stats.WorstFirst {
					stats.WorstFirst = app.WarmLatency
				}
			}
			stats.TotalIO += app.WarmBytes
		}
	}
	if stats.Engagements > 0 {
		stats.MeanFirst = firstSum / time.Duration(stats.Engagements)
	}
	return stats
}
