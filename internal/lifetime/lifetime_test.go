package lifetime

import (
	"testing"
	"time"
)

func TestGenerateWorkloadDeterministicAndShaped(t *testing.T) {
	a := GenerateWorkload(100, 30*time.Minute, 1)
	b := GenerateWorkload(100, 30*time.Minute, 1)
	if len(a.Engagements) != 100 {
		t.Fatalf("%d engagements", len(a.Engagements))
	}
	var gapSum time.Duration
	for i, e := range a.Engagements {
		if e != b.Engagements[i] {
			t.Fatal("workload not deterministic")
		}
		if e.Turns < 1 || e.Turns > 3 {
			t.Fatalf("turns %d outside 1-3 (paper [9])", e.Turns)
		}
		gapSum += e.Gap
	}
	mean := gapSum / 100
	if mean < 15*time.Minute || mean > 60*time.Minute {
		t.Fatalf("mean gap %v implausible for mean 30m", mean)
	}
}

func TestKillProbabilityShape(t *testing.T) {
	os := DefaultOS()
	big := os.KillProbability(324<<20, 30*time.Minute)
	small := os.KillProbability(1<<20, 30*time.Minute)
	if big < 0.9 {
		t.Fatalf("a 324MB app backgrounded 30m should very likely die, p=%v", big)
	}
	if small > 0.05 {
		t.Fatalf("a 1MB buffer should survive, p=%v", small)
	}
	if os.KillProbability(100<<20, 0) != 0 {
		t.Fatal("zero gap must never kill")
	}
	longer := os.KillProbability(100<<20, time.Hour)
	shorter := os.KillProbability(100<<20, time.Minute)
	if longer <= shorter {
		t.Fatal("kill probability must grow with gap")
	}
}

func testApps() (hold, std, sti App) {
	hold = App{Name: "HoldInMemory", ResidentBytes: 324 << 20,
		ColdLatency: 2600 * time.Millisecond, WarmLatency: 95 * time.Millisecond,
		ColdBytes: 324 << 20, WarmBytes: 0}
	std = App{Name: "StdPipeline", ResidentBytes: 0,
		ColdLatency: 370 * time.Millisecond, WarmLatency: 370 * time.Millisecond,
		ColdBytes: 28 << 20, WarmBytes: 28 << 20}
	sti = App{Name: "STI", ResidentBytes: 1 << 20,
		ColdLatency: 195 * time.Millisecond, WarmLatency: 185 * time.Millisecond,
		ColdBytes: 12 << 20, WarmBytes: 11 << 20}
	return
}

func TestSimulateReproducesMotivation(t *testing.T) {
	// §1/§2.2: hold-in-memory rarely survives between engagements (a
	// lingering model benefits ≲2 executions); STI's MB-scale buffer
	// survives almost always and keeps first-turn latency at ≈T.
	w := GenerateWorkload(300, 30*time.Minute, 7)
	hold, std, sti := testApps()
	os := DefaultOS()
	hs := Simulate(hold, w, os, 1)
	ss := Simulate(std, w, os, 1)
	ts := Simulate(sti, w, os, 1)

	if hs.Kills < 200 {
		t.Fatalf("hold-in-memory killed only %d/300 times; should be the usual victim", hs.Kills)
	}
	if ts.Kills > 30 {
		t.Fatalf("STI killed %d times; a 1MB buffer should survive", ts.Kills)
	}
	if hs.MeanFirst < 4*ts.MeanFirst {
		t.Fatalf("hold-in-memory mean first-turn %v should dwarf STI's %v (cold reloads)",
			hs.MeanFirst, ts.MeanFirst)
	}
	if ss.MeanFirst < ts.MeanFirst {
		t.Fatalf("standard pipeline %v should be slower than STI %v", ss.MeanFirst, ts.MeanFirst)
	}
	if ts.WorstFirst > 250*time.Millisecond {
		t.Fatalf("STI worst first-turn %v exceeds user tolerance", ts.WorstFirst)
	}
}

func TestSimulateCountsTurnsAndIO(t *testing.T) {
	w := &Workload{Engagements: []Engagement{
		{Gap: 0, Turns: 2},
		{Gap: time.Hour, Turns: 1},
	}}
	_, std, _ := testApps()
	s := Simulate(std, w, DefaultOS(), 2)
	if s.Turns != 3 {
		t.Fatalf("turns %d", s.Turns)
	}
	// Stateless pipeline: every execution streams its bytes (cold and
	// warm volumes are identical for it).
	if s.TotalIO != 3*std.ColdBytes {
		t.Fatalf("total IO %d", s.TotalIO)
	}
	// The first turn of each engagement is a cold start; later turns of
	// the same engagement count as back-to-back (warm path).
	if s.ColdStarts != 2 {
		t.Fatalf("cold starts %d, want one per engagement", s.ColdStarts)
	}
}

func TestSimulateDeterministicPerSeed(t *testing.T) {
	w := GenerateWorkload(50, 10*time.Minute, 3)
	hold, _, _ := testApps()
	a := Simulate(hold, w, DefaultOS(), 9)
	b := Simulate(hold, w, DefaultOS(), 9)
	if a != b {
		t.Fatal("simulation not deterministic")
	}
}
