package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"sti/internal/obs"
	"sti/internal/pipeline"
)

// TestSnapshotRaceHammer storms one model's completion/tier/executed
// recorders from many goroutines while Snapshot runs concurrently —
// the percentile sort must run on a private copy outside the stats
// lock, and every instrument read must be race-free (CI runs this
// under -race). A tiny window forces constant ring wraps.
func TestSnapshotRaceHammer(t *testing.T) {
	b := &stubBackend{targets: map[string]time.Duration{"m": 50 * time.Millisecond}}
	s := New(b, Options{QueueDepth: 256, Workers: 4, Slack: 1000, Window: 8, Obs: obs.NewHub(4)})
	defer s.Close()

	const submitters = 8
	const perSubmitter = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot storm: hammer the read path for the whole duration of
	// the completion storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := s.Snapshot()
			for _, ms := range st.Models {
				if ms.P50 > ms.Max {
					t.Errorf("p50 %v above max %v", ms.P50, ms.Max)
					return
				}
			}
		}
	}()

	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSubmitter; i++ {
				_, err := s.Submit(context.Background(), "m", pipeline.Request{
					Task: pipeline.TaskClassify, Tokens: []int{1, 2, 3},
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let submitters finish first, then release the snapshot goroutine.
	deadline := time.After(30 * time.Second)
	for {
		st := s.Snapshot()
		if st.Completed+st.Failed+st.Shed+st.DeadlineMiss >= submitters*perSubmitter {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("storm never completed: %+v", st)
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done

	st := s.Snapshot()
	if st.Completed != submitters*perSubmitter {
		t.Fatalf("completed %d, want %d", st.Completed, submitters*perSubmitter)
	}
	if len(st.Models) != 1 || st.Models[0].P50 <= 0 || st.Models[0].Max < st.Models[0].P95 {
		t.Fatalf("percentiles inconsistent: %+v", st.Models[0])
	}
}

// TestModelStatsConcurrentRecorders hammers every modelStats recorder
// against snapshot() directly (no scheduler), pinning the lock
// discipline of the raw instrument set.
func TestModelStatsConcurrentRecorders(t *testing.T) {
	m := newModelStats("m", 16, obs.NewRegistry())
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				m.snapshot()
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.completed(time.Duration(i) * time.Microsecond)
				m.queued(time.Duration(i))
				m.executed(2, 100)
				m.generated(3)
				m.servedTier(&pipeline.TierInfo{Target: 100 * time.Millisecond, CacheHit: i%2 == 0, Downgraded: i%3 == 0})
				m.shed()
				m.deadlineMiss()
				m.failed()
			}
		}(g)
	}
	go func() {
		// Recorders finish, then the snapshot loop stops.
		time.Sleep(50 * time.Millisecond)
	}()
	wgDone := make(chan struct{})
	go func() {
		defer close(wgDone)
		wg.Wait()
	}()
	// Stop the snapshot loop once recorders are done (detected by the
	// counters reaching their totals).
	deadline := time.After(30 * time.Second)
	for m.nCompleted.Value() < 2000 {
		select {
		case <-deadline:
			t.Fatal("recorders never finished")
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-wgDone

	ms := m.snapshot()
	if ms.Completed != 2000 || ms.Shed != 2000 || ms.Failed != 2000 {
		t.Fatalf("counters %+v", ms)
	}
	if ms.ServedByTier["100ms"] != 2000 {
		t.Fatalf("tier counts %v", ms.ServedByTier)
	}
}
