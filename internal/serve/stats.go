package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ModelStats is one model's serving counters and latency distribution
// at snapshot time. Latency percentiles cover the last Options.Window
// completed requests, measured admission → completion.
type ModelStats struct {
	Model        string        `json:"model"`
	Completed    uint64        `json:"completed"`
	Failed       uint64        `json:"failed"`
	Shed         uint64        `json:"shed"`
	DeadlineMiss uint64        `json:"deadline_miss"`
	QueueDepth   int           `json:"queue_depth"`
	P50          time.Duration `json:"p50_ns"`
	P95          time.Duration `json:"p95_ns"`
	Max          time.Duration `json:"max_ns"`
}

// Stats is a point-in-time snapshot of the whole scheduler. Each
// aggregate counter is exactly the sum of the same field across
// Models: Shed counts admission-queue rejections only; deadline
// expiries are under DeadlineMiss.
type Stats struct {
	Uptime       time.Duration `json:"uptime_ns"`
	Throughput   float64       `json:"throughput_rps"` // completed requests/sec since start
	Completed    uint64        `json:"completed"`
	Failed       uint64        `json:"failed"`
	Shed         uint64        `json:"shed"`
	DeadlineMiss uint64        `json:"deadline_miss"`
	Models       []ModelStats  `json:"models"`
}

type modelStats struct {
	model string

	nCompleted   atomic.Uint64
	nFailed      atomic.Uint64
	nShed        atomic.Uint64
	nDeadline    atomic.Uint64
	maxLatencyNS atomic.Int64

	mu      sync.Mutex
	window  []time.Duration // ring buffer of recent total latencies
	next    int
	wrapped bool
}

func newModelStats(model string, window int) *modelStats {
	return &modelStats{model: model, window: make([]time.Duration, window)}
}

func (m *modelStats) completed(total time.Duration) {
	m.nCompleted.Add(1)
	for {
		old := m.maxLatencyNS.Load()
		if int64(total) <= old || m.maxLatencyNS.CompareAndSwap(old, int64(total)) {
			break
		}
	}
	m.mu.Lock()
	m.window[m.next] = total
	m.next++
	if m.next == len(m.window) {
		m.next, m.wrapped = 0, true
	}
	m.mu.Unlock()
}

func (m *modelStats) failed() { m.nFailed.Add(1) }

func (m *modelStats) shed()         { m.nShed.Add(1) }
func (m *modelStats) deadlineMiss() { m.nDeadline.Add(1) }

func (m *modelStats) snapshot() ModelStats {
	m.mu.Lock()
	n := m.next
	if m.wrapped {
		n = len(m.window)
	}
	lat := append([]time.Duration(nil), m.window[:n]...)
	m.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return ModelStats{
		Model:        m.model,
		Completed:    m.nCompleted.Load(),
		Failed:       m.nFailed.Load(),
		Shed:         m.nShed.Load(),
		DeadlineMiss: m.nDeadline.Load(),
		P50:          percentile(lat, 0.50),
		P95:          percentile(lat, 0.95),
		Max:          time.Duration(m.maxLatencyNS.Load()),
	}
}

// percentile reads the p-th quantile from an ascending-sorted slice
// using the nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Snapshot reports current serving metrics across all models that have
// received at least one request.
func (s *Scheduler) Snapshot() Stats {
	s.mu.Lock()
	queues := make([]*modelQueue, 0, len(s.queues))
	for _, q := range s.queues {
		queues = append(queues, q)
	}
	s.mu.Unlock()

	st := Stats{Uptime: time.Since(s.start)}
	for _, q := range queues {
		ms := q.stats.snapshot()
		ms.QueueDepth = len(q.jobs)
		st.Completed += ms.Completed
		st.Failed += ms.Failed
		st.Shed += ms.Shed
		st.DeadlineMiss += ms.DeadlineMiss
		st.Models = append(st.Models, ms)
	}
	sort.Slice(st.Models, func(i, j int) bool { return st.Models[i].Model < st.Models[j].Model })
	if sec := st.Uptime.Seconds(); sec > 0 {
		st.Throughput = float64(st.Completed) / sec
	}
	return st
}
