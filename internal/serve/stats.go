package serve

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sti/internal/obs"
	"sti/internal/pipeline"
	"sti/internal/predict"
)

// ModelStats is one model's serving counters and latency distribution
// at snapshot time. Latency percentiles cover the last Options.Window
// completed requests, measured admission → completion.
//
// Batches counts backend executions (a batch of size 1 is one
// execution); AvgBatch = Completed/Batches is the amortization factor.
// BytesRead sums every execution stream's flash IO, so BytesPerRequest
// = BytesRead/Completed shows the per-request IO shrinking as batches
// grow.
type ModelStats struct {
	Model           string        `json:"model"`
	Completed       uint64        `json:"completed"`
	Failed          uint64        `json:"failed"`
	Shed            uint64        `json:"shed"`
	DeadlineMiss    uint64        `json:"deadline_miss"`
	QueueDepth      int           `json:"queue_depth"`
	Batches         uint64        `json:"batches"`
	AvgBatch        float64       `json:"avg_batch"`
	MaxBatch        int           `json:"max_batch"`
	BytesRead       int64         `json:"bytes_read"`
	BytesPerRequest float64       `json:"bytes_per_request"`
	GeneratedTokens uint64        `json:"generated_tokens"`
	P50             time.Duration `json:"p50_ns"`
	P95             time.Duration `json:"p95_ns"`
	Max             time.Duration `json:"max_ns"`

	// PlanCacheHits/Misses count served requests by how their SLO
	// resolved: a hit rode an already-cached plan tier, a miss planned
	// (and warmed) a new tier on demand.
	PlanCacheHits   uint64 `json:"plan_cache_hits"`
	PlanCacheMisses uint64 `json:"plan_cache_misses"`
	// Downgraded counts requests congestion demoted to a coarser plan
	// tier instead of shedding (best-effort past the high-water mark,
	// or over-deadline jobs at dequeue).
	Downgraded uint64 `json:"downgraded"`
	// ServedByTier counts completed requests per plan-tier target
	// (key: the tier's latency target, e.g. "200ms").
	ServedByTier map[string]uint64 `json:"served_by_tier,omitempty"`

	// Replicas is the model's live replica count and ReplicaServed the
	// completed-request counter of each replica (pool order), when the
	// backend serves the model from an elastic replica pool.
	Replicas      int      `json:"replicas,omitempty"`
	ReplicaServed []uint64 `json:"replica_served,omitempty"`
	// ScaleUps/ScaleDowns count the pool's elastic scaling actions.
	ScaleUps   uint64 `json:"scale_ups,omitempty"`
	ScaleDowns uint64 `json:"scale_downs,omitempty"`
	// SingleflightHits counts shard reads the model's shared payload
	// cache absorbed (coalesced onto an in-flight read or served from
	// retained payloads) instead of re-reading flash; FlashReads is
	// what actually hit flash, and SingleflightBytesSaved the IO the
	// dedup avoided.
	SingleflightHits       uint64 `json:"singleflight_hits"`
	FlashReads             uint64 `json:"flash_reads,omitempty"`
	SingleflightBytesSaved int64  `json:"singleflight_bytes_saved,omitempty"`
	// PrefetchHits counts demand reads the predictive prefetcher had
	// already staged in the shared cache's second-class segment;
	// PrefetchWasted counts prefetched payloads evicted (or rejected)
	// without ever serving a demand read, and PrefetchedBytes is the
	// segment's current residency.
	PrefetchHits    uint64 `json:"prefetch_hits,omitempty"`
	PrefetchWasted  uint64 `json:"prefetch_wasted,omitempty"`
	PrefetchedBytes int64  `json:"prefetched_bytes,omitempty"`
	// PeerHits counts demand misses a cluster peer's retained copy
	// satisfied instead of local flash (PeerBytes the bytes so served);
	// PeerServed counts retained payloads this node donated to peers.
	PeerHits   uint64 `json:"peer_hits,omitempty"`
	PeerBytes  int64  `json:"peer_bytes,omitempty"`
	PeerServed uint64 `json:"peer_served,omitempty"`

	// Predict snapshots the model's predictive subsystem (arrival-rate
	// EWMAs, sequence-predictor accuracy, actuation counters). Nil when
	// prediction is disabled.
	Predict *predict.ModelStats `json:"predict,omitempty"`

	// Gen snapshots the model's continuous-batching step loops (one
	// per replica, aggregated): batched decode steps, in-flight and
	// peak streams, best-effort preemptions and the live paged KV
	// bytes charged against the model's preload grant. Nil when the
	// backend runs no step loops.
	Gen *pipeline.StepLoopStats `json:"gen,omitempty"`
}

// Stats is a point-in-time snapshot of the whole scheduler. Each
// aggregate counter is exactly the sum of the same field across
// Models: Shed counts admission-queue rejections only; deadline
// expiries are under DeadlineMiss.
type Stats struct {
	Uptime time.Duration `json:"uptime_ns"`
	// Draining is true once graceful shutdown began: the scheduler
	// still finishes in-flight and queued work, but a cluster router
	// must stop sending new traffic here before the listener closes.
	Draining        bool    `json:"draining,omitempty"`
	Throughput      float64 `json:"throughput_rps"` // completed requests/sec since start
	Completed       uint64  `json:"completed"`
	Failed          uint64  `json:"failed"`
	Shed            uint64  `json:"shed"`
	DeadlineMiss    uint64  `json:"deadline_miss"`
	Batches         uint64  `json:"batches"`
	AvgBatch        float64 `json:"avg_batch"`
	BytesRead       int64   `json:"bytes_read"`
	GeneratedTokens uint64  `json:"generated_tokens"`
	PlanCacheHits   uint64  `json:"plan_cache_hits"`
	PlanCacheMisses uint64  `json:"plan_cache_misses"`
	Downgraded      uint64  `json:"downgraded"`
	// Replicas sums every model's live replica count;
	// SingleflightHits sums the shard reads the shared payload caches
	// absorbed across models.
	Replicas         int    `json:"replicas,omitempty"`
	SingleflightHits uint64 `json:"singleflight_hits"`
	// PrefetchHits/PrefetchWasted sum the predictive prefetcher's
	// outcomes across every model's shared cache; PeerHits/PeerServed
	// sum the cluster peer-cache level's traffic (misses peers served
	// for this node, and payloads this node donated).
	PrefetchHits   uint64 `json:"prefetch_hits,omitempty"`
	PrefetchWasted uint64 `json:"prefetch_wasted,omitempty"`
	PeerHits       uint64 `json:"peer_hits,omitempty"`
	PeerServed     uint64 `json:"peer_served,omitempty"`
	// GenSteps/GenStreams/GenKVBytes sum the continuous-batching step
	// loops across models: batched decode forwards executed, streams
	// decoding right now, and live paged KV bytes.
	GenSteps   uint64 `json:"gen_steps,omitempty"`
	GenStreams int    `json:"gen_streams,omitempty"`
	GenKVBytes int64  `json:"gen_kv_bytes,omitempty"`
	// ServedByTier merges every model's per-tier served counts.
	ServedByTier map[string]uint64 `json:"served_by_tier,omitempty"`
	Models       []ModelStats      `json:"models"`
}

// modelStats holds one model's serving instruments. The counters are
// obs registry instruments — when the scheduler has an observability
// hub they are exposed on /metrics under the model label, and
// Snapshot reads the very same instruments to keep the /v1/stats JSON
// shape (there is exactly one set of counters, not an ad-hoc copy).
type modelStats struct {
	model string

	nCompleted  *obs.Counter
	nFailed     *obs.Counter
	nShed       *obs.Counter
	nDeadline   *obs.Counter
	nBatches    *obs.Counter
	nGenerated  *obs.Counter
	nCacheHit   *obs.Counter
	nCacheMiss  *obs.Counter
	nDowngraded *obs.Counter
	bytesRead   *obs.Counter
	latency     *obs.Histogram // admission -> completion, ns
	queueWait   *obs.Histogram // admission -> worker pickup, ns

	// Max-trackers stay CAS loops: a registry instrument is a counter,
	// gauge or histogram; a running max is none of those.
	maxBatch     atomic.Int64
	maxLatencyNS atomic.Int64

	mu      sync.Mutex
	window  []time.Duration // ring buffer of recent total latencies
	next    int
	wrapped bool
	byTier  map[time.Duration]uint64 // served requests per tier target
}

// newModelStats builds a model's instrument set. With a nil registry
// the instruments still exist and record (unexposed) — every caller
// path is identical whether or not /metrics is wired up.
func newModelStats(model string, window int, reg *obs.Registry) *modelStats {
	m := &modelStats{
		model:  model,
		window: make([]time.Duration, window),
		byTier: make(map[time.Duration]uint64),
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	lbl := obs.Labels{"model": model}
	m.nCompleted = reg.NewCounter("sti_requests_completed_total", "Requests completed successfully.", lbl)
	m.nFailed = reg.NewCounter("sti_requests_failed_total", "Requests failed at the backend.", lbl)
	m.nShed = reg.NewCounter("sti_requests_shed_total", "Requests shed at admission (queue full).", lbl)
	m.nDeadline = reg.NewCounter("sti_deadline_miss_total", "Requests expired before or during execution.", lbl)
	m.nBatches = reg.NewCounter("sti_batches_total", "Backend executions (a batch of 1 is one execution).", lbl)
	m.nGenerated = reg.NewCounter("sti_generated_tokens_total", "Tokens decoded by generate requests.", lbl)
	m.nCacheHit = reg.NewCounter("sti_plan_cache_hits_total", "Served requests that rode a cached plan tier.", lbl)
	m.nCacheMiss = reg.NewCounter("sti_plan_cache_misses_total", "Served requests that planned a new tier on demand.", lbl)
	m.nDowngraded = reg.NewCounter("sti_downgraded_total", "Requests congestion demoted to a coarser tier.", lbl)
	m.bytesRead = reg.NewCounter("sti_flash_bytes_read_total", "Flash bytes read by execution streams.", lbl)
	m.latency = reg.NewHistogram("sti_request_latency_ns", "Request latency, admission to completion.", lbl)
	m.queueWait = reg.NewHistogram("sti_queue_wait_ns", "Queue wait, admission to worker pickup.", lbl)
	return m
}

func (m *modelStats) completed(total time.Duration) {
	m.nCompleted.Inc()
	m.latency.Observe(int64(total))
	for {
		old := m.maxLatencyNS.Load()
		if int64(total) <= old || m.maxLatencyNS.CompareAndSwap(old, int64(total)) {
			break
		}
	}
	m.mu.Lock()
	m.window[m.next] = total
	m.next++
	if m.next == len(m.window) {
		m.next, m.wrapped = 0, true
	}
	m.mu.Unlock()
}

// queued records one request's admission -> pickup wait.
func (m *modelStats) queued(wait time.Duration) { m.queueWait.Observe(int64(wait)) }

func (m *modelStats) failed() { m.nFailed.Inc() }

// executed records one backend execution: a batch of n requests served
// by a single stream that read bytes from flash.
func (m *modelStats) executed(n int, bytes int64) {
	m.nBatches.Inc()
	if bytes > 0 {
		m.bytesRead.AddN(uint64(bytes))
	}
	for {
		old := m.maxBatch.Load()
		if int64(n) <= old || m.maxBatch.CompareAndSwap(old, int64(n)) {
			break
		}
	}
}

// generated records tokens decoded by one generate execution.
func (m *modelStats) generated(n int) {
	if n > 0 {
		m.nGenerated.AddN(uint64(n))
	}
}

// servedTier records which plan tier served one completed request, how
// its SLO resolved against the plan cache, and whether congestion
// demoted it. A nil tier (a backend that resolves no tiers) records
// nothing.
func (m *modelStats) servedTier(ti *pipeline.TierInfo) {
	if ti == nil {
		return
	}
	if ti.CacheHit {
		m.nCacheHit.Inc()
	} else {
		m.nCacheMiss.Inc()
	}
	if ti.Downgraded {
		m.nDowngraded.Inc()
	}
	m.mu.Lock()
	m.byTier[ti.Target]++
	m.mu.Unlock()
}

func (m *modelStats) shed()         { m.nShed.Inc() }
func (m *modelStats) deadlineMiss() { m.nDeadline.Inc() }

func (m *modelStats) snapshot() ModelStats {
	// Copy the window and tier map under the lock; the percentile sort
	// and every map/string conversion run on the copies after release,
	// so a snapshot storm never serializes the completion path behind
	// an O(n log n) sort.
	m.mu.Lock()
	n := m.next
	if m.wrapped {
		n = len(m.window)
	}
	lat := append([]time.Duration(nil), m.window[:n]...)
	var tiers map[time.Duration]uint64
	if len(m.byTier) > 0 {
		tiers = make(map[time.Duration]uint64, len(m.byTier))
		for target, count := range m.byTier {
			tiers[target] = count
		}
	}
	m.mu.Unlock()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var byTier map[string]uint64
	if len(tiers) > 0 {
		byTier = make(map[string]uint64, len(tiers))
		for target, count := range tiers {
			byTier[target.String()] = count
		}
	}
	ms := ModelStats{
		Model:           m.model,
		Completed:       m.nCompleted.Value(),
		Failed:          m.nFailed.Value(),
		Shed:            m.nShed.Value(),
		DeadlineMiss:    m.nDeadline.Value(),
		Batches:         m.nBatches.Value(),
		GeneratedTokens: m.nGenerated.Value(),
		PlanCacheHits:   m.nCacheHit.Value(),
		PlanCacheMisses: m.nCacheMiss.Value(),
		Downgraded:      m.nDowngraded.Value(),
		ServedByTier:    byTier,
		MaxBatch:        int(m.maxBatch.Load()),
		BytesRead:       int64(m.bytesRead.Value()),
		P50:             percentile(lat, 0.50),
		P95:             percentile(lat, 0.95),
		Max:             time.Duration(m.maxLatencyNS.Load()),
	}
	if ms.Batches > 0 {
		ms.AvgBatch = float64(ms.Completed) / float64(ms.Batches)
	}
	if ms.Completed > 0 {
		ms.BytesPerRequest = float64(ms.BytesRead) / float64(ms.Completed)
	}
	return ms
}

// percentile reads the p-th quantile from an ascending-sorted slice
// using the nearest-rank method: the smallest value with at least p·n
// values at or below it, i.e. index ceil(p·n)−1.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// Snapshot reports current serving metrics across all models that have
// received at least one request.
func (s *Scheduler) Snapshot() Stats {
	s.mu.Lock()
	queues := make([]*modelQueue, 0, len(s.queues))
	for _, q := range s.queues {
		queues = append(queues, q)
	}
	s.mu.Unlock()

	st := Stats{Uptime: time.Since(s.start), Draining: s.Draining()}
	for _, q := range queues {
		ms := q.stats.snapshot()
		ms.QueueDepth = len(q.jobs)
		if s.reporter != nil {
			if ps, ok := s.reporter.ReplicaStats(ms.Model); ok {
				ms.Replicas = ps.Replicas
				ms.ReplicaServed = ps.Served
				ms.ScaleUps, ms.ScaleDowns = ps.ScaleUps, ps.ScaleDowns
			}
			if cs, ok := s.reporter.SharedCacheStats(ms.Model); ok {
				ms.SingleflightHits = cs.Hits()
				ms.FlashReads = cs.FlashReads
				ms.SingleflightBytesSaved = cs.BytesSaved
				ms.PrefetchHits = cs.PrefetchHits
				ms.PrefetchWasted = cs.PrefetchWasted
				ms.PrefetchedBytes = cs.PrefetchedBytes
				ms.PeerHits = cs.PeerHits
				ms.PeerBytes = cs.PeerBytes
				ms.PeerServed = cs.PeerServed
			}
		}
		if s.predicts != nil {
			if ps, ok := s.predicts.PredictStats(ms.Model); ok {
				ms.Predict = &ps
			}
		}
		if s.stepLoops != nil {
			if gs, ok := s.stepLoops.GenerateStats(ms.Model); ok {
				ms.Gen = &gs
				st.GenSteps += gs.Steps
				st.GenStreams += gs.Streams
				st.GenKVBytes += gs.KVBytes
			}
		}
		st.Replicas += ms.Replicas
		st.SingleflightHits += ms.SingleflightHits
		st.PrefetchHits += ms.PrefetchHits
		st.PrefetchWasted += ms.PrefetchWasted
		st.PeerHits += ms.PeerHits
		st.PeerServed += ms.PeerServed
		st.Completed += ms.Completed
		st.Failed += ms.Failed
		st.Shed += ms.Shed
		st.DeadlineMiss += ms.DeadlineMiss
		st.Batches += ms.Batches
		st.BytesRead += ms.BytesRead
		st.GeneratedTokens += ms.GeneratedTokens
		st.PlanCacheHits += ms.PlanCacheHits
		st.PlanCacheMisses += ms.PlanCacheMisses
		st.Downgraded += ms.Downgraded
		for tier, count := range ms.ServedByTier {
			if st.ServedByTier == nil {
				st.ServedByTier = make(map[string]uint64)
			}
			st.ServedByTier[tier] += count
		}
		st.Models = append(st.Models, ms)
	}
	sort.Slice(st.Models, func(i, j int) bool { return st.Models[i].Model < st.Models[j].Model })
	if sec := st.Uptime.Seconds(); sec > 0 {
		st.Throughput = float64(st.Completed) / sec
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.Completed) / float64(st.Batches)
	}
	return st
}
