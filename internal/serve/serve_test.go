package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sti/internal/pipeline"
)

// stubBackend fabricates inference results so scheduler behaviour can
// be tested without stores or planning.
type stubBackend struct {
	targets   map[string]time.Duration
	delay     time.Duration
	stepDelay time.Duration // per generated token, so deadlines can lapse mid-decode
	gate      chan struct{} // when non-nil, Serve blocks until the gate closes
	err       error
	panics    atomic.Bool
	poison    atomic.Int64 // when non-zero, Serve panics on tokens[0]==poison
	calls     atomic.Int64

	mu         sync.Mutex
	batchSizes []int   // size of every batched call, in order
	servedTok  [][]int // first tokens of every executed request, in order
}

func (b *stubBackend) Names() []string {
	names := make([]string, 0, len(b.targets))
	for n := range b.targets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (b *stubBackend) Target(name string) (time.Duration, bool) {
	t, ok := b.targets[name]
	return t, ok
}

// infer is the stub's classify path, shared by Serve and ServeBatch.
func (b *stubBackend) infer(tokens []int) ([]float32, *pipeline.ExecStats, error) {
	b.calls.Add(1)
	b.mu.Lock()
	b.servedTok = append(b.servedTok, append([]int(nil), tokens...))
	b.mu.Unlock()
	if b.gate != nil {
		<-b.gate
	}
	if b.delay > 0 {
		time.Sleep(b.delay)
	}
	if b.panics.Load() {
		panic("poisoned request")
	}
	if p := b.poison.Load(); p != 0 && len(tokens) > 0 && int64(tokens[0]) == p {
		panic("poisoned request")
	}
	if b.err != nil {
		return nil, nil, b.err
	}
	return []float32{float32(len(tokens)), 0}, &pipeline.ExecStats{Total: b.delay, BytesRead: stubStreamBytes}, nil
}

// stubStreamBytes is what one stub execution stream "reads", batched or
// not — so per-request amortization is observable in stats.
const stubStreamBytes = 1000

// tier fabricates the tier record a fleet would resolve: the request's
// effective target (its own SLO or the model default), halved by a
// congestion downgrade.
func (b *stubBackend) tier(name string, req pipeline.Request) *pipeline.TierInfo {
	target := req.TargetLatency
	if target <= 0 {
		target = b.targets[name]
	}
	if req.Downgraded {
		target /= 2
	}
	return &pipeline.TierInfo{Target: target, Fidelity: 1, CacheHit: true, Downgraded: req.Downgraded}
}

func (b *stubBackend) Serve(ctx context.Context, name string, req pipeline.Request) (*pipeline.Response, error) {
	if req.Task == pipeline.TaskGenerate {
		resp, err := b.generate(ctx, req)
		if resp != nil {
			resp.Tier = b.tier(name, req)
		}
		return resp, err
	}
	logits, stats, err := b.infer(req.Tokens)
	if err != nil {
		return nil, err
	}
	return &pipeline.Response{Logits: logits, Stats: stats, Tier: b.tier(name, req)}, nil
}

// generate fabricates a greedy decode: token s of step s, one
// stepDelay apart, honoring ctx per token like the real engine.
func (b *stubBackend) generate(ctx context.Context, req pipeline.Request) (*pipeline.Response, error) {
	b.calls.Add(1)
	b.mu.Lock()
	b.servedTok = append(b.servedTok, append([]int(nil), req.Tokens...))
	b.mu.Unlock()
	if b.gate != nil {
		<-b.gate
	}
	if b.err != nil {
		return nil, b.err
	}
	gen := &pipeline.GenStats{Stream: pipeline.ExecStats{BytesRead: stubStreamBytes}, PromptTokens: len(req.Tokens)}
	resp := &pipeline.Response{
		GeneratedTokens: append([]int(nil), req.Tokens...),
		Gen:             gen, Stats: &gen.Stream,
	}
	for s := 0; s < req.MaxNewTokens; s++ {
		if err := ctx.Err(); err != nil {
			return resp, err
		}
		if b.stepDelay > 0 {
			time.Sleep(b.stepDelay)
		}
		resp.GeneratedTokens = append(resp.GeneratedTokens, s)
		gen.NewTokens++
		if req.OnToken != nil {
			req.OnToken(s, s)
		}
	}
	return resp, nil
}

func (b *stubBackend) ServeBatch(ctx context.Context, name string, reqs []pipeline.Request) ([]*pipeline.Response, *pipeline.BatchStats, error) {
	b.mu.Lock()
	b.batchSizes = append(b.batchSizes, len(reqs))
	b.mu.Unlock()
	out := make([]*pipeline.Response, len(reqs))
	bs := &pipeline.BatchStats{
		ExecStats: pipeline.ExecStats{BytesRead: stubStreamBytes},
		Batch:     len(reqs),
	}
	for i, req := range reqs {
		logits, _, err := b.infer(req.Tokens)
		if err != nil {
			return nil, nil, err
		}
		out[i] = &pipeline.Response{Logits: logits, Stats: &bs.ExecStats, Tier: b.tier(name, req)}
	}
	return out, bs, nil
}

// queueDepth inspects a model's queue without creating one.
func queueDepth(s *Scheduler, model string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[model]; ok {
		return len(q.jobs)
	}
	return 0
}

// queueCount reports how many model queues exist.
func queueCount(s *Scheduler) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queues)
}

// waitUntil polls cond for up to 5s, failing the test on timeout so a
// missed signal can never hang the suite.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func twoModels() map[string]time.Duration {
	return map[string]time.Duration{
		"sentiment": 50 * time.Millisecond,
		"nextword":  80 * time.Millisecond,
	}
}

func TestSchedulerServesAndCounts(t *testing.T) {
	b := &stubBackend{targets: twoModels()}
	s := New(b, Options{})
	defer s.Close()

	for i := 0; i < 10; i++ {
		res, err := s.Do(context.Background(), "sentiment", []int{1, 2, 3}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Logits) != 2 || res.Logits[0] != 3 {
			t.Fatalf("bad logits %v", res.Logits)
		}
		if res.Total < res.Queued {
			t.Fatalf("total %v < queued %v", res.Total, res.Queued)
		}
	}
	st := s.Snapshot()
	if st.Completed != 10 || st.Shed != 0 || st.Failed != 0 {
		t.Fatalf("snapshot %+v, want 10 completed", st)
	}
	if len(st.Models) != 1 || st.Models[0].Model != "sentiment" {
		t.Fatalf("models %+v", st.Models)
	}
	if st.Models[0].P50 <= 0 || st.Models[0].P95 < st.Models[0].P50 {
		t.Fatalf("bad percentiles %+v", st.Models[0])
	}
	if st.Throughput <= 0 {
		t.Fatalf("throughput %v", st.Throughput)
	}
}

func TestSchedulerUnknownModel(t *testing.T) {
	s := New(&stubBackend{targets: twoModels()}, Options{})
	defer s.Close()
	if _, err := s.Do(context.Background(), "absent", []int{1}, nil); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("err %v, want ErrUnknownModel", err)
	}
}

func TestSchedulerBackendErrorPropagates(t *testing.T) {
	boom := errors.New("flash died")
	s := New(&stubBackend{targets: twoModels(), err: boom}, Options{})
	defer s.Close()
	if _, err := s.Do(context.Background(), "sentiment", []int{1}, nil); !errors.Is(err, boom) {
		t.Fatalf("err %v, want backend error", err)
	}
	if st := s.Snapshot(); st.Failed != 1 {
		t.Fatalf("failed %d, want 1", st.Failed)
	}
}

func TestSchedulerSurvivesPanickingBackend(t *testing.T) {
	b := &stubBackend{targets: twoModels()}
	b.panics.Store(true)
	s := New(b, Options{Workers: 1})
	defer s.Close()
	if _, err := s.Do(context.Background(), "sentiment", []int{1}, nil); err == nil {
		t.Fatal("panicking backend must surface an error")
	}
	// The worker survived the panic and keeps serving.
	b.panics.Store(false)
	if _, err := s.Do(context.Background(), "sentiment", []int{1}, nil); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("snapshot %+v, want 1 failed + 1 completed", st)
	}
}

func TestSchedulerShedsWhenQueueFull(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	s := New(b, Options{QueueDepth: 1, Workers: 1, Slack: 1000})
	// Release the gate before Close so a failing assertion can never
	// leave Close waiting on a gated worker.
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	// First request occupies the single worker, then the second fills
	// the queue's single slot, so the third must shed. Submissions are
	// sequenced (pickup first, then enqueue) — racing them could shed
	// the second request instead.
	results := make(chan error, 2)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		results <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		results <- err
	}()
	waitUntil(t, "queued request", func() bool { return queueDepth(s, "sentiment") > 0 })

	_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err %v, want ErrQueueFull", err)
	}
	releaseGate()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	st := s.Snapshot()
	if st.Shed != 1 || st.Completed != 2 {
		t.Fatalf("snapshot %+v, want 1 shed + 2 completed", st)
	}
}

func TestSchedulerDropsBlownDeadlines(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: map[string]time.Duration{"m": 10 * time.Millisecond}, gate: gate}
	// Deadline = 5×10ms: generous enough that the first request is
	// always picked up in time, but the gated worker then holds it far
	// longer than 50ms, so the queued second request expires.
	s := New(b, Options{Workers: 1, Slack: 5})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	second := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1}, nil)
		second <- err
	}()
	time.Sleep(120 * time.Millisecond) // let the queued request's 50ms deadline expire
	releaseGate()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; !errors.Is(err, ErrDeadline) {
		t.Fatalf("err %v, want ErrDeadline", err)
	}
	if st := s.Snapshot(); st.Models[0].DeadlineMiss != 1 {
		t.Fatalf("snapshot %+v, want 1 deadline miss", st)
	}
}

func TestSchedulerExpiredAtAdmission(t *testing.T) {
	s := New(&stubBackend{targets: twoModels()}, Options{})
	defer s.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.Do(ctx, "sentiment", []int{1}, nil); !errors.Is(err, ErrDeadline) {
		t.Fatalf("err %v, want ErrDeadline", err)
	}
}

func TestSchedulerCloseDrainsAndRejects(t *testing.T) {
	b := &stubBackend{targets: twoModels(), delay: time.Millisecond}
	s := New(b, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Do(context.Background(), "sentiment", []int{1}, nil)
		}()
	}
	wg.Wait()
	s.Close()
	if _, err := s.Do(context.Background(), "sentiment", []int{1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestSchedulerStress drives N goroutines × M models through the
// scheduler; run under -race this is the concurrency audit of the
// admission path, worker pools and stats.
func TestSchedulerStress(t *testing.T) {
	b := &stubBackend{targets: twoModels()}
	s := New(b, Options{QueueDepth: 4, Workers: 2, Slack: 1000})
	defer s.Close()

	const clients = 16
	models := []string{"sentiment", "nextword"}
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				_, err := s.Do(context.Background(), models[(c+i)%len(models)], []int{1, 2}, nil)
				switch {
				case err == nil:
					served.Add(1)
				case errors.Is(err, ErrQueueFull):
					shed.Add(1)
				default:
					t.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if served.Load() == 0 {
		t.Fatal("nothing served under load")
	}
	st := s.Snapshot()
	if got := int64(st.Completed); got != served.Load() {
		t.Fatalf("snapshot completed %d, clients saw %d", got, served.Load())
	}
	if got := int64(st.Shed); got != shed.Load() {
		t.Fatalf("snapshot shed %d, clients saw %d", got, shed.Load())
	}
	if len(st.Models) != 2 {
		t.Fatalf("models %+v, want both", st.Models)
	}
}

// TestPercentile pins the nearest-rank definition (index ceil(p·n)−1):
// the regression cases are the small windows where the old int(p·n)
// indexing read one element too high — p50 of [1,2] must be 1, not 2.
func TestPercentile(t *testing.T) {
	seq := func(n int) []time.Duration {
		var lat []time.Duration
		for i := 1; i <= n; i++ {
			lat = append(lat, time.Duration(i))
		}
		return lat
	}
	for _, tc := range []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty", nil, 0.50, 0},
		{"single p50", seq(1), 0.50, 1},
		{"single p100", seq(1), 1.00, 1},
		{"two p50", seq(2), 0.50, 1}, // the motivating bug: was index 1
		{"two p95", seq(2), 0.95, 2},
		{"two p100", seq(2), 1.00, 2},
		{"three p50", seq(3), 0.50, 2},
		{"four p25", seq(4), 0.25, 1},
		{"hundred p50", seq(100), 0.50, 50},
		{"hundred p95", seq(100), 0.95, 95},
		{"hundred p100", seq(100), 1.00, 100},
		{"p0 clamps low", seq(5), 0.0, 1},
	} {
		if got := percentile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("%s: percentile(%d values, %v) = %d, want %d", tc.name, len(tc.sorted), tc.p, got, tc.want)
		}
	}
}

func TestLatencyWindowWraps(t *testing.T) {
	m := newModelStats("m", 4, nil)
	for i := 1; i <= 10; i++ {
		m.completed(time.Duration(i) * time.Millisecond)
	}
	ms := m.snapshot()
	if ms.Completed != 10 {
		t.Fatalf("completed %d", ms.Completed)
	}
	// Window holds only the last 4 samples (7..10ms).
	if ms.P50 < 7*time.Millisecond || ms.Max != 10*time.Millisecond {
		t.Fatalf("window stats %+v", ms)
	}
}
