package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSchedulerBatchesQueuedJobs verifies the batch accumulator: jobs
// that pile up behind a busy worker drain into one batched backend
// call, and the stats expose the amortization (AvgBatch > 1, per-
// request bytes below one full stream).
func TestSchedulerBatchesQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	s := New(b, Options{Workers: 1, MaxBatch: 4, BatchWindow: 50 * time.Millisecond, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	// First request occupies the single worker; three more queue behind
	// it and must come out as one batch of 3.
	results := make(chan error, 4)
	submit := func() {
		go func() {
			_, err := s.Do(context.Background(), "sentiment", []int{1, 2}, nil)
			results <- err
		}()
	}
	submit()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	for i := 0; i < 3; i++ {
		submit()
	}
	waitUntil(t, "three queued", func() bool { return queueDepth(s, "sentiment") == 3 })
	releaseGate()
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}

	b.mu.Lock()
	sizes := append([]int(nil), b.batchSizes...)
	b.mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 3 {
		t.Fatalf("batched calls %v, want one batch of 3", sizes)
	}
	st := s.Snapshot()
	if st.Completed != 4 || st.Batches != 2 {
		t.Fatalf("snapshot %+v, want 4 completed over 2 executions", st)
	}
	if st.AvgBatch != 2 {
		t.Fatalf("avg batch %v, want 2 (4 requests / 2 streams)", st.AvgBatch)
	}
	ms := st.Models[0]
	if ms.MaxBatch != 3 {
		t.Fatalf("max batch %d, want 3", ms.MaxBatch)
	}
	// Two streams served four requests: amortized IO is half a stream.
	if ms.BytesPerRequest != stubStreamBytes/2 {
		t.Fatalf("bytes/request %v, want %v", ms.BytesPerRequest, stubStreamBytes/2)
	}
}

// TestSchedulerBatchExpiredJobShedsAlone pins the per-job deadline rule
// inside a drained batch: an expired job sheds with ErrDeadline while
// its batchmates are still served.
func TestSchedulerBatchExpiredJobShedsAlone(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: map[string]time.Duration{"m": time.Hour}, gate: gate}
	s := New(b, Options{Workers: 1, MaxBatch: 4, BatchWindow: 20 * time.Millisecond, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })

	// "expiring" carries a ctx deadline that lapses while the gated
	// worker holds the first request; "patient" does not.
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	expiring := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, "m", []int{1}, nil)
		expiring <- err
	}()
	patient := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1, 2, 3}, nil)
		patient <- err
	}()
	waitUntil(t, "two queued", func() bool { return queueDepth(s, "m") == 2 })
	time.Sleep(60 * time.Millisecond) // let the ctx deadline lapse in-queue
	releaseGate()

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-expiring; !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, ErrDeadline) {
		t.Fatalf("expired batchmate got %v, want deadline error", err)
	}
	if err := <-patient; err != nil {
		t.Fatalf("patient batchmate must be served, got %v", err)
	}
	if st := s.Snapshot(); st.Completed != 2 {
		t.Fatalf("snapshot %+v, want exactly the 2 live requests completed", st)
	}
}

// TestSchedulerPoisonedBatchmateFailsAlone: when a batched execution
// fails, the scheduler retries each job unbatched so only the poisoned
// request errors — its batchmates still get their results.
func TestSchedulerPoisonedBatchmateFailsAlone(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	const poisonTok = 666
	b.poison.Store(poisonTok)
	s := New(b, Options{Workers: 1, MaxBatch: 4, BatchWindow: 50 * time.Millisecond, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	poisoned := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{poisonTok}, nil)
		poisoned <- err
	}()
	healthy := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1, 2}, nil)
		healthy <- err
	}()
	waitUntil(t, "two queued", func() bool { return queueDepth(s, "sentiment") == 2 })
	releaseGate()

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-poisoned; err == nil {
		t.Fatal("poisoned request must fail")
	}
	if err := <-healthy; err != nil {
		t.Fatalf("healthy batchmate must survive a poisoned batch, got %v", err)
	}
	if st := s.Snapshot(); st.Completed != 2 || st.Failed != 1 {
		t.Fatalf("snapshot %+v, want 2 completed + 1 failed", st)
	}
}

// TestSchedulerDoAfterCloseCreatesNoQueue is the regression for the
// Close race: a submit for a never-seen model after Close must return
// ErrClosed without inserting a queue Close can no longer drain (an
// unclosed channel leak) or recording stats on a closed scheduler.
func TestSchedulerDoAfterCloseCreatesNoQueue(t *testing.T) {
	s := New(&stubBackend{targets: twoModels()}, Options{})
	s.Close()
	if _, err := s.Do(context.Background(), "sentiment", []int{1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err %v, want ErrClosed", err)
	}
	if n := queueCount(s); n != 0 {
		t.Fatalf("%d queues created after Close, want 0", n)
	}
	// The expired-at-admission path must also refuse before touching
	// stats: pre-fix it created a queue just to count a deadline miss.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.Do(ctx, "nextword", []int{1}, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("err %v, want ErrClosed on expired submit", err)
	}
	if n := queueCount(s); n != 0 {
		t.Fatalf("%d queues created by expired submit after Close, want 0", n)
	}
}

// TestSchedulerCloseDoRace hammers Do against Close under -race: no
// submit may create a queue after Close walked the map, and every
// submit must either be served, shed, or get ErrClosed.
func TestSchedulerCloseDoRace(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		b := &stubBackend{targets: twoModels()}
		s := New(b, Options{QueueDepth: 4, Workers: 1})
		var wg sync.WaitGroup
		start := make(chan struct{})
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				<-start
				model := "sentiment"
				if c%2 == 1 {
					model = "nextword"
				}
				_, err := s.Do(context.Background(), model, []int{1}, nil)
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("unexpected error %v", err)
				}
			}(c)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			s.Close()
		}()
		close(start)
		wg.Wait()
		// Whatever queues exist were all created before Close and are
		// drained; their channels are closed, so workers have exited.
		if _, err := s.Do(context.Background(), "sentiment", []int{1}, nil); !errors.Is(err, ErrClosed) {
			t.Fatalf("iter %d: post-close Do got %v, want ErrClosed", iter, err)
		}
	}
}
