package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sti/internal/pipeline"
)

// TestSchedulerSLODerivesDeadline: a request's own TargetLatency — not
// the model's default — sets its queue deadline, so a tight-SLO
// request behind a busy worker expires on its own clock.
func TestSchedulerSLODerivesDeadline(t *testing.T) {
	gate := make(chan struct{})
	// The model default is an hour: only the request's 5ms SLO can
	// explain an ErrDeadline here (5×5ms window, uncongested queue).
	b := &stubBackend{targets: map[string]time.Duration{"m": time.Hour}, gate: gate}
	s := New(b, Options{Workers: 1, Slack: 5})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	second := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "m", pipeline.Request{
			Task: pipeline.TaskClassify, Tokens: []int{2},
			TargetLatency: 5 * time.Millisecond,
		})
		second <- err
	}()
	waitUntil(t, "second queued", func() bool { return queueDepth(s, "m") == 1 })
	time.Sleep(60 * time.Millisecond) // let the 25ms SLO deadline lapse
	releaseGate()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	if err := <-second; !errors.Is(err, ErrDeadline) {
		t.Fatalf("tight-SLO request got %v, want ErrDeadline from its own target", err)
	}
}

// TestSchedulerOverDeadlineDowngradesWhenCongested: at dequeue, an
// over-deadline job in a congested queue is demoted to a coarser tier
// (fresh halved window, Downgraded recorded) instead of shed; once the
// queue drains below the high-water mark, expiry sheds as before.
func TestSchedulerOverDeadlineDowngradesWhenCongested(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: map[string]time.Duration{"m": 10 * time.Millisecond}, gate: gate}
	s := New(b, Options{QueueDepth: 2, Workers: 1, Slack: 5})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })

	// Two more requests fill the queue; the gated worker holds them
	// past their 50ms deadlines.
	second := make(chan *Result, 1)
	secondErr := make(chan error, 1)
	go func() {
		res, err := s.Do(context.Background(), "m", []int{2}, nil)
		second <- res
		secondErr <- err
	}()
	waitUntil(t, "second queued", func() bool { return queueDepth(s, "m") == 1 })
	third := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{3}, nil)
		third <- err
	}()
	waitUntil(t, "queue full", func() bool { return queueDepth(s, "m") == 2 })
	time.Sleep(120 * time.Millisecond) // both queued deadlines lapse
	releaseGate()

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// Second dequeues with one job still behind it (at the high-water
	// mark): downgraded and served, not shed.
	res := <-second
	if err := <-secondErr; err != nil {
		t.Fatalf("congested over-deadline job got %v, want a downgraded result", err)
	}
	if res.Tier == nil || !res.Tier.Downgraded {
		t.Fatalf("tier %+v, want Downgraded recorded", res.Tier)
	}
	// Third dequeues from a drained queue (below the mark): sheds.
	if err := <-third; !errors.Is(err, ErrDeadline) {
		t.Fatalf("uncongested over-deadline job got %v, want ErrDeadline", err)
	}
	st := s.Snapshot()
	if st.Downgraded != 1 || st.DeadlineMiss != 1 || st.Completed != 2 {
		t.Fatalf("snapshot %+v, want 1 downgraded + 1 deadline miss + 2 completed", st)
	}
}

// TestSchedulerBottomRungOverDeadlineStillSheds: the congestion
// demotion only applies where a coarser tier exists — a request whose
// SLO already sits at the ladder's bottom rung (half the model
// default) has nothing to demote to, so going over deadline sheds it
// with ErrDeadline even in a congested queue.
func TestSchedulerBottomRungOverDeadlineStillSheds(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: map[string]time.Duration{"m": 10 * time.Millisecond}, gate: gate}
	s := New(b, Options{QueueDepth: 2, Workers: 1, Slack: 5})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "m", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	// Both queued requests ride the 5ms bottom rung; the gated worker
	// holds them past their 25ms windows with the queue congested.
	queued := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Submit(context.Background(), "m", pipeline.Request{
				Task: pipeline.TaskClassify, Tokens: []int{2},
				TargetLatency: 5 * time.Millisecond,
			})
			queued <- err
		}()
	}
	waitUntil(t, "queue full", func() bool { return queueDepth(s, "m") == 2 })
	time.Sleep(80 * time.Millisecond)
	releaseGate()

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-queued; !errors.Is(err, ErrDeadline) {
			t.Fatalf("bottom-rung over-deadline job got %v, want ErrDeadline", err)
		}
	}
	if st := s.Snapshot(); st.DeadlineMiss != 2 || st.Downgraded != 0 {
		t.Fatalf("snapshot %+v, want 2 deadline misses and no downgrades", st)
	}
}

// TestSchedulerBatchesGroupByTier: the accumulator never mixes SLO
// classes in one batched call — a batch executes on one plan, so a
// tight-SLO member would silently strip its relaxed batchmates'
// fidelity. Same-SLO jobs still amortize one stream.
func TestSchedulerBatchesGroupByTier(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	s := New(b, Options{Workers: 1, MaxBatch: 8, BatchWindow: 50 * time.Millisecond, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })

	// Two tight and two relaxed classify jobs queue behind the gate.
	submit := func(target time.Duration, done chan *Result) {
		go func() {
			res, err := s.Submit(context.Background(), "sentiment", pipeline.Request{
				Task: pipeline.TaskClassify, Tokens: []int{2, 3}, TargetLatency: target,
			})
			if err != nil {
				t.Error(err)
			}
			done <- res
		}()
	}
	tight := make(chan *Result, 2)
	relaxed := make(chan *Result, 2)
	for i := 0; i < 2; i++ {
		submit(100*time.Millisecond, tight)
	}
	for i := 0; i < 2; i++ {
		submit(400*time.Millisecond, relaxed)
	}
	waitUntil(t, "four queued", func() bool { return queueDepth(s, "sentiment") == 4 })
	releaseGate()

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res := <-tight; res.Tier == nil || res.Tier.Target != 100*time.Millisecond {
			t.Fatalf("tight result tier %+v, want the 100ms tier", res.Tier)
		}
		if res := <-relaxed; res.Tier == nil || res.Tier.Target != 400*time.Millisecond {
			t.Fatalf("relaxed result tier %+v, want the 400ms tier", res.Tier)
		}
	}
	// The four jobs drained as two tier-consistent batches of 2, not
	// one mixed batch of 4.
	b.mu.Lock()
	sizes := append([]int(nil), b.batchSizes...)
	b.mu.Unlock()
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Fatalf("batched calls %v, want two tier-grouped batches of 2", sizes)
	}
	st := s.Snapshot()
	ms := st.Models[0]
	if ms.ServedByTier["100ms"] != 2 || ms.ServedByTier["400ms"] != 2 {
		t.Fatalf("served_by_tier %v, want 2 per SLO class", ms.ServedByTier)
	}
	if ms.PlanCacheHits != 5 || ms.PlanCacheMisses != 0 {
		t.Fatalf("plan cache %d hits / %d misses, want 5/0", ms.PlanCacheHits, ms.PlanCacheMisses)
	}
}
