package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"sti/internal/pipeline"
	"sti/internal/replica"
	"sti/internal/store"
)

// elasticStub wraps the stub backend with the optional replica
// surfaces so the scheduler's pressure signal and stats plumbing can
// be observed without real pools.
type elasticStub struct {
	stubBackend

	mu        sync.Mutex
	pressures []pressureObs
	pool      replica.PoolStats
	cache     store.CacheStats
}

type pressureObs struct {
	model           string
	depth, capacity int
}

func (b *elasticStub) Pressure(model string, depth, capacity int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.pressures = append(b.pressures, pressureObs{model, depth, capacity})
}

func (b *elasticStub) ReplicaStats(model string) (replica.PoolStats, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pool, true
}

func (b *elasticStub) SharedCacheStats(model string) (store.CacheStats, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cache, true
}

func (b *elasticStub) observations() []pressureObs {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]pressureObs(nil), b.pressures...)
}

// TestSchedulerFeedsPressureSignal: every admission and every worker
// drain reports the queue's depth/capacity to an elastic backend.
func TestSchedulerFeedsPressureSignal(t *testing.T) {
	b := &elasticStub{stubBackend: stubBackend{targets: twoModels()}}
	s := New(b, Options{QueueDepth: 8})
	defer s.Close()

	if _, err := s.Submit(context.Background(), "sentiment",
		pipeline.Request{Task: pipeline.TaskClassify, Tokens: []int{1}}); err != nil {
		t.Fatal(err)
	}
	obs := b.observations()
	if len(obs) < 2 {
		t.Fatalf("got %d pressure observations for one served request, want admission + drain", len(obs))
	}
	sawDrain := false
	for _, o := range obs {
		if o.model != "sentiment" {
			t.Fatalf("pressure for model %q, want sentiment", o.model)
		}
		if o.capacity != 8 {
			t.Fatalf("pressure capacity %d, want the queue depth 8", o.capacity)
		}
		if o.depth == 0 {
			sawDrain = true
		}
	}
	if !sawDrain {
		t.Fatal("no idle (depth 0) observation after the queue drained")
	}
}

// TestSchedulerIdleTickerKeepsObserving: once a model has served
// traffic, the background ticker keeps reporting its (idle) queue to
// the elastic backend with no further submits — the signal a pool
// needs to drain surplus replicas after traffic stops entirely.
func TestSchedulerIdleTickerKeepsObserving(t *testing.T) {
	b := &elasticStub{stubBackend: stubBackend{targets: twoModels()}}
	s := New(b, Options{})
	defer s.Close()

	if _, err := s.Submit(context.Background(), "sentiment",
		pipeline.Request{Task: pipeline.TaskClassify, Tokens: []int{1}}); err != nil {
		t.Fatal(err)
	}
	baseline := len(b.observations())
	deadline := time.Now().Add(5 * time.Second)
	for len(b.observations()) < baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("no ticker observations after traffic stopped (still %d)", len(b.observations()))
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, o := range b.observations()[baseline:] {
		if o.depth != 0 {
			t.Fatalf("idle-ticker observation reports depth %d, want 0", o.depth)
		}
	}
}

// TestSchedulerSnapshotSurfacesReplicaStats: Snapshot merges the
// backend's pool and shared-cache counters into per-model and
// aggregate stats.
func TestSchedulerSnapshotSurfacesReplicaStats(t *testing.T) {
	b := &elasticStub{stubBackend: stubBackend{targets: twoModels()}}
	b.pool = replica.PoolStats{Replicas: 3, Served: []uint64{4, 2, 1}, ScaleUps: 2, ScaleDowns: 1}
	b.cache = store.CacheStats{
		Requests: 40, FlashReads: 10,
		SingleflightHits: 18, RetainedHits: 12,
		BytesSaved: 9000,
	}
	s := New(b, Options{})
	defer s.Close()

	if _, err := s.Submit(context.Background(), "sentiment",
		pipeline.Request{Task: pipeline.TaskClassify, Tokens: []int{1}}); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if len(st.Models) != 1 {
		t.Fatalf("%d models in snapshot, want 1", len(st.Models))
	}
	ms := st.Models[0]
	if ms.Replicas != 3 || len(ms.ReplicaServed) != 3 || ms.ReplicaServed[0] != 4 {
		t.Fatalf("replica stats %+v not surfaced", ms)
	}
	if ms.ScaleUps != 2 || ms.ScaleDowns != 1 {
		t.Fatalf("scale counters %d/%d, want 2/1", ms.ScaleUps, ms.ScaleDowns)
	}
	if ms.SingleflightHits != 30 || ms.FlashReads != 10 || ms.SingleflightBytesSaved != 9000 {
		t.Fatalf("singleflight stats %+v, want 30 hits / 10 flash reads / 9000 saved", ms)
	}
	if st.Replicas != 3 || st.SingleflightHits != 30 {
		t.Fatalf("aggregate replicas %d / singleflight %d, want 3 / 30", st.Replicas, st.SingleflightHits)
	}
}

// TestSchedulerPlainBackendUnaffected: a backend without the optional
// surfaces serves exactly as before and reports zero replica fields.
func TestSchedulerPlainBackendUnaffected(t *testing.T) {
	b := &stubBackend{targets: twoModels()}
	s := New(b, Options{})
	defer s.Close()

	if _, err := s.Submit(context.Background(), "sentiment",
		pipeline.Request{Task: pipeline.TaskClassify, Tokens: []int{1, 2}}); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot()
	if st.Replicas != 0 || st.SingleflightHits != 0 {
		t.Fatalf("plain backend reports replica stats %d/%d, want zeros", st.Replicas, st.SingleflightHits)
	}
	if st.Completed != 1 {
		t.Fatalf("completed %d, want 1", st.Completed)
	}
}
