package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sti/internal/pipeline"
)

// TestSchedulerDropsCancelledWhileQueued pins the claim the worker
// path makes ("the worker will notice ctx and drop the job"): a job
// whose context is cancelled while it waits in the queue must never
// reach the backend.
func TestSchedulerDropsCancelledWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	s := New(b, Options{Workers: 1, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	// First request occupies the single worker.
	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })

	// Second request queues behind it, then its caller gives up.
	const cancelledTok = 7777
	ctx, cancel := context.WithCancel(context.Background())
	second := make(chan error, 1)
	go func() {
		_, err := s.Do(ctx, "sentiment", []int{cancelledTok}, nil)
		second <- err
	}()
	waitUntil(t, "second queued", func() bool { return queueDepth(s, "sentiment") == 1 })
	cancel()
	if err := <-second; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit got %v, want context.Canceled", err)
	}

	releaseGate()
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	// Let the worker drain the queue, then prove the cancelled job never
	// executed: the backend saw exactly one request, and not the
	// cancelled one.
	waitUntil(t, "queue drained", func() bool { return queueDepth(s, "sentiment") == 0 })
	s.Close()
	b.mu.Lock()
	served := append([][]int(nil), b.servedTok...)
	b.mu.Unlock()
	if len(served) != 1 || served[0][0] == cancelledTok {
		t.Fatalf("backend executed %v, want only the first request", served)
	}
	if st := s.Snapshot(); st.Completed != 1 {
		t.Fatalf("snapshot %+v, want exactly 1 completed", st)
	}
}

// TestSchedulerGenerateRunsSingly drives a mixed queue through one
// worker: the classify jobs drain into one batched call while the
// generate job runs singly, streaming its tokens through OnToken.
func TestSchedulerGenerateRunsSingly(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	s := New(b, Options{Workers: 1, MaxBatch: 8, BatchWindow: 50 * time.Millisecond, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	first := make(chan error, 1)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		first <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })

	// Two classify jobs and one generate job queue behind the gate.
	classifyDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.Do(context.Background(), "sentiment", []int{2, 3}, nil)
			classifyDone <- err
		}()
	}
	var mu sync.Mutex
	var streamed []int
	genDone := make(chan *Result, 1)
	genErr := make(chan error, 1)
	go func() {
		res, err := s.Submit(context.Background(), "sentiment", pipeline.Request{
			Task: pipeline.TaskGenerate, Tokens: []int{9}, MaxNewTokens: 3,
			OnToken: func(step, token int) {
				mu.Lock()
				streamed = append(streamed, token)
				mu.Unlock()
			},
		})
		genDone <- res
		genErr <- err
	}()
	waitUntil(t, "three queued", func() bool { return queueDepth(s, "sentiment") == 3 })
	releaseGate()

	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-classifyDone; err != nil {
			t.Fatal(err)
		}
	}
	res := <-genDone
	if err := <-genErr; err != nil {
		t.Fatal(err)
	}
	if res == nil || len(res.GeneratedTokens) != 4 || res.Gen == nil || res.Gen.NewTokens != 3 {
		t.Fatalf("generate result %+v, want prompt+3 tokens", res)
	}
	if res.Batch != 1 {
		t.Fatalf("generate batch %d, want 1 (generate never batches)", res.Batch)
	}
	mu.Lock()
	nStreamed := len(streamed)
	mu.Unlock()
	if nStreamed != 3 {
		t.Fatalf("OnToken streamed %d tokens, want 3", nStreamed)
	}
	// The two classify jobs came out as one batch of 2; the generate job
	// never joined a batched call.
	b.mu.Lock()
	sizes := append([]int(nil), b.batchSizes...)
	b.mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 2 {
		t.Fatalf("batched calls %v, want one classify batch of 2", sizes)
	}
	if st := s.Snapshot(); st.GeneratedTokens != 3 {
		t.Fatalf("snapshot %+v, want 3 generated tokens", st)
	}
}

// TestSchedulerBestEffortDowngradesNotSheds: past the high-water mark
// a Priority < 0 request is demoted to a coarser plan tier — admitted
// and served degraded (Downgraded recorded in its tier) — instead of
// shed; only a genuinely full queue sheds it like everyone else.
func TestSchedulerBestEffortDowngradesNotSheds(t *testing.T) {
	gate := make(chan struct{})
	b := &stubBackend{targets: twoModels(), gate: gate}
	s := New(b, Options{QueueDepth: 2, Workers: 1, Slack: 1000})
	releaseGate := sync.OnceFunc(func() { close(gate) })
	defer s.Close()
	defer releaseGate()

	results := make(chan error, 2)
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		results <- err
	}()
	waitUntil(t, "worker pickup", func() bool { return b.calls.Load() > 0 })
	go func() {
		_, err := s.Do(context.Background(), "sentiment", []int{1}, nil)
		results <- err
	}()
	waitUntil(t, "one queued", func() bool { return queueDepth(s, "sentiment") == 1 })

	// Queue is at the high-water mark (1/2): best-effort is admitted
	// but demoted to a coarser tier, not shed.
	bestEffort := make(chan *Result, 1)
	bestEffortErr := make(chan error, 1)
	go func() {
		res, err := s.Submit(context.Background(), "sentiment", pipeline.Request{
			Task: pipeline.TaskClassify, Tokens: []int{1}, Priority: -1,
		})
		bestEffort <- res
		bestEffortErr <- err
	}()
	waitUntil(t, "two queued", func() bool { return queueDepth(s, "sentiment") == 2 })

	// Queue is now truly full: best-effort AND normal traffic shed.
	_, err := s.Submit(context.Background(), "sentiment", pipeline.Request{
		Task: pipeline.TaskClassify, Tokens: []int{1}, Priority: -1,
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("best-effort at full depth got %v, want ErrQueueFull", err)
	}
	releaseGate()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	res := <-bestEffort
	if err := <-bestEffortErr; err != nil {
		t.Fatalf("congested best-effort must be served degraded, got %v", err)
	}
	if res.Tier == nil || !res.Tier.Downgraded {
		t.Fatalf("downgraded request's tier %+v must record Downgraded", res.Tier)
	}
	st := s.Snapshot()
	if st.Shed != 1 || st.Completed != 3 || st.Downgraded != 1 {
		t.Fatalf("snapshot %+v, want 1 shed + 3 completed + 1 downgraded", st)
	}
}

// TestSchedulerGenerateDeadlineStopsDecode: a generate job whose
// deadline lapses mid-decode stops within one token and reports
// ErrDeadline with the partial sequence.
func TestSchedulerGenerateDeadlineStopsDecode(t *testing.T) {
	b := &stubBackend{
		targets:   map[string]time.Duration{"m": 10 * time.Millisecond},
		stepDelay: 30 * time.Millisecond,
	}
	// Deadline = 6×10ms = 60ms: the decode fits ~2 of the requested 50
	// tokens before the per-token check stops it.
	s := New(b, Options{Workers: 1, Slack: 6})
	defer s.Close()

	res, err := s.Submit(context.Background(), "m", pipeline.Request{
		Task: pipeline.TaskGenerate, Tokens: []int{1}, MaxNewTokens: 50,
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err %v, want ErrDeadline", err)
	}
	if res == nil || res.Gen == nil {
		t.Fatal("deadline-stopped generate must return the partial result")
	}
	if res.Gen.NewTokens == 0 || res.Gen.NewTokens >= 50 {
		t.Fatalf("decoded %d tokens, want a partial decode", res.Gen.NewTokens)
	}
	if st := s.Snapshot(); st.DeadlineMiss != 1 {
		t.Fatalf("snapshot %+v, want 1 deadline miss", st)
	}
}

// genGateBackend blocks generate serves on a test-controlled gate
// (classify traffic passes through untouched), and signals when the
// first generate has actually entered the backend — i.e. holds a
// stream slot.
type genGateBackend struct {
	*stubBackend
	genGate chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (b *genGateBackend) Serve(ctx context.Context, name string, req pipeline.Request) (*pipeline.Response, error) {
	if req.Task == pipeline.TaskGenerate {
		b.once.Do(func() { close(b.entered) })
		select {
		case <-b.genGate:
		case <-ctx.Done():
		}
	}
	return b.stubBackend.Serve(ctx, name, req)
}

// TestSchedulerDeadGenerateJobsDontHoldWorker pins the slot-wait fix:
// at the MaxStreams cap, a queue of already-cancelled generate jobs
// must shed without the worker blocking on the stream semaphore — live
// classify traffic behind them is served while the slot stays held.
func TestSchedulerDeadGenerateJobsDontHoldWorker(t *testing.T) {
	b := &genGateBackend{
		stubBackend: &stubBackend{targets: map[string]time.Duration{"m": 50 * time.Millisecond}},
		genGate:     make(chan struct{}),
		entered:     make(chan struct{}),
	}
	s := New(b, Options{Workers: 1, MaxStreams: 1, QueueDepth: 8, Slack: 1000})
	defer s.Close()

	// Occupy the only stream slot with a generate that parks in the
	// backend until the gate opens.
	liveErr := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "m", pipeline.Request{
			Task: pipeline.TaskGenerate, Tokens: []int{9}, MaxNewTokens: 2,
		})
		liveErr <- err
	}()
	<-b.entered

	// Queue a run of generate jobs whose callers are already gone. Each
	// Submit enqueues, then returns immediately on its dead context —
	// the jobs stay in the FIFO ahead of the classify below.
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 4; i++ {
		if _, err := s.Submit(cctx, "m", pipeline.Request{
			Task: pipeline.TaskGenerate, Tokens: []int{i}, MaxNewTokens: 2,
		}); !errors.Is(err, context.Canceled) {
			t.Fatalf("dead submit %d: err %v, want context.Canceled", i, err)
		}
	}

	// The classify behind them must be served while the slot is still
	// held: the worker sheds each dead job without a slot wait. Before
	// the fix it blocked on the semaphore under the first dead job until
	// the live stream finished.
	classified := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "m", pipeline.Request{
			Task: pipeline.TaskClassify, Tokens: []int{1, 2, 3},
		})
		classified <- err
	}()
	select {
	case err := <-classified:
		if err != nil {
			t.Fatalf("classify: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("classify stuck behind dead generate jobs at the stream cap")
	}

	close(b.genGate)
	if err := <-liveErr; err != nil {
		t.Fatalf("live generate: %v", err)
	}
}
