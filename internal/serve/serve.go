// Package serve is the concurrent request-serving layer over a fleet
// of planned STI pipelines. The paper plans one engagement at a time
// (§3.2–3.3); serve turns that single-engagement machinery into a
// multi-tenant scheduler that admits many simultaneous task-typed
// inference requests against per-model deadlines.
//
// Each managed model gets a bounded admission queue and a small pool
// of worker goroutines. A request's deadline derives from its own
// TargetLatency (SLO) — or the model's default target when it carries
// none — so a request queued longer than a few targets can never be
// served usefully and is shed instead of dragging the whole queue past
// its deadlines (load shedding at admission keeps tail latency bounded
// — the queue rejects rather than grows). Under congestion (queue
// depth at the high-water mark) the scheduler prefers degrading to
// shedding: best-effort and over-deadline requests are demoted to a
// coarser plan tier — the backend serves them faster at lower fidelity
// and records the downgrade in the response's tier.
//
// Requests are task-typed (pipeline.Request): classify jobs batch into
// one shared IO/decompress stream exactly as before, while generate
// jobs dispatch onto the backend's continuous-batching step loops —
// each leaves its worker immediately (bounded by Options.MaxStreams),
// decodes batched with the model's other in-flight streams, streams
// tokens through Request.OnToken, and executes under a context
// carrying the job's deadline so the step loop's per-token checks
// stop it the moment the deadline (or the client) goes away.
//
// The scheduler never touches plans itself: replanning (budget or
// membership changes) happens on the backend fleet, whose RWMutex
// quiesces in-flight inference. Workers simply observe the new plan on
// their next request.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sti/internal/obs"
	"sti/internal/pipeline"
	"sti/internal/planner"
	"sti/internal/predict"
	"sti/internal/replica"
	"sti/internal/store"
)

// Typed admission-control errors. HTTP frontends map these to status
// codes (503 for shedding, 504 for blown deadlines, 404 for unknown
// models); programmatic callers test with errors.Is.
var (
	// ErrQueueFull reports load shedding: the model's bounded
	// admission queue was full at submit time. (Best-effort requests
	// with Priority < 0 are downgraded to a coarser tier, not shed,
	// while any queue slot remains.)
	ErrQueueFull = errors.New("serve: queue full, request shed")
	// ErrDeadline reports that the request's deadline expired before a
	// worker could start it (or was already expired at submit), or —
	// for generate — that the decode was stopped at the deadline.
	ErrDeadline = errors.New("serve: deadline exceeded before execution")
	// ErrUnknownModel reports a request for a model the backend does
	// not manage.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrClosed reports a submit to a scheduler after Close.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Backend is the fleet surface the scheduler drives. *sti.Fleet
// implements it; tests substitute stubs.
type Backend interface {
	// Names lists managed models in a stable order.
	Names() []string
	// Target returns the planned latency target of a managed model.
	Target(name string) (time.Duration, bool)
	// Serve runs one task-typed request (classify or generate); it
	// must be safe for concurrent use and honor ctx cancellation.
	Serve(ctx context.Context, name string, req pipeline.Request) (*pipeline.Response, error)
	// ServeBatch runs one batched classify whose single IO/decompress
	// stream serves every request; it must be safe for concurrent use.
	ServeBatch(ctx context.Context, name string, reqs []pipeline.Request) ([]*pipeline.Response, *pipeline.BatchStats, error)
}

// Elastic is the optional backend surface for replica elasticity. A
// backend that also implements it (the fleet's per-model replica pools
// do) receives the scheduler's queue-pressure signal — queue depth and
// capacity at each admission and each completion — and may scale a
// model's serving capacity up past the high-water mark or drain it
// when the queue stays idle. Pressure must be cheap and non-blocking:
// it is called on the serving path.
type Elastic interface {
	Pressure(model string, depth, capacity int)
}

// ReplicaReporter is the optional backend surface for replica-aware
// stats: per-model pool snapshots and shared shard-cache counters,
// surfaced through Snapshot into ModelStats.
type ReplicaReporter interface {
	ReplicaStats(model string) (replica.PoolStats, bool)
	SharedCacheStats(model string) (store.CacheStats, bool)
}

// StepLoopReporter is the optional backend surface for continuous-
// batching stats: a backend whose generate path runs per-replica step
// loops (the fleet's replica pools do) exposes their aggregated
// snapshot per model, surfaced through Snapshot into ModelStats.
type StepLoopReporter interface {
	GenerateStats(model string) (pipeline.StepLoopStats, bool)
}

// ArrivalObserver is the optional backend surface for the predictive
// subsystem's arrival stream: a backend that implements it (the fleet
// does when prediction is enabled) receives one observation per
// successful admission — the request's canonicalized SLO class plus
// the queue depth/capacity at that moment. ObserveArrival must be
// cheap and non-blocking: it is called on the serving path.
type ArrivalObserver interface {
	ObserveArrival(model string, class time.Duration, depth, capacity int)
}

// PredictReporter is the optional backend surface for predictor
// stats, surfaced through Snapshot into ModelStats.
type PredictReporter interface {
	PredictStats(model string) (predict.ModelStats, bool)
}

// Options tunes the scheduler.
type Options struct {
	// QueueDepth bounds each model's admission queue; submits beyond
	// it shed with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the number of worker goroutines per model. Default 2.
	Workers int
	// Slack scales a model's latency target into its queue deadline:
	// a request older than Slack×target at dequeue is dropped with
	// ErrDeadline. Default 4.
	Slack float64
	// Window is how many recent request latencies each model keeps
	// for the p50/p95 snapshot. Default 512.
	Window int
	// MaxBatch is how many queued classify jobs a worker may drain
	// into one batched backend call, amortizing the model's
	// IO/decompress stream across them. 1 disables batching.
	// Default 1.
	MaxBatch int
	// BatchWindow is how long a worker holding one classify job waits
	// for more to accumulate before executing (only when MaxBatch > 1).
	// Default 2ms.
	BatchWindow time.Duration
	// HighWater is the congestion mark as a fraction of QueueDepth: at
	// or above it the scheduler downgrades best-effort (Priority < 0)
	// and over-deadline requests to a coarser plan tier instead of
	// shedding them — fidelity degrades before availability does.
	// Default 0.5.
	HighWater float64
	// MaxStreams caps concurrently dispatched generate streams across
	// the scheduler: generate jobs leave the worker immediately and
	// decode on the backend's continuous-batching step loops, so
	// workers stay free for classify batching; at the cap the worker
	// blocks, backpressuring through the admission queue. Default 64.
	MaxStreams int
	// Obs is the process's observability hub. When set, every model's
	// serving counters and latency/queue-wait histograms register into
	// its /metrics registry; per-request spans ride the request context
	// regardless (they need only a trace on the context). Nil keeps the
	// instruments private to Snapshot.
	Obs *obs.Hub
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Slack <= 0 {
		o.Slack = 4
	}
	if o.Window <= 0 {
		o.Window = 512
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if o.HighWater <= 0 {
		o.HighWater = 0.5
	}
	if o.MaxStreams <= 0 {
		o.MaxStreams = 64
	}
	return o
}

// Result is the outcome of one scheduled request.
type Result struct {
	Logits []float32
	// GeneratedTokens is the full decoded sequence (prompt + new) for
	// generate requests; nil for classify.
	GeneratedTokens []int
	// Gen holds per-step decode stats; non-nil only for generate.
	Gen *pipeline.GenStats
	// Stats describes the execution stream that served this request.
	// For a batched request the stream is shared: BytesRead/CacheHits
	// are the whole batch's, so this request's amortized IO is
	// BytesRead/Batch.
	Stats *pipeline.ExecStats
	// Batch is how many requests shared the execution stream (1 for an
	// unbatched request).
	Batch int
	// Tier records the plan tier that served the request: its latency
	// target, fidelity, plan-cache outcome and whether congestion
	// downgraded the request. Nil when the backend resolves no tiers.
	Tier *pipeline.TierInfo

	Queued time.Duration // admission → worker pickup
	Total  time.Duration // admission → completion
}

type job struct {
	ctx      context.Context
	req      pipeline.Request
	deadline time.Time
	window   time.Duration // Slack × the request's effective target
	coarsest time.Duration // the model ladder's bottom rung (0.5×default)
	demoted  bool          // downgraded over-deadline at dequeue
	picked   bool          // queue-wait recorded (failed batches retry through execSingle)
	enqueued time.Time
	done     chan outcome
}

type outcome struct {
	res Result
	err error
}

type modelQueue struct {
	jobs    chan *job
	stats   *modelStats
	started bool // workers spawned (deferred to the first real enqueue)
}

// Scheduler multiplexes task-typed requests across a Backend with
// per-model bounded queues, deadlines and worker pools. Create with
// New, submit with Submit (or the deprecated classify-only Do),
// observe with Snapshot, stop with Close.
type Scheduler struct {
	backend Backend
	// elastic, reporter, stepLoops, arrivals and predicts are the
	// backend's optional replica/step-loop/predictor surfaces, resolved
	// once at construction.
	elastic   Elastic
	reporter  ReplicaReporter
	stepLoops StepLoopReporter
	arrivals  ArrivalObserver
	predicts  PredictReporter
	opts      Options
	start     time.Time

	// genSlots is the scheduler-wide generate concurrency gate: one
	// token per in-flight stream, acquired by the worker before the
	// stream leaves it for the backend's step loop.
	genSlots chan struct{}

	// draining flags graceful shutdown in progress: admission and
	// execution continue unchanged (in-flight work must finish), but
	// Snapshot and the HTTP health surface report it so a cluster
	// router stops routing here before the listener closes.
	draining atomic.Bool

	mu     sync.Mutex
	queues map[string]*modelQueue
	closed bool
	wg     sync.WaitGroup
	stop   chan struct{} // closes the idle-pressure ticker; nil without an elastic backend
}

// SetDraining marks (or clears) the scheduler's graceful-shutdown
// state. It changes no scheduling behavior — queued and in-flight work
// still completes — it only flips what Draining and Snapshot report.
func (s *Scheduler) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether graceful shutdown has begun.
func (s *Scheduler) Draining() bool { return s.draining.Load() }

// idlePressureInterval paces the background pressure ticker: without
// it an elastic backend would only observe queue depth on traffic
// events, so a pool scaled up during a burst could never drain once
// traffic stops entirely (workers park on the queue and emit nothing).
const idlePressureInterval = 250 * time.Millisecond

// New starts a scheduler over a backend. Queues and workers for each
// model spin up lazily on its first request, so models added to the
// fleet later are picked up without restarting the scheduler.
func New(backend Backend, opts Options) *Scheduler {
	s := &Scheduler{
		backend: backend,
		opts:    opts.withDefaults(),
		start:   time.Now(),
		queues:  make(map[string]*modelQueue),
	}
	s.genSlots = make(chan struct{}, s.opts.MaxStreams)
	s.elastic, _ = backend.(Elastic)
	s.reporter, _ = backend.(ReplicaReporter)
	s.stepLoops, _ = backend.(StepLoopReporter)
	s.arrivals, _ = backend.(ArrivalObserver)
	s.predicts, _ = backend.(PredictReporter)
	if s.elastic != nil {
		s.stop = make(chan struct{})
		s.wg.Add(1)
		go s.idlePressure()
	}
	return s
}

// idlePressure periodically reports every known queue's depth to the
// elastic backend, so sustained idleness is observed (and surplus
// replicas drained, their preload bytes reclaimed) even when no
// traffic events arrive at all.
func (s *Scheduler) idlePressure() {
	defer s.wg.Done()
	ticker := time.NewTicker(idlePressureInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.mu.Lock()
		models := make([]string, 0, len(s.queues))
		queues := make([]*modelQueue, 0, len(s.queues))
		for m, q := range s.queues {
			models = append(models, m)
			queues = append(queues, q)
		}
		s.mu.Unlock()
		for i := range models {
			s.pressure(models[i], queues[i])
		}
	}
}

// pressure feeds one queue observation to an elastic backend, which
// may scale the model's replica pool in the background.
func (s *Scheduler) pressure(model string, q *modelQueue) {
	if s.elastic != nil {
		s.elastic.Pressure(model, len(q.jobs), cap(q.jobs))
	}
}

// congested reports whether a queue's depth is at or past the
// high-water mark — the point where the scheduler starts trading
// fidelity (tier downgrades) for availability.
func (s *Scheduler) congested(q *modelQueue) bool {
	return float64(len(q.jobs)) >= s.opts.HighWater*float64(cap(q.jobs))
}

// Submit admits one task-typed request for a model and blocks until it
// completes, is shed, or ctx is done. The request's deadline is
// admission time + Slack×(its TargetLatency, or the model's default
// target), tightened by any earlier ctx deadline; generate requests
// keep checking it per decoded token. Requests with Priority < 0 are
// best-effort: past the queue's high-water mark they are downgraded to
// a coarser plan tier — served degraded instead of shed — and only a
// full queue sheds them like everyone else.
func (s *Scheduler) Submit(ctx context.Context, model string, req pipeline.Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	target, ok := s.backend.Target(model)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	// Canonicalize the SLO once at admission: fill in the model
	// default and snap to the plan-cache grid, so the deadline window,
	// the batch grouping below and the backend's tier resolution all
	// agree on one effective target (and the backend is consulted
	// exactly once).
	if req.TargetLatency <= 0 {
		req.TargetLatency = target
	}
	req.TargetLatency = planner.TierKey(req.TargetLatency)
	window := time.Duration(s.opts.Slack * float64(req.TargetLatency))
	now := time.Now()
	deadline := now.Add(window)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	// The closed check must precede any queue creation: a submit racing
	// Close would otherwise insert a brand-new queue whose channel Close
	// already missed — leaking it unclosed and recording stats on a
	// closed scheduler.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	q := s.queueLocked(model)
	if !deadline.After(now) {
		s.mu.Unlock()
		q.stats.deadlineMiss()
		return nil, fmt.Errorf("%w: model %q", ErrDeadline, model)
	}
	if req.Priority < 0 && !req.Downgraded && s.congested(q) {
		// Congestion: demote best-effort traffic to a coarser tier
		// instead of shedding it — the tighter-target plan executes
		// faster, so the queue drains harder while the caller still
		// gets an answer (flagged Downgraded in the response's tier).
		req.Downgraded = true
	}

	j := &job{
		ctx: ctx, req: req,
		deadline: deadline, window: window,
		coarsest: planner.Ladder(target)[0],
		enqueued: now,
		done:     make(chan outcome, 1),
	}
	select {
	case q.jobs <- j:
		if !q.started {
			q.started = true
			for i := 0; i < s.opts.Workers; i++ {
				s.wg.Add(1)
				go s.worker(model, q)
			}
		}
		s.mu.Unlock()
		// Every admission is a pressure observation: an elastic backend
		// scales the model's replica pool up when the queue crosses its
		// high-water mark.
		s.pressure(model, q)
		// And an arrival observation: the predictive subsystem trains
		// its per-(model, SLO-class) rate EWMAs on the admission stream
		// (req.TargetLatency is already canonicalized above).
		if s.arrivals != nil {
			s.arrivals.ObserveArrival(model, req.TargetLatency, len(q.jobs), cap(q.jobs))
		}
	default:
		s.mu.Unlock()
		q.stats.shed()
		return nil, fmt.Errorf("%w: model %q depth %d", ErrQueueFull, model, s.opts.QueueDepth)
	}

	select {
	case out := <-j.done:
		return &out.res, out.err
	case <-ctx.Done():
		// The worker will notice ctx and drop the job; don't wait.
		return nil, ctx.Err()
	}
}

// Do submits one classify request and blocks until it completes.
//
// Deprecated: Do is the positional classify-only API; use Submit with
// a task-typed pipeline.Request.
func (s *Scheduler) Do(ctx context.Context, model string, tokens []int, mask []bool) (*Result, error) {
	return s.Submit(ctx, model, pipeline.Request{Task: pipeline.TaskClassify, Tokens: tokens, Mask: mask})
}

// queueLocked returns the model's queue, creating it on first use.
// s.mu must be held and s.closed checked by the caller. Worker
// goroutines spin up only when a job is actually enqueued, so requests
// rejected at admission (expired deadlines, probes for odd model
// names) don't leave idle worker pools behind.
func (s *Scheduler) queueLocked(model string) *modelQueue {
	if q, ok := s.queues[model]; ok {
		return q
	}
	q := &modelQueue{
		jobs:  make(chan *job, s.opts.QueueDepth),
		stats: newModelStats(model, s.opts.Window, s.opts.Obs.Registry()),
	}
	if reg := s.opts.Obs.Registry(); reg != nil {
		jobs := q.jobs
		reg.NewGaugeFunc("sti_queue_depth", "Queued requests awaiting a worker.",
			obs.Labels{"model": model}, func() float64 { return float64(len(jobs)) })
	}
	s.queues[model] = q
	return q
}

// batchKey partitions drained classify jobs by SLO class — the
// canonicalized target plus downgrade state. A shared execution
// stream runs on ONE plan, so batching a tight-SLO job with relaxed
// ones would either blow the tight SLO or silently strip the relaxed
// jobs' fidelity down to the tightest member. The key is a
// conservative proxy for the tier the backend will resolve: distinct
// SLO values that happen to land on the same tier run as separate
// batches (correct, just unamortized) — resolving tiers here would
// couple the scheduler to the fleet's ladder.
type batchKey struct {
	target     time.Duration
	downgraded bool
}

// worker drains one model's queue until the queue closes. A generate
// job is dispatched immediately onto the backend's continuous-batching
// step loop — holding it back for a batch window would only delay its
// first token, and holding the worker for its whole decode would cap
// concurrent streams at the worker count. A classify job accumulates
// up to MaxBatch queued jobs (waiting at most BatchWindow after the
// first), partitions them by plan tier, and serves each tier group
// with one batched backend call — one IO/decompress stream per group;
// any generate jobs the accumulator happened to drain dispatch the
// same way right after the batches.
func (s *Scheduler) worker(model string, q *modelQueue) {
	defer s.wg.Done()
	for j := range q.jobs {
		if j.req.Task == pipeline.TaskGenerate {
			s.dispatchGenerate(model, q, j)
			continue
		}
		batch := []*job{j}
		if s.opts.MaxBatch > 1 {
			asmStart := time.Now()
			batch = append(batch, s.accumulate(q)...)
			if len(batch) > 1 {
				asmEnd := time.Now()
				for _, b := range batch {
					if tr := obs.FromContext(b.ctx); tr != nil {
						tr.Interval(tr.Root(), obs.SpanAssemble, "", asmStart, asmEnd)
					}
				}
			}
		}
		groups := make(map[batchKey][]*job)
		var order []batchKey
		var generate []*job
		for _, b := range batch {
			if b.req.Task == pipeline.TaskGenerate {
				generate = append(generate, b)
				continue
			}
			k := batchKey{target: b.req.TargetLatency, downgraded: b.req.Downgraded}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], b)
		}
		for _, k := range order {
			s.runBatch(model, q, groups[k])
		}
		for _, g := range generate {
			s.dispatchGenerate(model, q, g)
		}
		// Every drain is a pressure observation too: it is how an
		// elastic backend sees the queue go (and stay) idle and drains
		// surplus replicas, reclaiming their preload bytes.
		s.pressure(model, q)
	}
}

// accumulate drains up to MaxBatch-1 more jobs from the queue, waiting
// at most BatchWindow for stragglers. It returns early if the queue
// closes.
func (s *Scheduler) accumulate(q *modelQueue) []*job {
	var more []*job
	timer := time.NewTimer(s.opts.BatchWindow)
	defer timer.Stop()
	for len(more) < s.opts.MaxBatch-1 {
		select {
		case j, ok := <-q.jobs:
			if !ok {
				return more
			}
			more = append(more, j)
		case <-timer.C:
			return more
		}
	}
	return more
}

// dispatchGenerate moves a generate job off the worker onto its own
// goroutine: the job's decode rides the backend's step loop for many
// steps, and the worker must stay free to batch classify traffic
// meanwhile. genSlots bounds the in-flight streams scheduler-wide
// (Options.MaxStreams); at the cap the worker blocks here, so
// backpressure propagates through the bounded admission queue instead
// of spawning unbounded decodes. Dead work sheds before the slot wait:
// the job's context and deadline are checked first, so at the cap a
// queue of already-cancelled or expired generate jobs drains instantly
// instead of serializing through the semaphore one slot-release at a
// time ahead of live classify traffic — and a cancellation while
// blocked releases the worker too.
func (s *Scheduler) dispatchGenerate(model string, q *modelQueue, j *job) {
	if !s.admit(model, q, j, time.Now()) {
		return
	}
	select {
	case s.genSlots <- struct{}{}:
	case <-j.ctx.Done():
		// Caller gone while waiting for a stream slot; nothing is
		// waiting on done (the cancellation-while-queued contract).
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer func() { <-s.genSlots }()
		s.runSingle(model, q, j)
		// A finished stream is capacity coming back; let an elastic
		// backend observe the queue it can now drain into.
		s.pressure(model, q)
	}()
}

// admit checks a drained job's context and deadline at execution time:
// an expired job sheds alone, never dragging its batchmates — unless
// the queue is congested and the job was not already demoted, in which
// case it is downgraded to a coarser tier with a fresh (halved)
// deadline window: under pressure the scheduler degrades fidelity
// before it sheds work it already queued. It reports whether the job
// is still worth executing.
func (s *Scheduler) admit(model string, q *modelQueue, j *job, now time.Time) bool {
	if j.ctx.Err() != nil {
		// Caller already gone; nothing is waiting on done. The job must
		// not execute — this is the cancellation-while-queued contract.
		return false
	}
	if now.After(j.deadline) {
		// Demotion must actually buy a faster plan: a request already
		// at (or below) the ladder's bottom rung has no coarser tier
		// to land on, so "downgrading" it would just serve it past its
		// deadline at full fidelity — it sheds like before.
		if !j.req.Downgraded && s.congested(q) && j.req.TargetLatency > j.coarsest {
			j.req.Downgraded = true
			j.demoted = true
			j.deadline = now.Add(j.window / 2)
			return true
		}
		q.stats.deadlineMiss()
		j.done <- outcome{err: fmt.Errorf("%w: model %q queued %v", ErrDeadline, model, now.Sub(j.enqueued).Round(time.Millisecond))}
		return false
	}
	return true
}

// runBatch filters a drained classify batch through admit, serves the
// survivors with one backend call and demuxes results to each done
// channel.
func (s *Scheduler) runBatch(model string, q *modelQueue, batch []*job) {
	now := time.Now()
	live := batch[:0]
	for _, j := range batch {
		if s.admit(model, q, j, now) {
			live = append(live, j)
		}
	}
	if len(live) == 0 {
		return
	}
	// admit may have demoted over-deadline members to a coarser tier;
	// run them apart so they don't drag their batchmates down with
	// them (a batch executes on one plan — its tightest member's).
	var normal, demoted []*job
	for _, j := range live {
		if j.req.Downgraded {
			demoted = append(demoted, j)
		} else {
			normal = append(normal, j)
		}
	}
	if len(normal) > 0 && len(demoted) > 0 {
		s.executeBatch(model, q, normal, now)
		s.executeBatch(model, q, demoted, now)
		return
	}
	s.executeBatch(model, q, live, now)
}

// notePickup records a job's queue wait — the stats histogram and the
// trace span — exactly once, no matter how many retry hops the job
// makes between the batched and single paths.
func (s *Scheduler) notePickup(q *modelQueue, j *job, pickup time.Time) {
	if j.picked {
		return
	}
	j.picked = true
	q.stats.queued(pickup.Sub(j.enqueued))
	if tr := obs.FromContext(j.ctx); tr != nil {
		tr.Interval(tr.Root(), obs.SpanQueueWait, "", j.enqueued, pickup)
	}
}

// executeBatch serves one tier-consistent batch of admitted jobs.
func (s *Scheduler) executeBatch(model string, q *modelQueue, live []*job, now time.Time) {
	if len(live) == 1 {
		s.execSingle(model, q, live[0])
		return
	}

	for _, j := range live {
		s.notePickup(q, j, now)
	}
	execSpans := make([]obs.SpanID, len(live))
	for i, j := range live {
		tr := obs.FromContext(j.ctx)
		execSpans[i] = tr.Begin(tr.Root(), obs.SpanExecute, "batch")
	}
	resps, stats, err := s.serveBatch(model, live)
	for i, j := range live {
		obs.FromContext(j.ctx).EndSpan(execSpans[i])
	}
	if err != nil {
		// One poisoned request must fail alone, not take down its
		// batchmates: retry each job unbatched.
		for _, j := range live {
			s.runBatch(model, q, []*job{j})
		}
		return
	}
	q.stats.executed(len(live), stats.BytesRead)
	for i, j := range live {
		total := time.Since(j.enqueued)
		q.stats.completed(total)
		q.stats.servedTier(resps[i].Tier)
		// An over-deadline job was admitted on the promise of a coarser
		// tier; if the backend had no rung to demote to, the job was in
		// fact served past its deadline — account for it.
		if j.demoted && (resps[i].Tier == nil || !resps[i].Tier.Downgraded) {
			q.stats.deadlineMiss()
		}
		j.done <- outcome{res: Result{
			Logits: resps[i].Logits, Stats: &stats.ExecStats, Batch: stats.Batch,
			Tier:   resps[i].Tier,
			Queued: now.Sub(j.enqueued), Total: total,
		}}
	}
}

// runSingle checks one job's context and deadline, then executes it
// alone.
func (s *Scheduler) runSingle(model string, q *modelQueue, j *job) {
	if !s.admit(model, q, j, time.Now()) {
		return
	}
	s.execSingle(model, q, j)
}

// execSingle runs one already-admitted job and reports its outcome.
// Every single job executes under the caller's context, so a client
// that goes away stops the shard stream mid-flight. Only generate
// additionally carries the job's deadline into the execution (the
// decode loop re-checks it per token): a classify that was admitted in
// time runs to completion exactly as the batched path and the pre-v2
// API did — deadlines gate admission, not an execution already paid
// for.
func (s *Scheduler) execSingle(model string, q *modelQueue, j *job) {
	pickup := time.Now()
	s.notePickup(q, j, pickup)
	ctx, cancel := j.ctx, context.CancelFunc(func() {})
	if j.req.Task == pipeline.TaskGenerate {
		ctx, cancel = context.WithDeadline(j.ctx, j.deadline)
	}
	tr := obs.FromContext(j.ctx)
	ex := tr.Begin(tr.Root(), obs.SpanExecute, "")
	resp, err := s.serveOne(ctx, model, j)
	tr.EndSpan(ex)
	cancel()

	var bytes int64
	var res Result
	if resp != nil {
		if resp.Stats != nil {
			bytes = resp.Stats.BytesRead
		}
		res = Result{
			Logits: resp.Logits, GeneratedTokens: resp.GeneratedTokens,
			Gen: resp.Gen, Stats: resp.Stats, Batch: 1, Tier: resp.Tier,
			Queued: pickup.Sub(j.enqueued), Total: time.Since(j.enqueued),
		}
		if resp.Gen != nil {
			q.stats.generated(resp.Gen.NewTokens)
		}
	}

	switch {
	case err == nil:
		q.stats.executed(1, bytes)
		q.stats.completed(res.Total)
		q.stats.servedTier(res.Tier)
		// A dequeue demotion that found no coarser rung at the backend
		// means the job was served past its deadline — account for it.
		if j.demoted && (res.Tier == nil || !res.Tier.Downgraded) {
			q.stats.deadlineMiss()
		}
		j.done <- outcome{res: res}
	case errors.Is(err, context.Canceled) && j.ctx.Err() != nil:
		// Client went away mid-execution; nothing is waiting on done.
		q.stats.executed(1, bytes)
	case errors.Is(err, context.DeadlineExceeded):
		// The job's own deadline stopped the execution (generate checks
		// it per token). Partial decode results ride along — streaming
		// callers already observed the tokens via OnToken.
		q.stats.executed(1, bytes)
		q.stats.deadlineMiss()
		j.done <- outcome{res: res, err: fmt.Errorf("%w: model %q stopped at deadline", ErrDeadline, model)}
	default:
		q.stats.failed()
		j.done <- outcome{err: err}
	}
}

// serveOne shields the worker from a panicking backend: one poisoned
// request must fail alone, not take down every model's workers.
func (s *Scheduler) serveOne(ctx context.Context, model string, j *job) (resp *pipeline.Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("serve: model %q panicked: %v", model, r)
		}
	}()
	return s.backend.Serve(ctx, model, j.req)
}

// serveBatch shields the worker from a panicking backend and validates
// the response shape. Batches execute under the background context: a
// shared stream serves several clients, so no single client's
// cancellation may abort it (each job's ctx was checked at admission).
func (s *Scheduler) serveBatch(model string, live []*job) (resps []*pipeline.Response, stats *pipeline.BatchStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			resps, stats, err = nil, nil, fmt.Errorf("serve: model %q panicked: %v", model, r)
		}
	}()
	reqs := make([]pipeline.Request, len(live))
	for i, j := range live {
		reqs[i] = j.req
	}
	rs, bs, err := s.backend.ServeBatch(context.Background(), model, reqs)
	if err != nil {
		return nil, nil, err
	}
	if bs == nil {
		bs = &pipeline.BatchStats{Batch: len(live)}
	}
	if len(rs) != len(live) {
		return nil, nil, fmt.Errorf("serve: model %q returned %d results for %d requests", model, len(rs), len(live))
	}
	return rs, bs, nil
}

// Close stops admission, drains queued requests and waits for workers
// to exit. Requests still queued are served (or shed by their
// deadlines) before Close returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q.jobs)
	}
	s.mu.Unlock()
	if s.stop != nil {
		close(s.stop)
	}
	s.wg.Wait()
}
