// Package serve is the concurrent request-serving layer over a fleet
// of planned STI pipelines. The paper plans one engagement at a time
// (§3.2–3.3); serve turns that single-engagement machinery into a
// multi-tenant scheduler that admits many simultaneous inference
// requests against per-model deadlines.
//
// Each managed model gets a bounded admission queue and a small pool
// of worker goroutines. A request's deadline derives from the model's
// planned latency target: the planner already promised target-latency
// execution, so a request queued longer than a few targets can never
// be served usefully and is shed instead of dragging the whole queue
// past its deadlines (load shedding at admission keeps tail latency
// bounded — the queue rejects rather than grows).
//
// The scheduler never touches plans itself: replanning (budget or
// membership changes) happens on the backend fleet, whose RWMutex
// quiesces in-flight inference. Workers simply observe the new plan on
// their next request.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sti/internal/pipeline"
)

// Typed admission-control errors. HTTP frontends map these to status
// codes (503 for shedding, 504 for blown deadlines, 404 for unknown
// models); programmatic callers test with errors.Is.
var (
	// ErrQueueFull reports load shedding: the model's bounded
	// admission queue was full at submit time.
	ErrQueueFull = errors.New("serve: queue full, request shed")
	// ErrDeadline reports that the request's deadline expired before a
	// worker could start it (or was already expired at submit).
	ErrDeadline = errors.New("serve: deadline exceeded before execution")
	// ErrUnknownModel reports a request for a model the backend does
	// not manage.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrClosed reports a submit to a scheduler after Close.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Backend is the fleet surface the scheduler drives. *sti.Fleet
// implements it; tests substitute stubs.
type Backend interface {
	// Names lists managed models in a stable order.
	Names() []string
	// Target returns the planned latency target of a managed model.
	Target(name string) (time.Duration, bool)
	// Infer runs one pipelined inference; it must be safe for
	// concurrent use.
	Infer(name string, tokens []int, mask []bool) ([]float32, *pipeline.ExecStats, error)
}

// Options tunes the scheduler.
type Options struct {
	// QueueDepth bounds each model's admission queue; submits beyond
	// it shed with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the number of worker goroutines per model. Default 2.
	Workers int
	// Slack scales a model's latency target into its queue deadline:
	// a request older than Slack×target at dequeue is dropped with
	// ErrDeadline. Default 4.
	Slack float64
	// Window is how many recent request latencies each model keeps
	// for the p50/p95 snapshot. Default 512.
	Window int
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Slack <= 0 {
		o.Slack = 4
	}
	if o.Window <= 0 {
		o.Window = 512
	}
	return o
}

// Result is the outcome of one scheduled inference.
type Result struct {
	Logits []float32
	Stats  *pipeline.ExecStats

	Queued time.Duration // admission → worker pickup
	Total  time.Duration // admission → completion
}

type job struct {
	ctx      context.Context
	tokens   []int
	mask     []bool
	deadline time.Time
	enqueued time.Time
	done     chan outcome
}

type outcome struct {
	res Result
	err error
}

type modelQueue struct {
	jobs    chan *job
	stats   *modelStats
	started bool // workers spawned (deferred to the first real enqueue)
}

// Scheduler multiplexes inference requests across a Backend with
// per-model bounded queues, deadlines and worker pools. Create with
// New, submit with Do, observe with Snapshot, stop with Close.
type Scheduler struct {
	backend Backend
	opts    Options
	start   time.Time

	mu     sync.Mutex
	queues map[string]*modelQueue
	closed bool
	wg     sync.WaitGroup
}

// New starts a scheduler over a backend. Queues and workers for each
// model spin up lazily on its first request, so models added to the
// fleet later are picked up without restarting the scheduler.
func New(backend Backend, opts Options) *Scheduler {
	return &Scheduler{
		backend: backend,
		opts:    opts.withDefaults(),
		start:   time.Now(),
		queues:  make(map[string]*modelQueue),
	}
}

// Do submits one inference request for a model and blocks until it
// completes, is shed, or ctx is done. The request's deadline is
// admission time + Slack×(model target), tightened by any earlier ctx
// deadline.
func (s *Scheduler) Do(ctx context.Context, model string, tokens []int, mask []bool) (*Result, error) {
	target, ok := s.backend.Target(model)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	now := time.Now()
	deadline := now.Add(time.Duration(s.opts.Slack * float64(target)))
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if !deadline.After(now) {
		s.queue(model).stats.deadlineMiss()
		return nil, fmt.Errorf("%w: model %q", ErrDeadline, model)
	}

	j := &job{
		ctx: ctx, tokens: tokens, mask: mask,
		deadline: deadline, enqueued: now,
		done: make(chan outcome, 1),
	}
	q := s.queue(model)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	select {
	case q.jobs <- j:
		if !q.started {
			q.started = true
			for i := 0; i < s.opts.Workers; i++ {
				s.wg.Add(1)
				go s.worker(model, q)
			}
		}
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		q.stats.shed()
		return nil, fmt.Errorf("%w: model %q depth %d", ErrQueueFull, model, s.opts.QueueDepth)
	}

	select {
	case out := <-j.done:
		return &out.res, out.err
	case <-ctx.Done():
		// The worker will notice ctx and drop the job; don't wait.
		return nil, ctx.Err()
	}
}

// queue returns the model's queue, creating it on first use. Worker
// goroutines spin up only when a job is actually enqueued, so requests
// rejected at admission (expired deadlines, probes for odd model
// names) don't leave idle worker pools behind.
func (s *Scheduler) queue(model string) *modelQueue {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[model]; ok {
		return q
	}
	q := &modelQueue{
		jobs:  make(chan *job, s.opts.QueueDepth),
		stats: newModelStats(model, s.opts.Window),
	}
	s.queues[model] = q
	return q
}

// worker drains one model's queue until the queue closes.
func (s *Scheduler) worker(model string, q *modelQueue) {
	defer s.wg.Done()
	for j := range q.jobs {
		now := time.Now()
		if j.ctx.Err() != nil {
			// Caller already gone; nothing is waiting on done.
			continue
		}
		if now.After(j.deadline) {
			q.stats.deadlineMiss()
			j.done <- outcome{err: fmt.Errorf("%w: model %q queued %v", ErrDeadline, model, now.Sub(j.enqueued).Round(time.Millisecond))}
			continue
		}
		logits, stats, err := s.infer(model, j)
		total := time.Since(j.enqueued)
		if err != nil {
			q.stats.failed()
			j.done <- outcome{err: err}
			continue
		}
		q.stats.completed(total)
		j.done <- outcome{res: Result{
			Logits: logits, Stats: stats,
			Queued: now.Sub(j.enqueued), Total: total,
		}}
	}
}

// infer shields the worker from a panicking backend: one poisoned
// request must fail alone, not take down every model's workers.
func (s *Scheduler) infer(model string, j *job) (logits []float32, stats *pipeline.ExecStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("serve: model %q panicked: %v", model, r)
		}
	}()
	return s.backend.Infer(model, j.tokens, j.mask)
}

// Close stops admission, drains queued requests and waits for workers
// to exit. Requests still queued are served (or shed by their
// deadlines) before Close returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
