// Package serve is the concurrent request-serving layer over a fleet
// of planned STI pipelines. The paper plans one engagement at a time
// (§3.2–3.3); serve turns that single-engagement machinery into a
// multi-tenant scheduler that admits many simultaneous inference
// requests against per-model deadlines.
//
// Each managed model gets a bounded admission queue and a small pool
// of worker goroutines. A request's deadline derives from the model's
// planned latency target: the planner already promised target-latency
// execution, so a request queued longer than a few targets can never
// be served usefully and is shed instead of dragging the whole queue
// past its deadlines (load shedding at admission keeps tail latency
// bounded — the queue rejects rather than grows).
//
// The scheduler never touches plans itself: replanning (budget or
// membership changes) happens on the backend fleet, whose RWMutex
// quiesces in-flight inference. Workers simply observe the new plan on
// their next request.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sti/internal/pipeline"
)

// Typed admission-control errors. HTTP frontends map these to status
// codes (503 for shedding, 504 for blown deadlines, 404 for unknown
// models); programmatic callers test with errors.Is.
var (
	// ErrQueueFull reports load shedding: the model's bounded
	// admission queue was full at submit time.
	ErrQueueFull = errors.New("serve: queue full, request shed")
	// ErrDeadline reports that the request's deadline expired before a
	// worker could start it (or was already expired at submit).
	ErrDeadline = errors.New("serve: deadline exceeded before execution")
	// ErrUnknownModel reports a request for a model the backend does
	// not manage.
	ErrUnknownModel = errors.New("serve: unknown model")
	// ErrClosed reports a submit to a scheduler after Close.
	ErrClosed = errors.New("serve: scheduler closed")
)

// Backend is the fleet surface the scheduler drives. *sti.Fleet
// implements it; tests substitute stubs.
type Backend interface {
	// Names lists managed models in a stable order.
	Names() []string
	// Target returns the planned latency target of a managed model.
	Target(name string) (time.Duration, bool)
	// Infer runs one pipelined inference; it must be safe for
	// concurrent use.
	Infer(name string, tokens []int, mask []bool) ([]float32, *pipeline.ExecStats, error)
	// InferBatch runs one batched inference whose single IO/decompress
	// stream serves every input; it must be safe for concurrent use.
	InferBatch(name string, inputs []pipeline.BatchInput) ([][]float32, *pipeline.BatchStats, error)
}

// Options tunes the scheduler.
type Options struct {
	// QueueDepth bounds each model's admission queue; submits beyond
	// it shed with ErrQueueFull. Default 64.
	QueueDepth int
	// Workers is the number of worker goroutines per model. Default 2.
	Workers int
	// Slack scales a model's latency target into its queue deadline:
	// a request older than Slack×target at dequeue is dropped with
	// ErrDeadline. Default 4.
	Slack float64
	// Window is how many recent request latencies each model keeps
	// for the p50/p95 snapshot. Default 512.
	Window int
	// MaxBatch is how many queued jobs a worker may drain into one
	// batched backend call, amortizing the model's IO/decompress
	// stream across them. 1 disables batching. Default 1.
	MaxBatch int
	// BatchWindow is how long a worker holding one job waits for more
	// to accumulate before executing (only when MaxBatch > 1).
	// Default 2ms.
	BatchWindow time.Duration
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Slack <= 0 {
		o.Slack = 4
	}
	if o.Window <= 0 {
		o.Window = 512
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	return o
}

// Result is the outcome of one scheduled inference.
type Result struct {
	Logits []float32
	// Stats describes the execution stream that served this request.
	// For a batched request the stream is shared: BytesRead/CacheHits
	// are the whole batch's, so this request's amortized IO is
	// BytesRead/Batch.
	Stats *pipeline.ExecStats
	// Batch is how many requests shared the execution stream (1 for an
	// unbatched request).
	Batch int

	Queued time.Duration // admission → worker pickup
	Total  time.Duration // admission → completion
}

type job struct {
	ctx      context.Context
	tokens   []int
	mask     []bool
	deadline time.Time
	enqueued time.Time
	done     chan outcome
}

type outcome struct {
	res Result
	err error
}

type modelQueue struct {
	jobs    chan *job
	stats   *modelStats
	started bool // workers spawned (deferred to the first real enqueue)
}

// Scheduler multiplexes inference requests across a Backend with
// per-model bounded queues, deadlines and worker pools. Create with
// New, submit with Do, observe with Snapshot, stop with Close.
type Scheduler struct {
	backend Backend
	opts    Options
	start   time.Time

	mu     sync.Mutex
	queues map[string]*modelQueue
	closed bool
	wg     sync.WaitGroup
}

// New starts a scheduler over a backend. Queues and workers for each
// model spin up lazily on its first request, so models added to the
// fleet later are picked up without restarting the scheduler.
func New(backend Backend, opts Options) *Scheduler {
	return &Scheduler{
		backend: backend,
		opts:    opts.withDefaults(),
		start:   time.Now(),
		queues:  make(map[string]*modelQueue),
	}
}

// Do submits one inference request for a model and blocks until it
// completes, is shed, or ctx is done. The request's deadline is
// admission time + Slack×(model target), tightened by any earlier ctx
// deadline.
func (s *Scheduler) Do(ctx context.Context, model string, tokens []int, mask []bool) (*Result, error) {
	target, ok := s.backend.Target(model)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	now := time.Now()
	deadline := now.Add(time.Duration(s.opts.Slack * float64(target)))
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}

	// The closed check must precede any queue creation: a submit racing
	// Close would otherwise insert a brand-new queue whose channel Close
	// already missed — leaking it unclosed and recording stats on a
	// closed scheduler.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	q := s.queueLocked(model)
	if !deadline.After(now) {
		s.mu.Unlock()
		q.stats.deadlineMiss()
		return nil, fmt.Errorf("%w: model %q", ErrDeadline, model)
	}

	j := &job{
		ctx: ctx, tokens: tokens, mask: mask,
		deadline: deadline, enqueued: now,
		done: make(chan outcome, 1),
	}
	select {
	case q.jobs <- j:
		if !q.started {
			q.started = true
			for i := 0; i < s.opts.Workers; i++ {
				s.wg.Add(1)
				go s.worker(model, q)
			}
		}
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		q.stats.shed()
		return nil, fmt.Errorf("%w: model %q depth %d", ErrQueueFull, model, s.opts.QueueDepth)
	}

	select {
	case out := <-j.done:
		return &out.res, out.err
	case <-ctx.Done():
		// The worker will notice ctx and drop the job; don't wait.
		return nil, ctx.Err()
	}
}

// queueLocked returns the model's queue, creating it on first use.
// s.mu must be held and s.closed checked by the caller. Worker
// goroutines spin up only when a job is actually enqueued, so requests
// rejected at admission (expired deadlines, probes for odd model
// names) don't leave idle worker pools behind.
func (s *Scheduler) queueLocked(model string) *modelQueue {
	if q, ok := s.queues[model]; ok {
		return q
	}
	q := &modelQueue{
		jobs:  make(chan *job, s.opts.QueueDepth),
		stats: newModelStats(model, s.opts.Window),
	}
	s.queues[model] = q
	return q
}

// worker drains one model's queue until the queue closes. With
// MaxBatch > 1 it accumulates up to MaxBatch queued jobs (waiting at
// most BatchWindow after the first) and serves them with one batched
// backend call — one IO/decompress stream for the whole batch.
func (s *Scheduler) worker(model string, q *modelQueue) {
	defer s.wg.Done()
	for j := range q.jobs {
		batch := []*job{j}
		if s.opts.MaxBatch > 1 {
			batch = append(batch, s.accumulate(q)...)
		}
		s.runBatch(model, q, batch)
	}
}

// accumulate drains up to MaxBatch-1 more jobs from the queue, waiting
// at most BatchWindow for stragglers. It returns early if the queue
// closes.
func (s *Scheduler) accumulate(q *modelQueue) []*job {
	var more []*job
	timer := time.NewTimer(s.opts.BatchWindow)
	defer timer.Stop()
	for len(more) < s.opts.MaxBatch-1 {
		select {
		case j, ok := <-q.jobs:
			if !ok {
				return more
			}
			more = append(more, j)
		case <-timer.C:
			return more
		}
	}
	return more
}

// runBatch checks each drained job's context and deadline — an expired
// job sheds alone, never dragging its batchmates — then serves the
// survivors with one backend call and demuxes results to each done
// channel.
func (s *Scheduler) runBatch(model string, q *modelQueue, batch []*job) {
	now := time.Now()
	live := batch[:0]
	for _, j := range batch {
		if j.ctx.Err() != nil {
			// Caller already gone; nothing is waiting on done.
			continue
		}
		if now.After(j.deadline) {
			q.stats.deadlineMiss()
			j.done <- outcome{err: fmt.Errorf("%w: model %q queued %v", ErrDeadline, model, now.Sub(j.enqueued).Round(time.Millisecond))}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}

	logits, stats, err := s.inferBatch(model, live)
	if err != nil {
		if len(live) > 1 {
			// One poisoned request must fail alone, not take down its
			// batchmates: retry each job unbatched.
			for _, j := range live {
				s.runBatch(model, q, []*job{j})
			}
			return
		}
		q.stats.failed()
		live[0].done <- outcome{err: err}
		return
	}
	q.stats.executed(len(live), stats.BytesRead)
	for i, j := range live {
		total := time.Since(j.enqueued)
		q.stats.completed(total)
		j.done <- outcome{res: Result{
			Logits: logits[i], Stats: &stats.ExecStats, Batch: stats.Batch,
			Queued: now.Sub(j.enqueued), Total: total,
		}}
	}
}

// inferBatch shields the worker from a panicking backend: one poisoned
// batch must fail alone, not take down every model's workers. A
// single-job batch uses the plain Infer path.
func (s *Scheduler) inferBatch(model string, live []*job) (logits [][]float32, stats *pipeline.BatchStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			logits, stats, err = nil, nil, fmt.Errorf("serve: model %q panicked: %v", model, r)
		}
	}()
	if len(live) == 1 {
		l, st, err := s.backend.Infer(model, live[0].tokens, live[0].mask)
		if err != nil {
			return nil, nil, err
		}
		bs := &pipeline.BatchStats{Batch: 1}
		if st != nil {
			bs.ExecStats = *st
		}
		return [][]float32{l}, bs, nil
	}
	inputs := make([]pipeline.BatchInput, len(live))
	for i, j := range live {
		inputs[i] = pipeline.BatchInput{Tokens: j.tokens, Mask: j.mask}
	}
	ls, bs, err := s.backend.InferBatch(model, inputs)
	if err != nil {
		return nil, nil, err
	}
	if bs == nil {
		bs = &pipeline.BatchStats{Batch: len(live)}
	}
	if len(ls) != len(live) {
		return nil, nil, fmt.Errorf("serve: model %q returned %d results for %d inputs", model, len(ls), len(live))
	}
	return ls, bs, nil
}

// Close stops admission, drains queued requests and waits for workers
// to exit. Requests still queued are served (or shed by their
// deadlines) before Close returns.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, q := range s.queues {
		close(q.jobs)
	}
	s.mu.Unlock()
	s.wg.Wait()
}
