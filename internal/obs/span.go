package obs

import (
	"context"
	"encoding/hex"
	"strings"
	"sync/atomic"
	"time"
)

// Span taxonomy names. Each layer of the serving stack records spans
// under a fixed name; details (tier, origin, bucket) ride the Detail
// field. Static strings keep the record path allocation-free.
const (
	SpanRequest     = "request"          // root: the whole request on this process
	SpanQueueWait   = "queue.wait"       // serve: enqueue -> worker pickup
	SpanAssemble    = "batch.assemble"   // serve: batch accumulation window
	SpanExecute     = "execute"          // fleet dispatch -> backend completion
	SpanMaterialize = "materialize"      // pipeline: submodel shard stream + decode
	SpanMatWait     = "materialize.wait" // contbatch: parked on another stream's materialize
	SpanKVReserve   = "kv.reserve"       // contbatch: paged KV grant acquisition
	SpanKVPreempt   = "kv.preempt"       // contbatch: best-effort preemption to free KV
	SpanDecodeStep  = "decode.steps"     // contbatch: decode steps, log-bucketed by step index
	SpanShardIO     = "shard.io"         // store: one shard payload read; Detail = origin
	SpanSSE         = "sse.delivery"     // server: token stream delivery window
	SpanForward     = "route.forward"    // router: proxy hop; Detail = node name
)

// Shard IO origins recorded as SpanShardIO details and counted by the
// shard-read metrics.
const (
	OriginFlash    = "flash"
	OriginCache    = "cache"
	OriginPeer     = "peer"
	OriginPrefetch = "prefetch"
)

// slabSpans bounds the spans one trace can hold. Past the cap new
// spans are counted as dropped rather than allocated — the record
// path must stay allocation-free even for thousand-step generations
// (which bucket their steps instead of recording each one).
const slabSpans = 192

// SpanID indexes a span inside its trace's slab; -1 is the invalid
// span (returned by every method of a nil trace, accepted by every
// method as a no-op target).
type SpanID int32

// Span is one recorded interval. Start/End are unix nanoseconds so
// spans recorded on different cluster nodes merge on a common axis.
type Span struct {
	Name   string `json:"name"`
	Detail string `json:"detail,omitempty"`
	Parent SpanID `json:"parent"` // -1 for the process-root span
	Start  int64  `json:"start"`
	End    int64  `json:"end"`
}

// Trace accumulates one request's spans in a fixed slab. Slots are
// claimed by atomic increment, so any goroutine touching the request
// (scheduler worker, batcher loop, IO worker, SSE emitter) records
// without locks. The slab is allocated once per request and owned by
// the GC — a cancelled request's backend goroutines may still be
// recording after the handler finishes, so slabs are deliberately NOT
// pooled (reuse would splice one request's spans into another's
// trace). The record path itself never allocates.
type Trace struct {
	// ID is the 16-byte trace id (hex in traceparent headers).
	ID [16]byte
	// RemoteParent is the upstream span id from an inbound
	// traceparent header, or -1 when this trace is the root of its
	// request — the stitch point for cross-node merges.
	RemoteParent SpanID
	// Model is the model the request targeted (set by the layer that
	// resolves it; exemplar rings shard by it).
	Model string

	n       atomic.Int32
	dropped atomic.Uint32
	spans   [slabSpans]Span
}

// NewTrace allocates a trace, stamps its id, and opens the root
// SpanRequest span. id may be zero (a fresh id is minted from the
// clock and a per-process counter); remoteParent is the caller's span
// on the upstream process, or -1.
func NewTrace(id [16]byte, remoteParent SpanID) *Trace {
	t := &Trace{}
	if id == ([16]byte{}) {
		id = mintTraceID()
	}
	t.ID = id
	t.RemoteParent = remoteParent
	t.Begin(-1, SpanRequest, "")
	return t
}

var traceSeq atomic.Uint64

func mintTraceID() [16]byte {
	var id [16]byte
	now := uint64(time.Now().UnixNano())
	seq := traceSeq.Add(1)
	for i := 0; i < 8; i++ {
		id[i] = byte(now >> (8 * (7 - i)))
		id[8+i] = byte((seq * 0x9e3779b97f4a7c15) >> (8 * (7 - i)))
	}
	return id
}

// Begin opens a span under parent and returns its id. On a nil trace
// or a full slab it returns -1 (and counts the drop).
func (t *Trace) Begin(parent SpanID, name, detail string) SpanID {
	if t == nil {
		return -1
	}
	idx := t.n.Add(1) - 1
	if idx >= slabSpans {
		t.dropped.Add(1)
		return -1
	}
	s := &t.spans[idx]
	s.Name = name
	s.Detail = detail
	s.Parent = parent
	s.Start = time.Now().UnixNano()
	s.End = 0
	return SpanID(idx)
}

// EndSpan closes a span opened by Begin. No-op for id -1.
func (t *Trace) EndSpan(id SpanID) {
	if t == nil || id < 0 || int32(id) >= t.n.Load() {
		return
	}
	t.spans[id].End = time.Now().UnixNano()
}

// Interval records an already-measured [start, end] interval as a
// completed span — for phases whose bounds were measured before the
// trace reached them (queue wait) or aggregated (step buckets).
func (t *Trace) Interval(parent SpanID, name, detail string, start, end time.Time) SpanID {
	id := t.Begin(parent, name, detail)
	if id >= 0 {
		t.spans[id].Start = start.UnixNano()
		t.spans[id].End = end.UnixNano()
	}
	return id
}

// Root returns the id of the root request span.
func (t *Trace) Root() SpanID {
	if t == nil || t.n.Load() == 0 {
		return -1
	}
	return 0
}

// Dropped reports spans that did not fit the slab.
func (t *Trace) Dropped() uint32 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Spans copies out the recorded spans (open spans get End = now).
// The copy detaches from the pooled slab, so it survives Release.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	n := t.n.Load()
	if n > slabSpans {
		n = slabSpans
	}
	out := make([]Span, n)
	copy(out, t.spans[:n])
	now := time.Now().UnixNano()
	for i := range out {
		if out[i].End == 0 {
			out[i].End = now
		}
	}
	return out
}

// Release marks the end of the trace's owned lifetime. Traces are
// GC-owned (see the type comment on why they are not pooled), so this
// is a lifecycle marker, not a free: straggler goroutines of a
// cancelled request may record into the slab afterwards without
// corrupting any other request.
func (t *Trace) Release() {}

// AdoptIntervals copies already-completed spans — measured by a
// goroutine that had no request trace, e.g. a plan materialization
// shared by many waiting streams — into this trace, re-parented onto
// parent. Nested structure in the donor is flattened; only spans with
// both endpoints set are adopted.
func (t *Trace) AdoptIntervals(parent SpanID, spans []Span) {
	if t == nil {
		return
	}
	for _, s := range spans {
		if s.Name == SpanRequest || s.End == 0 || s.Start == 0 {
			continue
		}
		id := t.Begin(parent, s.Name, s.Detail)
		if id < 0 {
			return
		}
		t.spans[id].Start = s.Start
		t.spans[id].End = s.End
	}
}

// IDString renders the trace id as 32 lowercase hex characters.
func (t *Trace) IDString() string {
	if t == nil {
		return ""
	}
	return hex.EncodeToString(t.ID[:])
}

// ---- context carriage ----

type traceKey struct{}

// WithTrace attaches a trace to a context. Layers below read it with
// FromContext; a nil trace is fine (FromContext then returns nil and
// every span call no-ops).
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the request's trace, or nil when tracing is off
// for this request.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// ---- traceparent propagation ----

// TraceparentHeader is the header carrying trace context across the
// router -> node hop (W3C trace-context shaped: 00-<trace>-<span>-01).
const TraceparentHeader = "Traceparent"

// FormatTraceparent renders the header value for propagating span
// `parent` of trace t to a downstream process.
func FormatTraceparent(t *Trace, parent SpanID) string {
	if t == nil {
		return ""
	}
	var span [8]byte
	v := uint64(parent) + 1 // span ids are slab indexes; avoid all-zero
	for i := 0; i < 8; i++ {
		span[i] = byte(v >> (8 * (7 - i)))
	}
	return "00-" + hex.EncodeToString(t.ID[:]) + "-" + hex.EncodeToString(span[:]) + "-01"
}

// ParseTraceparent parses an inbound header value. ok is false — and
// the caller should mint a fresh root trace — for a missing, garbage
// or partial value; a bad header is never an error.
func ParseTraceparent(v string) (id [16]byte, parent SpanID, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return id, -1, false
	}
	idb, err := hex.DecodeString(parts[1])
	if err != nil {
		return id, -1, false
	}
	spb, err := hex.DecodeString(parts[2])
	if err != nil {
		return id, -1, false
	}
	copy(id[:], idb)
	if id == ([16]byte{}) {
		return id, -1, false // all-zero trace id is invalid per spec
	}
	var sv uint64
	for _, b := range spb {
		sv = sv<<8 | uint64(b)
	}
	if sv == 0 {
		return id, -1, false
	}
	return id, SpanID(sv - 1), true
}
