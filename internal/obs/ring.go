package obs

import (
	"sort"
	"sync"
	"time"
)

// Exemplar is one captured request timeline: the trace's span copy
// plus the request-level facts the debug surface lists.
type Exemplar struct {
	TraceID      string        `json:"trace_id"`
	Model        string        `json:"model"`
	Node         string        `json:"node,omitempty"` // router side: which member served it
	Err          string        `json:"err,omitempty"`
	Start        time.Time     `json:"start"`
	Duration     time.Duration `json:"duration_ns"`
	RemoteParent SpanID        `json:"remote_parent"`
	Dropped      uint32        `json:"dropped_spans,omitempty"`
	Spans        []Span        `json:"spans"`
}

// Ring keeps the N most interesting completed traces of one model:
// every erroring request, and otherwise the slowest. Admission is
// decided before the span slab is copied, so the per-request cost of
// an uninteresting fast request is one mutex and a duration compare.
type Ring struct {
	mu      sync.Mutex
	cap     int
	entries []Exemplar
}

// NewRing returns a ring keeping up to capacity exemplars.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 8
	}
	return &Ring{cap: capacity}
}

// Offer decides whether the finished trace is exemplar-worthy and, if
// so, copies its spans into the ring. fill builds the exemplar only
// when admitted.
func (r *Ring) Offer(dur time.Duration, isErr bool, fill func() Exemplar) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) < r.cap {
		r.entries = append(r.entries, fill())
		return true
	}
	// Full: evict the fastest non-error entry; errors only displace
	// other errors once the ring is all errors.
	victim := -1
	for i := range r.entries {
		if r.entries[i].Err != "" && !isErr {
			continue
		}
		if victim == -1 || r.entries[i].Duration < r.entries[victim].Duration {
			victim = i
		}
	}
	if victim == -1 {
		return false
	}
	if !isErr && dur <= r.entries[victim].Duration {
		return false
	}
	r.entries[victim] = fill()
	return true
}

// Snapshot returns the exemplars, slowest first (errors keep their
// duration order within that).
func (r *Ring) Snapshot() []Exemplar {
	r.mu.Lock()
	out := make([]Exemplar, len(r.entries))
	copy(out, r.entries)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Duration > out[j].Duration })
	return out
}

// Find returns the exemplar with the given trace id, if retained.
func (r *Ring) Find(traceID string) (Exemplar, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		if r.entries[i].TraceID == traceID {
			return r.entries[i], true
		}
	}
	return Exemplar{}, false
}

// Len reports how many exemplars are retained.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}
