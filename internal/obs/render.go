package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sti/internal/trace"
)

// Gantt renders an exemplar's spans as the repo's ASCII schedule
// chart — the same renderer that draws the paper's Figure 1/8
// pipeline timelines, pointed at a live request. Spans sharing a name
// share a row (shard.io reads stack on one line, each segment
// labelled by its origin); rows order by first activity.
func (ex Exemplar) Gantt(width int) string {
	if len(ex.Spans) == 0 {
		return "(no spans)\n"
	}
	type row struct {
		name  string
		first int64
	}
	rows := map[string]*row{}
	order := []*row{}
	for _, s := range ex.Spans {
		r, ok := rows[s.Name]
		if !ok {
			r = &row{name: s.Name, first: s.Start}
			rows[s.Name] = r
			order = append(order, r)
		}
		if s.Start < r.first {
			r.first = s.Start
		}
	}
	sort.SliceStable(order, func(i, j int) bool { return order[i].first < order[j].first })
	epoch := order[0].first
	for _, r := range order {
		if r.first < epoch {
			epoch = r.first
		}
	}

	var g trace.Gantt
	for _, r := range order {
		for _, s := range ex.Spans {
			if s.Name != r.name {
				continue
			}
			label := s.Detail
			if label == "" {
				label = s.Name
			}
			start, end := s.Start-epoch, s.End-epoch
			if end < start {
				end = start // clock skew across a stitched hop must not panic the renderer
			}
			g.Add(r.name, label, time.Duration(start), time.Duration(end))
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s model=%s", ex.TraceID, ex.Model)
	if ex.Node != "" {
		fmt.Fprintf(&b, " node=%s", ex.Node)
	}
	fmt.Fprintf(&b, " dur=%s", ex.Duration.Round(time.Microsecond))
	if ex.Err != "" {
		fmt.Fprintf(&b, " err=%q", ex.Err)
	}
	if ex.Dropped > 0 {
		fmt.Fprintf(&b, " dropped=%d", ex.Dropped)
	}
	b.WriteByte('\n')
	b.WriteString(g.Render(width))
	return b.String()
}

// StitchSpans grafts a downstream process's spans onto an upstream
// exemplar: every child span's parent index is offset past the
// upstream spans, and the child's process-root span (parent -1) is
// re-parented onto the upstream span named by the child's
// RemoteParent — producing the one merged trace a cluster request
// yields. Child spans whose remote parent is out of range hang off
// the upstream root.
func StitchSpans(up []Span, remoteParent SpanID, down []Span) []Span {
	off := SpanID(len(up))
	out := append(append([]Span(nil), up...), down...)
	for i := range down {
		s := &out[int(off)+i]
		if s.Parent < 0 {
			if remoteParent >= 0 && int(remoteParent) < len(up) {
				s.Parent = remoteParent
			} else {
				s.Parent = 0
			}
		} else {
			s.Parent += off
		}
	}
	return out
}
