package obs

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hub is one process's observability root: the metrics registry every
// subsystem registers into, the tracing switch, and the per-model
// exemplar rings behind /v1/debug/trace. A nil *Hub is valid
// everywhere and disables the whole subsystem.
type Hub struct {
	Reg *Registry

	tracing atomic.Bool
	ringCap int
	mu      sync.Mutex
	rings   map[string]*Ring
}

// NewHub returns a hub with a fresh registry, tracing enabled, and
// rings of ringCap exemplars per model (<= 0 means the default 8).
func NewHub(ringCap int) *Hub {
	h := &Hub{Reg: NewRegistry(), ringCap: ringCap, rings: make(map[string]*Ring)}
	h.tracing.Store(true)
	return h
}

// SetTracing flips per-request span capture (metrics stay on).
func (h *Hub) SetTracing(on bool) {
	if h != nil {
		h.tracing.Store(on)
	}
}

// TracingEnabled reports whether new requests get traces.
func (h *Hub) TracingEnabled() bool { return h != nil && h.tracing.Load() }

// Registry returns the hub's registry, or nil for a nil hub.
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.Reg
}

// Ring returns (creating on demand) the exemplar ring for a model.
func (h *Hub) Ring(model string) *Ring {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	r, ok := h.rings[model]
	if !ok {
		r = NewRing(h.ringCap)
		h.rings[model] = r
	}
	return r
}

// Models lists the models with at least one retained exemplar.
func (h *Hub) Models() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	out := make([]string, 0, len(h.rings))
	for m, r := range h.rings {
		if r.Len() > 0 {
			out = append(out, m)
		}
	}
	h.mu.Unlock()
	sort.Strings(out)
	return out
}

// FindTrace looks a trace id up across every model's ring.
func (h *Hub) FindTrace(traceID string) (Exemplar, bool) {
	if h == nil {
		return Exemplar{}, false
	}
	h.mu.Lock()
	rings := make([]*Ring, 0, len(h.rings))
	for _, r := range h.rings {
		rings = append(rings, r)
	}
	h.mu.Unlock()
	for _, r := range rings {
		if ex, ok := r.Find(traceID); ok {
			return ex, true
		}
	}
	return Exemplar{}, false
}

// StartRequest begins a trace for an inbound request and attaches it
// to the context. traceparent is the raw inbound header value: a
// valid one continues the upstream trace (the remote span becomes the
// stitch parent), anything else — empty included — mints a fresh
// root; a garbage header is never an error. Returns (ctx, nil) when
// tracing is off.
func (h *Hub) StartRequest(ctx context.Context, traceparent string) (context.Context, *Trace) {
	if !h.TracingEnabled() {
		return ctx, nil
	}
	id, parent, ok := ParseTraceparent(traceparent)
	if !ok {
		id, parent = [16]byte{}, -1
	}
	t := NewTrace(id, parent)
	return WithTrace(ctx, t), t
}

// FinishRequest closes a trace, offers it to the model's exemplar
// ring, and returns the slab to the pool. node names the cluster
// member that served it (router side; "" elsewhere). Safe on a nil
// trace.
func (h *Hub) FinishRequest(t *Trace, model, node, errStr string) {
	if t == nil {
		return
	}
	t.EndSpan(t.Root())
	if model == "" {
		model = t.Model
	}
	if model == "" {
		model = "unknown"
	}
	start := time.Unix(0, t.spans[0].Start)
	dur := time.Duration(t.spans[0].End - t.spans[0].Start)
	h.Ring(model).Offer(dur, errStr != "", func() Exemplar {
		return Exemplar{
			TraceID:      t.IDString(),
			Model:        model,
			Node:         node,
			Err:          errStr,
			Start:        start,
			Duration:     dur,
			RemoteParent: t.RemoteParent,
			Dropped:      t.Dropped(),
			Spans:        t.Spans(),
		}
	})
	t.Release()
}
