package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistryExpositionLints(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("sti_requests_total", "Requests admitted.", Labels{"model": "m"})
	c.Inc()
	c.AddN(2)
	g := r.NewGauge("sti_queue_depth", "Live queue depth.", Labels{"model": "m"})
	g.SetTo(4)
	g.AddDelta(-1)
	h := r.NewHistogram("sti_latency_ns", "Request latency.", Labels{"model": "m"})
	for _, v := range []int64{10, 100, 1000, 1000000} {
		h.Observe(v)
	}
	r.NewCounterFunc("sti_flash_reads_total", "Flash reads.", nil, func() float64 { return 7 })
	RegisterRuntimeMetrics(r)

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`sti_requests_total{model="m"} 3`,
		`sti_queue_depth{model="m"} 3`,
		`sti_latency_ns_count{model="m"} 4`,
		"sti_flash_reads_total 7",
		"# TYPE sti_latency_ns histogram",
		"go_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := LintExposition(buf.Bytes()); err != nil {
		t.Fatalf("self-exposition fails lint: %v\n%s", err, out)
	}
}

func TestRegistryReRegisterSharesInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.NewCounter("x_total", "x", nil)
	b := r.NewCounter("x_total", "x", nil)
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	ha := r.NewHistogram("h", "h", nil)
	hb := r.NewHistogram("h", "h", nil)
	if ha != hb {
		t.Fatal("re-registering the same histogram returned a different instance")
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "foo 1\n",
		"bad name":       "# TYPE 9bad counter\n9bad 1\n",
		"bad value":      "# TYPE foo counter\nfoo xyz\n",
		"dup series":     "# TYPE foo counter\nfoo 1\nfoo 2\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"missing inf":    "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n",
		"inf != count":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 9\nh_count 5\n",
		"unquoted label": "# TYPE foo counter\nfoo{a=b} 1\n",
		"unterminated":   "# TYPE foo counter\nfoo{a=\"b\" 1\n",
		"negative count": "# TYPE foo counter\nfoo -1\n",
		"duplicate TYPE": "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"unknown TYPE":   "# TYPE foo widget\nfoo 1\n",
	}
	for name, in := range cases {
		if err := LintExposition([]byte(in)); err == nil {
			t.Errorf("%s: lint accepted %q", name, in)
		}
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := newHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d", h.Sum())
	}
	p50 := h.Quantile(0.5)
	if p50 < 400 || p50 > 700 {
		t.Fatalf("p50 = %d, want ≈500 within log-linear error", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1300 {
		t.Fatalf("p99 = %d, want ≈990 within log-linear error", p99)
	}
	// Bucket upper bounds must be monotone and consistent with the
	// index function at every boundary.
	for v := uint64(0); v < 1<<12; v++ {
		idx := bucketIndex(v)
		if up := bucketUpper(idx); v > up {
			t.Fatalf("value %d above its bucket upper %d (idx %d)", v, up, idx)
		}
		if idx > 0 {
			if lowUp := bucketUpper(idx - 1); v <= lowUp {
				t.Fatalf("value %d should be in bucket %d (upper %d)", v, idx-1, lowUp)
			}
		}
	}
}

func TestTraceSpansAndSlabBound(t *testing.T) {
	tr := NewTrace([16]byte{}, -1)
	root := tr.Root()
	if root != 0 {
		t.Fatalf("root = %d", root)
	}
	s := tr.Begin(root, SpanQueueWait, "")
	time.Sleep(time.Millisecond)
	tr.EndSpan(s)
	tr.Interval(root, SpanShardIO, OriginFlash, time.Now().Add(-time.Millisecond), time.Now())
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("span count = %d", len(spans))
	}
	if spans[1].Name != SpanQueueWait || spans[1].Parent != 0 || spans[1].End <= spans[1].Start {
		t.Fatalf("queue span %+v", spans[1])
	}
	if spans[2].Detail != OriginFlash {
		t.Fatalf("io span %+v", spans[2])
	}
	// Overflow: the slab drops, never grows.
	for i := 0; i < slabSpans+10; i++ {
		tr.Begin(root, SpanDecodeStep, "x")
	}
	if tr.Dropped() == 0 {
		t.Fatal("slab overflow not counted")
	}
	if got := len(tr.Spans()); got != slabSpans {
		t.Fatalf("slab grew to %d spans", got)
	}
	tr.Release()

	// Nil traces no-op everywhere.
	var nilT *Trace
	if id := nilT.Begin(0, "x", ""); id != -1 {
		t.Fatal("nil trace began a span")
	}
	nilT.EndSpan(0)
	nilT.Release()
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := NewTrace([16]byte{}, -1)
	defer tr.Release()
	sp := tr.Begin(tr.Root(), SpanForward, "node-a")
	hdr := FormatTraceparent(tr, sp)
	id, parent, ok := ParseTraceparent(hdr)
	if !ok || id != tr.ID || parent != sp {
		t.Fatalf("round trip: ok=%v id=%x parent=%d (want %x/%d) from %q", ok, id, parent, tr.ID, sp, hdr)
	}
	for _, bad := range []string{
		"", "garbage", "00-zz-xx-01", "01-abcd-ef-00",
		"00-" + strings.Repeat("0", 32) + "-0000000000000001-01",  // all-zero trace id
		"00-" + strings.Repeat("ab", 16) + "-0000000000000000-01", // all-zero span id
		"00-" + strings.Repeat("ab", 15) + "-0000000000000001-01", // short trace id
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("accepted garbage traceparent %q", bad)
		}
	}
}

func TestRingKeepsSlowestAndErrors(t *testing.T) {
	r := NewRing(3)
	mk := func(id string, d time.Duration, err string) func() Exemplar {
		return func() Exemplar { return Exemplar{TraceID: id, Duration: d, Err: err} }
	}
	r.Offer(10*time.Millisecond, false, mk("a", 10*time.Millisecond, ""))
	r.Offer(20*time.Millisecond, false, mk("b", 20*time.Millisecond, ""))
	r.Offer(30*time.Millisecond, false, mk("c", 30*time.Millisecond, ""))
	// Faster than everything: rejected.
	if r.Offer(5*time.Millisecond, false, mk("d", 5*time.Millisecond, "")) {
		t.Fatal("ring admitted a fast boring request over slower ones")
	}
	// Slower: evicts the fastest.
	if !r.Offer(40*time.Millisecond, false, mk("e", 40*time.Millisecond, "")) {
		t.Fatal("ring rejected a slowest-yet request")
	}
	if _, ok := r.Find("a"); ok {
		t.Fatal("fastest entry survived eviction")
	}
	// Errors always displace non-errors.
	if !r.Offer(time.Millisecond, true, mk("err", time.Millisecond, "boom")) {
		t.Fatal("ring rejected an erroring request")
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Duration < snap[1].Duration {
		t.Fatalf("snapshot %+v", snap)
	}
	found := false
	for _, ex := range snap {
		if ex.Err == "boom" {
			found = true
		}
	}
	if !found {
		t.Fatal("error exemplar missing from snapshot")
	}
}

func TestStepBucketsAggregate(t *testing.T) {
	tr := NewTrace([16]byte{}, -1)
	defer tr.Release()
	sb := NewStepBuckets(tr, tr.Root())
	base := time.Now()
	for step := 0; step < 20; step++ {
		s := base.Add(time.Duration(step) * time.Millisecond)
		sb.StepDone(step, s, s.Add(time.Millisecond))
	}
	sb.Flush()
	var buckets []string
	for _, s := range tr.Spans() {
		if s.Name == SpanDecodeStep {
			buckets = append(buckets, s.Detail)
		}
	}
	want := []string{"0", "1-3", "4-15", "16-63"}
	if len(buckets) != len(want) {
		t.Fatalf("buckets %v, want %v", buckets, want)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("buckets %v, want %v", buckets, want)
		}
	}
}

func TestHubLifecycleAndStitch(t *testing.T) {
	h := NewHub(4)
	ctx, tr := h.StartRequest(t.Context(), "")
	if tr == nil || FromContext(ctx) != tr {
		t.Fatal("trace not carried on context")
	}
	fwd := tr.Begin(tr.Root(), SpanForward, "node-a")
	hdr := FormatTraceparent(tr, fwd)

	// Downstream process continues the trace.
	h2 := NewHub(4)
	_, tr2 := h2.StartRequest(t.Context(), hdr)
	if tr2.ID != tr.ID || tr2.RemoteParent != fwd {
		t.Fatalf("downstream trace id=%x parent=%d", tr2.ID, tr2.RemoteParent)
	}
	q := tr2.Begin(tr2.Root(), SpanQueueWait, "")
	tr2.EndSpan(q)
	downSpans := tr2.Spans()
	remote := tr2.RemoteParent
	h2.FinishRequest(tr2, "m", "", "")

	tr.EndSpan(fwd)
	upSpans := tr.Spans()
	h.FinishRequest(tr, "m", "node-a", "")

	stitched := StitchSpans(upSpans, remote, downSpans)
	if len(stitched) != len(upSpans)+len(downSpans) {
		t.Fatalf("stitched %d spans", len(stitched))
	}
	// The downstream root now hangs off the upstream forward span.
	downRoot := stitched[len(upSpans)]
	if downRoot.Name != SpanRequest || downRoot.Parent != fwd {
		t.Fatalf("downstream root %+v, want parent %d", downRoot, fwd)
	}
	// And the downstream child kept its (offset) parentage.
	child := stitched[len(upSpans)+1]
	if child.Name != SpanQueueWait || child.Parent != SpanID(len(upSpans)) {
		t.Fatalf("downstream child %+v", child)
	}

	ex, ok := h.FindTrace(downRoot.Name /* wrong id */)
	if ok {
		t.Fatalf("found exemplar by non-id %+v", ex)
	}
	if got := h.Models(); len(got) != 1 || got[0] != "m" {
		t.Fatalf("models %v", got)
	}
	snap := h.Ring("m").Snapshot()
	if len(snap) != 1 || snap[0].Node != "node-a" {
		t.Fatalf("ring %+v", snap)
	}
	if _, ok := h.FindTrace(snap[0].TraceID); !ok {
		t.Fatal("FindTrace missed a retained exemplar")
	}
	if g := snap[0].Gantt(60); !strings.Contains(g, "route.forward") {
		t.Fatalf("gantt missing forward row:\n%s", g)
	}

	// Disabled tracing yields nil traces; a nil hub too.
	h.SetTracing(false)
	if _, tr3 := h.StartRequest(t.Context(), ""); tr3 != nil {
		t.Fatal("tracing off still minted a trace")
	}
	var nilHub *Hub
	if _, tr4 := nilHub.StartRequest(t.Context(), ""); tr4 != nil {
		t.Fatal("nil hub minted a trace")
	}
	nilHub.FinishRequest(nil, "", "", "")
	if nilHub.Registry() != nil {
		t.Fatal("nil hub has a registry")
	}
}

func TestRecordPathsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "c", nil)
	g := r.NewGauge("g", "g", nil)
	h := r.NewHistogram("h", "h", nil)
	tr := NewTrace([16]byte{}, -1)
	defer tr.Release()
	sb := NewStepBuckets(tr, tr.Root())
	now := time.Now()

	if n := testing.AllocsPerRun(200, func() { c.Inc(); c.AddN(3) }); n != 0 {
		t.Errorf("counter record allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { g.SetTo(1); g.AddDelta(-1) }); n != 0 {
		t.Errorf("gauge record allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(200, func() { h.Observe(12345) }); n != 0 {
		t.Errorf("histogram record allocates %v/op", n)
	}
	step := 0
	if n := testing.AllocsPerRun(100, func() {
		id := tr.Begin(0, SpanShardIO, OriginCache)
		tr.EndSpan(id)
		sb.StepDone(step, now, now)
		step++
	}); n != 0 {
		t.Errorf("span record allocates %v/op", n)
	}
}
