package obs

import "time"

// Decode-step spans are log-bucketed by step index: one span per
// bucket instead of one per token, so a thousand-step generation
// costs seven spans, not a thousand. Labels are static strings to
// keep the per-step path allocation-free.
var stepBucketLabels = [...]string{"0", "1-3", "4-15", "16-63", "64-255", "256-1023", "1024+"}

func stepBucket(step int) int {
	switch {
	case step <= 0:
		return 0
	case step < 4:
		return 1
	case step < 16:
		return 2
	case step < 64:
		return 3
	case step < 256:
		return 4
	case step < 1024:
		return 5
	default:
		return 6
	}
}

// StepBuckets accumulates consecutive decode steps of one stream into
// log-bucketed SpanDecodeStep spans. It is owned by a single stream
// (no internal locking); all methods are no-ops when the stream has
// no trace.
type StepBuckets struct {
	tr     *Trace
	parent SpanID
	cur    int
	start  time.Time
	end    time.Time
	open   bool
}

// NewStepBuckets binds a recorder to a stream's trace. A nil trace
// yields a recorder whose methods do nothing.
func NewStepBuckets(tr *Trace, parent SpanID) StepBuckets {
	return StepBuckets{tr: tr, parent: parent}
}

// StepDone records that step (0-based) ran over [start, end]. When
// the step crosses into a new bucket the finished bucket is flushed
// as one span.
func (sb *StepBuckets) StepDone(step int, start, end time.Time) {
	if sb.tr == nil {
		return
	}
	b := stepBucket(step)
	if sb.open && b != sb.cur {
		sb.tr.Interval(sb.parent, SpanDecodeStep, stepBucketLabels[sb.cur], sb.start, sb.end)
		sb.open = false
	}
	if !sb.open {
		sb.cur = b
		sb.start = start
		sb.open = true
	}
	sb.end = end
}

// Flush records the trailing partial bucket; call once when the
// stream retires.
func (sb *StepBuckets) Flush() {
	if sb.tr == nil || !sb.open {
		return
	}
	sb.tr.Interval(sb.parent, SpanDecodeStep, stepBucketLabels[sb.cur], sb.start, sb.end)
	sb.open = false
}
