package obs

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// LintExposition validates Prometheus text exposition the way
// `promtool check metrics` does, without the dependency: metric and
// label name syntax, HELP/TYPE placement and uniqueness, parseable
// sample values, no duplicate series, and histogram family
// consistency (le labels present, cumulative buckets non-decreasing,
// +Inf bucket equal to _count). CI runs it against the live /metrics
// output of the two-node smoke.
func LintExposition(data []byte) error {
	var (
		metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*`)
		labelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	)
	typeOf := map[string]string{}
	helpOf := map[string]bool{}
	seen := map[string]bool{}
	type histState struct {
		lastCum  float64
		infCount float64
		hasInf   bool
		count    float64
		hasCount bool
	}
	hists := map[string]*histState{}

	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name := strings.SplitN(rest, " ", 2)[0]
			if metricName.FindString(name) != name {
				return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if helpOf[name] {
				return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
			}
			helpOf[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, kind := fields[0], fields[1]
			if metricName.FindString(name) != name {
				return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown TYPE %q for %q", lineNo, kind, name)
			}
			if _, dup := typeOf[name]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			typeOf[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}

		// Sample line: name[{labels}] value
		name := metricName.FindString(line)
		if name == "" {
			return fmt.Errorf("line %d: sample does not start with a metric name: %q", lineNo, line)
		}
		rest := line[len(name):]
		labels := ""
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return fmt.Errorf("line %d: unterminated label set: %q", lineNo, line)
			}
			labels = rest[1:end]
			rest = rest[end+1:]
		}
		valStr := strings.TrimSpace(rest)
		if i := strings.IndexByte(valStr, ' '); i >= 0 {
			valStr = valStr[:i] // optional timestamp
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil && valStr != "+Inf" && valStr != "-Inf" && valStr != "NaN" {
			return fmt.Errorf("line %d: unparseable sample value %q", lineNo, valStr)
		}
		var le string
		if labels != "" {
			for _, pair := range splitLabels(labels) {
				eq := strings.Index(pair, "=")
				if eq < 0 {
					return fmt.Errorf("line %d: malformed label %q", lineNo, pair)
				}
				k, v := pair[:eq], pair[eq+1:]
				if !labelName.MatchString(k) {
					return fmt.Errorf("line %d: invalid label name %q", lineNo, k)
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return fmt.Errorf("line %d: unquoted label value in %q", lineNo, pair)
				}
				if k == "le" {
					le = v[1 : len(v)-1]
				}
			}
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return fmt.Errorf("line %d: duplicate series %s", lineNo, series)
		}
		seen[series] = true

		// Family bookkeeping: histogram children belong to the base
		// family's TYPE declaration.
		family := name
		suffix := ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, sfx) && typeOf[strings.TrimSuffix(name, sfx)] == "histogram" {
				family = strings.TrimSuffix(name, sfx)
				suffix = sfx
				break
			}
		}
		if _, ok := typeOf[family]; !ok {
			return fmt.Errorf("line %d: sample %q has no preceding TYPE", lineNo, name)
		}
		if typeOf[family] == "histogram" {
			hkey := family + "|" + stripLabel(labels, "le")
			st := hists[hkey]
			if st == nil {
				st = &histState{}
				hists[hkey] = st
			}
			switch suffix {
			case "_bucket":
				if le == "" {
					return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				if val < st.lastCum {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, family)
				}
				st.lastCum = val
				if le == "+Inf" {
					st.hasInf = true
					st.infCount = val
				}
			case "_count":
				st.count = val
				st.hasCount = true
			}
		}
		if typeOf[family] == "counter" && val < 0 {
			return fmt.Errorf("line %d: counter %s has negative value", lineNo, family)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, st := range hists {
		family := key[:strings.Index(key, "|")]
		if !st.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", family)
		}
		if st.hasCount && st.infCount != st.count {
			return fmt.Errorf("histogram %s: +Inf bucket %v != count %v", family, st.infCount, st.count)
		}
	}
	return nil
}

// splitLabels splits k1="v1",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// stripLabel removes one key from a rendered label list, so bucket
// series of one histogram share a grouping key.
func stripLabel(labels, key string) string {
	parts := splitLabels(labels)
	out := parts[:0]
	for _, p := range parts {
		if !strings.HasPrefix(p, key+"=") {
			out = append(out, p)
		}
	}
	return strings.Join(out, ",")
}
