package obs

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucketing: values are split into base-2 magnitude groups
// (the log part), each subdivided into histSub linear sub-buckets —
// the HDR-histogram shape. With histSub = 4 the relative error per
// bucket is ≤ 25% across the full uint64 range, which is plenty for
// latency work where the question is "which decade", and the whole
// index computation is one bits.Len64 and a shift.
const (
	histSub     = 4 // linear sub-buckets per power of two
	histSubBits = 2 // log2(histSub)
	// 64 magnitude groups × histSub sub-buckets; indexes above the top
	// clamp into the last bucket.
	histBuckets = 64 * histSub
)

// Histogram is a lock-free log-linear histogram of non-negative
// int64 observations (typically nanoseconds or bytes). Observe is a
// bucket-index computation plus three atomic adds — no allocation,
// safe from any goroutine.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v) // the first group is exact
	}
	msb := bits.Len64(v) - 1                                // magnitude group
	sub := (v >> (uint(msb) - histSubBits)) & (histSub - 1) // top bits below the msb
	idx := (msb-histSubBits+1)*histSub + int(sub)
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketUpper returns the inclusive upper bound of a bucket.
func bucketUpper(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	group := idx/histSub + histSubBits - 1
	sub := uint64(idx%histSub) + 1
	return (1 << uint(group)) + sub<<(uint(group)-histSubBits) - 1
}

// Observe records one value. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) as the
// upper bound of the bucket holding that rank.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return int64(bucketUpper(i))
		}
	}
	return int64(bucketUpper(histBuckets - 1))
}

// write renders the histogram as a Prometheus histogram family:
// cumulative le buckets (only non-empty boundaries plus +Inf), sum
// and count. labels is the pre-rendered {..} set or "".
func (h *Histogram) write(w io.Writer, name, labels string) {
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, fmt.Sprintf("%d", bucketUpper(i))), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), h.count.Load())
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, h.sum.Load())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.count.Load())
}

// bucketLabels merges an le label into a pre-rendered label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}
