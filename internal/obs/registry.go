// Package obs is the serving stack's observability substrate: a
// dependency-free metrics registry with Prometheus text exposition,
// per-request trace spans carried on the request context through every
// layer, and a bounded exemplar ring of the slowest/erroring request
// timelines per model.
//
// The record paths are built for the serving hot loops: counters and
// gauges are single atomic ops, histogram observation is one
// bits.Len64 plus two atomic adds, and span start/end write into a
// pooled fixed-capacity slab claimed by atomic index — no allocation,
// no lock. sti-vet's hotalloc pass covers these functions, and its
// locknoblock rule rejects any instrument recorded while Fleet.mu or
// a batcher's step lock is held.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; registry-created counters are exposed on /metrics.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// AddN adds n (n must be non-negative; negative deltas are ignored so
// the exposition stays monotone).
func (c *Counter) AddN(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// SetTo replaces the gauge value.
func (g *Gauge) SetTo(n int64) { g.v.Store(n) }

// AddDelta adjusts the gauge by n (may be negative).
func (g *Gauge) AddDelta(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// instrument ties a registered name + label set to its sample source.
type instrument struct {
	name    string // metric family name
	help    string
	kind    string // "counter" | "gauge" | "histogram"
	labels  string // rendered {k="v",...} or ""
	read    func() float64
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds registered instruments and renders them in
// Prometheus text exposition format. Registration takes a lock;
// recording on the returned instruments never does.
type Registry struct {
	mu    sync.Mutex
	inst  []*instrument
	index map[string]*instrument // name + labels -> existing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*instrument)}
}

// Labels is an ordered-at-render label set attached to an instrument
// at registration time.
type Labels map[string]string

func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(ls[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register adds the instrument unless its name+labels key already
// exists, in which case the existing registration wins and is
// returned — re-registration hands every caller the same backing
// instrument.
func (r *Registry) register(in *instrument) *instrument {
	key := in.name + in.labels
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.index[key]; ok {
		return got
	}
	r.inst = append(r.inst, in)
	r.index[key] = in
	return in
}

// NewCounter registers and returns a counter. Re-registering the same
// name+labels returns the existing counter.
func (r *Registry) NewCounter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	in := r.register(&instrument{name: name, help: help, kind: "counter", labels: renderLabels(labels), counter: c})
	if in.counter != nil {
		return in.counter
	}
	return c // name collided with a func-backed metric: unexposed but safe to record
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	in := r.register(&instrument{name: name, help: help, kind: "gauge", labels: renderLabels(labels), gauge: g})
	if in.gauge != nil {
		return in.gauge
	}
	return g
}

// NewCounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for subsystems that already keep
// authoritative atomic counters (shard cache, replica pool, predictor)
// without double-counting.
func (r *Registry) NewCounterFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&instrument{name: name, help: help, kind: "counter", labels: renderLabels(labels), read: fn})
}

// NewGaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(&instrument{name: name, help: help, kind: "gauge", labels: renderLabels(labels), read: fn})
}

// NewHistogram registers and returns a log-linear histogram.
func (r *Registry) NewHistogram(name, help string, labels Labels) *Histogram {
	h := newHistogram()
	in := r.register(&instrument{name: name, help: help, kind: "histogram", labels: renderLabels(labels), hist: h})
	if in.hist != nil {
		return in.hist
	}
	return h
}

// WritePrometheus renders every registered instrument in Prometheus
// text exposition format (families grouped, HELP/TYPE once per
// family, stable order).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	inst := make([]*instrument, len(r.inst))
	copy(inst, r.inst)
	r.mu.Unlock()
	sort.SliceStable(inst, func(i, j int) bool {
		if inst[i].name != inst[j].name {
			return inst[i].name < inst[j].name
		}
		return inst[i].labels < inst[j].labels
	})
	lastFamily := ""
	for _, in := range inst {
		if in.name != lastFamily {
			fmt.Fprintf(w, "# HELP %s %s\n", in.name, in.help)
			fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind)
			lastFamily = in.name
		}
		switch {
		case in.hist != nil:
			in.hist.write(w, in.name, in.labels)
		case in.counter != nil:
			fmt.Fprintf(w, "%s%s %s\n", in.name, in.labels, formatValue(float64(in.counter.Value())))
		case in.gauge != nil:
			fmt.Fprintf(w, "%s%s %s\n", in.name, in.labels, formatValue(float64(in.gauge.Value())))
		case in.read != nil:
			fmt.Fprintf(w, "%s%s %s\n", in.name, in.labels, formatValue(in.read()))
		}
	}
}

// formatValue renders a sample value the way Prometheus clients do:
// integers without a decimal point, everything else via %g.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
