package obs

import (
	"runtime"
	"runtime/metrics"
)

// RegisterRuntimeMetrics wires a runtime/metrics scrape into the
// registry: GC activity, heap size, goroutine count and scheduling
// latency, sampled at exposition time (a scrape costs one
// metrics.Read, the record paths cost nothing). Metrics the running
// toolchain does not publish are skipped.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	r.NewGaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })

	readOne := func(name string) (metrics.Value, bool) {
		s := []metrics.Sample{{Name: name}}
		metrics.Read(s)
		if s[0].Value.Kind() == metrics.KindBad {
			return metrics.Value{}, false
		}
		return s[0].Value, true
	}
	if _, ok := readOne("/gc/cycles/total:gc-cycles"); ok {
		r.NewCounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil, func() float64 {
			v, ok := readOne("/gc/cycles/total:gc-cycles")
			if !ok {
				return 0
			}
			return float64(v.Uint64())
		})
	}
	if _, ok := readOne("/memory/classes/heap/objects:bytes"); ok {
		r.NewGaugeFunc("go_heap_objects_bytes", "Bytes of live heap objects.", nil, func() float64 {
			v, ok := readOne("/memory/classes/heap/objects:bytes")
			if !ok {
				return 0
			}
			return float64(v.Uint64())
		})
	}
	// Distribution metrics expose their p50/p99 as gauges: the
	// registry's own histograms are for instruments we record into,
	// while these arrive pre-bucketed from the runtime.
	for _, rm := range []struct{ src, name, help string }{
		{"/sched/latencies:seconds", "go_sched_latency_seconds", "Goroutine scheduling latency (runtime histogram)."},
		{"/gc/pauses:seconds", "go_gc_pause_seconds", "GC stop-the-world pause latency (runtime histogram)."},
	} {
		src := rm.src
		if _, ok := readOne(src); !ok {
			continue
		}
		for _, q := range []struct {
			q    float64
			qlbl string
		}{{0.5, "0.5"}, {0.99, "0.99"}} {
			q := q
			r.NewGaugeFunc(rm.name, rm.help, Labels{"quantile": q.qlbl}, func() float64 {
				v, ok := readOne(src)
				if !ok || v.Kind() != metrics.KindFloat64Histogram {
					return 0
				}
				return histQuantile(v.Float64Histogram(), q.q)
			})
		}
	}
}

// histQuantile estimates a quantile of a runtime/metrics histogram.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			// Bucket i spans [Buckets[i], Buckets[i+1]).
			hi := h.Buckets[i+1]
			if hi > 1e308 || hi != hi { // +Inf or NaN guard
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}
