package glue

import (
	"strings"
	"testing"
)

func TestGenerateAllTasks(t *testing.T) {
	for _, task := range Tasks() {
		ds, err := Generate(task, 100, 50, 512, 32, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(ds.Train) != 100 || len(ds.Dev) != 50 {
			t.Fatalf("%s: sizes %d/%d", task, len(ds.Train), len(ds.Dev))
		}
		for _, ex := range ds.Train {
			if ex.Label != 0 && ex.Label != 1 {
				t.Fatalf("%s: label %d", task, ex.Label)
			}
			if ex.TextA == "" {
				t.Fatalf("%s: empty text", task)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate("SST-2", 20, 5, 512, 32, 9)
	b, _ := Generate("SST-2", 20, 5, 512, 32, 9)
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("generation not deterministic")
		}
	}
	c, _ := Generate("SST-2", 20, 5, 512, 32, 10)
	same := true
	for i := range a.Train {
		if a.Train[i] != c.Train[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical data")
	}
}

func TestLabelsRoughlyBalanced(t *testing.T) {
	for _, task := range Tasks() {
		ds, _ := Generate(task, 400, 0, 512, 32, 2)
		ones := 0
		for _, ex := range ds.Train {
			ones += ex.Label
		}
		frac := float64(ones) / 400
		if frac < 0.35 || frac > 0.65 {
			t.Fatalf("%s: label balance %.2f", task, frac)
		}
	}
}

func TestSST2PatternIsLearnable(t *testing.T) {
	// The planted rule: positive sentences carry more positive than
	// negative lexicon words. A trivial lexicon counter must get 100%.
	ds, _ := Generate("SST-2", 0, 200, 512, 32, 3)
	pos := map[string]bool{}
	for _, w := range positiveWords {
		pos[w] = true
	}
	neg := map[string]bool{}
	for _, w := range negativeWords {
		neg[w] = true
	}
	for _, ex := range ds.Dev {
		score := 0
		for _, w := range strings.Fields(ex.TextA) {
			if pos[w] {
				score++
			}
			if neg[w] {
				score--
			}
		}
		want := 0
		if score > 0 {
			want = 1
		}
		if want != ex.Label {
			t.Fatalf("planted rule violated: %q label %d", ex.TextA, ex.Label)
		}
	}
}

func TestRTEPattern(t *testing.T) {
	ds, _ := Generate("RTE", 0, 200, 512, 32, 4)
	for _, ex := range ds.Dev {
		premWords := map[string]bool{}
		for _, w := range strings.Fields(ex.TextA) {
			premWords[w] = true
		}
		allIn := true
		for _, w := range strings.Fields(ex.TextB) {
			if !premWords[w] {
				allIn = false
			}
		}
		if allIn != (ex.Label == 1) {
			t.Fatalf("RTE rule violated: %q / %q label %d", ex.TextA, ex.TextB, ex.Label)
		}
	}
}

func TestQNLIPattern(t *testing.T) {
	ds, _ := Generate("QNLI", 0, 200, 512, 32, 5)
	for _, ex := range ds.Dev {
		entity := strings.Fields(ex.TextA)[2]
		mentions := strings.Contains(" "+ex.TextB+" ", " "+entity+" ")
		if mentions != (ex.Label == 1) {
			t.Fatalf("QNLI rule violated: %q / %q label %d", ex.TextA, ex.TextB, ex.Label)
		}
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	ds, _ := Generate("QQP", 10, 1, 512, 32, 6)
	tokens, mask := ds.Encode(ds.Train[0])
	if len(tokens) != 32 || len(mask) != 32 {
		t.Fatalf("encoded lengths %d/%d", len(tokens), len(mask))
	}
}

func TestMajorityBaseline(t *testing.T) {
	ds := &Dataset{Dev: []Example{{Label: 1}, {Label: 1}, {Label: 0}}}
	if mb := ds.MajorityBaseline(); mb < 66 || mb > 67 {
		t.Fatalf("majority baseline %.1f", mb)
	}
	empty := &Dataset{}
	if empty.MajorityBaseline() != 0 {
		t.Fatal("empty dev baseline must be 0")
	}
}

func TestGenerateUnknownTask(t *testing.T) {
	if _, err := Generate("MNLI", 1, 1, 512, 32, 1); err == nil {
		t.Fatal("expected unknown-task error")
	}
}
