// Package glue generates the synthetic classification tasks standing in
// for the four GLUE benchmarks of Table 3 (SST-2, RTE, QNLI, QQP). Real
// GLUE data is not available offline, so each generator plants a
// learnable linguistic pattern of the same flavour as its namesake:
//
//   - SST-2 (single-sentence sentiment): sentences mix positive and
//     negative lexicon words; the label is the majority polarity.
//   - RTE (entailment): the hypothesis either reuses the premise's
//     content words (entailed) or introduces foreign ones.
//   - QNLI (question answering / NLI): the answer sentence either
//     contains the question's key entity or a different one.
//   - QQP (paraphrase): the second question is either a shuffled
//     synonym-substituted copy of the first or an unrelated question.
//
// Models must genuinely learn lexical/positional cues to score above
// chance, so the real-path experiments measure real accuracy responses
// to depth, width and quantization fidelity.
package glue

import (
	"fmt"
	"math/rand"
	"strings"

	"sti/internal/tokenizer"
)

// Example is one labelled input (TextB empty for single-sentence
// tasks).
type Example struct {
	TextA, TextB string
	Label        int
}

// Dataset holds a train/dev split plus the tokenizer that encodes it.
type Dataset struct {
	Task  string
	Train []Example
	Dev   []Example
	Tok   *tokenizer.Tokenizer
}

// Tasks lists the benchmark names of Table 3.
func Tasks() []string { return []string{"SST-2", "RTE", "QNLI", "QQP"} }

// Generate builds a deterministic dataset for the named task.
func Generate(task string, trainN, devN int, vocab, maxSeq int, seed int64) (*Dataset, error) {
	gen, err := generatorFor(task)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	ds := &Dataset{Task: task, Tok: tokenizer.New(vocab, maxSeq)}
	for i := 0; i < trainN; i++ {
		ds.Train = append(ds.Train, gen(rng))
	}
	for i := 0; i < devN; i++ {
		ds.Dev = append(ds.Dev, gen(rng))
	}
	return ds, nil
}

func generatorFor(task string) (func(*rand.Rand) Example, error) {
	switch strings.ToUpper(task) {
	case "SST-2", "SST2":
		return genSST2, nil
	case "RTE":
		return genRTE, nil
	case "QNLI":
		return genQNLI, nil
	case "QQP":
		return genQQP, nil
	}
	return nil, fmt.Errorf("glue: unknown task %q", task)
}

// Lexicons. Small and closed so tiny models can learn them, with
// distinct surface forms to avoid hash collisions in the tokenizer.

var positiveWords = []string{
	"great", "wonderful", "superb", "delightful", "charming", "moving",
	"brilliant", "gripping", "fresh", "heartfelt", "stunning", "fun",
}

var negativeWords = []string{
	"awful", "boring", "tedious", "clumsy", "stale", "lifeless",
	"dreadful", "messy", "bland", "hollow", "grating", "dull",
}

var fillerWords = []string{
	"the", "movie", "film", "plot", "acting", "with", "and", "a",
	"story", "scene", "its", "this", "was", "feels", "script", "cast",
}

var entityWords = []string{
	"everest", "amazon", "berlin", "newton", "jupiter", "nile",
	"tesla", "kyoto", "sahara", "darwin", "mozart", "cairo",
}

var contentWords = []string{
	"river", "mountain", "city", "planet", "composer", "desert",
	"inventor", "theory", "symphony", "island", "engine", "bridge",
}

var synonymPairs = [][2]string{
	{"big", "large"}, {"fast", "quick"}, {"begin", "start"},
	{"buy", "purchase"}, {"fix", "repair"}, {"learn", "study"},
}

func pick(rng *rand.Rand, words []string) string { return words[rng.Intn(len(words))] }

func genSST2(rng *rand.Rand) Example {
	label := rng.Intn(2)
	major, minor := positiveWords, negativeWords
	if label == 0 {
		major, minor = negativeWords, positiveWords
	}
	nMajor := 2 + rng.Intn(2)
	nMinor := rng.Intn(nMajor) // strictly fewer minority words
	var words []string
	for i := 0; i < nMajor; i++ {
		words = append(words, pick(rng, major))
	}
	for i := 0; i < nMinor; i++ {
		words = append(words, pick(rng, minor))
	}
	for len(words) < 8 {
		words = append(words, pick(rng, fillerWords))
	}
	rng.Shuffle(len(words), func(i, j int) { words[i], words[j] = words[j], words[i] })
	return Example{TextA: strings.Join(words, " "), Label: label}
}

func genRTE(rng *rand.Rand) Example {
	// Premise: entity + content words.
	prem := []string{pick(rng, entityWords), "is", "a", pick(rng, contentWords),
		"near", pick(rng, entityWords)}
	label := rng.Intn(2)
	var hyp []string
	if label == 1 { // entailed: reuse premise content
		hyp = []string{prem[0], "is", "a", prem[3]}
	} else { // not entailed: foreign content word
		other := pick(rng, contentWords)
		for other == prem[3] {
			other = pick(rng, contentWords)
		}
		hyp = []string{prem[0], "is", "a", other}
	}
	return Example{TextA: strings.Join(prem, " "), TextB: strings.Join(hyp, " "), Label: label}
}

func genQNLI(rng *rand.Rand) Example {
	entity := pick(rng, entityWords)
	question := []string{"where", "is", entity, "located"}
	label := rng.Intn(2)
	var answer []string
	if label == 1 { // sentence answers the question: mentions the entity
		answer = []string{entity, "lies", "in", "the", pick(rng, contentWords)}
	} else {
		other := pick(rng, entityWords)
		for other == entity {
			other = pick(rng, entityWords)
		}
		answer = []string{other, "lies", "in", "the", pick(rng, contentWords)}
	}
	return Example{TextA: strings.Join(question, " "), TextB: strings.Join(answer, " "), Label: label}
}

func genQQP(rng *rand.Rand) Example {
	pair := synonymPairs[rng.Intn(len(synonymPairs))]
	topic := pick(rng, contentWords)
	q1 := []string{"how", "to", pair[0], "a", topic}
	label := rng.Intn(2)
	var q2 []string
	if label == 1 { // paraphrase: synonym substitution + same topic
		q2 = []string{"how", "can", "i", pair[1], "a", topic}
	} else {
		otherTopic := pick(rng, contentWords)
		for otherTopic == topic {
			otherTopic = pick(rng, contentWords)
		}
		otherPair := synonymPairs[rng.Intn(len(synonymPairs))]
		q2 = []string{"how", "can", "i", otherPair[1], "a", otherTopic}
	}
	return Example{TextA: strings.Join(q1, " "), TextB: strings.Join(q2, " "), Label: label}
}

// Encode tokenizes one example with the dataset's tokenizer.
func (d *Dataset) Encode(e Example) ([]int, []bool) {
	return d.Tok.Encode(e.TextA, e.TextB)
}

// MajorityBaseline returns the accuracy (percent) of always predicting
// the dev set's most common label — the task floor.
func (d *Dataset) MajorityBaseline() float64 {
	counts := map[int]int{}
	for _, e := range d.Dev {
		counts[e.Label]++
	}
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	if len(d.Dev) == 0 {
		return 0
	}
	return 100 * float64(best) / float64(len(d.Dev))
}
