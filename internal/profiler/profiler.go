// Package profiler implements STI's offline profiling (§5.2) for the
// real path: measuring a host's actual IO and compute delays against a
// preprocessed store, and profiling shard importance of a real trained
// model on a real dev set.
//
// Paper-scale experiments use the calibrated device models in
// internal/device instead; this package is what a deployment on real
// hardware would run once at installation time.
package profiler

import (
	"fmt"
	"time"

	"sti/internal/device"
	"sti/internal/glue"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/quant"
	"sti/internal/shard"
	"sti/internal/store"
	"sti/internal/tensor"
)

// MeasureDevice times shard loads and layer executions on the local
// host and returns a device profile usable by the planner. IO delays
// are measured per bitwidth on one shard (all shards of a bitwidth
// have the same size, §5.2); compute is measured with a dry run of one
// assembled layer per width.
func MeasureDevice(st *store.Store, seqLen int) (*device.Profile, error) {
	cfg := st.Man.Config
	res, err := st.LoadResident()
	if err != nil {
		return nil, err
	}

	// IO: time a full-fidelity shard read to estimate bandwidth, and a
	// tiny read to estimate per-IO overhead.
	start := time.Now()
	payload, err := st.ReadShardPayload(0, 0, shard.FullBits)
	if err != nil {
		return nil, err
	}
	fullDur := time.Since(start)
	start = time.Now()
	small, err := st.ReadShardPayload(0, 0, st.Man.Bitwidths[0])
	if err != nil {
		return nil, err
	}
	smallDur := time.Since(start)
	bw := float64(len(payload)) / fullDur.Seconds()
	overhead := smallDur - time.Duration(float64(len(small))/bw*float64(time.Second))
	if overhead < 0 {
		overhead = 0
	}

	// Compute: dry-run one layer at widths 1 and full to fit the
	// fixed + incremental model.
	t1, err := timeLayer(st, res, seqLen, 1)
	if err != nil {
		return nil, err
	}
	tM, err := timeLayer(st, res, seqLen, cfg.Heads)
	if err != nil {
		return nil, err
	}
	incr := (tM - t1) / time.Duration(cfg.Heads-1)
	fixed := t1 - incr
	if fixed < 0 {
		fixed = 0
	}
	return &device.Profile{
		Name: "measured-host", Kind: device.CPU,
		ComputeFixed: fixed, ComputeIncr: incr, WidthExp: 1.0,
		RefSeqLen: seqLen, SeqLinear: 0.7, SeqQuad: 0.3,
		Decompress: 0, Bandwidth: bw, IOOverhead: overhead,
		MemoryBytes: 4 << 30, Freqs: []device.Freq{1.0},
	}, nil
}

// timeLayer assembles an m-wide layer from the store and times one
// forward pass over a random input.
func timeLayer(st *store.Store, res *model.Weights, seqLen, m int) (time.Duration, error) {
	cfg := st.Man.Config
	shards := make([]*model.ShardWeights, m)
	for j := 0; j < m; j++ {
		p, err := st.ReadShard(0, j, shard.FullBits)
		if err != nil {
			return 0, err
		}
		sw, err := model.UnflattenShard(cfg, 0, j, p.Weights())
		if err != nil {
			return 0, err
		}
		shards[j] = sw
	}
	sl, err := model.AssembleSubLayer(cfg, res.Layers[0], shards)
	if err != nil {
		return 0, err
	}
	x := tensor.New(seqLen, cfg.Hidden)
	for i := range x.Data {
		x.Data[i] = float32(i%13) * 0.01
	}
	// Warm up once, then time the median of three runs.
	model.ForwardLayer(cfg, sl, x, nil)
	best := time.Duration(1 << 62)
	for i := 0; i < 3; i++ {
		start := time.Now()
		model.ForwardLayer(cfg, sl, x, nil)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, nil
}

// RealEvaluator scores bitwidth assignments of a real model on a real
// dev set, implementing importance.Evaluator so the paper's profiling
// procedure (§5.2) runs against genuine accuracy measurements.
type RealEvaluator struct {
	W  *model.Weights
	DS *glue.Dataset

	cache map[cacheKey][]float32 // dequantized shard payloads
}

type cacheKey struct {
	layer, slice, bits int
}

// NewRealEvaluator wraps a trained model and its dataset.
func NewRealEvaluator(w *model.Weights, ds *glue.Dataset) *RealEvaluator {
	return &RealEvaluator{W: w, DS: ds, cache: make(map[cacheKey][]float32)}
}

func (e *RealEvaluator) shardWeights(l, s, bits int) []float32 {
	key := cacheKey{l, s, bits}
	if w, ok := e.cache[key]; ok {
		return w
	}
	flat := e.W.ExtractShard(l, s).Flatten()
	if bits != shard.FullBits {
		flat = quant.Quantize(flat, bits).Dequantize()
	}
	e.cache[key] = flat
	return flat
}

// AccuracyWithBits assembles the full model with per-shard bitwidths
// and measures dev accuracy in percent.
func (e *RealEvaluator) AccuracyWithBits(bits [][]int) float64 {
	cfg := e.W.Cfg
	sm := &model.Submodel{Cfg: cfg, Parent: e.W}
	for l := 0; l < cfg.Layers; l++ {
		shards := make([]*model.ShardWeights, cfg.Heads)
		for s := 0; s < cfg.Heads; s++ {
			sw, err := model.UnflattenShard(cfg, l, s, e.shardWeights(l, s, bits[l][s]))
			if err != nil {
				panic(fmt.Sprintf("profiler: %v", err))
			}
			shards[s] = sw
		}
		sl, err := model.AssembleSubLayer(cfg, e.W.Layers[l], shards)
		if err != nil {
			panic(fmt.Sprintf("profiler: %v", err))
		}
		sm.Layers = append(sm.Layers, sl)
	}
	correct := 0
	for _, ex := range e.DS.Dev {
		tokens, mask := e.DS.Encode(ex)
		if sm.Predict(tokens, mask) == ex.Label {
			correct++
		}
	}
	return 100 * float64(correct) / float64(len(e.DS.Dev))
}

var _ importance.Evaluator = (*RealEvaluator)(nil)

// ProfileImportance runs the paper's shard-importance profiling on a
// real model: every shard in turn at highBits while the rest sit at
// lowBits, ranked by measured dev accuracy.
func ProfileImportance(w *model.Weights, ds *glue.Dataset, lowBits, highBits int) *importance.Table {
	eval := NewRealEvaluator(w, ds)
	return importance.Profile(eval, w.Cfg.Layers, w.Cfg.Heads, lowBits, highBits)
}
