package profiler

import (
	"testing"

	"sti/internal/glue"
	"sti/internal/model"
	"sti/internal/store"
	"sti/internal/train"
)

func buildTinyStore(t *testing.T) (*store.Store, *model.Weights) {
	t.Helper()
	dir := t.TempDir()
	cfg := model.Tiny()
	w := model.NewRandom(cfg, 55)
	if _, err := store.Preprocess(dir, w, []int{2, 4, 6}); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, w
}

func TestMeasureDeviceProducesUsableProfile(t *testing.T) {
	st, _ := buildTinyStore(t)
	dev, err := MeasureDevice(st, 16)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Bandwidth <= 0 {
		t.Fatalf("bandwidth %v", dev.Bandwidth)
	}
	if dev.TComp(16, 1, 1.0) <= 0 {
		t.Fatal("compute model degenerate")
	}
	if dev.TComp(16, st.Man.Config.Heads, 1.0) < dev.TComp(16, 1, 1.0) {
		t.Fatal("compute not increasing with width")
	}
	if dev.TIO(1<<20) <= 0 {
		t.Fatal("IO model degenerate")
	}
}

func TestRealEvaluatorFullFidelityMatchesEvaluate(t *testing.T) {
	cfg := model.Config{Layers: 2, Heads: 2, Hidden: 16, FFN: 32, Vocab: 128, MaxSeq: 16, Classes: 2}
	w := model.NewRandom(cfg, 7)
	ds, err := glue.Generate("SST-2", 8, 32, cfg.Vocab, cfg.MaxSeq, 2)
	if err != nil {
		t.Fatal(err)
	}
	eval := NewRealEvaluator(w, ds)
	bits := make([][]int, cfg.Layers)
	for l := range bits {
		bits[l] = []int{32, 32}
	}
	got := eval.AccuracyWithBits(bits)
	want := train.Evaluate(w, ds, cfg.Layers, cfg.Heads)
	if got != want {
		t.Fatalf("full-fidelity evaluator %.1f != direct evaluation %.1f", got, want)
	}
}

func TestProfileImportanceOnTrainedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	cfg := model.Config{Layers: 2, Heads: 2, Hidden: 16, FFN: 32, Vocab: 128, MaxSeq: 16, Classes: 2}
	w := model.NewRandom(cfg, 17)
	ds, err := glue.Generate("SST-2", 256, 64, cfg.Vocab, cfg.MaxSeq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := train.Run(w, ds, train.Options{Epochs: 3, BatchSize: 8, LR: 2e-3, Seed: 4, WidthElastic: true}); err != nil {
		t.Fatal(err)
	}
	// Tiny synthetic models are more quantization-robust than real
	// BERT; profile against a 1-bit floor so shard differences show.
	tbl := ProfileImportance(w, ds, 1, 32)
	if tbl.Layers != cfg.Layers || tbl.Slices != cfg.Heads {
		t.Fatalf("table shape %dx%d", tbl.Layers, tbl.Slices)
	}
	// Profiled scores are real accuracies: within [0, 100] and not all
	// identical (some shard must matter more than another).
	allSame := true
	first := tbl.Score[0][0]
	for _, row := range tbl.Score {
		for _, v := range row {
			if v < 0 || v > 100 {
				t.Fatalf("profiled accuracy %v out of range", v)
			}
			if v != first {
				allSame = false
			}
		}
	}
	if allSame {
		t.Fatal("importance profiling found no differences between shards")
	}
}
