package planner

import (
	"testing"
	"time"

	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
)

func TestTierKeyQuantizes(t *testing.T) {
	for _, tc := range []struct{ in, want time.Duration }{
		{200 * time.Millisecond, 200 * time.Millisecond},
		{199*time.Millisecond + 600*time.Microsecond, 200 * time.Millisecond},
		{200*time.Millisecond + 400*time.Microsecond, 200 * time.Millisecond},
		{3 * time.Millisecond, 3 * time.Millisecond},
		// Sub-grid targets survive verbatim: rounding would zero them.
		{500 * time.Microsecond, 500 * time.Microsecond},
		{0, 0},
	} {
		if got := TierKey(tc.in); got != tc.want {
			t.Errorf("TierKey(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLadderGraduatedTargets(t *testing.T) {
	got := Ladder(200 * time.Millisecond)
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("ladder %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ladder %v, want %v", got, want)
		}
	}
}

func TestPlanCacheResolveTightestMeetingTier(t *testing.T) {
	c := NewPlanCache(4)
	mk := func(d time.Duration) *Plan { return &Plan{Target: d} }
	for _, d := range Ladder(200 * time.Millisecond) {
		c.Pin(d, mk(d))
	}

	// Exact tier: served at exactly the requested target.
	if target, p, ok := c.Resolve(200 * time.Millisecond); !ok || target != 200*time.Millisecond || p.Target != target {
		t.Fatalf("Resolve(200ms) = %v %v %v", target, p, ok)
	}
	// Between tiers: the tightest tier that still meets the SLO wins
	// (largest target ≤ want), not the tier above it.
	if target, _, ok := c.Resolve(300 * time.Millisecond); !ok || target != 200*time.Millisecond {
		t.Fatalf("Resolve(300ms) = %v %v, want the 200ms tier", target, ok)
	}
	// Tighter than every tier: miss — a new tier must be planned.
	if _, _, ok := c.Resolve(30 * time.Millisecond); ok {
		t.Fatal("Resolve(30ms) hit with no tier ≤ 30ms")
	}
	// Far above every tier: miss — a 2s SLO must not silently ride the
	// 400ms tier and throw away 5× of fidelity headroom.
	if _, _, ok := c.Resolve(2 * time.Second); ok {
		t.Fatal("Resolve(2s) hit a tier 5× tighter than asked")
	}
	// ...but within 2× it is a hit (the miss rule's tolerance).
	if target, _, ok := c.Resolve(700 * time.Millisecond); !ok || target != 400*time.Millisecond {
		t.Fatalf("Resolve(700ms) = %v %v, want the 400ms tier", target, ok)
	}
}

// TestPlanCacheResolveBelow pins the downgrade rule: demotion steps to
// the next cached rung down and parks at the coarsest — it must never
// manufacture a tier (that would mean planning at peak load).
func TestPlanCacheResolveBelow(t *testing.T) {
	c := NewPlanCache(4)
	for _, d := range Ladder(200 * time.Millisecond) {
		c.Pin(d, &Plan{Target: d})
	}
	if target, _, ok := c.ResolveBelow(200 * time.Millisecond); !ok || target != 100*time.Millisecond {
		t.Fatalf("ResolveBelow(200ms) = %v %v, want the 100ms rung", target, ok)
	}
	if _, _, ok := c.ResolveBelow(100 * time.Millisecond); ok {
		t.Fatal("ResolveBelow at the coarsest rung must report no tier")
	}
	// The step is bounded to 2×: an arbitrarily tight on-demand tier
	// another client planted is not a demotion target.
	c.Put(5*time.Millisecond, &Plan{Target: 5 * time.Millisecond})
	if target, _, ok := c.ResolveBelow(100 * time.Millisecond); ok {
		t.Fatalf("ResolveBelow(100ms) landed on the %v tier, want no rung within 2x", target)
	}
	if target, _, ok := c.ResolveBelow(200 * time.Millisecond); !ok || target != 100*time.Millisecond {
		t.Fatalf("ResolveBelow(200ms) = %v %v, want the 100ms rung", target, ok)
	}
}

func TestPlanCacheLRUBoundsUnpinned(t *testing.T) {
	c := NewPlanCache(2)
	c.Pin(100*time.Millisecond, &Plan{Target: 100 * time.Millisecond})
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		c.Put(d, &Plan{Target: d})
	}
	// Limit 2: the oldest on-demand tier (1s) was evicted; pins survive.
	if c.Len() != 3 {
		t.Fatalf("cache holds %d tiers, want 3 (1 pinned + 2 LRU)", c.Len())
	}
	if _, _, ok := c.Resolve(time.Second); ok {
		t.Fatal("evicted 1s tier still resolves")
	}
	if _, _, ok := c.Resolve(2 * time.Second); !ok {
		t.Fatal("2s tier missing")
	}
	// Resolving refreshes recency: 2s survives the next insert, 3s goes.
	c.Put(4*time.Second, &Plan{Target: 4 * time.Second})
	if _, _, ok := c.Resolve(2 * time.Second); !ok {
		t.Fatal("recently used 2s tier was evicted")
	}
	for _, target := range c.Targets() {
		if target == 3*time.Second {
			t.Fatal("LRU victim 3s tier still cached")
		}
	}
	// Clear drops everything, pinned included.
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d tiers after Clear", c.Len())
	}
}

// TestFidelityGrowsWithTarget pins the elastic trade the tier ladder
// sells: a more relaxed target buys a strictly higher-fidelity plan
// (deeper/wider submodel, higher bitwidths) and streams more bytes.
func TestFidelityGrowsWithTarget(t *testing.T) {
	cfg := model.BERTBase()
	imp := importance.Synthetic("SST-2", cfg.Layers, cfg.Heads)
	sizer := AnalyticSizer{Params: cfg.ShardParams()}
	plan := func(d time.Duration) *Plan {
		p, err := NewRequest(device.Odroid(), cfg, imp, sizer, d, 1<<20).Plan()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	tight, relaxed := plan(100*time.Millisecond), plan(400*time.Millisecond)
	ft := tight.Fidelity(cfg.Layers, cfg.Heads)
	fr := relaxed.Fidelity(cfg.Layers, cfg.Heads)
	if ft <= 0 || fr > 1 {
		t.Fatalf("fidelities out of range: tight %v relaxed %v", ft, fr)
	}
	if ft >= fr {
		t.Fatalf("tight tier fidelity %v not below relaxed %v", ft, fr)
	}
	if tight.TotalStreamBytes(sizer) >= relaxed.TotalStreamBytes(sizer) {
		t.Fatalf("tight tier streams %d bytes, relaxed %d — tighter targets must stream less",
			tight.TotalStreamBytes(sizer), relaxed.TotalStreamBytes(sizer))
	}
}
