package planner

import (
	"testing"
	"time"
)

// TestFigure6MiniExample reconstructs the paper's worked AIB example
// (Figure 6): a 2×3 submodel, T = 2 s, Tcomp = 1 s, preload buffer
// holding three 2-bit shards of layer 0, and the toy IO table
// Tio(b) = b/10 s. Candidates A and B must validate; C must not.
func TestFigure6MiniExample(t *testing.T) {
	tio := func(bits int) time.Duration { return time.Duration(bits) * 100 * time.Millisecond }
	newBudgets := func() *AIB {
		// AIB(0) = 0.6 s (bonus IO: filling the preload buffer with
		// three 2-bit shards), AIB(1) = AIB(0) + Tcomp = 1.6 s.
		a := NewAIB(2, 600*time.Millisecond, time.Second)
		if a.B[0] != 600*time.Millisecond || a.B[1] != 1600*time.Millisecond {
			t.Fatalf("initial budgets %v", a)
		}
		// Fill S′ with S: charge the three preloaded 2-bit shards of
		// layer 0 against the bonus.
		for i := 0; i < 3; i++ {
			a.Charge(0, tio(2))
		}
		if a.B[0] != 0 || a.B[1] != time.Second {
			t.Fatalf("after preload charges: %v", a)
		}
		return a
	}

	// Candidate A: layer-1 shards at {2,2,2} bits → AIB(1) = 0.4 s ≥ 0.
	a := newBudgets()
	for _, b := range []int{2, 2, 2} {
		a.Charge(1, tio(b))
	}
	if !a.Valid() || a.B[1] != 400*time.Millisecond {
		t.Fatalf("candidate A: %v", a)
	}

	// Candidate B: {3,3,3} → AIB(1) = 0.1 s ≥ 0.
	b := newBudgets()
	for _, bits := range []int{3, 3, 3} {
		b.Charge(1, tio(bits))
	}
	if !b.Valid() || b.B[1] != 100*time.Millisecond {
		t.Fatalf("candidate B: %v", b)
	}

	// Candidate C: {5,2,4} → AIB(1) = −0.1 s: invalid, would stall.
	c := newBudgets()
	for _, bits := range []int{5, 2, 4} {
		c.Charge(1, tio(bits))
	}
	if c.Valid() {
		t.Fatalf("candidate C must be invalid: %v", c)
	}
	if c.B[1] != -100*time.Millisecond {
		t.Fatalf("candidate C AIB(1) = %v, paper says −0.1 s", c.B[1])
	}
}

func TestAIBChargePropagatesForward(t *testing.T) {
	a := NewAIB(4, 0, time.Second)
	a.Charge(2, 500*time.Millisecond)
	want := []time.Duration{0, time.Second, 1500 * time.Millisecond, 2500 * time.Millisecond}
	for k, w := range want {
		if a.B[k] != w {
			t.Fatalf("B[%d] = %v, want %v", k, a.B[k], w)
		}
	}
}

func TestAIBCanCharge(t *testing.T) {
	a := NewAIB(3, 0, time.Second) // [0, 1s, 2s]
	if a.CanCharge(0, time.Millisecond) {
		t.Fatal("layer 0 has zero budget; charge must be refused")
	}
	if !a.CanCharge(1, time.Second) {
		t.Fatal("exactly-fitting charge must be allowed")
	}
	if a.CanCharge(1, time.Second+1) {
		t.Fatal("overfitting charge must be refused")
	}
}

func TestAIBMinAddAll(t *testing.T) {
	a := NewAIB(3, 0, time.Second)
	a.Charge(0, 300*time.Millisecond) // [-0.3, 0.7, 1.7]
	if a.Min() != -300*time.Millisecond {
		t.Fatalf("Min = %v", a.Min())
	}
	a.AddAll(300 * time.Millisecond)
	if !a.Valid() || a.B[0] != 0 {
		t.Fatalf("AddAll result %v", a)
	}
}

func TestAIBCloneAndSub(t *testing.T) {
	a := NewAIB(2, time.Second, time.Second)
	c := a.Clone()
	c.Charge(0, time.Second)
	if a.B[0] != time.Second {
		t.Fatal("Clone must not alias")
	}
	d := NewAIB(2, 0, 0)
	d.Add(1, 500*time.Millisecond)
	a.Sub(d)
	if a.B[0] != time.Second || a.B[1] != 1500*time.Millisecond {
		t.Fatalf("Sub result %v", a)
	}
}

func TestAIBEmpty(t *testing.T) {
	a := NewAIB(0, 0, 0)
	if !a.Valid() || a.Min() != 0 {
		t.Fatal("empty AIB must be trivially valid")
	}
}
