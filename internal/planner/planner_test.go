package planner

import (
	"math/rand"
	"testing"
	"time"

	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/shard"
)

func paperRequest(dev *device.Profile, target time.Duration, preload int64) Request {
	cfg := model.BERTBase()
	imp := importance.Synthetic("SST-2", cfg.Layers, cfg.Heads)
	return NewRequest(dev, cfg, imp, AnalyticSizer{Params: cfg.ShardParams()}, target, preload)
}

func TestComputePlanCPUPrefersDeeperNarrower(t *testing.T) {
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	n, m := ComputePlan(req, req.Target)
	if n < 4 || m > 6 {
		t.Fatalf("Odroid T=200ms chose %dx%d; paper behaviour is deep/narrow (Table 6, Figure 8)", n, m)
	}
	// Compute must fit the budget.
	tc := req.Device.TComp(req.SeqLen, m, 1.0)
	if time.Duration(n)*tc > req.Target {
		t.Fatalf("%dx%d computation %v exceeds T", n, m, time.Duration(n)*tc)
	}
}

func TestComputePlanGPUPrefersShallowWide(t *testing.T) {
	req := paperRequest(device.Jetson(), 200*time.Millisecond, 5<<20)
	n, m := ComputePlan(req, req.Target)
	if m != 12 {
		t.Fatalf("Jetson T=200ms chose %dx%d; GPU non-proportionality should make m=12 free (§7.3)", n, m)
	}
	if n != 3 {
		t.Fatalf("Jetson T=200ms depth %d, want 3 (≈60 ms/layer)", n)
	}
}

func TestComputePlanMoreTimeMoreShards(t *testing.T) {
	for _, dev := range device.Platforms() {
		prev := 0
		for _, target := range []time.Duration{150, 200, 400, 800} {
			req := paperRequest(dev, target*time.Millisecond, 0)
			n, m := ComputePlan(req, req.Target)
			if n*m < prev {
				t.Fatalf("%s: shard count decreased with larger T", dev.Name)
			}
			prev = n * m
		}
	}
}

func TestComputePlanInfeasibleTargetRunsMinimum(t *testing.T) {
	req := paperRequest(device.Jetson(), time.Millisecond, 0)
	n, m := ComputePlan(req, req.Target)
	if n != 1 || m != 1 {
		t.Fatalf("infeasible target chose %dx%d, want 1x1", n, m)
	}
}

func TestPreferDeeperAblation(t *testing.T) {
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 0)
	req.PreferDeeper = false
	n1, m1 := ComputePlan(req, req.Target)
	req.PreferDeeper = true
	n2, m2 := ComputePlan(req, req.Target)
	if n2 < n1 {
		t.Fatalf("PreferDeeper should not reduce depth: %dx%d vs %dx%d", n1, m1, n2, m2)
	}
}

func TestPlanBasicInvariants(t *testing.T) {
	for _, dev := range device.Platforms() {
		for _, target := range []time.Duration{150, 200, 400} {
			req := paperRequest(dev, target*time.Millisecond, 1<<20)
			p, err := req.Plan()
			if err != nil {
				t.Fatal(err)
			}
			if p.Depth < 1 || p.Width < 1 {
				t.Fatalf("%s T=%v: empty plan", dev.Name, target)
			}
			if len(p.Slices) != p.Depth || len(p.Bits) != p.Depth || len(p.Preloaded) != p.Depth {
				t.Fatalf("plan structure inconsistent: %+v", p)
			}
			for l := range p.Slices {
				if len(p.Slices[l]) != p.Width {
					t.Fatalf("layer %d has %d slices, want %d", l, len(p.Slices[l]), p.Width)
				}
				for j, b := range p.Bits[l] {
					if !shard.ValidBits(b) {
						t.Fatalf("invalid bitwidth %d at (%d,%d)", b, l, j)
					}
				}
			}
			if p.PreloadUsed > req.PreloadBudget {
				t.Fatalf("preload overflow: %d > %d", p.PreloadUsed, req.PreloadBudget)
			}
		}
	}
}

func TestPlanPreloadCoversBottomLayers(t *testing.T) {
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Preloaded[0][0] {
		t.Fatal("with a 1MB buffer the first shards of layer 0 must be preloaded")
	}
	// Preload fills in layer order: no shard of layer l+1 preloaded
	// unless all of layer l is.
	for l := 0; l+1 < p.Depth; l++ {
		nextHas := false
		for _, pre := range p.Preloaded[l+1] {
			nextHas = nextHas || pre
		}
		if nextHas {
			for _, pre := range p.Preloaded[l] {
				if !pre {
					t.Fatalf("layer %d partially preloaded while layer %d has preloads", l, l+1)
				}
			}
		}
	}
	if p.InitialStall != 0 {
		t.Fatalf("preloaded plan should start without stall, got %v", p.InitialStall)
	}
}

func TestPlanNoPreloadStalls(t *testing.T) {
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 0)
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.InitialStall <= 0 {
		t.Fatal("cold start must have a compulsory initial stall")
	}
	if p.PreloadUsed != 0 {
		t.Fatalf("no budget but PreloadUsed = %d", p.PreloadUsed)
	}
}

func TestPlanImportanceGuidedUpgrades(t *testing.T) {
	// With generous IO budget (long T), importance-ranked shards must
	// end with bitwidths at least as high as lower-ranked ones within
	// the same layer.
	req := paperRequest(device.Odroid(), 400*time.Millisecond, 1<<20)
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	imp := req.Imp
	upgraded := 0
	for l := 0; l < p.Depth; l++ {
		for j1 := range p.Slices[l] {
			for j2 := range p.Slices[l] {
				s1, s2 := p.Slices[l][j1], p.Slices[l][j2]
				if p.Preloaded[l][j1] != p.Preloaded[l][j2] {
					continue // different resource pools
				}
				if imp.Score[l][s1] > imp.Score[l][s2] && p.Bits[l][j1] < p.Bits[l][j2] {
					t.Fatalf("layer %d: more important slice %d has %d bits < slice %d with %d bits",
						l, s1, p.Bits[l][j1], s2, p.Bits[l][j2])
				}
			}
			if p.Bits[l][j1] > req.Bitwidths[0] {
				upgraded++
			}
		}
	}
	if upgraded == 0 {
		t.Fatal("400ms budget on Odroid should allow some upgrades")
	}
}

func TestPlanMoreTargetNeverLowersUniformFloor(t *testing.T) {
	// A larger T admits at least as high a uniform bitwidth floor.
	floor := func(target time.Duration) int {
		req := paperRequest(device.Jetson(), target, 0)
		p, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		min := 99
		for l := range p.Bits {
			for _, b := range p.Bits[l] {
				if b < min {
					min = b
				}
			}
		}
		return min
	}
	if floor(400*time.Millisecond) < floor(150*time.Millisecond) {
		t.Fatal("uniform floor decreased with more time")
	}
}

func TestPlanLargerPreloadBufferMorePreloadsLessStall(t *testing.T) {
	// §7.4: growing |S| covers more bottom-layer shards and can only
	// shrink the compulsory cold-start stall.
	prevCount := -1
	prevStall := time.Duration(1 << 62)
	for _, s := range []int64{0, 400 << 10, 2 << 20, 4 << 20} {
		req := paperRequest(device.Odroid(), 200*time.Millisecond, s)
		p, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for l := range p.Preloaded {
			for _, pre := range p.Preloaded[l] {
				if pre {
					count++
				}
			}
		}
		if count < prevCount {
			t.Fatalf("|S|=%d preloaded %d shards, fewer than smaller buffer's %d", s, count, prevCount)
		}
		if p.InitialStall > prevStall {
			t.Fatalf("|S|=%d stall %v grew versus %v", s, p.InitialStall, prevStall)
		}
		prevCount, prevStall = count, p.InitialStall
	}
}

func TestPlanAIBNoStallInvariant(t *testing.T) {
	// Reconstruct the AIB check over the emitted plan: cumulative
	// streamed IO through layer k must fit within InitialStall +
	// k·Tcomp, i.e. the plan never stalls the pipeline after start.
	for _, dev := range device.Platforms() {
		req := paperRequest(dev, 200*time.Millisecond, 1<<20)
		p, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		var io time.Duration
		for l := 0; l < p.Depth; l++ {
			bytes := p.LayerStreamBytes(l, req.Sizer)
			if bytes > 0 {
				io += req.Device.IOOverhead + req.transfer(bytes)
			}
			budget := p.InitialStall + time.Duration(l)*p.TCompLayer
			if io > budget+time.Microsecond {
				t.Fatalf("%s: cumulative IO %v exceeds budget %v at layer %d", dev.Name, io, budget, l)
			}
		}
	}
}

func TestTwoPassAblation(t *testing.T) {
	// Disabling the uniform pass must still produce a valid plan; with
	// it enabled, the minimum bitwidth across streamed shards is at
	// least as high (the uniform floor is the point of pass one).
	minStreamed := func(twoPass bool) int {
		req := paperRequest(device.Jetson(), 400*time.Millisecond, 0)
		req.TwoPass = twoPass
		p, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		min := 99
		for l := range p.Bits {
			for j, b := range p.Bits[l] {
				if !p.Preloaded[l][j] && b < min {
					min = b
				}
			}
		}
		return min
	}
	if minStreamed(true) < minStreamed(false) {
		t.Fatal("two-pass allocation lowered the uniform floor")
	}
}

func TestPlanValidation(t *testing.T) {
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 0)
	req.Device = nil
	if _, err := req.Plan(); err == nil {
		t.Fatal("nil device must be rejected")
	}
	req = paperRequest(device.Odroid(), -time.Second, 0)
	if _, err := req.Plan(); err == nil {
		t.Fatal("negative target must be rejected")
	}
	req = paperRequest(device.Odroid(), 200*time.Millisecond, 0)
	req.Bitwidths = nil
	if _, err := req.Plan(); err == nil {
		t.Fatal("empty bitwidths must be rejected")
	}
}

func TestPlanStringer(t *testing.T) {
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if p.String() == "" || p.ShardCount() != p.Depth*p.Width {
		t.Fatal("plan accessors broken")
	}
}

func TestPlanAtLowerFrequencyShrinksSubmodel(t *testing.T) {
	// DVFS: at half frequency each layer costs ~2x, so the feasible
	// submodel must shrink while the plan stays stall-free.
	peak := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	throttled := peak
	throttled.Freq = 0.5
	pPeak, err := peak.Plan()
	if err != nil {
		t.Fatal(err)
	}
	pHalf, err := throttled.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pHalf.ShardCount() >= pPeak.ShardCount() {
		t.Fatalf("throttled plan %dx%d not smaller than peak %dx%d",
			pHalf.Depth, pHalf.Width, pPeak.Depth, pPeak.Width)
	}
	if time.Duration(pHalf.Depth)*pHalf.TCompLayer > throttled.Target {
		t.Fatal("throttled plan misses target")
	}
	// Slower compute means each layer grants MORE IO budget, so the
	// throttled plan should afford at least the same fidelity floor.
	minBits := func(p *Plan) int {
		min := 99
		for l := range p.Bits {
			for _, b := range p.Bits[l] {
				if b < min {
					min = b
				}
			}
		}
		return min
	}
	if minBits(pHalf) < minBits(pPeak) {
		t.Fatalf("throttled fidelity floor %d below peak %d", minBits(pHalf), minBits(pPeak))
	}
}

func TestPlanZeroFreqDefaultsToPeak(t *testing.T) {
	req := paperRequest(device.Jetson(), 200*time.Millisecond, 0)
	req.Freq = 0
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	want := req.Device.TComp(req.SeqLen, p.Width, req.Device.PeakFreq())
	if p.TCompLayer != want {
		t.Fatalf("zero freq did not default to peak: %v vs %v", p.TCompLayer, want)
	}
}

func TestPlanRandomGeometriesInvariant(t *testing.T) {
	// Property sweep: arbitrary geometries, targets and buffers must
	// always yield structurally valid, budget-respecting plans.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 80; trial++ {
		heads := 2 + rng.Intn(11)
		cfg := model.Config{
			Layers: 2 + rng.Intn(11), Heads: heads,
			Hidden: heads * (4 + rng.Intn(8)), FFN: heads * (8 + rng.Intn(16)),
			Vocab: 64, MaxSeq: 32, Classes: 2,
		}
		imp := importance.Synthetic("QNLI", cfg.Layers, cfg.Heads)
		dev := device.Platforms()[rng.Intn(2)]
		req := NewRequest(dev, cfg, imp,
			AnalyticSizer{Params: cfg.ShardParams()},
			time.Duration(50+rng.Intn(600))*time.Millisecond,
			int64(rng.Intn(4<<20)))
		req.SeqLen = 16 + rng.Intn(112)
		p, err := req.Plan()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if p.Depth < 1 || p.Depth > cfg.Layers || p.Width < 1 || p.Width > cfg.Heads {
			t.Fatalf("trial %d: plan %dx%d outside %dx%d", trial, p.Depth, p.Width, cfg.Layers, cfg.Heads)
		}
		if p.PreloadUsed > req.PreloadBudget {
			t.Fatalf("trial %d: preload overflow", trial)
		}
		for l := range p.Slices {
			seen := map[int]bool{}
			for j, s := range p.Slices[l] {
				if s < 0 || s >= cfg.Heads || seen[s] {
					t.Fatalf("trial %d: bad slice %d at layer %d", trial, s, l)
				}
				seen[s] = true
				if !shard.ValidBits(p.Bits[l][j]) {
					t.Fatalf("trial %d: invalid bits", trial)
				}
			}
		}
	}
}

func TestPlanLongerSequenceShrinksSubmodel(t *testing.T) {
	// Tcomp grows with input length, so at fixed T a longer padded
	// input must fit at most as many shards (§5.2 profiles Tcomp(l,...)).
	short := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	short.SeqLen = 64
	long := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	long.SeqLen = 256
	pShort, err := short.Plan()
	if err != nil {
		t.Fatal(err)
	}
	pLong, err := long.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if pLong.ShardCount() > pShort.ShardCount() {
		t.Fatalf("longer input fit more shards: %d vs %d", pLong.ShardCount(), pShort.ShardCount())
	}
}

func TestWorkingBufferBytes(t *testing.T) {
	cfg := model.BERTBase()
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	p, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	wb := p.WorkingBufferBytes(cfg.ShardParams(), cfg.Hidden, cfg.FFNSlice())
	// §2.1/§3.1: a working buffer holds one model tile — "often a few
	// MBs" — and must be far below the whole model's footprint.
	if wb < 1<<20 || wb > 64<<20 {
		t.Fatalf("working buffer %d bytes implausible", wb)
	}
	wider := *p
	wider.Width = p.Width * 2
	if wider.WorkingBufferBytes(cfg.ShardParams(), cfg.Hidden, cfg.FFNSlice()) <= wb {
		t.Fatal("working buffer must grow with width")
	}
}

func TestPlanDeterministic(t *testing.T) {
	// §3.2: STI plans once and executes repeatedly — planning must be a
	// pure function of its inputs.
	req := paperRequest(device.Odroid(), 200*time.Millisecond, 1<<20)
	a, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	b, err := req.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if a.Depth != b.Depth || a.Width != b.Width || a.PreloadUsed != b.PreloadUsed {
		t.Fatal("planning not deterministic")
	}
	for l := range a.Bits {
		for j := range a.Bits[l] {
			if a.Bits[l][j] != b.Bits[l][j] || a.Slices[l][j] != b.Slices[l][j] ||
				a.Preloaded[l][j] != b.Preloaded[l][j] {
				t.Fatal("plan contents differ between runs")
			}
		}
	}
}
