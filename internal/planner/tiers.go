package planner

import (
	"sort"
	"sync"
	"time"

	"sti/internal/shard"
)

// Tiered planning: instead of freezing one plan per model at a single
// target latency, a serving layer keeps a *ladder* of plans at
// graduated targets and resolves every request's own SLO to the
// tightest tier that meets it. The planner side of that machinery
// lives here: the ladder targets, the cache-key quantization that
// keeps per-request SLOs from minting unbounded plan variants, and an
// LRU-bounded PlanCache with a pinned ladder.

// tierGrid is the plan-cache quantization step: requested targets are
// snapped to this grid so near-identical SLOs (199ms vs 201ms) share
// one cached plan instead of each minting their own.
const tierGrid = time.Millisecond

// TierKey canonicalizes a target latency into a plan-cache key by
// rounding to the cache grid. Sub-grid targets are kept verbatim —
// rounding them would collapse distinct sub-millisecond SLOs to zero,
// which no plan can be built for.
func TierKey(target time.Duration) time.Duration {
	if target < 2*tierGrid {
		return target
	}
	return target.Round(tierGrid)
}

// Ladder returns the graduated tier targets planned eagerly for a
// model whose default target is def: one tier at half the default for
// latency-critical callers and congestion downgrades, the default
// itself, and one at twice the default for fidelity-hungry relaxed
// callers. Ascending order; targets are already cache keys.
func Ladder(def time.Duration) []time.Duration {
	return []time.Duration{TierKey(def / 2), TierKey(def), TierKey(2 * def)}
}

// Fidelity scores the plan against the full-fidelity model in (0, 1]:
// the fraction of the full model's weight bits (layers × heads shards
// at full bitwidth) the submodel actually executes. It is the scalar a
// serving layer reports so callers can see what their latency target
// bought — deeper/wider submodels and higher bitwidths both raise it.
func (p *Plan) Fidelity(layers, heads int) float64 {
	full := layers * heads * shard.FullBits
	if full == 0 {
		return 0
	}
	bits := 0
	for l := range p.Bits {
		for _, b := range p.Bits[l] {
			bits += b
		}
	}
	return float64(bits) / float64(full)
}

// PlanCache is a per-model cache of plans keyed by quantized target
// latency. The ladder tiers are pinned (rebuilt on every replan, never
// evicted); tiers planned on demand for off-ladder SLOs are bounded by
// an LRU so adversarial targets cannot hoard memory. The cache is safe
// for concurrent use — resolution happens on a fleet's read path.
type PlanCache struct {
	mu     sync.Mutex
	limit  int
	pinned map[time.Duration]*Plan
	extra  map[time.Duration]*Plan
	order  []time.Duration // extra keys, least recently used first
}

// NewPlanCache creates a cache holding at most limit unpinned tiers
// (minimum 1).
func NewPlanCache(limit int) *PlanCache {
	if limit < 1 {
		limit = 1
	}
	return &PlanCache{
		limit:  limit,
		pinned: make(map[time.Duration]*Plan),
		extra:  make(map[time.Duration]*Plan),
	}
}

// Pin inserts a ladder tier that is never evicted.
func (c *PlanCache) Pin(target time.Duration, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pinned[TierKey(target)] = p
	c.dropExtraLocked(TierKey(target))
}

// Put inserts an on-demand tier, evicting the least recently used
// unpinned tier beyond the limit.
func (c *PlanCache) Put(target time.Duration, p *Plan) {
	key := TierKey(target)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pinned[key]; ok {
		c.pinned[key] = p
		return
	}
	c.dropExtraLocked(key)
	c.extra[key] = p
	c.order = append(c.order, key)
	for len(c.extra) > c.limit {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.extra, victim)
	}
}

// dropExtraLocked removes key from the unpinned set and its LRU order.
func (c *PlanCache) dropExtraLocked(key time.Duration) {
	if _, ok := c.extra[key]; !ok {
		return
	}
	delete(c.extra, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// Clear drops every tier, pinned or not. A replan owns the cache: old
// plans were built under old budget grants and must not survive.
func (c *PlanCache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pinned = make(map[time.Duration]*Plan)
	c.extra = make(map[time.Duration]*Plan)
	c.order = nil
}

// Targets lists every cached tier target, ascending.
func (c *PlanCache) Targets() []time.Duration {
	targets, _ := c.Entries()
	return targets
}

// Entries lists every cached tier as parallel slices, ascending by
// target, read under one lock so the pair is always consistent.
func (c *PlanCache) Entries() ([]time.Duration, []*Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	targets := make([]time.Duration, 0, len(c.pinned)+len(c.extra))
	for t := range c.pinned {
		targets = append(targets, t)
	}
	for t := range c.extra {
		targets = append(targets, t)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	plans := make([]*Plan, len(targets))
	for i, t := range targets {
		if p, ok := c.pinned[t]; ok {
			plans[i] = p
		} else {
			plans[i] = c.extra[t]
		}
	}
	return targets, plans
}

// Plans lists every cached plan, ascending by tier target — the warm
// set a serving layer feeds to the engine so all tiers share one
// preload budget.
func (c *PlanCache) Plans() []*Plan {
	_, plans := c.Entries()
	return plans
}

// Resolve finds the tightest cached tier that meets a requested target:
// the largest tier target ≤ want — the highest-fidelity plan that still
// keeps the SLO — provided it is within 2× of the request (a 30ms SLO
// must not silently ride a 1ms tier). ok is false on a miss; the caller
// plans a tier at TierKey(want) and retries. Resolving an unpinned tier
// refreshes its LRU position.
func (c *PlanCache) Resolve(want time.Duration) (time.Duration, *Plan, bool) {
	want = TierKey(want)
	c.mu.Lock()
	defer c.mu.Unlock()
	var best time.Duration = -1
	var plan *Plan
	for t, p := range c.pinned {
		if t <= want && t > best {
			best, plan = t, p
		}
	}
	for t, p := range c.extra {
		if t <= want && t > best {
			best, plan = t, p
		}
	}
	if plan == nil || 2*best <= want {
		return 0, nil, false
	}
	if _, unpinned := c.extra[best]; unpinned {
		c.dropExtraLocked(best)
		c.extra[best] = plan
		c.order = append(c.order, best)
	}
	return best, plan, true
}

// ResolveBelow finds the next rung down from a resolved tier: the
// largest cached tier target strictly below it, bounded to within 2×
// (the ladder's rung spacing) — a demotion steps one rung, it must not
// fall onto an arbitrarily tight on-demand tier some other client
// planted (the same fidelity guard Resolve applies upward). Congestion
// downgrades use it — demotion must land on an already-planned,
// already-warmed tier, never trigger planning at peak load. ok is
// false when no such rung exists (the caller serves the tier as is).
func (c *PlanCache) ResolveBelow(tier time.Duration) (time.Duration, *Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best time.Duration = -1
	var plan *Plan
	for t, p := range c.pinned {
		if t < tier && 2*t >= tier && t > best {
			best, plan = t, p
		}
	}
	for t, p := range c.extra {
		if t < tier && 2*t >= tier && t > best {
			best, plan = t, p
		}
	}
	if plan == nil {
		return 0, nil, false
	}
	if _, unpinned := c.extra[best]; unpinned {
		c.dropExtraLocked(best)
		c.extra[best] = plan
		c.order = append(c.order, best)
	}
	return best, plan, true
}

// Len reports how many tiers are cached (pinned + unpinned).
func (c *PlanCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pinned) + len(c.extra)
}
