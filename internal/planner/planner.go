// Package planner implements STI's two-stage pipeline planner (§5), the
// paper's core contribution:
//
//  1. Compute planning (§5.3): from the profiled per-layer computation
//     delay, propose the largest n×m submodel whose computation fits the
//     target latency T, preferring deeper submodels on (near-)ties
//     because attention heads within a layer are redundant.
//  2. IO planning (§5.4): track per-layer Accumulated IO Budgets (AIBs)
//     — the IO time each layer can overlap with earlier computation —
//     and select per-shard bitwidths in two passes: first the highest
//     uniform bitwidth the AIBs admit, then importance-guided upgrades
//     of individual shards until the budgets are consumed.
//
// A small preload buffer (§5.4.2) contributes "bonus IO": shards held in
// it cost no stream time, letting the pipeline start computing layer 0
// immediately.
package planner

import (
	"fmt"
	"time"

	"sti/internal/device"
	"sti/internal/importance"
	"sti/internal/model"
	"sti/internal/shard"
)

// Sizer reports the on-disk payload size of a shard fidelity version.
// Manifests of real stores implement exact sizes; AnalyticSizer serves
// paper-scale planning.
type Sizer interface {
	ShardSize(layer, slice, bits int) int
}

// AnalyticSizer estimates shard sizes from the parameter count alone.
type AnalyticSizer struct {
	Params int // weights per shard
}

func (a AnalyticSizer) ShardSize(_, _, bits int) int {
	return shard.EstimateSizeBytes(a.Params, bits)
}

// Request carries everything a planning run needs. Target and
// PreloadBudget come from the app (§3.2); the rest comes from offline
// profiling.
type Request struct {
	Device *device.Profile
	Cfg    model.Config
	Imp    *importance.Table
	Sizer  Sizer

	Target        time.Duration
	SeqLen        int
	PreloadBudget int64 // |S|, bytes

	// Freq is the DVFS operating point to plan for. The paper plans at
	// peak because the SoC runs at peak during active inference (§5.3),
	// but profiles Tcomp(l, m, freq) so plans for thermally-throttled
	// operation remain possible. Zero means the device's peak.
	Freq device.Freq

	// Bitwidths are the quantized fidelity versions available,
	// ascending. Defaults to shard.Bitwidths.
	Bitwidths []int
	// AllowFull permits upgrading shards to the uncompressed 32-bit
	// version (the paper's second pass upgrades "to full 32 bitwidth").
	AllowFull bool

	// PreferDeeper enables §5.3's tie rule (ablation knob).
	PreferDeeper bool
	// TwoPass enables the uniform first pass of §5.4.3; disabling it
	// falls back to importance-greedy upgrades from the minimum
	// bitwidth (ablation knob).
	TwoPass bool
}

// NewRequest returns a Request with the paper's default settings.
func NewRequest(dev *device.Profile, cfg model.Config, imp *importance.Table, sizer Sizer, target time.Duration, preload int64) Request {
	return Request{
		Device: dev, Cfg: cfg, Imp: imp, Sizer: sizer,
		Target: target, SeqLen: 128, PreloadBudget: preload,
		Freq:      dev.PeakFreq(),
		Bitwidths: append([]int(nil), shard.Bitwidths...),
		AllowFull: true, PreferDeeper: true, TwoPass: true,
	}
}

// freq returns the operating point to plan at.
func (req Request) freq() device.Freq {
	if req.Freq == 0 {
		return req.Device.PeakFreq()
	}
	return req.Freq
}

// Plan is an executable submodel configuration: which shards, at what
// fidelity, which are preloaded.
type Plan struct {
	Depth, Width int
	SeqLen       int
	Target       time.Duration

	// Slices[l] lists the slice indexes of layer l in the submodel;
	// Bits[l][j] and Preloaded[l][j] describe slices[l][j].
	Slices    [][]int
	Bits      [][]int
	Preloaded [][]bool

	PreloadUsed  int64         // bytes of preload buffer occupied
	TCompLayer   time.Duration // profiled per-layer compute delay
	InitialStall time.Duration // compulsory IO wait before layer 0
	Aborted      bool          // AIBs could not even support minimum bits
}

// LayerStreamBytes returns the bytes layer l streams from flash
// (excluding preloaded shards) under sizer.
func (p *Plan) LayerStreamBytes(l int, sizer Sizer) int {
	total := 0
	for j, s := range p.Slices[l] {
		if !p.Preloaded[l][j] {
			total += sizer.ShardSize(l, s, p.Bits[l][j])
		}
	}
	return total
}

// TotalStreamBytes sums streamed bytes over all layers.
func (p *Plan) TotalStreamBytes(sizer Sizer) int64 {
	var total int64
	for l := range p.Slices {
		total += int64(p.LayerStreamBytes(l, sizer))
	}
	return total
}

// ShardCount returns n×m.
func (p *Plan) ShardCount() int { return p.Depth * p.Width }

// WorkingBufferBytes estimates the temporary working buffer of §3.1:
// one layer's uncompressed FP32 shard weights plus the intermediate
// activations of a single layer's forward pass (Q/K/V projections,
// per-head attention scores, FFN inner activations, residuals). It is
// allocated per execution, does not grow with model depth, and is not
// part of STI's optimization target — reported for completeness.
func (p *Plan) WorkingBufferBytes(shardParams, hidden, ffnSlice int) int64 {
	weights := int64(p.Width) * int64(shardParams) * 4
	l := int64(p.SeqLen)
	acts := 4 * (3*l*int64(hidden) + // Q, K, V
		l*l + // one head's score matrix (reused)
		l*int64(p.Width*ffnSlice) + // FFN inner
		3*l*int64(hidden)) // concat, residuals, output
	return weights + acts
}

func (p *Plan) String() string {
	return fmt.Sprintf("plan %dx%d (T=%v, preload %dB, stall %v)",
		p.Depth, p.Width, p.Target, p.PreloadUsed, p.InitialStall)
}

// computeTiePct is how close (in shard count) two submodels must be for
// the "prefer deeper" rule to apply (§5.3 "similar number of shards").
const computeTiePct = 0.07

// ComputePlan enumerates all (n, m) pairs against the profiled
// computation delay and returns the chosen submodel size (§5.3). The
// budget is the time available for computation (the caller subtracts
// any compulsory initial stall).
func ComputePlan(req Request, budget time.Duration) (n, m int) {
	type cand struct{ n, m int }
	var cands []cand
	for width := 1; width <= req.Cfg.Heads; width++ {
		tc := req.Device.TComp(req.SeqLen, width, req.freq())
		depth := int(budget / tc)
		if depth > req.Cfg.Layers {
			depth = req.Cfg.Layers
		}
		if depth >= 1 {
			cands = append(cands, cand{depth, width})
		}
	}
	if len(cands) == 0 {
		// Even a 1×1 submodel misses T; run it anyway (§7.1 notes all
		// systems degrade below the hardware's feasible latency).
		return 1, 1
	}
	best := 0
	for _, c := range cands {
		if c.n*c.m > best {
			best = c.n * c.m
		}
	}
	sel := cand{}
	for _, c := range cands {
		if float64(c.n*c.m) < float64(best)*(1-computeTiePct) {
			continue
		}
		better := false
		switch {
		case sel.n == 0:
			better = true
		case req.PreferDeeper && c.n != sel.n:
			better = c.n > sel.n
		case c.n*c.m != sel.n*sel.m:
			better = c.n*c.m > sel.n*sel.m
		case !req.PreferDeeper:
			better = c.m > sel.m
		}
		if better {
			sel = c
		}
	}
	return sel.n, sel.m
}

// Plan runs both stages and returns the execution plan. If the plan's
// compulsory initial stall would push the pipeline past T, the depth is
// reduced and IO planning repeated (at most a handful of iterations).
func (req Request) Plan() (*Plan, error) {
	if err := req.validate(); err != nil {
		return nil, err
	}
	budget := req.Target
	for {
		n, m := ComputePlan(req, budget)
		p := req.planIO(n, m)
		total := p.InitialStall + time.Duration(n)*p.TCompLayer
		if total <= req.Target || n == 1 {
			return p, nil
		}
		// Shrink the compute budget by the stall we just discovered and
		// try again.
		budget = req.Target - p.InitialStall
		if budget <= 0 {
			return p, nil
		}
		n2, m2 := ComputePlan(req, budget)
		if n2 == n && m2 == m {
			return p, nil
		}
	}
}

func (req Request) validate() error {
	switch {
	case req.Device == nil:
		return fmt.Errorf("planner: nil device profile")
	case req.Imp == nil:
		return fmt.Errorf("planner: nil importance table")
	case req.Sizer == nil:
		return fmt.Errorf("planner: nil sizer")
	case req.Target <= 0:
		return fmt.Errorf("planner: non-positive target %v", req.Target)
	case req.SeqLen <= 0:
		return fmt.Errorf("planner: non-positive sequence length")
	case len(req.Bitwidths) == 0:
		return fmt.Errorf("planner: no bitwidths")
	case req.PreloadBudget < 0:
		return fmt.Errorf("planner: negative preload budget")
	}
	if err := req.Cfg.Validate(); err != nil {
		return err
	}
	return nil
}

// transfer returns pure bandwidth-limited transfer time for n bytes.
func (req Request) transfer(bytes int) time.Duration {
	return time.Duration(float64(bytes) / req.Device.Bandwidth * float64(time.Second))
}

// planIO is stage two (§5.4): preload selection, AIB initialization and
// the two-pass bitwidth allocation.
func (req Request) planIO(n, m int) *Plan {
	minBits := req.Bitwidths[0]
	p := &Plan{
		Depth: n, Width: m, SeqLen: req.SeqLen, Target: req.Target,
		TCompLayer: req.Device.TComp(req.SeqLen, m, req.freq()),
	}
	for l := 0; l < n; l++ {
		p.Slices = append(p.Slices, req.Imp.TopSlices(l, m))
		bits := make([]int, m)
		for j := range bits {
			bits[j] = minBits
		}
		p.Bits = append(p.Bits, bits)
		p.Preloaded = append(p.Preloaded, make([]bool, m))
	}

	// AIB initialization (§5.4.2): AIB(k) = AIB(k−1) + Tcomp with the
	// preload buffer as "bonus IO". Preloaded shards are charged
	// against a bonus that exactly covers them, so net budgets start at
	// k·Tcomp and only streamed shards are charged.
	//
	// Preload selection (§5.4.2 warm-up): walk shards in layer order —
	// bottom layers are needed first — and preload exactly those the
	// AIBs cannot stream without stalling (above all layer 0, whose
	// budget is zero). Shards the pipeline can overlap for free stay
	// streamed, leaving the rest of |S| for pass-two fidelity upgrades
	// of the preloaded shards.
	aib := NewAIB(n, 0, p.TCompLayer)
	remaining := req.PreloadBudget
	for l := 0; l < n; l++ {
		overheadCharged := false
		for j, s := range p.Slices[l] {
			size := req.Sizer.ShardSize(l, s, minBits)
			cost := req.transfer(size)
			if !overheadCharged {
				// Each layer with streamed shards is one IO job (§3.1)
				// and pays the issue overhead once.
				cost += req.Device.IOOverhead
			}
			if aib.CanCharge(l, cost) {
				aib.Charge(l, cost)
				overheadCharged = true
				continue
			}
			if int64(size) <= remaining {
				p.Preloaded[l][j] = true
				remaining -= int64(size)
				p.PreloadUsed += int64(size)
				continue
			}
			// Neither streamable nor preloadable: forced stream, the
			// pipeline will stall for it (§5.4.3 abort case).
			aib.Charge(l, cost)
			overheadCharged = true
		}
	}
	// Compulsory stall: shift every budget right by the deficit; the
	// whole pipeline starts that much later.
	if stall := -aib.Min(); stall > 0 {
		p.InitialStall = stall
		aib.AddAll(stall)
	}

	// Pass 1: highest uniform bitwidth for streamed shards.
	uniform := minBits
	if req.TwoPass {
		for _, b := range req.Bitwidths[1:] {
			extra := NewAIB(n, 0, 0) // accumulated upgrade deltas per layer
			for l := 0; l < n; l++ {
				for j, s := range p.Slices[l] {
					if p.Preloaded[l][j] {
						continue
					}
					d := req.transfer(req.Sizer.ShardSize(l, s, b) - req.Sizer.ShardSize(l, s, uniform))
					extra.Add(l, d)
				}
			}
			trial := aib.Clone()
			trial.Sub(extra)
			if ok := trial.Valid(); ok {
				aib = trial
				uniform = b
				for l := 0; l < n; l++ {
					for j := range p.Bits[l] {
						if !p.Preloaded[l][j] {
							p.Bits[l][j] = b
						}
					}
				}
			}
		}
	}
	// Record when the AIBs could not support anything beyond the
	// compulsory minimum (§5.4.3's abort case). Allocation still
	// continues below with whatever budget the stall freed up.
	p.Aborted = p.InitialStall > 0 && uniform == minBits

	// Pass 2: importance-guided upgrades of individual shards until the
	// AIBs (streamed) or the preload buffer (preloaded) are consumed.
	targets := upgradeTargets(req)
	for _, id := range req.Imp.Ranked() {
		l := id.Layer
		if l >= n {
			continue
		}
		j := indexOf(p.Slices[l], id.Slice)
		if j < 0 {
			continue
		}
		cur := p.Bits[l][j]
		for _, b := range targets {
			if b <= cur {
				break
			}
			delta := req.Sizer.ShardSize(l, id.Slice, b) - req.Sizer.ShardSize(l, id.Slice, cur)
			if p.Preloaded[l][j] {
				if p.PreloadUsed+int64(delta) <= req.PreloadBudget {
					p.PreloadUsed += int64(delta)
					p.Bits[l][j] = b
					break
				}
				continue
			}
			d := req.transfer(delta)
			if aib.CanCharge(l, d) {
				aib.Charge(l, d)
				p.Bits[l][j] = b
				break
			}
		}
	}
	return p
}

// upgradeTargets returns candidate upgrade bitwidths, descending, with
// the full-fidelity version first when allowed.
func upgradeTargets(req Request) []int {
	var t []int
	if req.AllowFull {
		t = append(t, shard.FullBits)
	}
	for i := len(req.Bitwidths) - 1; i >= 0; i-- {
		t = append(t, req.Bitwidths[i])
	}
	return t
}

func indexOf(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
