package planner

import (
	"fmt"
	"strings"
	"time"
)

// AIB tracks per-layer Accumulated IO Budgets (§5.4.2): B[k] is the IO
// time available to finish loading all shards of layers 0..k before
// layer k's computation is scheduled to start. The recursive paper
// definition AIB(k) = AIB(k−1) + Tcomp(k−1) with AIB(0) = bonus is
// materialized eagerly since layers share one Tcomp.
//
// Charging a shard at layer k debits layers k..n−1: loading it consumes
// IO time that all later layers were counting on (§5.4.2 "loading such
// shards only affect yet-to-be-executed layers"). The planning invariant
// is Valid(): every budget non-negative ⇒ the pipeline never stalls.
type AIB struct {
	B []time.Duration
}

// NewAIB builds budgets for n layers: B[k] = bonus + k·tcomp.
func NewAIB(n int, bonus, tcomp time.Duration) *AIB {
	a := &AIB{B: make([]time.Duration, n)}
	for k := range a.B {
		a.B[k] = bonus + time.Duration(k)*tcomp
	}
	return a
}

// Charge debits d from layer and every subsequent layer.
func (a *AIB) Charge(layer int, d time.Duration) {
	for k := layer; k < len(a.B); k++ {
		a.B[k] -= d
	}
}

// Add credits d to layer and every subsequent layer. Used to build
// delta vectors for trial allocations.
func (a *AIB) Add(layer int, d time.Duration) {
	for k := layer; k < len(a.B); k++ {
		a.B[k] += d
	}
}

// CanCharge reports whether charging d at layer keeps all budgets
// non-negative.
func (a *AIB) CanCharge(layer int, d time.Duration) bool {
	for k := layer; k < len(a.B); k++ {
		if a.B[k] < d {
			return false
		}
	}
	return true
}

// Valid reports the planning invariant: all budgets non-negative.
func (a *AIB) Valid() bool {
	for _, b := range a.B {
		if b < 0 {
			return false
		}
	}
	return true
}

// Min returns the smallest budget.
func (a *AIB) Min() time.Duration {
	if len(a.B) == 0 {
		return 0
	}
	min := a.B[0]
	for _, b := range a.B[1:] {
		if b < min {
			min = b
		}
	}
	return min
}

// AddAll credits d to every layer (used to absorb a compulsory stall:
// the whole pipeline shifts right, giving each layer that much more IO
// time).
func (a *AIB) AddAll(d time.Duration) {
	for k := range a.B {
		a.B[k] += d
	}
}

// Clone returns a deep copy for trial allocations.
func (a *AIB) Clone() *AIB {
	return &AIB{B: append([]time.Duration(nil), a.B...)}
}

// Sub subtracts another budget vector elementwise (other holds deltas
// accumulated layer-by-layer).
func (a *AIB) Sub(other *AIB) {
	if len(other.B) != len(a.B) {
		panic("planner: AIB length mismatch")
	}
	for k := range a.B {
		a.B[k] -= other.B[k]
	}
}

func (a *AIB) String() string {
	parts := make([]string, len(a.B))
	for k, b := range a.B {
		parts[k] = fmt.Sprintf("AIB(%d)=%v", k, b)
	}
	return strings.Join(parts, " ")
}
