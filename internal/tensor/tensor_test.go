package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapesAndAccess(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %v", m)
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatalf("Set/At round trip failed: %v", m.At(2, 3))
	}
	if got := m.Row(2)[3]; got != 7 {
		t.Fatalf("Row aliasing broken: %v", got)
	}
}

func TestFromSliceNoCopy(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	m := FromSlice(2, 2, data)
	data[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias the provided slice")
	}
}

func TestFromSlicePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice(2, 2, []float32{1, 2, 3})
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, dst.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewRand(5, 5, 1, rng)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	dst := New(5, 5)
	MatMul(dst, a, id)
	if !dst.Equal(a) {
		t.Fatal("A × I != A")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewRand(70, 80, 1, rng) // above parallelThreshold
	b := NewRand(80, 90, 1, rng)
	par := New(70, 90)
	MatMul(par, a, b)
	ser := New(70, 90)
	matMulRows(ser, a, b, 0, a.Rows)
	for i := range par.Data {
		if par.Data[i] != ser.Data[i] {
			t.Fatalf("parallel != serial at %d: %v vs %v", i, par.Data[i], ser.Data[i])
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dim mismatch")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestMatMulBT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewRand(4, 6, 1, rng)
	b := NewRand(5, 6, 1, rng)
	got := New(4, 5)
	MatMulBT(got, a, b)
	want := New(4, 5)
	MatMul(want, a, b.Transpose())
	for i := range got.Data {
		if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-5) {
			t.Fatalf("MatMulBT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAT(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewRand(6, 4, 1, rng)
	b := NewRand(6, 5, 1, rng)
	got := New(4, 5)
	MatMulAT(got, a, b)
	want := New(4, 5)
	MatMul(want, a.Transpose(), b)
	for i := range got.Data {
		if !almostEqual(float64(got.Data[i]), float64(want.Data[i]), 1e-5) {
			t.Fatalf("MatMulAT[%d] = %v, want %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		m := NewRand(r, c, 1, rng)
		return m.Transpose().Transpose().Equal(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestColRowSliceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewRand(6, 12, 1, rng)
	rebuilt := New(6, 12)
	for h := 0; h < 4; h++ {
		rebuilt.SetColSlice(h*3, m.ColSlice(h*3, (h+1)*3))
	}
	if !rebuilt.Equal(m) {
		t.Fatal("column slice/reassemble lost data")
	}
	rows := New(6, 12)
	rows.SetRowSlice(0, m.RowSlice(0, 2))
	rows.SetRowSlice(2, m.RowSlice(2, 6))
	if !rows.Equal(m) {
		t.Fatal("row slice/reassemble lost data")
	}
}

func TestSoftmaxRows(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 1000, 1000, 1000})
	SoftmaxRows(m)
	for r := 0; r < 2; r++ {
		var sum float64
		for _, v := range m.Row(r) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += float64(v)
		}
		if !almostEqual(sum, 1, 1e-5) {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
	if !(m.At(0, 2) > m.At(0, 1) && m.At(0, 1) > m.At(0, 0)) {
		t.Fatal("softmax not monotone")
	}
	// Row of equal large values must not overflow to NaN.
	if math.IsNaN(float64(m.At(1, 0))) {
		t.Fatal("softmax overflow on large inputs")
	}
}

func TestSoftmaxRowsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewRand(1+rng.Intn(5), 1+rng.Intn(9), 3, rng)
		SoftmaxRows(m)
		for r := 0; r < m.Rows; r++ {
			var sum float64
			for _, v := range m.Row(r) {
				sum += float64(v)
			}
			if !almostEqual(sum, 1, 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayerNormRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewRand(4, 16, 2, rng)
	gamma := make([]float32, 16)
	beta := make([]float32, 16)
	for i := range gamma {
		gamma[i] = 1
	}
	LayerNormRows(m, gamma, beta, nil, nil)
	for r := 0; r < m.Rows; r++ {
		var mu, va float64
		for _, v := range m.Row(r) {
			mu += float64(v)
		}
		mu /= 16
		for _, v := range m.Row(r) {
			va += (float64(v) - mu) * (float64(v) - mu)
		}
		va /= 16
		if !almostEqual(mu, 0, 1e-4) || !almostEqual(va, 1, 1e-2) {
			t.Fatalf("row %d: mean %v var %v", r, mu, va)
		}
	}
}

func TestLayerNormAffine(t *testing.T) {
	m := FromSlice(1, 2, []float32{-1, 1})
	gamma := []float32{2, 2}
	beta := []float32{5, 5}
	LayerNormRows(m, gamma, beta, nil, nil)
	// Normalized row is (-1, 1) (unit variance already), so affine gives 3 and 7.
	if !almostEqual(float64(m.At(0, 0)), 3, 1e-3) || !almostEqual(float64(m.At(0, 1)), 7, 1e-3) {
		t.Fatalf("affine layernorm = %v", m.Data)
	}
}

func TestGELUKnownValues(t *testing.T) {
	cases := map[float32]float64{0: 0, 1: 0.8412, -1: -0.1588, 3: 2.9964}
	for in, want := range cases {
		if got := float64(geluScalar(in)); !almostEqual(got, want, 1e-3) {
			t.Fatalf("gelu(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestGELUGradMatchesFiniteDifference(t *testing.T) {
	for _, x := range []float32{-2, -0.5, 0, 0.3, 1.7} {
		const h = 1e-3
		fd := (float64(geluScalar(x+h)) - float64(geluScalar(x-h))) / (2 * h)
		if got := float64(GELUGrad(x)); !almostEqual(got, fd, 1e-3) {
			t.Fatalf("GELUGrad(%v) = %v, finite difference %v", x, got, fd)
		}
	}
}

func TestAddSubScaleAXPY(t *testing.T) {
	a := FromSlice(1, 3, []float32{1, 2, 3})
	b := FromSlice(1, 3, []float32{4, 5, 6})
	dst := New(1, 3)
	Add(dst, a, b)
	if dst.Data[0] != 5 || dst.Data[2] != 9 {
		t.Fatalf("Add = %v", dst.Data)
	}
	Sub(dst, b, a)
	if dst.Data[0] != 3 || dst.Data[2] != 3 {
		t.Fatalf("Sub = %v", dst.Data)
	}
	Scale(dst, 2)
	if dst.Data[1] != 6 {
		t.Fatalf("Scale = %v", dst.Data)
	}
	AXPY(dst, -1, dst.Clone())
	for _, v := range dst.Data {
		if v != 0 {
			t.Fatalf("AXPY self-cancel = %v", dst.Data)
		}
	}
}

func TestAddBias(t *testing.T) {
	m := New(2, 3)
	AddBias(m, []float32{1, 2, 3})
	if m.At(0, 0) != 1 || m.At(1, 2) != 3 {
		t.Fatalf("AddBias = %v", m.Data)
	}
}

func TestArgMaxRow(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 9, 2, -5, -1, -9})
	if m.ArgMaxRow(0) != 1 || m.ArgMaxRow(1) != 1 {
		t.Fatalf("ArgMaxRow = %d, %d", m.ArgMaxRow(0), m.ArgMaxRow(1))
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] == 99 {
		t.Fatal("Clone must copy storage")
	}
}

func TestMatMulAssociativityProperty(t *testing.T) {
	// (A×B)×C ≈ A×(B×C) within float tolerance, on small random inputs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := NewRand(n, n, 0.5, rng)
		b := NewRand(n, n, 0.5, rng)
		c := NewRand(n, n, 0.5, rng)
		ab := New(n, n)
		MatMul(ab, a, b)
		abc1 := New(n, n)
		MatMul(abc1, ab, c)
		bc := New(n, n)
		MatMul(bc, b, c)
		abc2 := New(n, n)
		MatMul(abc2, a, bc)
		for i := range abc1.Data {
			if !almostEqual(float64(abc1.Data[i]), float64(abc2.Data[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := NewRand(128, 768, 0.02, rng)
	w := NewRand(768, 768, 0.02, rng)
	dst := New(128, 768)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(dst, x, w)
	}
}
