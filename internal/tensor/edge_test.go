package tensor

import (
	"math/rand"
	"testing"
)

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}

func TestSlicePanics(t *testing.T) {
	m := New(3, 4)
	expectPanic(t, "ColSlice hi>cols", func() { m.ColSlice(0, 5) })
	expectPanic(t, "ColSlice lo<0", func() { m.ColSlice(-1, 2) })
	expectPanic(t, "ColSlice lo>hi", func() { m.ColSlice(3, 2) })
	expectPanic(t, "RowSlice hi>rows", func() { m.RowSlice(0, 4) })
	expectPanic(t, "SetColSlice overflow", func() { m.SetColSlice(3, New(3, 2)) })
	expectPanic(t, "SetColSlice rows", func() { m.SetColSlice(0, New(2, 2)) })
	expectPanic(t, "SetRowSlice overflow", func() { m.SetRowSlice(2, New(2, 4)) })
	expectPanic(t, "New negative", func() { New(-1, 2) })
}

func TestOpShapePanics(t *testing.T) {
	a, b := New(2, 2), New(2, 3)
	expectPanic(t, "Add", func() { Add(New(2, 2), a, b) })
	expectPanic(t, "Sub", func() { Sub(New(2, 2), a, b) })
	expectPanic(t, "AXPY", func() { AXPY(a, 1, b) })
	expectPanic(t, "AddBias", func() { AddBias(a, []float32{1, 2, 3}) })
	expectPanic(t, "CopyFrom", func() { a.CopyFrom(b) })
	expectPanic(t, "LayerNorm gamma", func() { LayerNormRows(a, []float32{1}, []float32{0, 0}, nil, nil) })
	expectPanic(t, "MatMul dst", func() { MatMul(New(3, 3), a, New(2, 2)) })
	expectPanic(t, "MatMulBT inner", func() { MatMulBT(New(2, 2), a, New(2, 3)) })
	expectPanic(t, "MatMulAT inner", func() { MatMulAT(New(2, 3), a, New(3, 3)) })
}

func TestZeroAndMaxAbs(t *testing.T) {
	m := FromSlice(1, 4, []float32{-3, 1, 2, -0.5})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs")
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2)) {
		t.Fatal("different shapes reported equal")
	}
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{1, 3})
	if a.Equal(b) {
		t.Fatal("different data reported equal")
	}
}

func TestMatMulZeroRows(t *testing.T) {
	// Degenerate but legal shapes must not crash.
	dst := New(0, 3)
	MatMul(dst, New(0, 2), New(2, 3))
	if len(dst.Data) != 0 {
		t.Fatal("zero-row product broken")
	}
}

func TestLayerNormStatsOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewRand(3, 8, 2, rng)
	orig := m.Clone()
	mean := make([]float32, 3)
	inv := make([]float32, 3)
	gamma := make([]float32, 8)
	for i := range gamma {
		gamma[i] = 1
	}
	LayerNormRows(m, gamma, make([]float32, 8), mean, inv)
	for r := 0; r < 3; r++ {
		var mu float32
		for _, v := range orig.Row(r) {
			mu += v
		}
		mu /= 8
		if d := mean[r] - mu; d > 1e-5 || d < -1e-5 {
			t.Fatalf("row %d reported mean %v, want %v", r, mean[r], mu)
		}
		if inv[r] <= 0 {
			t.Fatalf("row %d invStd %v", r, inv[r])
		}
	}
}

func TestTransposeRectangular(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(0, 1) != 4 || tr.At(2, 0) != 3 {
		t.Fatalf("transpose wrong: %v", tr.Data)
	}
}
