// Package tensor provides the hand-rolled float32 linear-algebra kernels
// that every other part of the STI reproduction computes with.
//
// The paper runs on PyTorch's ATen kernels; this package is the pure-Go
// substitute. It implements exactly the operations a BERT-style
// transformer encoder needs — dense matmul (optionally parallel),
// bias/add/scale, row softmax, layer normalization, GELU and tanh — plus
// the transposed matmul variants required by the backprop trainer in
// internal/train.
//
// A Matrix is a dense row-major float32 buffer. Matrices are plain
// values: methods that write results take an explicit destination so
// buffers can be reused by the pipeline's working buffer.
package tensor

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major matrix of float32 values.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (length rows*cols) as a matrix without copying.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice got %d values for %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// NewRand returns a rows×cols matrix with entries drawn from a normal
// distribution with the given standard deviation, using rng. It is the
// initializer used for synthetic model weights.
func NewRand(rows, cols int, std float64, rng *rand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
	return m
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float32 { return m.Data[r*m.Cols+c] }

// Set writes v at row r, column c.
func (m *Matrix) Set(r, c int, v float32) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []float32 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom copies src into m; dimensions must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom %dx%d from %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element of m to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Equal reports whether m and n have identical shape and elements.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// String renders a short shape description (not the contents).
func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// ColSlice copies columns [lo, hi) of m into a new matrix. It is how a
// vertical model slice (one attention head plus its FFN neurons) is
// extracted from a full weight matrix.
func (m *Matrix) ColSlice(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: ColSlice [%d,%d) of %d cols", lo, hi, m.Cols))
	}
	out := New(m.Rows, hi-lo)
	for r := 0; r < m.Rows; r++ {
		copy(out.Row(r), m.Row(r)[lo:hi])
	}
	return out
}

// RowSlice copies rows [lo, hi) of m into a new matrix.
func (m *Matrix) RowSlice(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: RowSlice [%d,%d) of %d rows", lo, hi, m.Rows))
	}
	out := New(hi-lo, m.Cols)
	copy(out.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return out
}

// SetColSlice writes src into columns [lo, lo+src.Cols) of m.
func (m *Matrix) SetColSlice(lo int, src *Matrix) {
	if src.Rows != m.Rows || lo+src.Cols > m.Cols {
		panic("tensor: SetColSlice shape mismatch")
	}
	for r := 0; r < m.Rows; r++ {
		copy(m.Row(r)[lo:lo+src.Cols], src.Row(r))
	}
}

// SetRowSlice writes src into rows [lo, lo+src.Rows) of m.
func (m *Matrix) SetRowSlice(lo int, src *Matrix) {
	if src.Cols != m.Cols || lo+src.Rows > m.Rows {
		panic("tensor: SetRowSlice shape mismatch")
	}
	copy(m.Data[lo*m.Cols:], src.Data)
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			t.Data[c*t.Cols+r] = v
		}
	}
	return t
}

// MaxAbs returns the largest absolute value in m (0 for empty matrices).
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > mx {
			mx = a
		}
	}
	return mx
}

// ArgMaxRow returns the index of the maximum element in row r.
func (m *Matrix) ArgMaxRow(r int) int {
	row := m.Row(r)
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}
