package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// parallelThreshold is the number of result elements below which matmul
// runs single-threaded; spawning goroutines for tiny products costs more
// than it saves.
const parallelThreshold = 64 * 64

// MatMul computes dst = a × b. dst must be a.Rows×b.Cols and must not
// alias a or b. Large products are split across GOMAXPROCS goroutines by
// row blocks.
func MatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul dst %dx%d want %dx%d", dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	if a.Rows*b.Cols < parallelThreshold {
		matMulRows(dst, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) { matMulRows(dst, a, b, lo, hi) })
}

// matMulRows computes rows [lo,hi) of dst = a×b using an ikj loop order
// that streams b rows sequentially (cache-friendly without an explicit
// transpose).
func matMulRows(dst, a, b *Matrix, lo, hi int) {
	n := b.Cols
	for i := lo; i < hi; i++ {
		out := dst.Row(i)
		for x := range out {
			out[x] = 0
		}
		ar := a.Row(i)
		for k, av := range ar {
			if av == 0 {
				continue
			}
			br := b.Row(k)
			for j := 0; j < n; j++ {
				out[j] += av * br[j]
			}
		}
	}
}

// MatMulBT computes dst = a × bᵀ without materializing the transpose.
// dst must be a.Rows×b.Rows.
func MatMulBT(dst, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulBT %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic("tensor: MatMulBT dst shape")
	}
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := a.Row(i)
			out := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				br := b.Row(j)
				var s float32
				for k, av := range ar {
					s += av * br[k]
				}
				out[j] = s
			}
		}
	}
	if a.Rows*b.Rows < parallelThreshold {
		body(0, a.Rows)
		return
	}
	parallelRows(a.Rows, body)
}

// MatMulAT computes dst = aᵀ × b without materializing the transpose.
// dst must be a.Cols×b.Cols. Used by the backprop trainer for weight
// gradients (dW = xᵀ · dy).
func MatMulAT(dst, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulAT (%dx%d)ᵀ × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic("tensor: MatMulAT dst shape")
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		ar := a.Row(k)
		br := b.Row(k)
		for i, av := range ar {
			if av == 0 {
				continue
			}
			out := dst.Row(i)
			for j, bv := range br {
				out[j] += av * bv
			}
		}
	}
}

// parallelRows splits [0, rows) into GOMAXPROCS contiguous blocks and
// runs body on each concurrently.
func parallelRows(rows int, body func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		body(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	//sti:ctxok bounded compute fan-out: the workers finish when the op does; there is nothing external to cancel
	wg.Wait()
}

// Add computes dst = a + b elementwise. dst may alias a or b.
func Add(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tensor: Add shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// Sub computes dst = a − b elementwise. dst may alias a or b.
func Sub(dst, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tensor: Sub shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// Scale multiplies every element of m by s in place.
func Scale(m *Matrix, s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AXPY computes dst += s·a elementwise.
func AXPY(dst *Matrix, s float32, a *Matrix) {
	if dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("tensor: AXPY shape mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] += s * a.Data[i]
	}
}

// AddBias adds the bias vector to every row of m in place.
func AddBias(m *Matrix, bias []float32) {
	if len(bias) != m.Cols {
		panic(fmt.Sprintf("tensor: AddBias %d bias for %d cols", len(bias), m.Cols))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, b := range bias {
			row[c] += b
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row of m in
// place.
func SoftmaxRows(m *Matrix) {
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		mx := row[0]
		for _, v := range row[1:] {
			if v > mx {
				mx = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - mx)))
			row[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range row {
			row[i] *= inv
		}
	}
}

// LayerNormEps is the variance epsilon used by LayerNormRows, matching
// BERT's default.
const LayerNormEps = 1e-5

// LayerNormRows normalizes each row of m to zero mean and unit variance,
// then applies the elementwise affine transform gamma/beta, in place.
// If mean/invStd are non-nil they receive the per-row statistics (length
// m.Rows), which the backprop trainer needs.
func LayerNormRows(m *Matrix, gamma, beta []float32, mean, invStd []float32) {
	if len(gamma) != m.Cols || len(beta) != m.Cols {
		panic("tensor: LayerNormRows gamma/beta length")
	}
	n := float32(m.Cols)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var mu float32
		for _, v := range row {
			mu += v
		}
		mu /= n
		var va float32
		for _, v := range row {
			d := v - mu
			va += d * d
		}
		va /= n
		is := 1 / float32(math.Sqrt(float64(va)+LayerNormEps))
		if mean != nil {
			mean[r] = mu
		}
		if invStd != nil {
			invStd[r] = is
		}
		for i, v := range row {
			row[i] = (v-mu)*is*gamma[i] + beta[i]
		}
	}
}

// GELU applies the Gaussian error linear unit to every element of m in
// place, using the tanh approximation BERT uses.
func GELU(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = geluScalar(v)
	}
}

const (
	geluC0 = 0.7978845608028654 // sqrt(2/pi)
	geluC1 = 0.044715
)

func geluScalar(x float32) float32 {
	x64 := float64(x)
	return float32(0.5 * x64 * (1 + math.Tanh(geluC0*(x64+geluC1*x64*x64*x64))))
}

// GELUGrad returns d gelu(x) / dx for a scalar input.
func GELUGrad(x float32) float32 {
	x64 := float64(x)
	u := geluC0 * (x64 + geluC1*x64*x64*x64)
	t := math.Tanh(u)
	du := geluC0 * (1 + 3*geluC1*x64*x64)
	return float32(0.5*(1+t) + 0.5*x64*(1-t*t)*du)
}

// Tanh applies tanh to every element of m in place.
func Tanh(m *Matrix) {
	for i, v := range m.Data {
		m.Data[i] = float32(math.Tanh(float64(v)))
	}
}
