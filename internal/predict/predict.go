// Package predict is STI's predictive subsystem: it learns each
// model's arrival rate and shard-access order online and uses the
// predictions to hide cold-tier IO before requests need it.
//
// Two predictors cooperate per model. The arrival predictor keeps a
// request-rate EWMA per (model, SLO-class) with a short-horizon trend
// term; the sequence predictor is a tagged multi-history-length table
// in the TAGE style over the (tier, layer) shard-access stream emitted
// by the pipeline as plans execute. Their outputs drive three
// actuators, all strictly budget-subordinate and off the serving path:
//
//   - a prefetcher that pulls predicted-but-not-resident shard
//     payloads into the shared cache's second-class segment ahead of
//     the compute front,
//   - a speculative tier warmer that stages the next ladder rung when
//     pressure trends up, and
//   - a pre-emptive replica advisor that feeds scale-up advice before
//     the high-water mark trips.
//
// Observations enter through a bounded channel with non-blocking
// sends, so the serving path never waits on the predictor; a full
// queue drops observations (counted) rather than back-pressuring.
package predict

import (
	"sync"
	"sync/atomic"
	"time"

	"sti/internal/planner"
)

// TierPlan pairs a plan-cache tier with its resolved plan, as handed
// to the prefetcher by the Actuator.
type TierPlan struct {
	Target time.Duration
	Plan   *planner.Plan
}

// Actuator is the Predictor's outbound surface — implemented by the
// fleet, faked in tests. Every method is invoked with no Predictor
// lock held and must be budget-subordinate: a prefetch that does not
// fit the cache budget reports kept=false rather than evicting
// demand-retained state, and warm/advice paths go through the same
// staged machinery demand traffic uses.
type Actuator interface {
	// TierPlans returns the model's cached plan ladder.
	TierPlans(model string) []TierPlan
	// PrefetchShard pulls one shard payload into the shared cache's
	// second-class segment. kept reports whether the payload is
	// resident afterwards; an error aborts the current prefetch batch.
	PrefetchShard(model string, layer, slice, bits int) (kept bool, err error)
	// SpeculateWarm stages the next ladder rung's working set.
	SpeculateWarm(model string) error
	// AdvisePressure feeds a projected queue depth into the replica
	// pool's scale governor.
	AdvisePressure(model string, depth, capacity int)
}

// Options tunes the predictor. Zero values take the defaults below;
// WithDefaults returns the resolved form.
type Options struct {
	// Prefetch enables the shard prefetcher.
	Prefetch bool
	// Speculate enables tier warming and pre-emptive replica advice.
	Speculate bool
	// Interval is the actuation tick (default 25ms).
	Interval time.Duration
	// QueueLen bounds the observation channel (default 4096).
	QueueLen int
	// Lookahead is how many events past the access front the
	// prefetcher extrapolates (default 4, capped at 16).
	Lookahead int
	// MinConfidence gates extrapolation: predictions below this
	// confidence stop the lookahead walk (default 1, max 3).
	MinConfidence int
	// FastAlpha/SlowAlpha are the arrival EWMA coefficients
	// (defaults 0.5 and 0.1).
	FastAlpha float64
	SlowAlpha float64
	// WarmTrend is the minimum upward arrival trend, in requests per
	// second, that triggers a speculative warm (default 0.5).
	WarmTrend float64
	// WarmCooldown is the minimum spacing between speculative warms
	// of one model (default 1s).
	WarmCooldown time.Duration
	// Horizon is how far ahead the replica advisor projects queue
	// depth from the arrival trend (default 500ms).
	Horizon time.Duration
}

// WithDefaults returns o with zero fields replaced by defaults.
func (o Options) WithDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 25 * time.Millisecond
	}
	if o.QueueLen <= 0 {
		o.QueueLen = 4096
	}
	if o.Lookahead <= 0 {
		o.Lookahead = 4
	}
	if o.Lookahead > seqMaxLookahead {
		o.Lookahead = seqMaxLookahead
	}
	if o.MinConfidence <= 0 {
		o.MinConfidence = 1
	}
	if o.MinConfidence > seqMaxConf {
		o.MinConfidence = seqMaxConf
	}
	if o.FastAlpha <= 0 || o.FastAlpha > 1 {
		o.FastAlpha = 0.5
	}
	if o.SlowAlpha <= 0 || o.SlowAlpha > 1 {
		o.SlowAlpha = 0.1
	}
	if o.WarmTrend <= 0 {
		o.WarmTrend = 0.5
	}
	if o.WarmCooldown <= 0 {
		o.WarmCooldown = time.Second
	}
	if o.Horizon <= 0 {
		o.Horizon = 500 * time.Millisecond
	}
	return o
}

// ModelStats snapshots one model's predictors and actuation counters.
type ModelStats struct {
	ArrivalRate      float64 `json:"arrival_rate_rps"`
	ArrivalTrend     float64 `json:"arrival_trend_rps"`
	Arrivals         uint64  `json:"arrivals"`
	Accesses         uint64  `json:"accesses"`
	SeqPredictions   uint64  `json:"seq_predictions"`
	SeqHits          uint64  `json:"seq_hits"`
	PrefetchIssued   uint64  `json:"prefetch_issued"`
	SpeculativeWarms uint64  `json:"speculative_warms"`
	ScaleAdvice      uint64  `json:"scale_advice"`
}

// observation is one event off the serving path: an admission
// (arrival=true; class is the SLO class, depth/capacity the queue) or
// a shard access (class is the plan tier, layer the shard row).
type observation struct {
	model    string
	class    time.Duration
	layer    int
	depth    int
	capacity int
	arrival  bool
}

// modelState is one model's predictors plus actuation bookkeeping,
// guarded by Predictor.mu.
type modelState struct {
	seq *seqPredictor
	arr *arrivalPredictor

	accesses uint64
	accessed bool // access activity since the last tick

	rate, trend    float64
	prefetchIssued uint64
	warms          uint64
	advice         uint64
	lastWarm       time.Time
}

// actuation is one model's worklist for a tick, built under the mutex
// and executed with it released so predictor state is never locked
// across actuator calls.
type actuation struct {
	model       string
	events      [seqMaxLookahead]Event
	n           int
	warm        bool
	adviseDepth int
	adviseCap   int
}

// Predictor trains per-model arrival and sequence predictors from a
// bounded observation stream and periodically actuates prefetch,
// warming, and scale advice through an Actuator. Observe methods are
// safe for concurrent use and never block.
type Predictor struct {
	act  Actuator
	opts Options

	obsCh   chan observation
	stop    chan struct{}
	done    chan struct{}
	dropped atomic.Uint64

	mu     sync.Mutex
	models map[string]*modelState
}

// New starts a Predictor actuating through act. Close releases it.
func New(act Actuator, opts Options) *Predictor {
	p := &Predictor{
		act:    act,
		opts:   opts.WithDefaults(),
		obsCh:  make(chan observation, opts.WithDefaults().QueueLen),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		models: make(map[string]*modelState),
	}
	go p.loop()
	return p
}

// Options returns the resolved (defaulted) options.
func (p *Predictor) Options() Options { return p.opts }

// Close stops the actuation loop and waits for it to exit. Observe
// calls after Close are safe no-ops: they fill or drop on the buffered
// channel, which is never closed.
func (p *Predictor) Close() {
	close(p.stop)
	<-p.done
}

// ObserveArrival records one admission of the model at the given SLO
// class, with the admission queue's depth and capacity at that moment.
// Non-blocking: a full observation queue drops the event.
func (p *Predictor) ObserveArrival(model string, class time.Duration, depth, capacity int) {
	select {
	case p.obsCh <- observation{model: model, class: class, depth: depth, capacity: capacity, arrival: true}:
	default:
		p.dropped.Add(1)
	}
}

// ObserveAccess records one shard-access event: the executing plan's
// tier and the layer whose IO just started. Non-blocking: a full
// observation queue drops the event.
func (p *Predictor) ObserveAccess(model string, tier time.Duration, layer int) {
	select {
	case p.obsCh <- observation{model: model, class: tier, layer: layer}:
	default:
		p.dropped.Add(1)
	}
}

// Dropped reports observations discarded because the queue was full.
func (p *Predictor) Dropped() uint64 { return p.dropped.Load() }

// Stats snapshots one model's predictor state.
func (p *Predictor) Stats(model string) (ModelStats, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.models[model]
	if !ok {
		return ModelStats{}, false
	}
	return ModelStats{
		ArrivalRate:      m.rate,
		ArrivalTrend:     m.trend,
		Arrivals:         m.arr.arrivals,
		Accesses:         m.accesses,
		SeqPredictions:   m.seq.predictions,
		SeqHits:          m.seq.hits,
		PrefetchIssued:   m.prefetchIssued,
		SpeculativeWarms: m.warms,
		ScaleAdvice:      m.advice,
	}, true
}

func (p *Predictor) loop() {
	defer close(p.done)
	ticker := time.NewTicker(p.opts.Interval)
	defer ticker.Stop()
	last := time.Now()
	for {
		select {
		case <-p.stop:
			return
		case o := <-p.obsCh:
			p.ingest(o)
		case now := <-ticker.C:
			// Drain observations that raced the tick so actuation
			// sees the freshest access front.
			for drained := false; !drained; {
				select {
				case o := <-p.obsCh:
					p.ingest(o)
				default:
					drained = true
				}
			}
			p.actuate(now, now.Sub(last))
			last = now
		}
	}
}

func (p *Predictor) ingest(o observation) {
	p.mu.Lock()
	m := p.models[o.model]
	if m == nil {
		m = &modelState{seq: newSeqPredictor(), arr: newArrivalPredictor()}
		p.models[o.model] = m
	}
	if o.arrival {
		m.arr.observe(o.class, o.depth, o.capacity)
	} else {
		m.seq.observe(Event{Tier: o.class, Layer: o.layer})
		m.accesses++
		m.accessed = true
	}
	p.mu.Unlock()
}

// actuate runs one tick: fold arrival EWMAs, build each model's
// worklist under the mutex, then execute it unlocked.
func (p *Predictor) actuate(now time.Time, dt time.Duration) {
	var work []actuation
	p.mu.Lock()
	for name, m := range p.models {
		m.rate, m.trend = m.arr.tick(dt, p.opts.FastAlpha, p.opts.SlowAlpha)
		a := actuation{model: name}
		if p.opts.Prefetch && m.accessed {
			a.n = m.seq.predictAhead(a.events[:p.opts.Lookahead], int8(p.opts.MinConfidence))
			m.accessed = false
		}
		if p.opts.Speculate {
			if m.trend >= p.opts.WarmTrend && now.Sub(m.lastWarm) >= p.opts.WarmCooldown {
				a.warm = true
				m.lastWarm = now
			}
			if m.trend > 0 && m.arr.lastCap > 0 {
				projected := m.arr.lastDepth + int(m.trend*p.opts.Horizon.Seconds()+0.5)
				if projected > m.arr.lastDepth {
					a.adviseDepth, a.adviseCap = projected, m.arr.lastCap
				}
			}
		}
		if a.n > 0 || a.warm || a.adviseCap > 0 {
			work = append(work, a)
		}
	}
	p.mu.Unlock()

	for i := range work {
		w := &work[i]
		var issued, warms, advice uint64
		if w.n > 0 {
			issued = p.prefetch(w.model, w.events[:w.n])
		}
		if w.warm {
			if err := p.act.SpeculateWarm(w.model); err == nil {
				warms = 1
			}
		}
		if w.adviseCap > 0 {
			p.act.AdvisePressure(w.model, w.adviseDepth, w.adviseCap)
			advice = 1
		}
		p.mu.Lock()
		if m := p.models[w.model]; m != nil {
			m.prefetchIssued += issued
			m.warms += warms
			m.advice += advice
		}
		p.mu.Unlock()
	}
}

// prefetch resolves each predicted (tier, layer) event against the
// model's plan ladder and pulls that layer's streamed (non-preloaded)
// shard payloads toward the shared cache. Returns how many payloads
// the cache kept.
func (p *Predictor) prefetch(model string, events []Event) uint64 {
	plans := p.act.TierPlans(model)
	if len(plans) == 0 {
		return 0
	}
	var issued uint64
	for _, ev := range events {
		var plan *planner.Plan
		for i := range plans {
			if plans[i].Target == ev.Tier {
				plan = plans[i].Plan
				break
			}
		}
		if plan == nil || ev.Layer < 0 || ev.Layer >= len(plan.Slices) {
			continue
		}
		for j, slice := range plan.Slices[ev.Layer] {
			if plan.Preloaded[ev.Layer][j] {
				continue // resident in the replicas' preload buffers
			}
			kept, err := p.act.PrefetchShard(model, ev.Layer, slice, plan.Bits[ev.Layer][j])
			if err != nil {
				return issued
			}
			if kept {
				issued++
			}
		}
	}
	return issued
}
