package predict

import "time"

// Event is one shard-access observation: the executing plan's latency
// target (the tier) and the layer whose IO job started. The sequence
// predictor learns the order these events recur in and extrapolates it
// ahead of the compute front.
type Event struct {
	Tier  time.Duration
	Layer int
}

const (
	// seqMaxHist bounds the retained access history per model — the
	// longest pattern the predictor can key on.
	seqMaxHist = 16
	// seqTableSize is the entry count of each tagged table (power of
	// two; four tables cost ~8 KB per model).
	seqTableSize = 256
	// seqMaxEvents bounds the (tier, layer) alphabet; observations for
	// coordinates beyond it are dropped rather than growing without
	// bound.
	seqMaxEvents = 1024
	// seqMaxConf / seqMaxUseful saturate the per-entry counters.
	seqMaxConf   = 3
	seqMaxUseful = 3
	// seqMaxLookahead bounds how far predictAhead extrapolates.
	seqMaxLookahead = 16
)

// seqHistLens are the geometric history lengths of the tagged tables,
// shortest first — the TAGE discipline: the longest history with a
// tag match provides the prediction, shorter ones back it up, and a
// bigram base table catches everything else.
var seqHistLens = [4]int{2, 4, 8, 16}

// seqEntry is one slot of a tagged table (or of the base bigram table,
// where tag and useful are unused): the event observed to follow this
// history, with a saturating confidence counter and a usefulness
// counter steering victim selection on allocation.
type seqEntry struct {
	tag    uint16
	next   uint16
	conf   int8
	useful int8
	valid  bool
}

// seqPredictor is a TAGE-style next-event predictor over one model's
// shard-access sequence: a base bigram table plus tagged tables at
// geometric history lengths, trained online, with the longest matching
// history providing each prediction. It is not safe for concurrent
// use; the Predictor serializes access under its mutex.
type seqPredictor struct {
	ids    map[Event]uint16
	events []Event

	hist    [seqMaxHist]uint16
	histLen int

	tables [len(seqHistLens)][seqTableSize]seqEntry
	base   []seqEntry // bigram, indexed by the previous event's id

	// scratch is predictAhead's speculative history window, kept on
	// the predictor so the lookup path never allocates.
	scratch [seqMaxHist + seqMaxLookahead]uint16

	// predictions/hits self-monitor accuracy: confident predictions
	// made, and how many the next observation confirmed.
	predictions uint64
	hits        uint64
}

func newSeqPredictor() *seqPredictor {
	return &seqPredictor{ids: make(map[Event]uint16)}
}

// eventID interns an event into the bounded alphabet.
func (s *seqPredictor) eventID(ev Event) (uint16, bool) {
	if id, ok := s.ids[ev]; ok {
		return id, true
	}
	if len(s.events) >= seqMaxEvents {
		return 0, false
	}
	id := uint16(len(s.events))
	s.ids[ev] = id
	s.events = append(s.events, ev)
	s.base = append(s.base, seqEntry{})
	return id, true
}

// seqFold hashes the last n events of a history (FNV-1a over ids).
// The table index comes from the low bits, the tag from the high bits,
// so index aliases and tag aliases are decorrelated.
func seqFold(h []uint16, n int) uint32 {
	x := uint32(2166136261)
	for _, id := range h[len(h)-n:] {
		x = (x ^ uint32(id)) * 16777619
	}
	return x
}

// seqLookup predicts the event following history h: the longest-history
// tagged table with a tag match provides it; with no tagged match the
// base bigram on the last event does. provider is the matching table's
// index (-1 for base); ok reports whether any component had an answer.
func (s *seqPredictor) seqLookup(h []uint16) (next uint16, conf int8, provider int, ok bool) {
	for ti := len(seqHistLens) - 1; ti >= 0; ti-- {
		n := seqHistLens[ti]
		if len(h) < n {
			continue
		}
		f := seqFold(h, n)
		e := &s.tables[ti][f%seqTableSize]
		if e.valid && e.tag == uint16(f>>16) {
			return e.next, e.conf, ti, true
		}
	}
	if len(h) > 0 {
		if b := &s.base[h[len(h)-1]]; b.valid {
			return b.next, b.conf, -1, true
		}
	}
	return 0, 0, -1, false
}

// observe trains the predictor on the next event of the model's access
// sequence: every component that predicted it gains confidence, every
// component that predicted something else loses it (and is retargeted
// at zero), and a mispredict allocates the history into one
// longer-history table so recurring context-dependent patterns
// graduate upward — the TAGE update rule.
func (s *seqPredictor) observe(ev Event) {
	id, ok := s.eventID(ev)
	if !ok {
		return
	}
	h := s.hist[:s.histLen]
	if s.histLen > 0 {
		pred, conf, provider, found := s.seqLookup(h)
		if found && conf >= 1 {
			s.predictions++
			if pred == id {
				s.hits++
			}
		}

		// Base bigram on the immediately preceding event.
		b := &s.base[h[len(h)-1]]
		switch {
		case !b.valid:
			*b = seqEntry{valid: true, next: id}
		case b.next == id:
			if b.conf < seqMaxConf {
				b.conf++
			}
		default:
			b.conf--
			if b.conf < 0 {
				b.next, b.conf = id, 0
			}
		}

		// Tagged tables whose history already matches.
		for ti, n := range seqHistLens {
			if len(h) < n {
				continue
			}
			f := seqFold(h, n)
			e := &s.tables[ti][f%seqTableSize]
			if !e.valid || e.tag != uint16(f>>16) {
				continue
			}
			if e.next == id {
				if e.conf < seqMaxConf {
					e.conf++
				}
				if e.useful < seqMaxUseful {
					e.useful++
				}
			} else {
				e.conf--
				if e.conf < 0 {
					e.next, e.conf = id, 0
				}
				if e.useful > 0 {
					e.useful--
				}
			}
		}

		// On a mispredict, allocate the history into one table with a
		// longer history than the provider: a slot whose useful counter
		// has decayed to zero is claimed; otherwise victims age so a
		// persistent pattern claims one on a later mispredict.
		if !found || pred != id {
			for ti := provider + 1; ti < len(seqHistLens); ti++ {
				n := seqHistLens[ti]
				if len(h) < n {
					continue
				}
				f := seqFold(h, n)
				e := &s.tables[ti][f%seqTableSize]
				if e.valid && e.tag == uint16(f>>16) {
					continue // already ours; the counter update above handled it
				}
				if !e.valid || e.useful == 0 {
					*e = seqEntry{valid: true, tag: uint16(f >> 16), next: id}
					break
				}
				e.useful--
			}
		}
	}
	s.push(id)
}

func (s *seqPredictor) push(id uint16) {
	if s.histLen == seqMaxHist {
		copy(s.hist[:], s.hist[1:])
		s.hist[seqMaxHist-1] = id
		return
	}
	s.hist[s.histLen] = id
	s.histLen++
}

// predictAhead extrapolates the access sequence up to len(dst) events
// past the observed front, following only predictions at or above
// minConf: each confident prediction is appended to a speculative
// history and the lookup repeats, stopping at the first low-confidence
// step. A cold or random stream therefore yields zero events — the
// graceful degradation to no-prefetch. Returns how many events were
// written.
func (s *seqPredictor) predictAhead(dst []Event, minConf int8) int {
	if s.histLen == 0 {
		return 0
	}
	n := copy(s.scratch[:], s.hist[:s.histLen])
	count := 0
	for count < len(dst) && count < seqMaxLookahead {
		id, conf, _, ok := s.seqLookup(s.scratch[:n])
		if !ok || conf < minConf {
			break
		}
		dst[count] = s.events[id]
		count++
		if n == len(s.scratch) {
			copy(s.scratch[:], s.scratch[1:])
			n--
		}
		s.scratch[n] = id
		n++
	}
	return count
}
