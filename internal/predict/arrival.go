package predict

import "time"

// classRate tracks one (model, SLO-class) arrival stream with a pair
// of EWMAs: a fast one following the short-horizon rate and a slow one
// following the baseline. Their difference is the trend term — positive
// while load ramps, negative while it drains, near zero at steady
// state. Both start at zero, so a fresh stream reads as an upward
// trend until the slow average catches up, which is exactly when
// speculative warming pays off.
type classRate struct {
	pending uint64 // arrivals accumulated since the last tick
	fast    float64
	slow    float64
}

// arrivalPredictor aggregates one model's admission stream, bucketed
// by SLO class so a burst of tight-deadline traffic is not averaged
// away by a steady background of relaxed requests. It is not safe for
// concurrent use; the Predictor serializes access under its mutex.
type arrivalPredictor struct {
	classes  map[time.Duration]*classRate
	arrivals uint64

	// lastDepth/lastCap snapshot the admission queue as of the most
	// recent arrival — the base the replica advisor projects from.
	lastDepth int
	lastCap   int
}

func newArrivalPredictor() *arrivalPredictor {
	return &arrivalPredictor{classes: make(map[time.Duration]*classRate)}
}

// observe records one admission in the class's pending count and
// snapshots the queue state it saw.
func (a *arrivalPredictor) observe(class time.Duration, depth, capacity int) {
	c := a.classes[class]
	if c == nil {
		c = &classRate{}
		a.classes[class] = c
	}
	c.pending++
	a.arrivals++
	a.lastDepth, a.lastCap = depth, capacity
}

// tick folds the interval's pending arrivals into each class's EWMAs
// and returns the model-level rate (sum of fast averages) and trend
// (sum of fast−slow), both in requests per second.
func (a *arrivalPredictor) tick(dt time.Duration, fastAlpha, slowAlpha float64) (rate, trend float64) {
	sec := dt.Seconds()
	if sec <= 0 {
		for _, c := range a.classes {
			rate += c.fast
			trend += c.fast - c.slow
		}
		return rate, trend
	}
	for _, c := range a.classes {
		r := float64(c.pending) / sec
		c.pending = 0
		c.fast += fastAlpha * (r - c.fast)
		c.slow += slowAlpha * (r - c.slow)
		rate += c.fast
		trend += c.fast - c.slow
	}
	return rate, trend
}
