package predict

import (
	"sync"
	"testing"
	"time"

	"sti/internal/planner"
)

// fakeActuator records every actuation, synchronized for -race.
type fakeActuator struct {
	mu        sync.Mutex
	plans     []TierPlan
	prefetch  []int // layers prefetched, in call order
	keep      bool  // PrefetchShard's kept result
	warms     int
	advised   []int // depths advised
	adviseCap int
}

func (a *fakeActuator) TierPlans(string) []TierPlan {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.plans
}

func (a *fakeActuator) PrefetchShard(_ string, layer, _, _ int) (bool, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.prefetch = append(a.prefetch, layer)
	return a.keep, nil
}

func (a *fakeActuator) SpeculateWarm(string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.warms++
	return nil
}

func (a *fakeActuator) AdvisePressure(_ string, depth, capacity int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.advised = append(a.advised, depth)
	a.adviseCap = capacity
}

func (a *fakeActuator) snapshot() (prefetch []int, warms int, advised []int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]int(nil), a.prefetch...), a.warms, append([]int(nil), a.advised...)
}

// streamedPlan builds a plan whose every shard streams (none
// preloaded), so each is a prefetch candidate.
func streamedPlan(target time.Duration, layers int) TierPlan {
	p := &planner.Plan{Depth: layers, Width: 1, Target: target}
	for l := 0; l < layers; l++ {
		p.Slices = append(p.Slices, []int{0})
		p.Bits = append(p.Bits, []int{4})
		p.Preloaded = append(p.Preloaded, []bool{false})
	}
	return TierPlan{Target: target, Plan: p}
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPredictorPrefetchesLearnedStride: a repeating access stride
// trains the sequence predictor, and the actuation loop issues
// prefetches for the predicted upcoming layers.
func TestPredictorPrefetchesLearnedStride(t *testing.T) {
	tier := 100 * time.Millisecond
	act := &fakeActuator{plans: []TierPlan{streamedPlan(tier, 4)}, keep: true}
	p := New(act, Options{Prefetch: true, Interval: 2 * time.Millisecond})
	defer p.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p.ObserveAccess("m", tier, i%4)
			time.Sleep(200 * time.Microsecond)
		}
	}()
	waitFor(t, "prefetches", func() bool {
		pf, _, _ := act.snapshot()
		return len(pf) >= 4
	})
	close(stop)
	<-done

	pf, _, _ := act.snapshot()
	for _, l := range pf {
		if l < 0 || l > 3 {
			t.Fatalf("prefetched layer %d outside the plan", l)
		}
	}
	st, ok := p.Stats("m")
	if !ok {
		t.Fatal("no stats for observed model")
	}
	if st.PrefetchIssued == 0 || st.Accesses == 0 {
		t.Fatalf("stats %+v: want accesses and issued prefetches", st)
	}
	if st.SeqPredictions > 0 && st.SeqHits == 0 {
		t.Fatalf("stats %+v: converged stride should land hits", st)
	}
}

// TestPredictorSpeculatesOnArrivalTrend: a burst of arrivals produces
// an upward trend, which triggers a speculative warm and pre-emptive
// scale advice projecting the queue past its observed depth.
func TestPredictorSpeculatesOnArrivalTrend(t *testing.T) {
	act := &fakeActuator{}
	p := New(act, Options{
		Speculate: true,
		Interval:  2 * time.Millisecond,
		WarmTrend: 0.1,
		Horizon:   time.Second,
	})
	defer p.Close()

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.ObserveArrival("m", 100*time.Millisecond, 4, 64)
			time.Sleep(500 * time.Microsecond)
		}
	}()
	waitFor(t, "speculative warm and scale advice", func() bool {
		_, warms, advised := act.snapshot()
		return warms >= 1 && len(advised) >= 1
	})
	close(stop)
	<-done

	_, _, advised := act.snapshot()
	for _, d := range advised {
		if d <= 4 {
			t.Fatalf("advised depth %d not projected past the observed depth 4", d)
		}
	}
	st, _ := p.Stats("m")
	if st.ArrivalRate <= 0 || st.SpeculativeWarms == 0 || st.ScaleAdvice == 0 {
		t.Fatalf("stats %+v: want positive rate, warms and advice", st)
	}

	// No prefetching was enabled: the prefetcher must not have run.
	pf, _, _ := act.snapshot()
	if len(pf) != 0 {
		t.Fatalf("prefetcher ran %d times with Prefetch disabled", len(pf))
	}
}

// TestPredictorObserveNeverBlocks: with the loop stopped and the queue
// full, Observe calls drop instead of blocking the serving path.
func TestPredictorObserveNeverBlocks(t *testing.T) {
	act := &fakeActuator{}
	p := New(act, Options{QueueLen: 4, Interval: time.Hour})
	p.Close() // loop gone; nothing drains the queue

	for i := 0; i < 100; i++ {
		p.ObserveAccess("m", time.Millisecond, i) // must not block
		p.ObserveArrival("m", time.Millisecond, i, 64)
	}
	if p.Dropped() == 0 {
		t.Fatal("full queue did not count drops")
	}
}

// TestPredictorOptionsDefaults: zero options resolve to sane defaults
// and out-of-range values are clamped.
func TestPredictorOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Interval <= 0 || o.QueueLen <= 0 || o.Lookahead <= 0 || o.MinConfidence <= 0 {
		t.Fatalf("zero options did not default: %+v", o)
	}
	c := Options{Lookahead: 1000, MinConfidence: 100}.WithDefaults()
	if c.Lookahead > seqMaxLookahead || c.MinConfidence > seqMaxConf {
		t.Fatalf("out-of-range options not clamped: %+v", c)
	}
}
