package predict

import (
	"math/rand"
	"testing"
	"time"
)

// golden pattern with an ambiguous bigram: A's successor alternates
// between B and C depending on context, so the base table alone cannot
// converge — only the tagged history tables can.
func goldenPattern() []Event {
	a := Event{Tier: 100 * time.Millisecond, Layer: 0}
	b := Event{Tier: 100 * time.Millisecond, Layer: 1}
	c := Event{Tier: 200 * time.Millisecond, Layer: 0}
	return []Event{a, b, a, c}
}

// TestSeqConvergesOnGoldenStride: after a bounded training run on a
// repeating (tier, layer) stride, the predictor's one-step-ahead
// prediction matches the stream almost always — including at the
// context-dependent position a bigram cannot learn.
func TestSeqConvergesOnGoldenStride(t *testing.T) {
	pat := goldenPattern()
	s := newSeqPredictor()

	const train = 100
	for i := 0; i < train; i++ {
		s.observe(pat[i%len(pat)])
	}

	var dst [1]Event
	correct, total := 0, 0
	for i := train; i < train+100; i++ {
		want := pat[i%len(pat)]
		if n := s.predictAhead(dst[:], 1); n == 1 {
			total++
			if dst[0] == want {
				correct++
			}
		}
		s.observe(want)
	}
	if total < 90 {
		t.Fatalf("predictor confident on only %d/100 steps of a converged stride", total)
	}
	if correct < 90 {
		t.Fatalf("predictor correct on %d/%d confident steps, want >= 90", correct, total)
	}

	// Multi-step lookahead walks the whole cycle.
	var ahead [4]Event
	n := s.predictAhead(ahead[:], 1)
	if n != 4 {
		t.Fatalf("lookahead returned %d events, want 4", n)
	}
	// The last observed event was pat[(train+100-1)%4]; the walk must
	// continue the cycle from there.
	start := (train + 100) % len(pat)
	for k := 0; k < n; k++ {
		if want := pat[(start+k)%len(pat)]; ahead[k] != want {
			t.Fatalf("lookahead[%d] = %+v, want %+v", k, ahead[k], want)
		}
	}
}

// TestSeqColdAndRandomDegradeToNoPrefetch: an untrained predictor
// yields no predictions at all, and a uniformly random stream yields
// (almost) none — the confidence gate turns an unlearnable access
// pattern into no-prefetch rather than wasted IO.
func TestSeqColdAndRandomDegradeToNoPrefetch(t *testing.T) {
	var dst [4]Event

	cold := newSeqPredictor()
	if n := cold.predictAhead(dst[:], 1); n != 0 {
		t.Fatalf("cold predictor predicted %d events, want 0", n)
	}

	rng := rand.New(rand.NewSource(42))
	s := newSeqPredictor()
	for i := 0; i < 500; i++ {
		s.observe(Event{Tier: 100 * time.Millisecond, Layer: rng.Intn(16)})
	}
	// Across a window of further random observations, the confident
	// lookahead should stay near-empty.
	predicted := 0
	for i := 0; i < 100; i++ {
		predicted += s.predictAhead(dst[:], 1)
		s.observe(Event{Tier: 100 * time.Millisecond, Layer: rng.Intn(16)})
	}
	if predicted > 40 {
		t.Fatalf("random stream produced %d confident lookahead events over 100 steps (4 per step possible); the confidence gate is not degrading to no-prefetch", predicted)
	}
	// And the golden stream's accuracy is unreachable here: confident
	// predictions on random data are mostly wrong, so the self-monitor
	// exposes the difference.
	if s.predictions > 0 && float64(s.hits)/float64(s.predictions) > 0.5 {
		t.Fatalf("random stream self-accuracy %d/%d suspiciously high", s.hits, s.predictions)
	}
}

// TestSeqAlphabetBounded: events beyond the alphabet cap are dropped
// instead of growing the id table without bound.
func TestSeqAlphabetBounded(t *testing.T) {
	s := newSeqPredictor()
	for i := 0; i < 2*seqMaxEvents; i++ {
		s.observe(Event{Tier: time.Duration(i) * time.Millisecond, Layer: i})
	}
	if len(s.events) != seqMaxEvents || len(s.ids) != seqMaxEvents {
		t.Fatalf("alphabet grew to %d/%d, want capped at %d", len(s.events), len(s.ids), seqMaxEvents)
	}
}

// TestArrivalTrend: a burst from idle shows a positive trend, a steady
// rate decays it back toward zero, and going idle turns it negative.
func TestArrivalTrend(t *testing.T) {
	a := newArrivalPredictor()
	tick := func(n int) (rate, trend float64) {
		for i := 0; i < n; i++ {
			a.observe(100*time.Millisecond, i, 64)
		}
		return a.tick(100*time.Millisecond, 0.5, 0.1)
	}

	_, trend := tick(10)
	if trend <= 0 {
		t.Fatalf("burst from idle: trend %v, want > 0", trend)
	}
	var rate float64
	for i := 0; i < 50; i++ {
		rate, trend = tick(10)
	}
	if trend > 10 {
		t.Fatalf("steady load: trend %v did not decay toward 0 (rate %v)", trend, rate)
	}
	if rate < 50 {
		t.Fatalf("steady 100 rps load: fast EWMA says %v", rate)
	}
	_, trend = tick(0)
	if trend >= 0 {
		t.Fatalf("idle after load: trend %v, want < 0", trend)
	}
}
