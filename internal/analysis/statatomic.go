package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StatAtomic enforces all-or-nothing atomicity: a struct field or
// package-level variable whose address is passed to a sync/atomic
// function anywhere in the program must be accessed through sync/atomic
// everywhere. A plain read or write of such a variable races with the
// atomic users. Typed atomics (atomic.Uint64 etc.) cannot be misused
// this way and are out of scope. //sti:atomicok <why> suppresses a
// finding at the access line.
var StatAtomic = &Analyzer{
	Name: "statatomic",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  runStatAtomic,
}

func runStatAtomic(pass *Pass) error {
	ann := pass.Annotations("atomicok")
	scoped := pass.Scoped()

	// Pass 1: find objects whose address feeds sync/atomic, remembering
	// the idents that appear inside atomic call arguments (they are the
	// sanctioned accesses) and one exemplar position per object.
	tracked := map[types.Object]token.Pos{}
	sanctioned := map[*ast.Ident]bool{}
	for _, pkg := range scoped {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicCall(pkg.Info, call) {
					return true
				}
				for _, arg := range call.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					obj, id := addressedObject(pkg.Info, u.X)
					if obj == nil || !isTrackable(obj) {
						continue
					}
					if _, seen := tracked[obj]; !seen {
						tracked[obj] = call.Pos()
					}
					if id != nil {
						sanctioned[id] = true
					}
				}
				// Idents inside atomic args (including receiver chains)
				// are sanctioned.
				for _, arg := range call.Args {
					ast.Inspect(arg, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							sanctioned[id] = true
						}
						return true
					})
				}
				return true
			})
		}
	}
	if len(tracked) == 0 {
		return nil
	}

	// Pass 2: flag plain accesses to tracked objects.
	for _, pkg := range scoped {
		for _, f := range pkg.Files {
			initKeys := compositeLitKeys(f)
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] || initKeys[id] {
					return true
				}
				obj := pkg.Info.Uses[id]
				if obj == nil {
					return true
				}
				atomicAt, isTracked := tracked[obj]
				if !isTracked {
					return true
				}
				if ann.Allows(pass.Fset, id.Pos()) {
					return true
				}
				pass.Reportf(id.Pos(), "%s is accessed via sync/atomic at %s; this plain access races with the atomic users", obj.Name(), shortPos(pass.Fset, atomicAt))
				return true
			})
		}
	}
	return nil
}

func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// addressedObject resolves &expr to a struct field or variable object,
// returning the final ident for sanctioning.
func addressedObject(info *types.Info, e ast.Expr) (types.Object, *ast.Ident) {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[t], t
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[t]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj(), t.Sel
		}
		return info.Uses[t.Sel], t.Sel
	}
	return nil, nil
}

// isTrackable limits tracking to struct fields and package-level vars;
// function-local atomics (common in tests/benchmarks) are skipped.
func isTrackable(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	if v.IsField() {
		return true
	}
	// Package-level variable: its parent scope is the package scope.
	return v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// compositeLitKeys marks field idents used as composite-literal keys
// (initialization before the value is shared — not a racy access).
func compositeLitKeys(f *ast.File) map[*ast.Ident]bool {
	out := map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range cl.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					out[id] = true
				}
			}
		}
		return true
	})
	return out
}
