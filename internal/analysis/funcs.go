package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// OpKind classifies a potentially blocking ("parking" or IO) operation.
type OpKind int

const (
	OpChanSend OpKind = iota
	OpChanRecv
	OpChanRange
	OpSelect // select with no default clause
	OpSleep
	OpWGWait
	OpCondWait
	OpIO          // file/socket/stream write or read (see ioFullNames)
	OpOnToken     // user token callback invocation
	OpMaterialize // engine materialize (flash IO + warm)
	OpReadShard   // shard payload read (flash IO)
	OpObsRecord   // obs instrument/span record (see obsRecordNames)
)

func (k OpKind) String() string {
	switch k {
	case OpChanSend:
		return "channel send"
	case OpChanRecv:
		return "channel receive"
	case OpChanRange:
		return "range over channel"
	case OpSelect:
		return "blocking select"
	case OpSleep:
		return "time.Sleep"
	case OpWGWait:
		return "sync.WaitGroup.Wait"
	case OpCondWait:
		return "sync.Cond.Wait"
	case OpIO:
		return "IO call"
	case OpOnToken:
		return "OnToken callback"
	case OpMaterialize:
		return "Materialize call"
	case OpReadShard:
		return "ReadShardPayload call"
	case OpObsRecord:
		return "obs instrument record"
	}
	return "op"
}

// Op is one direct potentially blocking operation inside a function body.
type Op struct {
	Kind OpKind
	Pos  token.Pos
	Desc string // e.g. "channel send on s.emit", "call to time.Sleep"
}

// CallSite is a static call from one module function to another.
type CallSite struct {
	Callee *types.Func
	Pos    token.Pos
}

// FuncInfo summarizes one function declaration: its direct ops and its
// static calls to other module functions. Operations inside `go`
// statements and non-inline closures are excluded — they execute on
// other goroutines (or later), not on the caller's path. Closure bodies
// are still lattice-checked independently by locknoblock.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Ops  []Op
	Call []CallSite
}

// Program is the whole-module view shared by analyzers.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	Funcs    map[*types.Func]*FuncInfo
}

// Program returns the shared summaries for the loaded module.
func (p *Pass) Program() *Program { return p.prog }

// ioFullNames are stdlib calls treated as blocking IO. Deliberately an
// allowlist: control-plane calls (SetDeadline, Header, etc.) and
// best-effort logging are not IO for locknoblock's purposes.
var ioFullNames = map[string]bool{
	"os.ReadFile": true, "os.WriteFile": true, "os.Open": true,
	"os.OpenFile": true, "os.Create": true, "os.ReadDir": true,
	"os.MkdirAll": true, "os.Mkdir": true, "os.Remove": true,
	"os.RemoveAll": true, "os.Rename": true, "os.Stat": true,
	"(*os.File).Read": true, "(*os.File).Write": true,
	"(*os.File).ReadAt": true, "(*os.File).WriteAt": true,
	"(*os.File).Sync": true, "(*os.File).Close": true,
	"io.ReadAll": true, "io.Copy": true, "io.WriteString": true,
	"fmt.Fprintf": true, "fmt.Fprint": true, "fmt.Fprintln": true,
	"(*encoding/json.Encoder).Encode": true,
	"(*encoding/json.Decoder).Decode": true,
	"net.Dial":                        true, "net.Listen": true,
	"net/http.Get": true, "net/http.Post": true,
	"(*net/http.Client).Do":             true,
	"(*net/http.Server).ListenAndServe": true,
	"(net/http.Flusher).Flush":          true,
}

// obsRecordNames are the record-side methods of internal/obs
// instruments and traces. Recording is lock-free by construction
// (atomic cells, fixed span slab), so doing it under a Fleet.mu or
// Batcher.mu-class critical section is never necessary — and a record
// under a lock is how instrumentation quietly grows a serialization
// point. Matching is type-aware: only methods whose receiver lives in
// the obs package count, so unrelated functions sharing these names
// are untouched.
var obsRecordNames = map[string]bool{
	"Inc": true, "AddN": true, "SetTo": true, "AddDelta": true,
	"Observe": true, "Begin": true, "EndSpan": true, "Interval": true,
	"AdoptIntervals": true, "StepDone": true, "Offer": true,
	"StartRequest": true, "FinishRequest": true,
}

// isObsRecordCall reports whether a call records an obs instrument or
// span (receiver declared in the internal obs package).
func isObsRecordCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !obsRecordNames[sel.Sel.Name] {
		return false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "/internal/obs")
}

// classifyCall maps a call expression to an op kind, or returns false.
func classifyCall(info *types.Info, call *ast.CallExpr) (OpKind, string, bool) {
	// Selector-based repo-specific names work for interface methods,
	// concrete methods, and func-typed fields alike.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "OnToken":
			return OpOnToken, "OnToken callback invocation", true
		case "Materialize":
			return OpMaterialize, "call to Materialize (flash IO + warm)", true
		case "ReadShardPayload":
			return OpReadShard, "call to ReadShardPayload (flash IO)", true
		}
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return 0, "", false
	}
	full := fn.FullName()
	if full == "time.Sleep" {
		return OpSleep, "call to time.Sleep", true
	}
	if full == "(*sync.WaitGroup).Wait" {
		return OpWGWait, "call to sync.WaitGroup.Wait", true
	}
	if full == "(*sync.Cond).Wait" {
		return OpCondWait, "call to sync.Cond.Wait", true
	}
	if ioFullNames[full] {
		return OpIO, "call to " + full, true
	}
	if isObsRecordCall(info, call) {
		return OpObsRecord, "obs record via " + full, true
	}
	return 0, "", false
}

// calleeFunc resolves the *types.Func a call statically invokes, or nil
// for dynamic calls (func values), conversions, and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// buildProgram collects per-function summaries for every module package.
func buildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{Fset: fset, Packages: pkgs, Funcs: map[*types.Func]*FuncInfo{}}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				collectOps(pkg.Info, fd.Body, fi)
				prog.Funcs[obj] = fi
			}
		}
	}
	return prog
}

// collectOps walks a body recording direct ops and module-internal call
// sites, skipping `go` statement payloads and non-inline closures.
func collectOps(info *types.Info, body ast.Node, fi *FuncInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Arguments are evaluated on this goroutine; the call runs
			// elsewhere. Walk args only.
			for _, a := range n.Call.Args {
				collectOps(info, a, fi)
			}
			return false
		case *ast.FuncLit:
			// Only immediately-invoked closures run on this path; the
			// Inspect parent hook below handles that case by not
			// descending here and letting CallExpr drive it.
			return false
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked closure: body runs inline.
				collectOps(info, lit.Body, fi)
				for _, a := range n.Args {
					collectOps(info, a, fi)
				}
				return false
			}
			if kind, desc, ok := classifyCall(info, n); ok {
				fi.Ops = append(fi.Ops, Op{Kind: kind, Pos: n.Pos(), Desc: desc})
			} else if fn := calleeFunc(info, n); fn != nil {
				fi.Call = append(fi.Call, CallSite{Callee: fn, Pos: n.Pos()})
			}
			return true
		case *ast.SendStmt:
			fi.Ops = append(fi.Ops, Op{Kind: OpChanSend, Pos: n.Pos(), Desc: "channel send on " + types.ExprString(n.Chan)})
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				fi.Ops = append(fi.Ops, Op{Kind: OpChanRecv, Pos: n.Pos(), Desc: "channel receive from " + types.ExprString(n.X)})
			}
			return true
		case *ast.RangeStmt:
			if isChanType(info, n.X) {
				fi.Ops = append(fi.Ops, Op{Kind: OpChanRange, Pos: n.Pos(), Desc: "range over channel " + types.ExprString(n.X)})
			}
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				fi.Ops = append(fi.Ops, Op{Kind: OpSelect, Pos: n.Pos(), Desc: "blocking select"})
			}
			// The comm clauses belong to the select's own blocking
			// semantics (non-blocking when a default exists); only the
			// clause bodies contribute further ops.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						collectOps(info, st, fi)
					}
				}
			}
			return false
		}
		return true
	})
}

func isChanType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// Cause explains why a function blocks/parks: a direct op, reached via
// zero or more module-internal calls.
type Cause struct {
	Op      Op
	Through []*types.Func // call chain, outermost first
}

// Describe renders the cause for a diagnostic message.
func (c *Cause) Describe(fset *token.FileSet) string {
	s := c.Op.Desc + " at " + shortPos(fset, c.Op.Pos)
	for i := len(c.Through) - 1; i >= 0; i-- {
		s = "call into " + c.Through[i].FullName() + ": " + s
	}
	return s
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return trimPath(p.Filename) + ":" + itoa(p.Line)
}

func trimPath(path string) string {
	// Keep the last two path components for readable diagnostics.
	slash := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			slash++
			if slash == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Summarize computes, for every module function, whether it transitively
// performs one of the given op kinds (annotated ops excluded) — a
// fixed-point over the static call graph. stop(fn) prunes propagation
// through specific callees (e.g. shutdown-verb APIs for ctxflow).
func (prog *Program) Summarize(fset *token.FileSet, kinds map[OpKind]bool, allowed *AnnotationSet, stop func(*types.Func) bool) map[*types.Func]*Cause {
	causes := map[*types.Func]*Cause{}
	for fn, fi := range prog.Funcs {
		for i := range fi.Ops {
			op := fi.Ops[i]
			if !kinds[op.Kind] {
				continue
			}
			if allowed != nil && allowed.Allows(fset, op.Pos) {
				continue
			}
			causes[fn] = &Cause{Op: op}
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fi := range prog.Funcs {
			if causes[fn] != nil {
				continue
			}
			for _, cs := range fi.Call {
				sub, ok := causes[cs.Callee]
				if !ok {
					continue
				}
				if stop != nil && stop(cs.Callee) {
					continue
				}
				if allowed != nil && allowed.Allows(fset, cs.Pos) {
					continue
				}
				causes[fn] = &Cause{Op: sub.Op, Through: append([]*types.Func{cs.Callee}, sub.Through...)}
				changed = true
				break
			}
		}
	}
	return causes
}
