package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LostCancel flags context cancel functions that are discarded or never
// called: `_, _ = context.WithCancel(ctx)` and `ctx, cancel := ...` where
// cancel is never used. Failing to call cancel leaks the context's timer
// and goroutine.
var LostCancel = &Analyzer{
	Name: "lostcancel",
	Doc:  "cancel functions returned by context.With* must be used",
	Run:  runLostCancel,
}

var cancelSources = map[string]bool{
	"context.WithCancel":   true,
	"context.WithTimeout":  true,
	"context.WithDeadline": true,
}

func runLostCancel(pass *Pass) error {
	for _, pkg := range pass.Scoped() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				fn, body := funcNode(n)
				if body == nil {
					return true
				}
				checkLostCancel(pass, pkg.Info, fn, body)
				return true
			})
		}
	}
	return nil
}

func funcNode(n ast.Node) (ast.Node, *ast.BlockStmt) {
	switch d := n.(type) {
	case *ast.FuncDecl:
		return d, d.Body
	case *ast.FuncLit:
		return d, d.Body
	}
	return nil, nil
}

func checkLostCancel(pass *Pass, info *types.Info, fn ast.Node, body *ast.BlockStmt) {
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			continue
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			continue
		}
		callee := calleeFunc(info, call)
		if callee == nil || !cancelSources[callee.FullName()] {
			continue
		}
		cancelExpr := as.Lhs[1]
		id, ok := cancelExpr.(*ast.Ident)
		if !ok {
			continue
		}
		if id.Name == "_" {
			pass.Reportf(id.Pos(), "the cancel function returned by %s is discarded; the context leaks until its parent is done", callee.FullName())
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			continue
		}
		// Uses inside `_ = cancel` blank assignments do not count: the
		// function is still never called.
		blankUses := map[*ast.Ident]bool{}
		ast.Inspect(body, func(m ast.Node) bool {
			ba, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			allBlank := true
			for _, lhs := range ba.Lhs {
				if bid, ok := lhs.(*ast.Ident); !ok || bid.Name != "_" {
					allBlank = false
				}
			}
			if !allBlank {
				return true
			}
			for _, rhs := range ba.Rhs {
				if rid, ok := rhs.(*ast.Ident); ok {
					blankUses[rid] = true
				}
			}
			return true
		})
		used := false
		ast.Inspect(body, func(m ast.Node) bool {
			if used {
				return false
			}
			if u, ok := m.(*ast.Ident); ok && u != id && !blankUses[u] && info.Uses[u] == obj {
				used = true
			}
			return true
		})
		if !used {
			pass.Reportf(id.Pos(), "the cancel function %s is never used; call it (usually with defer) to release the context", id.Name)
		}
	}
}

// CopyLocks extends vet's copylocks to two shapes vet does not report:
// returning a lock-containing value by value, and ranging over a slice
// of lock-containing values by value.
var CopyLocks = &Analyzer{
	Name: "copylocks",
	Doc:  "flag by-value copies of lock-containing values beyond vet's coverage",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *Pass) error {
	for _, pkg := range pass.Scoped() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Type.Results == nil {
						return true
					}
					for _, res := range n.Type.Results.List {
						tv, ok := pkg.Info.Types[res.Type]
						if !ok || tv.Type == nil {
							continue
						}
						if path := lockPath(tv.Type, nil); path != "" {
							pass.Reportf(res.Type.Pos(), "%s returns %s by value, copying %s; return a pointer", n.Name.Name, types.TypeString(tv.Type, types.RelativeTo(pkg.Types)), path)
						}
					}
				case *ast.RangeStmt:
					if n.Value == nil {
						return true
					}
					var vt types.Type
					if tv, ok := pkg.Info.Types[n.Value]; ok && tv.Type != nil {
						vt = tv.Type
					} else if id, ok := n.Value.(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							vt = obj.Type()
						}
					}
					if vt == nil {
						return true
					}
					if path := lockPath(vt, nil); path != "" {
						pass.Reportf(n.Value.Pos(), "range copies %s by value, copying %s; iterate by index or over pointers", types.TypeString(vt, types.RelativeTo(pkg.Types)), path)
					}
				}
				return true
			})
		}
	}
	return nil
}

// lockPath reports a path to a lock type contained by value in t, or "".
func lockPath(t types.Type, seen []types.Type) string {
	for _, s := range seen {
		if types.Identical(s, t) {
			return ""
		}
	}
	seen = append(seen, t)
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
				return "sync." + obj.Name()
			}
		}
		return lockPath(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if p := lockPath(u.Field(i).Type(), seen); p != "" {
				return u.Field(i).Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPath(u.Elem(), seen); p != "" {
			return "[...]" + p
		}
	}
	return ""
}

// Nilness flags two local nil-discipline mistakes: dereferencing a
// pointer inside the body of its own `== nil` check, and a `== nil`
// check that appears after the pointer was already dereferenced in the
// same block.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "flag dereferences inside nil-true branches and nil checks after dereference",
	Run:  runNilness,
}

func runNilness(pass *Pass) error {
	for _, pkg := range pass.Scoped() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				block, ok := n.(*ast.BlockStmt)
				if !ok {
					return true
				}
				checkNilnessBlock(pass, pkg.Info, block)
				return true
			})
		}
	}
	return nil
}

func checkNilnessBlock(pass *Pass, info *types.Info, block *ast.BlockStmt) {
	derefed := map[types.Object]token.Pos{}
	for _, stmt := range block.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Init == nil {
			if obj := nilCheckedObj(info, ifs.Cond); obj != nil {
				// Deref inside the nil-true branch.
				if pos, ok := derefInStmts(info, ifs.Body.List, obj); ok {
					pass.Reportf(pos, "%s is dereferenced here but is nil on this branch (checked at %s)", obj.Name(), shortPos(pass.Fset, ifs.Cond.Pos()))
				}
				// Nil check after an earlier dereference.
				if pos, ok := derefed[obj]; ok {
					pass.Reportf(ifs.Cond.Pos(), "nil check of %s comes after its dereference at %s; move the check first", obj.Name(), shortPos(pass.Fset, pos))
				}
			}
		}
		recordDerefs(info, stmt, derefed)
		clearAssigned(info, stmt, derefed)
	}
}

// nilCheckedObj matches `x == nil` for a pointer-typed ident x.
func nilCheckedObj(info *types.Info, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if id, ok := y.(*ast.Ident); ok && id.Name == "nil" {
		if xid, ok := x.(*ast.Ident); ok {
			if obj := info.Uses[xid]; obj != nil && isPointerObj(obj) {
				return obj
			}
		}
	}
	return nil
}

func isPointerObj(obj types.Object) bool {
	_, ok := obj.Type().Underlying().(*types.Pointer)
	return ok
}

// derefInStmts finds a dereference of obj (x.f, *x, x[i]) in stmts,
// stopping at any reassignment of obj or early return before a deref.
func derefInStmts(info *types.Info, stmts []ast.Stmt, obj types.Object) (token.Pos, bool) {
	var found token.Pos
	assigned := false
	for _, s := range stmts {
		if assigned || found.IsValid() {
			break
		}
		ast.Inspect(s, func(n ast.Node) bool {
			if found.IsValid() || assigned {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
						assigned = true
						return false
					}
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok && info.Uses[id] == obj {
					found = n.Pos()
					return false
				}
			case *ast.StarExpr:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.Uses[id] == obj {
					found = n.Pos()
					return false
				}
			case *ast.IndexExpr:
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.Uses[id] == obj {
					found = n.Pos()
					return false
				}
			}
			return true
		})
	}
	return found, found.IsValid()
}

// recordDerefs notes top-level dereferences of pointer idents in stmt
// (not descending into nested blocks or closures, which have their own
// control flow).
func recordDerefs(info *types.Info, stmt ast.Stmt, out map[types.Object]token.Pos) {
	switch stmt.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.BlockStmt:
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil && isPointerObj(obj) {
					if _, seen := out[obj]; !seen {
						out[obj] = sel.Pos()
					}
				}
			}
		}
		return true
	})
}

// clearAssigned drops tracking for idents reassigned by stmt.
func clearAssigned(info *types.Info, stmt ast.Stmt, out map[types.Object]token.Pos) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				delete(out, obj)
			}
			if obj := info.Defs[id]; obj != nil {
				delete(out, obj)
			}
		}
	}
}
