package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc (report-only) flags per-step allocations in the decode hot
// path: make/new-slice/new-map expressions, fresh tensor constructions,
// slice-clone appends, and closure captures inside the per-step and
// per-layer loops (StepBatch/StepLogits, the ExecuteBatch layer loop,
// batcher stepOnce, decompress paths). Each finding is a candidate for
// the zero-copy ROADMAP item: hoist the buffer to a reused scratch
// field. Findings never fail the build; the checked-in baseline keeps
// known ones out of CI output. //sti:allocok <why> suppresses a finding.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "report allocations and closure captures in per-step/per-layer hot loops",
	ReportOnly: true,
	Run:        runHotAlloc,
}

// hotFuncNames are the per-step/per-layer functions whose bodies are
// treated as hot. Matching is by function name so testdata and future
// call sites participate without configuration.
var hotFuncNames = map[string]bool{
	"StepBatch":     true,
	"StepLogits":    true,
	"stepOnce":      true,
	"preemptFor":    true,
	"ExecuteBatch":  true,
	"streamLayers":  true,
	"assemble":      true,
	"eachStream":    true,
	"DecodePayload": true,
	"Decompress":    true,
	"ForwardLayer":  true,
	// Predictor observe/lookup paths: the serving-side taps run on
	// every request and every streamed layer, and the training/lookup
	// loop runs per observation at tick rate — allocations here leak
	// into first-token latency just like decode-loop ones.
	"ObserveArrival": true,
	"ObserveAccess":  true,
	"ingest":         true,
	"observe":        true,
	"seqLookup":      true,
	"predictAhead":   true,
	// Observability record/span paths: instruments fire on every
	// request and every decode step, and span recording sits inside
	// the same loops hotalloc guards. The whole point of the fixed
	// Trace slab and atomic instrument cells is that recording never
	// allocates — an allocation here is a regression, not a style nit.
	"Inc":            true,
	"AddN":           true,
	"SetTo":          true,
	"AddDelta":       true,
	"Observe":        true,
	"Begin":          true,
	"EndSpan":        true,
	"Interval":       true,
	"AdoptIntervals": true,
	"StepDone":       true,
	"StartRequest":   true,
	"FinishRequest":  true,
	"recordAdmitted": true,
}

func runHotAlloc(pass *Pass) error {
	ann := pass.Annotations("allocok")
	for _, pkg := range pass.Scoped() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hotFuncNames[fd.Name.Name] {
					continue
				}
				flagHotAllocs(pass, pkg.Info, fd, ann)
			}
		}
	}
	return nil
}

func flagHotAllocs(pass *Pass, info *types.Info, fd *ast.FuncDecl, ann *AnnotationSet) {
	name := fd.Name.Name
	var walk func(n ast.Node, inLoop bool)
	walk = func(root ast.Node, inLoop bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Init != nil {
					walk(n.Init, inLoop)
				}
				walk(n.Body, true)
				return false
			case *ast.RangeStmt:
				walk(n.Body, true)
				return false
			case *ast.FuncLit:
				if inLoop {
					report(pass, ann, n.Pos(), name, "closure allocation in loop")
				}
				// The closure body inherits hotness.
				walk(n.Body, inLoop)
				return false
			case *ast.CallExpr:
				describeAllocCall(pass, info, ann, n, name, inLoop)
				return true
			case *ast.CompositeLit:
				if !inLoop {
					return true
				}
				tv, ok := info.Types[ast.Expr(n)]
				if !ok || tv.Type == nil {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(pass, ann, n.Pos(), name, "slice/map literal in loop")
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body, false)
	return
}

func describeAllocCall(pass *Pass, info *types.Info, ann *AnnotationSet, call *ast.CallExpr, hot string, inLoop bool) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make":
				if inLoop {
					report(pass, ann, call.Pos(), hot, "make in loop")
				} else {
					report(pass, ann, call.Pos(), hot, "per-call make")
				}
			case "append":
				// append to a fresh nil/empty slice clones per call.
				if len(call.Args) > 0 && isFreshSlice(info, call.Args[0]) {
					report(pass, ann, call.Pos(), hot, "slice clone via append to a fresh slice")
				}
			}
			return
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
		if strings.HasSuffix(fn.Pkg().Path(), "/tensor") && strings.HasPrefix(fn.Name(), "New") {
			if inLoop {
				report(pass, ann, call.Pos(), hot, "tensor allocation in loop ("+fn.Name()+")")
			} else {
				report(pass, ann, call.Pos(), hot, "per-call tensor allocation ("+fn.Name()+")")
			}
		}
	}
}

// isFreshSlice reports []T(nil), []T{}, or nil as an append base.
func isFreshSlice(info *types.Info, e ast.Expr) bool {
	switch t := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		// Conversion like []T(nil).
		if len(t.Args) == 1 {
			if id, ok := ast.Unparen(t.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				if tv, ok := info.Types[t.Fun]; ok && tv.IsType() {
					return true
				}
			}
		}
	case *ast.CompositeLit:
		if tv, ok := info.Types[ast.Expr(t)]; ok && tv.Type != nil {
			if _, isSlice := tv.Type.Underlying().(*types.Slice); isSlice {
				return len(t.Elts) == 0
			}
		}
	case *ast.Ident:
		return t.Name == "nil"
	}
	return false
}

func report(pass *Pass, ann *AnnotationSet, pos token.Pos, hot string, what string) {
	if ann.Allows(pass.Fset, pos) {
		return
	}
	pass.Reportf(pos, "hot-path allocation in %s: %s; reuse a scratch buffer (zero-copy roadmap)", hot, what)
}
