package statatomic

import "sync/atomic"

type counters struct {
	hits int64
	miss int64
}

func (c *counters) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) badPlainRead() int64 {
	return c.hits // want "hits is accessed via sync/atomic at .*; this plain access races"
}

func (c *counters) badPlainWrite() {
	c.hits = 0 // want "hits is accessed via sync/atomic"
}

func (c *counters) goodAtomicRead() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counters) goodUntracked() int64 {
	c.miss++
	return c.miss
}

func newCounters() *counters {
	return &counters{hits: 0, miss: 0} // composite-literal init: not racy
}

func (c *counters) okAnnotated() {
	c.hits = 0 //sti:atomicok single-threaded reset before workers start
}
