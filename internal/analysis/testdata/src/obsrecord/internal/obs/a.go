// Package obs is a testdata double of the real internal/obs package:
// its import path ends in /internal/obs, so locknoblock classifies
// calls to its record methods as obs records. The invariant under
// test: no instrument or span is recorded while a mutex is held —
// recording is lock-free by construction, so a record inside a
// critical section only widens it.
package obs

import "sync"

type Counter struct{ v uint64 }

func (c *Counter) Inc() { c.v++ }

type Trace struct{ n int }

func (t *Trace) Begin(parent int, name, detail string) int { t.n++; return t.n }

func (t *Trace) EndSpan(id int) {}

type batcher struct {
	mu      sync.Mutex
	pending int
	admit   *Counter
	tr      *Trace
}

func (b *batcher) badCounterUnderLock() {
	b.mu.Lock()
	b.admit.Inc() // want "obs record via .*Counter.*Inc while holding b.mu"
	b.mu.Unlock()
}

func (b *batcher) badSpanUnderLock() {
	b.mu.Lock()
	defer b.mu.Unlock()
	id := b.tr.Begin(0, "batch.assemble", "") // want "obs record via .*Trace.*Begin while holding b.mu"
	b.tr.EndSpan(id)                          // want "obs record via .*Trace.*EndSpan while holding b.mu"
}

func (b *batcher) note() { b.admit.Inc() }

func (b *batcher) badTransitiveRecord() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.note() // want "call to .*note blocks"
}

// The fix pattern: snapshot under the lock, record after release.
func (b *batcher) goodRecordAfterUnlock() {
	b.mu.Lock()
	n := b.pending
	b.mu.Unlock()
	if n > 0 {
		b.admit.Inc()
	}
}

type scraper struct {
	mu sync.RWMutex
	c  *Counter
}

// Read-side RWMutex regions are exempt by design (scrape-time
// collector funcs run under the fleet's read lock).
func (s *scraper) goodReadLocked() {
	s.mu.RLock()
	s.c.Inc()
	s.mu.RUnlock()
}

func (b *batcher) allowedAnnotated() {
	b.mu.Lock()
	b.admit.Inc() //sti:lockok admission counter must move atomically with pending
	b.mu.Unlock()
}
