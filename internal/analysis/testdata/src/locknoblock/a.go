package locknoblock

import (
	"os"
	"sync"
	"time"
)

type q struct {
	mu sync.Mutex
	ch chan int
}

func (s *q) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send on s.ch while holding s.mu"
	s.mu.Unlock()
}

func (s *q) badRecvUnderDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive from s.ch while holding s.mu"
}

func (s *q) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding s.mu"
	s.mu.Unlock()
}

func (s *q) badIO() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.ReadFile("x") // want "os.ReadFile while holding s.mu"
}

func (s *q) badSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "blocking select while holding s.mu"
	case v := <-s.ch:
		_ = v
	case s.ch <- 1:
	}
}

func (s *q) goodUnlockFirst() {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

func (s *q) goodSelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

func (s *q) helper() { s.ch <- 2 }

func (s *q) badTransitive() {
	s.mu.Lock()
	s.helper() // want "helper .*blocks: channel send"
	s.mu.Unlock()
}

func (s *q) badTryLock() {
	if !s.mu.TryLock() {
		return
	}
	s.ch <- 3 // want "channel send on s.ch while holding s.mu"
	s.mu.Unlock()
}

func (s *q) goodGoStmt() {
	s.mu.Lock()
	go func() { s.ch <- 4 }()
	s.mu.Unlock()
}

func (s *q) okAnnotated() {
	s.mu.Lock()
	s.ch <- 5 //sti:lockok bounded buffered channel owned by this test
	s.mu.Unlock()
}

func (s *q) badBareAnnotation() {
	s.mu.Lock()
	s.ch <- 6 //sti:lockok // want "requires a justification" "channel send on s.ch"
	s.mu.Unlock()
}

type cb struct {
	mu      sync.Mutex
	OnToken func(int)
}

func (c *cb) badOnToken() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.OnToken(1) // want "OnToken callback invocation while holding c.mu"
}

type eng struct{}

func (eng) Materialize() {}

type m struct {
	mu sync.Mutex
	e  eng
}

func (x *m) badMaterialize() {
	x.mu.Lock()
	x.e.Materialize() // want "Materialize .*while holding x.mu"
	x.mu.Unlock()
}

type rw struct {
	mu sync.RWMutex
	ch chan int
}

func (r *rw) badWriteSide() {
	r.mu.Lock()
	r.ch <- 1 // want "channel send on r.ch while holding r.mu"
	r.mu.Unlock()
}

func (r *rw) okReadSide() {
	r.mu.RLock()
	r.ch <- 1
	r.mu.RUnlock()
}
