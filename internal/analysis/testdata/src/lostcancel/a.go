package lostcancel

import (
	"context"
	"time"
)

func badDiscard(ctx context.Context) context.Context {
	c, _ := context.WithTimeout(ctx, time.Second) // want "cancel function returned by context.WithTimeout is discarded"
	return c
}

func badUnused(ctx context.Context) context.Context {
	c, cancel := context.WithCancel(ctx) // want "cancel function cancel is never used"
	_ = cancel
	return c
}

func good(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	<-c.Done()
	return c.Err()
}
