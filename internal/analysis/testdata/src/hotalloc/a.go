package hotalloc

type frame struct{ data []float32 }

func StepLogits(frames []frame) []float32 {
	out := make([]float32, 0, 16) // want "per-call make"
	for _, f := range frames {
		buf := make([]float32, len(f.data)) // want "make in loop"
		copy(buf, f.data)
		tmp := append([]float32(nil), f.data...) // want "slice clone via append to a fresh slice"
		_ = tmp
		fn := func() int { return len(buf) } // want "closure allocation in loop"
		_ = fn()
		out = append(out, buf...)
	}
	return out
}

func coldPath(frames []frame) []float32 {
	out := make([]float32, 0, 16)
	for _, f := range frames {
		buf := make([]float32, len(f.data))
		copy(buf, f.data)
		out = append(out, buf...)
	}
	return out
}

func stepOnce(n int) []int {
	var parts []int
	for i := 0; i < n; i++ {
		m := map[int]bool{} // want "slice/map literal in loop"
		m[i] = true
		parts = append(parts, len(m))
	}
	return parts
}

func ExecuteBatch(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		s := []int{i} //sti:allocok staging slice retained by the caller across steps
		total += len(s)
	}
	return total
}

// Observability record paths are hot by name: instruments fire per
// request and spans per decode step, so their bodies get the same
// allocation discipline as the decode loop itself.

type hist struct{ buckets []uint64 }

func (h *hist) Observe(v int64) {
	tmp := make([]uint64, len(h.buckets)) // want "hot-path allocation in Observe: per-call make"
	copy(tmp, h.buckets)
}

type tracer struct{ spans []int }

func (t *tracer) FinishRequest(n int) {
	for i := 0; i < n; i++ {
		flush := func() int { return len(t.spans) } // want "closure allocation in loop"
		_ = flush()
	}
}

// Value reads are not record-path names: no discipline applied.
func (h *hist) Quantile(q float64) []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}
