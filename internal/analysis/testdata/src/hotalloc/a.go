package hotalloc

type frame struct{ data []float32 }

func StepLogits(frames []frame) []float32 {
	out := make([]float32, 0, 16) // want "per-call make"
	for _, f := range frames {
		buf := make([]float32, len(f.data)) // want "make in loop"
		copy(buf, f.data)
		tmp := append([]float32(nil), f.data...) // want "slice clone via append to a fresh slice"
		_ = tmp
		fn := func() int { return len(buf) } // want "closure allocation in loop"
		_ = fn()
		out = append(out, buf...)
	}
	return out
}

func coldPath(frames []frame) []float32 {
	out := make([]float32, 0, 16)
	for _, f := range frames {
		buf := make([]float32, len(f.data))
		copy(buf, f.data)
		out = append(out, buf...)
	}
	return out
}

func stepOnce(n int) []int {
	var parts []int
	for i := 0; i < n; i++ {
		m := map[int]bool{} // want "slice/map literal in loop"
		m[i] = true
		parts = append(parts, len(m))
	}
	return parts
}

func ExecuteBatch(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		s := []int{i} //sti:allocok staging slice retained by the caller across steps
		total += len(s)
	}
	return total
}
