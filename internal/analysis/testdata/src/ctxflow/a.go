package ctxflow

import (
	"context"
	"time"
)

type Server struct{ ch chan int }

func (s *Server) Produce() int { // want "exported API Produce blocks .*but takes no context.Context"
	return <-s.ch
}

func (s *Server) Close() { // shutdown verb: exempt
	<-s.ch
}

func (s *Server) Fetch(n int, ctx context.Context) { // want "context.Context parameter of Fetch must come first"
	_ = n
	<-ctx.Done()
}

func (s *Server) Relay(ctx context.Context) {
	_ = ctx
	s.do(context.Background()) // want "Background replaces the in-scope ctx passed to do"
}

func (s *Server) do(ctx context.Context) {
	select {
	case <-ctx.Done():
	case v := <-s.ch:
		_ = v
	}
}

func (s *Server) Settle(ctx context.Context) { // want "Settle takes ctx but never threads it"
	time.Sleep(time.Second)
}

//sti:ctxok deprecated positional shim retained for compatibility
func (s *Server) Legacy() int {
	return <-s.ch
}

func (s *Server) Poll(ctx context.Context) int { // good: ctx first and threaded
	select {
	case <-ctx.Done():
		return 0
	case v := <-s.ch:
		return v
	}
}
