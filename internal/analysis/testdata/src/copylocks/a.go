package copylocks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func badReturn() guarded { // want "badReturn returns guarded by value, copying mu.sync.Mutex"
	return guarded{}
}

func badRange(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range copies guarded by value, copying mu.sync.Mutex"
		total += g.n
	}
	return total
}

func goodPointer() *guarded { return &guarded{} }

func goodIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}
