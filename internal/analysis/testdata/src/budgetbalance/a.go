package budgetbalance

import "errors"

type pool struct{}

func (p *pool) Acquire() (int, error) { return 1, nil }
func (p *pool) Release(int)           {}

type kv struct{}

func (k *kv) ReserveKV(n int64) bool { return true }
func (k *kv) ReleaseKV(n int64)      {}

type scaler struct{}

func (s *scaler) BeginScale() bool { return true }
func (s *scaler) EndScale()        {}

type env struct {
	p *pool
	k *kv
	s *scaler
}

func (e *env) badAcquire(x int) error {
	rep, err := e.p.Acquire()
	if err != nil {
		return err // the acquire's own failure guard: exempt
	}
	if x > 0 {
		return errors.New("boom") // want "e.p.Acquire acquired at .* is not released or rolled back"
	}
	e.p.Release(rep)
	return nil
}

func (e *env) goodAcquire(x int) error {
	rep, err := e.p.Acquire()
	if err != nil {
		return err
	}
	if x > 0 {
		e.p.Release(rep)
		return errors.New("boom")
	}
	e.p.Release(rep)
	return nil
}

func (e *env) goodDefer(x int) error {
	rep, err := e.p.Acquire()
	if err != nil {
		return err
	}
	defer e.p.Release(rep)
	if x > 0 {
		return errors.New("boom")
	}
	return nil
}

func (e *env) badReserve(n int64) error {
	if !e.k.ReserveKV(n) {
		return errors.New("no budget")
	}
	if n > 10 {
		return errors.New("too big") // want "e.k.ReserveKV acquired at .* is not released or rolled back"
	}
	e.k.ReleaseKV(n)
	return nil
}

func (e *env) badScale(x int) error {
	if !e.s.BeginScale() {
		return nil
	}
	if x > 0 {
		return errors.New("fail") // want "e.s.BeginScale acquired at .* is not released or rolled back"
	}
	e.s.EndScale()
	return nil
}

func (e *env) goodHandoff(x int) error {
	if !e.s.BeginScale() {
		return nil
	}
	go func() {
		defer e.s.EndScale()
	}()
	if x > 0 {
		return errors.New("fail after handoff")
	}
	return nil
}

func (e *env) okAnnotated(x int) error {
	if !e.k.ReserveKV(int64(x)) {
		return errors.New("no budget")
	}
	if x > 5 {
		return errors.New("caller rolls back") //sti:budgetok caller releases via the returned cleanup hook
	}
	e.k.ReleaseKV(int64(x))
	return nil
}
