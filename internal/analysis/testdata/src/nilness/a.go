package nilness

type node struct {
	next *node
	val  int
}

func badDerefInNilBranch(n *node) int {
	if n == nil {
		return n.val // want "n is dereferenced here but is nil on this branch"
	}
	return n.val
}

func badCheckAfterDeref(n *node) int {
	v := n.val
	if n == nil { // want "nil check of n comes after its dereference"
		return 0
	}
	return v
}

func goodGuard(n *node) int {
	if n == nil {
		return 0
	}
	return n.val
}

func goodReassign(n *node) int {
	if n == nil {
		n = &node{}
		return n.val
	}
	return n.val
}
