// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"sti/internal/analysis"
)

var wantRE = regexp.MustCompile(`// want (.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads testdata/src/<pkgName> (relative to the test's working
// directory), applies the analyzer, and matches diagnostics against
// want comments. Every want must be hit and every diagnostic must match
// a want on its line.
func Run(t *testing.T, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgName)
	fset, pkg, err := analysis.LoadDir(dir, pkgName)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
					pat, err := unquoteWant(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants = append(wants, &expectation{
						file: filepath.Base(pos.Filename),
						line: pos.Line,
						re:   pat,
						raw:  q[1],
					})
				}
			}
		}
	}

	runner := &analysis.Runner{
		Fset:      fset,
		Packages:  []*analysis.Package{pkg},
		Analyzers: []*analysis.Analyzer{a},
	}
	diags, err := runner.Run()
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", base, d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
	if t.Failed() {
		var all []string
		for _, d := range diags {
			all = append(all, fmt.Sprintf("%s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message))
		}
		t.Logf("all diagnostics:\n%s", strings.Join(all, "\n"))
	}
}

func unquoteWant(s string) (*regexp.Regexp, error) {
	s = strings.ReplaceAll(s, `\"`, `"`)
	return regexp.Compile(s)
}
