package analysis

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is a diagnostic prepared for output: position relative to the
// module root, baseline key, and exit-code relevance.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"` // module-relative
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	ReportOnly bool   `json:"report_only,omitempty"`
	Baselined  bool   `json:"baselined,omitempty"`
}

// Key identifies a finding across line-number churn: analyzer + file +
// message (which embeds stable context like lock names and op kinds).
func (f Finding) Key() string {
	return f.Analyzer + "\x00" + f.File + "\x00" + f.Message
}

// Baseline is the checked-in set of known findings that must not fail
// CI (typically report-only hotalloc findings awaiting the zero-copy
// work).
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry mirrors Finding's key fields.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

func (e BaselineEntry) key() string {
	return e.Analyzer + "\x00" + e.File + "\x00" + e.Message
}

// LoadBaseline reads a baseline file; a missing file is an empty
// baseline.
func LoadBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, err
	}
	out := make(map[string]bool, len(b.Findings))
	for _, e := range b.Findings {
		out[e.key()] = true
	}
	return out, nil
}

// WriteBaseline persists the given findings as the new baseline.
func WriteBaseline(path string, findings []Finding) error {
	b := Baseline{Findings: make([]BaselineEntry, 0, len(findings))}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{Analyzer: f.Analyzer, File: f.File, Message: f.Message})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ToFindings converts diagnostics to findings with module-relative
// paths, marking report-only analyzers and baseline membership.
func ToFindings(diags []Diagnostic, analyzers []*Analyzer, modRoot string, baseline map[string]bool) []Finding {
	reportOnly := map[string]bool{}
	for _, a := range analyzers {
		if a.ReportOnly {
			reportOnly[a.Name] = true
		}
	}
	out := make([]Finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if modRoot != "" {
			if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		f := Finding{
			Analyzer:   d.Analyzer,
			File:       file,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			ReportOnly: reportOnly[d.Analyzer],
		}
		f.Baselined = baseline[f.Key()]
		out = append(out, f)
	}
	return out
}

// Suite is the full sti-vet analyzer set.
func Suite() []*Analyzer {
	return []*Analyzer{
		LockNoBlock,
		CtxFlow,
		BudgetBalance,
		StatAtomic,
		HotAlloc,
		LostCancel,
		CopyLocks,
		Nilness,
	}
}
