package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context discipline on the serving surface:
//
//  1. a context.Context parameter must come first;
//  2. context.Background()/context.TODO() must not replace a caller's
//     ctx that is in scope;
//  3. an exported API in the serving packages that can park the calling
//     goroutine (channel ops, select, Sleep, WaitGroup.Wait, Cond.Wait)
//     must take a context.Context — shutdown-verb APIs (Close, Stop,
//     Shutdown, Retire, Drain, Wait) are exempt, since they are bounded
//     by the drain protocol rather than by a request context;
//  4. a parking function that takes ctx must actually use it.
//
// The //sti:ctxok <why> escape hatch suppresses a finding at an op, a
// call site, or a function declaration, and must carry a justification.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking serving APIs must take and thread context.Context",
	Run:  runCtxFlow,
}

// ctxflowTargets are the packages whose exported surface is held to the
// context rules ("ctxflow" is the analysistest package).
var ctxflowTargets = map[string]bool{
	"sti":                   true,
	"sti/internal/serve":    true,
	"sti/internal/pipeline": true,
	"sti/internal/replica":  true,
	"sti/internal/cluster":  true,
	"ctxflow":               true,
}

// parkKinds are operations that park the goroutine indefinitely. IO is
// deliberately excluded: warm/preload paths do bounded flash reads and
// are governed by locknoblock, not by request contexts.
var parkKinds = map[OpKind]bool{
	OpChanSend: true, OpChanRecv: true, OpChanRange: true,
	OpSelect: true, OpSleep: true, OpWGWait: true, OpCondWait: true,
}

// shutdownVerbs name APIs whose blocking is part of the drain/shutdown
// protocol; they are exempt from rule 3 and stop park propagation.
var shutdownVerbs = map[string]bool{
	"Close": true, "Shutdown": true, "Stop": true,
	"Retire": true, "Drain": true, "Wait": true,
}

func runCtxFlow(pass *Pass) error {
	ann := pass.Annotations("ctxok")
	stop := func(fn *types.Func) bool { return shutdownVerbs[fn.Name()] }
	parks := pass.Program().Summarize(pass.Fset, parkKinds, ann, stop)

	for _, pkg := range pass.Scoped() {
		target := ctxflowTargets[pkg.Path]
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				ctxParam, ctxIndex := ctxParamOf(pkg.Info, fd)

				// Rule 1: ctx must be the first parameter.
				if ctxParam != nil && ctxIndex > 0 && !ann.Allows(pass.Fset, fd.Pos()) {
					pass.Reportf(fd.Pos(), "context.Context parameter of %s must come first (found at position %d)", fd.Name.Name, ctxIndex+1)
				}

				// Rule 2: no Background()/TODO() call args while a ctx
				// param is in scope.
				if ctxParam != nil {
					flagBackgroundArgs(pass, pkg.Info, fd, ann)
				}

				if !target {
					continue
				}
				cause := parks[obj]

				// Rule 3: exported parking API without ctx.
				if cause != nil && ctxParam == nil &&
					fd.Name.IsExported() && exportedRecv(fd) &&
					!shutdownVerbs[fd.Name.Name] &&
					!ann.Allows(pass.Fset, fd.Pos()) {
					pass.Reportf(fd.Pos(), "exported API %s blocks (%s) but takes no context.Context", fd.Name.Name, cause.Describe(pass.Fset))
				}

				// Rule 4: parking function never threads its ctx.
				if cause != nil && ctxParam != nil && !usesParam(pkg.Info, fd.Body, ctxParam) &&
					!ann.Allows(pass.Fset, fd.Pos()) {
					pass.Reportf(fd.Pos(), "%s takes ctx but never threads it into its blocking work (%s)", fd.Name.Name, cause.Describe(pass.Fset))
				}
			}
		}
	}
	return nil
}

// ctxParamOf returns the context.Context parameter object and its index,
// or (nil, -1).
func ctxParamOf(info *types.Info, fd *ast.FuncDecl) (*types.Var, int) {
	if fd.Type.Params == nil {
		return nil, -1
	}
	idx := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			var obj *types.Var
			if len(field.Names) > 0 {
				obj, _ = info.Defs[field.Names[i]].(*types.Var)
			}
			if isContextType(info, field.Type) {
				return obj, idx
			}
			idx++
		}
	}
	return nil, -1
}

func isContextType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// flagBackgroundArgs reports context.Background()/TODO() passed as a
// call argument inside a function that has its own ctx parameter.
func flagBackgroundArgs(pass *Pass, info *types.Info, fd *ast.FuncDecl, ann *AnnotationSet) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range call.Args {
			ac, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(info, ac)
			if fn == nil {
				continue
			}
			full := fn.FullName()
			if full != "context.Background" && full != "context.TODO" {
				continue
			}
			if ann.Allows(pass.Fset, ac.Pos()) {
				continue
			}
			callee := "call"
			if cf := calleeFunc(info, call); cf != nil {
				callee = cf.Name()
			}
			pass.Reportf(ac.Pos(), "%s replaces the in-scope ctx passed to %s; thread the caller's context", strings.TrimPrefix(full, "context."), callee)
		}
		return true
	})
}

// exportedRecv reports whether fd is a plain function or a method on an
// exported receiver type (methods on unexported types are not API).
func exportedRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// usesParam reports whether any identifier in body resolves to obj.
func usesParam(info *types.Info, body *ast.BlockStmt, obj *types.Var) bool {
	if obj == nil {
		// Unnamed ctx param can never be threaded; treat as unused.
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}
